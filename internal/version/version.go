// Package version derives a build identity for the command-line tools
// from the information the Go toolchain embeds in every binary: the
// module version (when built from a tagged module zip) and the VCS
// revision and dirty bit (when built from a checkout). Every cmd/ binary
// registers the shared -version flag; fxnetd additionally surfaces the
// same string in its /healthz payload so a fleet's running revisions can
// be audited over HTTP.
package version

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
)

// String renders the build identity: module version, VCS revision
// (shortened), dirty marker, and toolchain, e.g.
//
//	fxnet (devel) rev 1a2b3c4d5e6f (modified) go1.24.0
//
// A binary built without VCS stamping (go run, test binaries) degrades
// to whatever fields are present.
func String() string {
	var b strings.Builder
	b.WriteString("fxnet")
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		fmt.Fprintf(&b, " (no build info) %s", runtime.Version())
		return b.String()
	}
	if v := bi.Main.Version; v != "" {
		fmt.Fprintf(&b, " %s", v)
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = " (modified)"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Fprintf(&b, " rev %s%s", rev, dirty)
	}
	fmt.Fprintf(&b, " %s", bi.GoVersion)
	return b.String()
}

// Register declares the shared -version flag on the default flag set.
// Call ExitIfRequested with the returned pointer after flag.Parse.
func Register() *bool {
	return flag.Bool("version", false, "print build version and exit")
}

// ExitIfRequested prints the build identity and exits 0 when the
// -version flag was given.
func ExitIfRequested(v *bool) {
	if v != nil && *v {
		fmt.Println(String())
		os.Exit(0)
	}
}
