package farm

import (
	"math"
	"os"
	"sync/atomic"
	"testing"

	"fxnet/internal/core"
)

// streamBitsMatch compares the fields of a stream report that must be
// bit-identical to the trace-derived one (the full contract is tested in
// internal/core; here we spot-check through the farm plumbing).
func streamBitsMatch(t *testing.T, got, want *core.Report) {
	t.Helper()
	if len(got.AggSeries) != len(want.AggSeries) {
		t.Fatalf("AggSeries length %d want %d", len(got.AggSeries), len(want.AggSeries))
	}
	for i := range want.AggSeries {
		if math.Float64bits(got.AggSeries[i]) != math.Float64bits(want.AggSeries[i]) {
			t.Fatalf("AggSeries[%d] = %v want %v", i, got.AggSeries[i], want.AggSeries[i])
		}
	}
	if math.Float64bits(got.AggKBps) != math.Float64bits(want.AggKBps) {
		t.Errorf("AggKBps = %v want %v", got.AggKBps, want.AggKBps)
	}
	if got.AggSize.N != want.AggSize.N {
		t.Errorf("AggSize.N = %d want %d", got.AggSize.N, want.AggSize.N)
	}
}

// TestStreamJobMatchesTraceJob: a stream job's report agrees with the
// trace job's, its result carries no packets, and the two do not
// deduplicate against each other.
func TestStreamJobMatchesTraceJob(t *testing.T) {
	f := New(Options{Workers: 2})
	cfg := tinyConfig(7)
	_, traceRep, err := f.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, rep, err := f.RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Trace.Len(); n != 0 {
		t.Errorf("stream result retained %d packets", n)
	}
	streamBitsMatch(t, rep, traceRep)
	if s := f.Stats(); s.Executed != 2 || s.Deduped != 0 {
		t.Errorf("stats %+v: stream and trace jobs must not share an execution", s)
	}
}

// TestStreamDedupNamespace: identical stream jobs single-flight with
// each other, in a namespace separate from trace jobs of the same key.
func TestStreamDedupNamespace(t *testing.T) {
	f := New(Options{Workers: 4})
	var streams, traces atomic.Int32
	f.runStreamFn = func(cfg core.RunConfig) (*core.Result, *core.Report, error) {
		streams.Add(1)
		return core.RunStream(cfg)
	}
	f.runFn = func(cfg core.RunConfig) (*core.Result, error) {
		traces.Add(1)
		return core.Run(cfg)
	}
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Label: "dup", Config: tinyConfig(9), Stream: i%2 == 0}
	}
	out := f.RunBatch(jobs)
	for i, jr := range out {
		if jr.Err != nil {
			t.Fatalf("job %d: %v", i, jr.Err)
		}
		if wantStream := i%2 == 0; (jr.Result.Trace.Len() == 0) != wantStream {
			t.Errorf("job %d: stream=%v but trace has %d packets", i, wantStream, jr.Result.Trace.Len())
		}
	}
	if got := streams.Load(); got != 1 {
		t.Errorf("%d stream executions, want 1 (single-flight)", got)
	}
	if got := traces.Load(); got != 1 {
		t.Errorf("%d trace executions, want 1 (single-flight)", got)
	}
}

// TestStreamCacheRoundTrip: a stream job stores a .fxspec entry that a
// fresh farm loads without re-simulating, and the revived report carries
// the original bits.
func TestStreamCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig(11)
	f1 := New(Options{Workers: 1, Cache: c})
	_, rep1, err := f1.RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	key := Key(cfg)
	if _, err := os.Stat(c.streamPath(key)); err != nil {
		t.Fatalf("no .fxspec entry after stream run: %v", err)
	}
	if _, err := os.Stat(c.path(key)); !os.IsNotExist(err) {
		t.Fatalf("stream run wrote a full .fxrun entry (err=%v)", err)
	}

	f2 := New(Options{Workers: 1, Cache: c})
	res2, rep2, err := f2.RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s := f2.Stats(); s.CacheHits != 1 || s.Executed != 0 {
		t.Errorf("stats %+v: want pure cache hit", s)
	}
	if n := res2.Trace.Len(); n != 0 {
		t.Errorf("cached stream result has %d packets", n)
	}
	streamBitsMatch(t, rep2, rep1)
	if res2.Trace.Meta["program"] == "" {
		t.Error("cached stream result lost trace metadata")
	}

	// A corrupted .fxspec entry is a miss and forces a re-run.
	body, err := os.ReadFile(c.streamPath(key))
	if err != nil {
		t.Fatal(err)
	}
	body[len(body)/2] ^= 0x40
	if err := os.WriteFile(c.streamPath(key), body, 0o644); err != nil {
		t.Fatal(err)
	}
	f3 := New(Options{Workers: 1, Cache: c})
	_, rep3, err := f3.RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s := f3.Stats(); s.Executed != 1 {
		t.Errorf("stats %+v after corruption: want recompute", s)
	}
	streamBitsMatch(t, rep3, rep1)
}

// TestStreamFallsBackToFullEntry: with only a .fxrun entry on disk, a
// stream job is served from it — packets dropped — without simulating.
func TestStreamFallsBackToFullEntry(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig(13)
	f1 := New(Options{Workers: 1, Cache: c})
	_, traceRep, err := f1.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	f2 := New(Options{Workers: 1, Cache: c})
	res, rep, err := f2.RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s := f2.Stats(); s.CacheHits != 1 || s.Executed != 0 {
		t.Errorf("stats %+v: want fallback cache hit", s)
	}
	if n := res.Trace.Len(); n != 0 {
		t.Errorf("fallback stream result has %d packets", n)
	}
	streamBitsMatch(t, rep, traceRep)
}
