package farm

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"fxnet/internal/core"
	"fxnet/internal/kernels"
)

// tinyJobs builds a batch of small distinct runs across programs and
// seeds.
func tinyJobs() []Job {
	var jobs []Job
	for _, prog := range []string{"sor", "2dfft", "seq"} {
		for _, seed := range []int64{1, 2} {
			jobs = append(jobs, Job{
				Label: prog,
				Config: core.RunConfig{
					Program: prog, Seed: seed,
					Params:            kernels.Params{N: 16, Iters: 2},
					KeepaliveInterval: -1,
				},
			})
		}
	}
	return jobs
}

// TestParallelMatchesSerial is the subsystem's determinism contract: a
// batch run with any worker count yields traces and characterizations
// byte-identical to the serial run.
func TestParallelMatchesSerial(t *testing.T) {
	serial := New(Options{Workers: 1}).RunBatch(tinyJobs())
	parallel := New(Options{Workers: 4}).RunBatch(tinyJobs())
	if len(serial) != len(parallel) {
		t.Fatalf("batch sizes differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Err != nil || p.Err != nil {
			t.Fatalf("job %d failed: %v / %v", i, s.Err, p.Err)
		}
		if s.Key != p.Key {
			t.Fatalf("job %d keys differ", i)
		}
		if !bytes.Equal(traceBytes(t, s.Result), traceBytes(t, p.Result)) {
			t.Errorf("job %d (%s seed %d): parallel trace differs from serial",
				i, s.Job.Config.Program, s.Job.Config.Seed)
		}
		if s.Report.AggKBps != p.Report.AggKBps ||
			s.Report.AggSize != p.Report.AggSize ||
			s.Report.AggInterarrival != p.Report.AggInterarrival ||
			s.Report.Coincidence != p.Report.Coincidence ||
			s.Report.Correlation != p.Report.Correlation {
			t.Errorf("job %d: parallel characterization differs from serial", i)
		}
		if s.Result.Elapsed != p.Result.Elapsed {
			t.Errorf("job %d: virtual elapsed differs", i)
		}
	}
}

// TestSingleflightDedup submits many copies of one configuration
// concurrently: exactly one simulation runs, everyone shares its result.
func TestSingleflightDedup(t *testing.T) {
	f := New(Options{Workers: 4})
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Label: "dup", Config: tinyConfig(5)}
	}
	out := f.RunBatch(jobs)
	var deduped int
	for _, jr := range out {
		if jr.Err != nil {
			t.Fatal(jr.Err)
		}
		if jr.Result != out[0].Result {
			t.Error("deduplicated jobs do not share one result")
		}
		if jr.Deduped {
			deduped++
		}
	}
	s := f.Stats()
	if s.Executed != 1 {
		t.Errorf("executed %d simulations for 8 identical jobs", s.Executed)
	}
	if s.Deduped != 7 || deduped != 7 {
		t.Errorf("deduped = %d (stats %d), want 7", deduped, s.Deduped)
	}
	if s.Submitted != 8 || s.Completed != 8 {
		t.Errorf("submitted/completed = %d/%d, want 8/8", s.Submitted, s.Completed)
	}
}

// TestCacheHitMissAccounting checks the miss→store→hit lifecycle across
// farm instances sharing one cache directory.
func TestCacheHitMissAccounting(t *testing.T) {
	dir := t.TempDir()
	c1, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{
		{Label: "a", Config: tinyConfig(10)},
		{Label: "b", Config: tinyConfig(11)},
	}
	cold := New(Options{Workers: 2, Cache: c1})
	coldOut := cold.RunBatch(jobs)
	if s := cold.Stats(); s.Executed != 2 || s.CacheHits != 0 {
		t.Fatalf("cold stats %+v, want 2 executions, 0 hits", s)
	}

	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := New(Options{Workers: 2, Cache: c2})
	warmOut := warm.RunBatch(jobs)
	if s := warm.Stats(); s.Executed != 0 || s.CacheHits != 2 {
		t.Fatalf("warm stats %+v, want 0 executions, 2 hits", s)
	}
	for i := range jobs {
		if !warmOut[i].Cached {
			t.Errorf("warm job %d not marked cached", i)
		}
		if !bytes.Equal(traceBytes(t, warmOut[i].Result), traceBytes(t, coldOut[i].Result)) {
			t.Errorf("job %d: cached trace differs from computed", i)
		}
		if warmOut[i].Report.AggKBps != coldOut[i].Report.AggKBps {
			t.Errorf("job %d: cached report differs from computed", i)
		}
	}
}

// TestMemoize keeps results in memory: sequential resubmission of a key
// re-simulates nothing even without a disk cache.
func TestMemoize(t *testing.T) {
	f := New(Options{Workers: 2, Memoize: true})
	r1, _, err := f.Run(tinyConfig(20))
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := f.Run(tinyConfig(20))
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("memoized rerun returned a different result")
	}
	if s := f.Stats(); s.Executed != 1 || s.Deduped != 1 {
		t.Errorf("stats %+v, want 1 execution and 1 dedup", s)
	}
}

func TestSubmitStreams(t *testing.T) {
	f := New(Options{Workers: 2})
	jobs := tinyJobs()[:3]
	var n int
	for jr := range f.Submit(jobs) {
		if jr.Err != nil {
			t.Fatal(jr.Err)
		}
		n++
	}
	if n != len(jobs) {
		t.Fatalf("streamed %d results for %d jobs", n, len(jobs))
	}
}

func TestBadJobSurfacesError(t *testing.T) {
	f := New(Options{Workers: 1})
	out := f.RunBatch([]Job{{Label: "bad", Config: core.RunConfig{Program: "no-such-kernel"}}})
	if out[0].Err == nil {
		t.Fatal("unknown program did not error")
	}
	if s := f.Stats(); s.Failed != 1 {
		t.Errorf("failed counter %d, want 1", s.Failed)
	}
}

func TestProgressEvents(t *testing.T) {
	var events atomic.Int64
	var sawTotal atomic.Int64
	f := New(Options{Workers: 2, OnProgress: func(ev Event) {
		events.Add(1)
		if ev.Done == ev.Total {
			sawTotal.Add(1)
		}
	}})
	jobs := tinyJobs()[:4]
	f.RunBatch(jobs)
	if got := events.Load(); got != int64(len(jobs)) {
		t.Errorf("got %d progress events for %d jobs", got, len(jobs))
	}
	if sawTotal.Load() == 0 {
		t.Error("no event reported Done == Total")
	}
}

// errStub marks a run executed by the stubbed runFn in the cancellation
// tests; it only matters that it is not a context error.
var errStub = errors.New("stub run")

// stubRuns installs a runFn that counts executions and, for seed 1,
// blocks holding its worker slot until release is closed.
func stubRuns(f *Farm, runs *atomic.Int32, started, release chan struct{}) {
	f.runFn = func(cfg core.RunConfig) (*core.Result, error) {
		runs.Add(1)
		if cfg.Seed == 1 {
			close(started)
			<-release
		}
		return nil, errStub
	}
}

// TestCancelQueuedJobFreesSlot cancels a job while it waits for the
// single worker slot: it must return the context error without ever
// executing, and the slot must remain usable for later jobs.
func TestCancelQueuedJobFreesSlot(t *testing.T) {
	f := New(Options{Workers: 1})
	var runs atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	stubRuns(f, &runs, started, release)

	aDone := make(chan error, 1)
	go func() { _, _, err := f.Run(tinyConfig(1)); aDone <- err }()
	<-started // A holds the only slot

	ctx, cancel := context.WithCancel(context.Background())
	bDone := make(chan error, 1)
	go func() { _, _, err := f.RunCtx(ctx, tinyConfig(2)); bDone <- err }()
	cancel()
	select {
	case err := <-bDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled job returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled job did not return while the pool was full")
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("cancelled job executed anyway: %d runs, want 1", got)
	}
	if s := f.Stats(); s.Cancelled != 1 {
		t.Errorf("Cancelled counter %d, want 1", s.Cancelled)
	}

	close(release)
	if err := <-aDone; !errors.Is(err, errStub) {
		t.Fatalf("blocking job returned %v, want errStub", err)
	}
	// The freed slot must still execute new work.
	if _, _, err := f.Run(tinyConfig(3)); !errors.Is(err, errStub) {
		t.Fatalf("post-cancel job returned %v, want errStub", err)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("%d runs after post-cancel job, want 2", got)
	}
}

// TestCancelledLeaderDoesNotPoisonFollower: when a deduplicated twin's
// leader is abandoned through its own context, a follower with a live
// context retries as a fresh leader instead of inheriting the
// cancellation.
func TestCancelledLeaderDoesNotPoisonFollower(t *testing.T) {
	f := New(Options{Workers: 1})
	var runs atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	stubRuns(f, &runs, started, release)

	aDone := make(chan error, 1)
	go func() { _, _, err := f.Run(tinyConfig(1)); aDone <- err }()
	<-started // fill the pool so the leader stays queued

	ctx, cancel := context.WithCancel(context.Background())
	leadDone := make(chan error, 1)
	go func() { _, _, err := f.RunCtx(ctx, tinyConfig(2)); leadDone <- err }()
	// Wait until the leader has registered its in-flight call, so the
	// follower actually dedups against it.
	deadline := time.After(5 * time.Second)
	for {
		f.mu.Lock()
		n := len(f.calls)
		f.mu.Unlock()
		if n == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("leader never registered its call")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	followDone := make(chan error, 1)
	go func() { _, _, err := f.Run(tinyConfig(2)); followDone <- err }()

	cancel()
	if err := <-leadDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled leader returned %v, want context.Canceled", err)
	}
	close(release)
	<-aDone
	if err := <-followDone; !errors.Is(err, errStub) {
		t.Fatalf("follower returned %v, want errStub (a fresh execution)", err)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("%d runs, want 2 (blocker + retried follower)", got)
	}
}
