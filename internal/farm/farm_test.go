package farm

import (
	"bytes"
	"sync/atomic"
	"testing"

	"fxnet/internal/core"
	"fxnet/internal/kernels"
)

// tinyJobs builds a batch of small distinct runs across programs and
// seeds.
func tinyJobs() []Job {
	var jobs []Job
	for _, prog := range []string{"sor", "2dfft", "seq"} {
		for _, seed := range []int64{1, 2} {
			jobs = append(jobs, Job{
				Label: prog,
				Config: core.RunConfig{
					Program: prog, Seed: seed,
					Params:            kernels.Params{N: 16, Iters: 2},
					KeepaliveInterval: -1,
				},
			})
		}
	}
	return jobs
}

// TestParallelMatchesSerial is the subsystem's determinism contract: a
// batch run with any worker count yields traces and characterizations
// byte-identical to the serial run.
func TestParallelMatchesSerial(t *testing.T) {
	serial := New(Options{Workers: 1}).RunBatch(tinyJobs())
	parallel := New(Options{Workers: 4}).RunBatch(tinyJobs())
	if len(serial) != len(parallel) {
		t.Fatalf("batch sizes differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Err != nil || p.Err != nil {
			t.Fatalf("job %d failed: %v / %v", i, s.Err, p.Err)
		}
		if s.Key != p.Key {
			t.Fatalf("job %d keys differ", i)
		}
		if !bytes.Equal(traceBytes(t, s.Result), traceBytes(t, p.Result)) {
			t.Errorf("job %d (%s seed %d): parallel trace differs from serial",
				i, s.Job.Config.Program, s.Job.Config.Seed)
		}
		if s.Report.AggKBps != p.Report.AggKBps ||
			s.Report.AggSize != p.Report.AggSize ||
			s.Report.AggInterarrival != p.Report.AggInterarrival ||
			s.Report.Coincidence != p.Report.Coincidence ||
			s.Report.Correlation != p.Report.Correlation {
			t.Errorf("job %d: parallel characterization differs from serial", i)
		}
		if s.Result.Elapsed != p.Result.Elapsed {
			t.Errorf("job %d: virtual elapsed differs", i)
		}
	}
}

// TestSingleflightDedup submits many copies of one configuration
// concurrently: exactly one simulation runs, everyone shares its result.
func TestSingleflightDedup(t *testing.T) {
	f := New(Options{Workers: 4})
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Label: "dup", Config: tinyConfig(5)}
	}
	out := f.RunBatch(jobs)
	var deduped int
	for _, jr := range out {
		if jr.Err != nil {
			t.Fatal(jr.Err)
		}
		if jr.Result != out[0].Result {
			t.Error("deduplicated jobs do not share one result")
		}
		if jr.Deduped {
			deduped++
		}
	}
	s := f.Stats()
	if s.Executed != 1 {
		t.Errorf("executed %d simulations for 8 identical jobs", s.Executed)
	}
	if s.Deduped != 7 || deduped != 7 {
		t.Errorf("deduped = %d (stats %d), want 7", deduped, s.Deduped)
	}
	if s.Submitted != 8 || s.Completed != 8 {
		t.Errorf("submitted/completed = %d/%d, want 8/8", s.Submitted, s.Completed)
	}
}

// TestCacheHitMissAccounting checks the miss→store→hit lifecycle across
// farm instances sharing one cache directory.
func TestCacheHitMissAccounting(t *testing.T) {
	dir := t.TempDir()
	c1, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{
		{Label: "a", Config: tinyConfig(10)},
		{Label: "b", Config: tinyConfig(11)},
	}
	cold := New(Options{Workers: 2, Cache: c1})
	coldOut := cold.RunBatch(jobs)
	if s := cold.Stats(); s.Executed != 2 || s.CacheHits != 0 {
		t.Fatalf("cold stats %+v, want 2 executions, 0 hits", s)
	}

	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := New(Options{Workers: 2, Cache: c2})
	warmOut := warm.RunBatch(jobs)
	if s := warm.Stats(); s.Executed != 0 || s.CacheHits != 2 {
		t.Fatalf("warm stats %+v, want 0 executions, 2 hits", s)
	}
	for i := range jobs {
		if !warmOut[i].Cached {
			t.Errorf("warm job %d not marked cached", i)
		}
		if !bytes.Equal(traceBytes(t, warmOut[i].Result), traceBytes(t, coldOut[i].Result)) {
			t.Errorf("job %d: cached trace differs from computed", i)
		}
		if warmOut[i].Report.AggKBps != coldOut[i].Report.AggKBps {
			t.Errorf("job %d: cached report differs from computed", i)
		}
	}
}

// TestMemoize keeps results in memory: sequential resubmission of a key
// re-simulates nothing even without a disk cache.
func TestMemoize(t *testing.T) {
	f := New(Options{Workers: 2, Memoize: true})
	r1, _, err := f.Run(tinyConfig(20))
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := f.Run(tinyConfig(20))
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("memoized rerun returned a different result")
	}
	if s := f.Stats(); s.Executed != 1 || s.Deduped != 1 {
		t.Errorf("stats %+v, want 1 execution and 1 dedup", s)
	}
}

func TestSubmitStreams(t *testing.T) {
	f := New(Options{Workers: 2})
	jobs := tinyJobs()[:3]
	var n int
	for jr := range f.Submit(jobs) {
		if jr.Err != nil {
			t.Fatal(jr.Err)
		}
		n++
	}
	if n != len(jobs) {
		t.Fatalf("streamed %d results for %d jobs", n, len(jobs))
	}
}

func TestBadJobSurfacesError(t *testing.T) {
	f := New(Options{Workers: 1})
	out := f.RunBatch([]Job{{Label: "bad", Config: core.RunConfig{Program: "no-such-kernel"}}})
	if out[0].Err == nil {
		t.Fatal("unknown program did not error")
	}
	if s := f.Stats(); s.Failed != 1 {
		t.Errorf("failed counter %d, want 1", s.Failed)
	}
}

func TestProgressEvents(t *testing.T) {
	var events atomic.Int64
	var sawTotal atomic.Int64
	f := New(Options{Workers: 2, OnProgress: func(ev Event) {
		events.Add(1)
		if ev.Done == ev.Total {
			sawTotal.Add(1)
		}
	}})
	jobs := tinyJobs()[:4]
	f.RunBatch(jobs)
	if got := events.Load(); got != int64(len(jobs)) {
		t.Errorf("got %d progress events for %d jobs", got, len(jobs))
	}
	if sawTotal.Load() == 0 {
		t.Error("no event reported Done == Total")
	}
}
