package farm

import (
	"reflect"
	"testing"

	"fxnet/internal/core"
	"fxnet/internal/faults"
	"fxnet/internal/fx"
	"fxnet/internal/kernels"
	"fxnet/internal/netstack"
)

// keyMutators perturbs every core.RunConfig field. TestKeyCoversAllFields
// walks the struct by reflection and fails if a field has no mutator, so
// a new RunConfig field cannot silently escape the cache key.
var keyMutators = map[string]func(*core.RunConfig){
	"Program":           func(c *core.RunConfig) { c.Program = "t2dfft" },
	"P":                 func(c *core.RunConfig) { c.P = 8 },
	"Params":            func(c *core.RunConfig) { c.Params = kernels.Params{N: 128, Iters: 3} },
	"AirshedParams":     func(c *core.RunConfig) { c.AirshedParams.Layers = 9 },
	"Seed":              func(c *core.RunConfig) { c.Seed = 99 },
	"BitRate":           func(c *core.RunConfig) { c.BitRate = 40e6 },
	"Cost":              func(c *core.RunConfig) { c.Cost = &fx.CostModel{DefaultRate: 1e6} },
	"DisableDesched":    func(c *core.RunConfig) { c.DisableDesched = true },
	"ForceCopyLoop":     func(c *core.RunConfig) { c.ForceCopyLoop = true },
	"ForceFragments":    func(c *core.RunConfig) { c.ForceFragments = true },
	"Net":               func(c *core.RunConfig) { c.Net = netstack.Config{SendWindow: 64 * 1024} },
	"KeepaliveInterval": func(c *core.RunConfig) { c.KeepaliveInterval = -1 },
	"FrameLossProb":     func(c *core.RunConfig) { c.FrameLossProb = 0.02 },
	"Switched":          func(c *core.RunConfig) { c.Switched = true },
	"Nagle":             func(c *core.RunConfig) { c.Nagle = true },
	"CrossTrafficKBps":  func(c *core.RunConfig) { c.CrossTrafficKBps = 500 },
	"GuaranteeProgram":  func(c *core.RunConfig) { c.GuaranteeProgram = true },
	"FaultScript":       func(c *core.RunConfig) { c.FaultScript = "5s:linkdown host2" },
	"Faults":            func(c *core.RunConfig) { c.Faults = faults.MustParse("1s:segdown,2s:segup") },
	"Degrade":           func(c *core.RunConfig) { c.Degrade = true },
	"HeartbeatMisses":   func(c *core.RunConfig) { c.HeartbeatMisses = 5 },
	"Topology":          func(c *core.RunConfig) { c.Topology = mustTopology("lan0:0-1,lan1:2-3") },
}

func mustTopology(spec string) *core.Topology {
	t, err := core.ParseTopology(spec)
	if err != nil {
		panic(err)
	}
	return t
}

func TestKeyCoversAllFields(t *testing.T) {
	typ := reflect.TypeOf(core.RunConfig{})
	base := core.RunConfig{Program: "2dfft", Seed: 1}
	baseKey := Key(base)
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		mut, ok := keyMutators[name]
		if !ok {
			t.Errorf("RunConfig.%s has no key mutator: extend farm.Key and this table", name)
			continue
		}
		cfg := base
		mut(&cfg)
		if Key(cfg) == baseKey {
			t.Errorf("mutating RunConfig.%s does not change the cache key", name)
		}
	}
	if len(keyMutators) != typ.NumField() {
		t.Errorf("mutator table has %d entries for %d fields", len(keyMutators), typ.NumField())
	}
}

func TestKeyDeterministic(t *testing.T) {
	cfg := core.RunConfig{
		Program: "sor", Seed: 7, P: 4,
		Cost: &fx.CostModel{
			DefaultRate: 2e6,
			Rates:       map[string]float64{"a": 1, "b": 2, "c": 3, "d": 4, "e": 5},
		},
	}
	k0 := Key(cfg)
	for i := 0; i < 20; i++ { // map-order independence
		if k := Key(cfg); k != k0 {
			t.Fatalf("key not deterministic: %s vs %s", k, k0)
		}
	}
	if len(k0) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", k0)
	}
}

// TestKeyTopologyVersioned pins the versioned-extension contract: a nil
// topology contributes nothing to the hash (pre-topology keys and cache
// entries stay valid), and equivalent specs hash identically through the
// canonical form.
func TestKeyTopologyVersioned(t *testing.T) {
	base := core.RunConfig{Program: "2dfft", Seed: 1}
	const pretopology = "f53c0ab5b72235a888b866d28e16f033e2f7e69aff95a9c7811b85a42db260d9"
	if k := Key(base); k != pretopology {
		t.Errorf("nil-topology key changed: %s", k)
	}
	a := base
	a.Topology = mustTopology("lan0:0-1,lan1:2-3")
	b := base
	b.Topology = mustTopology("lan0:0+1,lan1:2+3")
	if Key(a) != Key(b) {
		t.Error("equivalent topologies hash differently")
	}
	if Key(a) == Key(base) {
		t.Error("topology did not change the key")
	}
}

// TestKeyFaultsPrecedence mirrors core.Run: a parsed schedule overrides
// the script, and a schedule equal to a script's parse hashes like it.
func TestKeyFaultsPrecedence(t *testing.T) {
	script := "5s:linkdown host2,7s:linkup host2"
	viaScript := core.RunConfig{Program: "sor", FaultScript: script}
	viaSchedule := core.RunConfig{Program: "sor", Faults: faults.MustParse(script)}
	if Key(viaScript) != Key(viaSchedule) {
		t.Error("equivalent schedule and script produce different keys")
	}
	shadowed := viaSchedule
	shadowed.FaultScript = "1s:segdown" // ignored by core.Run when Faults is set
	if Key(shadowed) != Key(viaSchedule) {
		t.Error("shadowed FaultScript leaked into the key")
	}
}
