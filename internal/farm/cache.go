package farm

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"fxnet/internal/core"
	"fxnet/internal/dsp"
	"fxnet/internal/ethernet"
	"fxnet/internal/fx"
	"fxnet/internal/sim"
	"fxnet/internal/stats"
	"fxnet/internal/trace"
)

// cacheMagic heads every full-run cache entry; the trailing digit is the
// format version. Stream (spectrum-level) entries use streamMagic and the
// .fxspec extension, so an analysis-only result can never masquerade as a
// full run with an empty trace.
const (
	cacheMagic  = "FXFARM01"
	streamMagic = "FXSPEC01"
)

// Cache is an on-disk, content-addressed store of completed runs: one
// file per key holding the run metadata, the characterization JSON, and
// the binary-codec trace, all guarded by a SHA-256 digest.
//
// The cache is corruption-tolerant by construction: a missing, truncated,
// bit-flipped, or otherwise unreadable entry is reported as a miss and
// the run is recomputed — a bad cache can cost time, never correctness.
// A structurally present but undecodable entry is additionally moved to
// the corrupt/ subdirectory (quarantined): the evidence survives for
// inspection, the key stops hitting the same bad bytes on every probe,
// and the quarantine counter makes silent disk rot visible in /metrics.
//
// Writes are crash-safe: entries land in a temp file that is fsync'd,
// renamed into place, and sealed with a directory fsync, so a power cut
// can only lose the entry, never publish a torn one under its final
// name.
type Cache struct {
	dir string

	quarantined atomic.Int64
	// quarantinedKind counts quarantines by entry kind ("run", "spec",
	// "other") so disk rot is attributable per tier.
	quarantineMu    sync.Mutex
	quarantinedKind map[string]int64

	// statMu guards the entry census (count and bytes) that the cluster
	// tiering metrics export per shard. The census is seeded by a
	// directory scan at open and maintained incrementally by
	// store/install/quarantine.
	statMu  sync.Mutex
	entries int64
	bytes   int64
}

// CacheStats is a snapshot of the on-disk census.
type CacheStats struct {
	// Entries and Bytes count the published .fxrun/.fxspec files
	// (quarantined and temp files excluded).
	Entries int64
	Bytes   int64
}

// OpenCache opens (creating if needed) a cache directory and takes a
// census of its published entries.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("farm: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("farm: open cache: %w", err)
	}
	c := &Cache{dir: dir, quarantinedKind: make(map[string]int64)}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("farm: open cache: %w", err)
	}
	for _, e := range ents {
		if e.IsDir() || !isEntryName(e.Name()) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		c.entries++
		c.bytes += info.Size()
	}
	return c, nil
}

// isEntryName reports whether a file name is a published cache entry.
func isEntryName(name string) bool {
	ext := filepath.Ext(name)
	return ext == ".fxrun" || ext == ".fxspec"
}

// entryKind labels a path for the per-kind quarantine counters.
func entryKind(path string) string {
	switch filepath.Ext(path) {
	case ".fxrun":
		return "run"
	case ".fxspec":
		return "spec"
	default:
		return "other"
	}
}

// Stats reports the entry census.
func (c *Cache) Stats() CacheStats {
	c.statMu.Lock()
	defer c.statMu.Unlock()
	return CacheStats{Entries: c.entries, Bytes: c.bytes}
}

// accountPublish records a new or replaced entry of size n bytes where
// an entry of oldSize bytes (0 = none) previously lived.
func (c *Cache) accountPublish(oldSize, n int64, existed bool) {
	c.statMu.Lock()
	if !existed {
		c.entries++
	}
	c.bytes += n - oldSize
	c.statMu.Unlock()
}

// accountRemove records an entry leaving the published namespace.
func (c *Cache) accountRemove(size int64) {
	c.statMu.Lock()
	c.entries--
	c.bytes -= size
	c.statMu.Unlock()
}

// Dir reports the cache directory.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".fxrun")
}

func (c *Cache) streamPath(key string) string {
	return filepath.Join(c.dir, key+".fxspec")
}

// entryMeta is the JSON header of a cache entry: everything a
// core.Result carries besides the trace and the live worker handles.
type entryMeta struct {
	Elapsed  int64          `json:"elapsed_ns"`
	SegStats ethernet.Stats `json:"seg_stats"`
	RepConn  [2]int         `json:"rep_conn"`
	RunErr   *runErrJSON    `json:"run_err,omitempty"`
}

// runErrJSON round-trips a run's fault outcome. The underlying error
// chain cannot survive serialization, so a revived RunError carries the
// rendered message; errors.Is identity against sentinels is lost, which
// cached-result consumers must treat as data, not control flow.
type runErrJSON struct {
	Program string `json:"program"`
	Rank    int    `json:"rank"`
	Phase   string `json:"phase"`
	Msg     string `json:"msg"`
}

// Load retrieves a cached run. ok is false on any miss — absent entry,
// bad magic, digest mismatch, truncation, or undecodable section — and
// the caller recomputes. A loaded Result has no live Workers or Team
// (those are process handles, not measurements); its Config is the
// caller's cfg. The report is recomputed from the trace when the stored
// characterization is absent or damaged.
func (c *Cache) Load(key string, cfg core.RunConfig) (res *core.Result, rep *core.Report, ok bool) {
	body, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, nil, false
	}
	res, rep, err = decodeEntry(body, cfg, cacheMagic)
	if err != nil {
		c.quarantine(c.path(key))
		return nil, nil, false
	}
	if rep == nil {
		rep = core.Characterize(res)
	}
	return res, rep, true
}

// Quarantined reports how many corrupt entries this cache has moved to
// its corrupt/ subdirectory.
func (c *Cache) Quarantined() int64 { return c.quarantined.Load() }

// QuarantinedKinds reports quarantine counts by entry kind ("run",
// "spec", "other").
func (c *Cache) QuarantinedKinds() map[string]int64 {
	c.quarantineMu.Lock()
	defer c.quarantineMu.Unlock()
	out := make(map[string]int64, len(c.quarantinedKind))
	for k, v := range c.quarantinedKind {
		out[k] = v
	}
	return out
}

// quarantine moves an undecodable entry into corrupt/ so the evidence
// survives while the key goes back to missing. Failures (the entry
// vanished, the disk is read-only) degrade to the old leave-it behavior.
func (c *Cache) quarantine(path string) {
	dir := filepath.Join(c.dir, "corrupt")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	var size int64
	published := filepath.Dir(path) == filepath.Clean(c.dir) && isEntryName(path)
	if published {
		if info, err := os.Stat(path); err == nil {
			size = info.Size()
		} else {
			published = false
		}
	}
	if err := os.Rename(path, filepath.Join(dir, filepath.Base(path))); err != nil {
		return
	}
	if published {
		c.accountRemove(size)
	}
	c.quarantined.Add(1)
	c.quarantineMu.Lock()
	c.quarantinedKind[entryKind(path)]++
	c.quarantineMu.Unlock()
}

// LoadStream retrieves a spectrum-level entry for a streaming-analysis
// job: first the .fxspec entry written by StoreStream (whose trace is
// metadata-only, so the load touches no packet data at all), then —
// because a full run subsumes an analysis-only one — a .fxrun entry for
// the same key, with its packets dropped so a stream job's result never
// carries a trace. A stream entry without a decodable report is a miss:
// there are no packets to recompute one from.
func (c *Cache) LoadStream(key string, cfg core.RunConfig) (res *core.Result, rep *core.Report, ok bool) {
	if body, err := os.ReadFile(c.streamPath(key)); err == nil {
		res, rep, err = decodeEntry(body, cfg, streamMagic)
		if err == nil && rep != nil {
			return res, rep, true
		}
		if err != nil {
			c.quarantine(c.streamPath(key))
		}
	}
	res, rep, ok = c.Load(key, cfg)
	if !ok {
		return nil, nil, false
	}
	slim := trace.New()
	slim.Meta = res.Trace.Meta
	res.Trace = slim
	return res, rep, true
}

// Store writes a completed run under key, atomically and durably (temp
// file + fsync + rename + directory fsync), so a crashed or interrupted
// writer can only ever leave behind a temp file, never a torn entry
// under the final name.
func (c *Cache) Store(key string, res *core.Result, rep *core.Report) error {
	return c.store(c.path(key), key, res, rep, cacheMagic)
}

// StoreStream writes a spectrum-level entry under key. The result of a
// streaming run carries a metadata-only trace, so the entry is a few
// kilobytes of report JSON rather than a packet capture.
func (c *Cache) StoreStream(key string, res *core.Result, rep *core.Report) error {
	return c.store(c.streamPath(key), key, res, rep, streamMagic)
}

func (c *Cache) store(path, key string, res *core.Result, rep *core.Report, magic string) error {
	body, err := encodeEntry(res, rep, magic)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, "tmp-"+key[:16]+"-*")
	if err != nil {
		return fmt.Errorf("farm: store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		return fmt.Errorf("farm: store: %w", err)
	}
	// Sync file bytes before the rename publishes the name: rename is
	// atomic, but without the fsync a crash can publish a name whose
	// bytes never reached the platter.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("farm: store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("farm: store: %w", err)
	}
	if err := c.publish(tmp.Name(), path, int64(len(body))); err != nil {
		return fmt.Errorf("farm: store: %w", err)
	}
	return nil
}

// publish renames a fully written temp file into place, fsyncs the
// directory, and updates the census.
func (c *Cache) publish(tmpName, path string, size int64) error {
	var oldSize int64
	existed := false
	if info, err := os.Stat(path); err == nil {
		oldSize, existed = info.Size(), true
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	if err := syncDir(c.dir); err != nil {
		return err
	}
	c.accountPublish(oldSize, size, existed)
	return nil
}

// entryPath maps (key, stream) to the entry file path.
func (c *Cache) entryPath(key string, stream bool) string {
	if stream {
		return c.streamPath(key)
	}
	return c.path(key)
}

// OpenEntry opens the raw, verified-format entry file for a key so it
// can be streamed to a peer (the /v1/cache/{key} supply side). The
// caller must close the reader. The bytes are the exact on-disk entry —
// magic, SHA-256 digest, payload — so the receiving peer re-verifies
// the digest before publishing the entry locally.
func (c *Cache) OpenEntry(key string, stream bool) (io.ReadCloser, int64, error) {
	f, err := os.Open(c.entryPath(key, stream))
	if err != nil {
		return nil, 0, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, info.Size(), nil
}

// InstallRaw streams a peer-fetched entry into the cache: the body is
// spooled to a temp file while the embedded SHA-256 is recomputed, and
// only a digest-clean entry is published (temp + fsync + rename +
// directory fsync, same as Store). A corrupt body is quarantined —
// moved to corrupt/ under the entry's final name with a .fetched
// suffix — and reported as an error; the local key stays a miss, so a
// lying peer costs a fetch, never a wrong result.
func (c *Cache) InstallRaw(key string, stream bool, r io.Reader) (int64, error) {
	magic := cacheMagic
	if stream {
		magic = streamMagic
	}
	path := c.entryPath(key, stream)

	head := make([]byte, len(magic)+sha256.Size)
	if _, err := io.ReadFull(r, head); err != nil {
		return 0, fmt.Errorf("farm: install %s: short header: %w", key, err)
	}
	if string(head[:len(magic)]) != magic {
		return 0, fmt.Errorf("farm: install %s: bad magic %q", key, head[:len(magic)])
	}
	wantDigest := head[len(magic):]

	tmp, err := os.CreateTemp(c.dir, "tmp-"+key[:16]+"-*")
	if err != nil {
		return 0, fmt.Errorf("farm: install: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(head); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("farm: install: %w", err)
	}
	h := sha256.New()
	n, err := io.Copy(io.MultiWriter(tmp, h), r)
	if err != nil {
		tmp.Close()
		return 0, fmt.Errorf("farm: install %s: %w", key, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return 0, fmt.Errorf("farm: install: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return 0, fmt.Errorf("farm: install: %w", err)
	}
	if sum := h.Sum(nil); !bytes.Equal(sum, wantDigest) {
		// Keep the evidence under the entry's name, clearly marked as a
		// fetched body that failed verification.
		dir := filepath.Join(c.dir, "corrupt")
		if os.MkdirAll(dir, 0o755) == nil {
			if os.Rename(tmp.Name(), filepath.Join(dir, filepath.Base(path)+".fetched")) == nil {
				c.quarantined.Add(1)
				c.quarantineMu.Lock()
				c.quarantinedKind[entryKind(path)]++
				c.quarantineMu.Unlock()
			}
		}
		return 0, fmt.Errorf("farm: install %s: digest mismatch on fetched entry", key)
	}
	size := int64(len(head)) + n
	if err := c.publish(tmp.Name(), path, size); err != nil {
		return 0, fmt.Errorf("farm: install: %w", err)
	}
	return size, nil
}

// syncDir fsyncs a directory so a rename within it is durable.
// Platforms that refuse directory fsync degrade silently — same policy
// as the journal's FS seam.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

// encodeEntry renders a cache entry:
//
//	magic(8) | sha256(32) | metaLen(4) meta | repLen(4) report | trace
//
// The digest covers every byte after itself. The report section may be
// empty (length 0) when the characterization cannot be marshaled (NaNs
// from degenerate series); Load then recomputes it from the trace.
func encodeEntry(res *core.Result, rep *core.Report, magic string) ([]byte, error) {
	var payload bytes.Buffer
	meta := entryMeta{
		Elapsed:  int64(res.Elapsed),
		SegStats: res.SegStats,
		RepConn:  res.RepConn,
	}
	if res.RunErr != nil {
		meta.RunErr = &runErrJSON{
			Program: res.RunErr.Program,
			Rank:    res.RunErr.Rank,
			Phase:   res.RunErr.Phase,
			Msg:     res.RunErr.Err.Error(),
		}
	}
	metaBytes, err := json.Marshal(meta)
	if err != nil {
		return nil, fmt.Errorf("farm: encode meta: %w", err)
	}
	repBytes, err := marshalReport(rep)
	if err != nil {
		repBytes = nil // degenerate characterization: recompute on load
	}
	writeSection := func(b []byte) {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(b)))
		payload.Write(n[:])
		payload.Write(b)
	}
	writeSection(metaBytes)
	writeSection(repBytes)
	if err := res.Trace.WriteBinary(&payload); err != nil {
		return nil, fmt.Errorf("farm: encode trace: %w", err)
	}

	var out bytes.Buffer
	out.WriteString(magic)
	digest := sha256.Sum256(payload.Bytes())
	out.Write(digest[:])
	out.Write(payload.Bytes())
	return out.Bytes(), nil
}

// decodeEntry parses and verifies a cache entry body.
func decodeEntry(body []byte, cfg core.RunConfig, magic string) (*core.Result, *core.Report, error) {
	headLen := len(magic) + sha256.Size
	if len(body) < headLen || string(body[:len(magic)]) != magic {
		return nil, nil, errors.New("farm: bad cache magic")
	}
	digest := body[len(magic):headLen]
	payload := body[headLen:]
	if sum := sha256.Sum256(payload); !bytes.Equal(digest, sum[:]) {
		return nil, nil, errors.New("farm: cache digest mismatch")
	}
	readSection := func() ([]byte, error) {
		if len(payload) < 4 {
			return nil, io.ErrUnexpectedEOF
		}
		n := binary.LittleEndian.Uint32(payload[:4])
		payload = payload[4:]
		if uint64(n) > uint64(len(payload)) {
			return nil, io.ErrUnexpectedEOF
		}
		b := payload[:n]
		payload = payload[n:]
		return b, nil
	}
	metaBytes, err := readSection()
	if err != nil {
		return nil, nil, err
	}
	var meta entryMeta
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return nil, nil, err
	}
	repBytes, err := readSection()
	if err != nil {
		return nil, nil, err
	}
	var rep *core.Report
	if len(repBytes) > 0 {
		if rep, err = unmarshalReport(repBytes); err != nil {
			rep = nil // damaged report section: trace is still good
		}
	}
	tr, err := trace.ReadBinary(bytes.NewReader(payload))
	if err != nil {
		return nil, nil, err
	}
	res := &core.Result{
		Config:   cfg,
		Trace:    tr,
		Elapsed:  sim.Time(meta.Elapsed),
		SegStats: meta.SegStats,
		RepConn:  meta.RepConn,
	}
	if meta.RunErr != nil {
		res.RunErr = &fx.RunError{
			Program: meta.RunErr.Program,
			Rank:    meta.RunErr.Rank,
			Phase:   meta.RunErr.Phase,
			Err:     errors.New(meta.RunErr.Msg),
		}
	}
	return res, rep, nil
}

// reportJSON mirrors core.Report field for field with JSON-marshalable
// spectra (complex128 coefficients split into re/im arrays). Go's JSON
// float encoding is shortest-round-trip, so numbers printed from a
// revived report are byte-identical to the originals.
type reportJSON struct {
	Program          string        `json:"program"`
	AggSize          stats.Summary `json:"agg_size"`
	ConnSize         stats.Summary `json:"conn_size"`
	AggInterarrival  stats.Summary `json:"agg_interarrival"`
	ConnInterarrival stats.Summary `json:"conn_interarrival"`
	AggKBps          float64       `json:"agg_kbps"`
	ConnKBps         float64       `json:"conn_kbps"`
	AggSeries        []float64     `json:"agg_series"`
	ConnSeries       []float64     `json:"conn_series"`
	SeriesDT         float64       `json:"series_dt"`
	AggSpectrum      *spectrumJSON `json:"agg_spectrum"`
	ConnSpectrum     *spectrumJSON `json:"conn_spectrum"`
	SizeModes        int           `json:"size_modes"`
	Correlation      float64       `json:"correlation"`
	Coincidence      float64       `json:"coincidence"`
}

type spectrumJSON struct {
	Freq    []float64 `json:"freq"`
	Power   []float64 `json:"power"`
	CoeffRe []float64 `json:"coeff_re"`
	CoeffIm []float64 `json:"coeff_im"`
	DF      float64   `json:"df"`
	N       int       `json:"n"`
	DT      float64   `json:"dt"`
}

func spectrumToJSON(s *dsp.Spectrum) *spectrumJSON {
	if s == nil {
		return nil
	}
	out := &spectrumJSON{Freq: s.Freq, Power: s.Power, DF: s.DF, N: s.N, DT: s.DT}
	out.CoeffRe = make([]float64, len(s.Coeff))
	out.CoeffIm = make([]float64, len(s.Coeff))
	for i, c := range s.Coeff {
		out.CoeffRe[i] = real(c)
		out.CoeffIm[i] = imag(c)
	}
	return out
}

func spectrumFromJSON(s *spectrumJSON) (*dsp.Spectrum, error) {
	if s == nil {
		return nil, nil
	}
	if len(s.CoeffRe) != len(s.CoeffIm) {
		return nil, errors.New("farm: spectrum coefficient arrays disagree")
	}
	out := &dsp.Spectrum{Freq: s.Freq, Power: s.Power, DF: s.DF, N: s.N, DT: s.DT}
	out.Coeff = make([]complex128, len(s.CoeffRe))
	for i := range s.CoeffRe {
		out.Coeff[i] = complex(s.CoeffRe[i], s.CoeffIm[i])
	}
	return out, nil
}

// MarshalReport renders a characterization as JSON — the cache's report
// section and fxfarm's -out artifact format.
func MarshalReport(rep *core.Report) ([]byte, error) { return marshalReport(rep) }

// UnmarshalReport parses a characterization written by MarshalReport.
func UnmarshalReport(b []byte) (*core.Report, error) { return unmarshalReport(b) }

// marshalReport renders a characterization as JSON (the cache's report
// section and fxfarm's -out artifact format).
func marshalReport(rep *core.Report) ([]byte, error) {
	if rep == nil {
		return nil, nil
	}
	return json.Marshal(reportJSON{
		Program:          rep.Program,
		AggSize:          rep.AggSize,
		ConnSize:         rep.ConnSize,
		AggInterarrival:  rep.AggInterarrival,
		ConnInterarrival: rep.ConnInterarrival,
		AggKBps:          rep.AggKBps,
		ConnKBps:         rep.ConnKBps,
		AggSeries:        rep.AggSeries,
		ConnSeries:       rep.ConnSeries,
		SeriesDT:         rep.SeriesDT,
		AggSpectrum:      spectrumToJSON(rep.AggSpectrum),
		ConnSpectrum:     spectrumToJSON(rep.ConnSpectrum),
		SizeModes:        rep.SizeModes,
		Correlation:      rep.Correlation,
		Coincidence:      rep.Coincidence,
	})
}

func unmarshalReport(b []byte) (*core.Report, error) {
	var rj reportJSON
	if err := json.Unmarshal(b, &rj); err != nil {
		return nil, err
	}
	agg, err := spectrumFromJSON(rj.AggSpectrum)
	if err != nil {
		return nil, err
	}
	conn, err := spectrumFromJSON(rj.ConnSpectrum)
	if err != nil {
		return nil, err
	}
	return &core.Report{
		Program:          rj.Program,
		AggSize:          rj.AggSize,
		ConnSize:         rj.ConnSize,
		AggInterarrival:  rj.AggInterarrival,
		ConnInterarrival: rj.ConnInterarrival,
		AggKBps:          rj.AggKBps,
		ConnKBps:         rj.ConnKBps,
		AggSeries:        rj.AggSeries,
		ConnSeries:       rj.ConnSeries,
		SeriesDT:         rj.SeriesDT,
		AggSpectrum:      agg,
		ConnSpectrum:     conn,
		SizeModes:        rj.SizeModes,
		Correlation:      rj.Correlation,
		Coincidence:      rj.Coincidence,
	}, nil
}
