package farm

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"fxnet/internal/core"
	"fxnet/internal/fx"
)

// keyVersion namespaces cache keys. Bump it whenever the simulator's
// observable behaviour changes (a new transport default, a cost-model
// tweak, a trace-format change): old cache entries then simply miss and
// are recomputed, which is the only safe reaction to a semantic change.
const keyVersion = "fxfarm-v1"

// Key computes the content-addressed identity of a run configuration: two
// configs hash equal exactly when core.Run would produce byte-identical
// traces for them. Every field of core.RunConfig participates (a
// reflection test in key_test.go enforces that new fields cannot be added
// without extending this encoding).
func Key(cfg core.RunConfig) string {
	h := sha256.New()
	fmt.Fprintln(h, keyVersion)
	writeField(h, "program", cfg.Program)
	writeField(h, "p", cfg.P)
	writeField(h, "params", fmt.Sprintf("%d/%d", cfg.Params.N, cfg.Params.Iters))
	writeField(h, "airshed", fmt.Sprintf("%d/%d/%d/%d/%d/%d",
		cfg.AirshedParams.Layers, cfg.AirshedParams.Species, cfg.AirshedParams.Grid,
		cfg.AirshedParams.Steps, cfg.AirshedParams.Hours, cfg.AirshedParams.Band))
	writeField(h, "seed", cfg.Seed)
	writeField(h, "bitrate", cfg.BitRate)
	writeCost(h, cfg.Cost)
	writeField(h, "desched-off", cfg.DisableDesched)
	writeField(h, "force-copyloop", cfg.ForceCopyLoop)
	writeField(h, "force-fragments", cfg.ForceFragments)
	writeField(h, "net", fmt.Sprintf("%d/%d/%d/%d/%d/%t/%d/%d",
		cfg.Net.SendWindow, cfg.Net.AckEvery, int64(cfg.Net.DelayedAckTimeout),
		int64(cfg.Net.RTO), int64(cfg.Net.MaxRTO), cfg.Net.Nagle,
		cfg.Net.MaxRetransmits, int64(cfg.Net.ConnectTimeout)))
	writeField(h, "keepalive", int64(cfg.KeepaliveInterval))
	writeField(h, "loss", cfg.FrameLossProb)
	writeField(h, "switched", cfg.Switched)
	writeField(h, "nagle", cfg.Nagle)
	writeField(h, "cross-kbps", cfg.CrossTrafficKBps)
	writeField(h, "guarantee", cfg.GuaranteeProgram)
	// Faults takes precedence over FaultScript in core.Run; Schedule.String
	// round-trips through faults.Parse, so it is a canonical form.
	if cfg.Faults != nil {
		writeField(h, "faults", cfg.Faults.String())
	} else {
		writeField(h, "faults", cfg.FaultScript)
	}
	writeField(h, "degrade", cfg.Degrade)
	writeField(h, "heartbeat-misses", cfg.HeartbeatMisses)
	// Versioned extension: the topology field is hashed only when set, so
	// every pre-topology config — and every cache entry written for one —
	// keeps its exact key. Spec() is canonical (sorted, collapsed host
	// ranges; defaults omitted), so equivalent topologies hash equal.
	// The field name carries its own version: per-pair lookahead changed
	// the multi-segment event schedule, so "topology-v2" misses every
	// entry the old engine produced while leaving single-kernel keys —
	// the vast majority of any warm cache — untouched.
	if cfg.Topology != nil {
		writeField(h, "topology-v2", cfg.Topology.Spec())
	}
	return hex.EncodeToString(h.Sum(nil))
}

func writeField(w io.Writer, name string, v any) {
	fmt.Fprintf(w, "%s=%v\n", name, v)
}

// writeCost hashes a cost-model override; map iteration order is
// neutralized by sorting the rate keys.
func writeCost(w io.Writer, c *fx.CostModel) {
	if c == nil {
		writeField(w, "cost", "calibrated")
		return
	}
	writeField(w, "cost.default", c.DefaultRate)
	writeField(w, "cost.desched", fmt.Sprintf("%g/%d", c.DeschedProb, int64(c.DeschedMean)))
	writeField(w, "cost.jitter", c.JitterFrac)
	keys := make([]string, 0, len(c.Rates))
	for k := range c.Rates {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		writeField(w, "cost.rate."+k, c.Rates[k])
	}
}
