package farm

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"fxnet/internal/core"
	"fxnet/internal/kernels"
)

// tinyConfig is a seconds-scale run for cache tests.
func tinyConfig(seed int64) core.RunConfig {
	return core.RunConfig{
		Program: "sor", Seed: seed,
		Params:            kernels.Params{N: 16, Iters: 2},
		KeepaliveInterval: -1,
	}
}

func tinyRun(t testing.TB, seed int64) (*core.Result, *core.Report) {
	t.Helper()
	res, err := core.Run(tinyConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return res, core.Characterize(res)
}

func traceBytes(t testing.TB, res *core.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.Trace.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig(1)
	res, rep := tinyRun(t, 1)
	key := Key(cfg)

	if _, _, ok := c.Load(key, cfg); ok {
		t.Fatal("load before store reported a hit")
	}
	if err := c.Store(key, res, rep); err != nil {
		t.Fatal(err)
	}
	got, gotRep, ok := c.Load(key, cfg)
	if !ok {
		t.Fatal("load after store missed")
	}
	if !bytes.Equal(traceBytes(t, got), traceBytes(t, res)) {
		t.Error("trace did not survive the cache byte-identically")
	}
	if got.Elapsed != res.Elapsed {
		t.Errorf("elapsed: got %v want %v", got.Elapsed, res.Elapsed)
	}
	if got.SegStats != res.SegStats {
		t.Errorf("segstats: got %+v want %+v", got.SegStats, res.SegStats)
	}
	if got.RepConn != res.RepConn {
		t.Errorf("repconn: got %v want %v", got.RepConn, res.RepConn)
	}
	if got.Workers != nil || got.Team != nil {
		t.Error("cached result carries live worker/team handles")
	}
	if gotRep.AggKBps != rep.AggKBps || gotRep.AggSize != rep.AggSize ||
		gotRep.SizeModes != rep.SizeModes || gotRep.Coincidence != rep.Coincidence {
		t.Errorf("report did not survive the cache: got %+v", gotRep)
	}
	if gotRep.AggSpectrum.DominantFreq() != rep.AggSpectrum.DominantFreq() {
		t.Error("spectrum did not survive the cache")
	}
}

// cacheFile returns the single entry file in the cache dir.
func cacheFile(t *testing.T, c *Cache) string {
	t.Helper()
	ents, err := filepath.Glob(filepath.Join(c.Dir(), "*.fxrun"))
	if err != nil || len(ents) != 1 {
		t.Fatalf("want one cache entry, got %v (%v)", ents, err)
	}
	return ents[0]
}

func TestCacheTolerantOfDamage(t *testing.T) {
	cfg := tinyConfig(2)
	res, rep := tinyRun(t, 2)
	key := Key(cfg)

	damage := map[string]func([]byte) []byte{
		"truncated-header": func(b []byte) []byte { return b[:10] },
		"truncated-body":   func(b []byte) []byte { return b[:len(b)/2] },
		"empty":            func(b []byte) []byte { return nil },
		"bit-flip": func(b []byte) []byte {
			b[len(b)-5] ^= 0x40
			return b
		},
		"bad-magic": func(b []byte) []byte {
			copy(b, "NOTAFARM")
			return b
		},
		"garbage": func([]byte) []byte { return []byte("not a cache entry at all") },
	}
	for name, corrupt := range damage {
		t.Run(name, func(t *testing.T) {
			c, err := OpenCache(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Store(key, res, rep); err != nil {
				t.Fatal(err)
			}
			path := cacheFile(t, c)
			body, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(body), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, ok := c.Load(key, cfg); ok {
				t.Fatal("damaged entry reported as a hit")
			}
			// The farm's contract: damage costs a recompute, never an error.
			f := New(Options{Workers: 1, Cache: c})
			got, _, err := f.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(traceBytes(t, got), traceBytes(t, res)) {
				t.Error("recomputed run differs from original")
			}
			if s := f.Stats(); s.Executed != 1 || s.CacheHits != 0 {
				t.Errorf("stats after damaged entry: %+v, want 1 execution", s)
			}
		})
	}
}

// TestCacheEntryWithoutReport exercises the degenerate-characterization
// path: an entry stored with no report section recomputes it on load.
func TestCacheEntryWithoutReport(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig(3)
	res, rep := tinyRun(t, 3)
	key := Key(cfg)
	body, err := encodeEntry(res, nil, cacheMagic)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.path(key), body, 0o644); err != nil {
		t.Fatal(err)
	}
	_, gotRep, ok := c.Load(key, cfg)
	if !ok {
		t.Fatal("report-less entry missed")
	}
	if gotRep == nil || gotRep.AggKBps != rep.AggKBps {
		t.Errorf("recomputed report wrong: %+v", gotRep)
	}
}

// A corrupt entry is quarantined on load — moved to corrupt/ so the
// evidence survives, the key goes back to missing, and the counter
// ticks — then a re-store and reload work normally.
func TestCacheQuarantinesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig(3)
	res, rep := tinyRun(t, 3)
	key := Key(cfg)
	if err := c.Store(key, res, rep); err != nil {
		t.Fatal(err)
	}

	// Rot the stored entry: flip one byte in the middle.
	p := filepath.Join(dir, key+".fxrun")
	body, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	body[len(body)/2] ^= 0x01
	if err := os.WriteFile(p, body, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, ok := c.Load(key, cfg); ok {
		t.Fatal("corrupt entry loaded as a hit")
	}
	if got := c.Quarantined(); got != 1 {
		t.Fatalf("Quarantined() = %d, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "corrupt", key+".fxrun")); err != nil {
		t.Fatalf("corrupt entry not preserved in corrupt/: %v", err)
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatalf("corrupt entry still at original path (err %v)", err)
	}

	// A second probe of the now-missing key is a plain miss, not a
	// second quarantine.
	if _, _, ok := c.Load(key, cfg); ok {
		t.Fatal("missing key reported a hit")
	}
	if got := c.Quarantined(); got != 1 {
		t.Fatalf("Quarantined() after plain miss = %d, want 1", got)
	}

	// Re-store heals the key.
	if err := c.Store(key, res, rep); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Load(key, cfg); !ok {
		t.Fatal("re-stored entry missed")
	}
}

// Stream entries quarantine through the same path.
func TestCacheQuarantinesCorruptStreamEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig(4)
	res, rep := tinyRun(t, 4)
	key := Key(cfg)
	if err := c.StoreStream(key, res, rep); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, key+".fxspec")
	body, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	body[len(body)/2] ^= 0x01
	if err := os.WriteFile(p, body, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.LoadStream(key, cfg); ok {
		t.Fatal("corrupt stream entry loaded as a hit")
	}
	if got := c.Quarantined(); got != 1 {
		t.Fatalf("Quarantined() = %d, want 1", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "corrupt", key+".fxspec")); err != nil {
		t.Fatalf("corrupt stream entry not preserved: %v", err)
	}
}
