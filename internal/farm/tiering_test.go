package farm

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMemoLRUEntriesCap: with a 2-entry cap, running 3 distinct configs
// evicts the oldest; resubmitting it re-executes while the newer two
// still answer from memory.
func TestMemoLRUEntriesCap(t *testing.T) {
	f := New(Options{Workers: 1, Memoize: true, MemoMaxEntries: 2})
	for seed := int64(1); seed <= 3; seed++ {
		if _, _, err := f.Run(tinyConfig(seed)); err != nil {
			t.Fatal(err)
		}
	}
	if s := f.Stats(); s.Executed != 3 || s.MemoEvicted != 1 {
		t.Fatalf("stats %+v, want 3 executed / 1 evicted", s)
	}
	// Seeds 2 and 3 are still memoized.
	for seed := int64(2); seed <= 3; seed++ {
		if _, _, err := f.Run(tinyConfig(seed)); err != nil {
			t.Fatal(err)
		}
	}
	if s := f.Stats(); s.Executed != 3 {
		t.Fatalf("memoized reruns executed: %+v", s)
	}
	// Seed 1 was evicted: it must re-execute (correct, just not cached).
	if _, _, err := f.Run(tinyConfig(1)); err != nil {
		t.Fatal(err)
	}
	if s := f.Stats(); s.Executed != 4 {
		t.Fatalf("evicted key did not re-execute: %+v", s)
	}
}

// TestMemoLRUBytesCap: a byte cap far below one result's footprint
// still retains the most recent entry (the cap never evicts the newest
// result, or memoization would be useless) but evicts predecessors.
func TestMemoLRUBytesCap(t *testing.T) {
	f := New(Options{Workers: 1, Memoize: true, MemoMaxBytes: 1})
	if _, _, err := f.Run(tinyConfig(1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.Run(tinyConfig(1)); err != nil {
		t.Fatal(err)
	}
	if s := f.Stats(); s.Executed != 1 || s.Deduped != 1 {
		t.Fatalf("newest entry not retained under byte cap: %+v", s)
	}
	if _, _, err := f.Run(tinyConfig(2)); err != nil {
		t.Fatal(err)
	}
	if s := f.Stats(); s.MemoEvicted != 1 {
		t.Fatalf("predecessor not evicted under byte cap: %+v", s)
	}
}

// TestMemoUncappedByDefault preserves the pre-LRU contract: zero caps
// never evict.
func TestMemoUncappedByDefault(t *testing.T) {
	f := New(Options{Workers: 1, Memoize: true})
	for seed := int64(1); seed <= 4; seed++ {
		if _, _, err := f.Run(tinyConfig(seed)); err != nil {
			t.Fatal(err)
		}
	}
	for seed := int64(1); seed <= 4; seed++ {
		if _, _, err := f.Run(tinyConfig(seed)); err != nil {
			t.Fatal(err)
		}
	}
	if s := f.Stats(); s.Executed != 4 || s.MemoEvicted != 0 {
		t.Fatalf("stats %+v, want 4 executed / 0 evicted", s)
	}
}

// TestPeerFetchTier: a farm whose local disk misses pulls the entry
// from a "peer" cache (here: another directory) through the PeerFetch
// hook and serves it as a cache hit without executing.
func TestPeerFetchTier(t *testing.T) {
	peerDir, localDir := t.TempDir(), t.TempDir()
	peerCache, err := OpenCache(peerDir)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the peer.
	warm := New(Options{Workers: 1, Cache: peerCache})
	cfg := tinyConfig(42)
	res, _, err := warm.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	key := Key(cfg)

	localCache, err := OpenCache(localDir)
	if err != nil {
		t.Fatal(err)
	}
	fetches := 0
	f := New(Options{Workers: 1, Cache: localCache,
		PeerFetch: func(ctx context.Context, k string, stream bool) bool {
			fetches++
			if k != key || stream {
				t.Errorf("peer fetch for key=%s stream=%v", k, stream)
			}
			rc, _, err := peerCache.OpenEntry(k, stream)
			if err != nil {
				return false
			}
			defer rc.Close()
			if _, err := localCache.InstallRaw(k, stream, rc); err != nil {
				t.Errorf("install: %v", err)
				return false
			}
			return true
		}})
	got, _, err := f.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fetches != 1 {
		t.Fatalf("peer fetches = %d, want 1", fetches)
	}
	if s := f.Stats(); s.Executed != 0 || s.CacheHits != 1 || s.PeerHits != 1 {
		t.Fatalf("stats %+v, want 0 executed / 1 cache hit / 1 peer hit", s)
	}
	if !bytes.Equal(traceBytes(t, got), traceBytes(t, res)) {
		t.Fatal("peer-fetched trace differs from the original")
	}
}

// TestPeerFetchMissFallsThrough: a fetch that finds nothing leaves the
// job to execute normally.
func TestPeerFetchMissFallsThrough(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f := New(Options{Workers: 1, Cache: c,
		PeerFetch: func(ctx context.Context, k string, stream bool) bool { return false }})
	if _, _, err := f.Run(tinyConfig(7)); err != nil {
		t.Fatal(err)
	}
	if s := f.Stats(); s.Executed != 1 || s.PeerHits != 0 {
		t.Fatalf("stats %+v, want 1 executed / 0 peer hits", s)
	}
}

// TestInstallRawVerifiesDigest: a bit-flipped entry body is refused,
// quarantined under corrupt/, and the key stays a miss.
func TestInstallRawVerifiesDigest(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	src, err := OpenCache(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	warm := New(Options{Workers: 1, Cache: src})
	cfg := tinyConfig(9)
	if _, _, err := warm.Run(cfg); err != nil {
		t.Fatal(err)
	}
	key := Key(cfg)
	body, err := os.ReadFile(filepath.Join(srcDir, key+".fxrun"))
	if err != nil {
		t.Fatal(err)
	}
	body[len(body)-1] ^= 0x01 // flip a payload bit

	dst, err := OpenCache(dstDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dst.InstallRaw(key, false, bytes.NewReader(body)); err == nil {
		t.Fatal("InstallRaw accepted a corrupt entry")
	} else if !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("unexpected error: %v", err)
	}
	if dst.Quarantined() != 1 {
		t.Fatalf("quarantined = %d, want 1", dst.Quarantined())
	}
	if kinds := dst.QuarantinedKinds(); kinds["run"] != 1 {
		t.Fatalf("quarantine kinds = %v", kinds)
	}
	if _, _, ok := dst.Load(key, cfg); ok {
		t.Fatal("corrupt install became loadable")
	}
	if _, err := os.Stat(filepath.Join(dstDir, "corrupt", key+".fxrun.fetched")); err != nil {
		t.Fatalf("quarantine evidence missing: %v", err)
	}
	if st := dst.Stats(); st.Entries != 0 {
		t.Fatalf("census counts a never-published entry: %+v", st)
	}

	// The clean body installs fine and round-trips.
	body[len(body)-1] ^= 0x01
	n, err := dst.InstallRaw(key, false, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(body)) {
		t.Fatalf("installed %d bytes, want %d", n, len(body))
	}
	if _, _, ok := dst.Load(key, cfg); !ok {
		t.Fatal("installed entry does not load")
	}
	if st := dst.Stats(); st.Entries != 1 || st.Bytes != int64(len(body)) {
		t.Fatalf("census = %+v, want 1 entry / %d bytes", st, len(body))
	}
}

// TestInstallRawRejectsBadMagic: a stream entry cannot be installed
// under the run kind (and vice versa) — the magic check runs before any
// bytes are spooled.
func TestInstallRawRejectsBadMagic(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	junk := append([]byte("NOTMAGIC"), make([]byte, 64)...)
	if _, err := c.InstallRaw("00112233445566778899aabbccddeeff", false, bytes.NewReader(junk)); err == nil {
		t.Fatal("InstallRaw accepted a bad magic")
	}
	if c.Quarantined() != 0 {
		t.Fatal("bad magic should be refused, not quarantined (nothing was spooled)")
	}
}

// TestCacheCensus tracks entries/bytes across store, reopen, and
// quarantine.
func TestCacheCensus(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := New(Options{Workers: 1, Cache: c})
	for seed := int64(1); seed <= 2; seed++ {
		if _, _, err := f.Run(tinyConfig(seed)); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 2 || st.Bytes <= 0 {
		t.Fatalf("census after 2 stores = %+v", st)
	}

	// A reopened cache re-takes the census from disk.
	c2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2 := c2.Stats(); st2 != st {
		t.Fatalf("reopened census %+v != live census %+v", st2, st)
	}

	// Corrupting an entry and probing it quarantines and shrinks the
	// census.
	key := Key(tinyConfig(1))
	path := filepath.Join(dir, key+".fxrun")
	if err := os.WriteFile(path, []byte("FXFARM01garbage-that-wont-verify-padding-padding"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c2.Load(key, tinyConfig(1)); ok {
		t.Fatal("corrupt entry loaded")
	}
	st3 := c2.Stats()
	if st3.Entries != 1 {
		t.Fatalf("census after quarantine = %+v, want 1 entry", st3)
	}
	if st3.Bytes >= st.Bytes {
		t.Fatalf("census bytes did not shrink after quarantine: %+v vs %+v", st3, st)
	}
}
