// Package farm is the experiment-execution engine that scales the
// reproduction's measurement pipeline: it takes batches of run
// configurations, hashes each into a content-addressed key, and executes
// them on a bounded worker pool with single-flight deduplication, an
// on-disk result cache, and per-job progress/ETA reporting.
//
// Every simulation is a single-threaded deterministic DES with no shared
// mutable package state (see DESIGN.md §7), so cross-experiment
// parallelism is a pure win: a batch run with any worker count produces
// results byte-identical to the serial run, job by job.
package farm

import (
	"container/list"
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"fxnet/internal/core"
	"fxnet/internal/dsp"
)

// Options configures a Farm.
type Options struct {
	// Workers bounds how many simulations execute concurrently; <= 0
	// selects GOMAXPROCS.
	Workers int
	// Cache is the on-disk result cache; nil disables disk caching.
	Cache *Cache
	// Memoize keeps completed results in memory, so resubmitting a key
	// never re-simulates within this process even without a disk cache
	// (the benchmark harness's mode). Retention is bounded by
	// MemoMaxEntries/MemoMaxBytes; with both zero, results are retained
	// for the farm's lifetime (the pre-LRU behavior).
	Memoize bool
	// MemoMaxEntries and MemoMaxBytes bound the in-memory memo: when
	// either cap is exceeded the least-recently-used entries are
	// evicted (and count in Stats.MemoEvicted). Bytes are an estimate —
	// trace records plus characterization series — not a malloc audit;
	// the point is that a long-lived daemon's memo stops growing without
	// bound, not accounting to the byte. Zero = uncapped on that axis.
	MemoMaxEntries int
	MemoMaxBytes   int64
	// PeerFetch, when non-nil, is the third cache tier: on a local disk
	// miss it may pull the key's content-addressed entry from a cluster
	// peer into the local cache and report success, after which the farm
	// re-probes the disk. It runs inside the key's single-flight slot,
	// so one miss triggers at most one peer fetch regardless of how many
	// submitters are waiting, and before a worker slot is taken, so
	// network wait never occupies a simulation worker.
	PeerFetch func(ctx context.Context, key string, stream bool) bool
	// OnProgress, when non-nil, receives one event per completed job.
	// Events are delivered serially; the callback must not call back
	// into the farm.
	OnProgress func(Event)
}

// Job is one unit of work: a run configuration plus a presentation label.
type Job struct {
	// Label identifies the job in progress output ("2dfft", "P=8", …).
	Label string
	// Config is the experiment to run.
	Config core.RunConfig
	// Stream selects the analysis-only pipeline: the run folds packets
	// into the characterization as they are captured and never
	// materializes a trace, so the JobResult carries a metadata-only
	// Trace and a Report that is bit-identical to the trace-derived one
	// (series, spectra, bandwidths; SD within the documented streaming
	// tolerance). Stream jobs deduplicate against each other but not
	// against trace jobs of the same configuration — the results differ
	// in what they retain — and cache as spectrum-level entries that skip
	// both the simulation and the FFT on a hit.
	Stream bool
}

// JobResult is a completed job.
type JobResult struct {
	Job Job
	// Key is the content-addressed identity of Job.Config.
	Key string
	// Result and Report are the run and its characterization. Results
	// served from the disk cache or shared with a deduplicated twin have
	// no live Workers/Team handles and must be treated as read-only.
	Result *core.Result
	Report *core.Report
	// Err is the submission failure, if any (unknown program, bad fault
	// script, …). A run that aborts cleanly under faults is a valid
	// measurement: it arrives with Err == nil and Result.RunErr set.
	Err error
	// Cached reports a disk-cache hit; Deduped reports that this job
	// shared an in-flight or memoized execution of the same key.
	Cached  bool
	Deduped bool
	// Wall is the real time from submission to completion.
	Wall time.Duration
}

// Event is a progress report: job number done of total submitted so far,
// plus a rough ETA from the mean wall time of executed (non-cached) runs
// and the current worker count.
type Event struct {
	Label   string
	Key     string
	Done    int64
	Total   int64
	Cached  bool
	Deduped bool
	Wall    time.Duration
	ETA     time.Duration
}

// Stats counts farm activity.
type Stats struct {
	// Submitted jobs; Completed of them have finished.
	Submitted int64
	Completed int64
	// Executed counts actual simulations; CacheHits disk-cache loads;
	// Deduped jobs that shared another execution; Failed submission
	// errors; Cancelled jobs abandoned through their context before a
	// simulation ran on their behalf.
	Executed  int64
	CacheHits int64
	Deduped   int64
	Failed    int64
	Cancelled int64
	// PeerHits counts disk-cache loads that were satisfied only after a
	// peer fetch installed the entry (a subset of CacheHits).
	// MemoEvicted counts memoized results dropped by the LRU caps.
	PeerHits    int64
	MemoEvicted int64
	// Running is the number of simulations holding a worker slot right
	// now (the service's "in-flight sims" gauge). Queued jobs are
	// Submitted − Completed − Running.
	Running int64
}

// call is a single-flight execution slot for one key.
type call struct {
	done chan struct{}
	res  *core.Result
	rep  *core.Report
	err  error
	// cached marks a leader that was served from disk.
	cached bool
}

// memoEntry is one LRU-tracked memoized result.
type memoEntry struct {
	slot string
	c    *call
	size int64
	elem *list.Element // element in Farm.memoList, value = *memoEntry
}

// Farm executes run configurations on a bounded worker pool.
type Farm struct {
	sem            chan struct{}
	cache          *Cache
	memoize        bool
	memoMaxEntries int
	memoMaxBytes   int64
	peerFetch      func(ctx context.Context, key string, stream bool) bool
	onProgress     func(Event)
	// runFn executes one configuration; tests stub it to model slow or
	// blocking simulations. Defaults to core.Run.
	runFn func(core.RunConfig) (*core.Result, error)
	// runStreamFn executes one configuration in streaming-analysis mode,
	// returning the report directly. Defaults to core.RunStream.
	runStreamFn func(core.RunConfig) (*core.Result, *core.Report, error)

	mu         sync.Mutex
	progressMu sync.Mutex
	calls      map[string]*call
	memo       map[string]*memoEntry
	memoList   *list.List // front = most recently used
	memoBytes  int64
	stats      Stats
	wallSum    time.Duration // total wall of executed runs, for ETA
	wallN      int64
}

// New creates a Farm.
func New(opts Options) *Farm {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Farm{
		sem:            make(chan struct{}, w),
		cache:          opts.Cache,
		memoize:        opts.Memoize,
		memoMaxEntries: opts.MemoMaxEntries,
		memoMaxBytes:   opts.MemoMaxBytes,
		peerFetch:      opts.PeerFetch,
		onProgress:     opts.OnProgress,
		runFn:          core.Run,
		runStreamFn:    core.RunStream,
		calls:          make(map[string]*call),
		memo:           make(map[string]*memoEntry),
		memoList:       list.New(),
	}
}

// memoGet looks a slot up in the memo and marks it most recently used.
// Caller holds f.mu.
func (f *Farm) memoGet(slot string) (*call, bool) {
	e, ok := f.memo[slot]
	if !ok {
		return nil, false
	}
	f.memoList.MoveToFront(e.elem)
	return e.c, true
}

// memoPut inserts a completed call and evicts LRU entries past the
// caps. Caller holds f.mu.
func (f *Farm) memoPut(slot string, c *call) {
	if old, ok := f.memo[slot]; ok {
		f.memoList.Remove(old.elem)
		f.memoBytes -= old.size
	}
	e := &memoEntry{slot: slot, c: c, size: memoSize(c)}
	e.elem = f.memoList.PushFront(e)
	f.memo[slot] = e
	f.memoBytes += e.size
	for f.memoList.Len() > 1 &&
		((f.memoMaxEntries > 0 && f.memoList.Len() > f.memoMaxEntries) ||
			(f.memoMaxBytes > 0 && f.memoBytes > f.memoMaxBytes)) {
		back := f.memoList.Back()
		ev := back.Value.(*memoEntry)
		f.memoList.Remove(back)
		delete(f.memo, ev.slot)
		f.memoBytes -= ev.size
		f.stats.MemoEvicted++
	}
}

// memoSize estimates a memoized result's memory footprint: trace
// records (the columnar capture dominates), characterization series,
// and spectra, plus a fixed overhead floor.
func memoSize(c *call) int64 {
	const perPacket = 48 // columnar record + index share, estimated
	size := int64(4096)
	if c.res != nil && c.res.Trace != nil {
		size += int64(c.res.Trace.Len()) * perPacket
	}
	if c.rep != nil {
		size += int64(len(c.rep.AggSeries)+len(c.rep.ConnSeries)) * 8
		for _, sp := range []*dsp.Spectrum{c.rep.AggSpectrum, c.rep.ConnSpectrum} {
			if sp != nil {
				size += int64(len(sp.Freq)+len(sp.Power)) * 8
				size += int64(len(sp.Coeff)) * 16
			}
		}
	}
	return size
}

// Workers reports the worker-pool bound.
func (f *Farm) Workers() int { return cap(f.sem) }

// Cache reports the disk cache, nil when disabled.
func (f *Farm) Cache() *Cache { return f.cache }

// Stats returns a snapshot of the farm's counters.
func (f *Farm) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Run executes a single configuration (submitting it through the pool,
// cache, and dedup machinery) and blocks for the outcome.
func (f *Farm) Run(cfg core.RunConfig) (*core.Result, *core.Report, error) {
	return f.RunCtx(context.Background(), cfg)
}

// RunCtx is Run under a context: a job cancelled while it is queued for a
// worker slot (or while it waits on a deduplicated twin) returns the
// context error without ever occupying a worker. A simulation that has
// already started runs to completion — the DES kernel has no preemption
// points — but its result is still stored and memoized, so the work is
// not wasted.
func (f *Farm) RunCtx(ctx context.Context, cfg core.RunConfig) (*core.Result, *core.Report, error) {
	jr := f.do(ctx, Job{Label: cfg.Program, Config: cfg})
	return jr.Result, jr.Report, jr.Err
}

// RunStream is Run for the streaming-analysis pipeline: the simulation
// folds packets into the characterization as they happen, no trace is
// materialized, and a cache hit needs only the spectrum-level entry.
func (f *Farm) RunStream(cfg core.RunConfig) (*core.Result, *core.Report, error) {
	return f.RunStreamCtx(context.Background(), cfg)
}

// RunStreamCtx is RunStream under a context, with RunCtx's semantics.
func (f *Farm) RunStreamCtx(ctx context.Context, cfg core.RunConfig) (*core.Result, *core.Report, error) {
	jr := f.do(ctx, Job{Label: cfg.Program, Config: cfg, Stream: true})
	return jr.Result, jr.Report, jr.Err
}

// RunBatch executes jobs concurrently (bounded by the worker pool) and
// returns their results in submission order. Identical configurations
// within the batch are simulated once and share the result.
func (f *Farm) RunBatch(jobs []Job) []JobResult {
	return f.RunBatchCtx(context.Background(), jobs)
}

// RunBatchCtx is RunBatch under a shared context; cancelling it abandons
// every job of the batch that has not yet started executing.
func (f *Farm) RunBatchCtx(ctx context.Context, jobs []Job) []JobResult {
	out := make([]JobResult, len(jobs))
	var wg sync.WaitGroup
	for i, job := range jobs {
		wg.Add(1)
		go func(i int, job Job) {
			defer wg.Done()
			out[i] = f.do(ctx, job)
		}(i, job)
	}
	wg.Wait()
	return out
}

// Submit executes jobs like RunBatch but streams results in completion
// order; the channel closes when the batch is done.
func (f *Farm) Submit(jobs []Job) <-chan JobResult {
	ch := make(chan JobResult, len(jobs))
	var wg sync.WaitGroup
	for _, job := range jobs {
		wg.Add(1)
		go func(job Job) {
			defer wg.Done()
			ch <- f.do(context.Background(), job)
		}(job)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	return ch
}

// isCtxErr reports whether an error is a context cancellation/deadline.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// do runs one job through dedup → cache → pool.
func (f *Farm) do(ctx context.Context, job Job) JobResult {
	start := time.Now()
	key := Key(job.Config)
	jr := JobResult{Job: job, Key: key}
	// Stream jobs single-flight in their own namespace: a stream result
	// (no packets) must never be handed to a trace job, and vice versa.
	slot := key
	if job.Stream {
		slot = "stream/" + key
	}

	f.mu.Lock()
	f.stats.Submitted++
	for {
		if c, ok := f.memoGet(slot); ok {
			f.stats.Deduped++
			f.mu.Unlock()
			jr.Result, jr.Report, jr.Err = c.res, c.rep, c.err
			jr.Deduped, jr.Cached = true, c.cached
			f.finish(&jr, start)
			return jr
		}
		if c, ok := f.calls[slot]; ok {
			f.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				jr.Err = ctx.Err()
				f.mu.Lock()
				f.stats.Cancelled++
				f.mu.Unlock()
				f.finish(&jr, start)
				return jr
			}
			if isCtxErr(c.err) && ctx.Err() == nil {
				// The leader was abandoned, not us: retry as a fresh
				// leader rather than inheriting its cancellation.
				f.mu.Lock()
				continue
			}
			f.mu.Lock()
			f.stats.Deduped++
			f.mu.Unlock()
			jr.Result, jr.Report, jr.Err = c.res, c.rep, c.err
			jr.Deduped, jr.Cached = true, c.cached
			f.finish(&jr, start)
			return jr
		}
		break
	}
	c := &call{done: make(chan struct{})}
	f.calls[slot] = c
	f.mu.Unlock()

	f.lead(ctx, key, job, c)

	f.mu.Lock()
	delete(f.calls, slot)
	if f.memoize && c.err == nil {
		f.memoPut(slot, c)
	}
	switch {
	case c.err == nil:
	case isCtxErr(c.err):
		f.stats.Cancelled++
	default:
		f.stats.Failed++
	}
	f.mu.Unlock()
	close(c.done)

	jr.Result, jr.Report, jr.Err = c.res, c.rep, c.err
	jr.Cached = c.cached
	f.finish(&jr, start)
	return jr
}

// lead performs the actual work for a key through the cache tiers:
// local disk probe, then (on a miss) a peer fetch that re-probes the
// disk, then a worker-pool slot and the simulation. A context cancelled
// before the slot is acquired frees the job without consuming a worker.
func (f *Farm) lead(ctx context.Context, key string, job Job, c *call) {
	cfg := job.Config
	if f.cache != nil {
		load := func() (*core.Result, *core.Report, bool) {
			if job.Stream {
				return f.cache.LoadStream(key, cfg)
			}
			return f.cache.Load(key, cfg)
		}
		res, rep, ok := load()
		peer := false
		if !ok && f.peerFetch != nil && ctx.Err() == nil {
			if f.peerFetch(ctx, key, job.Stream) {
				res, rep, ok = load()
				peer = ok
			}
		}
		if ok {
			c.res, c.rep, c.cached = res, rep, true
			f.mu.Lock()
			f.stats.CacheHits++
			if peer {
				f.stats.PeerHits++
			}
			f.mu.Unlock()
			return
		}
	}
	select {
	case f.sem <- struct{}{}:
	case <-ctx.Done():
		c.err = ctx.Err()
		return
	}
	if err := ctx.Err(); err != nil {
		// Cancelled in the same instant the slot freed: give it back.
		<-f.sem
		c.err = err
		return
	}
	f.mu.Lock()
	f.stats.Running++
	f.mu.Unlock()
	runStart := time.Now()
	var res *core.Result
	var rep *core.Report
	var err error
	if job.Stream {
		res, rep, err = f.runStreamFn(cfg)
	} else {
		res, err = f.runFn(cfg)
	}
	f.mu.Lock()
	f.stats.Running--
	f.mu.Unlock()
	<-f.sem
	if err != nil {
		c.err = err
		return
	}
	if rep == nil {
		rep = core.Characterize(res)
	}
	c.res, c.rep = res, rep
	f.mu.Lock()
	f.stats.Executed++
	f.wallSum += time.Since(runStart)
	f.wallN++
	f.mu.Unlock()
	if f.cache != nil {
		// A store failure (full disk, read-only dir) costs future time,
		// not this result's correctness; surface nothing.
		if job.Stream {
			_ = f.cache.StoreStream(key, res, rep)
		} else {
			_ = f.cache.Store(key, res, rep)
		}
	}
}

// finish updates completion counters and emits the progress event.
func (f *Farm) finish(jr *JobResult, start time.Time) {
	jr.Wall = time.Since(start)
	f.mu.Lock()
	f.stats.Completed++
	ev := Event{
		Label:   jr.Job.Label,
		Key:     jr.Key,
		Done:    f.stats.Completed,
		Total:   f.stats.Submitted,
		Cached:  jr.Cached,
		Deduped: jr.Deduped,
		Wall:    jr.Wall,
	}
	if f.wallN > 0 {
		avg := f.wallSum / time.Duration(f.wallN)
		remaining := f.stats.Submitted - f.stats.Completed
		workers := int64(cap(f.sem))
		ev.ETA = avg * time.Duration((remaining+workers-1)/workers)
	}
	cb := f.onProgress
	f.mu.Unlock()
	if cb != nil {
		f.progressMu.Lock()
		cb(ev)
		f.progressMu.Unlock()
	}
}
