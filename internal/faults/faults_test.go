package faults

import (
	"fmt"
	"strings"
	"testing"

	"fxnet/internal/sim"
)

func TestParseRoundTrip(t *testing.T) {
	scripts := []string{
		"5s:linkdown host2,7s:linkup host2",
		"2s:partition host0+host1|host2+host3,4s:heal",
		"3s:crash host3,10s:restart host3",
		"1s:bitrate 5e+06,2s:duplicate 0.01,2s:reorder 0.005",
		"6s:stall host1 2s",
		"250ms:segdown,1s:segup",
	}
	for _, script := range scripts {
		s, err := Parse(script)
		if err != nil {
			t.Errorf("Parse(%q): %v", script, err)
			continue
		}
		if got := s.String(); got != script {
			t.Errorf("round trip %q → %q", script, got)
		}
	}
}

func TestParseSortsByOffset(t *testing.T) {
	s, err := Parse("7s:linkup host2,5s:linkdown host2")
	if err != nil {
		t.Fatal(err)
	}
	if s.Faults[0].Kind != LinkDown || s.Faults[1].Kind != LinkUp {
		t.Errorf("events not sorted by offset: %v", s)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []struct{ script, wants string }{
		{"5s linkdown host2", "offset"},
		{"xx:linkdown host2", "offset"},
		{"5s:frobnicate host2", "unknown fault"},
		{"5s:linkdown", "host"},
		{"5s:heal host2", "no arguments"},
		{"5s:partition host0+host1", "two groups"},
		{"5s:bitrate -3", "positive"},
		{"5s:duplicate 1.5", "probability"},
		{"5s:stall host1", "duration"},
		{"-2s:linkdown host2", "negative"},
	}
	for _, tc := range bad {
		if _, err := Parse(tc.script); err == nil {
			t.Errorf("Parse(%q) succeeded, want error mentioning %q", tc.script, tc.wants)
		} else if !strings.Contains(err.Error(), tc.wants) {
			t.Errorf("Parse(%q) error %q, want mention of %q", tc.script, err, tc.wants)
		}
	}
}

// testHooks records fired faults and resolves hostN names.
func testHooks(fired *[]string) Hooks {
	note := func(format string, args ...any) {
		*fired = append(*fired, fmt.Sprintf(format, args...))
	}
	return Hooks{
		HostIndex: func(name string) (int, bool) {
			if strings.HasPrefix(name, "host") {
				if n := name[len("host"):]; len(n) == 1 && n[0] >= '0' && n[0] <= '3' {
					return int(n[0] - '0'), true
				}
			}
			return 0, false
		},
		LinkDown:    func(h int, down bool) { note("link %d %v", h, down) },
		SegmentDown: func(down bool) { note("segment %v", down) },
		Partition:   func(groups [][]int) { note("partition %v", groups) },
		Heal:        func() { note("heal") },
		Crash:       func(h int) { note("crash %d", h) },
		Restart:     func(h int) { note("restart %d", h) },
		BitRate:     func(bps float64) { note("bitrate %g", bps) },
		Duplicate:   func(p float64) { note("dup %g", p) },
		Reorder:     func(p float64) { note("reorder %g", p) },
		Stall:       func(h int, d sim.Duration) { note("stall %d %v", h, d) },
	}
}

func TestApplyFiresInScriptOrder(t *testing.T) {
	k := sim.New(1)
	s := MustParse("2s:linkdown host1,4s:partition host0|host1,5s:heal,6s:linkup host1,7s:crash host2,9s:restart host2")
	var fired []string
	if err := Apply(k, s, testHooks(&fired)); err != nil {
		t.Fatal(err)
	}
	k.Run()
	want := []string{
		"link 1 true",
		"partition [[0] [1]]",
		"heal",
		"link 1 false",
		"crash 2",
		"restart 2",
	}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Errorf("event %d = %q, want %q", i, fired[i], want[i])
		}
	}
}

func TestApplyAnnotates(t *testing.T) {
	k := sim.New(1)
	s := MustParse("3s:segdown,5s:segup")
	var fired []string
	h := testHooks(&fired)
	var marks []string
	h.Annotate = func(at sim.Time, f Fault) {
		marks = append(marks, fmt.Sprintf("%v %s", at, f.String()))
	}
	if err := Apply(k, s, h); err != nil {
		t.Fatal(err)
	}
	k.Run()
	if len(marks) != 2 || !strings.Contains(marks[0], "segdown") || !strings.Contains(marks[1], "segup") {
		t.Errorf("marks = %v", marks)
	}
}

func TestApplyRejectsUnknownHost(t *testing.T) {
	k := sim.New(1)
	var fired []string
	s := MustParse("2s:linkdown host9")
	if err := Apply(k, s, testHooks(&fired)); err == nil {
		t.Fatal("Apply accepted an unresolvable host")
	}
	k.Run()
	if len(fired) != 0 {
		t.Errorf("events armed despite validation failure: %v", fired)
	}
}

func TestApplyRejectsMissingHook(t *testing.T) {
	k := sim.New(1)
	var fired []string
	h := testHooks(&fired)
	h.Partition = nil // e.g. a switched topology with no collision domain
	s := MustParse("2s:partition host0|host1")
	err := Apply(k, s, h)
	if err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Fatalf("Apply = %v, want a not-supported error", err)
	}
}

func TestEmptyScriptParsesToEmptySchedule(t *testing.T) {
	s, err := Parse("")
	if err != nil || !s.Empty() {
		t.Errorf("Parse(\"\") = %v, %v; want empty schedule", s, err)
	}
	var nilSched *Schedule
	if !nilSched.Empty() {
		t.Error("nil schedule should report Empty")
	}
}
