// Package faults is the deterministic fault-injection subsystem: a
// Schedule of timed Fault events — link flaps, partitions, host crashes,
// rate degradation, frame duplication/reordering, compute stalls —
// compiled onto the simulation's event queue through a Hooks table the
// runtime wires to the MAC, transport, PVM, and Fx layers.
//
// The package deliberately knows nothing about those layers: it depends
// only on internal/sim, so any layer can be driven without import
// cycles. Every fault fires at a scripted virtual time and any
// randomness downstream (frame duplication, reordering) draws from its
// own named kernel stream, so a fixed (seed, schedule) pair replays
// byte-identically.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"fxnet/internal/sim"
)

// Kind identifies a fault type.
type Kind int

// The fault types, by the layer they strike: the MAC (LinkDown through
// Reorder), the whole machine (HostCrash/HostRestart), or the compute
// model (ComputeStall).
const (
	// LinkDown silences one station's link: frames to or from it are
	// dropped at delivery (they still occupy the wire). LinkUp restores.
	LinkDown Kind = iota
	LinkUp
	// SegmentDown silences the whole segment; SegmentUp restores.
	SegmentDown
	SegmentUp
	// NetPartition splits the stations into isolated groups; frames
	// crossing a group boundary are dropped. Heal removes the partition.
	NetPartition
	Heal
	// HostCrash kills every process on a host and crashes its transport
	// stack; HostRestart brings the stack and daemon back up.
	HostCrash
	HostRestart
	// BitRateDegrade overrides the segment bit rate (Rate, in bits/s).
	BitRateDegrade
	// FrameDuplicate delivers each frame twice with probability Rate.
	FrameDuplicate
	// FrameReorder swaps adjacent deliveries with probability Rate.
	FrameReorder
	// ComputeStall adds Dur of OS-deschedule stall to the next compute
	// phase of the named host's workers (§6.1's stall, on demand).
	ComputeStall
)

var kindNames = map[Kind]string{
	LinkDown:       "linkdown",
	LinkUp:         "linkup",
	SegmentDown:    "segdown",
	SegmentUp:      "segup",
	NetPartition:   "partition",
	Heal:           "heal",
	HostCrash:      "crash",
	HostRestart:    "restart",
	BitRateDegrade: "bitrate",
	FrameDuplicate: "duplicate",
	FrameReorder:   "reorder",
	ComputeStall:   "stall",
}

var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Fault is one scheduled event.
type Fault struct {
	// At is the virtual-time offset from the start of the run.
	At sim.Duration
	// Kind selects the fault type.
	Kind Kind
	// Host names the target for LinkDown/LinkUp, HostCrash/HostRestart,
	// and ComputeStall.
	Host string
	// Groups lists the partition's host groups for NetPartition.
	Groups [][]string
	// Rate is the new bit rate (BitRateDegrade, bits/s) or probability
	// (FrameDuplicate/FrameReorder).
	Rate float64
	// Dur is the stall length for ComputeStall.
	Dur sim.Duration
}

// String renders the fault in the script syntax Parse accepts.
func (f Fault) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%s", formatDur(f.At), f.Kind)
	switch f.Kind {
	case LinkDown, LinkUp, HostCrash, HostRestart:
		fmt.Fprintf(&b, " %s", f.Host)
	case NetPartition:
		gs := make([]string, len(f.Groups))
		for i, g := range f.Groups {
			gs[i] = strings.Join(g, "+")
		}
		fmt.Fprintf(&b, " %s", strings.Join(gs, "|"))
	case BitRateDegrade:
		fmt.Fprintf(&b, " %g", f.Rate)
	case FrameDuplicate, FrameReorder:
		fmt.Fprintf(&b, " %g", f.Rate)
	case ComputeStall:
		fmt.Fprintf(&b, " %s %s", f.Host, formatDur(f.Dur))
	}
	return b.String()
}

func formatDur(d sim.Duration) string {
	return time.Duration(d).String()
}

// Schedule is an ordered fault script.
type Schedule struct {
	Faults []Fault
}

// String renders the schedule in the script syntax Parse accepts.
func (s *Schedule) String() string {
	parts := make([]string, len(s.Faults))
	for i, f := range s.Faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, ",")
}

// Empty reports whether the schedule has no faults.
func (s *Schedule) Empty() bool { return s == nil || len(s.Faults) == 0 }

// Parse reads a fault script: comma-separated events of the form
// "<offset>:<kind> [args]", e.g.
//
//	5s:linkdown host2,7s:linkup host2
//	2s:partition host0+host1|host2+host3,4s:heal
//	3s:crash host3,10s:restart host3
//	1s:bitrate 5e6,2s:duplicate 0.01,2s:reorder 0.005
//	6s:stall host1 2s
//
// Offsets use Go duration syntax (5s, 250ms). Events are sorted by
// offset, ties keeping script order.
func Parse(script string) (*Schedule, error) {
	s := &Schedule{}
	script = strings.TrimSpace(script)
	if script == "" {
		return s, nil
	}
	for _, item := range strings.Split(script, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		colon := strings.Index(item, ":")
		if colon < 0 {
			return nil, fmt.Errorf("faults: %q: missing ':' between offset and kind", item)
		}
		td, err := time.ParseDuration(strings.TrimSpace(item[:colon]))
		if err != nil {
			return nil, fmt.Errorf("faults: %q: bad offset: %v", item, err)
		}
		if td < 0 {
			return nil, fmt.Errorf("faults: %q: negative offset", item)
		}
		fields := strings.Fields(item[colon+1:])
		if len(fields) == 0 {
			return nil, fmt.Errorf("faults: %q: missing fault kind", item)
		}
		kind, ok := kindByName[strings.ToLower(fields[0])]
		if !ok {
			return nil, fmt.Errorf("faults: %q: unknown fault kind %q", item, fields[0])
		}
		f := Fault{At: sim.Duration(td), Kind: kind}
		args := fields[1:]
		switch kind {
		case LinkDown, LinkUp, HostCrash, HostRestart:
			if len(args) != 1 {
				return nil, fmt.Errorf("faults: %q: %s needs exactly one host", item, kind)
			}
			f.Host = args[0]
		case SegmentDown, SegmentUp, Heal:
			if len(args) != 0 {
				return nil, fmt.Errorf("faults: %q: %s takes no arguments", item, kind)
			}
		case NetPartition:
			if len(args) != 1 {
				return nil, fmt.Errorf("faults: %q: partition needs group1+...|group2+...", item)
			}
			for _, g := range strings.Split(args[0], "|") {
				hosts := strings.Split(g, "+")
				for _, h := range hosts {
					if h == "" {
						return nil, fmt.Errorf("faults: %q: empty host in partition group", item)
					}
				}
				f.Groups = append(f.Groups, hosts)
			}
			if len(f.Groups) < 2 {
				return nil, fmt.Errorf("faults: %q: partition needs at least two groups", item)
			}
		case BitRateDegrade, FrameDuplicate, FrameReorder:
			if len(args) != 1 {
				return nil, fmt.Errorf("faults: %q: %s needs one numeric argument", item, kind)
			}
			v, err := strconv.ParseFloat(args[0], 64)
			if err != nil {
				return nil, fmt.Errorf("faults: %q: bad value: %v", item, err)
			}
			if kind == BitRateDegrade && v <= 0 {
				return nil, fmt.Errorf("faults: %q: bit rate must be positive", item)
			}
			if kind != BitRateDegrade && (v < 0 || v > 1) {
				return nil, fmt.Errorf("faults: %q: probability outside [0,1]", item)
			}
			f.Rate = v
		case ComputeStall:
			if len(args) != 2 {
				return nil, fmt.Errorf("faults: %q: stall needs <host> <duration>", item)
			}
			f.Host = args[0]
			sd, err := time.ParseDuration(args[1])
			if err != nil || sd <= 0 {
				return nil, fmt.Errorf("faults: %q: bad stall duration", item)
			}
			f.Dur = sim.Duration(sd)
		}
		s.Faults = append(s.Faults, f)
	}
	sort.SliceStable(s.Faults, func(i, j int) bool { return s.Faults[i].At < s.Faults[j].At })
	return s, nil
}

// MustParse is Parse panicking on error, for tests and literals.
func MustParse(script string) *Schedule {
	s, err := Parse(script)
	if err != nil {
		panic(err)
	}
	return s
}

// Hooks is the table of layer entry points a Schedule drives. The
// runtime (internal/core) populates it; any hook left nil makes the
// corresponding fault kinds an Apply-time error rather than a silent
// no-op, so a script never pretends to inject what the topology cannot
// express (e.g. link faults on a switched network).
type Hooks struct {
	// HostIndex resolves a script host name to a machine host index,
	// returning false if unknown.
	HostIndex func(name string) (int, bool)

	LinkDown    func(host int, down bool)
	SegmentDown func(down bool)
	Partition   func(groups [][]int)
	Heal        func()
	Crash       func(host int)
	Restart     func(host int)
	BitRate     func(bps float64)
	Duplicate   func(prob float64)
	Reorder     func(prob float64)
	Stall       func(host int, d sim.Duration)

	// Annotate, if set, records each fault firing (for trace marks).
	Annotate func(at sim.Time, f Fault)
}

// hook returns the hook a fault kind needs, as an untyped nil check.
func (h *Hooks) missing(k Kind) bool {
	switch k {
	case LinkDown, LinkUp:
		return h.LinkDown == nil
	case SegmentDown, SegmentUp:
		return h.SegmentDown == nil
	case NetPartition:
		return h.Partition == nil
	case Heal:
		return h.Heal == nil
	case HostCrash:
		return h.Crash == nil
	case HostRestart:
		return h.Restart == nil
	case BitRateDegrade:
		return h.BitRate == nil
	case FrameDuplicate:
		return h.Duplicate == nil
	case FrameReorder:
		return h.Reorder == nil
	case ComputeStall:
		return h.Stall == nil
	}
	return true
}

// Apply validates the schedule against the hooks and arms one kernel
// event per fault. Validation is strict and up-front: unknown host
// names, partition groups that resolve to nothing, or fault kinds the
// topology provides no hook for all fail before any event is armed.
func Apply(k *sim.Kernel, s *Schedule, h Hooks) error {
	if s.Empty() {
		return nil
	}
	resolve := func(name string) (int, error) {
		if h.HostIndex == nil {
			return 0, fmt.Errorf("faults: no host resolver configured")
		}
		idx, ok := h.HostIndex(name)
		if !ok {
			return 0, fmt.Errorf("faults: unknown host %q", name)
		}
		return idx, nil
	}
	type armed struct {
		f    Fault
		fire func()
	}
	plan := make([]armed, 0, len(s.Faults))
	for _, f := range s.Faults {
		if h.missing(f.Kind) {
			return fmt.Errorf("faults: %s not supported by this topology", f.Kind)
		}
		var fire func()
		switch f.Kind {
		case LinkDown, LinkUp:
			idx, err := resolve(f.Host)
			if err != nil {
				return err
			}
			down := f.Kind == LinkDown
			fire = func() { h.LinkDown(idx, down) }
		case SegmentDown, SegmentUp:
			down := f.Kind == SegmentDown
			fire = func() { h.SegmentDown(down) }
		case NetPartition:
			groups := make([][]int, len(f.Groups))
			for i, g := range f.Groups {
				for _, name := range g {
					idx, err := resolve(name)
					if err != nil {
						return err
					}
					groups[i] = append(groups[i], idx)
				}
			}
			fire = func() { h.Partition(groups) }
		case Heal:
			fire = h.Heal
		case HostCrash, HostRestart:
			idx, err := resolve(f.Host)
			if err != nil {
				return err
			}
			if f.Kind == HostCrash {
				fire = func() { h.Crash(idx) }
			} else {
				fire = func() { h.Restart(idx) }
			}
		case BitRateDegrade:
			rate := f.Rate
			fire = func() { h.BitRate(rate) }
		case FrameDuplicate:
			p := f.Rate
			fire = func() { h.Duplicate(p) }
		case FrameReorder:
			p := f.Rate
			fire = func() { h.Reorder(p) }
		case ComputeStall:
			idx, err := resolve(f.Host)
			if err != nil {
				return err
			}
			d := f.Dur
			fire = func() { h.Stall(idx, d) }
		default:
			return fmt.Errorf("faults: unhandled kind %v", f.Kind)
		}
		plan = append(plan, armed{f: f, fire: fire})
	}
	for _, a := range plan {
		a := a
		k.After(a.f.At, "fault:"+a.f.Kind.String(), func() {
			a.fire()
			if h.Annotate != nil {
				h.Annotate(k.Now(), a.f)
			}
		})
	}
	return nil
}
