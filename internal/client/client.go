// Package client is the shared fxnetd client used by fxload and other
// tooling. It wraps net/http with the retry discipline a crash-safe
// server makes worthwhile: capped exponential backoff with full jitter,
// an overall per-call deadline, Retry-After honor on 429/503, and
// content-addressed idempotency keys so a retried submit lands on the
// originally accepted job instead of creating a duplicate.
//
// Only requests that are safe to repeat are retried: all GETs, and
// POSTs that carry an Idempotency-Key (a keyed submit is exactly-once
// server-side, so re-sending it is free). An unkeyed POST gets one
// attempt — the caller cannot know whether a timed-out submit was
// accepted.
package client

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"
)

// IdempotencyKeyHeader mirrors server.IdempotencyKeyHeader without
// importing the server package into client binaries.
const IdempotencyKeyHeader = "Idempotency-Key"

// Policy bounds the retry loop. Zero values take the defaults noted on
// each field.
type Policy struct {
	MaxAttempts int           // total tries including the first (default 4)
	BaseDelay   time.Duration // first backoff step (default 50ms)
	MaxDelay    time.Duration // backoff cap and Retry-After clamp (default 2s)
	Deadline    time.Duration // overall per-call budget (default 30s)
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Deadline <= 0 {
		p.Deadline = 30 * time.Second
	}
	return p
}

// Client talks to one fxnetd base URL. Safe for concurrent use.
type Client struct {
	Base     string       // e.g. "http://127.0.0.1:8080", no trailing slash
	ClientID string       // X-Client-ID value; empty = header omitted
	HTTP     *http.Client // default: shared transport, no client timeout (Policy.Deadline governs)
	Retry    Policy

	rngMu sync.Mutex
	rng   *rand.Rand
}

// New returns a client with the default retry policy.
func New(base string) *Client {
	return &Client{Base: base, HTTP: &http.Client{}}
}

// Response is the terminal outcome of a (possibly retried) call.
type Response struct {
	Status   int
	Body     []byte
	Attempts int // how many HTTP requests were sent
}

// retryable reports whether a status code is worth another attempt:
// throttling and the server's transient refusals (shedding, draining,
// recovering, breaker-open, journal unavailable) all surface as 429/503,
// and 502/504 cover intermediaries.
func retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// backoff returns the sleep before attempt n (0-based for the first
// retry), using full jitter over an exponentially growing cap, clamped
// by MaxDelay. A server-provided Retry-After (seconds) overrides the
// exponential schedule but is still clamped.
func (c *Client) backoff(p Policy, n int, retryAfter string) time.Duration {
	if retryAfter != "" {
		if secs, err := strconv.Atoi(retryAfter); err == nil && secs >= 0 {
			d := time.Duration(secs) * time.Second
			if d > p.MaxDelay {
				d = p.MaxDelay
			}
			return d
		}
	}
	ceil := p.BaseDelay << uint(n)
	if ceil > p.MaxDelay || ceil <= 0 {
		ceil = p.MaxDelay
	}
	c.rngMu.Lock()
	if c.rng == nil {
		c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	d := time.Duration(c.rng.Int63n(int64(ceil) + 1))
	c.rngMu.Unlock()
	return d
}

// Do issues method path with body, retrying per the policy when the
// request is idempotent (GET, or any request with an Idempotency-Key in
// hdr). The context bounds the whole call in addition to
// Policy.Deadline; body is re-sent from the start on each attempt.
func (c *Client) Do(ctx context.Context, method, path string, body []byte, hdr http.Header) (*Response, error) {
	p := c.Retry.withDefaults()
	ctx, cancel := context.WithTimeout(ctx, p.Deadline)
	defer cancel()

	idempotent := method == http.MethodGet || method == http.MethodDelete ||
		hdr.Get(IdempotencyKeyHeader) != ""
	attempts := p.MaxAttempts
	if !idempotent {
		attempts = 1
	}

	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	var lastErr error
	for n := 0; n < attempts; n++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
		if err != nil {
			return nil, err
		}
		for k, vs := range hdr {
			req.Header[k] = vs
		}
		if body != nil && req.Header.Get("Content-Type") == "" {
			req.Header.Set("Content-Type", "application/json")
		}
		if c.ClientID != "" {
			req.Header.Set("X-Client-ID", c.ClientID)
		}

		resp, err := hc.Do(req)
		var retryAfter string
		if err == nil {
			b, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && !retryable(resp.StatusCode) {
				return &Response{Status: resp.StatusCode, Body: b, Attempts: n + 1}, nil
			}
			if rerr != nil {
				lastErr = rerr
			} else {
				lastErr = fmt.Errorf("%s %s: status %d: %s", method, path, resp.StatusCode, truncate(b))
				retryAfter = resp.Header.Get("Retry-After")
				if n == attempts-1 {
					// Out of attempts: hand the caller the response rather
					// than burying the status in an error string.
					return &Response{Status: resp.StatusCode, Body: b, Attempts: n + 1}, nil
				}
			}
		} else {
			lastErr = err
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
		}

		if n == attempts-1 {
			break
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("%w (last error: %v)", ctx.Err(), lastErr)
		case <-time.After(c.backoff(p, n, retryAfter)):
		}
	}
	return nil, lastErr
}

func truncate(b []byte) string {
	const max = 200
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}

// Accepted is the submit acknowledgement (202 payload).
type Accepted struct {
	ID               string `json:"id"`
	Key              string `json:"key"`
	State            string `json:"state"`
	IdempotentReplay bool   `json:"idempotent_replay"`
}

// IdempotencyKey derives a content-addressed submit token from the
// request body: identical configurations map to the same key, so a
// retried — or even re-issued — submit of the same work dedups
// server-side across crashes.
func IdempotencyKey(body []byte) string {
	sum := sha256.Sum256(body)
	return "sha256-" + hex.EncodeToString(sum[:16])
}

// Submit posts a run request with a content-addressed Idempotency-Key,
// making the call safe to retry. Non-202 terminal statuses come back as
// errors.
func (c *Client) Submit(ctx context.Context, runReq []byte) (*Accepted, error) {
	hdr := http.Header{}
	hdr.Set(IdempotencyKeyHeader, IdempotencyKey(runReq))
	resp, err := c.Do(ctx, http.MethodPost, "/v1/runs", runReq, hdr)
	if err != nil {
		return nil, err
	}
	if resp.Status != http.StatusAccepted {
		return nil, fmt.Errorf("submit: status %d: %s", resp.Status, truncate(resp.Body))
	}
	var acc Accepted
	if err := json.Unmarshal(resp.Body, &acc); err != nil {
		return nil, fmt.Errorf("submit: bad accept payload: %w", err)
	}
	if acc.ID == "" {
		return nil, errors.New("submit: accept payload missing id")
	}
	return &acc, nil
}

// Status is the poll payload subset tooling needs.
type Status struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Cached   bool   `json:"cached"`
	Deduped  bool   `json:"deduped"`
	RunError string `json:"run_error"`
}

// Poll fetches the current state of a run.
func (c *Client) Poll(ctx context.Context, id string) (*Status, error) {
	resp, err := c.Do(ctx, http.MethodGet, "/v1/runs/"+id, nil, http.Header{})
	if err != nil {
		return nil, err
	}
	if resp.Status != http.StatusOK {
		return nil, fmt.Errorf("poll %s: status %d: %s", id, resp.Status, truncate(resp.Body))
	}
	var st Status
	if err := json.Unmarshal(resp.Body, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// WaitDone polls until the run reaches a terminal state or the context
// expires. It returns the final status; a "failed" or "cancelled" run is
// not an error at this layer — callers decide.
func (c *Client) WaitDone(ctx context.Context, id string, interval time.Duration) (*Status, error) {
	if interval <= 0 {
		interval = 25 * time.Millisecond
	}
	for {
		st, err := c.Poll(ctx, id)
		if err != nil {
			return nil, err
		}
		switch st.State {
		case "done", "failed", "cancelled":
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(interval):
		}
	}
}

// Trace fetches the full result stream for a done run in the requested
// format ("" = NDJSON, "bin" = binary frames), returning the raw bytes.
// Byte-identical traces across a crash/restart are the chaos harness's
// ground truth.
func (c *Client) Trace(ctx context.Context, id, format string) ([]byte, error) {
	path := "/v1/runs/" + id + "/trace"
	if format != "" {
		path += "?format=" + format
	}
	resp, err := c.Do(ctx, http.MethodGet, path, nil, http.Header{})
	if err != nil {
		return nil, err
	}
	if resp.Status != http.StatusOK {
		return nil, fmt.Errorf("trace %s: status %d: %s", id, resp.Status, truncate(resp.Body))
	}
	return resp.Body, nil
}

// FitModel posts a model-fit request (raw JSON body for
// POST /v1/models/fit) with a content-addressed Idempotency-Key, so a
// retried fit lands on the originally accepted job.
func (c *Client) FitModel(ctx context.Context, fitReq []byte) (*Accepted, error) {
	hdr := http.Header{}
	hdr.Set(IdempotencyKeyHeader, IdempotencyKey(fitReq))
	resp, err := c.Do(ctx, http.MethodPost, "/v1/models/fit", fitReq, hdr)
	if err != nil {
		return nil, err
	}
	if resp.Status != http.StatusAccepted {
		return nil, fmt.Errorf("fit: status %d: %s", resp.Status, truncate(resp.Body))
	}
	var acc Accepted
	if err := json.Unmarshal(resp.Body, &acc); err != nil {
		return nil, fmt.Errorf("fit: bad accept payload: %w", err)
	}
	if acc.ID == "" {
		return nil, errors.New("fit: accept payload missing id")
	}
	return &acc, nil
}

// Model fetches one fitted model by run key as raw JSON (the catalog
// entry's wire form); tooling decodes the fields it needs.
func (c *Client) Model(ctx context.Context, key string) ([]byte, error) {
	resp, err := c.Do(ctx, http.MethodGet, "/v1/models/"+key, nil, http.Header{})
	if err != nil {
		return nil, err
	}
	if resp.Status != http.StatusOK {
		return nil, fmt.Errorf("model %s: status %d: %s", key, resp.Status, truncate(resp.Body))
	}
	return resp.Body, nil
}

// Models lists fitted models as raw JSON, optionally filtered by program
// and processor count (zero values skip the filter).
func (c *Client) Models(ctx context.Context, program string, p int) ([]byte, error) {
	path := "/v1/models"
	q := url.Values{}
	if program != "" {
		q.Set("program", program)
	}
	if p > 0 {
		q.Set("p", strconv.Itoa(p))
	}
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	resp, err := c.Do(ctx, http.MethodGet, path, nil, http.Header{})
	if err != nil {
		return nil, err
	}
	if resp.Status != http.StatusOK {
		return nil, fmt.Errorf("models: status %d: %s", resp.Status, truncate(resp.Body))
	}
	return resp.Body, nil
}
