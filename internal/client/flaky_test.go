package client

// Flaky-peer coverage: the retry layer against servers that are slow,
// drop connections mid-body, or shed with Retry-After. These are the
// failure shapes a sharded cluster adds over a single node — a proxying
// shard dies mid-relay, a recovering peer sheds, a saturated owner is
// just slow — and the client must stay correct through all of them:
// bounded backoff, at-most-once unkeyed submits, exactly-once keyed
// submits.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// dropMidBody hijacks the connection, writes a partial response that
// promises more bytes than it delivers, and slams the connection — the
// shape of a peer dying while relaying a proxied response.
func dropMidBody(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic("test server does not support hijack")
	}
	conn, buf, err := hj.Hijack()
	if err != nil {
		panic(err)
	}
	buf.WriteString("HTTP/1.1 200 OK\r\nContent-Length: 1000\r\n\r\n{\"truncat")
	buf.Flush()
	conn.Close()
}

// A GET whose first responses die mid-body is retried until a whole
// response arrives.
func TestRetryGetAfterMidBodyDisconnect(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			dropMidBody(w)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = fastPolicy()
	resp, err := c.Do(context.Background(), http.MethodGet, "/x", nil, http.Header{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusOK || resp.Attempts != 3 {
		t.Fatalf("status %d attempts %d, want 200 after 3", resp.Status, resp.Attempts)
	}
	if !strings.Contains(string(resp.Body), `"ok"`) {
		t.Fatalf("final body %q is not the complete response", resp.Body)
	}
}

// An unkeyed POST that dies mid-body must NOT be retried — a transport
// error after the server may have acted is exactly the ambiguous case
// the single-attempt rule exists for.
func TestUnkeyedPostNotRetriedOnDisconnect(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		dropMidBody(w)
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = fastPolicy()
	_, err := c.Do(context.Background(), http.MethodPost, "/v1/runs", []byte(`{}`), http.Header{})
	if err == nil {
		t.Fatal("expected an error from the truncated response")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("unkeyed POST sent %d times after disconnect, want 1", n)
	}
}

// A keyed submit whose accept response is lost retries under the same
// key and lands on the originally accepted job: the server dedups, the
// client sees the first job's ID.
func TestKeyedSubmitDedupsAcrossLostResponse(t *testing.T) {
	var (
		mu     sync.Mutex
		seen   = map[string]string{} // idempotency key → job ID
		nextID int
		calls  []string
	)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := r.Header.Get(IdempotencyKeyHeader)
		mu.Lock()
		calls = append(calls, key)
		id, dup := seen[key]
		if !dup {
			nextID++
			id = fmt.Sprintf("r-%08d", nextID)
			seen[key] = id
		}
		first := len(calls) == 1
		mu.Unlock()
		if first {
			// The job is committed server-side but the 202 never arrives.
			dropMidBody(w)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]any{"id": id, "state": "queued", "idempotent_replay": dup})
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = fastPolicy()
	body := []byte(`{"program":"sor","p":4,"n":32,"iters":4,"seed":1}`)
	acc, err := c.Submit(context.Background(), body)
	if err != nil {
		t.Fatal(err)
	}
	if acc.ID != "r-00000001" {
		t.Fatalf("retried submit landed on %q, want the originally accepted r-00000001", acc.ID)
	}
	if !acc.IdempotentReplay {
		t.Fatal("server saw a fresh job on retry; the key did not dedup")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 2 || calls[0] != calls[1] || calls[0] == "" {
		t.Fatalf("attempt keys %q, want the same non-empty key twice", calls)
	}
}

// A slow peer inside the deadline just makes the call slow; one past the
// deadline fails with the context error instead of hanging.
func TestSlowPeerBoundedByDeadline(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(150 * time.Millisecond):
		case <-r.Context().Done():
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = Policy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Deadline: 5 * time.Second}
	resp, err := c.Do(context.Background(), http.MethodGet, "/x", nil, http.Header{})
	if err != nil || resp.Status != http.StatusOK || resp.Attempts != 1 {
		t.Fatalf("slow-but-alive peer: resp %+v err %v, want one successful attempt", resp, err)
	}

	c.Retry.Deadline = 30 * time.Millisecond
	t0 := time.Now()
	_, err = c.Do(context.Background(), http.MethodGet, "/x", nil, http.Header{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want context.DeadlineExceeded", err)
	}
	if el := time.Since(t0); el > time.Second {
		t.Fatalf("deadline did not bound the slow peer: took %v", el)
	}
}

// A shedding peer's Retry-After is honored but clamped to MaxDelay: 4
// attempts against "Retry-After: 5" must finish in milliseconds, not 15
// seconds. This is what keeps a whole load-generator fleet from parking
// on one recovering shard.
func TestRetryAfterClampBoundsTotalWait(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "5")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond, Deadline: 5 * time.Second}
	t0 := time.Now()
	resp, err := c.Do(context.Background(), http.MethodGet, "/x", nil, http.Header{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusServiceUnavailable || resp.Attempts != 4 {
		t.Fatalf("status %d attempts %d, want 503 after 4", resp.Status, resp.Attempts)
	}
	if el := time.Since(t0); el > 2*time.Second {
		t.Fatalf("3 clamped waits took %v; Retry-After clamp is not applied", el)
	}
	if n := calls.Load(); n != 4 {
		t.Fatalf("server saw %d calls, want 4", n)
	}
}

// The full gauntlet: a peer that sheds, then dies mid-body, then is
// slow, then answers. One keyed submit must survive the sequence and
// still dedup to a single job.
func TestKeyedSubmitSurvivesFlakySequence(t *testing.T) {
	var calls atomic.Int64
	var created atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
		case 2:
			dropMidBody(w)
		default:
			time.Sleep(20 * time.Millisecond)
			if created.Add(1) > 1 {
				t.Error("more than one job created for one keyed submit")
			}
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(map[string]any{"id": "r-00000042", "state": "queued"})
		}
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = Policy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond, Deadline: 5 * time.Second}
	acc, err := c.Submit(context.Background(), []byte(`{"program":"sor","p":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if acc.ID != "r-00000042" {
		t.Fatalf("id %q", acc.ID)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d attempts, want 3 (shed, disconnect, accept)", n)
	}
}
