package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func fastPolicy() Policy {
	return Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Deadline: 5 * time.Second}
}

// A GET that fails transiently is retried until it succeeds.
func TestRetryGetUntilSuccess(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = fastPolicy()
	resp, err := c.Do(context.Background(), http.MethodGet, "/x", nil, http.Header{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusOK || resp.Attempts != 3 {
		t.Fatalf("status %d attempts %d, want 200 after 3", resp.Status, resp.Attempts)
	}
}

// An unkeyed POST must not be retried: the caller cannot know whether a
// failed submit was accepted.
func TestUnkeyedPostSingleAttempt(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = fastPolicy()
	resp, err := c.Do(context.Background(), http.MethodPost, "/x", []byte(`{}`), http.Header{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 passed through", resp.Status)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("unkeyed POST sent %d times, want 1", n)
	}
}

// A keyed submit retries and every attempt carries the same
// content-addressed key, so the server dedups the replays.
func TestSubmitRetriesWithStableKey(t *testing.T) {
	var calls atomic.Int64
	keys := make(chan string, 8)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		keys <- r.Header.Get(IdempotencyKeyHeader)
		if calls.Add(1) < 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]any{"id": "r-1", "state": "queued"})
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = fastPolicy()
	body := []byte(`{"program":"sor","p":4}`)
	acc, err := c.Submit(context.Background(), body)
	if err != nil {
		t.Fatal(err)
	}
	if acc.ID != "r-1" {
		t.Fatalf("id %q", acc.ID)
	}
	close(keys)
	want := IdempotencyKey(body)
	n := 0
	for k := range keys {
		n++
		if k != want || k == "" {
			t.Fatalf("attempt %d sent key %q, want %q", n, k, want)
		}
	}
	if n != 2 {
		t.Fatalf("server saw %d attempts, want 2", n)
	}
}

// Different bodies get different keys; the same body always the same.
func TestIdempotencyKeyContentAddressed(t *testing.T) {
	a := IdempotencyKey([]byte(`{"program":"sor"}`))
	b := IdempotencyKey([]byte(`{"program":"sor"}`))
	d := IdempotencyKey([]byte(`{"program":"2dfft"}`))
	if a != b {
		t.Fatalf("same body, different keys: %q vs %q", a, b)
	}
	if a == d {
		t.Fatalf("different bodies, same key %q", a)
	}
}

// The per-call deadline cuts off an endless retry loop.
func TestDeadlineBoundsRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = Policy{MaxAttempts: 100, BaseDelay: time.Millisecond, MaxDelay: time.Second, Deadline: 50 * time.Millisecond}
	t0 := time.Now()
	_, err := c.Do(context.Background(), http.MethodGet, "/x", nil, http.Header{})
	if err == nil {
		t.Fatal("expected deadline error")
	}
	if el := time.Since(t0); el > 2*time.Second {
		t.Fatalf("deadline did not bound the loop: took %v", el)
	}
}

// Exhausting attempts on a retryable status returns the response, not a
// bare error, so callers can inspect the status.
func TestExhaustedAttemptsReturnResponse(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = fastPolicy()
	resp, err := c.Do(context.Background(), http.MethodGet, "/x", nil, http.Header{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusTooManyRequests || resp.Attempts != 4 {
		t.Fatalf("status %d attempts %d, want 429 after 4", resp.Status, resp.Attempts)
	}
}

func TestBackoffClampsRetryAfter(t *testing.T) {
	c := New("http://x")
	p := fastPolicy()
	if d := c.backoff(p, 0, "60"); d != p.MaxDelay {
		t.Fatalf("Retry-After 60s gave %v, want clamp to %v", d, p.MaxDelay)
	}
	for n := 0; n < 20; n++ {
		if d := c.backoff(p, n, ""); d < 0 || d > p.MaxDelay {
			t.Fatalf("backoff(%d) = %v outside [0, %v]", n, d, p.MaxDelay)
		}
	}
}
