package server

import "sync/atomic"

// Load-shedding tiers. Overload degrades the service in a deliberate
// order instead of letting everything time out together: new work is
// refused first (a submit costs a simulation), then result traffic
// (polls and streams cost CPU and bytes but no new work), and the ops
// surface — health, readiness, metrics — is never shed, because an
// overloaded node that stops answering its load balancer looks dead
// rather than busy and gets its traffic rerouted to equally overloaded
// peers.
//
// The tier is derived from farm queue depth relative to MaxQueue:
//
//	tier 0  queue < MaxQueue     everything admitted
//	tier 1  queue ≥ MaxQueue     submits shed (503 + Retry-After)
//	tier 2  queue ≥ 2×MaxQueue   polls, traces, QoS traffic shed too
const (
	shedNone = iota
	shedSubmits
	shedPolls
)

// Endpoint shed classes: at which tier an endpoint starts refusing.
const (
	classOps    = iota // never shed
	classPoll          // shed at tier 2
	classSubmit        // shed at tier 1
)

// shedder computes the current tier from queue depth. The queue
// supplier is read per request; farm stats are a mutex-guarded struct
// copy, which at fxnetd's measured request rates is noise.
type shedder struct {
	maxQueue int64
	queue    func() int64
	shed     [3]atomic.Int64 // refused requests by endpoint class
}

func newShedder(maxQueue int, queue func() int64) *shedder {
	if maxQueue <= 0 {
		maxQueue = 256
	}
	return &shedder{maxQueue: int64(maxQueue), queue: queue}
}

// tier reports the current shedding tier.
func (sh *shedder) tier() int {
	q := sh.queue()
	switch {
	case q >= 2*sh.maxQueue:
		return shedPolls
	case q >= sh.maxQueue:
		return shedSubmits
	default:
		return shedNone
	}
}

// admit reports whether an endpoint of the given class passes at the
// current tier, counting refusals.
func (sh *shedder) admit(class int) bool {
	t := sh.tier()
	ok := true
	switch class {
	case classSubmit:
		ok = t < shedSubmits
	case classPoll:
		ok = t < shedPolls
	}
	if !ok {
		sh.shed[class].Add(1)
	}
	return ok
}

func shedClassName(class int) string {
	switch class {
	case classSubmit:
		return "submit"
	case classPoll:
		return "poll"
	default:
		return "ops"
	}
}
