package server

import (
	"net/http"
	"path/filepath"
	"strconv"
	"testing"

	"fxnet/internal/catalog"
)

// fitRun is the smallest configuration whose bandwidth series has
// spectral structure (the 32/4 sizing yields a 3-sample, DC-only series).
func fitRun() RunRequest {
	return RunRequest{Program: "sor", P: 4, N: 64, Iters: 10, Seed: 1}
}

func submitFit(t *testing.T, base string, req FitRequest) string {
	t.Helper()
	var acc map[string]any
	if code := doJSON(t, "POST", base+"/v1/models/fit", req, &acc); code != http.StatusAccepted {
		t.Fatalf("fit submit: HTTP %d (%v)", code, acc)
	}
	id, _ := acc["id"].(string)
	if id == "" {
		t.Fatalf("fit submit: incomplete accept payload %v", acc)
	}
	if acc["analysis"] != "fit" {
		t.Fatalf("fit submit: analysis = %v, want fit", acc["analysis"])
	}
	return id
}

func TestFitJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, Memoize: true, CacheDir: t.TempDir()})

	id := submitFit(t, ts.URL, FitRequest{RunRequest: fitRun()})
	st := waitState(t, ts.URL, id)
	if st.State != stateDone {
		t.Fatalf("fit job: %s (%s)", st.State, st.Error)
	}
	if st.Analysis != "fit" {
		t.Errorf("analysis = %q, want fit", st.Analysis)
	}
	if st.Model == nil {
		t.Fatal("done fit job has no model")
	}
	if st.Model.Key != st.Key {
		t.Errorf("model key %s != job key %s", st.Model.Key, st.Key)
	}
	if st.Model.Spikes != catalog.DefaultSpikes {
		t.Errorf("spikes = %d, want default %d", st.Model.Spikes, catalog.DefaultSpikes)
	}
	if len(st.Model.Components) == 0 {
		t.Error("fitted model has no components")
	}
	if float64(st.Model.MeanRelErr) > 0.05 {
		t.Errorf("mean relative error %g exceeds 5%%", float64(st.Model.MeanRelErr))
	}

	// The model is now listable and fetchable.
	var list struct {
		Models []catalog.EntryJSON `json:"models"`
		Count  int                 `json:"count"`
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/models?program=sor", nil, &list); code != http.StatusOK {
		t.Fatalf("list: HTTP %d", code)
	}
	if list.Count != 1 || len(list.Models) != 1 || list.Models[0].Key != st.Key {
		t.Fatalf("list = %+v", list)
	}
	var got catalog.EntryJSON
	if code := doJSON(t, "GET", ts.URL+"/v1/models/"+st.Key, nil, &got); code != http.StatusOK {
		t.Fatalf("get: HTTP %d", code)
	}
	if got.Key != st.Key || got.Program != "sor" || got.P != 4 {
		t.Fatalf("get = %+v", got)
	}

	// Unknown key and filtered-out listings.
	if code := doJSON(t, "GET", ts.URL+"/v1/models/deadbeef", nil, nil); code != http.StatusNotFound {
		t.Errorf("get unknown: HTTP %d, want 404", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/models?program=hist", nil, &list); code != http.StatusOK || list.Count != 0 {
		t.Errorf("filtered list: HTTP %d count %d", code, list.Count)
	}

	// A second fit of the same config answers from the catalog.
	id2 := submitFit(t, ts.URL, FitRequest{RunRequest: fitRun()})
	st2 := waitState(t, ts.URL, id2)
	if st2.State != stateDone || !st2.Cached {
		t.Fatalf("warm fit: state=%s cached=%v", st2.State, st2.Cached)
	}

	body := fetchMetrics(t, ts.URL)
	if v := metricValue(t, body, "fxnetd_catalog_enabled"); v != 1 {
		t.Errorf("fxnetd_catalog_enabled = %g", v)
	}
	if v := metricValue(t, body, "fxnetd_catalog_entries"); v != 1 {
		t.Errorf("fxnetd_catalog_entries = %g", v)
	}
	if v := metricValue(t, body, "fxnetd_catalog_fits_total"); v != 1 {
		t.Errorf("fxnetd_catalog_fits_total = %g", v)
	}
	if v := metricValue(t, body, "fxnetd_catalog_hits_total"); v < 1 {
		t.Errorf("fxnetd_catalog_hits_total = %g", v)
	}
}

func TestFitDisabledWithoutCatalog(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Memoize: true})
	if code := doJSON(t, "POST", ts.URL+"/v1/models/fit", FitRequest{RunRequest: fitRun()}, nil); code != http.StatusServiceUnavailable {
		t.Errorf("fit without catalog: HTTP %d, want 503", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/models", nil, nil); code != http.StatusServiceUnavailable {
		t.Errorf("list without catalog: HTTP %d, want 503", code)
	}
	body := fetchMetrics(t, ts.URL)
	if v := metricValue(t, body, "fxnetd_catalog_enabled"); v != 0 {
		t.Errorf("fxnetd_catalog_enabled = %g, want 0", v)
	}
}

func TestFitRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Memoize: true, CacheDir: t.TempDir()})
	if code := doJSON(t, "POST", ts.URL+"/v1/models/fit", FitRequest{RunRequest: RunRequest{Program: "nosuch"}}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown program: HTTP %d, want 400", code)
	}
	bad := FitRequest{RunRequest: fitRun()}
	bad.Analysis = "trace"
	if code := doJSON(t, "POST", ts.URL+"/v1/models/fit", bad, nil); code != http.StatusBadRequest {
		t.Errorf("analysis=trace: HTTP %d, want 400", code)
	}
}

func TestCatalogNegotiate(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, Memoize: true, CacheDir: t.TempDir()})

	// Before any fit: catalog-backed negotiation has nothing to answer from.
	if code := doJSON(t, "POST", ts.URL+"/v1/qos/negotiate",
		NegotiateRequest{Program: "sor", Source: "catalog", DryRun: true}, nil); code != http.StatusBadRequest {
		t.Errorf("catalog negotiate with empty catalog: HTTP %d, want 400", code)
	}

	// Fit two processor counts, then negotiate from the measurements.
	for _, p := range []int{2, 4} {
		req := fitRun()
		req.P = p
		id := submitFit(t, ts.URL, FitRequest{RunRequest: req})
		if st := waitState(t, ts.URL, id); st.State != stateDone {
			t.Fatalf("fit P=%d: %s (%s)", p, st.State, st.Error)
		}
	}
	var out struct {
		Offer OfferJSON `json:"offer"`
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/qos/negotiate",
		NegotiateRequest{Program: "sor", Source: "catalog", Client: "t"}, &out); code != http.StatusOK {
		t.Fatalf("catalog negotiate: HTTP %d", code)
	}
	if out.Offer.P != 2 && out.Offer.P != 4 {
		t.Errorf("negotiated P=%d is not a measured point", out.Offer.P)
	}
	if out.Offer.ID == 0 {
		t.Error("catalog admission not committed")
	}
	if code := doJSON(t, "DELETE", ts.URL+"/v1/qos/commitments/"+strconv.Itoa(out.Offer.ID), nil, nil); code != http.StatusOK {
		t.Errorf("release: HTTP %d", code)
	}

	// Bad source values and shapes.
	if code := doJSON(t, "POST", ts.URL+"/v1/qos/negotiate",
		NegotiateRequest{Program: "sor", Source: "psychic"}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown source: HTTP %d, want 400", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/qos/negotiate",
		NegotiateRequest{Source: "catalog"}, nil); code != http.StatusBadRequest {
		t.Errorf("catalog source without program: HTTP %d, want 400", code)
	}
}

func TestFitJournalRecovery(t *testing.T) {
	dir := t.TempDir()

	// Server A journals a fit submission and completes it.
	a, tsA := journaledServer(t, dir, Options{Workers: 2, Memoize: true})
	id := submitFit(t, tsA.URL, FitRequest{RunRequest: fitRun(), Spikes: 6})
	st := waitState(t, tsA.URL, id)
	if st.State != stateDone || st.Model == nil {
		t.Fatalf("fit on A: %s", st.State)
	}
	crash(a, tsA)

	// Server B recovers: the fit job replays (catalog hit — the model
	// survived on disk) and keeps its identity and spike budget.
	_, tsB := journaledServer(t, dir, Options{Workers: 2, Memoize: true})
	st2 := waitState(t, tsB.URL, id)
	if st2.State != stateDone {
		t.Fatalf("fit after recovery: %s (%s)", st2.State, st2.Error)
	}
	if st2.Analysis != "fit" {
		t.Errorf("recovered analysis = %q, want fit", st2.Analysis)
	}
	if st2.Model == nil {
		t.Fatal("recovered fit job has no model")
	}
	if st2.Model.Spikes != 6 {
		t.Errorf("recovered spike budget = %d, want 6", st2.Model.Spikes)
	}
	if st2.Model.Key != st.Model.Key {
		t.Errorf("recovered model key %s != original %s", st2.Model.Key, st.Model.Key)
	}
	if !st2.Cached {
		t.Error("recovered fit did not answer from the catalog")
	}
}

// TestFitModelSurvivesOnDisk: the .fxmodel file is the durable artifact —
// a fresh catalog over the same directory serves the fitted model with
// no farm at all.
func TestFitModelSurvivesOnDisk(t *testing.T) {
	cacheDir := t.TempDir()
	_, ts := newTestServer(t, Options{Workers: 2, Memoize: true, CacheDir: cacheDir})
	id := submitFit(t, ts.URL, FitRequest{RunRequest: fitRun()})
	st := waitState(t, ts.URL, id)
	if st.State != stateDone {
		t.Fatalf("fit: %s", st.State)
	}
	c, err := catalog.Open(filepath.Join(cacheDir, "models"))
	if err != nil {
		t.Fatal(err)
	}
	e, ok := c.Get(st.Key)
	if !ok {
		t.Fatal("fitted model not on disk")
	}
	if e.Program != "sor" || e.Spikes != catalog.DefaultSpikes {
		t.Fatalf("disk entry = %+v", e)
	}
}
