package server

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync/atomic"

	"fxnet/internal/core"
	"fxnet/internal/journal"
)

// The journal's record bodies. The journal itself stores opaque bytes;
// these are the server's wire forms, versioned implicitly by the
// journal file magic.
//
// submittedRec is written before a submission is acknowledged: once a
// client holds a 202, the job is durable. terminalRec is written when a
// job reaches done/failed/cancelled. grantRec/releaseRec mirror the QoS
// ledger. Replay folds these into the recovered state (see recover.go
// for the state machine).
type submittedRec struct {
	ID       string     `json:"id"`
	Key      string     `json:"key"`
	Analysis string     `json:"analysis"`
	IdemKey  string     `json:"idem,omitempty"`
	Request  RunRequest `json:"request"`
	// Fit > 0 marks a model-fit job and carries its spike budget; the
	// field rides on the existing submitted op, so journals written
	// before the catalog existed replay unchanged (Fit = 0, plain run).
	Fit int `json:"fit,omitempty"`
}

type terminalRec struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

type grantRec struct {
	Offer  OfferJSON `json:"offer"`
	Client string    `json:"client,omitempty"`
}

type releaseRec struct {
	ID int `json:"id"`
}

// journalStats counts journal activity for /metrics.
type journalStats struct {
	appends     [5]atomic.Int64 // indexed by journal.Op
	appendFails atomic.Int64
	replayed    atomic.Int64
	truncated   atomic.Int64 // bytes dropped from a torn tail
}

// appendJournal marshals and appends one record; a nil journal is a
// no-op (journaling disabled). The error is the caller's signal that
// durability cannot be promised.
func (s *Server) appendJournal(op journal.Op, body any) error {
	if s.journal == nil {
		return nil
	}
	b, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("journal body: %w", err)
	}
	if err := s.journal.Append(op, b); err != nil {
		s.jstats.appendFails.Add(1)
		return err
	}
	s.jstats.appends[op].Add(1)
	return nil
}

// recoveredJob is one job's folded journal history.
type recoveredJob struct {
	sub   submittedRec
	state string // "" while pending
	err   string
}

// recoveredState is the journal replay folded into the latest-wins view
// the recovery state machine consumes.
type recoveredState struct {
	jobs   map[string]*recoveredJob
	order  []string          // submission order
	grants map[int]grantRec  // admission ID → grant, minus releases
	idem   map[string]string // idempotency key → job ID
}

func newRecoveredState() *recoveredState {
	return &recoveredState{
		jobs:   make(map[string]*recoveredJob),
		grants: make(map[int]grantRec),
		idem:   make(map[string]string),
	}
}

// fold applies one replayed record. Unknown ops and records referencing
// unknown jobs are skipped, not fatal: a journal written by a newer
// build must degrade to partial recovery, never to a crash loop.
func (rs *recoveredState) fold(rec journal.Record) error {
	switch rec.Op {
	case journal.OpSubmitted:
		var sr submittedRec
		if err := json.Unmarshal(rec.Body, &sr); err != nil || sr.ID == "" {
			return nil
		}
		if _, ok := rs.jobs[sr.ID]; !ok {
			rs.order = append(rs.order, sr.ID)
		}
		rs.jobs[sr.ID] = &recoveredJob{sub: sr}
		if sr.IdemKey != "" {
			rs.idem[sr.IdemKey] = sr.ID
		}
	case journal.OpTerminal:
		var tr terminalRec
		if err := json.Unmarshal(rec.Body, &tr); err != nil {
			return nil
		}
		if rj, ok := rs.jobs[tr.ID]; ok {
			rj.state, rj.err = tr.State, tr.Error
		}
	case journal.OpGrant:
		var gr grantRec
		if err := json.Unmarshal(rec.Body, &gr); err != nil || gr.Offer.ID == 0 {
			return nil
		}
		rs.grants[gr.Offer.ID] = gr
	case journal.OpRelease:
		var rr releaseRec
		if err := json.Unmarshal(rec.Body, &rr); err != nil {
			return nil
		}
		delete(rs.grants, rr.ID)
	}
	return nil
}

// Recover replays the journal's folded state into the live server:
// pending jobs are re-enqueued (their acknowledgment is a promise that
// survives the crash), done jobs are re-submitted so the farm cache
// answers them instantly, cancelled and failed jobs become tombstones,
// QoS grants restore the capacity ledger, and idempotency keys resume
// deduplicating retried submits. The server reports not-ready until
// Recover returns.
//
// ctx aborts a replay in progress (SIGTERM during recovery): jobs
// re-enqueued so far keep running toward the drain path, the rest stay
// in the journal for the next boot, and the server simply never turns
// ready.
func (s *Server) Recover(ctx context.Context) error {
	defer func() {
		s.recovered = nil
	}()
	rs := s.recovered
	if rs == nil {
		s.ready.Store(true)
		return nil
	}
	for k, id := range rs.idem {
		s.idemMu.Lock()
		s.idem[k] = id
		s.idemMu.Unlock()
	}
	// Restore grants in admission-ID order so recovery is deterministic.
	ids := make([]int, 0, len(rs.grants))
	for id := range rs.grants {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		gr := rs.grants[id]
		if !s.broker.restore(gr.Offer, gr.Client) {
			s.logf("recover: admission %d not restorable (duplicate?)", id)
		}
	}

	requeued, tombstones := 0, 0
	for _, id := range rs.order {
		if err := ctx.Err(); err != nil {
			s.logf("recover: aborted after %d/%d jobs: %v", requeued+tombstones, len(rs.order), err)
			return err
		}
		rj := rs.jobs[id]
		s.jobs.restoreSeq(id)
		cfg, err := rj.sub.Request.config()
		if err != nil {
			// A journal from a build with since-removed programs: the
			// job cannot be re-run; surface it as failed, not lost.
			s.jobs.restoreTerminal(id, core.RunConfig{}, rj.sub.Analysis == "stream", rj.sub.Fit, stateFailed,
				fmt.Sprintf("unrecoverable submission: %v", err))
			tombstones++
			continue
		}
		stream := rj.sub.Analysis == "stream"
		switch rj.state {
		case stateCancelled, stateFailed:
			s.jobs.restoreTerminal(id, cfg, stream, rj.sub.Fit, rj.state, rj.err)
			tombstones++
		default:
			// Pending ("") and done both re-enqueue: done jobs answer
			// from the farm cache (or deterministically re-execute when
			// the cache was lost), pending jobs complete the promise
			// their 202 made — fit jobs from the catalog (or the run
			// cache) rather than a fresh simulation.
			s.jobs.start(id, cfg, stream, rj.sub.Fit)
			requeued++
		}
	}
	s.logf("recover: %d jobs re-enqueued, %d tombstones, %d admissions, %d idempotency keys",
		requeued, tombstones, len(ids), len(rs.idem))
	s.ready.Store(true)
	return nil
}
