// Package server is fxnetd's engine: the reproduction's measurement
// pipeline exposed as a long-running HTTP/JSON service. It is the shape
// the paper's §7.3 endgame implies — programs negotiate QoS commitments
// with the network online, and traffic studies are submitted as jobs
// rather than run as one-shot CLIs.
//
// The service has three surfaces:
//
//   - Runs: POST /v1/runs submits a run configuration to an asynchronous
//     job queue backed by the experiment farm (bounded workers,
//     content-addressed disk cache, single-flight dedup); GET polls
//     status; /trace and /spectrum stream results as chunked NDJSON.
//   - QoS: POST /v1/qos/negotiate is the paper's admission-control
//     broker; DELETE /v1/qos/commitments/{id} releases a commitment.
//   - Ops: /metrics (Prometheus text), /healthz, /debug/pprof, request
//     logging, per-client concurrency limits with 429 backpressure, and
//     graceful drain that lets in-flight simulations finish.
//
// Everything is stdlib-only.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"fxnet/internal/airshed"
	"fxnet/internal/analysis"
	"fxnet/internal/core"
	"fxnet/internal/dsp"
	"fxnet/internal/farm"
	"fxnet/internal/faults"
	"fxnet/internal/kernels"
	"fxnet/internal/version"
)

// Options configures a Server.
type Options struct {
	// Workers bounds concurrent simulations; <= 0 selects GOMAXPROCS.
	Workers int
	// CacheDir enables the content-addressed disk cache; empty disables.
	CacheDir string
	// Memoize keeps completed results in memory (on by default in
	// fxnetd: a service that re-simulates identical submissions is
	// wasting its own point).
	Memoize bool
	// CapacityBps is the QoS broker's schedulable capacity in bytes/s;
	// <= 0 selects the calibrated shared-segment default (1.1 MB/s).
	CapacityBps float64
	// MaxP bounds the broker's processor search; <= 0 selects 32.
	MaxP int
	// ClientLimit bounds in-flight API requests per client; <= 0
	// disables the limiter.
	ClientLimit int
	// Log receives request and lifecycle lines; nil discards them.
	Log *log.Logger
}

// Server is the fxnetd engine. Create with New, mount via Handler.
type Server struct {
	farm    *farm.Farm
	jobs    *jobRegistry
	broker  *broker
	metrics *metrics
	limiter *clientLimiter
	logger  *log.Logger
	started time.Time

	reqSeq   atomic.Uint64
	draining atomic.Bool
}

// defaultCapacityBps matches core's qosCapacityBps: 10 Mb/s derated by
// framing and CSMA/CD overhead.
const defaultCapacityBps = 1.1e6

// New assembles a server.
func New(opts Options) (*Server, error) {
	fo := farm.Options{Workers: opts.Workers, Memoize: opts.Memoize}
	if opts.CacheDir != "" {
		c, err := farm.OpenCache(opts.CacheDir)
		if err != nil {
			return nil, err
		}
		fo.Cache = c
	}
	cap := opts.CapacityBps
	if cap <= 0 {
		cap = defaultCapacityBps
	}
	logger := opts.Log
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	f := farm.New(fo)
	return &Server{
		farm:    f,
		jobs:    newJobRegistry(f),
		broker:  newBroker(cap, opts.MaxP),
		metrics: newMetrics(),
		limiter: newClientLimiter(opts.ClientLimit),
		logger:  logger,
		started: time.Now(),
	}, nil
}

func (s *Server) logf(format string, args ...any) { s.logger.Printf(format, args...) }

// Handler returns the service's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.instrument("runs_submit", true, s.handleSubmit))
	mux.HandleFunc("GET /v1/runs/{id}", s.instrument("runs_status", true, s.handleStatus))
	mux.HandleFunc("DELETE /v1/runs/{id}", s.instrument("runs_cancel", true, s.handleCancel))
	mux.HandleFunc("GET /v1/runs/{id}/trace", s.instrument("runs_trace", true, s.handleTrace))
	mux.HandleFunc("GET /v1/runs/{id}/spectrum", s.instrument("runs_spectrum", true, s.handleSpectrum))
	mux.HandleFunc("POST /v1/qos/negotiate", s.instrument("qos_negotiate", true, s.handleNegotiate))
	mux.HandleFunc("GET /v1/qos/commitments", s.instrument("qos_list", true, s.handleCommitments))
	mux.HandleFunc("DELETE /v1/qos/commitments/{id}", s.instrument("qos_release", true, s.handleRelease))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", false, s.handleMetrics))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", false, s.handleHealthz))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Workers reports the farm's concurrency bound.
func (s *Server) Workers() int { return s.farm.Workers() }

// BeginDrain stops accepting new run submissions; polling and QoS
// release remain available so clients can collect results and free
// commitments while the server empties.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain blocks until every submitted job has finished or ctx expires.
func (s *Server) Drain(ctx context.Context) error { return s.jobs.drain(ctx) }

// writeJSON renders v with a status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeErr renders an error payload.
func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// RunRequest is the wire form of a run submission: the useful subset of
// core.RunConfig, with kernel parameters flattened.
type RunRequest struct {
	Program string `json:"program"`
	// Analysis selects the result pipeline: "trace" (the default) keeps
	// the full packet capture; "stream" folds the characterization during
	// the simulation and never materializes a trace, so the job's memory
	// stays O(bandwidth windows) and /trace answers 409.
	Analysis       string  `json:"analysis,omitempty"`
	P              int     `json:"p,omitempty"`
	N              int     `json:"n,omitempty"`
	Iters          int     `json:"iters,omitempty"`
	Hours          int     `json:"hours,omitempty"` // airshed only
	Seed           int64   `json:"seed,omitempty"`
	BitRate        float64 `json:"bitrate,omitempty"`
	Switched       bool    `json:"switched,omitempty"`
	Nagle          bool    `json:"nagle,omitempty"`
	Loss           float64 `json:"loss,omitempty"`
	CrossKBps      float64 `json:"cross_kbps,omitempty"`
	Guarantee      bool    `json:"guarantee,omitempty"`
	Faults         string  `json:"faults,omitempty"`
	Degrade        bool    `json:"degrade,omitempty"`
	DisableDesched bool    `json:"disable_desched,omitempty"`
}

// stream validates the analysis selector.
func (req *RunRequest) stream() (bool, error) {
	switch req.Analysis {
	case "", "trace":
		return false, nil
	case "stream":
		return true, nil
	default:
		return false, fmt.Errorf("unknown analysis %q (have trace, stream)", req.Analysis)
	}
}

// config validates the request and builds the run configuration.
func (req *RunRequest) config() (core.RunConfig, error) {
	if _, ok := kernels.Lookup(req.Program); !ok && req.Program != core.Airshed {
		return core.RunConfig{}, fmt.Errorf("unknown program %q (have %v)", req.Program, core.ProgramNames())
	}
	if req.Loss < 0 || req.Loss >= 1 {
		return core.RunConfig{}, fmt.Errorf("loss %g outside [0,1)", req.Loss)
	}
	if req.Faults != "" {
		if _, err := faults.Parse(req.Faults); err != nil {
			return core.RunConfig{}, fmt.Errorf("bad fault script: %v", err)
		}
	}
	cfg := core.RunConfig{
		Program:          req.Program,
		P:                req.P,
		Params:           kernels.Params{N: req.N, Iters: req.Iters},
		Seed:             req.Seed,
		BitRate:          req.BitRate,
		Switched:         req.Switched,
		Nagle:            req.Nagle,
		FrameLossProb:    req.Loss,
		CrossTrafficKBps: req.CrossKBps,
		GuaranteeProgram: req.Guarantee,
		FaultScript:      req.Faults,
		Degrade:          req.Degrade,
		DisableDesched:   req.DisableDesched,
	}
	if req.Program == core.Airshed && req.Hours > 0 {
		ap := airshed.PaperParams()
		ap.Hours = req.Hours
		cfg.AirshedParams = ap
	}
	return cfg, nil
}

// statusJSON is the GET /v1/runs/{id} payload.
type statusJSON struct {
	ID        string  `json:"id"`
	State     string  `json:"state"`
	Key       string  `json:"key"`
	Analysis  string  `json:"analysis"`
	Cached    bool    `json:"cached"`
	Deduped   bool    `json:"deduped"`
	WallMs    float64 `json:"wall_ms,omitempty"`
	Error     string  `json:"error,omitempty"`
	Submitted string  `json:"submitted"`

	Result *resultJSON `json:"result,omitempty"`
}

// resultJSON summarizes a completed run.
type resultJSON struct {
	Packets       int           `json:"packets"`
	Bytes         int64         `json:"bytes"`
	ElapsedS      float64       `json:"elapsed_s"`
	KBps          nullableFloat `json:"kbps"`
	FundamentalHz nullableFloat `json:"fundamental_hz"`
	RunError      string        `json:"run_error,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "5")
		writeErr(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var req RunRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	cfg, err := req.config()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	stream, err := req.stream()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	j := s.jobs.submit(cfg, stream)
	writeJSON(w, http.StatusAccepted, map[string]string{
		"id":       j.ID,
		"key":      j.Key,
		"state":    stateQueued,
		"analysis": j.analysis(),
		"status":   "/v1/runs/" + j.ID,
	})
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*job, bool) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such run %q", r.PathValue("id"))
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	state, res, rep, err, cached, deduped, wall := j.snapshot()
	out := statusJSON{
		ID: j.ID, State: state, Key: j.Key,
		Analysis: j.analysis(),
		Cached:   cached, Deduped: deduped,
		WallMs:    float64(wall.Microseconds()) / 1000,
		Submitted: j.Submitted.UTC().Format(time.RFC3339Nano),
	}
	if err != nil {
		out.Error = err.Error()
	}
	if state == stateDone && res != nil {
		rj := &resultJSON{ElapsedS: res.Elapsed.Seconds()}
		if j.Stream {
			// Stream jobs keep no packets; the counts come from the
			// characterization folded during the run.
			if rep != nil {
				rj.Packets = int(rep.AggSize.N)
				rj.Bytes = int64(math.Round(rep.AggSize.Mean * float64(rep.AggSize.N)))
				rj.KBps = nullableFloat(rep.AggKBps)
			}
		} else {
			rj.Packets = res.Trace.Len()
			rj.Bytes = res.Trace.TotalBytes()
			rj.KBps = nullableFloat(analysis.AverageBandwidthKBps(res.Trace))
		}
		if rep != nil && rep.AggSpectrum != nil {
			rj.FundamentalHz = nullableFloat(rep.AggSpectrum.DominantFreq())
		}
		if res.RunErr != nil {
			rj.RunError = res.RunErr.Error()
		}
		out.Result = rj
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	j.cancel()
	<-j.done
	state, _, _, _, _, _, _ := j.snapshot()
	writeJSON(w, http.StatusOK, map[string]string{"id": j.ID, "state": state})
}

// doneJob fetches a job and requires it to be done, else 409/404.
func (s *Server) doneJob(w http.ResponseWriter, r *http.Request) (*job, bool) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return nil, false
	}
	state, _, _, _, _, _, _ := j.snapshot()
	if state != stateDone {
		writeErr(w, http.StatusConflict, "run %s is %s, not done", j.ID, state)
		return nil, false
	}
	return j, true
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.doneJob(w, r)
	if !ok {
		return
	}
	if j.Stream {
		writeErr(w, http.StatusConflict,
			"run %s was submitted with analysis=stream and kept no trace; use /spectrum or resubmit with analysis=trace", j.ID)
		return
	}
	_, res, _, _, _, _, _ := j.snapshot()
	if r.URL.Query().Get("format") == "bin" {
		// The binary codec streams through the same chunked writer the
		// disk cache uses; fxanalyze reads it directly.
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := res.Trace.WriteBinary(w); err != nil {
			s.logf("trace stream %s: %v", j.ID, err)
		}
		return
	}
	if err := streamTraceNDJSON(w, res.Trace); err != nil {
		s.logf("trace stream %s: %v", j.ID, err)
	}
}

func (s *Server) handleSpectrum(w http.ResponseWriter, r *http.Request) {
	j, ok := s.doneJob(w, r)
	if !ok {
		return
	}
	_, res, rep, _, _, _, _ := j.snapshot()
	kind := "aggregate"
	var spec *dsp.Spectrum
	if r.URL.Query().Get("conn") != "" {
		kind = "connection"
		if rep != nil {
			spec = rep.ConnSpectrum
		}
	} else if rep != nil {
		spec = rep.AggSpectrum
	}
	if spec == nil {
		writeErr(w, http.StatusNotFound, "run %s has no %s spectrum", j.ID, kind)
		return
	}
	if err := streamSpectrumNDJSON(w, res.Config.Program, kind, spec); err != nil {
		s.logf("spectrum stream %s: %v", j.ID, err)
	}
}

func (s *Server) handleNegotiate(w http.ResponseWriter, r *http.Request) {
	var req NegotiateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	off, err := s.broker.negotiate(&req)
	if err != nil {
		code := http.StatusBadRequest
		if isNoCapacity(err) {
			code = http.StatusConflict
		}
		writeErr(w, code, "%v", err)
		return
	}
	_, _, available, _ := s.broker.snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"offer":         off,
		"available_bps": available,
	})
}

func (s *Server) handleCommitments(w http.ResponseWriter, r *http.Request) {
	offers, committed, available, capacity := s.broker.snapshot()
	if offers == nil {
		offers = []OfferJSON{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"commitments":   offers,
		"committed_bps": committed,
		"available_bps": available,
		"capacity_bps":  capacity,
	})
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad commitment id %q", r.PathValue("id"))
		return
	}
	if !s.broker.release(id) {
		writeErr(w, http.StatusNotFound, "no commitment %d", id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"released": id})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fs := s.farm.Stats()
	jobCounts := s.jobs.counts()
	_, committed, available, capacity := s.broker.snapshot()

	fmt.Fprintf(w, "# HELP fxnetd_build_info Build identity.\n# TYPE fxnetd_build_info gauge\nfxnetd_build_info{version=%q} 1\n", version.String())
	fmt.Fprintf(w, "# HELP fxnetd_uptime_seconds Seconds since the server started.\n# TYPE fxnetd_uptime_seconds gauge\nfxnetd_uptime_seconds %g\n", time.Since(s.started).Seconds())

	fmt.Fprintln(w, "# HELP fxnetd_farm_submitted_total Jobs submitted to the experiment farm.\n# TYPE fxnetd_farm_submitted_total counter")
	fmt.Fprintf(w, "fxnetd_farm_submitted_total %d\n", fs.Submitted)
	fmt.Fprintln(w, "# HELP fxnetd_farm_completed_total Farm jobs completed.\n# TYPE fxnetd_farm_completed_total counter")
	fmt.Fprintf(w, "fxnetd_farm_completed_total %d\n", fs.Completed)
	fmt.Fprintln(w, "# HELP fxnetd_farm_executed_total Simulations actually executed (not cached or deduplicated).\n# TYPE fxnetd_farm_executed_total counter")
	fmt.Fprintf(w, "fxnetd_farm_executed_total %d\n", fs.Executed)
	fmt.Fprintln(w, "# HELP fxnetd_farm_cache_hits_total Disk-cache hits.\n# TYPE fxnetd_farm_cache_hits_total counter")
	fmt.Fprintf(w, "fxnetd_farm_cache_hits_total %d\n", fs.CacheHits)
	fmt.Fprintln(w, "# HELP fxnetd_farm_deduped_total Jobs that shared another execution (single-flight or memo).\n# TYPE fxnetd_farm_deduped_total counter")
	fmt.Fprintf(w, "fxnetd_farm_deduped_total %d\n", fs.Deduped)
	fmt.Fprintln(w, "# HELP fxnetd_farm_failed_total Farm jobs that failed.\n# TYPE fxnetd_farm_failed_total counter")
	fmt.Fprintf(w, "fxnetd_farm_failed_total %d\n", fs.Failed)
	fmt.Fprintln(w, "# HELP fxnetd_farm_cancelled_total Farm jobs cancelled before executing.\n# TYPE fxnetd_farm_cancelled_total counter")
	fmt.Fprintf(w, "fxnetd_farm_cancelled_total %d\n", fs.Cancelled)

	fmt.Fprintln(w, "# HELP fxnetd_sims_in_flight Simulations holding a worker slot right now.\n# TYPE fxnetd_sims_in_flight gauge")
	fmt.Fprintf(w, "fxnetd_sims_in_flight %d\n", fs.Running)
	queued := fs.Submitted - fs.Completed - fs.Running
	if queued < 0 {
		queued = 0
	}
	fmt.Fprintln(w, "# HELP fxnetd_queue_depth Farm jobs submitted but neither running nor completed.\n# TYPE fxnetd_queue_depth gauge")
	fmt.Fprintf(w, "fxnetd_queue_depth %d\n", queued)

	fmt.Fprintln(w, "# HELP fxnetd_jobs Run submissions by state.\n# TYPE fxnetd_jobs gauge")
	for _, st := range []string{stateQueued, stateDone, stateFailed, stateCancelled} {
		fmt.Fprintf(w, "fxnetd_jobs{state=%q} %d\n", st, jobCounts[st])
	}

	fmt.Fprintln(w, "# HELP fxnetd_qos_commitments Outstanding QoS commitments.\n# TYPE fxnetd_qos_commitments gauge")
	fmt.Fprintf(w, "fxnetd_qos_commitments %d\n", len(s.mustOffers()))
	fmt.Fprintln(w, "# HELP fxnetd_qos_committed_bytes_per_second Mean bandwidth promised to admitted programs.\n# TYPE fxnetd_qos_committed_bytes_per_second gauge")
	fmt.Fprintf(w, "fxnetd_qos_committed_bytes_per_second %g\n", committed)
	fmt.Fprintln(w, "# HELP fxnetd_qos_available_bytes_per_second Capacity not yet committed.\n# TYPE fxnetd_qos_available_bytes_per_second gauge")
	fmt.Fprintf(w, "fxnetd_qos_available_bytes_per_second %g\n", available)
	fmt.Fprintln(w, "# HELP fxnetd_qos_capacity_bytes_per_second The broker's schedulable capacity.\n# TYPE fxnetd_qos_capacity_bytes_per_second gauge")
	fmt.Fprintf(w, "fxnetd_qos_capacity_bytes_per_second %g\n", capacity)

	s.metrics.writeProm(w)
}

// mustOffers returns the current commitment list (helper for /metrics).
func (s *Server) mustOffers() []OfferJSON {
	offers, _, _, _ := s.broker.snapshot()
	return offers
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fs := s.farm.Stats()
	jobCounts := s.jobs.counts()
	offers, committed, available, capacity := s.broker.snapshot()
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   status,
		"version":  version.String(),
		"uptime_s": time.Since(s.started).Seconds(),
		"farm": map[string]any{
			"workers":    s.farm.Workers(),
			"submitted":  fs.Submitted,
			"completed":  fs.Completed,
			"executed":   fs.Executed,
			"cache_hits": fs.CacheHits,
			"deduped":    fs.Deduped,
			"failed":     fs.Failed,
			"cancelled":  fs.Cancelled,
			"running":    fs.Running,
		},
		"jobs": jobCounts,
		"qos": map[string]any{
			"commitments":   len(offers),
			"committed_bps": committed,
			"available_bps": available,
			"capacity_bps":  capacity,
		},
	})
}

// isNoCapacity reports whether a negotiation error is a capacity
// rejection (409) rather than a malformed request (400).
func isNoCapacity(err error) bool {
	for e := err; e != nil; {
		if e == errNoCapacity {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}
