// Package server is fxnetd's engine: the reproduction's measurement
// pipeline exposed as a long-running HTTP/JSON service. It is the shape
// the paper's §7.3 endgame implies — programs negotiate QoS commitments
// with the network online, and traffic studies are submitted as jobs
// rather than run as one-shot CLIs.
//
// The service has three surfaces:
//
//   - Runs: POST /v1/runs submits a run configuration to an asynchronous
//     job queue backed by the experiment farm (bounded workers,
//     content-addressed disk cache, single-flight dedup); GET polls
//     status; /trace and /spectrum stream results as chunked NDJSON.
//   - QoS: POST /v1/qos/negotiate is the paper's admission-control
//     broker; DELETE /v1/qos/commitments/{id} releases a commitment.
//   - Ops: /metrics (Prometheus text), /healthz, /debug/pprof, request
//     logging, per-client concurrency limits with 429 backpressure, and
//     graceful drain that lets in-flight simulations finish.
//
// Everything is stdlib-only.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fxnet/internal/airshed"
	"fxnet/internal/analysis"
	"fxnet/internal/catalog"
	"fxnet/internal/cluster"
	"fxnet/internal/core"
	"fxnet/internal/dsp"
	"fxnet/internal/farm"
	"fxnet/internal/faults"
	"fxnet/internal/journal"
	"fxnet/internal/kernels"
	"fxnet/internal/version"
)

// Options configures a Server.
type Options struct {
	// Workers bounds concurrent simulations; <= 0 selects GOMAXPROCS.
	Workers int
	// CacheDir enables the content-addressed disk cache; empty disables.
	CacheDir string
	// CatalogDir enables the fitted-model catalog (/v1/models and
	// catalog-backed QoS admission); empty defaults to <CacheDir>/models
	// when a cache is configured, else the catalog is disabled.
	CatalogDir string
	// Memoize keeps completed results in memory (on by default in
	// fxnetd: a service that re-simulates identical submissions is
	// wasting its own point).
	Memoize bool
	// MemoMaxEntries and MemoMaxBytes bound the in-memory memo with an
	// LRU; zero = uncapped on that axis (the historical behavior).
	MemoMaxEntries int
	MemoMaxBytes   int64
	// Cluster configures the consistent-hash shard ring this node
	// participates in; an empty peer list disables clustering.
	Cluster cluster.Config
	// ClusterRoute selects what happens to requests whose key (or job
	// ID) another shard owns: "proxy" (default) forwards transparently,
	// "redirect" answers 307, "off" serves everything locally.
	ClusterRoute string
	// ClusterCapacityBps is the cluster-wide schedulable QoS capacity
	// that the gossiped ledger divides among shards; <= 0 reuses the
	// local CapacityBps (each shard then assumes it may use the whole
	// network unless peers report commitments).
	ClusterCapacityBps float64
	// CapacityBps is the QoS broker's schedulable capacity in bytes/s;
	// <= 0 selects the calibrated shared-segment default (1.1 MB/s).
	CapacityBps float64
	// MaxP bounds the broker's processor search; <= 0 selects 32.
	MaxP int
	// ClientLimit bounds in-flight API requests per client; <= 0
	// disables the limiter.
	ClientLimit int
	// JournalPath enables the durable job journal: every acknowledged
	// submission, terminal job state, and QoS grant/release is fsync'd
	// to this append-only log before the response goes out, and
	// Recover replays it on boot. Empty disables journaling (a purely
	// in-memory node, the pre-crash-safety behavior).
	JournalPath string
	// JournalFS overrides the journal's filesystem (chaos tests inject
	// slow or full disks); nil selects the real one.
	JournalFS journal.FS
	// JournalNoSync skips the per-append fsync; tests only.
	JournalNoSync bool
	// MaxQueue is the farm queue depth at which load shedding starts
	// refusing submissions (and, at twice this depth, polls);
	// <= 0 selects 256.
	MaxQueue int
	// BreakerThreshold is the consecutive farm failures that open the
	// execution circuit breaker; <= 0 selects 5. BreakerCooldown is the
	// open interval before a half-open probe; <= 0 selects 5s.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Log receives request and lifecycle lines; nil discards them.
	Log *log.Logger
}

// Server is the fxnetd engine. Create with New, mount via Handler. A
// server with a journal configured reports not-ready and refuses
// submissions until Recover replays it; without a journal it is born
// ready.
type Server struct {
	farm    *farm.Farm
	jobs    *jobRegistry
	catalog *catalog.Catalog
	fitter  *catalog.Fitter
	broker  *broker
	metrics *metrics
	limiter *clientLimiter
	breaker *breaker
	shedder *shedder
	clu     *clusterState
	logger  *log.Logger
	started time.Time

	journal   *journal.Journal
	jstats    journalStats
	recovered *recoveredState

	idemMu sync.Mutex
	idem   map[string]string // idempotency key → job ID

	streamsMu sync.Mutex
	streams   int
	streamsCh chan struct{} // closed+replaced when streams hits 0

	reqSeq   atomic.Uint64
	draining atomic.Bool
	ready    atomic.Bool
}

// defaultCapacityBps matches core's qosCapacityBps: 10 Mb/s derated by
// framing and CSMA/CD overhead.
const defaultCapacityBps = 1.1e6

// New assembles a server. When a journal is configured its records are
// replayed into a recovered-state snapshot here, but jobs are not
// re-enqueued until Recover — the caller decides when the node starts
// doing work (and can abort mid-replay on SIGTERM).
func New(opts Options) (*Server, error) {
	fo := farm.Options{
		Workers:        opts.Workers,
		Memoize:        opts.Memoize,
		MemoMaxEntries: opts.MemoMaxEntries,
		MemoMaxBytes:   opts.MemoMaxBytes,
	}
	if opts.CacheDir != "" {
		c, err := farm.OpenCache(opts.CacheDir)
		if err != nil {
			return nil, err
		}
		fo.Cache = c
	}
	cap := opts.CapacityBps
	if cap <= 0 {
		cap = defaultCapacityBps
	}
	logger := opts.Log
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	var clu *clusterState
	if len(opts.Cluster.Peers) > 0 {
		ring, err := cluster.NewRing(opts.Cluster)
		if err != nil {
			return nil, err
		}
		route := opts.ClusterRoute
		switch route {
		case "":
			route = RouteProxy
		case RouteProxy, RouteRedirect, RouteOff:
		default:
			return nil, fmt.Errorf("server: unknown cluster route %q (have proxy, redirect, off)", route)
		}
		clu = &clusterState{
			ring:   ring,
			ledger: cluster.NewLedger(),
			route:  route,
			httpc:  &http.Client{Timeout: 30 * time.Second},
		}
		clu.capacityBps = opts.ClusterCapacityBps
		if clu.capacityBps <= 0 {
			clu.capacityBps = cap
		}
		// A clustered broker starts from the cluster-wide capacity;
		// gossip subtracts what peers have committed each round.
		cap = clu.capacityBps
		if fo.Cache != nil {
			clu.fetcher = cluster.NewFetcher(ring, fo.Cache, nil)
			fo.PeerFetch = clu.fetcher.Fetch
		}
	}
	f := farm.New(fo)
	catDir := opts.CatalogDir
	if catDir == "" && opts.CacheDir != "" {
		catDir = filepath.Join(opts.CacheDir, "models")
	}
	var cat *catalog.Catalog
	var fitter *catalog.Fitter
	if catDir != "" {
		c, err := catalog.Open(catDir)
		if err != nil {
			return nil, err
		}
		cat = c
		fitter = catalog.NewFitter(f, c)
	}
	s := &Server{
		farm:    f,
		jobs:    newJobRegistry(f),
		catalog: cat,
		fitter:  fitter,
		broker:  newBroker(cap, opts.MaxP),
		clu:     clu,
		metrics: newMetrics(),
		limiter: newClientLimiter(opts.ClientLimit),
		breaker: newBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
		logger:  logger,
		idem:    make(map[string]string),
		started: time.Now(),
	}
	s.jobs.fitter = fitter
	if clu != nil {
		// Shard-prefixed job IDs let any peer route a poll to the shard
		// that owns the job.
		s.jobs.shard = clu.ring.SelfID()
	}
	s.shedder = newShedder(opts.MaxQueue, func() int64 {
		fs := f.Stats()
		q := fs.Submitted - fs.Completed - fs.Running
		if q < 0 {
			q = 0
		}
		return q
	})
	s.jobs.onTerminal = func(j *job, state, errMsg string) {
		switch state {
		case stateDone:
			s.breaker.success()
		case stateFailed:
			s.breaker.failure()
		}
		if err := s.appendJournal(journal.OpTerminal, terminalRec{ID: j.ID, State: state, Error: errMsg}); err != nil {
			// The result is live in memory; at worst the next boot
			// re-runs the job. Log, don't fail the job.
			s.logf("journal: terminal record for %s: %v", j.ID, err)
		}
	}
	if opts.JournalPath != "" {
		rs := newRecoveredState()
		jn, st, err := journal.Open(opts.JournalPath, journal.Options{FS: opts.JournalFS, NoSync: opts.JournalNoSync}, rs.fold)
		if err != nil {
			return nil, err
		}
		s.journal = jn
		s.recovered = rs
		s.jstats.replayed.Store(int64(st.Records))
		s.jstats.truncated.Store(st.TruncatedBytes)
		if st.TruncatedBytes > 0 {
			logger.Printf("journal: dropped %d-byte torn tail (%s)", st.TruncatedBytes, st.TruncateReason)
		}
	} else {
		// No journal, nothing to recover: born ready.
		s.ready.Store(true)
	}
	return s, nil
}

func (s *Server) logf(format string, args ...any) { s.logger.Printf(format, args...) }

// Handler returns the service's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.instrument("runs_submit", true, classSubmit, s.handleSubmit))
	mux.HandleFunc("GET /v1/runs/{id}", s.instrument("runs_status", true, classPoll, s.handleStatus))
	mux.HandleFunc("DELETE /v1/runs/{id}", s.instrument("runs_cancel", true, classPoll, s.handleCancel))
	mux.HandleFunc("GET /v1/runs/{id}/trace", s.instrument("runs_trace", true, classPoll, s.handleTrace))
	mux.HandleFunc("GET /v1/runs/{id}/spectrum", s.instrument("runs_spectrum", true, classPoll, s.handleSpectrum))
	mux.HandleFunc("GET /v1/models", s.instrument("models_list", true, classPoll, s.handleModels))
	mux.HandleFunc("GET /v1/models/{key}", s.instrument("models_get", true, classPoll, s.handleModel))
	mux.HandleFunc("POST /v1/models/fit", s.instrument("models_fit", true, classSubmit, s.handleFit))
	mux.HandleFunc("POST /v1/qos/negotiate", s.instrument("qos_negotiate", true, classSubmit, s.handleNegotiate))
	mux.HandleFunc("GET /v1/qos/commitments", s.instrument("qos_list", true, classPoll, s.handleCommitments))
	mux.HandleFunc("DELETE /v1/qos/commitments/{id}", s.instrument("qos_release", true, classPoll, s.handleRelease))
	mux.HandleFunc("GET /v1/cache/{key}", s.instrument("cache_entry", false, classPoll, s.handleCacheEntry))
	mux.HandleFunc("GET /v1/cluster/ring", s.instrument("cluster_ring", false, classOps, s.handleClusterRing))
	mux.HandleFunc("GET /v1/cluster/ledger", s.instrument("cluster_ledger", false, classOps, s.handleClusterLedger))
	mux.HandleFunc("GET /metrics", s.instrument("metrics", false, classOps, s.handleMetrics))
	mux.HandleFunc("GET /healthz", s.instrument("healthz", false, classOps, s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.instrument("readyz", false, classOps, s.handleReadyz))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Workers reports the farm's concurrency bound.
func (s *Server) Workers() int { return s.farm.Workers() }

// Ready reports whether recovery has completed and the node is
// accepting work (the /readyz signal).
func (s *Server) Ready() bool { return s.ready.Load() && !s.draining.Load() }

// BeginDrain flips readiness off and stops accepting new run
// submissions; polling and QoS release remain available so clients can
// collect results and free commitments while the server empties. Load
// balancers watching /readyz stop routing here before requests start
// being refused.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Drain blocks until every submitted job has finished and every
// in-flight streaming response has been written, or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	if err := s.jobs.drain(ctx); err != nil {
		return err
	}
	return s.drainStreams(ctx)
}

// Close releases the journal (if any). The server is not usable after.
func (s *Server) Close() error {
	if s.journal != nil {
		return s.journal.Close()
	}
	return nil
}

// streamBegin registers an in-flight streaming response; the returned
// func must be called when the stream ends.
func (s *Server) streamBegin() func() {
	s.streamsMu.Lock()
	s.streams++
	if s.streamsCh == nil {
		s.streamsCh = make(chan struct{})
	}
	s.streamsMu.Unlock()
	return func() {
		s.streamsMu.Lock()
		s.streams--
		if s.streams == 0 && s.streamsCh != nil {
			close(s.streamsCh)
			s.streamsCh = nil
		}
		s.streamsMu.Unlock()
	}
}

// drainStreams blocks until no streaming response is in flight. A
// stream that starts during the drain window is still waited for: the
// loop re-checks until it observes zero.
func (s *Server) drainStreams(ctx context.Context) error {
	for {
		s.streamsMu.Lock()
		n, ch := s.streams, s.streamsCh
		s.streamsMu.Unlock()
		if n == 0 {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// writeJSON renders v with a status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeErr renders an error payload.
func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// RunRequest is the wire form of a run submission: the useful subset of
// core.RunConfig, with kernel parameters flattened.
type RunRequest struct {
	Program string `json:"program"`
	// Analysis selects the result pipeline: "trace" (the default) keeps
	// the full packet capture; "stream" folds the characterization during
	// the simulation and never materializes a trace, so the job's memory
	// stays O(bandwidth windows) and /trace answers 409.
	Analysis       string  `json:"analysis,omitempty"`
	P              int     `json:"p,omitempty"`
	N              int     `json:"n,omitempty"`
	Iters          int     `json:"iters,omitempty"`
	Hours          int     `json:"hours,omitempty"` // airshed only
	Seed           int64   `json:"seed,omitempty"`
	BitRate        float64 `json:"bitrate,omitempty"`
	Switched       bool    `json:"switched,omitempty"`
	Nagle          bool    `json:"nagle,omitempty"`
	Loss           float64 `json:"loss,omitempty"`
	CrossKBps      float64 `json:"cross_kbps,omitempty"`
	Guarantee      bool    `json:"guarantee,omitempty"`
	Faults         string  `json:"faults,omitempty"`
	Degrade        bool    `json:"degrade,omitempty"`
	DisableDesched bool    `json:"disable_desched,omitempty"`
	// Topology is a multi-segment topology spec like "lan0:0-1,lan1:2-3";
	// empty keeps the single shared segment.
	Topology string `json:"topology,omitempty"`
}

// stream validates the analysis selector.
func (req *RunRequest) stream() (bool, error) {
	switch req.Analysis {
	case "", "trace":
		return false, nil
	case "stream":
		return true, nil
	default:
		return false, fmt.Errorf("unknown analysis %q (have trace, stream)", req.Analysis)
	}
}

// config validates the request and builds the run configuration.
func (req *RunRequest) config() (core.RunConfig, error) {
	if _, ok := kernels.Lookup(req.Program); !ok && req.Program != core.Airshed {
		return core.RunConfig{}, fmt.Errorf("unknown program %q (have %v)", req.Program, core.ProgramNames())
	}
	if req.Loss < 0 || req.Loss >= 1 {
		return core.RunConfig{}, fmt.Errorf("loss %g outside [0,1)", req.Loss)
	}
	if req.Faults != "" {
		if _, err := faults.Parse(req.Faults); err != nil {
			return core.RunConfig{}, fmt.Errorf("bad fault script: %v", err)
		}
	}
	cfg := core.RunConfig{
		Program:          req.Program,
		P:                req.P,
		Params:           kernels.Params{N: req.N, Iters: req.Iters},
		Seed:             req.Seed,
		BitRate:          req.BitRate,
		Switched:         req.Switched,
		Nagle:            req.Nagle,
		FrameLossProb:    req.Loss,
		CrossTrafficKBps: req.CrossKBps,
		GuaranteeProgram: req.Guarantee,
		FaultScript:      req.Faults,
		Degrade:          req.Degrade,
		DisableDesched:   req.DisableDesched,
	}
	if req.Topology != "" {
		topo, err := core.ParseTopology(req.Topology)
		if err != nil {
			return core.RunConfig{}, fmt.Errorf("bad topology: %v", err)
		}
		cfg.Topology = topo
	}
	if req.Program == core.Airshed && req.Hours > 0 {
		ap := airshed.PaperParams()
		ap.Hours = req.Hours
		cfg.AirshedParams = ap
	}
	return cfg, nil
}

// statusJSON is the GET /v1/runs/{id} payload.
type statusJSON struct {
	ID        string  `json:"id"`
	State     string  `json:"state"`
	Key       string  `json:"key"`
	Analysis  string  `json:"analysis"`
	Cached    bool    `json:"cached"`
	Deduped   bool    `json:"deduped"`
	WallMs    float64 `json:"wall_ms,omitempty"`
	Error     string  `json:"error,omitempty"`
	Submitted string  `json:"submitted"`

	Result *resultJSON `json:"result,omitempty"`
	// Model is the fitted catalog entry of a completed fit job.
	Model *catalog.EntryJSON `json:"model,omitempty"`
}

// resultJSON summarizes a completed run.
type resultJSON struct {
	Packets       int           `json:"packets"`
	Bytes         int64         `json:"bytes"`
	ElapsedS      float64       `json:"elapsed_s"`
	KBps          nullableFloat `json:"kbps"`
	FundamentalHz nullableFloat `json:"fundamental_hz"`
	RunError      string        `json:"run_error,omitempty"`
}

// IdempotencyKeyHeader carries a client-chosen token that makes a
// retried submit return the originally accepted job instead of creating
// a duplicate. The token survives crashes via the journal.
const IdempotencyKeyHeader = "Idempotency-Key"

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", "5")
		writeErr(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if !s.ready.Load() {
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, "recovering: journal replay in progress")
		return
	}
	if !s.breaker.allow() {
		s.metrics.breakerReject()
		w.Header().Set("Retry-After", "5")
		writeErr(w, http.StatusServiceUnavailable, "execution circuit breaker open")
		return
	}
	// The body is captured whole so an off-ring submission can be
	// re-posted verbatim to the shard that owns its key.
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var req RunRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	cfg, err := req.config()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	stream, err := req.stream()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := farm.Key(cfg)
	if s.routeSubmit(w, r, key, body) {
		return
	}

	idemKey := r.Header.Get(IdempotencyKeyHeader)
	if idemKey != "" {
		s.idemMu.Lock()
		id, seen := s.idem[idemKey]
		s.idemMu.Unlock()
		if seen {
			if j, ok := s.jobs.get(id); ok {
				s.accept(w, j, true)
				return
			}
		}
	}

	// Allocate the ID, make the submission durable, then start the job:
	// once the 202 leaves, a crash at any point must still honor it.
	// From this point the submit is not abortable by client disconnect —
	// a half-acknowledged journal record with no job would be a lie in
	// the other direction.
	id := s.jobs.allocID()
	sub := submittedRec{ID: id, Key: key, IdemKey: idemKey, Request: req}
	if stream {
		sub.Analysis = "stream"
	} else {
		sub.Analysis = "trace"
	}
	if err := s.appendJournal(journal.OpSubmitted, sub); err != nil {
		s.logf("journal: submit %s: %v", id, err)
		w.Header().Set("Retry-After", "5")
		writeErr(w, http.StatusServiceUnavailable, "journal unavailable: submission cannot be made durable")
		return
	}
	j := s.jobs.start(id, cfg, stream, 0)
	if idemKey != "" {
		s.idemMu.Lock()
		s.idem[idemKey] = id
		s.idemMu.Unlock()
	}
	s.accept(w, j, false)
}

// accept writes the 202 payload for a (possibly replayed) submission.
func (s *Server) accept(w http.ResponseWriter, j *job, idempotentReplay bool) {
	out := map[string]any{
		"id":       j.ID,
		"key":      j.Key,
		"state":    stateQueued,
		"analysis": j.analysis(),
		"status":   "/v1/runs/" + j.ID,
	}
	if idempotentReplay {
		state, _, _, _, _, _, _ := j.snapshot()
		out["state"] = state
		out["idempotent_replay"] = true
	}
	writeJSON(w, http.StatusAccepted, out)
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*job, bool) {
	// A job ID minted by another shard is served there; routeJob writes
	// the (proxied) response itself.
	if s.routeJob(w, r) {
		return nil, false
	}
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such run %q", r.PathValue("id"))
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	state, res, rep, err, cached, deduped, wall := j.snapshot()
	out := statusJSON{
		ID: j.ID, State: state, Key: j.Key,
		Analysis: j.analysis(),
		Cached:   cached, Deduped: deduped,
		WallMs:    float64(wall.Microseconds()) / 1000,
		Submitted: j.Submitted.UTC().Format(time.RFC3339Nano),
	}
	if err != nil {
		out.Error = err.Error()
	}
	if state == stateDone {
		if e := j.model(); e != nil {
			ej := catalog.ToJSON(e)
			out.Model = &ej
		}
	}
	if state == stateDone && res != nil {
		rj := &resultJSON{ElapsedS: res.Elapsed.Seconds()}
		if j.Stream {
			// Stream jobs keep no packets; the counts come from the
			// characterization folded during the run.
			if rep != nil {
				rj.Packets = int(rep.AggSize.N)
				rj.Bytes = int64(math.Round(rep.AggSize.Mean * float64(rep.AggSize.N)))
				rj.KBps = nullableFloat(rep.AggKBps)
			}
		} else {
			rj.Packets = res.Trace.Len()
			rj.Bytes = res.Trace.TotalBytes()
			rj.KBps = nullableFloat(analysis.AverageBandwidthKBps(res.Trace))
		}
		if rep != nil && rep.AggSpectrum != nil {
			rj.FundamentalHz = nullableFloat(rep.AggSpectrum.DominantFreq())
		}
		if res.RunErr != nil {
			rj.RunError = res.RunErr.Error()
		}
		out.Result = rj
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	j.cancel()
	<-j.done
	state, _, _, _, _, _, _ := j.snapshot()
	writeJSON(w, http.StatusOK, map[string]string{"id": j.ID, "state": state})
}

// doneJob fetches a job and requires it to be done, else 409/404.
func (s *Server) doneJob(w http.ResponseWriter, r *http.Request) (*job, bool) {
	j, ok := s.lookupJob(w, r)
	if !ok {
		return nil, false
	}
	state, _, _, _, _, _, _ := j.snapshot()
	if state != stateDone {
		writeErr(w, http.StatusConflict, "run %s is %s, not done", j.ID, state)
		return nil, false
	}
	return j, true
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.doneJob(w, r)
	if !ok {
		return
	}
	if j.Stream {
		writeErr(w, http.StatusConflict,
			"run %s was submitted with analysis=stream and kept no trace; use /spectrum or resubmit with analysis=trace", j.ID)
		return
	}
	endStream := s.streamBegin()
	defer endStream()
	_, res, _, _, _, _, _ := j.snapshot()
	if r.URL.Query().Get("format") == "bin" {
		// The binary codec streams through the same chunked writer the
		// disk cache uses; fxanalyze reads it directly.
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := res.Trace.WriteBinary(w); err != nil {
			s.logf("trace stream %s: %v", j.ID, err)
		}
		return
	}
	if err := streamTraceNDJSON(w, res.Trace); err != nil {
		s.logf("trace stream %s: %v", j.ID, err)
	}
}

func (s *Server) handleSpectrum(w http.ResponseWriter, r *http.Request) {
	j, ok := s.doneJob(w, r)
	if !ok {
		return
	}
	endStream := s.streamBegin()
	defer endStream()
	_, res, rep, _, _, _, _ := j.snapshot()
	kind := "aggregate"
	var spec *dsp.Spectrum
	if r.URL.Query().Get("conn") != "" {
		kind = "connection"
		if rep != nil {
			spec = rep.ConnSpectrum
		}
	} else if rep != nil {
		spec = rep.AggSpectrum
	}
	if spec == nil {
		writeErr(w, http.StatusNotFound, "run %s has no %s spectrum", j.ID, kind)
		return
	}
	if err := streamSpectrumNDJSON(w, res.Config.Program, kind, spec); err != nil {
		s.logf("spectrum stream %s: %v", j.ID, err)
	}
}

func (s *Server) handleNegotiate(w http.ResponseWriter, r *http.Request) {
	var req NegotiateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var off OfferJSON
	var err error
	switch req.Source {
	case "", "analytic":
		off, err = s.broker.negotiate(&req)
	case "catalog":
		off, err = s.catalogProgram(&req)
	default:
		writeErr(w, http.StatusBadRequest, "unknown source %q (have analytic, catalog)", req.Source)
		return
	}
	if err != nil {
		code := http.StatusBadRequest
		if isNoCapacity(err) {
			code = http.StatusConflict
		}
		writeErr(w, code, "%v", err)
		return
	}
	if !req.DryRun && off.ID != 0 {
		// Commit-then-journal: if the grant cannot be made durable, roll
		// it back so a recovered node never under-reports commitments.
		if err := s.appendJournal(journal.OpGrant, grantRec{Offer: off, Client: req.Client}); err != nil {
			s.broker.release(off.ID)
			s.logf("journal: grant %d: %v", off.ID, err)
			w.Header().Set("Retry-After", "5")
			writeErr(w, http.StatusServiceUnavailable, "journal unavailable: admission cannot be made durable")
			return
		}
	}
	_, _, available, _ := s.broker.snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"offer":         off,
		"available_bps": available,
	})
}

func (s *Server) handleCommitments(w http.ResponseWriter, r *http.Request) {
	offers, committed, available, capacity := s.broker.snapshot()
	if offers == nil {
		offers = []OfferJSON{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"commitments":   offers,
		"committed_bps": committed,
		"available_bps": available,
		"capacity_bps":  capacity,
	})
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad commitment id %q", r.PathValue("id"))
		return
	}
	if !s.broker.release(id) {
		writeErr(w, http.StatusNotFound, "no commitment %d", id)
		return
	}
	if err := s.appendJournal(journal.OpRelease, releaseRec{ID: id}); err != nil {
		// The release already happened in memory; a journal failure here
		// means the next boot restores a commitment the client gave
		// back. Capacity leaks conservative, not over-committed.
		s.logf("journal: release %d: %v", id, err)
	}
	writeJSON(w, http.StatusOK, map[string]any{"released": id})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fs := s.farm.Stats()
	jobCounts := s.jobs.counts()
	_, committed, available, capacity := s.broker.snapshot()

	fmt.Fprintf(w, "# HELP fxnetd_build_info Build identity.\n# TYPE fxnetd_build_info gauge\nfxnetd_build_info{version=%q} 1\n", version.String())
	fmt.Fprintf(w, "# HELP fxnetd_uptime_seconds Seconds since the server started.\n# TYPE fxnetd_uptime_seconds gauge\nfxnetd_uptime_seconds %g\n", time.Since(s.started).Seconds())

	fmt.Fprintln(w, "# HELP fxnetd_farm_submitted_total Jobs submitted to the experiment farm.\n# TYPE fxnetd_farm_submitted_total counter")
	fmt.Fprintf(w, "fxnetd_farm_submitted_total %d\n", fs.Submitted)
	fmt.Fprintln(w, "# HELP fxnetd_farm_completed_total Farm jobs completed.\n# TYPE fxnetd_farm_completed_total counter")
	fmt.Fprintf(w, "fxnetd_farm_completed_total %d\n", fs.Completed)
	fmt.Fprintln(w, "# HELP fxnetd_farm_executed_total Simulations actually executed (not cached or deduplicated).\n# TYPE fxnetd_farm_executed_total counter")
	fmt.Fprintf(w, "fxnetd_farm_executed_total %d\n", fs.Executed)
	fmt.Fprintln(w, "# HELP fxnetd_farm_cache_hits_total Disk-cache hits.\n# TYPE fxnetd_farm_cache_hits_total counter")
	fmt.Fprintf(w, "fxnetd_farm_cache_hits_total %d\n", fs.CacheHits)
	fmt.Fprintln(w, "# HELP fxnetd_farm_deduped_total Jobs that shared another execution (single-flight or memo).\n# TYPE fxnetd_farm_deduped_total counter")
	fmt.Fprintf(w, "fxnetd_farm_deduped_total %d\n", fs.Deduped)
	fmt.Fprintln(w, "# HELP fxnetd_farm_failed_total Farm jobs that failed.\n# TYPE fxnetd_farm_failed_total counter")
	fmt.Fprintf(w, "fxnetd_farm_failed_total %d\n", fs.Failed)
	fmt.Fprintln(w, "# HELP fxnetd_farm_cancelled_total Farm jobs cancelled before executing.\n# TYPE fxnetd_farm_cancelled_total counter")
	fmt.Fprintf(w, "fxnetd_farm_cancelled_total %d\n", fs.Cancelled)

	fmt.Fprintln(w, "# HELP fxnetd_sims_in_flight Simulations holding a worker slot right now.\n# TYPE fxnetd_sims_in_flight gauge")
	fmt.Fprintf(w, "fxnetd_sims_in_flight %d\n", fs.Running)
	queued := fs.Submitted - fs.Completed - fs.Running
	if queued < 0 {
		queued = 0
	}
	fmt.Fprintln(w, "# HELP fxnetd_queue_depth Farm jobs submitted but neither running nor completed.\n# TYPE fxnetd_queue_depth gauge")
	fmt.Fprintf(w, "fxnetd_queue_depth %d\n", queued)

	fmt.Fprintln(w, "# HELP fxnetd_jobs Run submissions by state.\n# TYPE fxnetd_jobs gauge")
	for _, st := range []string{stateQueued, stateDone, stateFailed, stateCancelled} {
		fmt.Fprintf(w, "fxnetd_jobs{state=%q} %d\n", st, jobCounts[st])
	}

	fmt.Fprintln(w, "# HELP fxnetd_ready Whether the node is ready for traffic (recovery done, not draining).\n# TYPE fxnetd_ready gauge")
	ready := 0
	if s.Ready() {
		ready = 1
	}
	fmt.Fprintf(w, "fxnetd_ready %d\n", ready)

	bstate, bopened := s.breaker.snapshot()
	fmt.Fprintln(w, "# HELP fxnetd_breaker_state Execution circuit breaker state (0 closed, 1 half-open, 2 open).\n# TYPE fxnetd_breaker_state gauge")
	fmt.Fprintf(w, "fxnetd_breaker_state{state=%q} %d\n", breakerStateName(bstate), bstate)
	fmt.Fprintln(w, "# HELP fxnetd_breaker_opened_total Times the execution circuit breaker opened.\n# TYPE fxnetd_breaker_opened_total counter")
	fmt.Fprintf(w, "fxnetd_breaker_opened_total %d\n", bopened)

	fmt.Fprintln(w, "# HELP fxnetd_shed_tier Current load-shedding tier (0 none, 1 submits, 2 polls).\n# TYPE fxnetd_shed_tier gauge")
	fmt.Fprintf(w, "fxnetd_shed_tier %d\n", s.shedder.tier())
	fmt.Fprintln(w, "# HELP fxnetd_shed_total Requests refused by load shedding, by endpoint class.\n# TYPE fxnetd_shed_total counter")
	for class := classOps; class <= classSubmit; class++ {
		fmt.Fprintf(w, "fxnetd_shed_total{class=%q} %d\n", shedClassName(class), s.shedder.shed[class].Load())
	}

	fmt.Fprintln(w, "# HELP fxnetd_streams_in_flight Streaming responses being written right now.\n# TYPE fxnetd_streams_in_flight gauge")
	s.streamsMu.Lock()
	streams := s.streams
	s.streamsMu.Unlock()
	fmt.Fprintf(w, "fxnetd_streams_in_flight %d\n", streams)

	jenabled := 0
	if s.journal != nil {
		jenabled = 1
	}
	fmt.Fprintln(w, "# HELP fxnetd_journal_enabled Whether the durable job journal is configured.\n# TYPE fxnetd_journal_enabled gauge")
	fmt.Fprintf(w, "fxnetd_journal_enabled %d\n", jenabled)
	fmt.Fprintln(w, "# HELP fxnetd_journal_appends_total Journal records appended, by op.\n# TYPE fxnetd_journal_appends_total counter")
	for _, op := range []journal.Op{journal.OpSubmitted, journal.OpTerminal, journal.OpGrant, journal.OpRelease} {
		fmt.Fprintf(w, "fxnetd_journal_appends_total{op=%q} %d\n", op.String(), s.jstats.appends[op].Load())
	}
	fmt.Fprintln(w, "# HELP fxnetd_journal_append_failures_total Journal appends that failed (durability refused).\n# TYPE fxnetd_journal_append_failures_total counter")
	fmt.Fprintf(w, "fxnetd_journal_append_failures_total %d\n", s.jstats.appendFails.Load())
	fmt.Fprintln(w, "# HELP fxnetd_journal_replayed_records Records replayed from the journal at boot.\n# TYPE fxnetd_journal_replayed_records gauge")
	fmt.Fprintf(w, "fxnetd_journal_replayed_records %d\n", s.jstats.replayed.Load())
	fmt.Fprintln(w, "# HELP fxnetd_journal_truncated_bytes Torn-tail bytes dropped from the journal at boot.\n# TYPE fxnetd_journal_truncated_bytes gauge")
	fmt.Fprintf(w, "fxnetd_journal_truncated_bytes %d\n", s.jstats.truncated.Load())

	eng := &s.jobs.engine
	windows := eng.windows.Load()
	fmt.Fprintln(w, "# HELP fxnetd_engine_windows_total Conservative-PDES windows executed across partitioned runs.\n# TYPE fxnetd_engine_windows_total counter")
	fmt.Fprintf(w, "fxnetd_engine_windows_total %d\n", windows)
	fmt.Fprintln(w, "# HELP fxnetd_engine_null_publishes_total Demand-driven null-horizon publications by idle partitions.\n# TYPE fxnetd_engine_null_publishes_total counter")
	fmt.Fprintf(w, "fxnetd_engine_null_publishes_total %d\n", eng.nulls.Load())
	fmt.Fprintln(w, "# HELP fxnetd_engine_cross_messages_total Cross-partition messages exchanged at window barriers.\n# TYPE fxnetd_engine_cross_messages_total counter")
	fmt.Fprintf(w, "fxnetd_engine_cross_messages_total %d\n", eng.crossMsgs.Load())
	fmt.Fprintln(w, "# HELP fxnetd_engine_partitioned_runs_total Runs that executed the partitioned engine (cache hits excluded).\n# TYPE fxnetd_engine_partitioned_runs_total counter")
	fmt.Fprintf(w, "fxnetd_engine_partitioned_runs_total %d\n", eng.partedRuns.Load())
	meanActive := 0.0
	if windows > 0 {
		meanActive = float64(eng.activeSum.Load()) / float64(windows)
	}
	fmt.Fprintln(w, "# HELP fxnetd_engine_mean_active_partitions Mean partitions doing work per window, across partitioned runs.\n# TYPE fxnetd_engine_mean_active_partitions gauge")
	fmt.Fprintf(w, "fxnetd_engine_mean_active_partitions %g\n", meanActive)

	fmt.Fprintln(w, "# HELP fxnetd_farm_peer_hits_total Cache hits satisfied by fetching the entry from a cluster peer.\n# TYPE fxnetd_farm_peer_hits_total counter")
	fmt.Fprintf(w, "fxnetd_farm_peer_hits_total %d\n", fs.PeerHits)
	fmt.Fprintln(w, "# HELP fxnetd_farm_memo_evicted_total Memoized results evicted by the in-memory LRU caps.\n# TYPE fxnetd_farm_memo_evicted_total counter")
	fmt.Fprintf(w, "fxnetd_farm_memo_evicted_total %d\n", fs.MemoEvicted)

	if c := s.farm.Cache(); c != nil {
		cs := c.Stats()
		fmt.Fprintln(w, "# HELP fxnetd_cache_entries Published run-cache entries on disk.\n# TYPE fxnetd_cache_entries gauge")
		fmt.Fprintf(w, "fxnetd_cache_entries %d\n", cs.Entries)
		fmt.Fprintln(w, "# HELP fxnetd_cache_bytes Bytes of published run-cache entries on disk.\n# TYPE fxnetd_cache_bytes gauge")
		fmt.Fprintf(w, "fxnetd_cache_bytes %d\n", cs.Bytes)
		fmt.Fprintln(w, "# HELP fxnetd_cache_quarantined_total Corrupt cache entries quarantined instead of silently re-executed.\n# TYPE fxnetd_cache_quarantined_total counter")
		fmt.Fprintf(w, "fxnetd_cache_quarantined_total %d\n", c.Quarantined())
		fmt.Fprintln(w, "# HELP fxnetd_cache_quarantined_kind_total Quarantined cache entries by kind.\n# TYPE fxnetd_cache_quarantined_kind_total counter")
		kinds := c.QuarantinedKinds()
		for _, kind := range []string{"run", "spec", "other"} {
			fmt.Fprintf(w, "fxnetd_cache_quarantined_kind_total{kind=%q} %d\n", kind, kinds[kind])
		}
	}

	s.writeClusterMetrics(w)

	cenabled := 0
	if s.catalog != nil {
		cenabled = 1
	}
	fmt.Fprintln(w, "# HELP fxnetd_catalog_enabled Whether the fitted-model catalog is configured.\n# TYPE fxnetd_catalog_enabled gauge")
	fmt.Fprintf(w, "fxnetd_catalog_enabled %d\n", cenabled)
	if s.catalog != nil {
		fmt.Fprintln(w, "# HELP fxnetd_catalog_entries Fitted models in the catalog.\n# TYPE fxnetd_catalog_entries gauge")
		fmt.Fprintf(w, "fxnetd_catalog_entries %d\n", s.catalog.Len())
		fmt.Fprintln(w, "# HELP fxnetd_catalog_hits_total Catalog lookups answered from a stored model.\n# TYPE fxnetd_catalog_hits_total counter")
		fmt.Fprintf(w, "fxnetd_catalog_hits_total %d\n", s.catalog.Hits())
		fmt.Fprintln(w, "# HELP fxnetd_catalog_misses_total Catalog lookups that found no usable model.\n# TYPE fxnetd_catalog_misses_total counter")
		fmt.Fprintf(w, "fxnetd_catalog_misses_total %d\n", s.catalog.Misses())
		fmt.Fprintln(w, "# HELP fxnetd_catalog_fits_total Spectral-model fits performed (catalog hits excluded).\n# TYPE fxnetd_catalog_fits_total counter")
		fmt.Fprintf(w, "fxnetd_catalog_fits_total %d\n", s.fitter.Fits())
		fmt.Fprintln(w, "# HELP fxnetd_catalog_quarantined_total Corrupt catalog entries quarantined.\n# TYPE fxnetd_catalog_quarantined_total counter")
		fmt.Fprintf(w, "fxnetd_catalog_quarantined_total %d\n", s.catalog.Quarantined())
		fmt.Fprintln(w, "# HELP fxnetd_catalog_store_failures_total Catalog entries that could not be stored durably.\n# TYPE fxnetd_catalog_store_failures_total counter")
		fmt.Fprintf(w, "fxnetd_catalog_store_failures_total %d\n", s.catalog.StoreFailures())
	}

	fmt.Fprintln(w, "# HELP fxnetd_qos_commitments Outstanding QoS commitments.\n# TYPE fxnetd_qos_commitments gauge")
	fmt.Fprintf(w, "fxnetd_qos_commitments %d\n", len(s.mustOffers()))
	fmt.Fprintln(w, "# HELP fxnetd_qos_committed_bytes_per_second Mean bandwidth promised to admitted programs.\n# TYPE fxnetd_qos_committed_bytes_per_second gauge")
	fmt.Fprintf(w, "fxnetd_qos_committed_bytes_per_second %g\n", committed)
	fmt.Fprintln(w, "# HELP fxnetd_qos_available_bytes_per_second Capacity not yet committed.\n# TYPE fxnetd_qos_available_bytes_per_second gauge")
	fmt.Fprintf(w, "fxnetd_qos_available_bytes_per_second %g\n", available)
	fmt.Fprintln(w, "# HELP fxnetd_qos_capacity_bytes_per_second The broker's schedulable capacity.\n# TYPE fxnetd_qos_capacity_bytes_per_second gauge")
	fmt.Fprintf(w, "fxnetd_qos_capacity_bytes_per_second %g\n", capacity)

	s.metrics.writeProm(w)
}

// mustOffers returns the current commitment list (helper for /metrics).
func (s *Server) mustOffers() []OfferJSON {
	offers, _, _, _ := s.broker.snapshot()
	return offers
}

// handleHealthz is liveness: it answers 200 whenever the process can
// serve HTTP at all, including during replay and drain — a node that is
// starting up or emptying is alive, just not ready. Restart decisions
// key off this; routing decisions key off /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	fs := s.farm.Stats()
	jobCounts := s.jobs.counts()
	offers, committed, available, capacity := s.broker.snapshot()
	status := "ok"
	switch {
	case s.draining.Load():
		status = "draining"
	case !s.ready.Load():
		status = "starting"
	}
	jhealth := map[string]any{"enabled": s.journal != nil}
	if s.journal != nil {
		jhealth["path"] = s.journal.Path()
		jhealth["replayed_records"] = s.jstats.replayed.Load()
		jhealth["truncated_bytes"] = s.jstats.truncated.Load()
		jhealth["append_failures"] = s.jstats.appendFails.Load()
		if err := s.journal.Err(); err != nil {
			jhealth["error"] = err.Error()
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   status,
		"version":  version.String(),
		"uptime_s": time.Since(s.started).Seconds(),
		"journal":  jhealth,
		"farm": map[string]any{
			"workers":    s.farm.Workers(),
			"submitted":  fs.Submitted,
			"completed":  fs.Completed,
			"executed":   fs.Executed,
			"cache_hits": fs.CacheHits,
			"deduped":    fs.Deduped,
			"failed":     fs.Failed,
			"cancelled":  fs.Cancelled,
			"running":    fs.Running,
		},
		"jobs": jobCounts,
		"qos": map[string]any{
			"commitments":   len(offers),
			"committed_bps": committed,
			"available_bps": available,
			"capacity_bps":  capacity,
		},
	})
}

// handleReadyz is readiness: 200 only when journal replay has finished
// and the node is not draining, so load balancers route traffic here
// exactly while the node can accept it.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "draining"})
	case !s.ready.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "recovering"})
	default:
		writeJSON(w, http.StatusOK, map[string]any{"ready": true})
	}
}

// isNoCapacity reports whether a negotiation error is a capacity
// rejection (409) rather than a malformed request (400).
func isNoCapacity(err error) bool {
	for e := err; e != nil; {
		if e == errNoCapacity {
			return true
		}
		u, ok := e.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		e = u.Unwrap()
	}
	return false
}
