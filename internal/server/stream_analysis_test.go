package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"testing"
)

// TestStreamAnalysisRun drives a run submitted with analysis=stream
// through the full service surface: the status summary must come from
// the folded characterization, /trace must refuse with 409 (there are no
// packets to stream), and /spectrum must serve the streaming-computed
// spectrum. The counts must agree with an identical analysis=trace run.
func TestStreamAnalysisRun(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, Memoize: true})

	req := cheapRun()
	req.Analysis = "stream"
	id := submit(t, ts.URL, req)
	st := waitState(t, ts.URL, id)
	if st.State != stateDone {
		t.Fatalf("state = %s (err %q), want done", st.State, st.Error)
	}
	if st.Analysis != "stream" {
		t.Errorf("analysis = %q, want stream", st.Analysis)
	}
	if st.Result == nil || st.Result.Packets == 0 || st.Result.Bytes == 0 {
		t.Fatalf("stream run has no result summary: %+v", st.Result)
	}

	// The trace endpoint must refuse: the run kept no packets.
	var e map[string]string
	if code := doJSON(t, "GET", ts.URL+"/v1/runs/"+id+"/trace", nil, &e); code != http.StatusConflict {
		t.Errorf("trace of stream run: HTTP %d, want 409", code)
	} else if e["error"] == "" {
		t.Error("trace refusal carried no error message")
	}

	// The spectrum endpoint streams the characterization computed during
	// the run.
	resp, err := http.Get(ts.URL + "/v1/runs/" + id + "/spectrum")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spectrum of stream run: HTTP %d", resp.StatusCode)
	}
	var bins int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		bins++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if bins < 2 {
		t.Errorf("spectrum stream produced %d lines", bins)
	}

	// A trace-mode run of the same configuration agrees on the counts.
	tid := submit(t, ts.URL, cheapRun())
	tst := waitState(t, ts.URL, tid)
	if tst.State != stateDone {
		t.Fatalf("trace twin state = %s", tst.State)
	}
	if tst.Analysis != "trace" {
		t.Errorf("twin analysis = %q, want trace", tst.Analysis)
	}
	if tst.Key != st.Key {
		t.Errorf("same config, different keys: %s vs %s", st.Key, tst.Key)
	}
	if tst.Result.Packets != st.Result.Packets || tst.Result.Bytes != st.Result.Bytes {
		t.Errorf("stream summary (%d pkts, %d B) disagrees with trace (%d pkts, %d B)",
			st.Result.Packets, st.Result.Bytes, tst.Result.Packets, tst.Result.Bytes)
	}

	// The two pipelines must not have shared an execution.
	body := fetchMetrics(t, ts.URL)
	if got := metricValue(t, body, "fxnetd_farm_executed_total"); got != 2 {
		t.Errorf("fxnetd_farm_executed_total = %g, want 2", got)
	}
}

// TestStreamAnalysisValidation rejects unknown analysis selectors.
func TestStreamAnalysisValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	req := cheapRun()
	req.Analysis = "psychic"
	var e map[string]string
	if code := doJSON(t, "POST", ts.URL+"/v1/runs", req, &e); code != http.StatusBadRequest {
		t.Errorf("bad analysis: HTTP %d, want 400", code)
	} else if e["error"] == "" {
		t.Error("bad analysis: no error message")
	}
}
