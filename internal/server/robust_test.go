package server

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"
)

// The breaker opens after N consecutive failures, refuses while open,
// admits a single half-open probe after the cooldown, and the probe's
// outcome decides its fate.
func TestBreakerLifecycle(t *testing.T) {
	clock := time.Unix(0, 0)
	b := newBreaker(3, time.Second)
	b.now = func() time.Time { return clock }

	for i := 0; i < 3; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker refused before threshold (failure %d)", i)
		}
		b.failure()
	}
	if b.allow() {
		t.Fatal("breaker admitted after hitting the failure threshold")
	}
	if st, opened := b.snapshot(); st != breakerOpen || opened != 1 {
		t.Fatalf("state %s opened %d, want open/1", breakerStateName(st), opened)
	}

	// Cooldown elapses: exactly one probe gets through.
	clock = clock.Add(time.Second)
	if !b.allow() {
		t.Fatal("no half-open probe after cooldown")
	}
	if b.allow() {
		t.Fatal("second concurrent probe admitted in half-open")
	}

	// Probe fails: straight back to open, no threshold grace.
	b.failure()
	if b.allow() {
		t.Fatal("breaker admitted right after a failed probe")
	}
	if _, opened := b.snapshot(); opened != 2 {
		t.Fatalf("opened %d times, want 2", opened)
	}

	// Next probe succeeds: closed again, counter reset.
	clock = clock.Add(time.Second)
	if !b.allow() {
		t.Fatal("no probe after second cooldown")
	}
	b.success()
	for i := 0; i < 2; i++ {
		if !b.allow() {
			t.Fatal("closed breaker refusing after successful probe")
		}
		b.failure()
	}
	if !b.allow() {
		t.Fatal("failure counter not reset by success")
	}
}

// One success anywhere resets the consecutive count — the breaker
// reacts to a farm that fails everything, not to a lossy workload.
func TestBreakerSuccessResetsCount(t *testing.T) {
	b := newBreaker(3, time.Second)
	for i := 0; i < 10; i++ {
		b.failure()
		b.failure()
		b.success()
	}
	if !b.allow() {
		t.Fatal("interleaved successes still opened the breaker")
	}
}

// Shedding tiers: submits go first, then polls; ops are never refused.
func TestShedderTiers(t *testing.T) {
	var depth int64
	sh := newShedder(10, func() int64 { return depth })

	for _, tc := range []struct {
		depth          int64
		submits, polls bool
	}{
		{0, true, true},
		{9, true, true},
		{10, false, true}, // tier 1
		{19, false, true},
		{20, false, false}, // tier 2
		{1000, false, false},
	} {
		depth = tc.depth
		if got := sh.admit(classSubmit); got != tc.submits {
			t.Errorf("depth %d: submit admitted=%v, want %v", tc.depth, got, tc.submits)
		}
		if got := sh.admit(classPoll); got != tc.polls {
			t.Errorf("depth %d: poll admitted=%v, want %v", tc.depth, got, tc.polls)
		}
		if !sh.admit(classOps) {
			t.Errorf("depth %d: ops shed", tc.depth)
		}
	}
	if sh.shed[classOps].Load() != 0 {
		t.Error("ops refusals counted")
	}
	if sh.shed[classSubmit].Load() == 0 || sh.shed[classPoll].Load() == 0 {
		t.Error("submit/poll refusals not counted")
	}
}

// End to end: with MaxQueue=1 and the lone worker pinned, a queued
// backlog sheds submissions with 503 + Retry-After while polls and the
// ops surface keep answering.
func TestLoadSheddingEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, MaxQueue: 1})

	blocker := submit(t, ts.URL, RunRequest{Program: "seq", P: 4, N: 64, Iters: 60, Seed: 1})
	deadline := time.Now().Add(10 * time.Second)
	for s.farm.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	queued := submit(t, ts.URL, RunRequest{Program: "seq", P: 4, N: 64, Iters: 60, Seed: 2})

	// Queue depth is now 1 = MaxQueue: tier 1, submits shed.
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json",
		strings.NewReader(`{"program":"sor","p":4,"n":32,"iters":4,"seed":3}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit at tier 1: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed submit missing Retry-After")
	}
	// Polls and ops still answer.
	if code := doJSON(t, "GET", ts.URL+"/v1/runs/"+queued, nil, nil); code != http.StatusOK {
		t.Errorf("poll at tier 1: HTTP %d, want 200", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, nil); code != http.StatusOK {
		t.Errorf("healthz at tier 1: HTTP %d, want 200", code)
	}
	body := fetchMetrics(t, ts.URL)
	if v := metricValue(t, body, `fxnetd_shed_total{class="submit"}`); v < 1 {
		t.Errorf("shed counter = %g, want >= 1", v)
	}
	if v := metricValue(t, body, "fxnetd_shed_tier"); v != 1 {
		t.Errorf("shed tier = %g, want 1", v)
	}

	doJSON(t, "DELETE", ts.URL+"/v1/runs/"+queued, nil, nil)
	doJSON(t, "DELETE", ts.URL+"/v1/runs/"+blocker, nil, nil)
}

// Liveness vs readiness: /healthz answers 200 even when /readyz says
// not-ready (draining), and readiness reports its reason.
func TestReadyzDrainSplit(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})

	var rz struct {
		Ready  bool   `json:"ready"`
		Reason string `json:"reason"`
	}
	if code := doJSON(t, "GET", ts.URL+"/readyz", nil, &rz); code != http.StatusOK || !rz.Ready {
		t.Fatalf("fresh node: /readyz HTTP %d ready=%v", code, rz.Ready)
	}

	s.BeginDrain()
	if code := doJSON(t, "GET", ts.URL+"/readyz", nil, &rz); code != http.StatusServiceUnavailable {
		t.Errorf("draining node: /readyz HTTP %d, want 503", code)
	}
	if rz.Reason != "draining" {
		t.Errorf("readyz reason = %q, want draining", rz.Reason)
	}
	// Liveness is unaffected: the process is healthy, just not taking work.
	var hz struct {
		Status string `json:"status"`
	}
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, &hz); code != http.StatusOK {
		t.Errorf("draining node: /healthz HTTP %d, want 200", code)
	}
	if hz.Status != "draining" {
		t.Errorf("healthz status = %q", hz.Status)
	}
}

// Drain blocks on in-flight streaming responses and releases the moment
// the last one ends.
func TestDrainWaitsForStreams(t *testing.T) {
	s, _ := newTestServer(t, Options{Workers: 1})

	end := s.streamBegin()
	s.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if err := s.Drain(ctx); err == nil {
		t.Fatal("drain returned with a stream still in flight")
	}
	cancel()

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- s.Drain(ctx)
	}()
	time.Sleep(20 * time.Millisecond)
	end()
	if err := <-done; err != nil {
		t.Fatalf("drain after stream ended: %v", err)
	}
}

// Two overlapping streams: drain waits for both; ending one is not
// enough.
func TestDrainWaitsForAllStreams(t *testing.T) {
	s, _ := newTestServer(t, Options{Workers: 1})
	end1 := s.streamBegin()
	end2 := s.streamBegin()
	s.BeginDrain()

	end1()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if err := s.Drain(ctx); err == nil {
		t.Fatal("drain returned with one stream still in flight")
	}
	cancel()
	end2()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := s.Drain(ctx2); err != nil {
		t.Fatalf("drain after both ended: %v", err)
	}
}
