package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fxnet/internal/trace"
)

// newTestServer builds a quiet server plus its HTTP front end.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// doJSON performs a request with an optional JSON body and decodes the
// JSON response into out (when non-nil).
func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decode %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

// waitState polls a run until it reaches a terminal state.
func waitState(t *testing.T, base, id string) statusJSON {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st statusJSON
		if code := doJSON(t, "GET", base+"/v1/runs/"+id, nil, &st); code != http.StatusOK {
			t.Fatalf("status %s: HTTP %d", id, code)
		}
		if st.State != stateQueued {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("run %s stuck in %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// cheapRun is a sub-millisecond configuration for end-to-end plumbing.
func cheapRun() RunRequest {
	return RunRequest{Program: "sor", P: 4, N: 32, Iters: 4, Seed: 1}
}

func submit(t *testing.T, base string, req RunRequest) string {
	t.Helper()
	var acc map[string]string
	if code := doJSON(t, "POST", base+"/v1/runs", req, &acc); code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	if acc["id"] == "" || acc["key"] == "" {
		t.Fatalf("submit: incomplete accept payload %v", acc)
	}
	return acc["id"]
}

// metricValue extracts one sample from Prometheus text exposition.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				t.Fatalf("metric %s: parse %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

func fetchMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	return string(b)
}

func TestRunLifecycleAndDedup(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, Memoize: true})

	id := submit(t, ts.URL, cheapRun())
	st := waitState(t, ts.URL, id)
	if st.State != stateDone {
		t.Fatalf("state = %s (err %q), want done", st.State, st.Error)
	}
	if st.Result == nil || st.Result.Packets == 0 {
		t.Fatalf("done run has no result summary: %+v", st)
	}

	// The identical configuration resubmitted must not execute a second
	// simulation: memoization answers it.
	id2 := submit(t, ts.URL, cheapRun())
	st2 := waitState(t, ts.URL, id2)
	if st2.State != stateDone {
		t.Fatalf("dup state = %s, want done", st2.State)
	}
	if !st2.Deduped {
		t.Errorf("duplicate submission not marked deduped: %+v", st2)
	}
	if st2.Key != st.Key {
		t.Errorf("same config, different keys: %s vs %s", st.Key, st2.Key)
	}
	body := fetchMetrics(t, ts.URL)
	if got := metricValue(t, body, "fxnetd_farm_executed_total"); got != 1 {
		t.Errorf("fxnetd_farm_executed_total = %g, want 1", got)
	}
	if got := metricValue(t, body, "fxnetd_farm_deduped_total"); got != 1 {
		t.Errorf("fxnetd_farm_deduped_total = %g, want 1", got)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	for name, req := range map[string]RunRequest{
		"unknown program": {Program: "nope"},
		"bad loss":        {Program: "sor", Loss: 1.5},
		"bad faults":      {Program: "sor", Faults: "gibberish"},
		"bad topology":    {Program: "sor", Topology: "lan0:0-1,lan0:2-3"},
	} {
		var e map[string]string
		if code := doJSON(t, "POST", ts.URL+"/v1/runs", req, &e); code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, code)
		} else if e["error"] == "" {
			t.Errorf("%s: no error message", name)
		}
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/runs/r-99999999", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown run: HTTP %d, want 404", code)
	}
}

func TestSubmitTopologyRun(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	req := cheapRun()
	req.Topology = "lan0:0-1,lan1:2-3"
	st := waitState(t, ts.URL, submit(t, ts.URL, req))
	if st.State != stateDone {
		t.Fatalf("state = %s (%s)", st.State, st.Error)
	}
	if st.Result == nil || st.Result.Packets == 0 {
		t.Fatal("topology run produced no packets")
	}
	// The topology participates in the cache key: the same run without
	// one must not collide.
	var accPlain, accTopo map[string]string
	doJSON(t, "POST", ts.URL+"/v1/runs", cheapRun(), &accPlain)
	doJSON(t, "POST", ts.URL+"/v1/runs", req, &accTopo)
	if accPlain["key"] == accTopo["key"] {
		t.Error("topology did not change the run key")
	}
}

func TestTraceStreamNDJSONAndBinary(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	id := submit(t, ts.URL, cheapRun())
	st := waitState(t, ts.URL, id)
	if st.State != stateDone {
		t.Fatalf("state = %s", st.State)
	}

	resp, err := http.Get(ts.URL + "/v1/runs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatal("no header line")
	}
	var head traceHeaderJSON
	if err := json.Unmarshal(sc.Bytes(), &head); err != nil {
		t.Fatalf("header: %v", err)
	}
	if head.Packets != st.Result.Packets {
		t.Errorf("header packets %d != status packets %d", head.Packets, st.Result.Packets)
	}
	lines := 0
	for sc.Scan() {
		var p tracePacketJSON
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			t.Fatalf("packet line %d: %v", lines, err)
		}
		lines++
	}
	if lines != head.Packets {
		t.Errorf("streamed %d packet lines, header said %d", lines, head.Packets)
	}

	// The binary format round-trips through the trace codec.
	resp2, err := http.Get(ts.URL + "/v1/runs/" + id + "/trace?format=bin")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	tr, err := trace.ReadBinary(resp2.Body)
	if err != nil {
		t.Fatalf("binary trace: %v", err)
	}
	if tr.Len() != head.Packets {
		t.Errorf("binary trace has %d packets, want %d", tr.Len(), head.Packets)
	}

	// Spectrum stream: header plus one line per bin, all valid JSON.
	resp3, err := http.Get(ts.URL + "/v1/runs/" + id + "/spectrum")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	sc3 := bufio.NewScanner(resp3.Body)
	sc3.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc3.Scan() {
		t.Fatal("no spectrum header")
	}
	var sh spectrumHeaderJSON
	if err := json.Unmarshal(sc3.Bytes(), &sh); err != nil {
		t.Fatalf("spectrum header: %v", err)
	}
	bins := 0
	for sc3.Scan() {
		var b spectrumBinJSON
		if err := json.Unmarshal(sc3.Bytes(), &b); err != nil {
			t.Fatalf("spectrum bin %d: %v", bins, err)
		}
		bins++
	}
	if bins != sh.Bins {
		t.Errorf("streamed %d bins, header said %d", bins, sh.Bins)
	}
}

func TestTraceConflictBeforeDone(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	// Occupy the single worker so the second run stays queued.
	blocker := submit(t, ts.URL, RunRequest{Program: "seq", P: 4, N: 64, Iters: 60, Seed: 1})
	queued := submit(t, ts.URL, RunRequest{Program: "seq", P: 4, N: 64, Iters: 60, Seed: 2})
	if code := doJSON(t, "GET", ts.URL+"/v1/runs/"+queued+"/trace", nil, nil); code != http.StatusConflict {
		t.Errorf("trace of queued run: HTTP %d, want 409", code)
	}
	// Cancel both so the test does not wait out the simulations.
	doJSON(t, "DELETE", ts.URL+"/v1/runs/"+queued, nil, nil)
	doJSON(t, "DELETE", ts.URL+"/v1/runs/"+blocker, nil, nil)
}

func TestCancelQueuedRun(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	blocker := submit(t, ts.URL, RunRequest{Program: "seq", P: 4, N: 64, Iters: 60, Seed: 1})

	// Wait until the blocker actually holds the worker slot, so the next
	// submission is provably queued behind it.
	deadline := time.Now().Add(10 * time.Second)
	for s.farm.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	queued := submit(t, ts.URL, RunRequest{Program: "seq", P: 4, N: 64, Iters: 60, Seed: 2})
	var out map[string]string
	if code := doJSON(t, "DELETE", ts.URL+"/v1/runs/"+queued, nil, &out); code != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", code)
	}
	if out["state"] != stateCancelled {
		t.Errorf("cancelled run state = %q, want cancelled", out["state"])
	}
	doJSON(t, "DELETE", ts.URL+"/v1/runs/"+blocker, nil, nil)
	if st := waitState(t, ts.URL, queued); st.State != stateCancelled {
		t.Errorf("state after cancel = %s", st.State)
	}
	if got := s.farm.Stats().Executed; got > 1 {
		t.Errorf("executed %d simulations, cancelled job should not have run", got)
	}
}

func TestNegotiateAdmitRelease(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})

	// Dry run: an offer with no commitment.
	var dry struct {
		Offer OfferJSON `json:"offer"`
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/qos/negotiate",
		NegotiateRequest{Program: "sor", DryRun: true}, &dry); code != http.StatusOK {
		t.Fatalf("dry negotiate: HTTP %d", code)
	}
	if dry.Offer.ID != 0 || dry.Offer.P < 1 {
		t.Errorf("dry offer = %+v", dry.Offer)
	}

	// Admit twice; both get distinct IDs and show up in listings.
	var a, b struct {
		Offer OfferJSON `json:"offer"`
	}
	doJSON(t, "POST", ts.URL+"/v1/qos/negotiate", NegotiateRequest{Program: "sor", Client: "alice"}, &a)
	doJSON(t, "POST", ts.URL+"/v1/qos/negotiate", NegotiateRequest{Program: "2dfft", Client: "bob"}, &b)
	if a.Offer.ID == 0 || b.Offer.ID == 0 || a.Offer.ID == b.Offer.ID {
		t.Fatalf("admission IDs %d, %d", a.Offer.ID, b.Offer.ID)
	}
	var list struct {
		Commitments []OfferJSON `json:"commitments"`
		Committed   float64     `json:"committed_bps"`
	}
	doJSON(t, "GET", ts.URL+"/v1/qos/commitments", nil, &list)
	if len(list.Commitments) != 2 || list.Committed <= 0 {
		t.Fatalf("commitments = %+v", list)
	}

	// Release frees exactly one; the second release of the same ID 404s.
	url := fmt.Sprintf("%s/v1/qos/commitments/%d", ts.URL, a.Offer.ID)
	if code := doJSON(t, "DELETE", url, nil, nil); code != http.StatusOK {
		t.Fatalf("release: HTTP %d", code)
	}
	if code := doJSON(t, "DELETE", url, nil, nil); code != http.StatusNotFound {
		t.Errorf("double release: HTTP %d, want 404", code)
	}
	doJSON(t, "GET", ts.URL+"/v1/qos/commitments", nil, &list)
	if len(list.Commitments) != 1 {
		t.Errorf("after release: %d commitments, want 1", len(list.Commitments))
	}

	// Validation errors are 400, not 409.
	if code := doJSON(t, "POST", ts.URL+"/v1/qos/negotiate", NegotiateRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("empty negotiate: HTTP %d, want 400", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/qos/negotiate",
		NegotiateRequest{Program: "airshed"}, nil); code != http.StatusBadRequest {
		t.Errorf("uncharacterized program: HTTP %d, want 400", code)
	}
}

func TestNegotiateCapacityExhaustion(t *testing.T) {
	// Offers shrink as capacity is committed, so a well-formed request is
	// refused with 409 only once the broker is essentially out of
	// capacity. Admit until that happens, then release and re-admit.
	_, ts := newTestServer(t, Options{Workers: 1, CapacityBps: 3500})
	var ids []int
	exhausted := false
	for i := 0; i < 200; i++ {
		var a struct {
			Offer OfferJSON `json:"offer"`
		}
		code := doJSON(t, "POST", ts.URL+"/v1/qos/negotiate", NegotiateRequest{Program: "sor"}, &a)
		if code == http.StatusConflict {
			exhausted = true
			break
		}
		if code != http.StatusOK {
			t.Fatalf("negotiate %d: HTTP %d", i, code)
		}
		ids = append(ids, a.Offer.ID)
	}
	if !exhausted {
		t.Fatal("broker never exhausted after 200 admissions")
	}
	for _, id := range ids {
		if code := doJSON(t, "DELETE", fmt.Sprintf("%s/v1/qos/commitments/%d", ts.URL, id), nil, nil); code != http.StatusOK {
			t.Fatalf("release %d: HTTP %d", id, code)
		}
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/qos/negotiate", NegotiateRequest{Program: "sor"}, nil); code != http.StatusOK {
		t.Errorf("negotiate after full release: HTTP %d, want 200", code)
	}
}

func TestClientThrottle(t *testing.T) {
	s, err := New(Options{Workers: 1, ClientLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Drive the middleware with a handler we can hold open, so the
	// limiter's in-flight window is deterministic.
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	h := s.instrument("test", true, classOps, func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
	})
	ts := httptest.NewServer(h)
	defer ts.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		req, _ := http.NewRequest("GET", ts.URL, nil)
		req.Header.Set("X-Client-ID", "alice")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	// Same client: rejected with 429 + Retry-After.
	req, _ := http.NewRequest("GET", ts.URL, nil)
	req.Header.Set("X-Client-ID", "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("same client: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// A different client is unaffected by alice's in-flight request.
	req2, _ := http.NewRequest("GET", ts.URL, nil)
	req2.Header.Set("X-Client-ID", "bob")
	done := make(chan int, 1)
	go func() {
		resp2, err := http.DefaultClient.Do(req2)
		if err != nil {
			done <- -1
			return
		}
		resp2.Body.Close()
		done <- resp2.StatusCode
	}()
	close(release)
	if code := <-done; code != http.StatusOK {
		t.Errorf("other client: HTTP %d, want 200", code)
	}
	wg.Wait()
}

func TestHealthzAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	var hz struct {
		Status  string `json:"status"`
		Version string `json:"version"`
	}
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, &hz); code != http.StatusOK {
		t.Fatalf("/healthz: HTTP %d", code)
	}
	if hz.Status != "ok" || !strings.HasPrefix(hz.Version, "fxnet") {
		t.Errorf("healthz = %+v", hz)
	}

	id := submit(t, ts.URL, cheapRun())
	s.BeginDrain()

	// Draining: new submissions refused, polling still works.
	if code := doJSON(t, "POST", ts.URL+"/v1/runs", cheapRun(), nil); code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: HTTP %d, want 503", code)
	}
	doJSON(t, "GET", ts.URL+"/healthz", nil, &hz)
	if hz.Status != "draining" {
		t.Errorf("healthz status = %q, want draining", hz.Status)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := waitState(t, ts.URL, id); st.State != stateDone {
		t.Errorf("in-flight run after drain: %s, want done", st.State)
	}
}

func TestRequestIDsAssigned(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("response missing X-Request-ID")
	}
}
