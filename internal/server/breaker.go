package server

import (
	"sync"
	"time"
)

// Breaker states. The breaker guards farm execution: a farm that fails
// every job it is handed (corrupt install, exhausted disk, a simulator
// bug tripping on one input class) should shed new submissions fast
// instead of queuing work it will burn a worker slot to fail.
const (
	breakerClosed = iota
	breakerHalfOpen
	breakerOpen
)

// breaker is a consecutive-failure circuit breaker. Closed admits
// everything; failThreshold consecutive real failures (cancellations do
// not count — the client changed its mind, the farm did not misbehave)
// open it; after cooldown it half-opens and admits a single probe whose
// outcome decides between closing and re-opening.
type breaker struct {
	failThreshold int
	cooldown      time.Duration
	// now is injectable for tests.
	now func() time.Time

	mu          sync.Mutex
	state       int
	consecutive int
	openedAt    time.Time
	probing     bool
	openedTotal int64
}

func newBreaker(failThreshold int, cooldown time.Duration) *breaker {
	if failThreshold <= 0 {
		failThreshold = 5
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &breaker{failThreshold: failThreshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a new submission may proceed. In the half-open
// state exactly one in-flight probe is admitted at a time.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success reports a job that completed without a farm error.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	b.state = breakerClosed
	b.probing = false
}

// failure reports a farm execution failure.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	if b.state == breakerHalfOpen || b.consecutive >= b.failThreshold {
		if b.state != breakerOpen {
			b.openedTotal++
		}
		b.state = breakerOpen
		b.openedAt = b.now()
		b.probing = false
	}
}

// snapshot reports (state, times opened) for /metrics.
func (b *breaker) snapshot() (int, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.openedTotal
}

func breakerStateName(s int) string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
