package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fxnet/internal/cluster"
)

// ForwardedHeader marks a request one shard forwarded to another. A
// forwarded request is always served locally — never re-proxied — so a
// ring disagreement between two peers can cost an extra hop's latency
// but can never loop.
const ForwardedHeader = "X-Fxnetd-Forwarded"

// Cluster routing modes.
const (
	// RouteProxy transparently forwards requests for keys (and job IDs)
	// owned by another shard and relays the response; clients see one
	// logical service regardless of which shard they dial.
	RouteProxy = "proxy"
	// RouteRedirect answers 307 with the owner's URL; clients that
	// follow redirects land on the right shard and keep talking to it.
	RouteRedirect = "redirect"
	// RouteOff disables ownership routing: every shard serves what it
	// is asked. Cache tiering still moves entries; routing-off is the
	// degraded-but-correct mode.
	RouteOff = "off"
)

// clusterState is the per-server cluster runtime: the immutable ring,
// the gossiped peer ledger, the cache-entry fetcher, and routing
// counters.
type clusterState struct {
	ring   *cluster.Ring
	ledger *cluster.Ledger
	// fetcher is nil when the node has no disk cache (nothing to
	// install fetched entries into).
	fetcher *cluster.Fetcher
	route   string
	// capacityBps is the cluster-wide schedulable QoS capacity; each
	// gossip round sets the local broker's capacity to this minus the
	// sum of remote committed bandwidth.
	capacityBps float64
	httpc       *http.Client

	proxiedSubmits atomic.Int64
	proxiedPolls   atomic.Int64
	proxyFallbacks atomic.Int64
	redirects      atomic.Int64
	gossipRounds   atomic.Int64
	ringMismatches atomic.Int64
}

// Ring exposes the cluster ring, nil when the server is not clustered.
func (s *Server) Ring() *cluster.Ring {
	if s.clu == nil {
		return nil
	}
	return s.clu.ring
}

// jobShard extracts the shard prefix from a job ID: "r-s1-00000007"
// names a job shard s1 allocated. IDs from unclustered nodes
// ("r-00000007") have no shard.
func jobShard(id string) string {
	rest, ok := strings.CutPrefix(id, "r-")
	if !ok {
		return ""
	}
	if i := strings.LastIndex(rest, "-"); i >= 0 {
		return rest[:i]
	}
	return ""
}

// routeSubmit handles cluster placement for one run submission: when
// another shard owns the key, proxy or redirect there. Reports whether
// the request was fully handled. A proxy failure (owner down) reports
// false without touching the response — the caller executes locally,
// which is the ring's graceful degradation: the result is identical
// (same content-addressed key, same deterministic simulation), it is
// just placed off-ring until the owner returns.
func (s *Server) routeSubmit(w http.ResponseWriter, r *http.Request, key string, body []byte) bool {
	c := s.clu
	if c == nil || c.route == RouteOff || r.Header.Get(ForwardedHeader) != "" {
		return false
	}
	owner := c.ring.Owner(key)
	if owner.ID == c.ring.SelfID() {
		return false
	}
	if c.route == RouteRedirect {
		c.redirects.Add(1)
		w.Header().Set("Location", owner.URL+"/v1/runs")
		writeJSON(w, http.StatusTemporaryRedirect, map[string]string{
			"owner": owner.ID, "location": owner.URL + "/v1/runs", "key": key})
		return true
	}
	if s.proxyRequest(w, r, owner, body) {
		c.proxiedSubmits.Add(1)
		return true
	}
	c.proxyFallbacks.Add(1)
	s.logf("cluster: submit proxy to %s (%s) failed; executing locally", owner.ID, owner.URL)
	return false
}

// routeJob handles cluster placement for job-addressed requests
// (status, cancel, trace, spectrum): a job ID carrying another shard's
// prefix is proxied there. Unlike submissions there is no local
// fallback — only the owning shard has the job — so an unreachable
// owner is a 502.
func (s *Server) routeJob(w http.ResponseWriter, r *http.Request) bool {
	c := s.clu
	if c == nil || c.route == RouteOff || r.Header.Get(ForwardedHeader) != "" {
		return false
	}
	id := r.PathValue("id")
	shard := jobShard(id)
	if shard == "" || shard == c.ring.SelfID() {
		return false
	}
	peer, ok := c.ring.Lookup(shard)
	if !ok {
		// A shard not in our ring config: serve locally (a 404 names the
		// real problem better than a bogus proxy).
		return false
	}
	if !s.proxyRequest(w, r, peer, nil) {
		writeErr(w, http.StatusBadGateway, "shard %s (owner of %s) unreachable", shard, id)
	} else {
		c.proxiedPolls.Add(1)
	}
	return true
}

// proxyRequest forwards r to a peer and relays the response. It
// reports false without having written to w on transport failure, so
// callers can fall back or answer 502 themselves.
func (s *Server) proxyRequest(w http.ResponseWriter, r *http.Request, peer cluster.Peer, body []byte) bool {
	c := s.clu
	url := peer.URL + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, rd)
	if err != nil {
		return false
	}
	for _, h := range []string{"Content-Type", "Accept", IdempotencyKeyHeader} {
		if v := r.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	req.Header.Set(ForwardedHeader, c.ring.SelfID())
	resp, err := c.httpc.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After", "Location"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Fxnetd-Served-By", peer.ID)
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		s.logf("cluster: relaying %s from %s: %v", r.URL.Path, peer.ID, err)
	}
	return true
}

// cacheKeyPattern bounds what /v1/cache accepts as a key: lowercase
// hex, the only alphabet farm.Key mints. Anything else (path dots,
// separators) is rejected before it reaches the filesystem.
var cacheKeyPattern = regexp.MustCompile(`^[0-9a-f]{16,128}$`)

// handleCacheEntry is the cache supply side: GET /v1/cache/{key}
// streams the raw content-addressed entry (magic, digest, payload) for
// a peer to verify and install. ?kind=spec selects the spectrum-level
// entry. 404 means this shard has no such entry — a clean miss.
func (s *Server) handleCacheEntry(w http.ResponseWriter, r *http.Request) {
	c := s.farm.Cache()
	if c == nil {
		writeErr(w, http.StatusNotFound, "no cache configured")
		return
	}
	key := r.PathValue("key")
	if !cacheKeyPattern.MatchString(key) {
		writeErr(w, http.StatusBadRequest, "bad cache key %q", key)
		return
	}
	stream := false
	switch kind := r.URL.Query().Get("kind"); kind {
	case "", "run":
	case "spec":
		stream = true
	default:
		writeErr(w, http.StatusBadRequest, "unknown kind %q (have run, spec)", kind)
		return
	}
	rc, size, err := c.OpenEntry(key, stream)
	if err != nil {
		writeErr(w, http.StatusNotFound, "no cache entry for %s", key)
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprintf("%d", size))
	if _, err := io.Copy(w, rc); err != nil {
		s.logf("cache entry stream %s: %v", key, err)
	}
}

// handleClusterRing reports the ring layout this shard was configured
// with; peers compare versions to detect divergence, and ?key=K
// answers which shard owns a key (the smoke harness's ownership
// oracle).
func (s *Server) handleClusterRing(w http.ResponseWriter, r *http.Request) {
	c := s.clu
	if c == nil {
		writeErr(w, http.StatusNotFound, "not clustered")
		return
	}
	out := map[string]any{
		"version": c.ring.Version(),
		"self":    c.ring.SelfID(),
		"route":   c.route,
		"peers":   c.ring.Peers(),
	}
	if key := r.URL.Query().Get("key"); key != "" {
		owner := c.ring.Owner(key)
		out["key"] = key
		out["owner"] = owner.ID
		out["owner_url"] = owner.URL
		out["self_owned"] = owner.ID == c.ring.SelfID()
	}
	writeJSON(w, http.StatusOK, out)
}

// ledgerJSON is the gossip payload: what one shard tells the others
// about its QoS commitments.
type ledgerJSON struct {
	ID           string              `json:"id"`
	RingVersion  int                 `json:"ring_version"`
	CommittedBps float64             `json:"committed_bps"`
	CapacityBps  float64             `json:"capacity_bps"`
	ClusterBps   float64             `json:"cluster_capacity_bps"`
	PeersUp      int                 `json:"peers_up"`
	Peers        []cluster.PeerState `json:"peers"`
}

// handleClusterLedger reports this shard's slice of the cluster QoS
// ledger: its locally committed bandwidth (what peers must subtract
// from the shared capacity) plus its view of everyone else.
func (s *Server) handleClusterLedger(w http.ResponseWriter, r *http.Request) {
	c := s.clu
	if c == nil {
		writeErr(w, http.StatusNotFound, "not clustered")
		return
	}
	_, committed, _, capacity := s.broker.snapshot()
	writeJSON(w, http.StatusOK, ledgerJSON{
		ID:           c.ring.SelfID(),
		RingVersion:  c.ring.Version(),
		CommittedBps: committed,
		CapacityBps:  capacity,
		ClusterBps:   c.capacityBps,
		PeersUp:      c.ledger.PeersUp(),
		Peers:        c.ledger.Snapshot(),
	})
}

// StartClusterGossip launches the ledger gossip loop: every interval,
// poll each peer's /v1/cluster/ledger, fold the answers into the local
// ledger, and set the broker's capacity to the cluster capacity minus
// everything committed elsewhere. A peer that stops answering keeps
// its last-reported commitment (capacity leaks conservative, never
// over-committed) and counts as down.
//
// The returned stop function blocks until the loop has exited. On an
// unclustered server it is a no-op.
func (s *Server) StartClusterGossip(interval time.Duration) (stop func()) {
	if s.clu == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			s.gossipOnce()
			select {
			case <-done:
				return
			case <-t.C:
			}
		}
	}()
	return func() {
		close(done)
		wg.Wait()
	}
}

// gossipOnce runs one gossip round. Exported to tests via the server's
// gossip loop; the smoke harness drives it with a short interval.
func (s *Server) gossipOnce() {
	c := s.clu
	for _, p := range c.ring.Others() {
		lj, err := c.fetchLedger(p)
		if err != nil {
			c.ledger.MarkDown(p.ID)
			continue
		}
		c.ledger.Update(p.ID, lj.CommittedBps, lj.RingVersion)
		if lj.RingVersion != c.ring.Version() {
			c.ringMismatches.Add(1)
			s.logf("cluster: peer %s runs ring version %d, we run %d",
				p.ID, lj.RingVersion, c.ring.Version())
		}
	}
	c.gossipRounds.Add(1)
	eff := c.capacityBps - c.ledger.RemoteCommitted()
	if eff < 0 {
		eff = 0
	}
	s.broker.setCapacity(eff)
}

// fetchLedger polls one peer's ledger with a gossip-scale timeout.
func (c *clusterState) fetchLedger(p cluster.Peer) (ledgerJSON, error) {
	req, err := http.NewRequest(http.MethodGet, p.URL+"/v1/cluster/ledger", nil)
	if err != nil {
		return ledgerJSON{}, err
	}
	httpc := &http.Client{Timeout: 2 * time.Second, Transport: c.httpc.Transport}
	resp, err := httpc.Do(req)
	if err != nil {
		return ledgerJSON{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return ledgerJSON{}, fmt.Errorf("ledger status %d", resp.StatusCode)
	}
	var lj ledgerJSON
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&lj); err != nil {
		return ledgerJSON{}, err
	}
	return lj, nil
}

// writeClusterMetrics appends the cluster section of /metrics.
func (s *Server) writeClusterMetrics(w io.Writer) {
	c := s.clu
	enabled := 0
	if c != nil {
		enabled = 1
	}
	fmt.Fprintln(w, "# HELP fxnetd_cluster_enabled Whether this node participates in a shard ring.\n# TYPE fxnetd_cluster_enabled gauge")
	fmt.Fprintf(w, "fxnetd_cluster_enabled %d\n", enabled)
	if c == nil {
		return
	}
	fmt.Fprintln(w, "# HELP fxnetd_cluster_ring_version The ring configuration version this shard runs.\n# TYPE fxnetd_cluster_ring_version gauge")
	fmt.Fprintf(w, "fxnetd_cluster_ring_version %d\n", c.ring.Version())
	fmt.Fprintln(w, "# HELP fxnetd_cluster_peers Shards in the ring, including self.\n# TYPE fxnetd_cluster_peers gauge")
	fmt.Fprintf(w, "fxnetd_cluster_peers %d\n", len(c.ring.Peers()))
	fmt.Fprintln(w, "# HELP fxnetd_cluster_peers_up Peers whose last gossip poll answered.\n# TYPE fxnetd_cluster_peers_up gauge")
	fmt.Fprintf(w, "fxnetd_cluster_peers_up %d\n", c.ledger.PeersUp())
	fmt.Fprintln(w, "# HELP fxnetd_cluster_proxied_total Requests transparently proxied to their owning shard, by kind.\n# TYPE fxnetd_cluster_proxied_total counter")
	fmt.Fprintf(w, "fxnetd_cluster_proxied_total{kind=\"submit\"} %d\n", c.proxiedSubmits.Load())
	fmt.Fprintf(w, "fxnetd_cluster_proxied_total{kind=\"poll\"} %d\n", c.proxiedPolls.Load())
	fmt.Fprintln(w, "# HELP fxnetd_cluster_redirects_total Submissions answered with a 307 to the owning shard.\n# TYPE fxnetd_cluster_redirects_total counter")
	fmt.Fprintf(w, "fxnetd_cluster_redirects_total %d\n", c.redirects.Load())
	fmt.Fprintln(w, "# HELP fxnetd_cluster_proxy_fallbacks_total Submissions executed locally because the owning shard was unreachable.\n# TYPE fxnetd_cluster_proxy_fallbacks_total counter")
	fmt.Fprintf(w, "fxnetd_cluster_proxy_fallbacks_total %d\n", c.proxyFallbacks.Load())
	fmt.Fprintln(w, "# HELP fxnetd_cluster_gossip_rounds_total Ledger gossip rounds completed.\n# TYPE fxnetd_cluster_gossip_rounds_total counter")
	fmt.Fprintf(w, "fxnetd_cluster_gossip_rounds_total %d\n", c.gossipRounds.Load())
	fmt.Fprintln(w, "# HELP fxnetd_cluster_ring_mismatches_total Gossip polls that saw a peer on a different ring version.\n# TYPE fxnetd_cluster_ring_mismatches_total counter")
	fmt.Fprintf(w, "fxnetd_cluster_ring_mismatches_total %d\n", c.ringMismatches.Load())
	fmt.Fprintln(w, "# HELP fxnetd_cluster_remote_committed_bytes_per_second QoS bandwidth committed on other shards, per the last gossip.\n# TYPE fxnetd_cluster_remote_committed_bytes_per_second gauge")
	fmt.Fprintf(w, "fxnetd_cluster_remote_committed_bytes_per_second %g\n", c.ledger.RemoteCommitted())
	fmt.Fprintln(w, "# HELP fxnetd_cluster_capacity_bytes_per_second The cluster-wide schedulable QoS capacity.\n# TYPE fxnetd_cluster_capacity_bytes_per_second gauge")
	fmt.Fprintf(w, "fxnetd_cluster_capacity_bytes_per_second %g\n", c.capacityBps)
	if f := c.fetcher; f != nil {
		fmt.Fprintln(w, "# HELP fxnetd_cluster_fetch_total Peer cache-entry fetch outcomes.\n# TYPE fxnetd_cluster_fetch_total counter")
		fmt.Fprintf(w, "fxnetd_cluster_fetch_total{outcome=\"hit\"} %d\n", f.Hits())
		fmt.Fprintf(w, "fxnetd_cluster_fetch_total{outcome=\"miss\"} %d\n", f.Misses())
		fmt.Fprintf(w, "fxnetd_cluster_fetch_total{outcome=\"failure\"} %d\n", f.Failures())
	}
}
