package server

import (
	"errors"
	"fmt"
	"sync"

	"fxnet/internal/fx"
	"fxnet/internal/kernels"
	"fxnet/internal/qos"
)

// NegotiateRequest is the wire form of the paper's §7.3 hand-off: the
// program submits its [l(), b(), c] characterization and the network
// answers with the processor count and burst bandwidth that minimize the
// burst interval given the capacity it has not yet promised elsewhere.
//
// A request names either a measured kernel (the registry's calibrated
// characterization at the given problem size) or a custom
// characterization with an Amdahl local-time law and a surface/block
// burst law.
type NegotiateRequest struct {
	// Client labels the requester in broker listings; optional.
	Client string `json:"client,omitempty"`
	// Program selects a kernel characterization ("sor", "2dfft",
	// "t2dfft", "seq", "hist"); mutually exclusive with Custom.
	Program string `json:"program,omitempty"`
	// Source selects where the characterization comes from: "" or
	// "analytic" uses the registry's calibrated laws; "catalog" answers
	// from the fitted spectral models in the server's catalog — the
	// measured path, restricted to processor counts that have been fit.
	Source string `json:"source,omitempty"`
	// N and Iters override the kernel problem size (0 = paper default).
	N     int `json:"n,omitempty"`
	Iters int `json:"iters,omitempty"`
	// MaxP bounds the processor search; 0 uses the broker default.
	MaxP int `json:"max_p,omitempty"`
	// DryRun negotiates without committing bandwidth.
	DryRun bool `json:"dry_run,omitempty"`
	// Custom is a free-form characterization.
	Custom *CustomProgram `json:"custom,omitempty"`
}

// CustomProgram carries a [l(), b(), c] characterization for a program
// the registry does not know.
type CustomProgram struct {
	Name    string `json:"name"`
	Pattern string `json:"pattern"` // neighbor, all-to-all, partition, broadcast, tree
	Local   struct {
		TotalOps   float64 `json:"total_ops"`
		OpsPerSec  float64 `json:"ops_per_sec"`
		SerialFrac float64 `json:"serial_frac"`
	} `json:"local"`
	Burst struct {
		Kind  string  `json:"kind"` // "surface" (P-constant) or "block" (∝ 1/P²)
		Bytes float64 `json:"bytes"`
	} `json:"burst"`
}

// OfferJSON is the wire form of a committed (or dry-run) offer.
type OfferJSON struct {
	ID             int     `json:"id,omitempty"` // 0 on dry runs
	Program        string  `json:"program"`
	Client         string  `json:"client,omitempty"`
	P              int     `json:"p"`
	BurstBandwidth float64 `json:"burst_bandwidth_bps"`
	BurstSeconds   float64 `json:"burst_s"`
	BurstInterval  float64 `json:"tbi_s"`
	MeanBandwidth  float64 `json:"mean_bps"`
}

// parsePattern inverts fx.Pattern.String.
func parsePattern(s string) (fx.Pattern, error) {
	for _, p := range []fx.Pattern{fx.Neighbor, fx.AllToAll, fx.Partition, fx.Broadcast, fx.Tree} {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown pattern %q", s)
}

// program builds the qos.Program a request describes.
func (req *NegotiateRequest) program() (qos.Program, error) {
	switch {
	case req.Custom != nil && req.Program != "":
		return qos.Program{}, errors.New("program and custom are mutually exclusive")
	case req.Custom != nil:
		c := req.Custom
		if c.Name == "" {
			return qos.Program{}, errors.New("custom.name required")
		}
		pat, err := parsePattern(c.Pattern)
		if err != nil {
			return qos.Program{}, err
		}
		if c.Local.TotalOps <= 0 || c.Local.OpsPerSec <= 0 {
			return qos.Program{}, errors.New("custom.local total_ops and ops_per_sec must be positive")
		}
		if c.Local.SerialFrac < 0 || c.Local.SerialFrac > 1 {
			return qos.Program{}, errors.New("custom.local serial_frac must be in [0,1]")
		}
		if c.Burst.Bytes <= 0 {
			return qos.Program{}, errors.New("custom.burst bytes must be positive")
		}
		prog := qos.Program{
			Name:    c.Name,
			Local:   qos.AmdahlLocal(c.Local.TotalOps, c.Local.OpsPerSec, c.Local.SerialFrac),
			Pattern: pat,
		}
		switch c.Burst.Kind {
		case "surface":
			prog.Burst = qos.SurfaceBurst(c.Burst.Bytes)
		case "block":
			prog.Burst = qos.BlockBurst(c.Burst.Bytes)
		default:
			return qos.Program{}, fmt.Errorf("unknown burst kind %q (want surface or block)", c.Burst.Kind)
		}
		return prog, nil
	case req.Program != "":
		spec, ok := kernels.Lookup(req.Program)
		if !ok || spec.QoS == nil {
			return qos.Program{}, fmt.Errorf("no QoS characterization for program %q", req.Program)
		}
		params := spec.Params
		if req.N != 0 {
			params.N = req.N
		}
		if req.Iters != 0 {
			params.Iters = req.Iters
		}
		return spec.QoS(params), nil
	default:
		return qos.Program{}, errors.New("one of program or custom required")
	}
}

// errNoCapacity wraps negotiation failures that should map to 409, not
// 400: the request was well-formed, the network just cannot serve it now.
var errNoCapacity = errors.New("no feasible offer")

// broker is the stateful admission-control layer over the pure
// qos.Network: it serializes negotiations, tracks outstanding
// commitments by admission ID, and remembers the requesting client for
// listings. See DESIGN.md §9 for the state machine.
type broker struct {
	mu      sync.Mutex
	net     *qos.Network
	maxP    int
	clients map[int]string // admission ID → client label
}

func newBroker(capacityBps float64, maxP int) *broker {
	if maxP <= 0 {
		maxP = 32
	}
	return &broker{net: qos.NewNetwork(capacityBps), maxP: maxP, clients: make(map[int]string)}
}

// negotiate answers one request from the registry's analytic
// characterizations, committing the offer unless DryRun.
func (b *broker) negotiate(req *NegotiateRequest) (OfferJSON, error) {
	prog, err := req.program()
	if err != nil {
		return OfferJSON{}, err
	}
	return b.negotiateWith(prog, req)
}

// negotiateWith answers one request for an already-resolved program —
// the shared tail of the analytic and catalog-backed paths.
func (b *broker) negotiateWith(prog qos.Program, req *NegotiateRequest) (OfferJSON, error) {
	maxP := req.MaxP
	if maxP <= 0 || maxP > b.maxP {
		maxP = b.maxP
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var off qos.Offer
	var err error
	if req.DryRun {
		off, err = b.net.Negotiate(prog, maxP)
	} else {
		off, err = b.net.Admit(prog, maxP)
	}
	if err != nil {
		return OfferJSON{}, fmt.Errorf("%w: %v", errNoCapacity, err)
	}
	if !req.DryRun && req.Client != "" {
		b.clients[off.ID] = req.Client
	}
	return OfferJSON{
		ID:             off.ID,
		Program:        off.Program,
		Client:         req.Client,
		P:              off.P,
		BurstBandwidth: off.BurstBandwidth,
		BurstSeconds:   off.BurstSeconds,
		BurstInterval:  off.BurstInterval,
		MeanBandwidth:  off.MeanBandwidth,
	}, nil
}

// restore re-installs a journaled admission under its original ID (the
// crash-recovery path).
func (b *broker) restore(off OfferJSON, client string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	ok := b.net.Restore(qos.Offer{
		Program:        off.Program,
		ID:             off.ID,
		P:              off.P,
		BurstBandwidth: off.BurstBandwidth,
		BurstInterval:  off.BurstInterval,
		BurstSeconds:   off.BurstSeconds,
		MeanBandwidth:  off.MeanBandwidth,
	})
	if ok && client != "" {
		b.clients[off.ID] = client
	}
	return ok
}

// setCapacity adjusts the broker's schedulable capacity — the cluster
// ledger's lever: cluster-wide capacity minus everything committed on
// other shards. Existing commitments are untouched; a capacity now
// below the committed sum just means no new admissions until something
// releases.
func (b *broker) setCapacity(bps float64) {
	if bps < 0 {
		bps = 0
	}
	b.mu.Lock()
	b.net.CapacityBps = bps
	b.mu.Unlock()
}

// release frees the commitment with the given admission ID.
func (b *broker) release(id int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.net.ReleaseID(id) {
		return false
	}
	delete(b.clients, id)
	return true
}

// snapshot lists outstanding commitments and the capacity ledger.
func (b *broker) snapshot() (offers []OfferJSON, committed, available, capacity float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, off := range b.net.Offers() {
		offers = append(offers, OfferJSON{
			ID:             off.ID,
			Program:        off.Program,
			Client:         b.clients[off.ID],
			P:              off.P,
			BurstBandwidth: off.BurstBandwidth,
			BurstSeconds:   off.BurstSeconds,
			BurstInterval:  off.BurstInterval,
			MeanBandwidth:  off.MeanBandwidth,
		})
	}
	return offers, b.net.Committed(), b.net.Available(), b.net.CapacityBps
}
