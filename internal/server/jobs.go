package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"fxnet/internal/core"
	"fxnet/internal/farm"
)

// Job states, as reported by GET /v1/runs/{id}. A job is "queued" from
// submission until the farm hands back its result: the farm does not
// distinguish waiting-for-a-slot from simulating, and the distinction is
// visible in /metrics (fxnetd_sims_in_flight) rather than per job.
const (
	stateQueued    = "queued"
	stateDone      = "done"
	stateFailed    = "failed"
	stateCancelled = "cancelled"
)

// job is one asynchronous run submission.
type job struct {
	ID        string
	Key       string
	Cfg       core.RunConfig
	Stream    bool
	Submitted time.Time

	cancel context.CancelFunc
	done   chan struct{}

	mu      sync.Mutex
	state   string
	res     *core.Result
	rep     *core.Report
	err     error
	cached  bool
	deduped bool
	wall    time.Duration
}

// analysis names the job's pipeline for wire payloads.
func (j *job) analysis() string {
	if j.Stream {
		return "stream"
	}
	return "trace"
}

// snapshot returns the job's fields under its lock.
func (j *job) snapshot() (state string, res *core.Result, rep *core.Report, err error, cached, deduped bool, wall time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.res, j.rep, j.err, j.cached, j.deduped, j.wall
}

// jobRegistry owns the job table and the background execution goroutines.
type jobRegistry struct {
	farm *farm.Farm

	mu   sync.Mutex
	jobs map[string]*job
	seq  uint64
	wg   sync.WaitGroup
}

func newJobRegistry(f *farm.Farm) *jobRegistry {
	return &jobRegistry{farm: f, jobs: make(map[string]*job)}
}

// submit registers a job and starts its execution goroutine. The job's
// context is cancelled by DELETE /v1/runs/{id}; until the farm grants a
// worker slot, cancellation frees the job without simulating.
func (r *jobRegistry) submit(cfg core.RunConfig, stream bool) *job {
	ctx, cancel := context.WithCancel(context.Background())
	r.mu.Lock()
	r.seq++
	j := &job{
		ID:        fmt.Sprintf("r-%08d", r.seq),
		Key:       farm.Key(cfg),
		Cfg:       cfg,
		Stream:    stream,
		Submitted: time.Now(),
		cancel:    cancel,
		done:      make(chan struct{}),
		state:     stateQueued,
	}
	r.jobs[j.ID] = j
	r.wg.Add(1)
	r.mu.Unlock()

	go func() {
		defer r.wg.Done()
		defer cancel()
		out := r.farm.RunBatchCtx(ctx, []farm.Job{{Label: j.ID, Config: cfg, Stream: stream}})
		jr := out[0]
		j.mu.Lock()
		j.res, j.rep, j.err = jr.Result, jr.Report, jr.Err
		j.cached, j.deduped, j.wall = jr.Cached, jr.Deduped, jr.Wall
		switch {
		case jr.Err == nil:
			j.state = stateDone
		case ctx.Err() != nil:
			j.state = stateCancelled
		default:
			j.state = stateFailed
		}
		j.mu.Unlock()
		close(j.done)
	}()
	return j
}

// get looks a job up by ID.
func (r *jobRegistry) get(id string) (*job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// counts tallies jobs by state for /metrics and /healthz.
func (r *jobRegistry) counts() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string]int{stateQueued: 0, stateDone: 0, stateFailed: 0, stateCancelled: 0}
	for _, j := range r.jobs {
		j.mu.Lock()
		out[j.state]++
		j.mu.Unlock()
	}
	return out
}

// drain blocks until every submitted job has finished or ctx expires.
func (r *jobRegistry) drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
