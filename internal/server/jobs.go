package server

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fxnet/internal/catalog"
	"fxnet/internal/core"
	"fxnet/internal/farm"
)

// Job states, as reported by GET /v1/runs/{id}. A job is "queued" from
// submission until the farm hands back its result: the farm does not
// distinguish waiting-for-a-slot from simulating, and the distinction is
// visible in /metrics (fxnetd_sims_in_flight) rather than per job.
const (
	stateQueued    = "queued"
	stateDone      = "done"
	stateFailed    = "failed"
	stateCancelled = "cancelled"
)

// job is one asynchronous run submission.
type job struct {
	ID     string
	Key    string
	Cfg    core.RunConfig
	Stream bool
	// FitSpikes > 0 marks a model-fit job: the run resolves through the
	// catalog fitter (catalog hit → run cache → simulate) with this spike
	// budget, and the result is a catalog entry rather than a trace.
	FitSpikes int
	Submitted time.Time

	cancel context.CancelFunc
	done   chan struct{}

	mu      sync.Mutex
	state   string
	res     *core.Result
	rep     *core.Report
	entry   *catalog.Entry
	err     error
	cached  bool
	deduped bool
	wall    time.Duration
}

// analysis names the job's pipeline for wire payloads.
func (j *job) analysis() string {
	if j.FitSpikes > 0 {
		return "fit"
	}
	if j.Stream {
		return "stream"
	}
	return "trace"
}

// model returns the fitted catalog entry of a completed fit job.
func (j *job) model() *catalog.Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.entry
}

// snapshot returns the job's fields under its lock.
func (j *job) snapshot() (state string, res *core.Result, rep *core.Report, err error, cached, deduped bool, wall time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.res, j.rep, j.err, j.cached, j.deduped, j.wall
}

// jobRegistry owns the job table and the background execution goroutines.
type jobRegistry struct {
	farm *farm.Farm
	// fitter resolves fit jobs; nil when the model catalog is disabled
	// (fit jobs then fail rather than silently running as plain runs).
	fitter *catalog.Fitter
	// onTerminal, when non-nil, observes every job reaching a terminal
	// state — the server's journal write-through. It runs on the job's
	// execution goroutine before done is closed, so a crash after the
	// callback returns is recoverable from the journal alone.
	onTerminal func(j *job, state, errMsg string)

	// shard, when non-empty, prefixes allocated job IDs
	// (r-<shard>-00000001) so any cluster peer can route a poll to the
	// shard that owns the job.
	shard string

	mu   sync.Mutex
	jobs map[string]*job
	seq  uint64
	wg   sync.WaitGroup

	// engine accumulates the conservative-PDES window statistics of every
	// executed multi-segment run (cache-served results carry zeros), for
	// the fxnetd_engine_* metrics.
	engine engineCounters
}

// engineCounters aggregates sim.EngineStats across runs. Atomics: the
// adds happen on job execution goroutines, reads on the metrics handler.
type engineCounters struct {
	windows    atomic.Uint64
	activeSum  atomic.Uint64
	nulls      atomic.Uint64
	crossMsgs  atomic.Uint64
	partedRuns atomic.Uint64 // runs that actually exercised the engine
}

func (c *engineCounters) add(r *core.Result) {
	if r == nil || r.Engine.Windows == 0 {
		return
	}
	c.windows.Add(r.Engine.Windows)
	c.activeSum.Add(r.Engine.ActiveSum)
	c.nulls.Add(r.Engine.NullPublishes)
	c.crossMsgs.Add(r.Engine.CrossMessages)
	c.partedRuns.Add(1)
}

func newJobRegistry(f *farm.Farm) *jobRegistry {
	return &jobRegistry{farm: f, jobs: make(map[string]*job)}
}

// allocID reserves the next job ID. IDs are allocated before the
// journal's submitted record is written, so the record and the job
// agree on identity.
func (r *jobRegistry) allocID() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	if r.shard != "" {
		return fmt.Sprintf("r-%s-%08d", r.shard, r.seq)
	}
	return fmt.Sprintf("r-%08d", r.seq)
}

// restoreSeq advances the ID sequence past a replayed job's ID so new
// submissions never collide with recovered ones. Both the plain
// (r-00000001) and shard-prefixed (r-s1-00000001) forms parse: the
// sequence number is the segment after the last dash.
func (r *jobRegistry) restoreSeq(id string) {
	tail := id
	if i := strings.LastIndex(id, "-"); i >= 0 {
		tail = id[i+1:]
	}
	n, err := strconv.ParseUint(tail, 10, 64)
	if err != nil {
		return
	}
	r.mu.Lock()
	if n > r.seq {
		r.seq = n
	}
	r.mu.Unlock()
}

// submit registers a job under a fresh ID and starts it.
func (r *jobRegistry) submit(cfg core.RunConfig, stream bool) *job {
	return r.start(r.allocID(), cfg, stream, 0)
}

// start registers a job under a preassigned ID and launches its
// execution goroutine. The job's context is cancelled by
// DELETE /v1/runs/{id}; until the farm grants a worker slot,
// cancellation frees the job without simulating. fitSpikes > 0 selects
// the fit pipeline: the job resolves through the catalog fitter and
// lands a fitted model instead of run results.
func (r *jobRegistry) start(id string, cfg core.RunConfig, stream bool, fitSpikes int) *job {
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		ID:        id,
		Key:       farm.Key(cfg),
		Cfg:       cfg,
		Stream:    stream,
		FitSpikes: fitSpikes,
		Submitted: time.Now(),
		cancel:    cancel,
		done:      make(chan struct{}),
		state:     stateQueued,
	}
	r.mu.Lock()
	r.jobs[j.ID] = j
	r.wg.Add(1)
	r.mu.Unlock()

	go func() {
		defer r.wg.Done()
		defer cancel()
		if fitSpikes > 0 {
			r.runFit(ctx, j, cfg, fitSpikes)
		} else {
			out := r.farm.RunBatchCtx(ctx, []farm.Job{{Label: j.ID, Config: cfg, Stream: stream}})
			jr := out[0]
			j.mu.Lock()
			j.res, j.rep, j.err = jr.Result, jr.Report, jr.Err
			j.cached, j.deduped, j.wall = jr.Cached, jr.Deduped, jr.Wall
			j.mu.Unlock()
			r.engine.add(jr.Result)
		}
		j.mu.Lock()
		switch {
		case j.err == nil:
			j.state = stateDone
		case ctx.Err() != nil:
			j.state = stateCancelled
		default:
			j.state = stateFailed
		}
		state := j.state
		errMsg := ""
		if j.err != nil {
			errMsg = j.err.Error()
		}
		j.mu.Unlock()
		if r.onTerminal != nil {
			r.onTerminal(j, state, errMsg)
		}
		close(j.done)
	}()
	return j
}

// runFit resolves a fit job through the catalog fitter: a catalog hit
// answers in microseconds, a warm run cache fits without simulating,
// and only a cold miss simulates (through the same farm the run queue
// uses, so worker bounds and dedup hold across job kinds).
func (r *jobRegistry) runFit(ctx context.Context, j *job, cfg core.RunConfig, spikes int) {
	if r.fitter == nil {
		j.mu.Lock()
		j.err = errors.New("model catalog disabled: start fxnetd with -cache or -catalog")
		j.mu.Unlock()
		return
	}
	e, prov, err := r.fitter.Fit(ctx, cfg, catalog.Options{Spikes: spikes})
	j.mu.Lock()
	j.entry, j.err = e, err
	j.cached = prov.CatalogHit || prov.RunCached
	j.deduped = prov.RunDeduped
	j.wall = prov.Wall
	j.mu.Unlock()
}

// restoreTerminal registers a tombstone for a job the journal says
// already finished in a state (cancelled/failed) that re-running cannot
// reproduce. The job is immediately terminal and never touches the
// farm; onTerminal is not invoked, so recovery does not re-journal it.
func (r *jobRegistry) restoreTerminal(id string, cfg core.RunConfig, stream bool, fitSpikes int, state, errMsg string) *job {
	j := &job{
		ID:        id,
		Key:       farm.Key(cfg),
		Cfg:       cfg,
		Stream:    stream,
		FitSpikes: fitSpikes,
		Submitted: time.Now(),
		cancel:    func() {},
		done:      make(chan struct{}),
		state:     state,
	}
	if errMsg != "" {
		j.err = fmt.Errorf("%s", errMsg)
	}
	close(j.done)
	r.mu.Lock()
	r.jobs[j.ID] = j
	r.mu.Unlock()
	return j
}

// get looks a job up by ID.
func (r *jobRegistry) get(id string) (*job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// counts tallies jobs by state for /metrics and /healthz.
func (r *jobRegistry) counts() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string]int{stateQueued: 0, stateDone: 0, stateFailed: 0, stateCancelled: 0}
	for _, j := range r.jobs {
		j.mu.Lock()
		out[j.state]++
		j.mu.Unlock()
	}
	return out
}

// drain blocks until every submitted job has finished or ctx expires.
func (r *jobRegistry) drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
