package server

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fxnet/internal/journal"
)

// journaledServer builds a server over dir's journal (and run cache) and
// replays it to readiness. The returned server is what a freshly booted
// fxnetd would be.
func journaledServer(t *testing.T, dir string, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	opts.JournalPath = filepath.Join(dir, "journal.wal")
	if opts.CacheDir == "" {
		opts.CacheDir = filepath.Join(dir, "cache")
	}
	opts.JournalNoSync = true // tmpfs fsync noise is not what these tests measure
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Recover(context.Background()); err != nil {
		t.Fatalf("recover: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// crash abandons a server the way SIGKILL would: no drain, no flush,
// just the journal handle gone. In-flight goroutines keep running (as a
// killed process's page cache keeps its completed writes), which is
// fine — the journal already holds every acknowledged submission.
func crash(s *Server, ts *httptest.Server) {
	ts.Close()
	s.Close()
}

func traceBytes(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/runs/" + id + "/trace?format=bin")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace %s: HTTP %d", id, resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// The tentpole invariant: every job acknowledged with a 202 before a
// crash reaches done after restart, and the recomputed (or cache-served)
// trace is byte-identical to what the pre-crash server would have
// produced.
func TestRecoveryCompletesAcknowledgedJobs(t *testing.T) {
	dir := t.TempDir()
	a, tsA := journaledServer(t, dir, Options{Workers: 2, Memoize: true})

	// One job runs to completion before the crash; its trace digest is
	// the ground truth the recovered server must reproduce.
	doneID := submit(t, tsA.URL, cheapRun())
	if st := waitState(t, tsA.URL, doneID); st.State != stateDone {
		t.Fatalf("pre-crash run: %s", st.State)
	}
	wantDigest := sha256.Sum256(traceBytes(t, tsA.URL, doneID))

	// Several more acknowledged but (likely) still queued or running.
	var pending []string
	for seed := int64(2); seed <= 5; seed++ {
		pending = append(pending, submit(t, tsA.URL, RunRequest{Program: "sor", P: 4, N: 32, Iters: 4, Seed: seed}))
	}
	crash(a, tsA)

	_, tsB := journaledServer(t, dir, Options{Workers: 2, Memoize: true})
	for _, id := range append([]string{doneID}, pending...) {
		if st := waitState(t, tsB.URL, id); st.State != stateDone {
			t.Fatalf("recovered run %s: %s (%s)", id, st.State, st.Error)
		}
	}
	if got := sha256.Sum256(traceBytes(t, tsB.URL, doneID)); got != wantDigest {
		t.Fatal("recovered trace is not byte-identical to the pre-crash trace")
	}
}

// Cancelled jobs must stay cancelled across a crash — recovery may not
// resurrect work the client explicitly abandoned.
func TestRecoveryPreservesCancellation(t *testing.T) {
	dir := t.TempDir()
	a, tsA := journaledServer(t, dir, Options{Workers: 1})

	// Occupy the single worker so the victim is provably queued.
	blocker := submit(t, tsA.URL, RunRequest{Program: "seq", P: 4, N: 64, Iters: 60, Seed: 1})
	deadline := time.Now().Add(10 * time.Second)
	for a.farm.Stats().Running == 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	victim := submit(t, tsA.URL, RunRequest{Program: "seq", P: 4, N: 64, Iters: 60, Seed: 2})
	if code := doJSON(t, "DELETE", tsA.URL+"/v1/runs/"+victim, nil, nil); code != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", code)
	}
	doJSON(t, "DELETE", tsA.URL+"/v1/runs/"+blocker, nil, nil)
	crash(a, tsA)

	b, tsB := journaledServer(t, dir, Options{Workers: 1})
	var st statusJSON
	if code := doJSON(t, "GET", tsB.URL+"/v1/runs/"+victim, nil, &st); code != http.StatusOK {
		t.Fatalf("recovered victim: HTTP %d", code)
	}
	if st.State != stateCancelled {
		t.Fatalf("recovered victim state = %s, want cancelled", st.State)
	}
	// Executed simulations on the recovered node: the cancelled victim
	// must not be among them. (The cancelled blocker may re-run — it was
	// cancelled too, so it also must not execute.)
	if got := b.farm.Stats().Executed; got != 0 {
		t.Errorf("recovered node executed %d simulations, want 0 (both jobs were cancelled)", got)
	}
}

// An idempotency key continues deduplicating after a crash: the retried
// submit lands on the originally acknowledged job, not a new one.
func TestRecoveryPreservesIdempotencyKeys(t *testing.T) {
	dir := t.TempDir()
	a, tsA := journaledServer(t, dir, Options{Workers: 2, Memoize: true})

	req, _ := http.NewRequest("POST", tsA.URL+"/v1/runs",
		strings.NewReader(`{"program":"sor","p":4,"n":32,"iters":4,"seed":9}`))
	req.Header.Set(IdempotencyKeyHeader, "key-abc")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := jsonDecode(resp, &acc); err != nil || acc.ID == "" {
		t.Fatalf("submit: %v (id %q)", err, acc.ID)
	}
	crash(a, tsA)

	_, tsB := journaledServer(t, dir, Options{Workers: 2, Memoize: true})
	req2, _ := http.NewRequest("POST", tsB.URL+"/v1/runs",
		strings.NewReader(`{"program":"sor","p":4,"n":32,"iters":4,"seed":9}`))
	req2.Header.Set(IdempotencyKeyHeader, "key-abc")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	var acc2 struct {
		ID     string `json:"id"`
		Replay bool   `json:"idempotent_replay"`
	}
	if err := jsonDecode(resp2, &acc2); err != nil {
		t.Fatal(err)
	}
	if acc2.ID != acc.ID || !acc2.Replay {
		t.Fatalf("retried submit after crash: id %q replay %v, want original id %q", acc2.ID, acc2.Replay, acc.ID)
	}
}

// QoS grants survive the crash; released ones do not; and a recovered
// admission ID releases exactly once (the double-release race).
func TestRecoveryRestoresGrants(t *testing.T) {
	dir := t.TempDir()
	a, tsA := journaledServer(t, dir, Options{Workers: 1})

	var g1, g2 struct {
		Offer OfferJSON `json:"offer"`
	}
	doJSON(t, "POST", tsA.URL+"/v1/qos/negotiate", NegotiateRequest{Program: "sor", Client: "alice"}, &g1)
	doJSON(t, "POST", tsA.URL+"/v1/qos/negotiate", NegotiateRequest{Program: "2dfft", Client: "bob"}, &g2)
	if g1.Offer.ID == 0 || g2.Offer.ID == 0 {
		t.Fatalf("grants: %+v %+v", g1, g2)
	}
	if code := doJSON(t, "DELETE", fmt.Sprintf("%s/v1/qos/commitments/%d", tsA.URL, g1.Offer.ID), nil, nil); code != http.StatusOK {
		t.Fatalf("release: HTTP %d", code)
	}
	crash(a, tsA)

	_, tsB := journaledServer(t, dir, Options{Workers: 1})
	var list struct {
		Commitments []OfferJSON `json:"commitments"`
	}
	doJSON(t, "GET", tsB.URL+"/v1/qos/commitments", nil, &list)
	if len(list.Commitments) != 1 || list.Commitments[0].ID != g2.Offer.ID {
		t.Fatalf("recovered commitments = %+v, want exactly admission %d", list.Commitments, g2.Offer.ID)
	}
	// The released grant must not come back.
	url1 := fmt.Sprintf("%s/v1/qos/commitments/%d", tsB.URL, g1.Offer.ID)
	if code := doJSON(t, "DELETE", url1, nil, nil); code != http.StatusNotFound {
		t.Errorf("releasing pre-crash-released admission: HTTP %d, want 404", code)
	}
	// The surviving grant releases once, then 404s.
	url2 := fmt.Sprintf("%s/v1/qos/commitments/%d", tsB.URL, g2.Offer.ID)
	if code := doJSON(t, "DELETE", url2, nil, nil); code != http.StatusOK {
		t.Errorf("release recovered admission: HTTP %d, want 200", code)
	}
	if code := doJSON(t, "DELETE", url2, nil, nil); code != http.StatusNotFound {
		t.Errorf("double release recovered admission: HTTP %d, want 404", code)
	}
	// New admissions must not collide with recovered IDs.
	var g3 struct {
		Offer OfferJSON `json:"offer"`
	}
	doJSON(t, "POST", tsB.URL+"/v1/qos/negotiate", NegotiateRequest{Program: "sor"}, &g3)
	if g3.Offer.ID <= g2.Offer.ID {
		t.Errorf("post-recovery admission ID %d not above recovered max %d", g3.Offer.ID, g2.Offer.ID)
	}
}

// A torn tail — the crash landed mid-append — costs exactly the torn
// record, never the journal.
func TestRecoveryTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	a, tsA := journaledServer(t, dir, Options{Workers: 2, Memoize: true})
	id := submit(t, tsA.URL, cheapRun())
	if st := waitState(t, tsA.URL, id); st.State != stateDone {
		t.Fatalf("pre-crash run: %s", st.State)
	}
	crash(a, tsA)

	// Tear the last record: chop 3 bytes off the file. The terminal
	// record becomes unreadable; the submission before it must survive.
	jp := filepath.Join(dir, "journal.wal")
	fi, err := os.Stat(jp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(jp, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	b, tsB := journaledServer(t, dir, Options{Workers: 2, Memoize: true})
	if b.jstats.truncated.Load() == 0 {
		t.Error("torn tail not reported in journal stats")
	}
	// The job lost its terminal record, so it replays as pending and
	// re-enqueues; the cache answers it and it converges to done.
	if st := waitState(t, tsB.URL, id); st.State != stateDone {
		t.Fatalf("run after torn-tail recovery: %s (%s)", st.State, st.Error)
	}
	// /healthz surfaces the truncation.
	var hz struct {
		Journal map[string]any `json:"journal"`
	}
	doJSON(t, "GET", tsB.URL+"/healthz", nil, &hz)
	if tb, _ := hz.Journal["truncated_bytes"].(float64); tb <= 0 {
		t.Errorf("healthz journal = %v, want truncated_bytes > 0", hz.Journal)
	}
}

// A bit flip mid-file fails the CRC; everything from the flipped record
// on is untrusted and dropped, everything before it recovers.
func TestRecoverySurvivesBitFlip(t *testing.T) {
	dir := t.TempDir()
	a, tsA := journaledServer(t, dir, Options{Workers: 2, Memoize: true})
	id := submit(t, tsA.URL, cheapRun())
	if st := waitState(t, tsA.URL, id); st.State != stateDone {
		t.Fatalf("pre-crash run: %s", st.State)
	}
	crash(a, tsA)

	jp := filepath.Join(dir, "journal.wal")
	raw, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-5] ^= 0x40
	if err := os.WriteFile(jp, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	b, tsB := journaledServer(t, dir, Options{Workers: 2, Memoize: true})
	if b.jstats.truncated.Load() == 0 {
		t.Error("bit flip not detected as truncation")
	}
	if st := waitState(t, tsB.URL, id); st.State != stateDone {
		t.Fatalf("run after bit-flip recovery: %s (%s)", st.State, st.Error)
	}
}

// SIGTERM during replay: the context cancels Recover mid-loop; the node
// never turns ready, keeps refusing submissions, and the un-replayed
// records stay in the journal for the next boot, which recovers fully.
func TestSigtermDuringReplay(t *testing.T) {
	dir := t.TempDir()
	a, tsA := journaledServer(t, dir, Options{Workers: 2, Memoize: true})
	var ids []string
	for seed := int64(1); seed <= 4; seed++ {
		ids = append(ids, submit(t, tsA.URL, RunRequest{Program: "sor", P: 4, N: 32, Iters: 4, Seed: seed}))
	}
	crash(a, tsA)

	// Boot B with an already-cancelled context: replay aborts on the
	// first job, exactly as a SIGTERM arriving during a long replay.
	optsB := Options{Workers: 2, Memoize: true,
		JournalPath: filepath.Join(dir, "journal.wal"), CacheDir: filepath.Join(dir, "cache"), JournalNoSync: true}
	b, err := New(optsB)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := b.Recover(ctx); err == nil {
		t.Fatal("Recover with cancelled context returned nil, want ctx error")
	}
	if b.Ready() {
		t.Fatal("aborted recovery left the server ready")
	}
	tsB := httptest.NewServer(b.Handler())
	if code := doJSON(t, "POST", tsB.URL+"/v1/runs", cheapRun(), nil); code != http.StatusServiceUnavailable {
		t.Errorf("submit on never-ready node: HTTP %d, want 503", code)
	}
	if code := doJSON(t, "GET", tsB.URL+"/readyz", nil, nil); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz on never-ready node: HTTP %d, want 503", code)
	}
	tsB.Close()
	b.Close()

	// The next boot finds the same journal and completes every promise.
	_, tsC := journaledServer(t, dir, Options{Workers: 2, Memoize: true})
	for _, id := range ids {
		if st := waitState(t, tsC.URL, id); st.State != stateDone {
			t.Fatalf("run %s after aborted-then-retried recovery: %s", id, st.State)
		}
	}
}

// A client that disconnects while its submit is stalled in a slow-disk
// journal append must not wedge the server or void the promise: the
// append finishes on the server's side and the job is durable.
func TestClientDisconnectDuringJournalAppend(t *testing.T) {
	dir := t.TempDir()
	ffs := &journal.FaultFS{Base: journal.OSFS{}, WriteBudget: -1, WriteDelay: 30 * time.Millisecond}
	opts := Options{Workers: 2, Memoize: true,
		JournalPath: filepath.Join(dir, "journal.wal"), CacheDir: filepath.Join(dir, "cache"),
		JournalNoSync: true, JournalFS: ffs}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	// Fire a submit whose context dies mid-append (the journal write
	// stalls 30ms per write; the client gives up after 5ms).
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/runs",
		strings.NewReader(`{"program":"sor","p":4,"n":32,"iters":4,"seed":42}`))
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Log("submit returned before cancel; race not exercised this run")
	}

	// The server must still answer and accept new work afterwards.
	id := submit(t, ts.URL, cheapRun())
	if st := waitState(t, ts.URL, id); st.State != stateDone {
		t.Fatalf("post-disconnect submit: %s", st.State)
	}
	crash(s, ts)

	// Whatever the disconnected submit journaled, recovery must be
	// clean: every journaled job converges to a terminal state.
	b, tsB := journaledServer(t, dir, Options{Workers: 2, Memoize: true})
	deadline := time.Now().Add(30 * time.Second)
	for {
		fs := b.farm.Stats()
		if fs.Submitted == fs.Completed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered jobs never drained")
		}
		time.Sleep(5 * time.Millisecond)
	}
	_ = tsB

	// The crashed server's disconnected submit may still be simulating in
	// the background; wait it out so its cache write cannot race the
	// test's temp-dir cleanup.
	dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer dcancel()
	_ = s.Drain(dctx)
}

// When the disk fills, submits fail closed: 503 "journal unavailable",
// no 202 the server cannot honor. Already-acknowledged work is
// unaffected.
func TestFullDiskFailsSubmitsClosed(t *testing.T) {
	dir := t.TempDir()
	ffs := &journal.FaultFS{Base: journal.OSFS{}, WriteBudget: -1}
	opts := Options{Workers: 2, Memoize: true,
		JournalPath: filepath.Join(dir, "journal.wal"), CacheDir: filepath.Join(dir, "cache"),
		JournalNoSync: true, JournalFS: ffs}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	id := submit(t, ts.URL, cheapRun())
	if st := waitState(t, ts.URL, id); st.State != stateDone {
		t.Fatalf("pre-full run: %s", st.State)
	}

	// Disk full from here on.
	ffs.WriteBudget = 0
	var e map[string]string
	if code := doJSON(t, "POST", ts.URL+"/v1/runs",
		RunRequest{Program: "sor", P: 4, N: 32, Iters: 4, Seed: 77}, &e); code != http.StatusServiceUnavailable {
		t.Fatalf("submit on full disk: HTTP %d, want 503", code)
	}
	if !strings.Contains(e["error"], "journal") {
		t.Errorf("full-disk error = %q, want journal unavailable", e["error"])
	}
	// The acknowledged job still answers.
	if st := waitState(t, ts.URL, id); st.State != stateDone {
		t.Errorf("acknowledged run after disk full: %s", st.State)
	}
	if s.jstats.appendFails.Load() == 0 {
		t.Error("append failure not counted")
	}
}

func jsonDecode(resp *http.Response, out any) error {
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, out)
}
