package server

import (
	"bufio"
	"encoding/json"
	"math"
	"net/http"

	"fxnet/internal/dsp"
	"fxnet/internal/trace"
)

// streamChunk is the flush granularity of the NDJSON streamers, matched
// to the collector's columnar chunk size order: the response is written
// and flushed chunk by chunk, so a million-packet trace crosses the wire
// in constant server memory instead of being materialized as one
// response body.
const streamChunk = 8192

// nullableFloat marshals NaN and ±Inf as JSON null instead of tripping
// encoding/json's unsupported-value error — spectra of degenerate series
// carry such values legitimately.
type nullableFloat float64

func (f nullableFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// traceHeaderJSON is the first NDJSON line of a trace stream.
type traceHeaderJSON struct {
	Hosts   []string          `json:"hosts"`
	Meta    map[string]string `json:"meta"`
	Marks   []traceMarkJSON   `json:"marks,omitempty"`
	Packets int               `json:"packets"`
}

type traceMarkJSON struct {
	T     float64 `json:"t"`
	Label string  `json:"label"`
}

// tracePacketJSON is one packet line of a trace stream.
type tracePacketJSON struct {
	T     float64 `json:"t"`
	Size  int     `json:"size"`
	Src   int     `json:"src"`
	Dst   int     `json:"dst"`
	Proto string  `json:"proto"`
	Flags int     `json:"flags"`
	Sport int     `json:"sport"`
	Dport int     `json:"dport"`
}

// flushIfPossible flushes w's buffered writer and then the HTTP response
// so the client sees complete NDJSON chunks as they are produced
// (Server-Sent-Events-style incremental delivery).
func flushIfPossible(bw *bufio.Writer, w http.ResponseWriter) {
	bw.Flush()
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// streamTraceNDJSON writes a header line and one line per packet,
// flushing every streamChunk packets.
func streamTraceNDJSON(w http.ResponseWriter, tr *trace.Trace) error {
	w.Header().Set("Content-Type", "application/x-ndjson")
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	head := traceHeaderJSON{Hosts: tr.Hosts, Meta: tr.Meta, Packets: len(tr.Packets)}
	for _, m := range tr.Marks {
		head.Marks = append(head.Marks, traceMarkJSON{T: m.Time.Seconds(), Label: m.Label})
	}
	if err := enc.Encode(head); err != nil {
		return err
	}
	for i := range tr.Packets {
		p := &tr.Packets[i]
		if err := enc.Encode(tracePacketJSON{
			T:     p.Time.Seconds(),
			Size:  int(p.Size),
			Src:   int(p.Src),
			Dst:   int(p.Dst),
			Proto: p.Proto.String(),
			Flags: int(p.Flags),
			Sport: int(p.SrcPort),
			Dport: int(p.DstPort),
		}); err != nil {
			return err
		}
		if (i+1)%streamChunk == 0 {
			flushIfPossible(bw, w)
		}
	}
	flushIfPossible(bw, w)
	return nil
}

// spectrumHeaderJSON is the first NDJSON line of a spectrum stream.
type spectrumHeaderJSON struct {
	Program string        `json:"program"`
	Kind    string        `json:"kind"` // "aggregate" or "connection"
	Bins    int           `json:"bins"`
	DF      nullableFloat `json:"df"`
	DT      nullableFloat `json:"dt"`
	N       int           `json:"n"`
}

type spectrumBinJSON struct {
	Freq  nullableFloat `json:"freq"`
	Power nullableFloat `json:"power"`
}

// streamSpectrumNDJSON writes a header line and one line per frequency
// bin, flushing every streamChunk bins.
func streamSpectrumNDJSON(w http.ResponseWriter, program, kind string, s *dsp.Spectrum) error {
	w.Header().Set("Content-Type", "application/x-ndjson")
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	head := spectrumHeaderJSON{
		Program: program, Kind: kind, Bins: len(s.Freq),
		DF: nullableFloat(s.DF), DT: nullableFloat(s.DT), N: s.N,
	}
	if err := enc.Encode(head); err != nil {
		return err
	}
	for i := range s.Freq {
		if err := enc.Encode(spectrumBinJSON{
			Freq:  nullableFloat(s.Freq[i]),
			Power: nullableFloat(s.Power[i]),
		}); err != nil {
			return err
		}
		if (i+1)%streamChunk == 0 {
			flushIfPossible(bw, w)
		}
	}
	flushIfPossible(bw, w)
	return nil
}
