package server

import (
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so the NDJSON streamers keep
// their incremental delivery through the middleware wrapper.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// clientLimiter bounds in-flight API requests per client. A client is
// the X-Client-ID header when present, else the peer address without its
// port — the paper-shaped analogue of per-host fairness on the shared
// segment.
type clientLimiter struct {
	limit int
	mu    sync.Mutex
	live  map[string]int
}

func newClientLimiter(limit int) *clientLimiter {
	return &clientLimiter{limit: limit, live: make(map[string]int)}
}

func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// acquire admits the request or reports rejection. release must be
// called exactly once after an admitted request finishes.
func (l *clientLimiter) acquire(key string) bool {
	if l.limit <= 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.live[key] >= l.limit {
		return false
	}
	l.live[key]++
	return true
}

func (l *clientLimiter) release(key string) {
	if l.limit <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.live[key] <= 1 {
		delete(l.live, key)
	} else {
		l.live[key]--
	}
}

// instrument wraps an endpoint handler with the ops surface: request-ID
// assignment and logging, latency/status metrics, load shedding by
// endpoint class, and (for limited endpoints) per-client concurrency
// backpressure with 429 + Retry-After.
func (s *Server) instrument(endpoint string, limited bool, shedClass int, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := fmt.Sprintf("%08x", s.reqSeq.Add(1))
		w.Header().Set("X-Request-ID", reqID)

		if !s.shedder.admit(shedClass) {
			w.Header().Set("Retry-After", "2")
			http.Error(w, "overloaded: load shedding "+shedClassName(shedClass)+" traffic", http.StatusServiceUnavailable)
			s.metrics.record(endpoint, strconv.Itoa(http.StatusServiceUnavailable), time.Since(start).Seconds())
			s.logf("req=%s %s %s -> 503 shed (%s)", reqID, r.Method, r.URL.Path, shedClassName(shedClass))
			return
		}

		if limited {
			key := clientKey(r)
			if !s.limiter.acquire(key) {
				s.metrics.throttle()
				w.Header().Set("Retry-After", "1")
				http.Error(w, "too many in-flight requests for this client", http.StatusTooManyRequests)
				s.metrics.record(endpoint, strconv.Itoa(http.StatusTooManyRequests), time.Since(start).Seconds())
				s.logf("req=%s client=%s %s %s -> 429 (%.1fms)", reqID, key, r.Method, r.URL.Path,
					float64(time.Since(start).Microseconds())/1000)
				return
			}
			defer s.limiter.release(key)
		}

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		elapsed := time.Since(start)
		s.metrics.record(endpoint, strconv.Itoa(rec.status), elapsed.Seconds())
		s.logf("req=%s client=%s %s %s -> %d (%.1fms)", reqID, clientKey(r), r.Method, r.URL.Path,
			rec.status, float64(elapsed.Microseconds())/1000)
	}
}
