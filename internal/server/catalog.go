package server

// The /v1/models surface: the fitted-model catalog exposed over HTTP.
// Fit jobs ride the existing run queue — same journal, same idempotency,
// same recovery — because a fit IS a run plus a few milliseconds of
// spectral fitting; only the result differs (a catalog entry instead of
// a trace). GET endpoints answer straight from the catalog.

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"

	"fxnet/internal/catalog"
	"fxnet/internal/farm"
	"fxnet/internal/journal"
)

var (
	errCatalogDisabled     = errors.New("model catalog disabled: start fxnetd with -cache or -catalog")
	errCatalogNeedsProgram = errors.New("source=catalog requires program")
	errCatalogNoCustom     = errors.New("source=catalog and custom are mutually exclusive")
)

// FitRequest is the wire form of POST /v1/models/fit: a run
// configuration plus the fit's spike budget.
type FitRequest struct {
	RunRequest
	// Spikes is the spike budget k; <= 0 selects the default (8).
	Spikes int `json:"spikes,omitempty"`
}

// catalogEnabled guards the /v1/models surface.
func (s *Server) catalogEnabled(w http.ResponseWriter) bool {
	if s.catalog == nil {
		writeErr(w, http.StatusServiceUnavailable,
			"model catalog disabled: start fxnetd with -cache or -catalog")
		return false
	}
	return true
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	if !s.catalogEnabled(w) {
		return
	}
	entries, err := s.catalog.List()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "catalog list: %v", err)
		return
	}
	program := r.URL.Query().Get("program")
	wantP := 0
	if v := r.URL.Query().Get("p"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p < 0 {
			writeErr(w, http.StatusBadRequest, "bad p %q", v)
			return
		}
		wantP = p
	}
	models := []catalog.EntryJSON{}
	for _, e := range entries {
		if program != "" && e.Program != program {
			continue
		}
		if wantP != 0 && e.P != wantP {
			continue
		}
		models = append(models, catalog.ToJSON(e))
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"models": models,
		"count":  len(models),
	})
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if !s.catalogEnabled(w) {
		return
	}
	key := r.PathValue("key")
	e, ok := s.catalog.Get(key)
	if !ok {
		writeErr(w, http.StatusNotFound, "no fitted model %q", key)
		return
	}
	writeJSON(w, http.StatusOK, catalog.ToJSON(e))
}

// handleFit submits an asynchronous fit job. The submit path mirrors
// handleSubmit — drain/ready/breaker gates, idempotency, journal-before-
// 202 — so a crash between the acknowledgment and the fit still lands
// the model after recovery.
func (s *Server) handleFit(w http.ResponseWriter, r *http.Request) {
	if !s.catalogEnabled(w) {
		return
	}
	if s.draining.Load() {
		w.Header().Set("Retry-After", "5")
		writeErr(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if !s.ready.Load() {
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, "recovering: journal replay in progress")
		return
	}
	if !s.breaker.allow() {
		s.metrics.breakerReject()
		w.Header().Set("Retry-After", "5")
		writeErr(w, http.StatusServiceUnavailable, "execution circuit breaker open")
		return
	}
	var req FitRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Analysis != "" && req.Analysis != "stream" {
		writeErr(w, http.StatusBadRequest, "fit jobs always use the stream pipeline; omit analysis")
		return
	}
	cfg, err := req.config()
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	spikes := req.Spikes
	if spikes <= 0 {
		spikes = catalog.DefaultSpikes
	}

	idemKey := r.Header.Get(IdempotencyKeyHeader)
	if idemKey != "" {
		s.idemMu.Lock()
		id, seen := s.idem[idemKey]
		s.idemMu.Unlock()
		if seen {
			if j, ok := s.jobs.get(id); ok {
				s.accept(w, j, true)
				return
			}
		}
	}

	id := s.jobs.allocID()
	sub := submittedRec{
		ID: id, Key: farm.Key(cfg), Analysis: "stream",
		IdemKey: idemKey, Request: req.RunRequest, Fit: spikes,
	}
	if err := s.appendJournal(journal.OpSubmitted, sub); err != nil {
		s.logf("journal: fit submit %s: %v", id, err)
		w.Header().Set("Retry-After", "5")
		writeErr(w, http.StatusServiceUnavailable, "journal unavailable: submission cannot be made durable")
		return
	}
	j := s.jobs.start(id, cfg, true, spikes)
	if idemKey != "" {
		s.idemMu.Lock()
		s.idem[idemKey] = id
		s.idemMu.Unlock()
	}
	s.accept(w, j, false)
}

// catalogProgram resolves a catalog-backed negotiation request.
func (s *Server) catalogProgram(req *NegotiateRequest) (OfferJSON, error) {
	if s.catalog == nil {
		return OfferJSON{}, errCatalogDisabled
	}
	if req.Program == "" {
		return OfferJSON{}, errCatalogNeedsProgram
	}
	if req.Custom != nil {
		return OfferJSON{}, errCatalogNoCustom
	}
	prog, err := s.catalog.Program(req.Program)
	if err != nil {
		return OfferJSON{}, err
	}
	return s.broker.negotiateWith(prog, req)
}
