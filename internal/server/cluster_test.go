package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"fxnet/internal/cluster"
	"fxnet/internal/farm"
)

// hswap lets a test start an httptest front end before the Server that
// will answer on it exists — the ring needs every peer's URL up front.
type hswap struct {
	mu sync.Mutex
	h  http.Handler
}

func (h *hswap) set(d http.Handler) {
	h.mu.Lock()
	h.h = d
	h.mu.Unlock()
}

func (h *hswap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	d := h.h
	h.mu.Unlock()
	if d == nil {
		http.Error(w, "shard not ready", http.StatusServiceUnavailable)
		return
	}
	d.ServeHTTP(w, r)
}

// startCluster boots n shards (s0..s[n-1]) that know each other's real
// URLs. mod customizes each shard's options before New.
func startCluster(t *testing.T, n int, mod func(i int, o *Options)) ([]*Server, []*httptest.Server) {
	t.Helper()
	swaps := make([]*hswap, n)
	fronts := make([]*httptest.Server, n)
	peers := make([]cluster.Peer, n)
	for i := range peers {
		swaps[i] = &hswap{}
		fronts[i] = httptest.NewServer(swaps[i])
		t.Cleanup(fronts[i].Close)
		peers[i] = cluster.Peer{ID: fmt.Sprintf("s%d", i), URL: fronts[i].URL}
	}
	servers := make([]*Server, n)
	for i := range servers {
		o := Options{
			Workers: 2,
			Memoize: true,
			Cluster: cluster.Config{Version: 1, Self: peers[i].ID, Peers: peers},
		}
		if mod != nil {
			mod(i, &o)
		}
		s, err := New(o)
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = s
		swaps[i].set(s.Handler())
	}
	return servers, fronts
}

// reqOwnedBy finds a cheap run configuration whose key the given shard
// owns, by walking seeds.
func reqOwnedBy(t *testing.T, s *Server, shard string) RunRequest {
	t.Helper()
	for seed := int64(1); seed < 1000; seed++ {
		req := cheapRun()
		req.Seed = seed
		cfg, err := req.config()
		if err != nil {
			t.Fatal(err)
		}
		if s.Ring().Owner(farm.Key(cfg)).ID == shard {
			return req
		}
	}
	t.Fatalf("no seed in [1,1000) hashes to shard %s", shard)
	return RunRequest{}
}

func TestJobShard(t *testing.T) {
	cases := []struct{ id, want string }{
		{"r-00000001", ""},
		{"r-s1-00000001", "s1"},
		{"r-a-b-00000007", "a-b"},
		{"nonsense", ""},
		{"", ""},
	}
	for _, tc := range cases {
		if got := jobShard(tc.id); got != tc.want {
			t.Errorf("jobShard(%q) = %q, want %q", tc.id, got, tc.want)
		}
	}
}

func TestRestoreSeqShardPrefixed(t *testing.T) {
	r := newJobRegistry(nil)
	r.shard = "s2"
	r.restoreSeq("r-s2-00000041")
	if id := r.allocID(); id != "r-s2-00000042" {
		t.Fatalf("allocID after shard-prefixed restore = %s", id)
	}
}

func TestClusterSubmitProxiedToOwner(t *testing.T) {
	servers, fronts := startCluster(t, 2, nil)
	req := reqOwnedBy(t, servers[0], "s1")

	// Submitted to the non-owner, the run must land on (and be executed
	// by) the owner, and the returned ID must carry the owner's prefix.
	var acc map[string]any
	if code := doJSON(t, "POST", fronts[0].URL+"/v1/runs", req, &acc); code != http.StatusAccepted {
		t.Fatalf("submit via non-owner: HTTP %d", code)
	}
	id, _ := acc["id"].(string)
	if !strings.HasPrefix(id, "r-s1-") {
		t.Fatalf("job id %q not minted by owner s1", id)
	}

	// Polling through the non-owner routes to the shard that owns the ID.
	st := waitState(t, fronts[0].URL, id)
	if st.State != stateDone {
		t.Fatalf("run ended %s: %s", st.State, st.Error)
	}
	if got := servers[1].farm.Stats().Executed; got != 1 {
		t.Fatalf("owner executed %d sims, want 1", got)
	}
	if got := servers[0].farm.Stats().Executed; got != 0 {
		t.Fatalf("non-owner executed %d sims, want 0", got)
	}
	if got := servers[0].clu.proxiedSubmits.Load(); got != 1 {
		t.Fatalf("proxied submits = %d, want 1", got)
	}
}

func TestClusterWarmClusterExecutesOnce(t *testing.T) {
	servers, fronts := startCluster(t, 3, nil)
	req := reqOwnedBy(t, servers[0], "s2")

	// The same configuration submitted through every shard simulates
	// exactly once: routing concentrates the key on its owner, whose
	// memo/single-flight serves the rest.
	for _, f := range fronts {
		id := submit(t, f.URL, req)
		if st := waitState(t, f.URL, id); st.State != stateDone {
			t.Fatalf("run %s via %s ended %s: %s", id, f.URL, st.State, st.Error)
		}
	}
	total := int64(0)
	for _, s := range servers {
		total += s.farm.Stats().Executed
	}
	if total != 1 {
		t.Fatalf("warm cluster executed %d sims, want 1", total)
	}
}

func TestClusterRedirectMode(t *testing.T) {
	servers, fronts := startCluster(t, 2, func(i int, o *Options) {
		o.ClusterRoute = RouteRedirect
	})
	req := reqOwnedBy(t, servers[0], "s1")
	body, _ := json.Marshal(req)
	hr, _ := http.NewRequest("POST", fronts[0].URL+"/v1/runs", bytes.NewReader(body))
	noFollow := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := noFollow.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("redirect mode answered %d, want 307", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != fronts[1].URL+"/v1/runs" {
		t.Fatalf("Location = %q, want owner %q", loc, fronts[1].URL+"/v1/runs")
	}
}

func TestClusterPeerFetchTier(t *testing.T) {
	// Routing off: every shard serves what it is asked, so a submit to
	// the non-owner exercises the disk-miss → peer-fetch tier instead of
	// the proxy.
	servers, fronts := startCluster(t, 2, func(i int, o *Options) {
		o.ClusterRoute = RouteOff
		o.Memoize = false
		o.CacheDir = t.TempDir()
	})
	req := reqOwnedBy(t, servers[0], "s0")

	id := submit(t, fronts[0].URL, req)
	if st := waitState(t, fronts[0].URL, id); st.State != stateDone {
		t.Fatalf("warmup ended %s: %s", st.State, st.Error)
	}

	id = submit(t, fronts[1].URL, req)
	if st := waitState(t, fronts[1].URL, id); st.State != stateDone {
		t.Fatalf("peer-fetch run ended %s: %s", st.State, st.Error)
	}
	fs := servers[1].farm.Stats()
	if fs.Executed != 0 || fs.CacheHits != 1 || fs.PeerHits != 1 {
		t.Fatalf("shard s1 stats %+v, want 0 executed / 1 cache hit / 1 peer hit", fs)
	}

	// The entry is now local: the fetched copy serves future misses with
	// no further peer traffic.
	if st := servers[1].farm.Cache().Stats(); st.Entries != 1 {
		t.Fatalf("fetched entry not installed locally: %+v", st)
	}
}

func TestClusterProxyFallbackWhenOwnerDown(t *testing.T) {
	// A ring that names a dead peer: submissions owned by the corpse
	// must still be served (locally) — the ring degrades, it does not
	// refuse.
	front := httptest.NewServer(nil)
	defer front.Close()
	peers := []cluster.Peer{
		{ID: "s0", URL: front.URL},
		{ID: "s1", URL: "http://127.0.0.1:1"},
	}
	s, err := New(Options{
		Workers: 2, Memoize: true,
		Cluster: cluster.Config{Version: 1, Self: "s0", Peers: peers},
	})
	if err != nil {
		t.Fatal(err)
	}
	front.Config.Handler = s.Handler()

	req := reqOwnedBy(t, s, "s1")
	var acc map[string]any
	if code := doJSON(t, "POST", front.URL+"/v1/runs", req, &acc); code != http.StatusAccepted {
		t.Fatalf("submit with dead owner: HTTP %d", code)
	}
	id, _ := acc["id"].(string)
	if !strings.HasPrefix(id, "r-s0-") {
		t.Fatalf("fallback job id %q not minted locally", id)
	}
	if st := waitState(t, front.URL, id); st.State != stateDone {
		t.Fatalf("fallback run ended %s: %s", st.State, st.Error)
	}
	if got := s.clu.proxyFallbacks.Load(); got != 1 {
		t.Fatalf("proxy fallbacks = %d, want 1", got)
	}
}

func TestClusterLedgerGossipAdjustsCapacity(t *testing.T) {
	const clusterCap = 2.2e6
	servers, fronts := startCluster(t, 2, func(i int, o *Options) {
		o.ClusterCapacityBps = clusterCap
	})

	// Admit a program on s0; its mean bandwidth is s0's committed sum.
	var neg map[string]any
	if code := doJSON(t, "POST", fronts[0].URL+"/v1/qos/negotiate",
		NegotiateRequest{Program: "sor", Client: "t"}, &neg); code != http.StatusOK {
		t.Fatalf("negotiate: HTTP %d (%v)", code, neg)
	}
	_, committed, _, _ := servers[0].broker.snapshot()
	if committed <= 0 {
		t.Fatal("nothing committed on s0")
	}

	// One gossip round on s1 folds s0's commitment into its capacity.
	servers[1].gossipOnce()
	_, _, _, cap1 := servers[1].broker.snapshot()
	if want := clusterCap - committed; cap1 != want {
		t.Fatalf("s1 capacity after gossip = %g, want %g", cap1, want)
	}
	if up := servers[1].clu.ledger.PeersUp(); up != 1 {
		t.Fatalf("peers up = %d, want 1", up)
	}

	// Kill s0: its commitment stays reserved (conservative), liveness
	// flips.
	fronts[0].Close()
	servers[1].gossipOnce()
	_, _, _, cap1 = servers[1].broker.snapshot()
	if want := clusterCap - committed; cap1 != want {
		t.Fatalf("s1 capacity after peer death = %g, want %g (retained)", cap1, want)
	}
	if up := servers[1].clu.ledger.PeersUp(); up != 0 {
		t.Fatalf("peers up after death = %d, want 0", up)
	}
}

func TestClusterRingAndLedgerEndpoints(t *testing.T) {
	servers, fronts := startCluster(t, 2, nil)

	var ring map[string]any
	if code := doJSON(t, "GET", fronts[0].URL+"/v1/cluster/ring", nil, &ring); code != http.StatusOK {
		t.Fatalf("ring: HTTP %d", code)
	}
	if ring["self"] != "s0" || ring["version"] != float64(1) {
		t.Fatalf("ring payload %v", ring)
	}

	// The ?key oracle answers the same owner on every shard.
	req := reqOwnedBy(t, servers[0], "s1")
	cfg, _ := req.config()
	key := farm.Key(cfg)
	for _, f := range fronts {
		var look map[string]any
		if code := doJSON(t, "GET", f.URL+"/v1/cluster/ring?key="+key, nil, &look); code != http.StatusOK {
			t.Fatalf("ring lookup: HTTP %d", code)
		}
		if look["owner"] != "s1" {
			t.Fatalf("owner via %s = %v, want s1", f.URL, look["owner"])
		}
	}

	var led ledgerJSON
	if code := doJSON(t, "GET", fronts[1].URL+"/v1/cluster/ledger", nil, &led); code != http.StatusOK {
		t.Fatalf("ledger: HTTP %d", code)
	}
	if led.ID != "s1" || led.RingVersion != 1 {
		t.Fatalf("ledger payload %+v", led)
	}
}

func TestCacheEntryEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, CacheDir: t.TempDir()})

	id := submit(t, ts.URL, cheapRun())
	st := waitState(t, ts.URL, id)
	if st.State != stateDone {
		t.Fatalf("run ended %s", st.State)
	}

	resp, err := http.Get(ts.URL + "/v1/cache/" + st.Key)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache entry: HTTP %d", resp.StatusCode)
	}
	if !bytes.HasPrefix(body, []byte("FXFARM01")) {
		t.Fatalf("cache entry body starts %q, want the run magic", body[:8])
	}

	for path, want := range map[string]int{
		"/v1/cache/" + strings.Repeat("0", 64): http.StatusNotFound,
		"/v1/cache/..%2fescape":                http.StatusBadRequest,
		"/v1/cache/NOTHEX":                     http.StatusBadRequest,
		"/v1/cache/" + st.Key + "?kind=bogus":  http.StatusBadRequest,
	} {
		if code := doJSON(t, "GET", ts.URL+path, nil, nil); code != want {
			t.Errorf("GET %s: HTTP %d, want %d", path, code, want)
		}
	}
}

func TestClusterMetricsSurface(t *testing.T) {
	_, fronts := startCluster(t, 2, func(i int, o *Options) {
		o.CacheDir = t.TempDir()
	})
	body := fetchMetrics(t, fronts[0].URL)
	for _, m := range []string{
		"fxnetd_cluster_enabled 1",
		"fxnetd_cluster_ring_version 1",
		"fxnetd_cluster_peers 2",
		"fxnetd_cache_entries ",
		"fxnetd_cache_bytes ",
		"fxnetd_farm_peer_hits_total ",
		"fxnetd_farm_memo_evicted_total ",
		"fxnetd_cluster_fetch_total{outcome=\"hit\"} ",
		"fxnetd_cache_quarantined_kind_total{kind=\"run\"} ",
	} {
		if !strings.Contains(body, m) {
			t.Errorf("metrics missing %q", m)
		}
	}
}
