package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// latencyBuckets are the histogram upper bounds in seconds, spanning the
// sub-millisecond cached-run fast path through multi-second simulations.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// histogram is a fixed-bucket latency histogram in the Prometheus
// cumulative-bucket convention.
type histogram struct {
	counts []uint64 // one per bucket, non-cumulative; rendered cumulative
	sum    float64
	count  uint64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(latencyBuckets))}
}

func (h *histogram) observe(v float64) {
	h.sum += v
	h.count++
	for i, ub := range latencyBuckets {
		if v <= ub {
			h.counts[i]++
			return
		}
	}
	// +Inf bucket is implicit in count.
}

// metrics aggregates the ops surface counters. All methods are safe for
// concurrent use.
type metrics struct {
	mu             sync.Mutex
	requests       map[[2]string]uint64 // {endpoint, code} → count
	latency        map[string]*histogram
	throttled      uint64
	breakerRejects uint64
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[[2]string]uint64),
		latency:  make(map[string]*histogram),
	}
}

func (m *metrics) record(endpoint, code string, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[[2]string{endpoint, code}]++
	h := m.latency[endpoint]
	if h == nil {
		h = newHistogram()
		m.latency[endpoint] = h
	}
	h.observe(seconds)
}

func (m *metrics) throttle() {
	m.mu.Lock()
	m.throttled++
	m.mu.Unlock()
}

func (m *metrics) breakerReject() {
	m.mu.Lock()
	m.breakerRejects++
	m.mu.Unlock()
}

// writeProm renders the HTTP-layer metrics in the Prometheus text
// exposition format. Series are emitted in sorted order so scrapes are
// diffable.
func (m *metrics) writeProm(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintln(w, "# HELP fxnetd_http_requests_total HTTP requests served, by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE fxnetd_http_requests_total counter")
	keys := make([][2]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		fmt.Fprintf(w, "fxnetd_http_requests_total{endpoint=%q,code=%q} %d\n", k[0], k[1], m.requests[k])
	}

	fmt.Fprintln(w, "# HELP fxnetd_http_throttled_total Requests rejected with 429 by the per-client concurrency limiter.")
	fmt.Fprintln(w, "# TYPE fxnetd_http_throttled_total counter")
	fmt.Fprintf(w, "fxnetd_http_throttled_total %d\n", m.throttled)

	fmt.Fprintln(w, "# HELP fxnetd_breaker_rejected_total Submissions refused because the execution circuit breaker was open.")
	fmt.Fprintln(w, "# TYPE fxnetd_breaker_rejected_total counter")
	fmt.Fprintf(w, "fxnetd_breaker_rejected_total %d\n", m.breakerRejects)

	fmt.Fprintln(w, "# HELP fxnetd_http_request_duration_seconds Request latency by endpoint.")
	fmt.Fprintln(w, "# TYPE fxnetd_http_request_duration_seconds histogram")
	eps := make([]string, 0, len(m.latency))
	for ep := range m.latency {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	for _, ep := range eps {
		h := m.latency[ep]
		var cum uint64
		for i, ub := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "fxnetd_http_request_duration_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", ep, ub, cum)
		}
		fmt.Fprintf(w, "fxnetd_http_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", ep, h.count)
		fmt.Fprintf(w, "fxnetd_http_request_duration_seconds_sum{endpoint=%q} %g\n", ep, h.sum)
		fmt.Fprintf(w, "fxnetd_http_request_duration_seconds_count{endpoint=%q} %d\n", ep, h.count)
	}
}
