package trace

import (
	"bytes"
	"testing"

	"fxnet/internal/sim"
)

func markedTrace() *Trace {
	tr := New()
	tr.Hosts = []string{"a", "b"}
	tr.Meta["program"] = "sor"
	tr.Packets = []Packet{
		{Time: sim.Time(1 * sim.Second), Size: 100, Src: 0, Dst: 1, Proto: 1},
		{Time: sim.Time(6 * sim.Second), Size: 200, Src: 1, Dst: 0, Proto: 1},
	}
	tr.AddMark(sim.Time(5*sim.Second), "5s:linkdown host1")
	tr.AddMark(sim.Time(7*sim.Second), "7s:linkup host1")
	return tr
}

func TestMarksBinaryRoundTrip(t *testing.T) {
	tr := markedTrace()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Marks) != 2 {
		t.Fatalf("marks after round trip = %v", got.Marks)
	}
	for i, m := range got.Marks {
		if m != tr.Marks[i] {
			t.Errorf("mark %d = %+v, want %+v", i, m, tr.Marks[i])
		}
	}
	// The encoding key is internal bookkeeping, not user metadata.
	if _, leaked := got.Meta["marks"]; leaked {
		t.Error("marks encoding key leaked into Meta")
	}
	if got.Meta["program"] != "sor" {
		t.Errorf("user Meta lost: %v", got.Meta)
	}
}

func TestMarksTextRoundTrip(t *testing.T) {
	tr := markedTrace()
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Marks) != 2 || got.Marks[0].Label != "5s:linkdown host1" {
		t.Fatalf("marks after text round trip = %v", got.Marks)
	}
}

func TestMarksBetween(t *testing.T) {
	tr := markedTrace()
	in := tr.MarksBetween(sim.Time(4*sim.Second), sim.Time(6*sim.Second))
	if len(in) != 1 || in[0].Label != "5s:linkdown host1" {
		t.Errorf("MarksBetween = %v", in)
	}
}

func TestWriteBinaryWithoutMarksUnchanged(t *testing.T) {
	plain := markedTrace()
	plain.Marks = nil
	var buf bytes.Buffer
	if err := plain.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Marks) != 0 {
		t.Errorf("phantom marks: %v", got.Marks)
	}
}
