package trace

import "fmt"

// Host addresses in a trace are 16-bit: wide enough for the
// thousand-host topologies the partitioned engine simulates, with the
// all-ones value reserved for broadcast.
const (
	// Broadcast is the in-memory (and wide on-disk) destination address
	// of a broadcast frame. The narrow v1 record encodes it as 0xFF.
	Broadcast uint16 = 0xFFFF
	// MaxHostAddr is the largest addressable host.
	MaxHostAddr = 0xFFFE
)

// Addr converts a host index to the trace's address width, rejecting
// values that would silently truncate: negatives and anything above
// MaxHostAddr (the broadcast value is not a host address). It is the
// single choke point for int→address narrowing; use it anywhere a host
// index of unproven range meets a Packet.
func Addr(v int) (uint16, error) {
	if v < 0 || v > MaxHostAddr {
		return 0, fmt.Errorf("trace: host address %d out of range [0, %d]", v, MaxHostAddr)
	}
	return uint16(v), nil
}

// MustAddr is Addr for callers whose range is already enforced upstream
// (topology validation caps hosts at MaxHostAddr); it panics on the
// invariant violation instead of returning an error.
func MustAddr(v int) uint16 {
	a, err := Addr(v)
	if err != nil {
		panic(err)
	}
	return a
}
