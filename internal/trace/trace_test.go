package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"fxnet/internal/ethernet"
	"fxnet/internal/sim"
)

func pkt(tMs int, size int, src, dst int, proto ethernet.Proto, flags uint8) Packet {
	return Packet{
		Time: sim.Time(sim.Duration(tMs) * sim.Millisecond), Size: uint16(size),
		Src: uint16(src), Dst: uint16(dst), Proto: proto, Flags: flags,
	}
}

func sampleTrace() *Trace {
	t := New()
	t.Hosts = []string{"alpha0", "alpha1", "alpha2"}
	t.Meta["program"] = "sor"
	t.Packets = []Packet{
		pkt(0, 1518, 0, 1, ethernet.ProtoTCP, ethernet.FlagData),
		pkt(1, 58, 1, 0, ethernet.ProtoTCP, ethernet.FlagAck),
		pkt(5, 90, 0, 2, ethernet.ProtoUDP, ethernet.FlagData),
		pkt(12, 600, 2, 1, ethernet.ProtoTCP, ethernet.FlagData),
		pkt(20, 58, 1, 2, ethernet.ProtoTCP, ethernet.FlagAck),
	}
	return t
}

func TestTraceSummaries(t *testing.T) {
	tr := sampleTrace()
	if tr.Len() != 5 {
		t.Errorf("Len = %d", tr.Len())
	}
	if got := tr.Duration(); got != 20*sim.Millisecond {
		t.Errorf("Duration = %v", got)
	}
	if got := tr.TotalBytes(); got != 1518+58+90+600+58 {
		t.Errorf("TotalBytes = %d", got)
	}
}

func TestIsAck(t *testing.T) {
	tr := sampleTrace()
	if tr.Packets[0].IsAck() {
		t.Error("data packet classified as ACK")
	}
	if !tr.Packets[1].IsAck() {
		t.Error("ACK not classified")
	}
	if tr.Packets[2].IsAck() {
		t.Error("UDP classified as ACK")
	}
}

func TestConnectionFilter(t *testing.T) {
	tr := sampleTrace()
	conn := tr.Connection(1, 0)
	if conn.Len() != 1 || !conn.Packets[0].IsAck() {
		t.Errorf("connection 1→0 = %+v", conn.Packets)
	}
	// Connection extraction keeps all protocols from src to dst.
	if got := tr.Connection(0, 2).Len(); got != 1 {
		t.Errorf("connection 0→2 = %d packets", got)
	}
}

func TestBetween(t *testing.T) {
	tr := sampleTrace()
	mid := tr.Between(1*sim.Millisecond, 12*sim.Millisecond)
	if mid.Len() != 2 { // packets at 1 ms and 5 ms (12 ms excluded)
		t.Errorf("Between = %d packets", mid.Len())
	}
	empty := New()
	if empty.Between(0, sim.Second).Len() != 0 {
		t.Error("Between on empty trace")
	}
}

func TestPairs(t *testing.T) {
	tr := sampleTrace()
	pairs := tr.Pairs()
	want := [][2]int{{0, 1}, {0, 2}, {1, 0}, {1, 2}, {2, 1}}
	if len(pairs) != len(want) {
		t.Fatalf("pairs = %v", pairs)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Errorf("pairs[%d] = %v, want %v", i, pairs[i], want[i])
		}
	}
}

func TestSizesAndInterarrivals(t *testing.T) {
	tr := sampleTrace()
	sizes := tr.Sizes()
	if len(sizes) != 5 || sizes[0] != 1518 {
		t.Errorf("sizes = %v", sizes)
	}
	ia := tr.Interarrivals()
	if len(ia) != 4 {
		t.Fatalf("interarrivals = %v", ia)
	}
	if ia[0] != 1 || ia[1] != 4 || ia[2] != 7 || ia[3] != 8 {
		t.Errorf("interarrivals = %v", ia)
	}
	if New().Interarrivals() != nil {
		t.Error("interarrivals of empty trace")
	}
}

func TestCaptureFromSegment(t *testing.T) {
	k := sim.New(1)
	seg := ethernet.NewSegment(k, 0)
	a := seg.Attach("a")
	b := seg.Attach("b")
	b.OnReceive(func(f *ethernet.Frame) {})
	col := Capture(seg)
	a.Send(&ethernet.Frame{Dst: 1, Proto: ethernet.ProtoTCP, NetLen: 100, Flags: ethernet.FlagData})
	k.Run()
	tr := col.Trace()
	if tr.Len() != 1 || tr.Packets[0].Size != 118 || tr.Packets[0].Src != 0 || tr.Packets[0].Dst != 1 {
		t.Errorf("trace = %+v", tr.Packets)
	}
}

func TestCapturePauseResume(t *testing.T) {
	k := sim.New(1)
	seg := ethernet.NewSegment(k, 0)
	a := seg.Attach("a")
	seg.Attach("b").OnReceive(func(f *ethernet.Frame) {})
	col := Capture(seg)
	col.Pause()
	a.Send(&ethernet.Frame{Dst: 1, NetLen: 100})
	k.Run()
	if col.Trace().Len() != 0 {
		t.Error("captured while paused")
	}
	col.Resume()
	a.Send(&ethernet.Frame{Dst: 1, NetLen: 100})
	k.Run()
	if col.Trace().Len() != 1 {
		t.Error("did not capture after resume")
	}
}

func TestCaptureBroadcastAddress(t *testing.T) {
	k := sim.New(1)
	seg := ethernet.NewSegment(k, 0)
	a := seg.Attach("a")
	seg.Attach("b")
	col := Capture(seg)
	a.Send(&ethernet.Frame{Dst: ethernet.Broadcast, NetLen: 50})
	k.Run()
	if got := col.Trace().Packets[0].Dst; got != Broadcast {
		t.Errorf("broadcast dst = %d, want %d", got, Broadcast)
	}
	if name := col.Trace().HostName(int(Broadcast)); name != "broadcast" {
		t.Errorf("HostName(Broadcast) = %q", name)
	}
}

func TestBinaryRoundtrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("len %d vs %d", got.Len(), tr.Len())
	}
	for i := range tr.Packets {
		if got.Packets[i] != tr.Packets[i] {
			t.Errorf("packet %d: %+v vs %+v", i, got.Packets[i], tr.Packets[i])
		}
	}
	if len(got.Hosts) != 3 || got.Hosts[2] != "alpha2" {
		t.Errorf("hosts = %v", got.Hosts)
	}
	if got.Meta["program"] != "sor" {
		t.Errorf("meta = %v", got.Meta)
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOTATRACE")); err == nil {
		t.Error("no error on bad magic")
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Error("no error on truncated input")
	}
}

func TestWriteText(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# program=sor") {
		t.Error("missing meta header")
	}
	if !strings.Contains(out, "alpha0.0 > alpha1.0: tcp 1518") {
		t.Errorf("missing data line in:\n%s", out)
	}
	if !strings.Contains(out, "#host 0 alpha0") {
		t.Error("missing host table")
	}
	if !strings.Contains(out, "ack") {
		t.Error("ACK flag not rendered")
	}
}

func TestQuickBinaryRoundtripPreservesPackets(t *testing.T) {
	f := func(times []uint32, sizes []uint16) bool {
		n := len(times)
		if len(sizes) < n {
			n = len(sizes)
		}
		tr := New()
		last := sim.Time(0)
		for i := 0; i < n; i++ {
			last += sim.Time(times[i])
			tr.Packets = append(tr.Packets, Packet{Time: last, Size: sizes[i], Src: uint16(i), Dst: uint16(i + 1)})
		}
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil || got.Len() != n {
			return false
		}
		for i := range tr.Packets {
			if got.Packets[i] != tr.Packets[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTextRoundtrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() {
		t.Fatalf("len %d vs %d", got.Len(), tr.Len())
	}
	for i := range tr.Packets {
		if got.Packets[i] != tr.Packets[i] {
			t.Errorf("packet %d: %+v vs %+v", i, got.Packets[i], tr.Packets[i])
		}
	}
	if len(got.Hosts) != 3 || got.Hosts[1] != "alpha1" {
		t.Errorf("hosts = %v", got.Hosts)
	}
	if got.Meta["program"] != "sor" {
		t.Errorf("meta = %v", got.Meta)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := map[string]string{
		"bad meta":  "# nokeyvalue\n",
		"bad host":  "#host x y\n",
		"too short": "0.5 a.1 > b.2: tcp\n",
		"bad proto": "0.5 a.1 > b.2: ipx 100 flags=0 src=0 dst=1\n",
	}
	for name, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

func TestReadTextEmpty(t *testing.T) {
	got, err := ReadText(strings.NewReader(""))
	if err != nil || got.Len() != 0 {
		t.Errorf("empty: %v, %d packets", err, got.Len())
	}
}
