package trace

import (
	"fxnet/internal/ethernet"
	"fxnet/internal/sim"
)

// Chunk is a fixed-capacity columnar (structure-of-arrays) block of
// captured packets: each field of the packet tuple lives in its own
// parallel slice, so a streaming analysis that only needs timestamps and
// sizes walks two dense arrays instead of striding through 18-byte
// records. Row i of every column belongs to the same packet.
type Chunk struct {
	Time    []sim.Time
	Size    []uint16
	Src     []uint16
	Dst     []uint16
	Proto   []ethernet.Proto
	Flags   []uint8
	SrcPort []uint16
	DstPort []uint16
}

// NewChunk returns an empty chunk with capacity for n packets in every
// column.
func NewChunk(n int) *Chunk {
	return &Chunk{
		Time:    make([]sim.Time, 0, n),
		Size:    make([]uint16, 0, n),
		Src:     make([]uint16, 0, n),
		Dst:     make([]uint16, 0, n),
		Proto:   make([]ethernet.Proto, 0, n),
		Flags:   make([]uint8, 0, n),
		SrcPort: make([]uint16, 0, n),
		DstPort: make([]uint16, 0, n),
	}
}

// Len reports the number of packets in the chunk.
func (c *Chunk) Len() int { return len(c.Time) }

// Packet reconstructs row i as an AoS Packet.
func (c *Chunk) Packet(i int) Packet {
	return Packet{
		Time:    c.Time[i],
		Size:    c.Size[i],
		Src:     c.Src[i],
		Dst:     c.Dst[i],
		Proto:   c.Proto[i],
		Flags:   c.Flags[i],
		SrcPort: c.SrcPort[i],
		DstPort: c.DstPort[i],
	}
}

// appendTo linearizes the chunk's rows onto dst in capture order.
func (c *Chunk) appendTo(dst []Packet) []Packet {
	for i := range c.Time {
		dst = append(dst, c.Packet(i))
	}
	return dst
}

// reset empties the chunk, keeping the column capacity for reuse.
func (c *Chunk) reset() {
	c.Time = c.Time[:0]
	c.Size = c.Size[:0]
	c.Src = c.Src[:0]
	c.Dst = c.Dst[:0]
	c.Proto = c.Proto[:0]
	c.Flags = c.Flags[:0]
	c.SrcPort = c.SrcPort[:0]
	c.DstPort = c.DstPort[:0]
}

// Sink consumes columnar chunks as they fill during capture. Fold is
// called in capture order with non-overlapping chunks; together the
// chunks of one capture session cover every recorded packet exactly
// once. When the collector is not retaining (SetRetain(false)), the
// chunk's backing arrays are reused for the next chunk, so the sink must
// finish reading before returning and must not hold references to the
// columns.
type Sink interface {
	Fold(*Chunk)
}
