package trace

import (
	"testing"

	"fxnet/internal/ethernet"
)

// captureOf renders a Packet back into the tap-callback form.
func captureOf(p Packet) ethernet.Capture {
	return ethernet.Capture{
		Time: p.Time, Size: int(p.Size), Src: int(p.Src), Dst: int(p.Dst),
		Proto: p.Proto, Flags: p.Flags, SrcPort: p.SrcPort, DstPort: p.DstPort,
	}
}

// recordingSink copies every folded row out of the chunk, so the test
// sees exactly what a streaming analysis would see even when the
// collector recycles the chunk's backing arrays.
type recordingSink struct {
	packets []Packet
	folds   int
}

func (s *recordingSink) Fold(ch *Chunk) {
	s.folds++
	s.packets = ch.appendTo(s.packets)
}

// drive pushes n synthetic packets through a collector's record path.
func drive(c *Collector, n int) {
	for i := 0; i < n; i++ {
		p := synthPacket(i)
		c.record(captureOf(p))
	}
}

// TestSinkSeesEveryPacketOnce: across chunk rotations and the Flush
// tail, the sink must observe the capture exactly — same packets, same
// order — in both retain modes.
func TestSinkSeesEveryPacketOnce(t *testing.T) {
	for _, retain := range []bool{true, false} {
		for _, n := range []int{0, 1, collectorChunk - 1, collectorChunk, collectorChunk + 1, 3*collectorChunk + 17} {
			c := NewCollector()
			c.SetRetain(retain)
			sink := &recordingSink{}
			c.AddSink(sink)
			drive(c, n)
			c.Flush()
			if len(sink.packets) != n {
				t.Fatalf("retain=%v n=%d: sink saw %d packets", retain, n, len(sink.packets))
			}
			for i, p := range sink.packets {
				if p != synthPacket(i) {
					t.Fatalf("retain=%v n=%d: sink packet %d mismatch: %+v", retain, n, i, p)
				}
			}
			tr := c.Trace()
			if retain {
				if len(tr.Packets) != n {
					t.Fatalf("retain n=%d: trace has %d packets", n, len(tr.Packets))
				}
				for i := range tr.Packets {
					if tr.Packets[i] != sink.packets[i] {
						t.Fatalf("retain n=%d: trace/sink disagree at %d", n, i)
					}
				}
			} else if len(tr.Packets) != 0 {
				t.Fatalf("streaming n=%d: trace retained %d packets", n, len(tr.Packets))
			}
		}
	}
}

// TestStreamingReusesOneChunk: a non-retaining collector must hold at
// most one chunk of packet memory regardless of capture length — the
// O(windows) guarantee of analysis-only runs.
func TestStreamingReusesOneChunk(t *testing.T) {
	c := NewCollector()
	c.SetRetain(false)
	sink := &countingSink{}
	c.AddSink(sink)
	drive(c, 5*collectorChunk+3)
	if len(c.chunks) != 0 {
		t.Fatalf("streaming collector retained %d chunks", len(c.chunks))
	}
	if got := cap(c.cur.Time); got != collectorChunk {
		t.Fatalf("current chunk capacity %d, want %d", got, collectorChunk)
	}
	c.Flush()
	if sink.n != 5*collectorChunk+3 {
		t.Fatalf("sink counted %d packets", sink.n)
	}
	// Flush is an idempotent barrier: a second call must not re-fold the
	// tail, and capture stays off.
	c.Flush()
	if sink.n != 5*collectorChunk+3 {
		t.Fatalf("double Flush re-folded: %d packets", sink.n)
	}
	drive(c, 10)
	if sink.n != 5*collectorChunk+3 {
		t.Fatalf("capture after Flush leaked %d packets", sink.n-(5*collectorChunk+3))
	}
}

type countingSink struct{ n int }

func (s *countingSink) Fold(ch *Chunk) { s.n += ch.Len() }

// TestChunkPacketRoundTrip: Packet(i) must reassemble exactly the tuple
// that record() decomposed into columns.
func TestChunkPacketRoundTrip(t *testing.T) {
	c := NewCollector()
	drive(c, 100)
	if c.cur.Len() != 100 {
		t.Fatalf("chunk has %d rows", c.cur.Len())
	}
	for i := 0; i < 100; i++ {
		if got, want := c.cur.Packet(i), synthPacket(i); got != want {
			t.Fatalf("row %d: got %+v want %+v", i, got, want)
		}
	}
}
