// Package trace is the reproduction's tcpdump: it captures every frame on
// a segment in promiscuous mode and stores the tuple the paper's traces
// contain — timestamp, size (Ethernet header + IP + transport + data +
// trailer), protocol, source and destination — plus ports and TCP flags
// for finer-grained filtering. It also provides the paper's notion of a
// connection (all traffic from one machine to another, any protocol) and
// text/binary codecs for traces.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strings"

	"fxnet/internal/ethernet"
	"fxnet/internal/sim"
)

// Packet is one captured frame. The layout is kept small: AIRSHED traces
// run to roughly a million packets. Addresses are 16-bit (Broadcast for
// all-stations destinations); the binary codec still emits the compact
// narrow record when every address fits in a byte.
type Packet struct {
	Time    sim.Time
	Size    uint16
	Src     uint16
	Dst     uint16
	Proto   ethernet.Proto
	Flags   uint8
	SrcPort uint16
	DstPort uint16
}

// IsAck reports whether the packet is a pure TCP acknowledgment.
func (p Packet) IsAck() bool {
	return p.Proto == ethernet.ProtoTCP && p.Flags&ethernet.FlagAck != 0 && p.Flags&ethernet.FlagData == 0
}

// Mark annotates an instant in the trace — fault injections, phase
// boundaries — so analyses can split a capture into pre/during/post
// windows around an event.
type Mark struct {
	Time  sim.Time
	Label string
}

// Trace is an ordered sequence of captured packets with metadata.
type Trace struct {
	Packets []Packet
	// Hosts maps addresses to names for presentation.
	Hosts []string
	// Meta carries free-form experiment parameters (program, P, N, seed).
	Meta map[string]string
	// Marks are time annotations (fault windows). They are persisted
	// through the codecs via the "marks" meta key, keeping the binary
	// format unchanged.
	Marks []Mark
}

// AddMark records an annotation at virtual time at.
func (t *Trace) AddMark(at sim.Time, label string) {
	t.Marks = append(t.Marks, Mark{Time: at, Label: label})
}

// MarksBetween returns the marks with lo ≤ time < hi.
func (t *Trace) MarksBetween(lo, hi sim.Time) []Mark {
	var out []Mark
	for _, m := range t.Marks {
		if m.Time >= lo && m.Time < hi {
			out = append(out, m)
		}
	}
	return out
}

// encodeMarks renders marks as the "marks" meta value:
// "<ns>@<label>;<ns>@<label>". Labels must not contain ';'.
func encodeMarks(marks []Mark) string {
	parts := make([]string, len(marks))
	for i, m := range marks {
		parts[i] = fmt.Sprintf("%d@%s", int64(m.Time), m.Label)
	}
	return strings.Join(parts, ";")
}

// decodeMarks parses the "marks" meta value.
func decodeMarks(s string) ([]Mark, error) {
	if s == "" {
		return nil, nil
	}
	var out []Mark
	for _, part := range strings.Split(s, ";") {
		tsStr, label, ok := strings.Cut(part, "@")
		if !ok {
			return nil, fmt.Errorf("trace: bad mark entry %q", part)
		}
		var ns int64
		if _, err := fmt.Sscanf(tsStr, "%d", &ns); err != nil {
			return nil, fmt.Errorf("trace: bad mark time %q: %w", tsStr, err)
		}
		out = append(out, Mark{Time: sim.Time(ns), Label: label})
	}
	return out, nil
}

// metaForWrite returns the metadata to serialize: Meta plus the encoded
// marks, without mutating the live trace.
func (t *Trace) metaForWrite() map[string]string {
	if len(t.Marks) == 0 {
		return t.Meta
	}
	m := make(map[string]string, len(t.Meta)+1)
	for k, v := range t.Meta {
		m[k] = v
	}
	m["marks"] = encodeMarks(t.Marks)
	return m
}

// adoptMarksMeta moves a decoded "marks" meta entry into t.Marks.
func (t *Trace) adoptMarksMeta() error {
	enc, ok := t.Meta["marks"]
	if !ok {
		return nil
	}
	marks, err := decodeMarks(enc)
	if err != nil {
		return err
	}
	t.Marks = marks
	delete(t.Meta, "marks")
	return nil
}

// New returns an empty trace.
func New() *Trace {
	return &Trace{Meta: make(map[string]string)}
}

// collectorChunk is the capture granularity: packets are recorded into
// fixed-size columnar chunks so a million-packet capture never memmoves
// its whole history through append's doubling, and the tap's appends are
// in-place (allocation only once per chunk — or never, in streaming
// mode, where one chunk's backing arrays are recycled forever).
const collectorChunk = 16384

// Collector is a promiscuous capture session on a segment. Packets are
// accumulated in fixed-size columnar chunks; full chunks are folded into
// any attached Sinks and, when the collector retains (the default),
// linearized on demand by Trace. With SetRetain(false) the collector is
// a pure streaming tap: every packet flows through the sinks but the
// capture holds at most one chunk of memory, whatever the run length.
type Collector struct {
	tr      *Trace
	chunks  []*Chunk // filled chunks, in capture order (retain mode)
	cur     *Chunk   // chunk currently being filled
	sinks   []Sink
	retain  bool // keep chunks for Trace(); off = streaming only
	dirty   bool // packets captured since the last materialization
	enabled bool
	flushed bool
}

// NewCollector returns a detached collector (retaining, enabled); tests
// and offline replays drive record directly.
func NewCollector() *Collector {
	return &Collector{tr: New(), retain: true, enabled: true}
}

// Capture attaches a collector to a medium (shared segment or switch
// SPAN). Capture starts enabled; use Pause and Resume to bracket the
// measured region (the paper starts tcpdump before launching each
// program).
func Capture(seg ethernet.TrafficSource) *Collector {
	c := NewCollector()
	seg.Tap(c.record)
	return c
}

// AddSink attaches a streaming consumer. Sinks must be attached before
// packets flow; a sink added mid-capture misses the chunks already
// rotated out.
func (c *Collector) AddSink(s Sink) { c.sinks = append(c.sinks, s) }

// SetRetain controls whether the collector keeps the captured packets
// for Trace. With retain off the collector recycles a single chunk and
// Trace returns only the session metadata (hosts, meta, marks) — the
// streaming-analysis mode, where the sinks are the only consumers. Must
// be set before packets flow.
func (c *Collector) SetRetain(on bool) { c.retain = on }

// Retained reports whether the collector keeps packets for Trace.
func (c *Collector) Retained() bool { return c.retain }

// record is the tap callback: a full-chunk rotation branch, then one
// bounds-checked append per column.
func (c *Collector) record(cp ethernet.Capture) {
	if !c.enabled {
		return
	}
	cur := c.cur
	if cur == nil || len(cur.Time) == cap(cur.Time) {
		cur = c.rotate()
	}
	dst := Broadcast
	if cp.Dst != ethernet.Broadcast {
		dst = MustAddr(cp.Dst)
	}
	cur.Time = append(cur.Time, cp.Time)
	cur.Size = append(cur.Size, uint16(cp.Size))
	cur.Src = append(cur.Src, MustAddr(cp.Src))
	cur.Dst = append(cur.Dst, dst)
	cur.Proto = append(cur.Proto, cp.Proto)
	cur.Flags = append(cur.Flags, cp.Flags)
	cur.SrcPort = append(cur.SrcPort, cp.SrcPort)
	cur.DstPort = append(cur.DstPort, cp.DstPort)
	c.dirty = true
}

// rotate folds the full current chunk into the sinks and produces an
// empty chunk to fill: a fresh allocation when retaining (the old chunk
// joins the history), the same backing arrays otherwise.
func (c *Collector) rotate() *Chunk {
	if c.cur != nil {
		c.emit(c.cur)
		if c.retain {
			c.chunks = append(c.chunks, c.cur)
			c.cur = nil
		}
	}
	if c.cur == nil {
		c.cur = NewChunk(collectorChunk)
	} else {
		c.cur.reset()
	}
	return c.cur
}

// emit folds one chunk into every sink.
func (c *Collector) emit(ch *Chunk) {
	for _, s := range c.sinks {
		s.Fold(ch)
	}
}

// Flush folds the partially filled current chunk into the sinks and
// stops capture: it is the end-of-capture barrier for streaming
// analyses. Each chunk reaches the sinks exactly once (full chunks at
// rotation, the tail here), so Flush must be called once, after the
// simulation has stopped. Trace remains callable afterwards.
func (c *Collector) Flush() {
	if c.flushed {
		return
	}
	c.flushed = true
	c.enabled = false
	if c.cur != nil && c.cur.Len() > 0 {
		c.emit(c.cur)
	}
}

// Pause stops recording.
func (c *Collector) Pause() { c.enabled = false }

// Resume restarts recording.
func (c *Collector) Resume() { c.enabled = true }

// Trace returns the collected trace, linearizing any chunks captured
// since the last call into Packets with a single exact-size allocation
// (live; callers should stop the simulation before analyzing). A
// non-retaining collector returns the session metadata only — hosts,
// experiment parameters, marks — with no packets.
func (c *Collector) Trace() *Trace {
	if c.retain && c.dirty {
		total := 0
		for _, ch := range c.chunks {
			total += ch.Len()
		}
		if c.cur != nil {
			total += c.cur.Len()
		}
		if cap(c.tr.Packets) < total {
			c.tr.Packets = make([]Packet, 0, total)
		}
		c.tr.Packets = c.tr.Packets[:0]
		for _, ch := range c.chunks {
			c.tr.Packets = ch.appendTo(c.tr.Packets)
		}
		if c.cur != nil {
			c.tr.Packets = c.cur.appendTo(c.tr.Packets)
		}
		c.dirty = false
	}
	return c.tr
}

// Len reports the number of captured packets.
func (t *Trace) Len() int { return len(t.Packets) }

// Duration is the time between the first and last packet.
func (t *Trace) Duration() sim.Duration {
	if len(t.Packets) < 2 {
		return 0
	}
	return t.Packets[len(t.Packets)-1].Time.Sub(t.Packets[0].Time)
}

// TotalBytes sums captured sizes.
func (t *Trace) TotalBytes() int64 {
	var n int64
	for _, p := range t.Packets {
		n += int64(p.Size)
	}
	return n
}

// Filter returns a new trace containing the packets for which keep
// returns true. Metadata is shared.
func (t *Trace) Filter(keep func(Packet) bool) *Trace {
	out := &Trace{Hosts: t.Hosts, Meta: t.Meta, Marks: t.Marks}
	for _, p := range t.Packets {
		if keep(p) {
			out.Packets = append(out.Packets, p)
		}
	}
	return out
}

// Connection extracts the paper's per-connection trace: every packet sent
// from host src to host dst — message-passing TCP, daemon UDP, and the
// ACKs of the symmetric channel alike.
func (t *Trace) Connection(src, dst int) *Trace {
	return t.Filter(func(p Packet) bool {
		return int(p.Src) == src && int(p.Dst) == dst
	})
}

// Between returns packets with first.Time+lo ≤ time < first.Time+hi,
// relative to the trace start — the "chopped" windows the paper plots.
func (t *Trace) Between(lo, hi sim.Duration) *Trace {
	if len(t.Packets) == 0 {
		return t.Filter(func(Packet) bool { return false })
	}
	t0 := t.Packets[0].Time
	return t.Filter(func(p Packet) bool {
		rel := p.Time.Sub(t0)
		return rel >= lo && rel < hi
	})
}

// Pairs returns the distinct (src, dst) pairs present, sorted.
func (t *Trace) Pairs() [][2]int {
	seen := make(map[[2]int]bool)
	for _, p := range t.Packets {
		seen[[2]int{int(p.Src), int(p.Dst)}] = true
	}
	out := make([][2]int, 0, len(seen))
	for k := range seen {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Sizes returns the packet sizes as float64s, for stats.
func (t *Trace) Sizes() []float64 {
	out := make([]float64, len(t.Packets))
	for i, p := range t.Packets {
		out[i] = float64(p.Size)
	}
	return out
}

// Interarrivals returns successive packet spacing in milliseconds — the
// quantity of the paper's figure 4/9 tables.
func (t *Trace) Interarrivals() []float64 {
	if len(t.Packets) < 2 {
		return nil
	}
	out := make([]float64, len(t.Packets)-1)
	for i := 1; i < len(t.Packets); i++ {
		out[i-1] = t.Packets[i].Time.Sub(t.Packets[i-1].Time).Milliseconds()
	}
	return out
}

// HostName renders a host address using the trace's host table.
func (t *Trace) HostName(addr int) string {
	if addr == int(Broadcast) {
		return "broadcast"
	}
	if addr >= 0 && addr < len(t.Hosts) {
		return t.Hosts[addr]
	}
	return fmt.Sprintf("host%d", addr)
}

// The binary trace format is versioned by its magic: v1 records carry
// 8-bit addresses (0xFF = broadcast), v2 records 16-bit addresses
// (0xFFFF = broadcast). WriteBinary emits the narrow v1 record whenever
// every address fits, so traces of small topologies — including every
// pre-existing golden trace — are byte-identical to what the v1-only
// codec produced; the wide record appears only when a trace actually
// contains an address above 0xFE. Readers accept both.
const (
	binaryMagic     = "FXTRACE1"
	binaryMagicWide = "FXTRACE2"
)

// narrowAddrs reports whether every packet address fits the v1 record:
// sources up to 0xFE, destinations up to 0xFE or broadcast (encoded as
// 0xFF).
func (t *Trace) narrowAddrs() bool {
	for i := range t.Packets {
		p := &t.Packets[i]
		if p.Src > 0xFE || (p.Dst > 0xFE && p.Dst != Broadcast) {
			return false
		}
	}
	return true
}

// WriteBinary serializes the trace in a compact little-endian format,
// choosing the narrowest record width that represents every address.
func (t *Trace) WriteBinary(w io.Writer) error {
	narrow := t.narrowAddrs()
	bw := bufio.NewWriter(w)
	magic := binaryMagicWide
	if narrow {
		magic = binaryMagic
	}
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	writeStr := func(s string) error {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(s))); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(t.Hosts))); err != nil {
		return err
	}
	for _, h := range t.Hosts {
		if err := writeStr(h); err != nil {
			return err
		}
	}
	meta := t.metaForWrite()
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(meta))); err != nil {
		return err
	}
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := writeStr(k); err != nil {
			return err
		}
		if err := writeStr(meta[k]); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(t.Packets))); err != nil {
		return err
	}
	// Packets are encoded with direct byte packing rather than per-field
	// binary.Write: the record layout is fixed little-endian (18 bytes
	// narrow, 20 wide) and reflection per field dominates serialization
	// of million-packet traces.
	if narrow {
		var rec [packetRecBytes]byte
		for i := range t.Packets {
			p := &t.Packets[i]
			binary.LittleEndian.PutUint64(rec[0:], uint64(int64(p.Time)))
			binary.LittleEndian.PutUint16(rec[8:], p.Size)
			rec[10] = uint8(p.Src)
			rec[11] = uint8(p.Dst) // Broadcast = 0xFFFF truncates to the v1 broadcast 0xFF
			rec[12] = uint8(p.Proto)
			rec[13] = p.Flags
			binary.LittleEndian.PutUint16(rec[14:], p.SrcPort)
			binary.LittleEndian.PutUint16(rec[16:], p.DstPort)
			if _, err := bw.Write(rec[:]); err != nil {
				return err
			}
		}
	} else {
		var rec [packetRecBytesWide]byte
		for i := range t.Packets {
			p := &t.Packets[i]
			binary.LittleEndian.PutUint64(rec[0:], uint64(int64(p.Time)))
			binary.LittleEndian.PutUint16(rec[8:], p.Size)
			binary.LittleEndian.PutUint16(rec[10:], p.Src)
			binary.LittleEndian.PutUint16(rec[12:], p.Dst)
			rec[14] = uint8(p.Proto)
			rec[15] = p.Flags
			binary.LittleEndian.PutUint16(rec[16:], p.SrcPort)
			binary.LittleEndian.PutUint16(rec[18:], p.DstPort)
			if _, err := bw.Write(rec[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// packetRecBytes is the narrow (v1) on-disk record size: int64 time,
// uint16 size, four uint8s (src, dst, proto, flags), two uint16 ports.
// packetRecBytesWide is the v2 record, with uint16 src and dst.
const (
	packetRecBytes     = 18
	packetRecBytesWide = 20
)

// ReadBinary parses a trace written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	t := New()
	t.Hosts = rd.Hosts()
	for k, v := range rd.Meta() {
		t.Meta[k] = v
	}
	t.Marks = rd.Marks()
	// Preallocate from the declared count, but bounded: the count is
	// untrusted input and must not be able to demand an arbitrary
	// allocation before a single record has been read.
	t.Packets = make([]Packet, 0, min(rd.Len(), 1<<20))
	var p Packet
	for {
		if err := rd.Next(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		t.Packets = append(t.Packets, p)
	}
	return t, nil
}

// Reader streams packets out of the binary trace format without
// materializing the whole trace: the header (host table, metadata, marks,
// record count) is parsed eagerly by NewReader, and each Next call
// decodes exactly one fixed-size record. It is the service's chunked
// result streamer — a million-packet capture is relayed record by record
// in constant memory.
type Reader struct {
	br    *bufio.Reader
	hosts []string
	meta  map[string]string
	marks []Mark
	total uint64
	read  uint64
	wide  bool // v2 stream: 16-bit addresses
}

// NewReader parses a binary-trace header from r and returns a streaming
// reader positioned at the first packet record.
func NewReader(r io.Reader) (*Reader, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	var wide bool
	switch string(magic) {
	case binaryMagic:
	case binaryMagicWide:
		wide = true
	default:
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	readStr := func() (string, error) {
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("trace: string length %d too large", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	rd := &Reader{br: br, meta: make(map[string]string), wide: wide}
	var nHosts uint32
	if err := binary.Read(br, binary.LittleEndian, &nHosts); err != nil {
		return nil, err
	}
	if nHosts > 1<<16 {
		return nil, fmt.Errorf("trace: host count %d too large", nHosts)
	}
	for i := uint32(0); i < nHosts; i++ {
		h, err := readStr()
		if err != nil {
			return nil, err
		}
		rd.hosts = append(rd.hosts, h)
	}
	var nMeta uint32
	if err := binary.Read(br, binary.LittleEndian, &nMeta); err != nil {
		return nil, err
	}
	if nMeta > 1<<16 {
		return nil, fmt.Errorf("trace: meta count %d too large", nMeta)
	}
	for i := uint32(0); i < nMeta; i++ {
		k, err := readStr()
		if err != nil {
			return nil, err
		}
		v, err := readStr()
		if err != nil {
			return nil, err
		}
		rd.meta[k] = v
	}
	if enc, ok := rd.meta["marks"]; ok {
		marks, err := decodeMarks(enc)
		if err != nil {
			return nil, err
		}
		rd.marks = marks
		delete(rd.meta, "marks")
	}
	if err := binary.Read(br, binary.LittleEndian, &rd.total); err != nil {
		return nil, err
	}
	return rd, nil
}

// Hosts returns the trace's host table.
func (r *Reader) Hosts() []string { return r.hosts }

// Meta returns the trace's metadata (marks already extracted).
func (r *Reader) Meta() map[string]string { return r.meta }

// Marks returns the trace's time annotations.
func (r *Reader) Marks() []Mark { return r.marks }

// Len reports the total packet count the header declares.
func (r *Reader) Len() int { return int(r.total) }

// Next decodes one packet record into p. It returns io.EOF after the last
// declared record, and io.ErrUnexpectedEOF if the stream ends early.
func (r *Reader) Next(p *Packet) error {
	if r.read >= r.total {
		return io.EOF
	}
	var rec [packetRecBytesWide]byte
	n := packetRecBytes
	if r.wide {
		n = packetRecBytesWide
	}
	if _, err := io.ReadFull(r.br, rec[:n]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	r.read++
	if r.wide {
		*p = Packet{
			Time:    sim.Time(int64(binary.LittleEndian.Uint64(rec[0:]))),
			Size:    binary.LittleEndian.Uint16(rec[8:]),
			Src:     binary.LittleEndian.Uint16(rec[10:]),
			Dst:     binary.LittleEndian.Uint16(rec[12:]),
			Proto:   ethernet.Proto(rec[14]),
			Flags:   rec[15],
			SrcPort: binary.LittleEndian.Uint16(rec[16:]),
			DstPort: binary.LittleEndian.Uint16(rec[18:]),
		}
		return nil
	}
	dst := uint16(rec[11])
	if dst == 0xFF { // the v1 broadcast encoding
		dst = Broadcast
	}
	*p = Packet{
		Time:    sim.Time(int64(binary.LittleEndian.Uint64(rec[0:]))),
		Size:    binary.LittleEndian.Uint16(rec[8:]),
		Src:     uint16(rec[10]),
		Dst:     dst,
		Proto:   ethernet.Proto(rec[12]),
		Flags:   rec[13],
		SrcPort: binary.LittleEndian.Uint16(rec[14:]),
		DstPort: binary.LittleEndian.Uint16(rec[16:]),
	}
	return nil
}

// WriteText emits a human-readable tcpdump-style listing that ReadText
// can parse back losslessly: metadata and host-table comment lines, then
// one line per packet with nanosecond timestamps and the raw flag bits.
func (t *Trace) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	meta := t.metaForWrite()
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(bw, "# %s=%s\n", k, meta[k]); err != nil {
			return err
		}
	}
	for i, h := range t.Hosts {
		if _, err := fmt.Fprintf(bw, "#host %d %s\n", i, h); err != nil {
			return err
		}
	}
	for _, p := range t.Packets {
		flag := ""
		if p.IsAck() {
			flag = " ack"
		}
		if _, err := fmt.Fprintf(bw, "%.9f %s.%d > %s.%d: %s %d flags=%d src=%d dst=%d%s\n",
			p.Time.Seconds(), t.HostName(int(p.Src)), p.SrcPort,
			t.HostName(int(p.Dst)), p.DstPort, p.Proto, p.Size,
			p.Flags, p.Src, p.Dst, flag); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses a listing written by WriteText.
func ReadText(r io.Reader) (*Trace, error) {
	t := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "#host "); ok {
			var idx int
			var name string
			if _, err := fmt.Sscanf(rest, "%d %s", &idx, &name); err != nil {
				return nil, fmt.Errorf("trace: line %d: bad host entry: %w", lineNo, err)
			}
			for len(t.Hosts) <= idx {
				t.Hosts = append(t.Hosts, "")
			}
			t.Hosts[idx] = name
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# "); ok {
			k, v, found := strings.Cut(rest, "=")
			if !found {
				return nil, fmt.Errorf("trace: line %d: bad meta entry %q", lineNo, rest)
			}
			t.Meta[k] = v
			continue
		}
		var (
			secs                   float64
			srcName, dstName, prot string
			size, flags, src, dst  int
		)
		fields := strings.Fields(line)
		if len(fields) < 9 {
			return nil, fmt.Errorf("trace: line %d: too few fields", lineNo)
		}
		if _, err := fmt.Sscanf(strings.Join(fields[:9], " "),
			"%f %s > %s %s %d flags=%d src=%d dst=%d",
			&secs, &srcName, &dstName, &prot, &size, &flags, &src, &dst); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		var srcPort, dstPort int
		if _, err := fmt.Sscanf(portOf(srcName), "%d", &srcPort); err != nil {
			return nil, fmt.Errorf("trace: line %d: bad source port: %w", lineNo, err)
		}
		if _, err := fmt.Sscanf(portOf(strings.TrimSuffix(dstName, ":")), "%d", &dstPort); err != nil {
			return nil, fmt.Errorf("trace: line %d: bad destination port: %w", lineNo, err)
		}
		srcAddr, err := Addr(src)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
		}
		var dstAddr uint16
		switch {
		case dst == int(Broadcast),
			// Listings written before addresses widened to 16 bits
			// rendered broadcast as the narrow escape value 255.
			dst == 0xFF && strings.HasPrefix(dstName, "broadcast."):
			dstAddr = Broadcast
		default:
			if dstAddr, err = Addr(dst); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
		}
		var proto ethernet.Proto
		switch prot {
		case "tcp":
			proto = ethernet.ProtoTCP
		case "udp":
			proto = ethernet.ProtoUDP
		case "other":
			proto = ethernet.ProtoOther
		default:
			return nil, fmt.Errorf("trace: line %d: unknown protocol %q", lineNo, prot)
		}
		t.Packets = append(t.Packets, Packet{
			Time: sim.TimeOf(secs), Size: uint16(size),
			Src: srcAddr, Dst: dstAddr, Proto: proto, Flags: uint8(flags),
			SrcPort: uint16(srcPort), DstPort: uint16(dstPort),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := t.adoptMarksMeta(); err != nil {
		return nil, err
	}
	return t, nil
}

// portOf extracts the trailing .port of a host.port token.
func portOf(tok string) string {
	if i := strings.LastIndexByte(tok, '.'); i >= 0 {
		return tok[i+1:]
	}
	return tok
}
