package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"sort"
	"testing"

	"fxnet/internal/ethernet"
	"fxnet/internal/sim"
)

// synthPacket builds a deterministic pseudo-random packet from an index,
// exercising every field of the record layout.
func synthPacket(i int) Packet {
	return Packet{
		Time:    sim.Time(int64(i)*7919 + 13),
		Size:    uint16(64 + i%1455),
		Src:     uint16(i % 9),
		Dst:     uint16((i + 3) % 9),
		Proto:   ethernet.Proto(i % 3),
		Flags:   uint8(i % 4),
		SrcPort: uint16(1024 + i%5000),
		DstPort: uint16(2048 + i%5000),
	}
}

// captureThroughCollector drives n packets through the collector's
// chunked record path, so the resulting trace has crossed the columnar
// chunk boundary the same way a live capture does.
func captureThroughCollector(n int) *Trace {
	c := NewCollector()
	for i := 0; i < n; i++ {
		p := synthPacket(i)
		c.record(ethernet.Capture{
			Time: p.Time, Size: int(p.Size), Src: int(p.Src), Dst: int(p.Dst),
			Proto: p.Proto, Flags: p.Flags, SrcPort: p.SrcPort, DstPort: p.DstPort,
		})
	}
	t := c.Trace()
	t.Hosts = []string{"alpha0", "alpha1"}
	t.Meta["program"] = "synthetic"
	t.AddMark(sim.Time(5), "mark-a")
	return t
}

// fragmentedReader returns data in fixed odd-sized fragments, so packet
// records straddle every read boundary.
type fragmentedReader struct {
	data []byte
	frag int
}

func (r *fragmentedReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, io.EOF
	}
	n := min(r.frag, min(len(p), len(r.data)))
	copy(p, r.data[:n])
	r.data = r.data[n:]
	return n, nil
}

// TestReaderRoundTripChunkBoundaries round-trips traces whose lengths
// bracket the collector's chunk size through WriteBinary and the
// streaming Reader, delivering the bytes in 7-byte fragments so records
// straddle both the columnar chunk boundary and every read boundary.
func TestReaderRoundTripChunkBoundaries(t *testing.T) {
	for _, n := range []int{0, 1, collectorChunk - 1, collectorChunk, collectorChunk + 1, 2*collectorChunk + 3} {
		tr := captureThroughCollector(n)
		if len(tr.Packets) != n {
			t.Fatalf("n=%d: collector produced %d packets", n, len(tr.Packets))
		}
		var buf bytes.Buffer
		if err := tr.WriteBinary(&buf); err != nil {
			t.Fatalf("n=%d: write: %v", n, err)
		}
		rd, err := NewReader(&fragmentedReader{data: buf.Bytes(), frag: 7})
		if err != nil {
			t.Fatalf("n=%d: NewReader: %v", n, err)
		}
		if rd.Len() != n {
			t.Fatalf("n=%d: reader declares %d packets", n, rd.Len())
		}
		if len(rd.Hosts()) != 2 || rd.Meta()["program"] != "synthetic" {
			t.Fatalf("n=%d: header mangled: hosts=%v meta=%v", n, rd.Hosts(), rd.Meta())
		}
		if len(rd.Marks()) != 1 || rd.Marks()[0].Label != "mark-a" {
			t.Fatalf("n=%d: marks mangled: %v", n, rd.Marks())
		}
		var p Packet
		for i := 0; i < n; i++ {
			if err := rd.Next(&p); err != nil {
				t.Fatalf("n=%d: Next(%d): %v", n, i, err)
			}
			if p != tr.Packets[i] {
				t.Fatalf("n=%d: packet %d mismatch: got %+v want %+v", n, i, p, tr.Packets[i])
			}
		}
		if err := rd.Next(&p); err != io.EOF {
			t.Fatalf("n=%d: Next past end: %v, want io.EOF", n, err)
		}
	}
}

// writeV1 encodes a trace exactly as the pre-widening codec did: the
// FXTRACE1 magic and 18-byte records with one-byte addresses, broadcast
// as 0xFF. It is the reference against which the current writer's
// narrow mode must stay byte-identical, so every golden digest pinned
// before addresses widened remains valid.
func writeV1(t testing.TB, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString("FXTRACE1")
	writeStr := func(s string) {
		binary.Write(&buf, binary.LittleEndian, uint32(len(s)))
		buf.WriteString(s)
	}
	binary.Write(&buf, binary.LittleEndian, uint32(len(tr.Hosts)))
	for _, h := range tr.Hosts {
		writeStr(h)
	}
	meta := tr.metaForWrite()
	binary.Write(&buf, binary.LittleEndian, uint32(len(meta)))
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		writeStr(k)
		writeStr(meta[k])
	}
	binary.Write(&buf, binary.LittleEndian, uint64(len(tr.Packets)))
	var rec [18]byte
	for i := range tr.Packets {
		p := &tr.Packets[i]
		binary.LittleEndian.PutUint64(rec[0:], uint64(int64(p.Time)))
		binary.LittleEndian.PutUint16(rec[8:], p.Size)
		rec[10] = uint8(p.Src)
		rec[11] = uint8(p.Dst) // Broadcast truncates to the v1 0xFF
		rec[12] = uint8(p.Proto)
		rec[13] = p.Flags
		binary.LittleEndian.PutUint16(rec[14:], p.SrcPort)
		binary.LittleEndian.PutUint16(rec[16:], p.DstPort)
		buf.Write(rec[:])
	}
	return buf.Bytes()
}

// TestNarrowEncodeMatchesV1ByteForByte: a trace whose addresses all fit
// a byte — every trace the repo produced before addresses widened —
// must encode to the exact bytes the old codec wrote. This is the
// golden-digest compatibility contract of the versioned codec.
func TestNarrowEncodeMatchesV1ByteForByte(t *testing.T) {
	tr := captureThroughCollector(2*collectorChunk + 7)
	tr.Packets = append(tr.Packets, Packet{Time: sim.Time(1 << 40), Size: 60, Src: 3, Dst: Broadcast})
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), writeV1(t, tr)) {
		t.Fatal("narrow encoding diverged from the v1 byte stream")
	}
}

// TestV1StreamDecodes: byte streams written by the old codec decode
// through the versioned reader, with the 0xFF destination surfacing as
// the widened Broadcast address.
func TestV1StreamDecodes(t *testing.T) {
	tr := captureThroughCollector(12)
	tr.Packets = append(tr.Packets, Packet{Time: sim.Time(1 << 40), Size: 60, Src: 3, Dst: Broadcast})
	got, err := ReadBinary(bytes.NewReader(writeV1(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Packets) != len(tr.Packets) {
		t.Fatalf("decoded %d packets, want %d", len(got.Packets), len(tr.Packets))
	}
	for i := range got.Packets {
		if got.Packets[i] != tr.Packets[i] {
			t.Fatalf("packet %d: got %+v want %+v", i, got.Packets[i], tr.Packets[i])
		}
	}
	if got.Packets[len(got.Packets)-1].Dst != Broadcast {
		t.Fatal("v1 broadcast byte did not widen to Broadcast")
	}
}

// TestWideAddressRoundTrip: a trace with addresses beyond one byte must
// switch to the wide record and round-trip exactly, through both the
// streaming reader and the materializing decoder, including a broadcast
// destination and fragmented reads.
func TestWideAddressRoundTrip(t *testing.T) {
	tr := New()
	tr.Hosts = []string{"h0"}
	tr.Meta["program"] = "wide"
	for i := 0; i < 3*collectorChunk/2; i++ {
		p := synthPacket(i)
		p.Src = uint16(i % 1024)
		p.Dst = uint16((i + 511) % 1024)
		if i%97 == 0 {
			p.Dst = Broadcast
		}
		tr.Packets = append(tr.Packets, p)
	}
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte(binaryMagicWide)) {
		t.Fatalf("wide-address trace wrote magic %q", buf.Bytes()[:8])
	}
	rd, err := NewReader(&fragmentedReader{data: buf.Bytes(), frag: 7})
	if err != nil {
		t.Fatal(err)
	}
	var p Packet
	for i := range tr.Packets {
		if err := rd.Next(&p); err != nil {
			t.Fatalf("Next(%d): %v", i, err)
		}
		if p != tr.Packets[i] {
			t.Fatalf("packet %d: got %+v want %+v", i, p, tr.Packets[i])
		}
	}
	if err := rd.Next(&p); err != io.EOF {
		t.Fatalf("Next past end: %v", err)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Packets) != len(tr.Packets) {
		t.Fatalf("ReadBinary: %d packets, want %d", len(got.Packets), len(tr.Packets))
	}
	for i := range got.Packets {
		if got.Packets[i] != tr.Packets[i] {
			t.Fatalf("ReadBinary packet %d mismatch", i)
		}
	}
}

// TestReaderTruncationWide: a wide stream cut mid-record must surface
// io.ErrUnexpectedEOF like the narrow one.
func TestReaderTruncationWide(t *testing.T) {
	tr := New()
	for i := 0; i < 10; i++ {
		p := synthPacket(i)
		p.Src = 500
		tr.Packets = append(tr.Packets, p)
	}
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-packetRecBytesWide/2]
	rd, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	var p Packet
	var lastErr error
	for i := 0; i < 10; i++ {
		if lastErr = rd.Next(&p); lastErr != nil {
			break
		}
	}
	if lastErr != io.ErrUnexpectedEOF {
		t.Fatalf("truncated wide stream produced %v, want io.ErrUnexpectedEOF", lastErr)
	}
}

// TestReaderTruncation: a stream that ends mid-record must surface
// io.ErrUnexpectedEOF, not a silent short trace.
func TestReaderTruncation(t *testing.T) {
	tr := captureThroughCollector(10)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-packetRecBytes/2]
	rd, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	var p Packet
	var lastErr error
	for i := 0; i < 10; i++ {
		if lastErr = rd.Next(&p); lastErr != nil {
			break
		}
	}
	if lastErr != io.ErrUnexpectedEOF {
		t.Fatalf("truncated stream produced %v, want io.ErrUnexpectedEOF", lastErr)
	}
}

// TestReadBinaryMatchesReader: the materializing decoder is a thin loop
// over the streaming one; the two must agree exactly.
func TestReadBinaryMatchesReader(t *testing.T) {
	tr := captureThroughCollector(collectorChunk + 5)
	var buf bytes.Buffer
	if err := tr.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Packets) != len(tr.Packets) {
		t.Fatalf("ReadBinary produced %d packets, want %d", len(got.Packets), len(tr.Packets))
	}
	for i := range got.Packets {
		if got.Packets[i] != tr.Packets[i] {
			t.Fatalf("packet %d mismatch", i)
		}
	}
	if got.Meta["program"] != "synthetic" || len(got.Marks) != 1 {
		t.Fatalf("metadata mangled: meta=%v marks=%v", got.Meta, got.Marks)
	}
}

// FuzzReader throws arbitrary bytes at the streaming decoder: it must
// never panic or over-allocate, and any stream it fully accepts must
// re-encode to a trace that decodes identically (the decoder is a
// function, not a guesser).
func FuzzReader(f *testing.F) {
	seedTrace := captureThroughCollector(20)
	var seed bytes.Buffer
	if err := seedTrace.WriteBinary(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	// An old-codec stream with a broadcast record, a wide-record stream,
	// and a wide stream truncated mid-record: the corpus spans both
	// format versions and their failure edges.
	v1Trace := captureThroughCollector(5)
	v1Trace.Packets = append(v1Trace.Packets, Packet{Time: 99, Size: 60, Src: 1, Dst: Broadcast})
	f.Add(writeV1(f, v1Trace))
	wideTrace := captureThroughCollector(5)
	wideTrace.Packets = append(wideTrace.Packets, Packet{Time: 77, Size: 60, Src: 1000, Dst: 2000})
	var wideSeed bytes.Buffer
	if err := wideTrace.WriteBinary(&wideSeed); err != nil {
		f.Fatal(err)
	}
	f.Add(wideSeed.Bytes())
	f.Add(wideSeed.Bytes()[:wideSeed.Len()-packetRecBytesWide/2])
	f.Add([]byte(binaryMagic))
	f.Add([]byte(binaryMagicWide))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rd, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		first := New()
		first.Hosts = rd.Hosts()
		for k, v := range rd.Meta() {
			first.Meta[k] = v
		}
		first.Marks = rd.Marks()
		var p Packet
		for {
			if err := rd.Next(&p); err != nil {
				if err != io.EOF {
					return // damaged body: fine, just no panic
				}
				break
			}
			first.Packets = append(first.Packets, p)
		}
		// Accepted stream: must round-trip exactly.
		var buf bytes.Buffer
		if err := first.WriteBinary(&buf); err != nil {
			t.Fatalf("re-encode of accepted stream failed: %v", err)
		}
		second, err := ReadBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of accepted stream failed: %v", err)
		}
		if len(second.Packets) != len(first.Packets) {
			t.Fatalf("round-trip packet count %d != %d", len(second.Packets), len(first.Packets))
		}
		for i := range second.Packets {
			if second.Packets[i] != first.Packets[i] {
				t.Fatalf("round-trip packet %d mismatch", i)
			}
		}
	})
}
