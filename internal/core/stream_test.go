package core

import (
	"math"
	"reflect"
	"testing"

	"fxnet/internal/airshed"
	"fxnet/internal/dsp"
	"fxnet/internal/kernels"
	"fxnet/internal/stats"
)

// quickConfig mirrors fxrepro's -quick regime (seed 42), the scale the
// golden trace digests pin.
func quickConfig(name string) RunConfig {
	cfg := RunConfig{Program: name, Seed: 42}
	if name == Airshed {
		cfg.AirshedParams = airshed.Params{Layers: 4, Species: 8, Grid: 128, Steps: 2, Hours: 5, Band: 4}
	} else {
		cfg.Params = kernels.Params{N: 64, Iters: 10}
	}
	return cfg
}

// sameBits reports whether two series carry identical float64 bit
// patterns, position by position.
func sameBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// checkSpectrumBits fails unless two spectra are bit-identical in every
// array and scalar.
func checkSpectrumBits(t *testing.T, what string, got, want *dsp.Spectrum) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("%s: nil mismatch: got %v want %v", what, got == nil, want == nil)
	}
	if got == nil {
		return
	}
	if !sameBits(got.Freq, want.Freq) || !sameBits(got.Power, want.Power) {
		t.Errorf("%s: Freq/Power bits differ", what)
	}
	if math.Float64bits(got.DF) != math.Float64bits(want.DF) ||
		math.Float64bits(got.DT) != math.Float64bits(want.DT) || got.N != want.N {
		t.Errorf("%s: DF/DT/N differ: got (%v,%v,%d) want (%v,%v,%d)",
			what, got.DF, got.DT, got.N, want.DF, want.DT, want.N)
	}
}

// checkSummaryStream fails unless a streaming Summary matches the
// two-pass one exactly in N/Min/Max/Mean and to 1e-9 relative in SD
// (the documented streaming-variance tolerance).
func checkSummaryStream(t *testing.T, what string, got, want stats.Summary) {
	t.Helper()
	if got.N != want.N ||
		math.Float64bits(got.Min) != math.Float64bits(want.Min) ||
		math.Float64bits(got.Max) != math.Float64bits(want.Max) ||
		math.Float64bits(got.Mean) != math.Float64bits(want.Mean) {
		t.Errorf("%s: N/Min/Max/Mean differ: got %+v want %+v", what, got, want)
	}
	tol := 1e-9 * math.Max(1, math.Abs(want.SD))
	if math.Abs(got.SD-want.SD) > tol {
		t.Errorf("%s: SD beyond streaming tolerance: got %v want %v", what, got.SD, want.SD)
	}
}

// TestStreamMatchesTraceCharacterization is the pipeline's exactness
// contract over all six -quick programs: the streaming characterizer's
// bandwidth series, spectra, bandwidth figures, correlation,
// coincidence, and modality must be bit-identical to the trace-derived
// report, and the parallel trace characterization must be byte-identical
// to the serial one at every worker count.
func TestStreamMatchesTraceCharacterization(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every -quick program twice")
	}
	for _, name := range ProgramNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := quickConfig(name)
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := Characterize(res)

			// Parallel characterization of the same trace: fully
			// identical, SD included (same two-pass functions).
			for _, workers := range []int{2, 4} {
				got := CharacterizePool(res, dsp.NewPool(workers))
				if !reflect.DeepEqual(got, want) {
					t.Errorf("CharacterizePool(%d) differs from serial Characterize", workers)
				}
			}

			sres, got, err := RunStream(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got == nil {
				t.Fatal("RunStream returned nil report")
			}
			if n := sres.Trace.Len(); n != 0 {
				t.Errorf("stream run retained %d packets", n)
			}
			if sres.Trace.Meta["program"] != name {
				t.Errorf("stream trace metadata missing program (meta=%v)", sres.Trace.Meta)
			}
			if sres.Elapsed != res.Elapsed {
				t.Errorf("stream run elapsed %v, trace run %v", sres.Elapsed, res.Elapsed)
			}

			if !sameBits(got.AggSeries, want.AggSeries) {
				t.Errorf("AggSeries bits differ (len got %d want %d)", len(got.AggSeries), len(want.AggSeries))
			}
			if !sameBits(got.ConnSeries, want.ConnSeries) {
				t.Errorf("ConnSeries bits differ (len got %d want %d)", len(got.ConnSeries), len(want.ConnSeries))
			}
			if math.Float64bits(got.SeriesDT) != math.Float64bits(want.SeriesDT) {
				t.Errorf("SeriesDT differs: got %v want %v", got.SeriesDT, want.SeriesDT)
			}
			checkSpectrumBits(t, "AggSpectrum", got.AggSpectrum, want.AggSpectrum)
			checkSpectrumBits(t, "ConnSpectrum", got.ConnSpectrum, want.ConnSpectrum)
			for _, f := range []struct {
				what      string
				got, want float64
			}{
				{"AggKBps", got.AggKBps, want.AggKBps},
				{"ConnKBps", got.ConnKBps, want.ConnKBps},
				{"Correlation", got.Correlation, want.Correlation},
				{"Coincidence", got.Coincidence, want.Coincidence},
			} {
				if math.Float64bits(f.got) != math.Float64bits(f.want) {
					t.Errorf("%s differs: got %v want %v", f.what, f.got, f.want)
				}
			}
			if got.SizeModes != want.SizeModes {
				t.Errorf("SizeModes differs: got %d want %d", got.SizeModes, want.SizeModes)
			}
			checkSummaryStream(t, "AggSize", got.AggSize, want.AggSize)
			checkSummaryStream(t, "AggInterarrival", got.AggInterarrival, want.AggInterarrival)
			checkSummaryStream(t, "ConnSize", got.ConnSize, want.ConnSize)
			checkSummaryStream(t, "ConnInterarrival", got.ConnInterarrival, want.ConnInterarrival)
		})
	}
}
