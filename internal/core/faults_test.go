package core

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"testing"

	"fxnet/internal/analysis"
	"fxnet/internal/ethernet"
	"fxnet/internal/faults"
	"fxnet/internal/kernels"
	"fxnet/internal/pvm"
	"fxnet/internal/qos"
	"fxnet/internal/sim"
	"fxnet/internal/trace"
)

// traceBytes runs cfg and returns the binary encoding of its trace.
func traceBytes(t *testing.T, cfg RunConfig) []byte {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%s): %v", cfg.Program, err)
	}
	var buf bytes.Buffer
	if err := res.Trace.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// dataEnd is the time of the last TCP data packet — the end of actual
// program activity, unlike Elapsed which includes daemon timer drain.
func dataEnd(t *testing.T, tr *trace.Trace) sim.Time {
	t.Helper()
	data := tr.Filter(func(p trace.Packet) bool {
		return p.Proto == ethernet.ProtoTCP && p.Flags&ethernet.FlagData != 0
	})
	if len(data.Packets) == 0 {
		t.Fatal("trace has no data packets")
	}
	return data.Packets[len(data.Packets)-1].Time
}

// probeEnd measures the fault-free program length so fault offsets can
// be placed mid-run regardless of the test's problem size.
func probeEnd(t *testing.T, cfg RunConfig) sim.Duration {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim.Duration(dataEnd(t, res.Trace))
}

// Satellite: identical (program, P, seed, FaultScript) must replay
// byte-identically, across fault types and across two kernels.
func TestFaultRunsDeterministic(t *testing.T) {
	for _, program := range []string{"sor", "2dfft"} {
		base := RunConfig{
			Program: program,
			Seed:    11,
			Params:  kernels.Params{N: 32, Iters: 8},
		}
		third := probeEnd(t, base) / 3
		schedules := map[string]*faults.Schedule{
			"linkflap": {Faults: []faults.Fault{
				{At: third, Kind: faults.LinkDown, Host: "host2"},
				{At: 2 * third, Kind: faults.LinkUp, Host: "host2"},
			}},
			"crash": {Faults: []faults.Fault{
				{At: third, Kind: faults.HostCrash, Host: "host2"},
			}},
			"partition": {Faults: []faults.Fault{
				{At: third, Kind: faults.NetPartition,
					Groups: [][]string{{"host0", "host1"}, {"host2", "host3"}}},
				{At: 2 * third, Kind: faults.Heal},
			}},
		}
		for name, sched := range schedules {
			cfg := base
			cfg.Faults = sched
			a := traceBytes(t, cfg)
			b := traceBytes(t, cfg)
			if !bytes.Equal(a, b) {
				t.Errorf("%s/%s: identical seed+script produced different traces (%d vs %d bytes)",
					program, name, len(a), len(b))
			}
			if bytes.Equal(a, traceBytes(t, base)) {
				t.Errorf("%s/%s: fault schedule left the trace untouched (fired after completion?)",
					program, name)
			}
		}
	}
}

// Acceptance: a scripted HostCrash mid-run must never deadlock or panic
// any of the five kernels — survivors return a RunError naming the phase
// that failed.
func TestHostCrashNeverDeadlocks(t *testing.T) {
	params := map[string]kernels.Params{
		"sor":    {N: 32, Iters: 8},
		"2dfft":  {N: 32, Iters: 8},
		"t2dfft": {N: 32, Iters: 8},
		"seq":    {N: 32, Iters: 2},
		"hist":   {N: 64, Iters: 8},
	}
	for _, program := range kernels.Names() {
		base := RunConfig{Program: program, Seed: 5, Params: params[program]}
		cfg := base
		cfg.Faults = &faults.Schedule{Faults: []faults.Fault{
			{At: probeEnd(t, base) / 2, Kind: faults.HostCrash, Host: "host2"},
		}}
		res, err := Run(cfg)
		if err != nil {
			t.Errorf("%s: Run failed outright: %v", program, err)
			continue
		}
		if res.RunErr == nil {
			t.Errorf("%s: mid-run crash produced no RunError", program)
			continue
		}
		if res.RunErr.Phase == "" {
			t.Errorf("%s: RunError has no phase: %v", program, res.RunErr)
		}
		// When a survivor noticed the death (Rank >= 0) the cause must be
		// the failure detector's verdict. Pipeline kernels may instead
		// report the synthesized worker-killed error (Rank -1) when the
		// survivors were already done with the dead rank.
		if res.RunErr.Rank >= 0 && !errors.Is(res.RunErr.Err, pvm.ErrPeerDead) {
			t.Errorf("%s: RunError cause = %v, want ErrPeerDead", program, res.RunErr.Err)
		}
	}
}

// Acceptance: with Degrade the team re-forms on the survivors, the QoS
// negotiation picks the new P, and the post-fault burst period matches
// the §7.3 prediction tbi(P−1) within 10%.
func TestDegradeReformsAndMatchesQoSPrediction(t *testing.T) {
	params := kernels.Params{N: 512, Iters: 12}
	cfg := RunConfig{
		Program:        "sor",
		Seed:           31,
		Params:         params,
		DisableDesched: true,
		Degrade:        true,
		FaultScript:    "4s:crash host2",
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RunErr != nil {
		t.Fatalf("degraded run aborted: %v", res.RunErr)
	}
	if res.Team.Generation() != 1 {
		t.Fatalf("team generation = %d, want 1", res.Team.Generation())
	}

	// The re-formed size must be exactly what the negotiation returns
	// for the three survivors.
	spec, _ := kernels.Lookup("sor")
	offer, err := qos.NewNetwork(qosCapacityBps).Negotiate(spec.QoS(params), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Workers) != offer.P {
		t.Fatalf("re-formed P = %d, QoS negotiation says %d", len(res.Workers), offer.P)
	}

	// Post-fault burst period vs tbi(newP). The crash mark is at 4s;
	// detection takes ~3 keepalives, so measure well after the re-formed
	// team has settled into its steady rhythm.
	start, _, ok := analysis.FaultWindow(res.Trace)
	if !ok {
		t.Fatal("no fault marks in trace")
	}
	settled := start.Add(6 * sim.Second)
	data := res.Trace.Filter(func(p trace.Packet) bool {
		return p.Time >= settled &&
			p.Proto == ethernet.ProtoTCP && p.Flags&ethernet.FlagData != 0
	})
	bursts := analysis.Bursts(data, 500*sim.Millisecond)
	if bursts.Count < 4 {
		t.Fatalf("too few post-fault bursts to measure: %d", bursts.Count)
	}
	predicted := offer.BurstInterval
	if dev := math.Abs(bursts.MeanPeriodSec-predicted) / predicted; dev > 0.10 {
		t.Errorf("post-fault burst period %.3fs vs predicted tbi(%d)=%.3fs (%.0f%% off)",
			bursts.MeanPeriodSec, offer.P, predicted, dev*100)
	}
	if res.Trace.Meta["finalP"] != fmt.Sprint(offer.P) {
		t.Errorf("finalP meta = %q, want %d", res.Trace.Meta["finalP"], offer.P)
	}
}

// A fault kind with no hook on the chosen topology must be rejected
// up front, not silently skipped.
func TestSwitchedTopologyRejectsLinkFaults(t *testing.T) {
	cfg := RunConfig{
		Program:     "sor",
		Seed:        1,
		Params:      kernels.Params{N: 32, Iters: 5},
		Switched:    true,
		FaultScript: "1s:linkdown host2",
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("switched run accepted a shared-segment link fault")
	}
}

func TestBadFaultScriptRejected(t *testing.T) {
	cfg := RunConfig{
		Program:     "sor",
		Seed:        1,
		FaultScript: "1s:frobnicate host2",
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("malformed fault script accepted")
	}
}

func TestComputeStallAnnotatesAndCompletes(t *testing.T) {
	base := RunConfig{Program: "sor", Seed: 3, Params: kernels.Params{N: 32, Iters: 8}}
	baseEnd := probeEnd(t, base)
	cfg := base
	cfg.Faults = &faults.Schedule{Faults: []faults.Fault{
		{At: baseEnd / 2, Kind: faults.ComputeStall,
			Host: "host1", Dur: 2 * sim.Second},
	}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RunErr != nil {
		t.Fatalf("stall aborted the run: %v", res.RunErr)
	}
	if len(res.Trace.Marks) != 1 {
		t.Fatalf("marks = %v, want the stall annotation", res.Trace.Marks)
	}
	// The stall stretches the program by roughly its length.
	if gain := dataEnd(t, res.Trace).Sub(sim.Time(baseEnd)); gain < sim.Duration(sim.Second) {
		t.Errorf("stall added only %v", gain)
	}
}
