package core

// This file defines the first-class multi-segment network description.
// The default (nil) topology is the paper's single shared collision
// domain; a non-nil topology names Ethernet segments, pins hosts to
// them, and bridges them through a backbone of trunk links with
// per-segment latency — the switched multi-segment LAN the paper's
// "next generation" discussion anticipates.

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"fxnet/internal/sim"
)

// DefaultTrunkLatency is the one-way trunk latency a segment uses when
// its spec does not override it: 1 ms, a campus-backbone store-and-
// forward hop. Cross-segment delay is the sum of the two endpoints'
// trunk latencies, so the default cross-segment RTT (4 ms) stays well
// under the transport's retransmission timeout.
const DefaultTrunkLatency = sim.Millisecond

// MaxTopologyHosts caps the total pinned hosts: trace addresses are
// stored in 16 bits with 0xFFFF reserved for broadcast.
const MaxTopologyHosts = 65534

// TopoSegment is one named Ethernet segment of a multi-segment topology.
type TopoSegment struct {
	// Name identifies the segment in specs and diagnostics.
	Name string `json:"name"`
	// Hosts lists the global host indexes pinned to this segment.
	Hosts []int `json:"hosts"`
	// BitRate is the segment's raw rate in bits per second; 0 inherits
	// the run's BitRate (and ultimately the 10 Mb/s default).
	BitRate float64 `json:"bit_rate,omitempty"`
	// TrunkLatency is the one-way latency of this segment's trunk to
	// the backbone; 0 selects DefaultTrunkLatency. Explicit zero or
	// negative latencies are rejected by the parser — the conservative
	// parallel kernel derives its lookahead from these.
	TrunkLatency sim.Duration `json:"trunk_latency_ns,omitempty"`
}

// Topology is a multi-segment network: segments bridged by transparent
// learning switches over a latency-only backbone.
type Topology struct {
	Segments []TopoSegment `json:"segments"`
}

// trunkLatency returns segment i's effective trunk latency.
func (t *Topology) trunkLatency(i int) sim.Duration {
	if d := t.Segments[i].TrunkLatency; d != 0 {
		return d
	}
	return DefaultTrunkLatency
}

// LookaheadMatrix is the conservative parallelization structure: entry
// [i][j] is the minimum delay any frame leaving segment i needs to reach
// segment j over the bridge graph. Segments are bridged through a
// backbone star, so the direct hop costs trunk(i)+trunk(j) — and because
// every trunk latency is positive, no relay through a third segment can
// undercut the direct hop (trunk(i)+2·trunk(k)+trunk(j) > trunk(i)+
// trunk(j)), making the matrix path-closed as the engine requires. Each
// partition pair advances independently up to its own entry: two
// segments joined by slow trunks run far ahead of a low-latency pair
// instead of crawling at the global minimum, which is what the old
// scalar Lookahead (the sum of the two smallest trunk latencies) forced.
// Nil for single-segment topologies.
func (t *Topology) LookaheadMatrix() [][]sim.Duration {
	n := len(t.Segments)
	if n < 2 {
		return nil
	}
	m := make([][]sim.Duration, n)
	for i := range m {
		m[i] = make([]sim.Duration, n)
		for j := range m[i] {
			if i != j {
				m[i][j] = t.trunkLatency(i) + t.trunkLatency(j)
			}
		}
	}
	return m
}

// NumHosts reports the total number of pinned hosts.
func (t *Topology) NumHosts() int {
	n := 0
	for i := range t.Segments {
		n += len(t.Segments[i].Hosts)
	}
	return n
}

// segmentOf builds the host-index → segment-index map.
func (t *Topology) segmentOf() map[int]int {
	m := make(map[int]int)
	for i := range t.Segments {
		for _, h := range t.Segments[i].Hosts {
			m[h] = i
		}
	}
	return m
}

// validName reports whether a segment name uses only the spec-safe
// alphabet.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}

// Validate checks the topology's structural invariants: at least one
// segment, valid unique names, at least one host per segment, no host
// pinned twice, positive rates and latencies, and the host count within
// the trace format's address space.
func (t *Topology) Validate() error {
	if t == nil || len(t.Segments) == 0 {
		return fmt.Errorf("core: topology has no segments")
	}
	names := make(map[string]bool, len(t.Segments))
	seen := make(map[int]string)
	total := 0
	for i := range t.Segments {
		s := &t.Segments[i]
		if !validName(s.Name) {
			return fmt.Errorf("core: invalid segment name %q (want [A-Za-z0-9_-]+)", s.Name)
		}
		if names[s.Name] {
			return fmt.Errorf("core: duplicate segment name %q", s.Name)
		}
		names[s.Name] = true
		if len(s.Hosts) == 0 {
			return fmt.Errorf("core: segment %q has no hosts", s.Name)
		}
		for _, h := range s.Hosts {
			if h < 0 || h >= MaxTopologyHosts {
				return fmt.Errorf("core: segment %q host index %d out of range [0,%d)", s.Name, h, MaxTopologyHosts)
			}
			if prev, dup := seen[h]; dup {
				return fmt.Errorf("core: host %d pinned to both %q and %q", h, prev, s.Name)
			}
			seen[h] = s.Name
			total++
		}
		if s.BitRate < 0 {
			return fmt.Errorf("core: segment %q has negative bit rate", s.Name)
		}
		if s.TrunkLatency < 0 {
			return fmt.Errorf("core: segment %q has negative trunk latency", s.Name)
		}
	}
	if total > MaxTopologyHosts {
		return fmt.Errorf("core: topology pins %d hosts, max %d", total, MaxTopologyHosts)
	}
	return nil
}

// ValidateFor additionally checks the placement against a processor
// count: the pinned hosts must be exactly 0..p-1 — a placement naming a
// host the run does not create (or missing one it does) is dangling.
func (t *Topology) ValidateFor(p int) error {
	if err := t.Validate(); err != nil {
		return err
	}
	segOf := t.segmentOf()
	if len(segOf) != p {
		return fmt.Errorf("core: topology pins %d hosts but the run has %d processors", len(segOf), p)
	}
	for h := 0; h < p; h++ {
		if _, ok := segOf[h]; !ok {
			return fmt.Errorf("core: host %d is not pinned to any segment", h)
		}
	}
	return nil
}

// Spec renders the canonical spec string: segments in declaration order,
// hosts as sorted collapsed ranges, rate and latency only when they
// override the defaults. ParseTopology(t.Spec()) reproduces t up to host
// ordering; the farm cache key hashes this string.
func (t *Topology) Spec() string {
	var b strings.Builder
	for i := range t.Segments {
		s := &t.Segments[i]
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(s.Name)
		b.WriteByte(':')
		hosts := append([]int(nil), s.Hosts...)
		sort.Ints(hosts)
		for j := 0; j < len(hosts); {
			k := j
			for k+1 < len(hosts) && hosts[k+1] == hosts[k]+1 {
				k++
			}
			if j > 0 {
				b.WriteByte('+')
			}
			if k == j {
				fmt.Fprintf(&b, "%d", hosts[j])
			} else {
				fmt.Fprintf(&b, "%d-%d", hosts[j], hosts[k])
			}
			j = k + 1
		}
		if s.BitRate > 0 {
			fmt.Fprintf(&b, "@%s", strconv.FormatFloat(s.BitRate/1e6, 'f', -1, 64))
		}
		if s.TrunkLatency > 0 {
			fmt.Fprintf(&b, "~%s", formatLatency(s.TrunkLatency))
		}
	}
	return b.String()
}

func formatLatency(d sim.Duration) string {
	switch {
	case d%sim.Millisecond == 0:
		return fmt.Sprintf("%dms", d/sim.Millisecond)
	case d%sim.Microsecond == 0:
		return fmt.Sprintf("%dus", d/sim.Microsecond)
	default:
		return fmt.Sprintf("%dns", d)
	}
}

// ParseTopology parses the compact spec syntax:
//
//	topology  = segment *( "," segment )
//	segment   = name ":" hosts [ "@" rateMbps ] [ "~" latency ]
//	hosts     = range *( "+" range )
//	range     = index [ "-" index ]
//	latency   = integer ( "ns" | "us" | "ms" | "s" )
//
// Example: "lan0:0-15@100~2ms,lan1:16-31" — two segments; the first runs
// at 100 Mb/s with a 2 ms trunk, the second inherits the run defaults.
// The parsed topology is validated structurally (duplicate names,
// overlapping pins, non-positive latencies are all rejected).
func ParseTopology(spec string) (*Topology, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("core: empty topology spec")
	}
	t := &Topology{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		name, rest, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("core: segment %q: want name:hosts", part)
		}
		seg := TopoSegment{Name: name}
		if i := strings.IndexByte(rest, '~'); i >= 0 {
			d, err := parseLatency(rest[i+1:])
			if err != nil {
				return nil, fmt.Errorf("core: segment %q: %v", name, err)
			}
			if d <= 0 {
				return nil, fmt.Errorf("core: segment %q: trunk latency must be positive, got %q", name, rest[i+1:])
			}
			seg.TrunkLatency = d
			rest = rest[:i]
		}
		if i := strings.IndexByte(rest, '@'); i >= 0 {
			mbps, err := strconv.ParseFloat(rest[i+1:], 64)
			if err != nil || mbps <= 0 {
				return nil, fmt.Errorf("core: segment %q: bad bit rate %q (Mb/s)", name, rest[i+1:])
			}
			seg.BitRate = mbps * 1e6
			rest = rest[:i]
		}
		for _, r := range strings.Split(rest, "+") {
			lo, hi, err := parseRange(r)
			if err != nil {
				return nil, fmt.Errorf("core: segment %q: %v", name, err)
			}
			for h := lo; h <= hi; h++ {
				seg.Hosts = append(seg.Hosts, h)
			}
		}
		t.Segments = append(t.Segments, seg)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func parseRange(r string) (lo, hi int, err error) {
	loS, hiS, dashed := strings.Cut(r, "-")
	lo, err = strconv.Atoi(loS)
	if err != nil {
		return 0, 0, fmt.Errorf("bad host range %q", r)
	}
	hi = lo
	if dashed {
		hi, err = strconv.Atoi(hiS)
		if err != nil {
			return 0, 0, fmt.Errorf("bad host range %q", r)
		}
	}
	if lo < 0 || hi < lo {
		return 0, 0, fmt.Errorf("bad host range %q", r)
	}
	if hi-lo >= MaxTopologyHosts {
		return 0, 0, fmt.Errorf("host range %q too wide", r)
	}
	return lo, hi, nil
}

func parseLatency(s string) (sim.Duration, error) {
	var unit sim.Duration
	var num string
	switch {
	case strings.HasSuffix(s, "ns"):
		unit, num = sim.Nanosecond, s[:len(s)-2]
	case strings.HasSuffix(s, "us"):
		unit, num = sim.Microsecond, s[:len(s)-2]
	case strings.HasSuffix(s, "ms"):
		unit, num = sim.Millisecond, s[:len(s)-2]
	case strings.HasSuffix(s, "s"):
		unit, num = sim.Second, s[:len(s)-1]
	default:
		return 0, fmt.Errorf("bad latency %q (want e.g. 500us, 2ms)", s)
	}
	n, err := strconv.Atoi(num)
	if err != nil {
		return 0, fmt.Errorf("bad latency %q", s)
	}
	return sim.Duration(n) * unit, nil
}

// ParseTopologyJSON parses the JSON topology form (the -topology @file
// payload): {"segments":[{"name":...,"hosts":[...],"bit_rate":...,
// "trunk_latency_ns":...}]}. Validated like ParseTopology.
func ParseTopologyJSON(data []byte) (*Topology, error) {
	t := &Topology{}
	if err := json.Unmarshal(data, t); err != nil {
		return nil, fmt.Errorf("core: topology JSON: %v", err)
	}
	for i := range t.Segments {
		if t.Segments[i].TrunkLatency < 0 {
			return nil, fmt.Errorf("core: segment %q: trunk latency must be positive", t.Segments[i].Name)
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// MarshalJSON emits the canonical JSON topology form.
func (t *Topology) JSON() ([]byte, error) { return json.Marshal(t) }
