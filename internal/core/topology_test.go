package core

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"testing"

	"fxnet/internal/kernels"
	"fxnet/internal/sim"
)

func TestParseTopology(t *testing.T) {
	topo, err := ParseTopology("lan0:0-15@100~2ms,lan1:16-31")
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Segments) != 2 {
		t.Fatalf("got %d segments", len(topo.Segments))
	}
	s0 := topo.Segments[0]
	if s0.Name != "lan0" || len(s0.Hosts) != 16 || s0.BitRate != 100e6 || s0.TrunkLatency != 2*sim.Millisecond {
		t.Fatalf("segment 0 parsed wrong: %+v", s0)
	}
	if topo.Segments[1].TrunkLatency != 0 {
		t.Fatalf("segment 1 latency should be unset (default)")
	}
	if m := topo.LookaheadMatrix(); m[0][1] != 3*sim.Millisecond || m[1][0] != 3*sim.Millisecond {
		t.Fatalf("lookahead matrix %v, want 3ms off-diagonal (2ms + default 1ms)", m)
	}
	if err := topo.ValidateFor(32); err != nil {
		t.Fatal(err)
	}
	if err := topo.ValidateFor(16); err == nil {
		t.Fatal("accepted placement with 32 pins for 16 processors")
	}
}

func TestParseTopologyRejects(t *testing.T) {
	bad := []string{
		"",                     // empty
		"lan0",                 // no hosts
		"lan0:0-1,lan0:2-3",    // duplicate name
		"lan0:0-1,lan1:1-2",    // host pinned twice
		"lan0:0-1~0ms,lan1:2",  // zero trunk latency
		"lan0:0-1~-5ms,lan1:2", // negative trunk latency
		"lan0:0-1@0,lan1:2",    // zero bit rate
		"lan0:0-1@-10,lan1:2",  // negative bit rate
		"la n0:0-1",            // bad name
		"lan0:a-b",             // bad range
		"lan0:5-2",             // inverted range
		"lan0:0-65535",         // beyond address space
		"lan0:",                // empty hosts
	}
	for _, spec := range bad {
		if _, err := ParseTopology(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestTopologySpecRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"lan0:0-15,lan1:16-31",
		"lan0:0-7@100~2ms,lan1:8-15~500us",
		"a:0,b:1,c:2,d:3",
		"lan0:0-1+3,lan1:2",
	} {
		topo, err := ParseTopology(spec)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		if got := topo.Spec(); got != spec {
			t.Errorf("Spec() = %q, want %q", got, spec)
		}
		// JSON round trip preserves the canonical spec.
		data, err := topo.JSON()
		if err != nil {
			t.Fatal(err)
		}
		topo2, err := ParseTopologyJSON(data)
		if err != nil {
			t.Fatalf("%q: JSON round trip: %v", spec, err)
		}
		if topo2.Spec() != spec {
			t.Errorf("JSON round trip Spec() = %q, want %q", topo2.Spec(), spec)
		}
	}
}

func FuzzParseTopology(f *testing.F) {
	f.Add("lan0:0-15,lan1:16-31")
	f.Add("lan0:0-7@100~2ms,lan1:8-15~500us")
	f.Add("lan0:0-1~0ms")
	f.Add("a:0,a:1")
	f.Add("x:0-300")
	f.Add("seg:1+2+3@0.5~1ns")
	f.Fuzz(func(t *testing.T, spec string) {
		topo, err := ParseTopology(spec)
		if err != nil {
			return
		}
		// Any accepted topology must satisfy its own invariants...
		if err := topo.Validate(); err != nil {
			t.Fatalf("parsed %q but Validate: %v", spec, err)
		}
		for i := range topo.Segments {
			if topo.Segments[i].TrunkLatency < 0 {
				t.Fatalf("parsed %q with negative latency", spec)
			}
		}
		if m := topo.LookaheadMatrix(); len(topo.Segments) > 1 {
			for i := range m {
				for j := range m[i] {
					if i != j && m[i][j] <= 0 {
						t.Fatalf("parsed %q with non-positive lookahead L[%d][%d]", spec, i, j)
					}
				}
			}
		}
		// ...and its canonical form must be a fixed point.
		canon, err := ParseTopology(topo.Spec())
		if err != nil {
			t.Fatalf("canonical spec %q of %q rejected: %v", topo.Spec(), spec, err)
		}
		if canon.Spec() != topo.Spec() {
			t.Fatalf("canonical spec not stable: %q → %q", topo.Spec(), canon.Spec())
		}
	})
}

func TestLookaheadMatrixShapes(t *testing.T) {
	ms := sim.Millisecond
	us := sim.Microsecond
	cases := []struct {
		name string
		spec string
		want map[[2]int]sim.Duration // spot checks; omitted pairs unchecked
	}{
		{
			// Star of equals: every pair costs two default trunks.
			name: "star-uniform",
			spec: "a:0,b:1,c:2,d:3",
			want: map[[2]int]sim.Duration{
				{0, 1}: 2 * ms, {1, 2}: 2 * ms, {0, 3}: 2 * ms, {3, 0}: 2 * ms,
			},
		},
		{
			// Single trunk pair: the degenerate two-segment fabric.
			name: "single-trunk",
			spec: "left:0-1~500us,right:2-3~500us",
			want: map[[2]int]sim.Duration{{0, 1}: 1 * ms, {1, 0}: 1 * ms},
		},
		{
			// Chain-like spread: a fast middle segment is near both
			// slow ends, but the ends stay far from each other — the
			// per-pair structure a scalar lookahead collapses.
			name: "chain-fast-middle",
			spec: "west:0~2ms,mid:1~100us,east:2~2ms",
			want: map[[2]int]sim.Duration{
				{0, 1}: 2*ms + 100*us,
				{1, 2}: 2*ms + 100*us,
				{0, 2}: 4 * ms,
			},
		},
		{
			// Asymmetric latencies: each pair prices its own trunks.
			name: "asymmetric",
			spec: "a:0~1ms,b:1~3ms,c:2~7ms",
			want: map[[2]int]sim.Duration{
				{0, 1}: 4 * ms, {0, 2}: 8 * ms, {1, 2}: 10 * ms,
			},
		},
	}
	for _, tc := range cases {
		topo, err := ParseTopology(tc.spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		m := topo.LookaheadMatrix()
		n := len(topo.Segments)
		for pair, want := range tc.want {
			if got := m[pair[0]][pair[1]]; got != want {
				t.Errorf("%s: L[%d][%d] = %v, want %v", tc.name, pair[0], pair[1], got, want)
			}
		}
		for i := 0; i < n; i++ {
			if m[i][i] != 0 {
				t.Errorf("%s: diagonal L[%d][%d] = %v", tc.name, i, i, m[i][i])
			}
			for j := 0; j < n; j++ {
				if m[i][j] != m[j][i] {
					t.Errorf("%s: asymmetric star matrix L[%d][%d]=%v L[%d][%d]=%v",
						tc.name, i, j, m[i][j], j, i, m[j][i])
				}
				// Path-closure: no relay can beat the direct entry, the
				// property the engine's horizon math relies on.
				for k := 0; k < n; k++ {
					if i != j && k != i && k != j && m[i][k]+m[k][j] < m[i][j] {
						t.Errorf("%s: L[%d][%d]=%v undercut via %d (%v)",
							tc.name, i, j, m[i][j], k, m[i][k]+m[k][j])
					}
				}
			}
		}
	}
}

func TestLookaheadMatrixSingleSegmentNil(t *testing.T) {
	topo, err := ParseTopology("lan0:0-3")
	if err != nil {
		t.Fatal(err)
	}
	if m := topo.LookaheadMatrix(); m != nil {
		t.Fatalf("single-segment matrix = %v, want nil", m)
	}
}

func TestTopologyWideHostRange(t *testing.T) {
	// The parser accepts thousand-host pins now that trace addresses
	// are 16-bit; only the broadcast address stays reserved.
	topo, err := ParseTopology("lan0:0-1023,lan1:1024-2047")
	if err != nil {
		t.Fatal(err)
	}
	if n := topo.NumHosts(); n != 2048 {
		t.Fatalf("NumHosts = %d, want 2048", n)
	}
	if err := topo.ValidateFor(2048); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseTopology("lan0:0-65534"); err == nil {
		t.Fatal("accepted 65535 hosts; 0xFFFF must stay reserved for broadcast")
	}
}

// topoDigest runs cfg with the given PDES mode and returns the binary
// trace digest.
func topoDigest(t *testing.T, cfg RunConfig, mode PDESMode) string {
	t.Helper()
	res, err := RunWithOpts(cfg, RunOpts{PDES: mode})
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	if err := res.Trace.WriteBinary(h); err != nil {
		t.Fatal(err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func TestTopologySerialParallelIdentical(t *testing.T) {
	topo, err := ParseTopology("lan0:0-1,lan1:2-3")
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{
		Program: "2dfft", Seed: 7, P: 4,
		Params:   kernels.Params{N: 16, Iters: 3},
		Topology: topo,
	}
	serial := topoDigest(t, cfg, PDESSerial)
	parallel := topoDigest(t, cfg, PDESParallel)
	if serial != parallel {
		t.Fatalf("serial digest %s != parallel digest %s", serial, parallel)
	}
}

func TestTopologyTrafficVolume(t *testing.T) {
	// A switched 2-segment run must carry roughly the same payload
	// volume as the shared-segment baseline — same program, same data.
	topo, err := ParseTopology("lan0:0-1,lan1:2-3")
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{Program: "2dfft", Seed: 1, Params: kernels.Params{N: 32, Iters: 5}}
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Topology = topo
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Len() == 0 {
		t.Fatal("no packets captured on topology run")
	}
	got, want := res.Trace.TotalBytes(), base.Trace.TotalBytes()
	if got < want*9/10 || got > want*11/10 {
		t.Errorf("topology bytes %d far from shared %d", got, want)
	}
	if res.Trace.Meta["topology"] != topo.Spec() {
		t.Errorf("trace meta topology = %q", res.Trace.Meta["topology"])
	}
}

func TestTopologySingleSegment(t *testing.T) {
	// A one-segment topology runs through the partitioned engine with
	// no trunks — a degenerate but legal case.
	topo, err := ParseTopology("lan0:0-3")
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{
		Program: "sor", Seed: 3, P: 4,
		Params:   kernels.Params{N: 16, Iters: 2},
		Topology: topo,
	}
	if s, p := topoDigest(t, cfg, PDESSerial), topoDigest(t, cfg, PDESParallel); s != p {
		t.Fatalf("single-segment serial %s != parallel %s", s, p)
	}
}

func TestTopologyRejectsIncompatibleFeatures(t *testing.T) {
	topo, _ := ParseTopology("lan0:0-1,lan1:2-3")
	base := RunConfig{Program: "sor", P: 4, Topology: topo}
	cases := []struct {
		name   string
		mutate func(*RunConfig)
	}{
		{"switched", func(c *RunConfig) { c.Switched = true }},
		{"loss", func(c *RunConfig) { c.FrameLossProb = 0.1 }},
		{"faults", func(c *RunConfig) { c.FaultScript = "5s:linkdown host2" }},
		{"degrade", func(c *RunConfig) { c.Degrade = true }},
		{"crosstraffic", func(c *RunConfig) { c.CrossTrafficKBps = 100 }},
		{"guarantee", func(c *RunConfig) { c.GuaranteeProgram = true }},
		{"heartbeat", func(c *RunConfig) { c.HeartbeatMisses = 3 }},
		{"wrongP", func(c *RunConfig) { c.P = 8 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestTopologyStreamMatchesRetained(t *testing.T) {
	// The streaming characterizer must see the identical packet order
	// the retained trace records.
	topo, err := ParseTopology("lan0:0-1,lan1:2-3")
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{
		Program: "sor", Seed: 5, P: 4,
		Params:   kernels.Params{N: 16, Iters: 2},
		Topology: topo,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := Characterize(res)
	_, rep, err := RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AggSize.N != want.AggSize.N || rep.AggKBps != want.AggKBps {
		t.Fatalf("stream (%d pkts, %.3f KB/s) != retained (%d pkts, %.3f KB/s)",
			rep.AggSize.N, rep.AggKBps, want.AggSize.N, want.AggKBps)
	}
	if !strings.Contains(res.Trace.Meta["topology"], "lan0") {
		t.Fatal("missing topology meta")
	}
}
