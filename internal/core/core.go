// Package core orchestrates the paper's experiments end to end: it
// assembles the simulated testbed (a shared 10 Mb/s Ethernet of
// workstations with a passive monitor in promiscuous mode), launches an
// Fx program over PVM, captures the packet trace, and computes the
// characterizations of the paper's figures.
package core

import (
	"fmt"
	"math"

	"fxnet/internal/airshed"
	"fxnet/internal/analysis"
	"fxnet/internal/dsp"
	"fxnet/internal/ethernet"
	"fxnet/internal/fx"
	"fxnet/internal/kernels"
	"fxnet/internal/netstack"
	"fxnet/internal/pvm"
	"fxnet/internal/sim"
	"fxnet/internal/stats"
	"fxnet/internal/trace"
)

// Airshed is the registry name of the AIRSHED application (the kernels
// have their own registry in the kernels package).
const Airshed = "airshed"

// ProgramNames lists every runnable program.
func ProgramNames() []string {
	return append(kernels.Names(), Airshed)
}

// RunConfig configures one measured run.
type RunConfig struct {
	// Program is a kernel name ("sor", "2dfft", "t2dfft", "seq", "hist")
	// or "airshed".
	Program string
	// P is the processor count; 0 selects the paper's default (4).
	P int
	// Params override the kernel parameters; zero-valued fields keep the
	// paper defaults. Ignored for airshed.
	Params kernels.Params
	// AirshedParams override the AIRSHED dimensions; a zero value keeps
	// the paper configuration.
	AirshedParams airshed.Params
	// Seed drives all simulation randomness.
	Seed int64
	// BitRate of the shared segment; 0 selects 10 Mb/s.
	BitRate float64
	// Cost overrides the cost model; nil derives the calibrated model.
	Cost *fx.CostModel
	// DisableDesched removes OS-stall injection (for exact-period
	// ablations).
	DisableDesched bool
	// ForceCopyLoop (for the fragment-packing ablation) makes every
	// kernel use single-fragment copy-loop sends; ForceFragments makes
	// kernels use fragment sends. At most one may be set.
	ForceCopyLoop  bool
	ForceFragments bool
	// Net overrides transport parameters; zero keeps defaults.
	Net netstack.Config
	// KeepaliveInterval for PVM daemons; 0 keeps the default 2 s.
	KeepaliveInterval sim.Duration
	// FrameLossProb injects FCS corruption: each frame is independently
	// lost with this probability, and TCP recovers by retransmission.
	FrameLossProb float64
	// Switched replaces the shared collision domain with a store-and-
	// forward full-duplex switch (capture then models a SPAN port) — the
	// modernization ablation.
	Switched bool
	// Nagle enables sender-side coalescing. PVM sets TCP_NODELAY, so the
	// measured configuration leaves it off; turning it on shows how
	// coalescing would erase the fragment and per-element message
	// signatures.
	Nagle bool
	// CrossTrafficKBps injects a VBR-video-like background flow of the
	// given mean rate from an extra host toward alpha0, contending with
	// the program for the medium.
	CrossTrafficKBps float64
	// GuaranteeProgram (switched only) gives the program's connections
	// strict priority over best-effort cross traffic — the QoS guarantee
	// the paper's introduction motivates.
	GuaranteeProgram bool
}

// Result is a completed measured run.
type Result struct {
	Config   RunConfig
	Trace    *trace.Trace
	Elapsed  sim.Time
	SegStats ethernet.Stats
	Workers  []*fx.Worker
	// RepConn is the representative connection (src, dst host) for the
	// program, or (-1, -1).
	RepConn [2]int
}

// Run executes one experiment to completion and returns the captured
// trace and run metadata.
func Run(cfg RunConfig) (*Result, error) {
	spec, isKernel := kernels.Lookup(cfg.Program)
	if !isKernel && cfg.Program != Airshed {
		return nil, fmt.Errorf("core: unknown program %q (have %v)", cfg.Program, ProgramNames())
	}
	if cfg.ForceCopyLoop && cfg.ForceFragments {
		return nil, fmt.Errorf("core: ForceCopyLoop and ForceFragments both set")
	}

	p := cfg.P
	if p == 0 {
		if isKernel {
			p = spec.P
		} else {
			p = 4
		}
	}

	k := sim.New(cfg.Seed)
	var (
		medium   ethernet.TrafficSource
		attach   func(name string) ethernet.Port
		segStats func() ethernet.Stats
	)
	if cfg.Switched {
		sw := ethernet.NewSwitch(k, cfg.BitRate, 10*sim.Microsecond)
		medium = sw
		attach = func(name string) ethernet.Port { return sw.Attach(name) }
		segStats = func() ethernet.Stats { return ethernet.Stats{Frames: sw.Delivered, Bytes: sw.DeliveredBytes} }
		if cfg.FrameLossProb > 0 {
			return nil, fmt.Errorf("core: frame loss injection is only modeled on the shared segment")
		}
	} else {
		seg := ethernet.NewSegment(k, cfg.BitRate)
		if cfg.FrameLossProb > 0 {
			seg.SetDropProb(cfg.FrameLossProb)
		}
		medium = seg
		attach = func(name string) ethernet.Port { return seg.Attach(name) }
		segStats = seg.Stats
	}
	netCfg := cfg.Net
	if netCfg.SendWindow == 0 {
		netCfg = netstack.DefaultConfig()
	}
	if cfg.Nagle {
		netCfg.Nagle = true
	}
	hosts := make([]*netstack.Host, p)
	names := make([]string, 0, p+1)
	for i := range hosts {
		st := attach(fmt.Sprintf("alpha%d", i))
		hosts[i] = netstack.NewHost(k, st, st.Name(), netCfg)
		names = append(names, st.Name())
	}
	// The measurement workstation: attached, promiscuous, silent.
	attach("monitor")
	names = append(names, "monitor")
	col := trace.Capture(medium)

	if cfg.GuaranteeProgram {
		sw, ok := medium.(*ethernet.Switch)
		if !ok {
			return nil, fmt.Errorf("core: GuaranteeProgram requires Switched")
		}
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				if i != j {
					sw.Guarantee(i, j)
				}
			}
		}
	}

	var crossHost *netstack.Host
	if cfg.CrossTrafficKBps > 0 {
		st := attach("video")
		names = append(names, "video")
		crossHost = netstack.NewHost(k, st, "video", netCfg)
	}

	pvmCfg := pvm.DefaultConfig()
	if cfg.KeepaliveInterval != 0 {
		pvmCfg.KeepaliveInterval = cfg.KeepaliveInterval
	}
	machine := pvm.NewMachine(k, hosts, pvmCfg)

	cost := buildCost(cfg, spec, isKernel)

	var team *fx.Team
	repConn := [2]int{-1, -1}
	if isKernel {
		params := spec.Params
		if cfg.Params.N != 0 {
			params.N = cfg.Params.N
		}
		if cfg.Params.Iters != 0 {
			params.Iters = cfg.Params.Iters
		}
		useFrags := spec.UseFragments
		if cfg.ForceCopyLoop {
			useFrags = false
		}
		if cfg.ForceFragments {
			useFrags = true
		}
		repConn = spec.RepresentativeConn
		run := spec.Run
		coalesce := cfg.ForceCopyLoop
		team = fx.Launch(machine, p, cost, spec.Name, func(w *fx.Worker) {
			w.UseFragments = useFrags
			w.CoalesceFragments = coalesce
			run(w, params)
		})
	} else {
		ap := cfg.AirshedParams
		if ap.Layers == 0 {
			ap = airshed.PaperParams()
		}
		repConn = [2]int{1, 0}
		team = fx.Launch(machine, p, cost, Airshed, func(w *fx.Worker) {
			airshed.Run(w, ap)
		})
	}

	if crossHost != nil {
		startCrossTraffic(k, crossHost, hosts[0].Addr(), cfg.CrossTrafficKBps, team)
	}

	elapsed := k.Run()
	if !team.Done() {
		return nil, fmt.Errorf("core: %s did not complete (deadlock at %v)", cfg.Program, elapsed)
	}

	tr := col.Trace()
	tr.Hosts = names
	tr.Meta["program"] = cfg.Program
	tr.Meta["P"] = fmt.Sprint(p)
	tr.Meta["seed"] = fmt.Sprint(cfg.Seed)

	return &Result{
		Config:   cfg,
		Trace:    tr,
		Elapsed:  elapsed,
		SegStats: segStats(),
		Workers:  team.Workers,
		RepConn:  repConn,
	}, nil
}

// CalibratedCost returns the calibrated cost model for a program, as a
// starting point for ablations that perturb it.
func CalibratedCost(program string) (fx.CostModel, error) {
	spec, isKernel := kernels.Lookup(program)
	if !isKernel && program != Airshed {
		return fx.CostModel{}, fmt.Errorf("core: unknown program %q", program)
	}
	return buildCost(RunConfig{Program: program}, spec, isKernel), nil
}

// startCrossTraffic spawns a VBR-video-like background sender: 30 frames
// per second, lognormal frame sizes around the target mean rate, each
// frame packetized as UDP toward dst. It stops when the program finishes.
func startCrossTraffic(k *sim.Kernel, h *netstack.Host, dst int, kbps float64, team *fx.Team) {
	rng := k.Rand("core.crosstraffic")
	const fps = 30
	meanFrame := kbps * 1000 / fps
	k.Go("crosstraffic", func(p *sim.Proc) {
		for !team.Done() {
			size := int(meanFrame * math.Exp(0.4*rng.NormFloat64()-0.08))
			for size > 0 {
				chunk := min(size, 1400)
				h.SendUDP(dst, 4000, 4000, make([]byte, chunk))
				size -= chunk
			}
			p.Sleep(sim.DurationOf(1.0 / fps))
		}
	})
}

// buildCost derives the calibrated cost model for the program.
func buildCost(cfg RunConfig, spec kernels.Spec, isKernel bool) fx.CostModel {
	if cfg.Cost != nil {
		return *cfg.Cost
	}
	cost := fx.DefaultCostModel()
	rates := make(map[string]float64)
	if isKernel {
		for k, v := range spec.Rates {
			rates[k] = v
		}
	} else {
		for k, v := range airshed.Rates {
			rates[k] = v
		}
	}
	cost.Rates = rates
	if cfg.DisableDesched {
		cost.DeschedProb = 0
	}
	return cost
}

// Report is the per-program characterization of the paper's figures 3–7
// (and 8–11 for AIRSHED).
type Report struct {
	Program string

	// Figure 3 / 8: packet sizes (bytes).
	AggSize  stats.Summary
	ConnSize stats.Summary // zero Summary when no representative connection

	// Figure 4 / 9: interarrival times (ms).
	AggInterarrival  stats.Summary
	ConnInterarrival stats.Summary

	// Figure 5 / §6.2: average bandwidth (KB/s).
	AggKBps  float64
	ConnKBps float64

	// Figure 6 / 10: instantaneous bandwidth (10 ms bins).
	AggSeries  []float64
	ConnSeries []float64
	SeriesDT   float64

	// Figure 7 / 11: power spectra.
	AggSpectrum  *dsp.Spectrum
	ConnSpectrum *dsp.Spectrum

	// Packet-size modality (trimodal for SOR/2DFFT/HIST).
	SizeModes int

	// Mean pairwise correlation of per-connection bandwidth (burst-level
	// bins).
	Correlation float64

	// Coincidence is the mean fraction of data-bearing connections active
	// in each communication phase — the paper's "correlated traffic along
	// many connections" at phase granularity.
	Coincidence float64
}

// Characterize computes the full report for a run.
func Characterize(res *Result) *Report {
	tr := res.Trace
	rep := &Report{
		Program:         res.Config.Program,
		AggSize:         analysis.SizeStats(tr),
		AggInterarrival: analysis.InterarrivalStats(tr),
		AggKBps:         analysis.AverageBandwidthKBps(tr),
		SizeModes:       analysis.ModeCount(tr, 0.005),
	}
	rep.AggSeries, rep.SeriesDT = analysis.BinnedBandwidth(tr, analysis.PaperWindow)
	rep.AggSpectrum = analysis.SpectrumOfSeries(rep.AggSeries, rep.SeriesDT)

	if res.RepConn[0] >= 0 {
		conn := tr.Connection(res.RepConn[0], res.RepConn[1])
		rep.ConnSize = analysis.SizeStats(conn)
		rep.ConnInterarrival = analysis.InterarrivalStats(conn)
		rep.ConnKBps = analysis.AverageBandwidthKBps(conn)
		rep.ConnSeries, _ = analysis.BinnedBandwidth(conn, analysis.PaperWindow)
		rep.ConnSpectrum = analysis.SpectrumOfSeries(rep.ConnSeries, rep.SeriesDT)
	}

	// Correlation over the data-bearing host-to-host connections.
	var pairs [][2]int
	for _, pr := range tr.Pairs() {
		if pr[1] != 0xFF { // skip broadcast pseudo-destination
			pairs = append(pairs, pr)
		}
	}
	if len(pairs) > 1 {
		// Burst-level bins: at the 10 ms scale the shared medium
		// serializes connections (mutual exclusion looks like
		// anti-correlation); the paper's in-phase claim is about
		// communication phases, so correlate at 250 ms.
		rep.Correlation = analysis.ConnectionCorrelation(tr, pairs, 250*sim.Millisecond)
	}

	// Phase coincidence over TCP-data connections only (daemon
	// keepalives would dilute it).
	data := tr.Filter(func(p trace.Packet) bool {
		return p.Proto == ethernet.ProtoTCP && p.Flags&ethernet.FlagData != 0
	})
	var dataPairs [][2]int
	for _, pr := range data.Pairs() {
		dataPairs = append(dataPairs, pr)
	}
	if len(dataPairs) > 1 {
		rep.Coincidence = analysis.PhaseCoincidence(data, dataPairs, 100*sim.Millisecond)
	}
	return rep
}
