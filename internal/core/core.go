// Package core orchestrates the paper's experiments end to end: it
// assembles the simulated testbed (a shared 10 Mb/s Ethernet of
// workstations with a passive monitor in promiscuous mode), launches an
// Fx program over PVM, captures the packet trace, and computes the
// characterizations of the paper's figures.
package core

import (
	"fmt"
	"math"

	"fxnet/internal/airshed"
	"fxnet/internal/analysis"
	"fxnet/internal/dsp"
	"fxnet/internal/ethernet"
	"fxnet/internal/faults"
	"fxnet/internal/fx"
	"fxnet/internal/kernels"
	"fxnet/internal/netstack"
	"fxnet/internal/pvm"
	"fxnet/internal/qos"
	"fxnet/internal/sim"
	"fxnet/internal/trace"
)

// Airshed is the registry name of the AIRSHED application (the kernels
// have their own registry in the kernels package).
const Airshed = "airshed"

// qosCapacityBps is the usable shared-segment capacity assumed by the
// degraded-team renegotiation, bytes/s: 10 Mb/s derated by framing and
// CSMA/CD overhead (the §7.3 experiments' calibration).
const qosCapacityBps = 1.1e6

// ProgramNames lists every runnable program.
func ProgramNames() []string {
	return append(kernels.Names(), Airshed)
}

// RunConfig configures one measured run.
type RunConfig struct {
	// Program is a kernel name ("sor", "2dfft", "t2dfft", "seq", "hist")
	// or "airshed".
	Program string
	// P is the processor count; 0 selects the paper's default (4).
	P int
	// Params override the kernel parameters; zero-valued fields keep the
	// paper defaults. Ignored for airshed.
	Params kernels.Params
	// AirshedParams override the AIRSHED dimensions; a zero value keeps
	// the paper configuration.
	AirshedParams airshed.Params
	// Seed drives all simulation randomness.
	Seed int64
	// BitRate of the shared segment; 0 selects 10 Mb/s.
	BitRate float64
	// Cost overrides the cost model; nil derives the calibrated model.
	Cost *fx.CostModel
	// DisableDesched removes OS-stall injection (for exact-period
	// ablations).
	DisableDesched bool
	// ForceCopyLoop (for the fragment-packing ablation) makes every
	// kernel use single-fragment copy-loop sends; ForceFragments makes
	// kernels use fragment sends. At most one may be set.
	ForceCopyLoop  bool
	ForceFragments bool
	// Net overrides transport parameters; zero keeps defaults.
	Net netstack.Config
	// KeepaliveInterval for PVM daemons; 0 keeps the default 2 s.
	KeepaliveInterval sim.Duration
	// FrameLossProb injects FCS corruption: each frame is independently
	// lost with this probability, and TCP recovers by retransmission.
	FrameLossProb float64
	// Switched replaces the shared collision domain with a store-and-
	// forward full-duplex switch (capture then models a SPAN port) — the
	// modernization ablation.
	Switched bool
	// Nagle enables sender-side coalescing. PVM sets TCP_NODELAY, so the
	// measured configuration leaves it off; turning it on shows how
	// coalescing would erase the fragment and per-element message
	// signatures.
	Nagle bool
	// CrossTrafficKBps injects a VBR-video-like background flow of the
	// given mean rate from an extra host toward alpha0, contending with
	// the program for the medium.
	CrossTrafficKBps float64
	// GuaranteeProgram (switched only) gives the program's connections
	// strict priority over best-effort cross traffic — the QoS guarantee
	// the paper's introduction motivates.
	GuaranteeProgram bool
	// FaultScript is a deterministic scheduled fault script (see
	// faults.Parse), e.g. "5s:linkdown host2,7s:linkup host2". Parsed
	// into a schedule when Faults is nil.
	FaultScript string
	// Faults is the parsed fault schedule; it takes precedence over
	// FaultScript.
	Faults *faults.Schedule
	// Degrade re-forms the team on the surviving hosts when a host is
	// detected dead, renegotiating the processor count through the §7.3
	// QoS model, instead of aborting the program.
	Degrade bool
	// HeartbeatMisses overrides the PVM failure-detection threshold K;
	// 0 keeps the default (3 when a fault schedule is active, disabled
	// otherwise, matching the measured-era daemons).
	HeartbeatMisses int
	// Topology, when non-nil, replaces the single shared segment with a
	// multi-segment bridged LAN: named segments with per-segment bit
	// rates, hosts pinned to segments, learning bridges relaying frames
	// over latency-only trunks. Runs are then eligible for conservative
	// parallel execution (see RunOpts.PDES); serial and parallel produce
	// byte-identical traces. Nil keeps the paper's shared segment and
	// leaves every existing run key and golden digest unchanged.
	Topology *Topology
}

// Result is a completed measured run.
type Result struct {
	Config   RunConfig
	Trace    *trace.Trace
	Elapsed  sim.Time
	SegStats ethernet.Stats
	Workers  []*fx.Worker
	// RepConn is the representative connection (src, dst host) for the
	// program, or (-1, -1).
	RepConn [2]int
	// Team is the final team generation (the launched team when no
	// degradation occurred).
	Team *fx.Team
	// RunErr is the first worker failure when the program aborted under
	// faults (nil for successful runs, including degraded ones). A run
	// that aborts cleanly is a valid measurement, not a Run error.
	RunErr *fx.RunError
	// Engine carries the conservative parallel engine's scheduling
	// counters for topology runs (zero-valued for single-segment runs
	// and results served from the cache).
	Engine sim.EngineStats
}

// PDESMode selects how a multi-segment run's partitions advance.
type PDESMode int

const (
	// PDESAuto runs partitions in parallel when the machine has more
	// than one CPU and the topology has more than one segment.
	PDESAuto PDESMode = iota
	// PDESSerial runs the partitioned engine on one goroutine — the
	// byte-identical baseline parallel mode is verified against.
	PDESSerial
	// PDESParallel forces one worker goroutine per segment partition.
	PDESParallel
)

// RunOpts carries execution options that do not affect result bytes —
// deliberately outside RunConfig so they never enter cache keys or
// canonical encodings.
type RunOpts struct {
	// PDES selects serial or parallel partition execution for topology
	// runs. Ignored (harmlessly) for single-segment runs.
	PDES PDESMode
}

// Run executes one experiment to completion and returns the captured
// trace and run metadata.
func Run(cfg RunConfig) (*Result, error) {
	res, _, err := run(cfg, false, RunOpts{})
	return res, err
}

// RunWithOpts is Run with explicit execution options.
func RunWithOpts(cfg RunConfig, opts RunOpts) (*Result, error) {
	res, _, err := run(cfg, false, opts)
	return res, err
}

// RunStreamWithOpts is RunStream with explicit execution options.
func RunStreamWithOpts(cfg RunConfig, opts RunOpts) (*Result, *Report, error) {
	return run(cfg, true, opts)
}

// RunStream executes one experiment with streaming analysis: the
// capture is not retained — packets fold into a StreamCharacterizer as
// they cross the wire — and the characterization arrives with the run.
// The Result's Trace carries only the session metadata (hosts,
// experiment parameters, marks) with no packets, so a million-packet
// run costs O(windows) analysis memory. See internal/analysis for the
// exactness contract relative to Characterize.
func RunStream(cfg RunConfig) (*Result, *Report, error) {
	return run(cfg, true, RunOpts{})
}

// run is the shared body of Run and RunStream.
func run(cfg RunConfig, stream bool, opts RunOpts) (*Result, *Report, error) {
	spec, isKernel := kernels.Lookup(cfg.Program)
	if !isKernel && cfg.Program != Airshed {
		return nil, nil, fmt.Errorf("core: unknown program %q (have %v)", cfg.Program, ProgramNames())
	}
	if cfg.ForceCopyLoop && cfg.ForceFragments {
		return nil, nil, fmt.Errorf("core: ForceCopyLoop and ForceFragments both set")
	}
	if cfg.Topology != nil {
		return runTopology(cfg, stream, opts, spec, isKernel)
	}
	schedule := cfg.Faults
	if schedule == nil && cfg.FaultScript != "" {
		s, err := faults.Parse(cfg.FaultScript)
		if err != nil {
			return nil, nil, err
		}
		schedule = s
	}
	faulty := !schedule.Empty()

	p := cfg.P
	if p == 0 {
		if isKernel {
			p = spec.P
		} else {
			p = 4
		}
	}

	k := sim.New(cfg.Seed)
	var (
		medium   ethernet.TrafficSource
		attach   func(name string) ethernet.Port
		segStats func() ethernet.Stats
	)
	if cfg.Switched {
		sw := ethernet.NewSwitch(k, cfg.BitRate, 10*sim.Microsecond)
		medium = sw
		attach = func(name string) ethernet.Port { return sw.Attach(name) }
		segStats = func() ethernet.Stats { return ethernet.Stats{Frames: sw.Delivered, Bytes: sw.DeliveredBytes} }
		if cfg.FrameLossProb > 0 {
			return nil, nil, fmt.Errorf("core: frame loss injection is only modeled on the shared segment")
		}
	} else {
		seg := ethernet.NewSegment(k, cfg.BitRate)
		if cfg.FrameLossProb > 0 {
			seg.SetDropProb(cfg.FrameLossProb)
		}
		medium = seg
		attach = func(name string) ethernet.Port { return seg.Attach(name) }
		segStats = seg.Stats
	}
	netCfg := cfg.Net
	if netCfg.SendWindow == 0 {
		netCfg = netstack.DefaultConfig()
	}
	if cfg.Nagle {
		netCfg.Nagle = true
	}
	if faulty {
		// Faults need bounded retries; the measured-era infinite-retry
		// transport would hang forever on a dead peer.
		if netCfg.MaxRetransmits == 0 {
			netCfg.MaxRetransmits = 8
		}
		if netCfg.ConnectTimeout == 0 {
			netCfg.ConnectTimeout = 30 * sim.Second
		}
	}
	hosts := make([]*netstack.Host, p)
	names := make([]string, 0, p+1)
	for i := range hosts {
		st := attach(fmt.Sprintf("alpha%d", i))
		hosts[i] = netstack.NewHost(k, st, st.Name(), netCfg)
		names = append(names, st.Name())
	}
	// The measurement workstation: attached, promiscuous, silent.
	attach("monitor")
	names = append(names, "monitor")
	col := trace.Capture(medium)

	if cfg.GuaranteeProgram {
		sw, ok := medium.(*ethernet.Switch)
		if !ok {
			return nil, nil, fmt.Errorf("core: GuaranteeProgram requires Switched")
		}
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				if i != j {
					sw.Guarantee(i, j)
				}
			}
		}
	}

	var crossHost *netstack.Host
	if cfg.CrossTrafficKBps > 0 {
		st := attach("video")
		names = append(names, "video")
		crossHost = netstack.NewHost(k, st, "video", netCfg)
	}

	pvmCfg := pvm.DefaultConfig()
	if cfg.KeepaliveInterval != 0 {
		pvmCfg.KeepaliveInterval = cfg.KeepaliveInterval
	} else if faulty {
		// Failure detection latency is misses × keepalive interval; the
		// sparse 30 s measured-era cadence would stretch every faulty
		// run by minutes of virtual time.
		pvmCfg.KeepaliveInterval = sim.Second
	}
	if cfg.HeartbeatMisses != 0 {
		pvmCfg.HeartbeatMisses = cfg.HeartbeatMisses
	} else if faulty {
		pvmCfg.HeartbeatMisses = 3
	}
	if faulty {
		if pvmCfg.ConnectRetries == 0 {
			pvmCfg.ConnectRetries = 3
		}
		if pvmCfg.ConnectBackoff == 0 {
			pvmCfg.ConnectBackoff = 250 * sim.Millisecond
		}
	}
	machine := pvm.NewMachine(k, hosts, pvmCfg)

	team, repConn, progName := launchTeam(cfg, machine, spec, isKernel, p)

	if faulty {
		hooks := faults.Hooks{
			HostIndex: func(name string) (int, bool) {
				for i := range hosts {
					if name == fmt.Sprintf("alpha%d", i) ||
						name == fmt.Sprintf("host%d", i) ||
						name == fmt.Sprint(i) {
						return i, true
					}
				}
				return 0, false
			},
			Crash:   machine.KillHost,
			Restart: machine.RestartHost,
			Stall: func(host int, d sim.Duration) {
				team.Final().StallHost(host, d)
			},
			Annotate: func(at sim.Time, f faults.Fault) {
				col.Trace().AddMark(at, f.String())
			},
		}
		// Wire faults only on the shared segment: a switched fabric has
		// no single collision domain, so link-level faults are rejected
		// by Apply's validation rather than silently ignored.
		if seg, ok := medium.(*ethernet.Segment); ok {
			hooks.LinkDown = seg.SetLinkDown
			hooks.SegmentDown = seg.SetSegmentDown
			hooks.Partition = seg.SetPartition
			hooks.Heal = seg.Heal
			hooks.BitRate = seg.SetBitRate
			hooks.Duplicate = seg.SetDuplicateProb
			hooks.Reorder = seg.SetReorderProb
		}
		if err := faults.Apply(k, schedule, hooks); err != nil {
			return nil, nil, err
		}
	}

	if crossHost != nil {
		startCrossTraffic(k, crossHost, hosts[0].Addr(), cfg.CrossTrafficKBps, team)
	}

	// Streaming analysis: fold packets into the characterization as they
	// are captured, and keep none of them. Attached here — after the
	// representative connection is known, before any packet flows.
	var sc *analysis.StreamCharacterizer
	if stream {
		sc = analysis.NewStreamCharacterizer(cfg.Program, repConn)
		col.SetRetain(false)
		col.AddSink(sc)
	}

	elapsed := k.Run()
	final, runErr, err := finishTeam(team, progName, cfg.Program, elapsed)
	if err != nil {
		return nil, nil, err
	}

	var rep *Report
	if stream {
		col.Flush()
		rep = sc.Report()
	}

	tr := col.Trace()
	tr.Hosts = names
	tr.Meta["program"] = cfg.Program
	tr.Meta["P"] = fmt.Sprint(p)
	tr.Meta["seed"] = fmt.Sprint(cfg.Seed)
	if faulty {
		tr.Meta["faults"] = schedule.String()
		tr.Meta["finalP"] = fmt.Sprint(len(final.Workers))
	}

	return &Result{
		Config:   cfg,
		Trace:    tr,
		Elapsed:  elapsed,
		SegStats: segStats(),
		Workers:  final.Workers,
		RepConn:  repConn,
		Team:     final,
		RunErr:   runErr,
	}, rep, nil
}

// launchTeam builds the cost model and launches the Fx program over the
// machine, returning the team, the representative connection, and the
// program's registry name. Shared by the single-segment and topology
// runners.
func launchTeam(cfg RunConfig, machine *pvm.Machine, spec kernels.Spec, isKernel bool, p int) (*fx.Team, [2]int, string) {
	cost := buildCost(cfg, spec, isKernel)
	repConn := [2]int{-1, -1}
	opts := fx.Opts{P: p, Cost: cost, Degrade: cfg.Degrade}
	var team *fx.Team
	if isKernel {
		params := spec.Params
		if cfg.Params.N != 0 {
			params.N = cfg.Params.N
		}
		if cfg.Params.Iters != 0 {
			params.Iters = cfg.Params.Iters
		}
		useFrags := spec.UseFragments
		if cfg.ForceCopyLoop {
			useFrags = false
		}
		if cfg.ForceFragments {
			useFrags = true
		}
		repConn = spec.RepresentativeConn
		run := spec.Run
		coalesce := cfg.ForceCopyLoop
		opts.Name = spec.Name
		if cfg.Degrade && spec.QoS != nil {
			// Degradation is the §7.3 negotiation run in reverse: hand
			// the network the program's [l(), b(), c] and let it pick
			// the post-fault processor count.
			prog := spec.QoS(params)
			net := qos.NewNetwork(qosCapacityBps)
			opts.Renegotiate = func(maxP int) int {
				off, err := net.Negotiate(prog, maxP)
				if err != nil {
					return maxP
				}
				return off.P
			}
		}
		team = fx.LaunchOpts(machine, opts, func(w *fx.Worker) {
			w.UseFragments = useFrags
			w.CoalesceFragments = coalesce
			run(w, params)
		})
	} else {
		ap := cfg.AirshedParams
		if ap.Layers == 0 {
			ap = airshed.PaperParams()
		}
		repConn = [2]int{1, 0}
		opts.Name = Airshed
		team = fx.LaunchOpts(machine, opts, func(w *fx.Worker) {
			airshed.Run(w, ap)
		})
	}
	return team, repConn, opts.Name
}

// finishTeam classifies the team's final state after the simulation
// drained: done, aborted (a fault measurement), killed without an abort
// record, or deadlocked (an error).
func finishTeam(team *fx.Team, progName, program string, elapsed sim.Time) (*fx.Team, *fx.RunError, error) {
	final := team.Final()
	switch {
	case final.Done():
		return final, nil, nil
	case final.Failed():
		return final, final.Err(), nil
	case final.Finished():
		// A worker was killed without any survivor recording an abort:
		// either the whole machine crashed, or (in a pipeline kernel)
		// the survivors had already finished their part and never
		// needed to talk to the dead rank again. Its output is lost
		// either way, so the run still reports a fault.
		return final, &fx.RunError{
			Program: progName, Rank: -1, Phase: "killed",
			Err: fmt.Errorf("worker killed by host fault before completing"),
		}, nil
	default:
		return nil, nil, fmt.Errorf("core: %s did not complete (deadlock at %v)", program, elapsed)
	}
}

// CalibratedCost returns the calibrated cost model for a program, as a
// starting point for ablations that perturb it.
func CalibratedCost(program string) (fx.CostModel, error) {
	spec, isKernel := kernels.Lookup(program)
	if !isKernel && program != Airshed {
		return fx.CostModel{}, fmt.Errorf("core: unknown program %q", program)
	}
	return buildCost(RunConfig{Program: program}, spec, isKernel), nil
}

// startCrossTraffic spawns a VBR-video-like background sender: 30 frames
// per second, lognormal frame sizes around the target mean rate, each
// frame packetized as UDP toward dst. It stops when the program finishes.
func startCrossTraffic(k *sim.Kernel, h *netstack.Host, dst int, kbps float64, team *fx.Team) {
	rng := k.Rand("core.crosstraffic")
	const fps = 30
	meanFrame := kbps * 1000 / fps
	k.Go("crosstraffic", func(p *sim.Proc) {
		for !team.Done() {
			size := int(meanFrame * math.Exp(0.4*rng.NormFloat64()-0.08))
			for size > 0 {
				chunk := min(size, 1400)
				h.SendUDP(dst, 4000, 4000, make([]byte, chunk))
				size -= chunk
			}
			p.Sleep(sim.DurationOf(1.0 / fps))
		}
	})
}

// buildCost derives the calibrated cost model for the program.
func buildCost(cfg RunConfig, spec kernels.Spec, isKernel bool) fx.CostModel {
	if cfg.Cost != nil {
		return *cfg.Cost
	}
	cost := fx.DefaultCostModel()
	rates := make(map[string]float64)
	if isKernel {
		for k, v := range spec.Rates {
			rates[k] = v
		}
	} else {
		for k, v := range airshed.Rates {
			rates[k] = v
		}
	}
	cost.Rates = rates
	if cfg.DisableDesched {
		cost.DeschedProb = 0
	}
	return cost
}

// Report is the per-program characterization of the paper's figures 3–7
// (and 8–11 for AIRSHED). It lives in internal/analysis so both the
// trace-derived and streaming characterizers can produce it; the alias
// keeps core the orchestration façade.
type Report = analysis.Report

// Characterize computes the full report for a run.
func Characterize(res *Result) *Report {
	return analysis.CharacterizeTrace(res.Trace, res.Config.Program, res.RepConn)
}

// CharacterizePool is Characterize with the report's independent
// sections (and the per-connection correlation scans) fanned out over a
// worker pool. The result is byte-identical to Characterize for any
// pool size.
func CharacterizePool(res *Result, pool *dsp.Pool) *Report {
	return analysis.CharacterizeTracePool(res.Trace, res.Config.Program, res.RepConn, pool)
}

// RepConn returns the representative connection the paper plots for a
// program, or (-1, -1) when the program is unknown — the offline
// analyses' way to characterize a trace file the same way a live run
// would be.
func RepConn(program string) [2]int {
	if spec, ok := kernels.Lookup(program); ok {
		return spec.RepresentativeConn
	}
	if program == Airshed {
		return [2]int{1, 0}
	}
	return [2]int{-1, -1}
}
