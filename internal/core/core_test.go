package core

import (
	"testing"

	"fxnet/internal/airshed"
	"fxnet/internal/ethernet"
	"fxnet/internal/kernels"
	"fxnet/internal/sim"
	"fxnet/internal/trace"
)

// smallRun runs a program with reduced size for fast tests.
func smallRun(t *testing.T, program string) *Result {
	t.Helper()
	cfg := RunConfig{Program: program, Seed: 1}
	if program == Airshed {
		cfg.AirshedParams = airshed.Params{Layers: 4, Species: 5, Grid: 64, Steps: 2, Hours: 2, Band: 4}
	} else {
		cfg.Params = kernels.Params{N: 32, Iters: 5}
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v", program, err)
	}
	return res
}

func TestRunAllProgramsSmall(t *testing.T) {
	for _, name := range ProgramNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			res := smallRun(t, name)
			if res.Trace.Len() == 0 {
				t.Fatal("no packets captured")
			}
			if res.Elapsed <= 0 {
				t.Fatal("no virtual time elapsed")
			}
			if res.Trace.Meta["program"] != name {
				t.Errorf("meta = %v", res.Trace.Meta)
			}
			// Host table includes the P workers plus the monitor.
			if len(res.Trace.Hosts) != 5 {
				t.Errorf("hosts = %v", res.Trace.Hosts)
			}
			if res.Trace.Hosts[4] != "monitor" {
				t.Errorf("last host = %q", res.Trace.Hosts[4])
			}
		})
	}
}

func TestUnknownProgram(t *testing.T) {
	if _, err := Run(RunConfig{Program: "nope"}); err == nil {
		t.Error("unknown program accepted")
	}
}

func TestConflictingPackingFlags(t *testing.T) {
	if _, err := Run(RunConfig{Program: "sor", ForceCopyLoop: true, ForceFragments: true}); err == nil {
		t.Error("conflicting flags accepted")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := smallRun(t, "2dfft")
	b := smallRun(t, "2dfft")
	if a.Trace.Len() != b.Trace.Len() || a.Elapsed != b.Elapsed {
		t.Fatalf("nondeterministic: %d/%v vs %d/%v", a.Trace.Len(), a.Elapsed, b.Trace.Len(), b.Elapsed)
	}
	for i := range a.Trace.Packets {
		if a.Trace.Packets[i] != b.Trace.Packets[i] {
			t.Fatalf("trace diverges at packet %d", i)
		}
	}
}

func TestSeedChangesTrace(t *testing.T) {
	a := smallRun(t, "sor")
	cfg := RunConfig{Program: "sor", Seed: 2, Params: kernels.Params{N: 32, Iters: 5}}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Elapsed virtual time is quantized by the final daemon keepalive
	// tick, so compare the last packet timestamps instead.
	lastA := a.Trace.Packets[a.Trace.Len()-1].Time
	lastB := b.Trace.Packets[b.Trace.Len()-1].Time
	if lastA == lastB {
		t.Error("different seeds produced identical traces (jitter not applied?)")
	}
}

func TestCharacterizeReport(t *testing.T) {
	res := smallRun(t, "2dfft")
	rep := Characterize(res)
	if rep.AggSize.N != res.Trace.Len() {
		t.Errorf("AggSize.N = %d", rep.AggSize.N)
	}
	if rep.AggSize.Min < 51 || rep.AggSize.Max > 1518 {
		t.Errorf("size range [%v, %v]", rep.AggSize.Min, rep.AggSize.Max)
	}
	if rep.AggKBps <= 0 {
		t.Error("no aggregate bandwidth")
	}
	if len(rep.AggSeries) == 0 || rep.SeriesDT != 0.01 {
		t.Errorf("series len %d dt %v", len(rep.AggSeries), rep.SeriesDT)
	}
	if rep.AggSpectrum == nil || len(rep.AggSpectrum.Power) == 0 {
		t.Error("no spectrum")
	}
	// 2DFFT has a representative connection (1 → 0).
	if rep.ConnSize.N == 0 || rep.ConnKBps <= 0 {
		t.Error("no connection characterization")
	}
	if rep.ConnSize.N >= rep.AggSize.N {
		t.Error("connection has as many packets as aggregate")
	}
}

func TestCharacterizeNoRepConn(t *testing.T) {
	res := smallRun(t, "seq")
	rep := Characterize(res)
	if rep.ConnSize.N != 0 {
		t.Error("SEQ should have no representative connection")
	}
	if rep.AggSize.N == 0 {
		t.Error("no aggregate stats")
	}
}

func TestRepresentativeConnections(t *testing.T) {
	for _, name := range []string{"sor", "2dfft", "t2dfft"} {
		res := smallRun(t, name)
		if res.RepConn[0] < 0 {
			t.Errorf("%s has no representative connection", name)
		}
		conn := res.Trace.Connection(res.RepConn[0], res.RepConn[1])
		if conn.Len() == 0 {
			t.Errorf("%s representative connection %v is empty", name, res.RepConn)
		}
	}
	for _, name := range []string{"seq", "hist"} {
		res := smallRun(t, name)
		if res.RepConn[0] >= 0 {
			t.Errorf("%s unexpectedly has representative connection", name)
		}
	}
}

func TestPacketSizesWithinEthernetBounds(t *testing.T) {
	for _, name := range ProgramNames() {
		res := smallRun(t, name)
		for _, p := range res.Trace.Packets {
			if p.Size < 51 || p.Size > 1518 {
				t.Fatalf("%s: packet size %d out of range", name, p.Size)
			}
		}
	}
}

func TestDaemonTrafficPresent(t *testing.T) {
	// With a short keepalive, UDP daemon traffic shows up in the trace.
	cfg := RunConfig{
		Program:           "sor",
		Seed:              1,
		Params:            kernels.Params{N: 32, Iters: 200},
		KeepaliveInterval: 100 * sim.Millisecond,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	udp := res.Trace.Filter(func(p trace.Packet) bool { return p.Proto == ethernet.ProtoUDP })
	if udp.Len() == 0 {
		t.Error("no PVM daemon UDP traffic captured")
	}
}

func TestSwitchedMedium(t *testing.T) {
	cfg := RunConfig{Program: "2dfft", Seed: 1, Params: kernels.Params{N: 32, Iters: 5}, Switched: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Len() == 0 {
		t.Fatal("no packets on switched medium")
	}
	shared := smallRun(t, "2dfft")
	// The kernel is verified elsewhere; here the switched run must simply
	// carry the same payload volume (same program, same data).
	if got, want := res.Trace.TotalBytes(), shared.Trace.TotalBytes(); got < want*9/10 || got > want*11/10 {
		t.Errorf("switched bytes %d far from shared %d", got, want)
	}
}

func TestSwitchedRejectsLossInjection(t *testing.T) {
	if _, err := Run(RunConfig{Program: "sor", Switched: true, FrameLossProb: 0.1}); err == nil {
		t.Error("switched + loss accepted")
	}
}

func TestFrameLossRun(t *testing.T) {
	cfg := RunConfig{Program: "sor", Seed: 1, Params: kernels.Params{N: 32, Iters: 10}, FrameLossProb: 0.05}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SegStats.Corrupted == 0 {
		t.Error("no corrupted frames recorded")
	}
	// Run would have returned an error had the loss deadlocked the
	// program; reaching here means TCP recovered everything.
}

func TestNagleRun(t *testing.T) {
	off, err := Run(RunConfig{Program: "seq", Seed: 1, Params: kernels.Params{N: 16, Iters: 1}})
	if err != nil {
		t.Fatal(err)
	}
	on, err := Run(RunConfig{Program: "seq", Seed: 1, Params: kernels.Params{N: 16, Iters: 1}, Nagle: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.Trace.Len() >= off.Trace.Len() {
		t.Errorf("Nagle did not reduce packets: %d vs %d", on.Trace.Len(), off.Trace.Len())
	}
}

func TestCrossTraffic(t *testing.T) {
	quiet, err := Run(RunConfig{Program: "sor", Seed: 1, Params: kernels.Params{N: 32, Iters: 5}})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Run(RunConfig{
		Program: "sor", Seed: 1, Params: kernels.Params{N: 32, Iters: 5},
		CrossTrafficKBps: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Background UDP from the extra "video" host shows up.
	bg := loaded.Trace.Filter(func(p trace.Packet) bool {
		return p.Proto == ethernet.ProtoUDP && p.SrcPort == 4000
	})
	if bg.Len() == 0 {
		t.Fatal("no cross traffic captured")
	}
	if loaded.Trace.Len() <= quiet.Trace.Len() {
		t.Error("cross traffic did not add packets")
	}
	if got := loaded.Trace.Hosts[len(loaded.Trace.Hosts)-1]; got != "video" {
		t.Errorf("last host = %q", got)
	}
}

func TestGuaranteeRequiresSwitch(t *testing.T) {
	if _, err := Run(RunConfig{Program: "sor", GuaranteeProgram: true}); err == nil {
		t.Error("guarantee without switch accepted")
	}
}

func TestGuaranteeOnSwitchRuns(t *testing.T) {
	res, err := Run(RunConfig{
		Program: "sor", Seed: 1, Params: kernels.Params{N: 32, Iters: 5},
		Switched: true, GuaranteeProgram: true, CrossTrafficKBps: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Len() == 0 {
		t.Fatal("no traffic")
	}
}
