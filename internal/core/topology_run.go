package core

import (
	"fmt"
	"hash/fnv"
	"runtime"

	"fxnet/internal/analysis"
	"fxnet/internal/ethernet"
	"fxnet/internal/kernels"
	"fxnet/internal/netstack"
	"fxnet/internal/pvm"
	"fxnet/internal/sim"
	"fxnet/internal/trace"
)

// partitionSeed derives a segment partition's kernel seed from the run
// seed and the segment name, so each partition draws independent random
// streams that do not depend on segment order.
func partitionSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte("topology/" + name))
	return seed ^ int64(h.Sum64())
}

// mergedTaps adapts the barrier-merged multi-segment capture stream to
// the TrafficSource interface trace.Capture expects: registered taps
// receive the globally time-ordered capture sequence.
type mergedTaps struct {
	fns []func(ethernet.Capture)
}

func (m *mergedTaps) Tap(fn func(ethernet.Capture)) { m.fns = append(m.fns, fn) }

// runTopology is the multi-segment counterpart of run: it partitions the
// simulation by segment — one kernel per segment, hosts attached to
// their pinned segment's kernel — and drives the partitions through the
// conservative engine. Frames crossing segments travel bridge → trunk
// (engine Send with the summed trunk latencies) → peer bridge. Captures
// are buffered per segment and merged into one collector at each
// barrier in (time, segment) order, which is a total order because
// every partition has already executed past the merged window.
//
// Serial and parallel execution run the identical window/barrier
// schedule, so they produce byte-identical traces; the choice lives in
// RunOpts, never in RunConfig, because it must not enter cache keys.
func runTopology(cfg RunConfig, stream bool, opts RunOpts, spec kernels.Spec, isKernel bool) (*Result, *Report, error) {
	topo := cfg.Topology

	// Features tied to the single shared segment (or to cross-partition
	// mutation outside barriers) are rejected up front rather than
	// silently ignored.
	switch {
	case cfg.Switched:
		return nil, nil, fmt.Errorf("core: Topology and Switched are mutually exclusive")
	case cfg.FrameLossProb > 0:
		return nil, nil, fmt.Errorf("core: frame loss injection is not modeled on multi-segment topologies")
	case cfg.FaultScript != "" || !cfg.Faults.Empty():
		return nil, nil, fmt.Errorf("core: fault injection is not supported on multi-segment topologies")
	case cfg.Degrade:
		return nil, nil, fmt.Errorf("core: Degrade is not supported on multi-segment topologies")
	case cfg.CrossTrafficKBps > 0:
		return nil, nil, fmt.Errorf("core: cross traffic is not supported on multi-segment topologies")
	case cfg.GuaranteeProgram:
		return nil, nil, fmt.Errorf("core: GuaranteeProgram requires Switched")
	case cfg.HeartbeatMisses != 0:
		return nil, nil, fmt.Errorf("core: heartbeat failure detection is not supported on multi-segment topologies")
	}

	p := cfg.P
	if p == 0 {
		if isKernel {
			p = spec.P
		} else {
			p = 4
		}
	}
	if err := topo.ValidateFor(p); err != nil {
		return nil, nil, err
	}

	nSeg := len(topo.Segments)
	parts := make([]*sim.Kernel, nSeg)
	delay := make([]sim.Duration, nSeg)
	for i := range parts {
		parts[i] = sim.New(partitionSeed(cfg.Seed, topo.Segments[i].Name))
		delay[i] = topo.trunkLatency(i)
	}
	var eng *sim.Engine
	if nSeg > 1 {
		// Per-pair horizons: each partition pair advances independently
		// up to its own trunk-path bound, so one low-latency trunk no
		// longer serializes the whole topology.
		eng = sim.NewEngineMatrix(parts, topo.LookaheadMatrix())
	} else {
		eng = sim.NewEngine(parts, 0)
	}

	segOf := topo.segmentOf()
	segs := make([]*ethernet.Segment, nSeg)
	for i := range segs {
		rate := topo.Segments[i].BitRate
		if rate == 0 {
			rate = cfg.BitRate
		}
		segs[i] = ethernet.NewSegment(parts[i], rate)
		i := i
		// Captures record only frames addressed into this segment
		// (broadcasts always pass), so a frame relayed across several
		// segments is counted once, at its destination — matching what
		// a monitor on that segment would keep after address filtering.
		segs[i].SetTapFilter(func(dst int) bool {
			s, ok := segOf[dst]
			return ok && s == i
		})
	}

	// Bridges and trunks. A frame leaving segment i for segment j is
	// timestamped now + delay[i] + delay[j] ≥ window start + lookahead,
	// which is exactly the conservative contract the engine enforces.
	bridges := make([]*ethernet.Bridge, nSeg)
	for i := range bridges {
		i := i
		bridges[i] = ethernet.NewBridge(segs[i], i, nSeg, p, func(dstSeg int, f *ethernet.Frame) {
			src := i
			at := parts[src].Now().Add(delay[src] + delay[dstSeg])
			eng.Send(src, dstSeg, at, "trunk", func() {
				bridges[dstSeg].DeliverFromTrunk(src, f)
			})
		})
	}

	netCfg := cfg.Net
	if netCfg.SendWindow == 0 {
		netCfg = netstack.DefaultConfig()
	}
	if cfg.Nagle {
		netCfg.Nagle = true
	}

	// Hosts keep their global indexes as station addresses, so traces
	// read identically to single-segment runs.
	hosts := make([]*netstack.Host, p)
	names := make([]string, 0, p+1)
	for h := 0; h < p; h++ {
		si := segOf[h]
		name := fmt.Sprintf("alpha%d", h)
		st := segs[si].AttachID(name, h)
		hosts[h] = netstack.NewHost(parts[si], st, name, netCfg)
		names = append(names, name)
	}
	names = append(names, "monitor")

	// Per-segment capture buffers, merged at each barrier up to the
	// engine's watermark. Partitions now advance to different horizons,
	// so a buffer may hold captures newer than another partition's
	// progress — but every event still to run anywhere is at or after
	// the watermark, so draining strictly below it yields the global
	// (time, segment) order; the remainder waits for a later barrier.
	capBuf := make([][]ethernet.Capture, nSeg)
	mt := &mergedTaps{}
	for i := range segs {
		i := i
		segs[i].Tap(func(c ethernet.Capture) {
			capBuf[i] = append(capBuf[i], c)
		})
	}
	col := trace.Capture(mt)
	cur := make([]int, nSeg)
	eng.OnBarrier(func(watermark sim.Time) {
		for i := range cur {
			cur[i] = 0
		}
		for {
			best := -1
			for i := range capBuf {
				// Per-segment buffers are time-ordered, so once a head
				// reaches the watermark the rest of that buffer has too.
				if cur[i] == len(capBuf[i]) || capBuf[i][cur[i]].Time >= watermark {
					continue
				}
				if best < 0 || capBuf[i][cur[i]].Time < capBuf[best][cur[best]].Time {
					best = i
				}
			}
			if best < 0 {
				break
			}
			c := capBuf[best][cur[best]]
			cur[best]++
			for _, fn := range mt.fns {
				fn(c)
			}
		}
		for i := range capBuf {
			if n := cur[i]; n > 0 {
				rest := copy(capBuf[i], capBuf[i][n:])
				capBuf[i] = capBuf[i][:rest]
			}
		}
	})

	pvmCfg := pvm.DefaultConfig()
	if cfg.KeepaliveInterval != 0 {
		pvmCfg.KeepaliveInterval = cfg.KeepaliveInterval
	}
	machine := pvm.NewMachine(parts[0], hosts, pvmCfg)
	if nSeg > 1 {
		// A task exit is physical news: its own partition sees it
		// immediately, and it reaches every other partition one trunk
		// path later through the engine's message path. The signal each
		// partition observes is then a pure function of virtual time —
		// identical in serial and parallel mode, and independent of how
		// the per-pair engine cuts its rounds (see
		// pvm.DistributeExits). A single partition keeps the exact
		// immediate count: there is no cross-partition observer.
		machine.DistributeExits(nSeg,
			func(hostIndex int) int { return segOf[hostIndex] },
			func(srcPart, dstPart int, fn func()) {
				at := parts[srcPart].Now().Add(delay[srcPart] + delay[dstPart])
				eng.Send(srcPart, dstPart, at, "pvm.exit", fn)
			})
	}

	team, repConn, progName := launchTeam(cfg, machine, spec, isKernel, p)

	var sc *analysis.StreamCharacterizer
	if stream {
		sc = analysis.NewStreamCharacterizer(cfg.Program, repConn)
		col.SetRetain(false)
		col.AddSink(sc)
	}

	parallel := false
	switch opts.PDES {
	case PDESParallel:
		parallel = true
	case PDESAuto:
		parallel = nSeg > 1 && runtime.NumCPU() > 1
	}

	elapsed := eng.Run(parallel)
	final, runErr, err := finishTeam(team, progName, cfg.Program, elapsed)
	if err != nil {
		return nil, nil, err
	}

	var rep *Report
	if stream {
		col.Flush()
		rep = sc.Report()
	}

	var segStats ethernet.Stats
	for i := range segs {
		st := segs[i].Stats()
		segStats.Frames += st.Frames
		segStats.Bytes += st.Bytes
		segStats.Collisions += st.Collisions
		segStats.MaxBackoffHit += st.MaxBackoffHit
	}

	tr := col.Trace()
	tr.Hosts = names
	tr.Meta["program"] = cfg.Program
	tr.Meta["P"] = fmt.Sprint(p)
	tr.Meta["seed"] = fmt.Sprint(cfg.Seed)
	tr.Meta["topology"] = topo.Spec()

	return &Result{
		Config:   cfg,
		Trace:    tr,
		Elapsed:  elapsed,
		SegStats: segStats,
		Workers:  final.Workers,
		RepConn:  repConn,
		Team:     final,
		RunErr:   runErr,
		Engine:   eng.Stats(),
	}, rep, nil
}
