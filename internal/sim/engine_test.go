package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// pingPong wires nPart partitions into a ring: each partition's callback
// records (partition, time) in a partition-local log and forwards to the
// next partition after the trunk delay. Partition logs are merged in
// (time, partition) order up to each barrier's watermark — the same
// discipline the topology runner uses for per-segment capture buffers —
// so the returned log is well-defined in both serial and parallel mode.
func pingPong(parallel bool, nPart, rounds int, delay Duration) []string {
	parts := make([]*Kernel, nPart)
	for i := range parts {
		parts[i] = New(int64(i + 1))
	}
	eng := NewEngine(parts, 2*delay)
	type entry struct {
		at   Time
		text string
	}
	local := make([][]entry, nPart)
	var merged []string
	eng.OnBarrier(func(w Time) {
		for {
			best := -1
			for i := range local {
				if len(local[i]) == 0 || local[i][0].at >= w {
					continue
				}
				if best < 0 || local[i][0].at < local[best][0].at {
					best = i
				}
			}
			if best < 0 {
				return
			}
			merged = append(merged, local[best][0].text)
			local[best] = local[best][1:]
		}
	})
	var hop func(src int, n int) func()
	hop = func(src, n int) func() {
		return func() {
			k := parts[src]
			local[src] = append(local[src], entry{k.Now(), fmt.Sprintf("p%d@%d r%d", src, k.Now(), n)})
			if n >= rounds {
				return
			}
			dst := (src + 1) % nPart
			if dst == src {
				// Same-partition traffic stays local, as in the
				// topology runner.
				k.At(k.Now().Add(2*delay), "hop", hop(dst, n+1))
			} else {
				eng.Send(src, dst, k.Now().Add(2*delay), "hop", hop(dst, n+1))
			}
		}
	}
	for i := range parts {
		i := i
		parts[i].At(0, "seed", hop(i, 0))
	}
	eng.Run(parallel)
	return merged
}

func TestEngineSerialParallelIdentical(t *testing.T) {
	for _, nPart := range []int{1, 2, 4} {
		serial := pingPong(false, nPart, 50, Millisecond)
		par := pingPong(true, nPart, 50, Millisecond)
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("nPart=%d: serial and parallel logs differ:\nserial: %v\nparallel: %v", nPart, serial, par)
		}
		if len(serial) != nPart*(50+1) {
			t.Fatalf("nPart=%d: expected %d hops, got %d", nPart, nPart*51, len(serial))
		}
	}
}

func TestEngineBarrierMergeOrder(t *testing.T) {
	// Three partitions all send to partition 0 at the same timestamp;
	// injection order must be (at, src, seq) regardless of the round
	// schedule that delivered them.
	run := func(parallel bool) []string {
		parts := []*Kernel{New(1), New(2), New(3), New(4)}
		eng := NewEngine(parts, 4*Millisecond)
		var got []string
		for src := 1; src <= 3; src++ {
			src := src
			parts[src].At(0, "burst", func() {
				at := parts[src].Now().Add(4 * Millisecond)
				for j := 0; j < 2; j++ {
					src, j := src, j
					eng.Send(src, 0, at, "msg", func() {
						got = append(got, fmt.Sprintf("src%d.%d", src, j))
					})
				}
			})
		}
		eng.Run(parallel)
		return got
	}
	want := []string{"src1.0", "src1.1", "src2.0", "src2.1", "src3.0", "src3.1"}
	for _, parallel := range []bool{false, true} {
		if got := run(parallel); !reflect.DeepEqual(got, want) {
			t.Fatalf("parallel=%v: merge order %v, want %v", parallel, got, want)
		}
	}
}

func TestEngineLookaheadViolationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on lookahead violation")
		}
	}()
	parts := []*Kernel{New(1), New(2)}
	eng := NewEngine(parts, 10*Millisecond)
	parts[0].At(0, "bad", func() {
		// Timestamp inside the current window: history rewrite.
		eng.Send(0, 1, parts[0].Now().Add(Millisecond), "early", func() {})
	})
	eng.Run(false)
}

func TestEnginePairHorizonViolationPanics(t *testing.T) {
	// A message that clears the smallest pairwise bound in the matrix
	// (1 ms, between partitions 0 and 1) but undercuts the bound of the
	// pair it actually travels on (0 → 2, 10 ms) must still panic: the
	// contract is per pair, not global.
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on pair-horizon violation")
		}
	}()
	lat := [][]Duration{
		{0, Millisecond, 10 * Millisecond},
		{Millisecond, 0, 10 * Millisecond},
		{10 * Millisecond, 10 * Millisecond, 0},
	}
	parts := []*Kernel{New(1), New(2), New(3)}
	eng := NewEngineMatrix(parts, lat)
	parts[1].At(0, "keep-busy", func() {}) // partition 1 stays observable
	parts[0].At(0, "bad", func() {
		// 5 ms clears the global minimum (1 ms) but not L[0][2] = 10 ms.
		eng.Send(0, 2, parts[0].Now().Add(5*Millisecond), "early", func() {})
	})
	eng.Run(false)
}

func TestEngineMatrixClosure(t *testing.T) {
	// The matrix is closed over paths: a cheap relay through partition 1
	// tightens the direct 0 → 2 entry from 100 ms to 2 ms, and the
	// closed value is what both the horizon math and the violation check
	// must price.
	lat := [][]Duration{
		{0, Millisecond, 100 * Millisecond},
		{Millisecond, 0, Millisecond},
		{100 * Millisecond, Millisecond, 0},
	}
	eng := NewEngineMatrix([]*Kernel{New(1), New(2), New(3)}, lat)
	if got := eng.Lookahead(0, 2); got != 2*Millisecond {
		t.Fatalf("closed L[0][2] = %v, want %v", got, 2*Millisecond)
	}
	if got := eng.Lookahead(0, 1); got != Millisecond {
		t.Fatalf("closed L[0][1] = %v, want %v", got, Millisecond)
	}
}

func TestEngineAsymmetricPairsDecouple(t *testing.T) {
	// Partitions 0 and 1 exchange traffic every 2 ms over a tight 1 ms
	// pair bound; partition 2 sits behind 200 ms bounds with 100 purely
	// local events. Under the per-pair horizons partition 2 must clear
	// all its work in one round instead of being dragged through the
	// fast pair's lockstep — visible as ActiveSum barely above Windows.
	run := func(parallel bool) ([]string, EngineStats) {
		lat := [][]Duration{
			{0, Millisecond, 200 * Millisecond},
			{Millisecond, 0, 200 * Millisecond},
			{200 * Millisecond, 200 * Millisecond, 0},
		}
		parts := []*Kernel{New(1), New(2), New(3)}
		eng := NewEngineMatrix(parts, lat)
		type entry struct {
			at   Time
			text string
		}
		local := make([][]entry, len(parts))
		var merged []string
		eng.OnBarrier(func(w Time) {
			for {
				best := -1
				for i := range local {
					if len(local[i]) == 0 || local[i][0].at >= w {
						continue
					}
					if best < 0 || local[i][0].at < local[best][0].at {
						best = i
					}
				}
				if best < 0 {
					return
				}
				merged = append(merged, local[best][0].text)
				local[best] = local[best][1:]
			}
		})
		var hop func(src, n int) func()
		hop = func(src, n int) func() {
			return func() {
				k := parts[src]
				local[src] = append(local[src], entry{k.Now(), fmt.Sprintf("p%d@%d", src, k.Now())})
				if n >= 50 {
					return
				}
				eng.Send(src, 1-src, k.Now().Add(2*Millisecond), "hop", hop(1-src, n+1))
			}
		}
		parts[0].At(0, "seed", hop(0, 0))
		for i := 0; i < 100; i++ {
			at := Time(i) * Time(Millisecond)
			parts[2].At(at, "local", func() {
				local[2] = append(local[2], entry{parts[2].Now(), fmt.Sprintf("p2@%d", parts[2].Now())})
			})
		}
		eng.Run(parallel)
		return merged, eng.Stats()
	}
	serial, sst := run(false)
	par, pst := run(true)
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("serial and parallel logs differ:\nserial: %v\nparallel: %v", serial, par)
	}
	if sst != pst {
		t.Fatalf("serial stats %+v != parallel stats %+v", sst, pst)
	}
	if len(serial) != 51+100 {
		t.Fatalf("got %d events, want %d", len(serial), 151)
	}
	// 51 ping-pong hops need ≥ 25 rounds; partition 2 may be active in
	// at most 2 of them (its 99 ms of work fits far inside one 200 ms
	// horizon). A lockstep engine would show ActiveSum ≈ 2×Windows.
	if sst.Windows < 10 {
		t.Fatalf("suspiciously few rounds: %+v", sst)
	}
	if sst.ActiveSum > sst.Windows+2 {
		t.Fatalf("slow partition dragged into lockstep: %+v", sst)
	}
}

func TestEngineNullHorizonRoundTripSafety(t *testing.T) {
	// Partition 1 starts empty; partition 0 has a far-future local event
	// at 10 ms plus a chain that bounces off partition 1 and returns at
	// 4 ms. The demand-driven null horizon must price the round trip
	// (L[0][1] + L[1][0]) so partition 0 does not run to 10 ms before
	// the 4 ms reply lands in its past.
	var log []string
	parts := []*Kernel{New(1), New(2)}
	eng := NewEngine(parts, Millisecond)
	parts[0].At(Time(10*Millisecond), "far", func() {
		log = append(log, "far@10ms")
	})
	parts[0].At(0, "start", func() {
		eng.Send(0, 1, parts[0].Now().Add(2*Millisecond), "ping", func() {
			eng.Send(1, 0, parts[1].Now().Add(2*Millisecond), "pong", func() {
				log = append(log, "pong@4ms")
			})
		})
	})
	eng.Run(false)
	want := []string{"pong@4ms", "far@10ms"}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("log %v, want %v", log, want)
	}
	if st := eng.Stats(); st.NullPublishes == 0 {
		t.Fatalf("expected null horizons to be published: %+v", st)
	}
}

func TestEngineSkipsIdleTime(t *testing.T) {
	// Two partitions with events 1 hour apart: rounds must jump, not
	// crawl in lookahead-sized steps. Executed counts prove only the
	// scheduled events ran.
	parts := []*Kernel{New(1), New(2)}
	eng := NewEngine(parts, Millisecond)
	var fired int
	for i := 0; i < 5; i++ {
		at := Time(i) * Time(Hour)
		parts[i%2].At(at, "sparse", func() { fired++ })
	}
	last := eng.Run(false)
	if fired != 5 {
		t.Fatalf("fired %d of 5", fired)
	}
	if want := Time(4) * Time(Hour); last != want {
		t.Fatalf("final time %v, want %v", last, want)
	}
	st := eng.Stats()
	if st.Windows == 0 || st.Windows > 10 {
		t.Fatalf("unexpected round count: %+v", st)
	}
}

func TestEngineReturnsLastEventTime(t *testing.T) {
	parts := []*Kernel{New(1), New(2)}
	eng := NewEngine(parts, Millisecond)
	parts[0].At(10, "a", func() {})
	parts[1].At(Time(3*Second), "b", func() {})
	if got := eng.Run(true); got != Time(3*Second) {
		t.Fatalf("last event time %v, want %v", got, Time(3*Second))
	}
}

func TestEngineFinalBarrierWatermarkIsMax(t *testing.T) {
	parts := []*Kernel{New(1), New(2)}
	eng := NewEngine(parts, Millisecond)
	var last Time
	eng.OnBarrier(func(w Time) { last = w })
	parts[0].At(0, "a", func() {})
	eng.Run(false)
	if last != maxTime {
		t.Fatalf("final watermark %v, want maxTime", last)
	}
}

func BenchmarkEngineWindow(b *testing.B) {
	// Steady-state ping-pong across two partitions with once-allocated
	// callbacks: the round loop, staged injection, barrier, and kernels
	// must not allocate per hop.
	parts := []*Kernel{New(1), New(2)}
	eng := NewEngine(parts, 2*Millisecond)
	n := 0
	var fns [2]func()
	for src := range fns {
		src := src
		fns[src] = func() {
			n++
			if n > b.N {
				return
			}
			dst := 1 - src
			eng.Send(src, dst, parts[src].Now().Add(2*Millisecond), "hop", fns[dst])
		}
	}
	parts[0].At(0, "seed", fns[0])
	b.ReportAllocs()
	b.ResetTimer()
	eng.Run(false)
	if n < b.N {
		b.Fatalf("ran %d hops, want %d", n, b.N)
	}
}
