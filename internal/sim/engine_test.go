package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// pingPong wires nPart partitions into a ring: each partition's callback
// records (partition, time) in a partition-local log and forwards to the
// next partition after the trunk delay. Partition logs are merged by
// (time, partition) at each barrier — the same discipline the topology
// runner uses for per-segment capture buffers — so the returned log is
// well-defined in both serial and parallel mode.
func pingPong(parallel bool, nPart, rounds int, delay Duration) []string {
	parts := make([]*Kernel, nPart)
	for i := range parts {
		parts[i] = New(int64(i + 1))
	}
	eng := NewEngine(parts, 2*delay)
	type entry struct {
		at   Time
		text string
	}
	local := make([][]entry, nPart)
	var merged []string
	eng.OnBarrier(func() {
		for {
			best := -1
			for i := range local {
				if len(local[i]) == 0 {
					continue
				}
				if best < 0 || local[i][0].at < local[best][0].at {
					best = i
				}
			}
			if best < 0 {
				return
			}
			merged = append(merged, local[best][0].text)
			local[best] = local[best][1:]
		}
	})
	var hop func(src int, n int) func()
	hop = func(src, n int) func() {
		return func() {
			k := parts[src]
			local[src] = append(local[src], entry{k.Now(), fmt.Sprintf("p%d@%d r%d", src, k.Now(), n)})
			if n >= rounds {
				return
			}
			dst := (src + 1) % nPart
			if dst == src {
				// Same-partition traffic stays local, as in the
				// topology runner.
				k.At(k.Now().Add(2*delay), "hop", hop(dst, n+1))
			} else {
				eng.Send(src, dst, k.Now().Add(2*delay), "hop", hop(dst, n+1))
			}
		}
	}
	for i := range parts {
		i := i
		parts[i].At(0, "seed", hop(i, 0))
	}
	eng.Run(parallel)
	return merged
}

func TestEngineSerialParallelIdentical(t *testing.T) {
	for _, nPart := range []int{1, 2, 4} {
		serial := pingPong(false, nPart, 50, Millisecond)
		par := pingPong(true, nPart, 50, Millisecond)
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("nPart=%d: serial and parallel logs differ:\nserial: %v\nparallel: %v", nPart, serial, par)
		}
		if len(serial) != nPart*(50+1) {
			t.Fatalf("nPart=%d: expected %d hops, got %d", nPart, nPart*51, len(serial))
		}
	}
}

func TestEngineBarrierMergeOrder(t *testing.T) {
	// Three partitions all send to partition 0 at the same timestamp in
	// the same window; injection order must be (at, src, seq).
	run := func(parallel bool) []string {
		parts := []*Kernel{New(1), New(2), New(3), New(4)}
		eng := NewEngine(parts, 4*Millisecond)
		var got []string
		for src := 1; src <= 3; src++ {
			src := src
			parts[src].At(0, "burst", func() {
				at := parts[src].Now().Add(4 * Millisecond)
				for j := 0; j < 2; j++ {
					src, j := src, j
					eng.Send(src, 0, at, "msg", func() {
						got = append(got, fmt.Sprintf("src%d.%d", src, j))
					})
				}
			})
		}
		eng.Run(parallel)
		return got
	}
	want := []string{"src1.0", "src1.1", "src2.0", "src2.1", "src3.0", "src3.1"}
	for _, parallel := range []bool{false, true} {
		if got := run(parallel); !reflect.DeepEqual(got, want) {
			t.Fatalf("parallel=%v: merge order %v, want %v", parallel, got, want)
		}
	}
}

func TestEngineLookaheadViolationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on lookahead violation")
		}
	}()
	parts := []*Kernel{New(1), New(2)}
	eng := NewEngine(parts, 10*Millisecond)
	parts[0].At(0, "bad", func() {
		// Timestamp inside the current window: history rewrite.
		eng.Send(0, 1, parts[0].Now().Add(Millisecond), "early", func() {})
	})
	eng.Run(false)
}

func TestEngineSkipsIdleTime(t *testing.T) {
	// Two partitions with events 1 hour apart: windows must jump, not
	// crawl in lookahead-sized steps. Executed counts prove only the
	// scheduled events ran.
	parts := []*Kernel{New(1), New(2)}
	eng := NewEngine(parts, Millisecond)
	var fired int
	for i := 0; i < 5; i++ {
		at := Time(i) * Time(Hour)
		parts[i%2].At(at, "sparse", func() { fired++ })
	}
	last := eng.Run(false)
	if fired != 5 {
		t.Fatalf("fired %d of 5", fired)
	}
	if want := Time(4) * Time(Hour); last != want {
		t.Fatalf("final time %v, want %v", last, want)
	}
}

func TestEngineReturnsLastEventTime(t *testing.T) {
	parts := []*Kernel{New(1), New(2)}
	eng := NewEngine(parts, Millisecond)
	parts[0].At(10, "a", func() {})
	parts[1].At(Time(3*Second), "b", func() {})
	if got := eng.Run(true); got != Time(3*Second) {
		t.Fatalf("last event time %v, want %v", got, Time(3*Second))
	}
}

func BenchmarkEngineWindow(b *testing.B) {
	// Steady-state ping-pong across two partitions with once-allocated
	// callbacks: the window loop, barrier merge, and kernels must not
	// allocate per hop.
	parts := []*Kernel{New(1), New(2)}
	eng := NewEngine(parts, 2*Millisecond)
	n := 0
	var fns [2]func()
	for src := range fns {
		src := src
		fns[src] = func() {
			n++
			if n > b.N {
				return
			}
			dst := 1 - src
			eng.Send(src, dst, parts[src].Now().Add(2*Millisecond), "hop", fns[dst])
		}
	}
	parts[0].At(0, "seed", fns[0])
	b.ReportAllocs()
	b.ResetTimer()
	eng.Run(false)
	if n < b.N {
		b.Fatalf("ran %d hops, want %d", n, b.N)
	}
}
