package sim

import "sort"

// Engine runs several kernels — one per topology partition — as a single
// conservative parallel discrete-event simulation. Progress is governed
// by a per-partition-pair lookahead matrix L, where L[i][j] is a lower
// bound on the virtual latency of any influence travelling from
// partition i to partition j. Each round the engine computes, for every
// partition i, an independent safe horizon
//
//	H[i] = min over j≠i of bound(j → i)
//
// where each peer j contributes the sooner of two hazards: its own
// pending work at N[j] arriving directly, and an echo — influence this
// partition emits after N[i] bouncing off j and coming back:
//
//	bound(j → i) = min( N[j] + L[j][i],  N[i] + L[i][j] + L[j][i] )
//
// For an idle peer (N[j] = ∞, nothing queued or staged) only the echo
// term remains: that is the demand-driven null horizon — the
// earliest-possible-send time the idle partition publishes instead of
// blocking its neighbors forever. Longer reflection chains (i → j → k
// → i) and hazards relayed through a third partition are dominated by
// these two terms because L is path-closed (see NewEngineMatrix). Every
// partition with N[i] < H[i] then advances to H[i]−1 independently —
// pairs separated by slow trunks run far ahead of a low-latency pair
// instead of crawling at the global minimum — and the round ends at a
// barrier where cross-partition messages are exchanged.
//
// Determinism: within a round each kernel sees only its own events (no
// shared mutable state), so its execution is a pure function of its
// pre-round queue. Messages bound for a destination are staged in a
// per-destination inbox kept sorted by (at, src, seq) — all three
// components derived from deterministic per-partition execution — and a
// message is injected only once its timestamp falls below the
// destination's horizon for the round. Because a horizon is a strict
// upper bound, messages with equal timestamps are always injected
// together, in (src, seq) order, no matter how the rounds are cut; the
// injection order seen by each kernel is therefore independent of the
// window schedule, and serial and parallel mode produce byte-identical
// traces.
//
// Correctness relies on the conservative contract: a message sent while
// partition src executes its round must be timestamped at least
// N[src] + L[src][dst]. The barrier panics if a message undercuts that
// pair horizon rather than silently reordering history.
type Engine struct {
	parts []*Kernel
	lat   [][]Duration // path-closed pairwise lookahead; lat[i][i] = 0
	seq   []uint64     // per-source-partition send counter
	hooks []func(Time) // run at every barrier with the merge watermark

	outbox [][]xfer // per-source cross-partition sends this round
	inbox  [][]xfer // per-destination staged messages, sorted (at, src, seq)
	dirty  []bool   // inbox[d] received appends this barrier and needs sorting

	next    []Time // N[j]: earliest pending work (queue or staged inbox)
	horizon []Time // H[i] for the current round
	run     []bool // partition advances this round

	sorters []sort.Interface // one per destination inbox, allocated once
	cmds    []chan Time
	done    chan struct{}
	started bool

	stats EngineStats
}

// EngineStats counts the engine's scheduling activity. Windows is the
// number of rounds; ActiveSum accumulates the number of partitions that
// advanced each round (ActiveSum/Windows is the mean concurrency the
// lookahead structure actually exposed — the number a serialization
// regression shows up in); NullPublishes counts demand-driven null
// horizons published by idle partitions; CrossMessages counts messages
// exchanged at barriers.
type EngineStats struct {
	Windows       uint64
	ActiveSum     uint64
	NullPublishes uint64
	CrossMessages uint64
}

// MeanActive is the mean number of partitions advancing per round.
func (s EngineStats) MeanActive() float64 {
	if s.Windows == 0 {
		return 0
	}
	return float64(s.ActiveSum) / float64(s.Windows)
}

// inboxSorter sorts one destination's staged inbox by (at, src, seq). It
// holds the engine and the destination index, not the slice, because the
// barrier reassigns e.inbox[d]; once-allocated sorters keep the barrier
// allocation-free in steady state.
type inboxSorter struct {
	e *Engine
	d int
}

func (s inboxSorter) Len() int { return len(s.e.inbox[s.d]) }
func (s inboxSorter) Swap(a, b int) {
	m := s.e.inbox[s.d]
	m[a], m[b] = m[b], m[a]
}
func (s inboxSorter) Less(a, b int) bool {
	x, y := &s.e.inbox[s.d][a], &s.e.inbox[s.d][b]
	if x.at != y.at {
		return x.at < y.at
	}
	if x.src != y.src {
		return x.src < y.src
	}
	return x.seq < y.seq
}

// xfer is one cross-partition message: a callback to be scheduled on the
// destination kernel at a future virtual time.
type xfer struct {
	at   Time
	dst  int
	src  int
	seq  uint64
	name string
	fn   func()
}

// NewEngine builds an engine over the given partition kernels with a
// uniform lookahead: every pair of distinct partitions is separated by
// at least the given bound. It must be positive when there is more than
// one partition.
func NewEngine(parts []*Kernel, lookahead Duration) *Engine {
	if len(parts) == 0 {
		panic("sim: engine needs at least one partition")
	}
	if len(parts) > 1 && lookahead <= 0 {
		panic("sim: multi-partition engine needs positive lookahead")
	}
	lat := make([][]Duration, len(parts))
	for i := range lat {
		lat[i] = make([]Duration, len(parts))
		for j := range lat[i] {
			if i != j {
				lat[i][j] = lookahead
			}
		}
	}
	return NewEngineMatrix(parts, lat)
}

// NewEngineMatrix builds an engine over the given partition kernels with
// a per-pair lookahead matrix: lat[i][j] bounds from below the virtual
// latency of any single cross-partition hop from i to j. Off-diagonal
// entries must be positive; the diagonal is ignored. The matrix is
// copied and closed under path composition (Floyd–Warshall), because the
// horizon math prices only direct j→i terms and relies on the triangle
// inequality L[j][i] ≤ L[j][k] + L[k][i] to keep multi-hop influence
// chains conservative.
func NewEngineMatrix(parts []*Kernel, lat [][]Duration) *Engine {
	n := len(parts)
	if n == 0 {
		panic("sim: engine needs at least one partition")
	}
	if len(lat) != n {
		panic("sim: lookahead matrix must be square over the partitions")
	}
	m := make([][]Duration, n)
	for i := range lat {
		if len(lat[i]) != n {
			panic("sim: lookahead matrix must be square over the partitions")
		}
		m[i] = append([]Duration(nil), lat[i]...)
		m[i][i] = 0
		for j, d := range m[i] {
			if i != j && d <= 0 {
				panic("sim: multi-partition engine needs positive pairwise lookahead")
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if i == k {
				continue
			}
			ik := m[i][k]
			for j := 0; j < n; j++ {
				if via := ik + m[k][j]; via < m[i][j] {
					m[i][j] = via
				}
			}
		}
	}
	e := &Engine{
		parts:   parts,
		lat:     m,
		seq:     make([]uint64, n),
		outbox:  make([][]xfer, n),
		inbox:   make([][]xfer, n),
		dirty:   make([]bool, n),
		next:    make([]Time, n),
		horizon: make([]Time, n),
		run:     make([]bool, n),
		sorters: make([]sort.Interface, n),
		cmds:    make([]chan Time, n),
		done:    make(chan struct{}, n),
	}
	for i := 0; i < n; i++ {
		e.sorters[i] = inboxSorter{e, i}
		e.cmds[i] = make(chan Time, 1)
	}
	return e
}

// Lookahead reports the (path-closed) pairwise bound from partition i to
// partition j.
func (e *Engine) Lookahead(i, j int) Duration { return e.lat[i][j] }

// Stats returns the engine's scheduling counters. Call after Run; the
// counters accumulate across Run calls on the same engine.
func (e *Engine) Stats() EngineStats { return e.stats }

// Send queues a cross-partition message from partition src to partition
// dst: fn will be scheduled on the destination kernel at virtual time
// at. Must be called from event context of the source partition. The
// timestamp must respect the pair lookahead — at least the source's
// round start plus lat[src][dst] — which any path with the latency
// bounds used to derive the matrix satisfies by construction.
func (e *Engine) Send(src, dst int, at Time, name string, fn func()) {
	e.outbox[src] = append(e.outbox[src], xfer{
		at: at, dst: dst, src: src, seq: e.seq[src], name: name, fn: fn,
	})
	e.seq[src]++
}

// OnBarrier registers fn to run at every barrier. Hooks run on the
// coordinating goroutine while all partitions are quiescent, and receive
// the merge watermark: no event executed after the barrier — on any
// partition — can precede it, so per-partition capture buffers may be
// drained up to (but excluding) the watermark in a single globally
// time-ordered pass. The final barrier passes the maximum Time.
func (e *Engine) OnBarrier(fn func(watermark Time)) {
	e.hooks = append(e.hooks, fn)
}

const maxTime = Time(1<<63 - 1)

// Run drives all partitions to completion and returns the virtual time
// of the last executed event across them. With parallel=false the same
// round/barrier schedule runs on the calling goroutine, one partition at
// a time in index order — the serial baseline that parallel mode must
// reproduce byte-for-byte.
func (e *Engine) Run(parallel bool) Time {
	if parallel && !e.started {
		e.started = true
		for i := range e.parts {
			go e.worker(i)
		}
		defer func() {
			for _, c := range e.cmds {
				close(c)
			}
			e.started = false
		}()
	}
	n := len(e.parts)
	rounds := 0
	for {
		// N[j] = earliest pending work on partition j: its own queue or
		// the head of its staged inbox, whichever is sooner.
		any := false
		for j, k := range e.parts {
			t := maxTime
			if pt, ok := k.PeekTime(); ok {
				t = pt
			}
			if b := e.inbox[j]; len(b) > 0 && b[0].at < t {
				t = b[0].at
			}
			e.next[j] = t
			if t != maxTime {
				any = true
			}
		}
		if !any {
			// No partition has work anywhere. Outboxes are necessarily
			// empty: every Send is drained into an inbox at the barrier
			// ending the round that queued it.
			break
		}
		// Per-partition horizons. An idle partition never advances; a
		// busy one advances iff some horizon headroom exists (always
		// true for the globally earliest partition, so rounds progress).
		e.stats.Windows++
		rounds++
		active := 0
		for i := 0; i < n; i++ {
			if e.next[i] == maxTime {
				e.horizon[i] = 0
				e.run[i] = false
				if n > 1 {
					e.stats.NullPublishes++
				}
				continue
			}
			h := maxTime
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				// Echo bound: even a peer with no work of its own before
				// N[j] can react to influence this partition sends after
				// N[i] and reflect it back one round trip later. For an
				// idle peer (N[j] = ∞) this is the demand-driven null
				// horizon — the earliest-possible-send time it publishes
				// instead of blocking us forever.
				b := e.next[i].Add(e.lat[i][j] + e.lat[j][i])
				if e.next[j] != maxTime {
					if d := e.next[j].Add(e.lat[j][i]); d < b {
						b = d
					}
				}
				if b < h {
					h = b
				}
			}
			e.horizon[i] = h
			if e.next[i] < h {
				e.run[i] = true
				active++
			} else {
				e.run[i] = false
			}
		}
		e.stats.ActiveSum += uint64(active)
		// Inject each advancing partition's eligible staged messages —
		// the sorted prefix strictly below its horizon — then advance.
		for i := 0; i < n; i++ {
			if e.run[i] {
				e.injectStaged(i)
			}
		}
		if parallel {
			for i := range e.parts {
				if e.run[i] {
					e.cmds[i] <- e.limitFor(i)
				}
			}
			for left := active; left > 0; left-- {
				<-e.done
			}
		} else {
			for i, k := range e.parts {
				if e.run[i] {
					k.RunUntil(e.limitFor(i))
				}
			}
		}
		e.barrier()
	}
	if rounds == 0 {
		// The loop's final barrier already published a maxTime
		// watermark; only a run with no work at all skipped it.
		e.runHooks(maxTime)
	}
	var last Time
	for _, k := range e.parts {
		if at := k.LastEventAt(); at > last {
			last = at
		}
	}
	return last
}

// limitFor converts partition i's horizon (exclusive) into a RunUntil
// limit (inclusive).
func (e *Engine) limitFor(i int) Time {
	if e.horizon[i] == maxTime {
		return maxTime
	}
	return e.horizon[i] - 1
}

// injectStaged moves the prefix of partition i's staged inbox with
// timestamps strictly below its horizon into its kernel, in (at, src,
// seq) order. Equal timestamps can never straddle a horizon, so the
// per-destination injection order is independent of the round schedule.
func (e *Engine) injectStaged(i int) {
	buf := e.inbox[i]
	h := e.horizon[i]
	k := e.parts[i]
	m := 0
	for m < len(buf) && buf[m].at < h {
		x := &buf[m]
		k.At(x.at, x.name, x.fn)
		m++
	}
	if m == 0 {
		return
	}
	rest := copy(buf, buf[m:])
	for j := rest; j < len(buf); j++ {
		buf[j].fn = nil // do not retain closures through the staging buffer
	}
	e.inbox[i] = buf[:rest]
}

// worker is one partition's goroutine in parallel mode: it advances its
// kernel to each commanded limit and signals completion. The channel
// send/receive pairs give the barrier the happens-before edges that make
// cross-partition frame hand-off race-free.
func (e *Engine) worker(i int) {
	k := e.parts[i]
	for limit := range e.cmds[i] {
		k.RunUntil(limit)
		e.done <- struct{}{}
	}
}

// barrier drains every outbox into the destination inboxes, re-sorts the
// inboxes that grew, checks the conservative contract, and runs the
// hooks with the merge watermark. A message from src must be timestamped
// at least src's round start plus the pair bound; anything earlier could
// rewrite history some schedule already committed, so it panics rather
// than reorders.
func (e *Engine) barrier() {
	for src := range e.outbox {
		ob := e.outbox[src]
		for j := range ob {
			x := &ob[j]
			if x.at < e.next[src].Add(e.lat[src][x.dst]) {
				panic("sim: lookahead violation: cross-partition message " + x.name + " undercuts the pair horizon")
			}
			e.inbox[x.dst] = append(e.inbox[x.dst], *x)
			e.dirty[x.dst] = true
			x.fn = nil
			e.stats.CrossMessages++
		}
		e.outbox[src] = ob[:0]
	}
	for d := range e.inbox {
		if e.dirty[d] {
			// Keys (at, src, seq) are unique — seq is strictly
			// increasing per source — so an unstable sort yields a
			// total deterministic order.
			if len(e.inbox[d]) > 1 {
				sort.Sort(e.sorters[d])
			}
			e.dirty[d] = false
		}
	}
	// Watermark: the earliest possible next event anywhere. Every event
	// already executed is committed; everything still to come — queued
	// or staged — is at or after this bound.
	w := maxTime
	for j, k := range e.parts {
		if pt, ok := k.PeekTime(); ok && pt < w {
			w = pt
		}
		if b := e.inbox[j]; len(b) > 0 && b[0].at < w {
			w = b[0].at
		}
	}
	e.runHooks(w)
}

func (e *Engine) runHooks(w Time) {
	for _, fn := range e.hooks {
		fn(w)
	}
}
