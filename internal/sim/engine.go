package sim

import "sort"

// Engine runs several kernels — one per topology partition — as a single
// conservative parallel discrete-event simulation. Each window it finds
// the earliest pending event time T across partitions, advances every
// partition with work before T+lookahead independently (in parallel or
// sequentially — the result bytes are identical either way), then meets
// at a barrier where cross-partition messages queued during the window
// are merged in deterministic (time, source partition, source sequence)
// order and injected into their destination kernels.
//
// Correctness relies on the conservative lookahead contract: a message
// sent from partition i during window [T, T+L) must be timestamped at
// least T+L, which holds whenever every cross-partition path imposes a
// minimum latency and L is the smallest sum of two such latencies (the
// sender's egress delay plus the receiver's ingress delay). The barrier
// panics if a message violates the horizon rather than silently
// reordering history.
//
// Determinism: within a window each kernel sees only its own events (no
// shared mutable state), so its execution is a pure function of its
// pre-window queue. The barrier sorts messages by (at, src, seq) — both
// components of which are derived from deterministic per-partition
// execution — and injects them in that order, so destination kernels
// assign identical sequence numbers in serial and parallel mode. By
// induction over windows, the two modes produce byte-identical traces.
type Engine struct {
	parts     []*Kernel
	lookahead Duration
	outbox    [][]xfer // per-source-partition cross-partition sends this window
	seq       []uint64 // per-source-partition send counter
	hooks     []func() // run at every barrier, after message injection
	merged    []xfer   // scratch: reused merge buffer
	sorter    sort.Interface
	cmds      []chan Time
	done      chan struct{}
	started   bool
}

// xferSorter sorts the engine's merge buffer by (at, src, seq). It holds
// the engine, not the slice, because barrier reassigns e.merged; a
// once-allocated sorter keeps the barrier allocation-free in steady
// state.
type xferSorter struct{ e *Engine }

func (s xferSorter) Len() int      { return len(s.e.merged) }
func (s xferSorter) Swap(a, b int) { m := s.e.merged; m[a], m[b] = m[b], m[a] }
func (s xferSorter) Less(a, b int) bool {
	x, y := &s.e.merged[a], &s.e.merged[b]
	if x.at != y.at {
		return x.at < y.at
	}
	if x.src != y.src {
		return x.src < y.src
	}
	return x.seq < y.seq
}

// xfer is one cross-partition message: a callback to be scheduled on the
// destination kernel at a future virtual time.
type xfer struct {
	at   Time
	dst  int
	src  int
	seq  uint64
	name string
	fn   func()
}

// NewEngine builds an engine over the given partition kernels. lookahead
// is the conservative horizon; it must be positive when there is more
// than one partition.
func NewEngine(parts []*Kernel, lookahead Duration) *Engine {
	if len(parts) == 0 {
		panic("sim: engine needs at least one partition")
	}
	if len(parts) > 1 && lookahead <= 0 {
		panic("sim: multi-partition engine needs positive lookahead")
	}
	e := &Engine{
		parts:     parts,
		lookahead: lookahead,
		outbox:    make([][]xfer, len(parts)),
		seq:       make([]uint64, len(parts)),
		cmds:      make([]chan Time, len(parts)),
		done:      make(chan struct{}, len(parts)),
	}
	for i := range e.cmds {
		e.cmds[i] = make(chan Time, 1)
	}
	e.sorter = xferSorter{e}
	return e
}

// Send queues a cross-partition message from partition src to partition
// dst: fn will be scheduled on the destination kernel at virtual time at
// during the next barrier. Must be called from event context of the
// source partition. The timestamp must respect the lookahead horizon —
// at least the end of the current window — which any path with the
// latency bounds used to derive the lookahead satisfies by construction.
func (e *Engine) Send(src, dst int, at Time, name string, fn func()) {
	e.outbox[src] = append(e.outbox[src], xfer{
		at: at, dst: dst, src: src, seq: e.seq[src], name: name, fn: fn,
	})
	e.seq[src]++
}

// OnBarrier registers fn to run at every barrier, after cross-partition
// messages have been injected. Hooks run on the coordinating goroutine
// while all partitions are quiescent; they are where per-partition
// capture buffers are merged into shared collectors.
func (e *Engine) OnBarrier(fn func()) {
	e.hooks = append(e.hooks, fn)
}

const maxTime = Time(1<<63 - 1)

// Run drives all partitions to completion and returns the virtual time
// of the last executed event across them. With parallel=false the same
// window/barrier schedule runs on the calling goroutine, one partition
// at a time in index order — the serial baseline that parallel mode must
// reproduce byte-for-byte.
func (e *Engine) Run(parallel bool) Time {
	if parallel && !e.started {
		e.started = true
		for i := range e.parts {
			go e.worker(i)
		}
		defer func() {
			for _, c := range e.cmds {
				close(c)
			}
			e.started = false
		}()
	}
	for {
		// T = earliest pending event anywhere; windows skip idle time.
		t := maxTime
		any := false
		for _, k := range e.parts {
			if pt, ok := k.PeekTime(); ok && pt < t {
				t = pt
				any = true
			}
		}
		if !any {
			// No partition has work. Outboxes are necessarily empty:
			// every Send is immediately followed (at the next barrier)
			// by an At on the destination, so a non-empty outbox
			// implies a pending event after the barrier that queued it.
			break
		}
		end := maxTime
		limit := maxTime
		if len(e.parts) > 1 {
			end = t.Add(e.lookahead)
			limit = end - 1 // RunUntil is ≤ limit; the window is [t, end)
		}
		if parallel {
			nrun := 0
			for i, k := range e.parts {
				if pt, ok := k.PeekTime(); ok && pt < end {
					e.cmds[i] <- limit
					nrun++
				}
			}
			for ; nrun > 0; nrun-- {
				<-e.done
			}
		} else {
			for _, k := range e.parts {
				if pt, ok := k.PeekTime(); ok && pt < end {
					k.RunUntil(limit)
				}
			}
		}
		e.barrier(end)
	}
	var last Time
	for _, k := range e.parts {
		if at := k.LastEventAt(); at > last {
			last = at
		}
	}
	return last
}

// worker is one partition's goroutine in parallel mode: it advances its
// kernel to each commanded limit and signals completion. The channel
// send/receive pairs give the barrier the happens-before edges that make
// cross-partition frame hand-off race-free.
func (e *Engine) worker(i int) {
	k := e.parts[i]
	for limit := range e.cmds[i] {
		k.RunUntil(limit)
		e.done <- struct{}{}
	}
}

// barrier merges all outboxes in (at, src, seq) order and injects each
// message into its destination kernel. horizon is the end of the window
// just completed; any message timestamped before it would rewrite
// already-executed history, so that is a panic, not a reorder.
func (e *Engine) barrier(horizon Time) {
	e.merged = e.merged[:0]
	for i := range e.outbox {
		e.merged = append(e.merged, e.outbox[i]...)
	}
	if len(e.merged) == 0 {
		e.runHooks()
		return
	}
	sort.Sort(e.sorter)
	for i := range e.merged {
		x := &e.merged[i]
		if x.at < horizon {
			panic("sim: lookahead violation: cross-partition message " + x.name + " inside the committed window")
		}
		e.parts[x.dst].At(x.at, x.name, x.fn)
		x.fn = nil // do not retain closures through the scratch buffer
	}
	for i := range e.outbox {
		for j := range e.outbox[i] {
			e.outbox[i][j].fn = nil
		}
		e.outbox[i] = e.outbox[i][:0]
	}
	e.runHooks()
}

func (e *Engine) runHooks() {
	for _, fn := range e.hooks {
		fn()
	}
}
