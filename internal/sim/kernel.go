package sim

import (
	"fmt"
	"hash/fnv"
	"math/rand"
)

// event is one scheduled callback. Events are owned by the kernel: they
// live either in the timer heap, in the same-instant ring, or on the
// free list, and are recycled once they leave the queue. The gen counter
// is bumped on every recycle so that stale Event handles become no-ops
// instead of touching an unrelated reuse of the same slot.
type event struct {
	at     Time
	seq    uint64
	fn     func()
	proc   *Proc // when non-nil, dispatch this process instead of fn
	name   string
	gen    uint64
	cancel bool
}

// Event is a handle to a scheduled callback. The zero Event refers to no
// event: all its methods are no-ops. A handle outlives its event safely —
// once the event has fired (or its cancellation has been collected), the
// handle goes stale and Cancel/Pending become no-ops, so callers may keep
// handles around without lifecycle bookkeeping.
type Event struct {
	e   *event
	gen uint64
}

// Cancel prevents the event's callback from running. Safe to call at any
// point, including after the event has fired; idempotent.
func (h Event) Cancel() {
	if h.e != nil && h.e.gen == h.gen {
		h.e.cancel = true
	}
}

// Cancelled reports whether Cancel was called on a still-queued event.
func (h Event) Cancelled() bool { return h.e != nil && h.e.gen == h.gen && h.e.cancel }

// Pending reports whether the event is still queued and not cancelled.
func (h Event) Pending() bool { return h.e != nil && h.e.gen == h.gen && !h.e.cancel }

// Time reports the virtual instant the event is scheduled for, or 0 if
// the handle is stale.
func (h Event) Time() Time {
	if h.e != nil && h.e.gen == h.gen {
		return h.e.at
	}
	return 0
}

// Kernel is a discrete-event simulation engine. Create one with New,
// attach components and processes, then call Run or RunUntil.
//
// Scheduling is zero-allocation in steady state: event objects are
// recycled through a free list, future events live in an inlined 4-ary
// min-heap (no interface boxing, better cache locality than the binary
// container/heap), and events scheduled for the current instant bypass
// the heap entirely through a FIFO ring whose (time, seq) order merges
// exactly with the heap's.
type Kernel struct {
	now      Time
	lastAt   Time     // time of the last executed event (Now may run ahead to a RunUntil limit)
	queue    []*event // 4-ary min-heap on (at, seq)
	imm      []*event // power-of-two ring: events at the current instant
	immHead  int
	immN     int
	free     []*event
	seq      uint64
	seed     int64
	executed uint64
	stopped  bool
	rands    map[string]*rand.Rand

	// current process, non-nil while a process goroutine is executing.
	cur *Proc
}

// New returns a kernel whose clock reads zero and whose named random
// generators derive from seed.
func New(seed int64) *Kernel {
	return &Kernel{seed: seed}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Seed reports the base seed the kernel was created with.
func (k *Kernel) Seed() int64 { return k.seed }

// Executed reports how many events have run so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// alloc takes an event from the free list (or the allocator) and stamps
// it with the next sequence number.
func (k *Kernel) alloc(t Time, name string) *event {
	var e *event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		e = &event{}
	}
	e.at = t
	e.seq = k.seq
	e.name = name
	k.seq++
	return e
}

// recycle returns a popped event to the free list, invalidating handles.
func (k *Kernel) recycle(e *event) {
	e.gen++
	e.fn = nil
	e.proc = nil
	e.name = ""
	e.cancel = false
	k.free = append(k.free, e)
}

// enqueue routes a stamped event to the same-instant ring or the heap.
func (k *Kernel) enqueue(e *event) {
	if e.at == k.now {
		k.immPush(e)
	} else {
		k.heapPush(e)
	}
}

// At schedules fn to run at virtual time t, which must not precede Now.
// The returned handle can cancel the event.
func (k *Kernel) At(t Time, name string, fn func()) Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", name, t, k.now))
	}
	e := k.alloc(t, name)
	e.fn = fn
	k.enqueue(e)
	return Event{e: e, gen: e.gen}
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Duration, name string, fn func()) Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d for %q", d, name))
	}
	return k.At(k.now.Add(d), name, fn)
}

// atProc schedules a dispatch of p at time t without allocating a
// closure — the wake/sleep fast path.
func (k *Kernel) atProc(t Time, p *Proc) {
	e := k.alloc(t, p.wakeName)
	e.proc = p
	k.enqueue(e)
}

// Rand returns the deterministic random generator derived from the
// kernel seed and the given name. Each distinct name is an independent
// stream. The generator is memoized: repeated calls with the same name
// return the same *rand.Rand, so callers cannot accidentally fork two
// identical streams by looking the name up twice.
func (k *Kernel) Rand(name string) *rand.Rand {
	if r, ok := k.rands[name]; ok {
		return r
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	r := rand.New(rand.NewSource(k.seed ^ int64(h.Sum64())))
	if k.rands == nil {
		k.rands = make(map[string]*rand.Rand)
	}
	k.rands[name] = r
	return r
}

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the queue is empty or Stop is called. It
// returns the final virtual time.
func (k *Kernel) Run() Time { return k.RunUntil(Time(1<<63 - 1)) }

// RunUntil executes events with timestamps ≤ limit, then advances the
// clock to min(limit, last event time) and returns it. Events scheduled
// beyond limit remain queued.
//
// The same-instant ring and the heap are merged on (time, seq): ring
// entries are pushed with the then-current clock and a globally
// increasing sequence number, so the ring is itself sorted and a single
// head-to-head comparison picks the next event — the exact order the
// old single-heap kernel produced.
func (k *Kernel) RunUntil(limit Time) Time {
	k.stopped = false
	for !k.stopped {
		var e *event
		switch {
		case k.immN > 0 && len(k.queue) > 0:
			ie, he := k.imm[k.immHead], k.queue[0]
			if he.at < ie.at || (he.at == ie.at && he.seq < ie.seq) {
				if he.at > limit {
					e = nil
				} else {
					e = k.heapPop()
				}
			} else if ie.at <= limit {
				e = k.immPop()
			}
		case k.immN > 0:
			if ie := k.imm[k.immHead]; ie.at <= limit {
				e = k.immPop()
			}
		case len(k.queue) > 0:
			if k.queue[0].at <= limit {
				e = k.heapPop()
			}
		}
		if e == nil {
			break
		}
		if e.cancel {
			k.recycle(e)
			continue
		}
		if e.at < k.now {
			panic("sim: time went backwards")
		}
		k.now = e.at
		k.lastAt = e.at
		k.executed++
		fn, p := e.fn, e.proc
		k.recycle(e)
		if p != nil {
			p.dispatch()
		} else {
			fn()
		}
	}
	if k.now < limit && limit < Time(1<<63-1) {
		k.now = limit
	}
	return k.now
}

// Pending reports the number of events currently queued (including
// cancelled events that have not yet been popped).
func (k *Kernel) Pending() int { return len(k.queue) + k.immN }

// PeekTime reports the timestamp of the earliest queued event, or false
// if the queue is empty. Cancelled events still count: they are popped
// (and skipped) in timestamp order like any other, so including them
// keeps the answer independent of when cancellations are collected.
func (k *Kernel) PeekTime() (Time, bool) {
	switch {
	case k.immN > 0 && len(k.queue) > 0:
		ie, he := k.imm[k.immHead], k.queue[0]
		if he.at < ie.at {
			return he.at, true
		}
		return ie.at, true
	case k.immN > 0:
		return k.imm[k.immHead].at, true
	case len(k.queue) > 0:
		return k.queue[0].at, true
	}
	return 0, false
}

// LastEventAt reports the virtual time of the last executed event. It
// differs from Now after RunUntil has advanced the clock to an event-free
// limit; the partitioned engine uses it to report a final time that does
// not depend on window geometry.
func (k *Kernel) LastEventAt() Time { return k.lastAt }

// --- same-instant FIFO ring ---

func (k *Kernel) immPush(e *event) {
	if k.immN == len(k.imm) {
		k.immGrow()
	}
	k.imm[(k.immHead+k.immN)&(len(k.imm)-1)] = e
	k.immN++
}

func (k *Kernel) immPop() *event {
	e := k.imm[k.immHead]
	k.imm[k.immHead] = nil
	k.immHead = (k.immHead + 1) & (len(k.imm) - 1)
	k.immN--
	return e
}

// immGrow doubles the ring, re-linearizing so head lands at 0.
func (k *Kernel) immGrow() {
	n := len(k.imm) * 2
	if n == 0 {
		n = 16
	}
	buf := make([]*event, n)
	for i := 0; i < k.immN; i++ {
		buf[i] = k.imm[(k.immHead+i)&(len(k.imm)-1)]
	}
	k.imm = buf
	k.immHead = 0
}

// --- 4-ary min-heap on (at, seq) ---

// eventLess orders events by time, then by schedule order. The seq
// tie-break is the determinism contract: same-instant events fire in the
// order they were scheduled, and DESIGN.md §8 argues why the 4-ary
// layout cannot perturb it.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (k *Kernel) heapPush(e *event) {
	q := append(k.queue, e)
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if !eventLess(e, q[parent]) {
			break
		}
		q[i] = q[parent]
		i = parent
	}
	q[i] = e
	k.queue = q
}

func (k *Kernel) heapPop() *event {
	q := k.queue
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	q = q[:n]
	if n > 0 {
		// Sift last down from the root.
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			min := c
			for j := c + 1; j < end; j++ {
				if eventLess(q[j], q[min]) {
					min = j
				}
			}
			if !eventLess(q[min], last) {
				break
			}
			q[i] = q[min]
			i = min
		}
		q[i] = last
	}
	k.queue = q
	return top
}
