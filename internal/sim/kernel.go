package sim

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math/rand"
)

// Event is a handle to a scheduled callback. It may be cancelled before it
// fires; cancelling a fired or already-cancelled event is a no-op.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	name   string
	index  int // heap index, -1 once popped
	cancel bool
}

// Cancel prevents the event's callback from running. Safe to call at any
// point; idempotent.
func (e *Event) Cancel() { e.cancel = true }

// Cancelled reports whether Cancel has been called on e.
func (e *Event) Cancelled() bool { return e.cancel }

// Time reports the virtual instant the event is scheduled for.
func (e *Event) Time() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation engine. Create one with New, attach
// components and processes, then call Run or RunUntil.
type Kernel struct {
	now      Time
	queue    eventHeap
	seq      uint64
	seed     int64
	executed uint64
	stopped  bool

	// current process, non-nil while a process goroutine is executing.
	cur *Proc
}

// New returns a kernel whose clock reads zero and whose named random
// generators derive from seed.
func New(seed int64) *Kernel {
	return &Kernel{seed: seed}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Seed reports the base seed the kernel was created with.
func (k *Kernel) Seed() int64 { return k.seed }

// Executed reports how many events have run so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// At schedules fn to run at virtual time t, which must not precede Now.
// The returned handle can cancel the event.
func (k *Kernel) At(t Time, name string, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", name, t, k.now))
	}
	e := &Event{at: t, seq: k.seq, fn: fn, name: name}
	k.seq++
	heap.Push(&k.queue, e)
	return e
}

// After schedules fn to run d after the current time.
func (k *Kernel) After(d Duration, name string, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d for %q", d, name))
	}
	return k.At(k.now.Add(d), name, fn)
}

// Rand returns a deterministic random generator derived from the kernel
// seed and the given name. Each distinct name gets an independent stream;
// calling Rand twice with the same name returns generators with identical
// sequences, so components should create their generator once.
func (k *Kernel) Rand(name string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(name))
	return rand.New(rand.NewSource(k.seed ^ int64(h.Sum64())))
}

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events until the queue is empty or Stop is called. It
// returns the final virtual time.
func (k *Kernel) Run() Time { return k.RunUntil(Time(1<<63 - 1)) }

// RunUntil executes events with timestamps ≤ limit, then advances the
// clock to min(limit, last event time) and returns it. Events scheduled
// beyond limit remain queued.
func (k *Kernel) RunUntil(limit Time) Time {
	k.stopped = false
	for len(k.queue) > 0 && !k.stopped {
		e := k.queue[0]
		if e.at > limit {
			break
		}
		heap.Pop(&k.queue)
		if e.cancel {
			continue
		}
		if e.at < k.now {
			panic("sim: time went backwards")
		}
		k.now = e.at
		k.executed++
		e.fn()
	}
	if k.now < limit && limit < Time(1<<63-1) {
		k.now = limit
	}
	return k.now
}

// Pending reports the number of events currently queued (including
// cancelled events that have not yet been popped).
func (k *Kernel) Pending() int { return len(k.queue) }
