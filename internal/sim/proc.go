package sim

import "fmt"

// Proc is a simulation process: a goroutine that interleaves with the event
// loop so that exactly one of (event loop, some process) executes at a
// time. Processes express sequential blocking behaviour — compute phases,
// blocking sends and receives — that would be awkward as event callbacks.
//
// A process may only call its blocking methods (Sleep, Suspend, Yield) from
// its own goroutine. Wake must be called from event context (or from
// another process), never from the process itself.
type Proc struct {
	k        *Kernel
	name     string
	wakeName string // precomputed "wake:"+name: Sleep/Wake allocate nothing
	resume   chan struct{}
	yielded  chan struct{}
	done     bool
	waiting  bool // true while parked in Suspend
	started  bool
	killed   bool
}

// killedSignal unwinds a killed process's goroutine from its next (or
// current) park point back through the body to the spawn wrapper.
type killedSignal struct{}

// Go spawns a new process executing body. The body starts at the current
// virtual time (via an immediate event) and runs until it returns.
func (k *Kernel) Go(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		k:        k,
		name:     name,
		wakeName: "wake:" + name,
		resume:   make(chan struct{}),
		yielded:  make(chan struct{}),
	}
	k.At(k.now, "start:"+name, func() {
		p.started = true
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(killedSignal); !ok {
						panic(r)
					}
				}
				p.done = true
				p.yielded <- struct{}{}
			}()
			<-p.resume
			if p.killed {
				panic(killedSignal{})
			}
			body(p)
		}()
		p.dispatch()
	})
	return p
}

// dispatch hands control to the process goroutine and blocks the event
// loop until the process yields (blocks or finishes). Must be called from
// event context.
func (p *Proc) dispatch() {
	if p.done {
		return
	}
	prev := p.k.cur
	p.k.cur = p
	p.resume <- struct{}{}
	<-p.yielded
	p.k.cur = prev
}

// park yields control back to the event loop and blocks until dispatched
// again. Must be called from the process goroutine. A process killed while
// parked unwinds here instead of resuming.
func (p *Proc) park() {
	p.yielded <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killedSignal{})
	}
}

// Name reports the process name.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel the process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.k.Now() }

// Done reports whether the process body has returned (or been killed).
func (p *Proc) Done() bool { return p.done }

// Killed reports whether Kill has been called on the process.
func (p *Proc) Killed() bool { return p.killed }

// Kill terminates the process: its goroutine unwinds from its current park
// point (Sleep, Suspend, Gate.Wait) without resuming the body — the
// host-crash primitive of the fault model. Kill must be called from event
// context or from a different process; it is idempotent, and killing a
// finished process is a no-op. Any pending wake events for the process
// become no-ops.
func (p *Proc) Kill() {
	if p.done || p.killed {
		return
	}
	if p.k.cur == p {
		panic("sim: process " + p.name + " killed itself")
	}
	p.killed = true
	p.waiting = false
	p.k.atProc(p.k.now, p)
}

// Sleep advances the process's virtual time by d, allowing other events to
// run meanwhile. A non-positive d yields without advancing time.
func (p *Proc) Sleep(d Duration) {
	p.checkSelf("Sleep")
	if d < 0 {
		d = 0
	}
	p.k.atProc(p.k.now.Add(d), p)
	p.park()
}

// Yield lets all events scheduled for the current instant (before this
// call) run, then resumes.
func (p *Proc) Yield() { p.Sleep(0) }

// Suspend parks the process until another component calls Wake. It is the
// building block for blocking queues and condition variables.
func (p *Proc) Suspend() {
	p.checkSelf("Suspend")
	p.waiting = true
	p.park()
}

// Wake schedules the process to resume at the current virtual time. It
// must be called from event context or from a different process; waking a
// process that is not suspended panics, since that always indicates a
// lost-wakeup bug in the caller.
func (p *Proc) Wake() {
	if p.k.cur == p {
		panic("sim: process " + p.name + " woke itself")
	}
	if p.done || p.killed {
		return // the process died while parked; nothing to wake
	}
	if !p.waiting {
		panic("sim: Wake on non-suspended process " + p.name)
	}
	p.waiting = false
	p.k.atProc(p.k.now, p)
}

// Waiting reports whether the process is parked in Suspend.
func (p *Proc) Waiting() bool { return p.waiting }

func (p *Proc) checkSelf(op string) {
	if p.k.cur != p {
		panic(fmt.Sprintf("sim: %s called from outside process %s", op, p.name))
	}
}

// Gate is a FIFO wait queue of processes: a minimal condition variable for
// the simulation. The zero value is ready to use. Waiters live in a ring
// buffer, so a long-lived gate reuses its storage instead of re-slicing a
// growing backing array.
type Gate struct {
	buf  []*Proc
	head int
	n    int
}

// push appends p at the tail of the ring, growing as needed.
func (g *Gate) push(p *Proc) {
	if g.n == len(g.buf) {
		g.grow()
	}
	g.buf[(g.head+g.n)&(len(g.buf)-1)] = p
	g.n++
}

// pop removes and returns the head of the ring, which must be non-empty.
func (g *Gate) pop() *Proc {
	p := g.buf[g.head]
	g.buf[g.head] = nil
	g.head = (g.head + 1) & (len(g.buf) - 1)
	g.n--
	return p
}

// remove deletes the first occurrence of p, preserving FIFO order of the
// rest, and reports whether it was present.
func (g *Gate) remove(p *Proc) bool {
	mask := len(g.buf) - 1
	for i := 0; i < g.n; i++ {
		if g.buf[(g.head+i)&mask] != p {
			continue
		}
		for j := i; j < g.n-1; j++ {
			g.buf[(g.head+j)&mask] = g.buf[(g.head+j+1)&mask]
		}
		g.buf[(g.head+g.n-1)&mask] = nil
		g.n--
		return true
	}
	return false
}

// grow doubles the ring (power-of-two capacity), re-linearizing so head
// lands at index 0.
func (g *Gate) grow() {
	n := len(g.buf) * 2
	if n == 0 {
		n = 4
	}
	buf := make([]*Proc, n)
	for i := 0; i < g.n; i++ {
		buf[i] = g.buf[(g.head+i)&(len(g.buf)-1)]
	}
	g.buf = buf
	g.head = 0
}

// Wait parks p until a Signal or Broadcast reaches it.
func (g *Gate) Wait(p *Proc) {
	g.push(p)
	p.Suspend()
}

// WaitTimeout parks p until a Signal or Broadcast reaches it or the
// deadline d elapses, and reports whether the process was signaled (true)
// or timed out (false). A non-positive d waits without a deadline.
func (g *Gate) WaitTimeout(p *Proc, d Duration) bool {
	if d <= 0 {
		g.Wait(p)
		return true
	}
	timedOut := false
	ev := p.k.After(d, "gate.timeout:"+p.name, func() {
		// Only a process still queued in this gate can time out: a
		// Signal removes it from waiters before waking it.
		if g.remove(p) {
			timedOut = true
			p.Wake()
		}
	})
	g.Wait(p)
	ev.Cancel()
	return !timedOut
}

// Signal wakes the longest-waiting live process, if any, and reports
// whether one was woken. Processes that died while queued are discarded.
func (g *Gate) Signal() bool {
	for g.n > 0 {
		p := g.pop()
		if p.done || p.killed {
			continue
		}
		p.Wake()
		return true
	}
	return false
}

// Broadcast wakes every live waiting process in FIFO order. Only event
// context runs during the drain, so no new waiter can slip in mid-loop.
func (g *Gate) Broadcast() {
	for g.n > 0 {
		p := g.pop()
		if p.done || p.killed {
			continue
		}
		p.Wake()
	}
}

// Len reports the number of waiting processes.
func (g *Gate) Len() int { return g.n }

// Chan is an unbounded FIFO queue connecting event-context producers to
// process-context consumers. Put never blocks; Get blocks the calling
// process until an item is available. Items live in a ring buffer: the
// queue's memory stays proportional to its high-water mark instead of
// pinning every consumed item's backing array, and a drained queue
// reuses its storage allocation-free.
type Chan[T any] struct {
	buf  []T
	head int
	n    int
	gate Gate
}

// Put appends v and wakes one waiting consumer, if any.
func (c *Chan[T]) Put(v T) {
	if c.n == len(c.buf) {
		c.grow()
	}
	c.buf[(c.head+c.n)&(len(c.buf)-1)] = v
	c.n++
	c.gate.Signal()
}

// grow doubles the ring (power-of-two capacity), re-linearizing so head
// lands at index 0.
func (c *Chan[T]) grow() {
	n := len(c.buf) * 2
	if n == 0 {
		n = 4
	}
	buf := make([]T, n)
	for i := 0; i < c.n; i++ {
		buf[i] = c.buf[(c.head+i)&(len(c.buf)-1)]
	}
	c.buf = buf
	c.head = 0
}

// take removes and returns the head item, zeroing its slot so consumed
// values are not retained.
func (c *Chan[T]) take() T {
	var zero T
	v := c.buf[c.head]
	c.buf[c.head] = zero
	c.head = (c.head + 1) & (len(c.buf) - 1)
	c.n--
	return v
}

// Get removes and returns the oldest item, blocking p until one exists.
func (c *Chan[T]) Get(p *Proc) T {
	for c.n == 0 {
		c.gate.Wait(p)
	}
	return c.take()
}

// TryGet removes and returns the oldest item without blocking.
func (c *Chan[T]) TryGet() (T, bool) {
	if c.n == 0 {
		var zero T
		return zero, false
	}
	return c.take(), true
}

// Len reports the number of queued items.
func (c *Chan[T]) Len() int { return c.n }
