package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if got := TimeOf(1.5); got != Time(1500*Millisecond) {
		t.Errorf("TimeOf(1.5) = %d, want %d", got, Time(1500*Millisecond))
	}
	if got := Time(250 * Millisecond).Seconds(); got != 0.25 {
		t.Errorf("Seconds() = %v, want 0.25", got)
	}
	if got := Time(1500 * Microsecond).Milliseconds(); got != 1.5 {
		t.Errorf("Milliseconds() = %v, want 1.5", got)
	}
	if got := DurationOf(0.001); got != Millisecond {
		t.Errorf("DurationOf(0.001) = %d, want %d", got, Millisecond)
	}
	if got := Time(2 * Second).Add(500 * Millisecond); got != Time(2500*Millisecond) {
		t.Errorf("Add = %d", got)
	}
	if got := Time(2 * Second).Sub(Time(500 * Millisecond)); got != 1500*Millisecond {
		t.Errorf("Sub = %d", got)
	}
	if s := Time(1234567 * Nanosecond).String(); s != "0.001235s" {
		t.Errorf("String = %q", s)
	}
}

func TestEventOrdering(t *testing.T) {
	k := New(1)
	var order []int
	k.After(20*Millisecond, "b", func() { order = append(order, 2) })
	k.After(10*Millisecond, "a", func() { order = append(order, 1) })
	k.After(30*Millisecond, "c", func() { order = append(order, 3) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if k.Now() != Time(30*Millisecond) {
		t.Errorf("final time = %v", k.Now())
	}
}

func TestEventTieBreakBySequence(t *testing.T) {
	k := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(Time(Millisecond), "e", func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated: order = %v", order)
		}
	}
}

func TestEventCancel(t *testing.T) {
	k := New(1)
	fired := false
	e := k.After(Millisecond, "x", func() { fired = true })
	e.Cancel()
	if !e.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
	k.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestRunUntil(t *testing.T) {
	k := New(1)
	var fired []int
	k.After(10*Millisecond, "a", func() { fired = append(fired, 1) })
	k.After(30*Millisecond, "b", func() { fired = append(fired, 2) })
	now := k.RunUntil(Time(20 * Millisecond))
	if now != Time(20*Millisecond) {
		t.Errorf("RunUntil returned %v", now)
	}
	if len(fired) != 1 {
		t.Errorf("fired = %v, want only first event", fired)
	}
	k.Run()
	if len(fired) != 2 {
		t.Errorf("fired = %v after Run", fired)
	}
}

func TestStop(t *testing.T) {
	k := New(1)
	n := 0
	for i := 0; i < 5; i++ {
		k.After(Duration(i)*Millisecond, "e", func() {
			n++
			if n == 2 {
				k.Stop()
			}
		})
	}
	k.Run()
	if n != 2 {
		t.Errorf("executed %d events, want 2", n)
	}
}

func TestNestedScheduling(t *testing.T) {
	k := New(1)
	depth := 0
	var schedule func()
	schedule = func() {
		depth++
		if depth < 100 {
			k.After(Microsecond, "nest", schedule)
		}
	}
	k.After(0, "root", schedule)
	k.Run()
	if depth != 100 {
		t.Errorf("depth = %d, want 100", depth)
	}
	if k.Executed() != 100 {
		t.Errorf("Executed = %d", k.Executed())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	k := New(1)
	k.After(10*Millisecond, "later", func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic scheduling in the past")
			}
		}()
		k.At(Time(5*Millisecond), "past", func() {})
	})
	k.Run()
}

func TestNamedRandDeterminism(t *testing.T) {
	k1 := New(42)
	k2 := New(42)
	r1 := k1.Rand("mac")
	r2 := k2.Rand("mac")
	for i := 0; i < 100; i++ {
		if r1.Int63() != r2.Int63() {
			t.Fatal("same seed+name produced different streams")
		}
	}
	ra := New(42).Rand("a")
	rb := New(42).Rand("b")
	same := true
	for i := 0; i < 10; i++ {
		if ra.Int63() != rb.Int63() {
			same = false
		}
	}
	if same {
		t.Error("different names produced identical streams")
	}
}

func TestQuickEventOrderInvariant(t *testing.T) {
	// Property: for any set of non-negative delays, events fire in
	// nondecreasing time order and the kernel clock never goes backwards.
	f := func(delays []uint16) bool {
		k := New(7)
		var times []Time
		for _, d := range delays {
			k.After(Duration(d)*Microsecond, "e", func() {
				times = append(times, k.Now())
			})
		}
		k.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
