package sim

import "testing"

func TestProcSleep(t *testing.T) {
	k := New(1)
	var marks []Time
	k.Go("sleeper", func(p *Proc) {
		marks = append(marks, p.Now())
		p.Sleep(10 * Millisecond)
		marks = append(marks, p.Now())
		p.Sleep(5 * Millisecond)
		marks = append(marks, p.Now())
	})
	k.Run()
	want := []Time{0, Time(10 * Millisecond), Time(15 * Millisecond)}
	if len(marks) != 3 {
		t.Fatalf("marks = %v", marks)
	}
	for i := range want {
		if marks[i] != want[i] {
			t.Errorf("marks[%d] = %v, want %v", i, marks[i], want[i])
		}
	}
}

func TestProcInterleavesWithEvents(t *testing.T) {
	k := New(1)
	var order []string
	k.After(5*Millisecond, "mid", func() { order = append(order, "event") })
	k.Go("p", func(p *Proc) {
		order = append(order, "start")
		p.Sleep(10 * Millisecond)
		order = append(order, "end")
	})
	k.Run()
	if len(order) != 3 || order[0] != "start" || order[1] != "event" || order[2] != "end" {
		t.Errorf("order = %v", order)
	}
}

func TestProcSuspendWake(t *testing.T) {
	k := New(1)
	var got Time
	p := k.Go("waiter", func(p *Proc) {
		p.Suspend()
		got = p.Now()
	})
	k.After(42*Millisecond, "waker", func() { p.Wake() })
	k.Run()
	if !p.Done() {
		t.Fatal("process did not finish")
	}
	if got != Time(42*Millisecond) {
		t.Errorf("woke at %v, want 42ms", got)
	}
}

func TestWakeNonSuspendedPanics(t *testing.T) {
	k := New(1)
	p := k.Go("idle", func(p *Proc) { p.Sleep(Second) })
	k.After(Millisecond, "bad-wake", func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic waking non-suspended process")
			}
		}()
		p.Wake()
	})
	k.Run()
}

func TestGateFIFO(t *testing.T) {
	k := New(1)
	var g Gate
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		k.Go("w", func(p *Proc) {
			g.Wait(p)
			order = append(order, i)
		})
	}
	k.After(Millisecond, "sig", func() {
		if g.Len() != 3 {
			t.Errorf("Len = %d, want 3", g.Len())
		}
		g.Signal()
	})
	k.After(2*Millisecond, "bcast", func() { g.Broadcast() })
	k.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("order = %v, want [0 1 2]", order)
	}
	if g.Signal() {
		t.Error("Signal on empty gate reported a wake")
	}
}

func TestChanProducerConsumer(t *testing.T) {
	k := New(1)
	var c Chan[int]
	var got []int
	k.Go("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			got = append(got, c.Get(p))
		}
	})
	for i := 0; i < 5; i++ {
		i := i
		k.After(Duration(i+1)*Millisecond, "produce", func() { c.Put(i) })
	}
	k.Run()
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for i, v := range got {
		if v != i {
			t.Errorf("got[%d] = %d", i, v)
		}
	}
}

func TestChanTryGet(t *testing.T) {
	var c Chan[string]
	if _, ok := c.TryGet(); ok {
		t.Error("TryGet on empty chan succeeded")
	}
	c.Put("a")
	c.Put("b")
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	if v, ok := c.TryGet(); !ok || v != "a" {
		t.Errorf("TryGet = %q, %v", v, ok)
	}
}

func TestChanBufferedBeforeConsumer(t *testing.T) {
	k := New(1)
	var c Chan[int]
	c.Put(7)
	c.Put(8)
	var got []int
	k.Go("late-consumer", func(p *Proc) {
		got = append(got, c.Get(p), c.Get(p))
	})
	k.Run()
	if len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Errorf("got = %v", got)
	}
}

func TestProcToProcHandoff(t *testing.T) {
	k := New(1)
	var ping, pong Chan[int]
	var trace []int
	k.Go("ping", func(p *Proc) {
		for i := 0; i < 3; i++ {
			ping.Put(i)
			trace = append(trace, pong.Get(p))
		}
	})
	k.Go("pong", func(p *Proc) {
		for i := 0; i < 3; i++ {
			v := ping.Get(p)
			p.Sleep(Millisecond)
			pong.Put(v * 10)
		}
	})
	k.Run()
	if len(trace) != 3 || trace[0] != 0 || trace[1] != 10 || trace[2] != 20 {
		t.Errorf("trace = %v", trace)
	}
	if k.Now() != Time(3*Millisecond) {
		t.Errorf("final time = %v", k.Now())
	}
}

func TestManyProcsDeterministic(t *testing.T) {
	run := func() []string {
		k := New(99)
		var order []string
		for i := 0; i < 20; i++ {
			name := string(rune('a' + i))
			k.Go(name, func(p *Proc) {
				r := p.Kernel().Rand("proc:" + p.Name())
				for j := 0; j < 5; j++ {
					p.Sleep(Duration(r.Intn(1000)) * Microsecond)
					order = append(order, p.Name())
				}
			})
		}
		k.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != 100 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
