package sim

import "testing"

func BenchmarkEventThroughput(b *testing.B) {
	k := New(1)
	n := 0
	var reschedule func()
	reschedule = func() {
		n++
		if n < b.N {
			k.After(Microsecond, "e", reschedule)
		}
	}
	k.After(0, "e", reschedule)
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
	if n < b.N {
		b.Fatal("not all events ran")
	}
}

func BenchmarkProcContextSwitch(b *testing.B) {
	k := New(1)
	k.Go("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

func BenchmarkChanHandoff(b *testing.B) {
	k := New(1)
	var c Chan[int]
	k.Go("consumer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c.Get(p)
		}
	})
	k.Go("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			c.Put(i)
			p.Yield()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}
