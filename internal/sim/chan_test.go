package sim

import "testing"

// TestChanBoundedMemory drives a million Put/Get cycles through one Chan
// and asserts the ring never grows beyond its tiny high-water mark. The
// pre-ring implementation re-sliced a growing backing array on every
// Get, so a long-lived queue retained every value it had ever carried;
// this is the regression test for that leak.
func TestChanBoundedMemory(t *testing.T) {
	var c Chan[*int]
	const cycles = 1 << 20
	for i := 0; i < cycles; i++ {
		a, b := i, i+1
		c.Put(&a)
		c.Put(&b)
		if got, ok := c.TryGet(); !ok || *got != i {
			t.Fatalf("cycle %d: got %v, %v", i, got, ok)
		}
		if got, ok := c.TryGet(); !ok || *got != i+1 {
			t.Fatalf("cycle %d: got %v, %v", i, got, ok)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("queue not drained: %d items", c.Len())
	}
	// High-water mark was 2, so the power-of-two ring must still be at
	// its minimum size — a growing buffer here is the leak coming back.
	if len(c.buf) > 4 {
		t.Errorf("ring grew to %d slots after %d bounded cycles", len(c.buf), cycles)
	}
	// Consumed slots must be zeroed so the ring pins no dead values.
	for i, v := range c.buf {
		if v != nil {
			t.Errorf("slot %d retains a consumed value", i)
		}
	}
}

// TestChanBlockingFIFO checks the process-facing contract under the
// kernel: Get blocks until Put, items arrive in order, and interleaved
// wraparound keeps FIFO order intact.
func TestChanBlockingFIFO(t *testing.T) {
	k := New(1)
	var c Chan[int]
	const n = 10000
	var got []int
	k.Go("consumer", func(p *Proc) {
		for i := 0; i < n; i++ {
			got = append(got, c.Get(p))
		}
	})
	k.Go("producer", func(p *Proc) {
		for i := 0; i < n; i++ {
			c.Put(i)
			if i%3 == 0 {
				p.Yield() // vary occupancy so the ring wraps
			}
		}
	})
	k.Run()
	if len(got) != n {
		t.Fatalf("consumed %d of %d items", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("item %d out of order: got %d", i, v)
		}
	}
}
