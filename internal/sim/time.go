// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock, a priority queue of events with a
// deterministic tie-break, and a cooperative process scheduler in which at
// most one simulation process (a goroutine) runs at any instant. All
// randomness is drawn from named, seeded generators so a simulation with a
// given seed is exactly reproducible.
package sim

import (
	"fmt"
	"time"
)

// Time is an instant of virtual simulation time, in nanoseconds since the
// start of the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring time.Duration's constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / 1e6 }

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t − u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String formats t with microsecond precision, e.g. "12.345678s".
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// Seconds reports d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Milliseconds reports d as a floating-point number of milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / 1e6 }

// Std converts d to a time.Duration (both are nanosecond counts).
func (d Duration) Std() time.Duration { return time.Duration(d) }

// DurationOf converts a floating-point number of seconds to a Duration,
// rounding to the nearest nanosecond.
func DurationOf(seconds float64) Duration {
	return Duration(seconds*1e9 + 0.5)
}

// TimeOf converts a floating-point number of seconds to a Time.
func TimeOf(seconds float64) Time { return Time(DurationOf(seconds)) }
