package catalog

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"fxnet/internal/fx"
	"fxnet/internal/model"
	"fxnet/internal/qos"
)

func openTestCatalog(t *testing.T) *Catalog {
	t.Helper()
	c, err := Open(filepath.Join(t.TempDir(), "models"))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPutGetRoundTrip(t *testing.T) {
	c := openTestCatalog(t)
	e := sampleEntry()
	if err := c.Put(e); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(e.Key)
	if !ok {
		t.Fatal("Get missed a stored entry")
	}
	if !entriesEqual(e, got) {
		t.Fatal("stored entry round-trip mismatch")
	}
	if c.Hits() == 0 {
		t.Error("hit counter not incremented")
	}

	// A fresh catalog over the same directory must load from disk.
	c2, err := Open(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	got2, ok := c2.Get(e.Key)
	if !ok || !entriesEqual(e, got2) {
		t.Fatal("disk reload mismatch")
	}
}

func TestGetMiss(t *testing.T) {
	c := openTestCatalog(t)
	if _, ok := c.Get("nope"); ok {
		t.Fatal("Get hit on an empty catalog")
	}
	if c.Misses() != 1 {
		t.Errorf("misses = %d, want 1", c.Misses())
	}
}

func TestCorruptEntryQuarantined(t *testing.T) {
	c := openTestCatalog(t)
	e := sampleEntry()
	if err := c.Put(e); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(c.Dir(), e.Key+ext)
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body[len(body)/2] ^= 0x01
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Get(e.Key); ok {
		t.Fatal("corrupt entry served")
	}
	if c2.Quarantined() != 1 {
		t.Errorf("quarantined = %d, want 1", c2.Quarantined())
	}
	if _, err := os.Stat(filepath.Join(c.Dir(), "corrupt", e.Key+ext)); err != nil {
		t.Errorf("quarantined file missing: %v", err)
	}
	// The key must now be a plain miss, ready for a refit.
	if _, ok := c2.Get(e.Key); ok {
		t.Fatal("quarantined key still hitting")
	}
}

func TestMisfiledEntryRejected(t *testing.T) {
	c := openTestCatalog(t)
	e := sampleEntry()
	// File a valid entry under the wrong key.
	if err := os.WriteFile(filepath.Join(c.Dir(), "wrongkey"+ext), Encode(e), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("wrongkey"); ok {
		t.Fatal("entry served under a key that is not its own")
	}
	if c.Quarantined() != 1 {
		t.Errorf("quarantined = %d, want 1", c.Quarantined())
	}
}

func TestPutOverwriteAndList(t *testing.T) {
	c := openTestCatalog(t)
	a := sampleEntry()
	b := sampleEntry()
	b.Key = "ffff23def4567890abc123def4567890abc123def4567890abc123def4567890"
	b.Program = "sor"
	b.P = 8
	for _, e := range []*Entry{a, b} {
		if err := c.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite a with a different spike budget.
	a2 := sampleEntry()
	a2.Spikes = 16
	if err := c.Put(a2); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(a.Key)
	if !ok || got.Spikes != 16 {
		t.Fatalf("overwrite not visible: %+v", got)
	}

	list, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 {
		t.Fatalf("List returned %d entries, want 2", len(list))
	}
	// Sorted by (Program, P, Key): 2dfft before sor.
	if list[0].Program != "2dfft" || list[1].Program != "sor" {
		t.Errorf("List order: %s, %s", list[0].Program, list[1].Program)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestPutDeterministicBytes(t *testing.T) {
	c1 := openTestCatalog(t)
	c2 := openTestCatalog(t)
	e := sampleEntry()
	if err := c1.Put(e); err != nil {
		t.Fatal(err)
	}
	if err := c2.Put(e); err != nil {
		t.Fatal(err)
	}
	b1, err := os.ReadFile(filepath.Join(c1.Dir(), e.Key+ext))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(filepath.Join(c2.Dir(), e.Key+ext))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("two Puts of one entry produced different bytes")
	}
}

// admissionEntry builds an entry with the bandwidth shape (mean, peak,
// fundamental) the admission derivation consumes.
func admissionEntry(program string, p int, meanKBps, peakKBps, f0 float64) *Entry {
	return &Entry{
		Key:              program + "-" + string(rune('0'+p)),
		Program:          program,
		P:                p,
		Spikes:           8,
		Model:            model.BandwidthModel{DC: meanKBps, Components: []model.Component{{Freq: f0, Coeff: complex(meanKBps/4, 0)}}},
		SeriesDT:         0.01,
		SeriesN:          1000,
		MeasuredMeanKBps: meanKBps,
		ModelMeanKBps:    meanKBps,
		FundamentalHz:    f0,
		PeakKBps:         peakKBps,
	}
}

func TestAdmissionPoint(t *testing.T) {
	// sor: neighbor pattern, P senders. 100 KB/s mean, 400 KB/s peak,
	// 2 Hz bursts → tbi 0.5 s, 50 KB per interval, 12.5 KB/conn on P=4.
	e := admissionEntry("sor", 4, 100, 400, 2)
	pt, err := e.AdmissionPoint()
	if err != nil {
		t.Fatal(err)
	}
	if pt.P != 4 {
		t.Errorf("P = %d, want 4", pt.P)
	}
	tbi := 0.5
	totalBytes := 100e3 * tbi
	wantBurst := totalBytes / 4 // neighbor: P concurrent senders
	if !approx(pt.BurstBytes, wantBurst, 1e-9) {
		t.Errorf("BurstBytes = %g, want %g", pt.BurstBytes, wantBurst)
	}
	wantLocal := tbi - totalBytes/400e3
	if !approx(pt.LocalSeconds, wantLocal, 1e-9) {
		t.Errorf("LocalSeconds = %g, want %g", pt.LocalSeconds, wantLocal)
	}

	// Degenerate: no spike → no admission point.
	flat := admissionEntry("sor", 4, 100, 100, 0)
	if _, err := flat.AdmissionPoint(); err == nil {
		t.Error("DC-only entry produced an admission point")
	}
	// Zero traffic → no admission point.
	idle := admissionEntry("sor", 4, 0, 0, 2)
	if _, err := idle.AdmissionPoint(); err == nil {
		t.Error("zero-traffic entry produced an admission point")
	}
}

func TestCatalogProgramNegotiate(t *testing.T) {
	c := openTestCatalog(t)
	// Two measured P for sor; P=8 has the shorter implied burst interval
	// (higher fundamental), so an idle network should pick it.
	if err := c.Put(admissionEntry("sor", 4, 100, 400, 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(admissionEntry("sor", 8, 120, 600, 5)); err != nil {
		t.Fatal(err)
	}
	prog, err := c.Program("sor")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Pattern != fx.Neighbor {
		t.Errorf("pattern = %v, want neighbor", prog.Pattern)
	}
	net := qos.NewNetwork(2e6)
	off, err := net.Negotiate(prog, 32)
	if err != nil {
		t.Fatal(err)
	}
	if off.P != 4 && off.P != 8 {
		t.Fatalf("negotiated P=%d is not a measured point", off.P)
	}
	// An unmeasured P must be rejected, not priced.
	if _, err := net.Evaluate(prog, 6); err == nil {
		t.Error("Evaluate priced an unmeasured P")
	}

	if _, err := c.Program("hist"); err == nil {
		t.Error("Program succeeded for a program with no entries")
	}
	if _, err := c.Program("nosuch"); err == nil {
		t.Error("Program succeeded for an unknown program")
	}
}

func approx(got, want, tol float64) bool {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d <= tol
}
