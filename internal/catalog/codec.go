package catalog

// The .fxmodel codec: a deterministic binary rendering of one Entry,
// framed with the same discipline as the journal —
//
//	magic(8) | crc32c(4) | payload
//
// where the CRC (Castagnoli, the journal's polynomial) covers every
// payload byte. The payload is a fixed field sequence of little-endian
// scalars and length-prefixed strings; there are no maps, no timestamps,
// and no platform-dependent values, so encoding the same Entry always
// produces the same bytes — the property the bench harness checks by
// comparing digests across repeated fits.
//
// Floats are stored as IEEE-754 bit patterns, so NaN error bounds from
// degenerate fits round-trip exactly.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"fxnet/internal/model"
)

// Magic heads every .fxmodel file; the trailing digit is the format
// version.
const Magic = "FXMODEL1"

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Decode limits: a legitimate entry has a ~64-byte key, a short program
// name, and at most a few dozen spectral components. Anything claiming
// more is corrupt (or adversarial) input, rejected before allocation.
const (
	maxStringLen  = 1 << 12
	maxComponents = 1 << 16
)

// Encode renders an entry. The output is a pure function of the entry's
// fields.
func Encode(e *Entry) []byte {
	var p payload
	p.str(e.Key)
	p.str(e.Program)
	p.str(e.FaultScript)
	p.u32(uint32(e.P))
	p.u64(uint64(e.Seed))
	p.f64(e.BitRateBps)
	p.bool(e.Switched)
	p.u32(uint32(e.Spikes))
	p.f64(e.MinSepHz)
	p.f64(e.Model.DC)
	p.u32(uint32(len(e.Model.Components)))
	for _, c := range e.Model.Components {
		p.f64(c.Freq)
		p.f64(real(c.Coeff))
		p.f64(imag(c.Coeff))
	}
	p.f64(e.SeriesDT)
	p.u32(uint32(e.SeriesN))
	p.f64(e.MeasuredMeanKBps)
	p.f64(e.ModelMeanKBps)
	p.f64(e.MeanRelErr)
	p.f64(e.RMSErrKBps)
	p.f64(e.NRMSE)
	p.f64(e.Correlation)
	p.f64(e.EnergyFraction)
	p.f64(e.FundamentalHz)
	p.f64(e.PeakKBps)

	out := make([]byte, 0, len(Magic)+4+len(p.b))
	out = append(out, Magic...)
	out = binary.LittleEndian.AppendUint32(out, crc32.Checksum(p.b, crcTable))
	return append(out, p.b...)
}

// Decode parses an .fxmodel body, verifying magic, checksum, and exact
// length. It never panics on arbitrary input (the codec fuzz test's
// contract).
func Decode(b []byte) (*Entry, error) {
	head := len(Magic) + 4
	if len(b) < head || string(b[:len(Magic)]) != Magic {
		return nil, errors.New("catalog: bad model magic")
	}
	want := binary.LittleEndian.Uint32(b[len(Magic):head])
	body := b[head:]
	if crc32.Checksum(body, crcTable) != want {
		return nil, errors.New("catalog: model checksum mismatch")
	}
	r := reader{b: body}
	e := &Entry{}
	e.Key = r.str()
	e.Program = r.str()
	e.FaultScript = r.str()
	e.P = int(r.u32())
	e.Seed = int64(r.u64())
	e.BitRateBps = r.f64()
	e.Switched = r.bool()
	e.Spikes = int(r.u32())
	e.MinSepHz = r.f64()
	e.Model.DC = r.f64()
	n := r.u32()
	if n > maxComponents {
		return nil, fmt.Errorf("catalog: model claims %d components", n)
	}
	if r.err == nil && n > 0 {
		e.Model.Components = make([]model.Component, 0, n)
		for i := uint32(0); i < n && r.err == nil; i++ {
			f := r.f64()
			re := r.f64()
			im := r.f64()
			e.Model.Components = append(e.Model.Components, model.Component{Freq: f, Coeff: complex(re, im)})
		}
	}
	e.SeriesDT = r.f64()
	e.SeriesN = int(r.u32())
	e.MeasuredMeanKBps = r.f64()
	e.ModelMeanKBps = r.f64()
	e.MeanRelErr = r.f64()
	e.RMSErrKBps = r.f64()
	e.NRMSE = r.f64()
	e.Correlation = r.f64()
	e.EnergyFraction = r.f64()
	e.FundamentalHz = r.f64()
	e.PeakKBps = r.f64()
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("catalog: %d trailing bytes after model entry", len(r.b))
	}
	return e, nil
}

// payload accumulates the little-endian field sequence.
type payload struct{ b []byte }

func (p *payload) u32(v uint32) { p.b = binary.LittleEndian.AppendUint32(p.b, v) }
func (p *payload) u64(v uint64) { p.b = binary.LittleEndian.AppendUint64(p.b, v) }
func (p *payload) f64(v float64) {
	p.u64(math.Float64bits(v))
}
func (p *payload) bool(v bool) {
	if v {
		p.b = append(p.b, 1)
	} else {
		p.b = append(p.b, 0)
	}
}
func (p *payload) str(s string) {
	p.u32(uint32(len(s)))
	p.b = append(p.b, s...)
}

// reader consumes the field sequence, latching the first error; reads
// after an error return zero values.
type reader struct {
	b   []byte
	err error
}

var errShort = errors.New("catalog: truncated model entry")

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = errShort
		return nil
	}
	b := r.b[:n]
	r.b = r.b[n:]
	return b
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) bool() bool {
	b := r.take(1)
	if b == nil {
		return false
	}
	if b[0] > 1 {
		r.err = errors.New("catalog: bad boolean encoding")
		return false
	}
	return b[0] == 1
}

func (r *reader) str() string {
	n := r.u32()
	if n > maxStringLen {
		if r.err == nil {
			r.err = fmt.Errorf("catalog: string field claims %d bytes", n)
		}
		return ""
	}
	b := r.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}
