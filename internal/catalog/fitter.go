package catalog

// Fitter: the simulate-and-fit pipeline behind the catalog. A fit
// request resolves in one of three tiers, cheapest first:
//
//  1. catalog hit — the key already has an entry with the requested
//     spike budget; answer in microseconds.
//  2. run-cache hit — the farm's disk cache has the run's spectrum-level
//     entry; fit from the cached Report without re-simulating.
//  3. simulate — execute the run through the farm's streaming-analysis
//     pipeline, then fit.
//
// Concurrent fits of the same key single-flight at this layer (the farm
// additionally single-flights the simulation beneath), and Sweep pushes
// whole (program × P × bit-rate × faults) grids through farm.RunBatchCtx
// so the worker pool, dedup, and cache do their work batch-wide.

import (
	"context"
	"errors"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fxnet/internal/core"
	"fxnet/internal/farm"
	"fxnet/internal/model"
)

// DefaultSpikes is the spike budget used when Options.Spikes is 0 —
// enough for every measured program's spectrum to retain its dominant
// structure (the paper's models use a handful of spikes).
const DefaultSpikes = 8

// Options configure one fit.
type Options struct {
	// Spikes is the spike budget k; <= 0 selects DefaultSpikes.
	Spikes int
	// MinSepHz is the minimum spike separation, collapsing adjacent
	// leakage lobes; <= 0 selects twice the spectrum's bin width 2·Δf.
	MinSepHz float64
}

func (o Options) withDefaults() Options {
	if o.Spikes <= 0 {
		o.Spikes = DefaultSpikes
	}
	return o
}

// Provenance reports how a fit was answered.
type Provenance struct {
	// CatalogHit: the entry was already in the catalog; nothing ran.
	CatalogHit bool
	// RunCached / RunDeduped: the simulation was answered by the farm's
	// disk cache / shared with a concurrent twin.
	RunCached  bool
	RunDeduped bool
	// Wall is the real time the fit took end to end.
	Wall time.Duration
}

// Fitter fits spectral models through an experiment farm into a catalog.
// Safe for concurrent use.
type Fitter struct {
	farm *farm.Farm
	cat  *Catalog

	mu       sync.Mutex
	inflight map[string]*fitCall

	fits atomic.Int64
}

// fitCall is a single-flight slot for one (key, spikes) fit.
type fitCall struct {
	done chan struct{}
	e    *Entry
	prov Provenance
	err  error
}

// NewFitter creates a fitter over the given farm and catalog.
func NewFitter(f *farm.Farm, c *Catalog) *Fitter {
	return &Fitter{farm: f, cat: c, inflight: make(map[string]*fitCall)}
}

// Catalog reports the backing catalog.
func (ft *Fitter) Catalog() *Catalog { return ft.cat }

// Fits counts fits performed (catalog hits excluded).
func (ft *Fitter) Fits() int64 { return ft.fits.Load() }

// Fit returns the fitted model for cfg, simulating and fitting only on a
// catalog miss. An existing entry hits only if its spike budget matches
// the request; a different budget refits and overwrites (latest fit
// wins — the catalog stores one model per run).
func (ft *Fitter) Fit(ctx context.Context, cfg core.RunConfig, opts Options) (*Entry, Provenance, error) {
	start := time.Now()
	opts = opts.withDefaults()
	key := farm.Key(cfg)
	if e, ok := ft.cat.Get(key); ok && e.Spikes == opts.Spikes {
		return e, Provenance{CatalogHit: true, Wall: time.Since(start)}, nil
	}

	slot := key + "/" + strconv.Itoa(opts.Spikes)
	ft.mu.Lock()
	if c, ok := ft.inflight[slot]; ok {
		ft.mu.Unlock()
		select {
		case <-c.done:
			prov := c.prov
			prov.Wall = time.Since(start)
			return c.e, prov, c.err
		case <-ctx.Done():
			return nil, Provenance{Wall: time.Since(start)}, ctx.Err()
		}
	}
	c := &fitCall{done: make(chan struct{})}
	ft.inflight[slot] = c
	ft.mu.Unlock()

	c.e, c.prov, c.err = ft.lead(ctx, key, cfg, opts)
	ft.mu.Lock()
	delete(ft.inflight, slot)
	ft.mu.Unlock()
	close(c.done)
	prov := c.prov
	prov.Wall = time.Since(start)
	return c.e, prov, c.err
}

// lead performs the miss path: run (stream pipeline, so a warm run
// cache answers without simulating), fit, store.
func (ft *Fitter) lead(ctx context.Context, key string, cfg core.RunConfig, opts Options) (*Entry, Provenance, error) {
	out := ft.farm.RunBatchCtx(ctx, []farm.Job{{Label: cfg.Program, Config: cfg, Stream: true}})
	jr := out[0]
	prov := Provenance{RunCached: jr.Cached, RunDeduped: jr.Deduped}
	if jr.Err != nil {
		return nil, prov, jr.Err
	}
	e, err := ft.fitReport(key, cfg, jr.Report, opts)
	if err != nil {
		return nil, prov, err
	}
	return e, prov, nil
}

// Result is one Sweep outcome.
type Result struct {
	Config core.RunConfig
	Entry  *Entry
	Prov   Provenance
	Err    error
}

// Sweep fits every configuration, pushing the misses through
// farm.RunBatchCtx in one batch so the pool executes them concurrently
// and identical configurations simulate once. Results are in submission
// order. A warm run cache makes a sweep pure fitting; a warm catalog
// makes it pure lookup.
func (ft *Fitter) Sweep(ctx context.Context, cfgs []core.RunConfig, opts Options) []Result {
	start := time.Now()
	opts = opts.withDefaults()
	out := make([]Result, len(cfgs))
	var jobs []farm.Job
	var idx []int
	for i, cfg := range cfgs {
		out[i].Config = cfg
		key := farm.Key(cfg)
		if e, ok := ft.cat.Get(key); ok && e.Spikes == opts.Spikes {
			out[i].Entry = e
			out[i].Prov = Provenance{CatalogHit: true, Wall: time.Since(start)}
			continue
		}
		jobs = append(jobs, farm.Job{Label: cfg.Program, Config: cfg, Stream: true})
		idx = append(idx, i)
	}
	for j, jr := range ft.farm.RunBatchCtx(ctx, jobs) {
		i := idx[j]
		out[i].Prov = Provenance{RunCached: jr.Cached, RunDeduped: jr.Deduped}
		if jr.Err != nil {
			out[i].Err = jr.Err
		} else {
			out[i].Entry, out[i].Err = ft.fitReport(jr.Key, jr.Job.Config, jr.Report, opts)
		}
		out[i].Prov.Wall = time.Since(start)
	}
	return out
}

// fitReport fits a model to a run's Report, computes the error bounds by
// regenerating the model's series over the measured window, and stores
// the entry. The entry is a pure function of (Report, opts), and the
// Report is a pure function of the RunConfig (the determinism contract),
// so repeated fits of one configuration store byte-identical entries.
func (ft *Fitter) fitReport(key string, cfg core.RunConfig, rep *core.Report, opts Options) (*Entry, error) {
	if rep == nil || len(rep.AggSeries) == 0 || rep.SeriesDT <= 0 {
		return nil, errors.New("catalog: run produced no bandwidth series to fit")
	}
	minSep := opts.MinSepHz
	if minSep <= 0 && rep.AggSpectrum != nil {
		minSep = 2 * rep.AggSpectrum.DF
	}
	m, met := model.Fit(rep.AggSeries, rep.SeriesDT, opts.Spikes, minSep)
	recon := m.Series(len(rep.AggSeries), rep.SeriesDT)

	measMean := mean(rep.AggSeries)
	// Recenter the DC term on the measured window. The fit's FFT zero-pads
	// the series to a power of two, so over the unpadded window the
	// retained spikes do not average to zero and the model's mean drifts
	// off the measurement. Series is linear in DC, so shifting it moves
	// every regenerated sample by exactly the drift — the residual mean
	// goes to zero and the RMS error can only shrink.
	if delta := measMean - mean(recon); delta != 0 {
		m.DC += delta
		for i := range recon {
			recon[i] += delta
		}
	}
	modelMean := mean(recon)
	var sq, peak float64
	for i, r := range recon {
		d := r - rep.AggSeries[i]
		sq += d * d
		if r > peak {
			peak = r
		}
	}
	rms := math.Sqrt(sq / float64(len(recon)))
	f0 := 0.0
	if len(m.Components) > 0 {
		// Components are sorted strongest first; the strongest spike is
		// the program's burst frequency.
		f0 = m.Components[0].Freq
	}
	e := &Entry{
		Key:              key,
		Program:          cfg.Program,
		P:                EffectiveP(cfg),
		Seed:             cfg.Seed,
		BitRateBps:       cfg.BitRate,
		Switched:         cfg.Switched,
		FaultScript:      cfg.FaultScript,
		Spikes:           opts.Spikes,
		MinSepHz:         minSep,
		Model:            *m,
		SeriesDT:         rep.SeriesDT,
		SeriesN:          len(rep.AggSeries),
		MeasuredMeanKBps: measMean,
		ModelMeanKBps:    modelMean,
		MeanRelErr:       relErr(modelMean, measMean),
		RMSErrKBps:       rms,
		NRMSE:            met.NRMSE,
		Correlation:      met.Correlation,
		EnergyFraction:   met.EnergyFraction,
		FundamentalHz:    f0,
		PeakKBps:         peak,
	}
	ft.fits.Add(1)
	// The fit itself is good regardless of the store: a failure (full
	// disk, read-only dir) costs the next caller a refit, not this caller
	// the answer, and the catalog's store-failure counter surfaces it.
	_ = ft.cat.Put(e)
	return e, nil
}
