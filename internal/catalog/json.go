package catalog

// The JSON wire form of a catalog entry, shared by fxnetd's /v1/models
// endpoints and fxmodel's -json output. Go's encoding/json rejects NaN
// and ±Inf, which degenerate fits legitimately produce (a constant
// series has an undefined correlation), so float fields marshal through
// a nullable wrapper: non-finite becomes null, and null parses back to
// NaN.

import (
	"encoding/json"
	"math"

	"fxnet/internal/model"
)

// JSONFloat marshals NaN/±Inf as null.
type JSONFloat float64

// MarshalJSON renders non-finite values as null.
func (f JSONFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON parses null as NaN.
func (f *JSONFloat) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = JSONFloat(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = JSONFloat(v)
	return nil
}

// ComponentJSON is one retained spectral spike.
type ComponentJSON struct {
	FreqHz  JSONFloat `json:"freq_hz"`
	CoeffRe JSONFloat `json:"coeff_re"`
	CoeffIm JSONFloat `json:"coeff_im"`
	// AmplitudeKBps is the component's peak-to-peak contribution 2|a|,
	// derived for readability.
	AmplitudeKBps JSONFloat `json:"amplitude_kbps"`
}

// EntryJSON is the wire form of an Entry.
type EntryJSON struct {
	Key         string  `json:"key"`
	Program     string  `json:"program"`
	P           int     `json:"p"`
	Seed        int64   `json:"seed"`
	BitRateBps  float64 `json:"bitrate_bps,omitempty"`
	Switched    bool    `json:"switched,omitempty"`
	FaultScript string  `json:"faults,omitempty"`

	Spikes   int       `json:"spikes"`
	MinSepHz JSONFloat `json:"min_sep_hz"`

	DCKBps     JSONFloat       `json:"dc_kbps"`
	Components []ComponentJSON `json:"components"`

	SeriesDT JSONFloat `json:"series_dt_s"`
	SeriesN  int       `json:"series_n"`

	MeasuredMeanKBps JSONFloat `json:"measured_mean_kbps"`
	ModelMeanKBps    JSONFloat `json:"model_mean_kbps"`
	MeanRelErr       JSONFloat `json:"mean_rel_err"`
	RMSErrKBps       JSONFloat `json:"rms_err_kbps"`
	NRMSE            JSONFloat `json:"nrmse"`
	Correlation      JSONFloat `json:"correlation"`
	EnergyFraction   JSONFloat `json:"energy_fraction"`

	FundamentalHz JSONFloat `json:"fundamental_hz"`
	PeakKBps      JSONFloat `json:"peak_kbps"`
}

// ToJSON converts an entry to its wire form.
func ToJSON(e *Entry) EntryJSON {
	out := EntryJSON{
		Key:              e.Key,
		Program:          e.Program,
		P:                e.P,
		Seed:             e.Seed,
		BitRateBps:       e.BitRateBps,
		Switched:         e.Switched,
		FaultScript:      e.FaultScript,
		Spikes:           e.Spikes,
		MinSepHz:         JSONFloat(e.MinSepHz),
		DCKBps:           JSONFloat(e.Model.DC),
		Components:       make([]ComponentJSON, 0, len(e.Model.Components)),
		SeriesDT:         JSONFloat(e.SeriesDT),
		SeriesN:          e.SeriesN,
		MeasuredMeanKBps: JSONFloat(e.MeasuredMeanKBps),
		ModelMeanKBps:    JSONFloat(e.ModelMeanKBps),
		MeanRelErr:       JSONFloat(e.MeanRelErr),
		RMSErrKBps:       JSONFloat(e.RMSErrKBps),
		NRMSE:            JSONFloat(e.NRMSE),
		Correlation:      JSONFloat(e.Correlation),
		EnergyFraction:   JSONFloat(e.EnergyFraction),
		FundamentalHz:    JSONFloat(e.FundamentalHz),
		PeakKBps:         JSONFloat(e.PeakKBps),
	}
	for _, c := range e.Model.Components {
		out.Components = append(out.Components, ComponentJSON{
			FreqHz:        JSONFloat(c.Freq),
			CoeffRe:       JSONFloat(real(c.Coeff)),
			CoeffIm:       JSONFloat(imag(c.Coeff)),
			AmplitudeKBps: JSONFloat(2 * math.Hypot(real(c.Coeff), imag(c.Coeff))),
		})
	}
	return out
}

// FromJSON converts a wire-form entry back (the binary codec remains the
// storage format; this supports tooling that consumed -json output).
func FromJSON(j EntryJSON) *Entry {
	e := &Entry{
		Key:              j.Key,
		Program:          j.Program,
		P:                j.P,
		Seed:             j.Seed,
		BitRateBps:       j.BitRateBps,
		Switched:         j.Switched,
		FaultScript:      j.FaultScript,
		Spikes:           j.Spikes,
		MinSepHz:         float64(j.MinSepHz),
		SeriesDT:         float64(j.SeriesDT),
		SeriesN:          j.SeriesN,
		MeasuredMeanKBps: float64(j.MeasuredMeanKBps),
		ModelMeanKBps:    float64(j.ModelMeanKBps),
		MeanRelErr:       float64(j.MeanRelErr),
		RMSErrKBps:       float64(j.RMSErrKBps),
		NRMSE:            float64(j.NRMSE),
		Correlation:      float64(j.Correlation),
		EnergyFraction:   float64(j.EnergyFraction),
		FundamentalHz:    float64(j.FundamentalHz),
		PeakKBps:         float64(j.PeakKBps),
	}
	e.Model.DC = float64(j.DCKBps)
	for _, c := range j.Components {
		e.Model.Components = append(e.Model.Components, model.Component{
			Freq:  float64(c.FreqHz),
			Coeff: complex(float64(c.CoeffRe), float64(c.CoeffIm)),
		})
	}
	return e
}
