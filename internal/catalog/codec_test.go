package catalog

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"reflect"
	"testing"

	"fxnet/internal/model"
)

func sampleEntry() *Entry {
	return &Entry{
		Key:         "abc123def4567890abc123def4567890abc123def4567890abc123def4567890",
		Program:     "2dfft",
		P:           4,
		Seed:        42,
		BitRateBps:  1e7,
		Switched:    true,
		FaultScript: "5s:linkdown host2",
		Spikes:      8,
		MinSepHz:    0.39,
		Model: model.BandwidthModel{
			DC: 754.8,
			Components: []model.Component{
				{Freq: 3.2, Coeff: complex(120.5, -33.25)},
				{Freq: 6.4, Coeff: complex(-15.125, 7.75)},
			},
		},
		SeriesDT:         0.01,
		SeriesN:          2048,
		MeasuredMeanKBps: 754.8,
		ModelMeanKBps:    754.8,
		MeanRelErr:       0,
		RMSErrKBps:       41.7,
		NRMSE:            0.21,
		Correlation:      math.NaN(), // degenerate metrics must round-trip
		EnergyFraction:   0.93,
		FundamentalHz:    3.2,
		PeakKBps:         1100.2,
	}
}

// entriesEqual compares entries treating NaN as equal to NaN (DeepEqual
// already does this for float fields via bit-level map semantics? No —
// use explicit bit comparison through re-encoding).
func entriesEqual(a, b *Entry) bool {
	return bytes.Equal(Encode(a), Encode(b))
}

func TestCodecRoundTrip(t *testing.T) {
	e := sampleEntry()
	body := Encode(e)
	got, err := Decode(body)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !entriesEqual(e, got) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", e, got)
	}
	// Every non-NaN field must also match structurally.
	if got.Key != e.Key || got.Program != e.Program || got.P != e.P ||
		got.Seed != e.Seed || got.Spikes != e.Spikes ||
		!reflect.DeepEqual(got.Model.Components, e.Model.Components) {
		t.Fatalf("field mismatch: %+v vs %+v", got, e)
	}
	if !math.IsNaN(got.Correlation) {
		t.Fatalf("NaN correlation did not round-trip: %v", got.Correlation)
	}
}

func TestCodecDeterministic(t *testing.T) {
	e := sampleEntry()
	if !bytes.Equal(Encode(e), Encode(e)) {
		t.Fatal("Encode is not deterministic")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	body := Encode(sampleEntry())
	if _, err := Decode(body[:len(body)-3]); err == nil {
		t.Error("truncated body decoded")
	}
	for _, off := range []int{0, len(Magic) + 1, len(Magic) + 10, len(body) - 1} {
		bad := append([]byte(nil), body...)
		bad[off] ^= 0x40
		if _, err := Decode(bad); err == nil {
			t.Errorf("bit flip at %d decoded", off)
		}
	}
	if _, err := Decode(nil); err == nil {
		t.Error("empty body decoded")
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	body := Encode(sampleEntry())
	// Extend the payload and refresh the checksum so only the length
	// check can catch it.
	ext := append(append([]byte(nil), body...), 0xAB)
	sum := crc32.Checksum(ext[len(Magic)+4:], crcTable)
	binary.LittleEndian.PutUint32(ext[len(Magic):], sum)
	if _, err := Decode(ext); err == nil {
		t.Error("trailing bytes decoded")
	}
}

// FuzzDecode: arbitrary bytes must never panic, and any body that
// decodes successfully must re-encode byte-identically (the codec is
// canonical: there is exactly one encoding per entry).
func FuzzDecode(f *testing.F) {
	f.Add(Encode(sampleEntry()))
	f.Add(Encode(&Entry{Key: "k", Program: "sor"}))
	f.Add([]byte(Magic))
	f.Add([]byte("FXMODEL1\x00\x00\x00\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, body []byte) {
		e, err := Decode(body)
		if err != nil {
			return
		}
		if !bytes.Equal(Encode(e), body) {
			t.Fatalf("decoded entry does not re-encode to its input")
		}
	})
}

// FuzzFitEncodeDecodeRegenerate drives the full loop the catalog relies
// on: fit a model to an arbitrary bandwidth series, persist it through
// the codec, and regenerate — the revived model must reproduce the
// original model's series bit for bit.
func FuzzFitEncodeDecodeRegenerate(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, uint8(4))
	f.Add([]byte{0, 0, 0, 0}, uint8(0))
	f.Add([]byte{255, 0, 255, 0, 255, 0, 255, 0}, uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, k uint8) {
		if len(raw) < 2 {
			return
		}
		series := make([]float64, len(raw))
		for i, b := range raw {
			series[i] = float64(b) * 7.5
		}
		const dt = 0.01
		m, met := model.Fit(series, dt, int(k%12), 2.0/(float64(len(series))*dt))
		e := &Entry{
			Key:         "fuzz",
			Program:     "sor",
			P:           4,
			Spikes:      int(k % 12),
			Model:       *m,
			SeriesDT:    dt,
			SeriesN:     len(series),
			NRMSE:       met.NRMSE,
			Correlation: met.Correlation,
		}
		got, err := Decode(Encode(e))
		if err != nil {
			t.Fatalf("Decode of freshly encoded entry: %v", err)
		}
		want := m.Series(len(series), dt)
		have := got.Model.Series(len(series), dt)
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(have[i]) {
				t.Fatalf("regenerated series diverges at %d: %v vs %v", i, want[i], have[i])
			}
		}
	})
}
