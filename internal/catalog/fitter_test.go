package catalog

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"fxnet/internal/core"
	"fxnet/internal/farm"
	"fxnet/internal/kernels"
	"fxnet/internal/qos"
)

// tinyConfig is the smallest sor run whose bandwidth series still has
// spectral structure to fit (the 32/4 sizing used elsewhere yields a
// 3-sample series — pure DC).
func tinyConfig() core.RunConfig {
	return core.RunConfig{
		Program: "sor",
		P:       4,
		Params:  kernels.Params{N: 64, Iters: 10},
		Seed:    1,
	}
}

// newFitter builds a fitter whose farm and catalog share one temp root,
// mirroring the service layout (<cache>/models beside the run cache).
func newFitter(t *testing.T) (*Fitter, *farm.Farm) {
	t.Helper()
	root := t.TempDir()
	cache, err := farm.OpenCache(filepath.Join(root, "cache"))
	if err != nil {
		t.Fatal(err)
	}
	f := farm.New(farm.Options{Workers: 2, Cache: cache})
	c, err := Open(filepath.Join(root, "cache", "models"))
	if err != nil {
		t.Fatal(err)
	}
	return NewFitter(f, c), f
}

func TestFitColdThenCatalogHit(t *testing.T) {
	ft, f := newFitter(t)
	cfg := tinyConfig()

	e, prov, err := ft.Fit(context.Background(), cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if prov.CatalogHit || prov.RunCached {
		t.Errorf("cold fit reported warm provenance: %+v", prov)
	}
	if e.Key != farm.Key(cfg) {
		t.Errorf("entry key %s != run key", e.Key)
	}
	if e.Program != "sor" || e.P != 4 || e.Spikes != DefaultSpikes {
		t.Errorf("entry identity wrong: %+v", e)
	}
	if len(e.Model.Components) == 0 {
		t.Error("fit retained no spectral components")
	}
	if e.MeasuredMeanKBps <= 0 {
		t.Errorf("measured mean %g not positive", e.MeasuredMeanKBps)
	}
	if !(e.MeanRelErr < 0.05) {
		t.Errorf("mean-bandwidth relative error %g exceeds 5%%", e.MeanRelErr)
	}
	if e.FundamentalHz <= 0 {
		t.Errorf("fundamental %g Hz not positive", e.FundamentalHz)
	}
	execBefore := f.Stats().Executed

	// Warm pass: catalog hit, no simulation, same entry.
	e2, prov2, err := ft.Fit(context.Background(), cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !prov2.CatalogHit {
		t.Errorf("warm fit missed the catalog: %+v", prov2)
	}
	if f.Stats().Executed != execBefore {
		t.Error("catalog hit still simulated")
	}
	if !entriesEqual(e, e2) {
		t.Error("catalog hit returned a different entry")
	}
	if ft.Fits() != 1 {
		t.Errorf("fit count = %d, want 1", ft.Fits())
	}
}

func TestFitSpikeBudgetMismatchRefits(t *testing.T) {
	ft, _ := newFitter(t)
	cfg := tinyConfig()
	if _, _, err := ft.Fit(context.Background(), cfg, Options{Spikes: 4}); err != nil {
		t.Fatal(err)
	}
	e, prov, err := ft.Fit(context.Background(), cfg, Options{Spikes: 8})
	if err != nil {
		t.Fatal(err)
	}
	if prov.CatalogHit {
		t.Error("different spike budget answered from the catalog")
	}
	if !prov.RunCached {
		t.Error("refit re-simulated instead of fitting from the run cache")
	}
	if e.Spikes != 8 {
		t.Errorf("entry spikes = %d, want 8", e.Spikes)
	}
	if ft.Fits() != 2 {
		t.Errorf("fit count = %d, want 2", ft.Fits())
	}
}

func TestFitFromWarmRunCache(t *testing.T) {
	root := t.TempDir()
	cache, err := farm.OpenCache(filepath.Join(root, "cache"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()

	// First fitter simulates and populates the run cache.
	f1 := farm.New(farm.Options{Workers: 2, Cache: cache})
	c1, err := Open(filepath.Join(root, "models-a"))
	if err != nil {
		t.Fatal(err)
	}
	e1, _, err := NewFitter(f1, c1).Fit(context.Background(), cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Second fitter, empty catalog, same run cache: must fit without
	// simulating and produce a byte-identical .fxmodel.
	f2 := farm.New(farm.Options{Workers: 2, Cache: cache})
	c2, err := Open(filepath.Join(root, "models-b"))
	if err != nil {
		t.Fatal(err)
	}
	e2, prov, err := NewFitter(f2, c2).Fit(context.Background(), cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if prov.CatalogHit {
		t.Error("empty catalog reported a hit")
	}
	if !prov.RunCached {
		t.Error("warm run cache not used")
	}
	if f2.Stats().Executed != 0 {
		t.Error("warm run cache still simulated")
	}
	b1, err := os.ReadFile(filepath.Join(c1.Dir(), e1.Key+ext))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(filepath.Join(c2.Dir(), e2.Key+ext))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("refitting the same run produced different .fxmodel bytes")
	}
}

func TestFitSingleFlight(t *testing.T) {
	ft, f := newFitter(t)
	cfg := tinyConfig()
	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	entries := make([]*Entry, callers)
	for i := range callers {
		wg.Add(1)
		go func() {
			defer wg.Done()
			entries[i], _, errs[i] = ft.Fit(context.Background(), cfg, Options{})
		}()
	}
	wg.Wait()
	for i := range callers {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if !entriesEqual(entries[0], entries[i]) {
			t.Fatalf("caller %d got a different entry", i)
		}
	}
	if got := f.Stats().Executed; got != 1 {
		t.Errorf("executed %d simulations, want 1", got)
	}
	if got := ft.Fits(); got != 1 {
		t.Errorf("performed %d fits, want 1", got)
	}
}

func TestSweep(t *testing.T) {
	ft, f := newFitter(t)
	cfgs := []core.RunConfig{tinyConfig(), tinyConfig(), {
		Program: "sor",
		P:       2,
		Params:  kernels.Params{N: 64, Iters: 10},
		Seed:    1,
	}}

	res := ft.Sweep(context.Background(), cfgs, Options{})
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("result %d: %v", i, r.Err)
		}
		if r.Entry == nil {
			t.Fatalf("result %d has no entry", i)
		}
	}
	// The duplicate pair shares one simulation.
	if got := f.Stats().Executed; got != 2 {
		t.Errorf("executed %d simulations, want 2", got)
	}
	if !entriesEqual(res[0].Entry, res[1].Entry) {
		t.Error("duplicate configs produced different entries")
	}
	if res[2].Entry.P != 2 {
		t.Errorf("third entry P = %d, want 2", res[2].Entry.P)
	}

	// Warm sweep: all catalog hits, nothing executed.
	execBefore := f.Stats().Executed
	for i, r := range ft.Sweep(context.Background(), cfgs, Options{}) {
		if r.Err != nil || !r.Prov.CatalogHit {
			t.Errorf("warm result %d: err=%v prov=%+v", i, r.Err, r.Prov)
		}
	}
	if f.Stats().Executed != execBefore {
		t.Error("warm sweep simulated")
	}

	// The catalog now characterizes sor at two processor counts; the
	// negotiation path must work end to end from fitted entries.
	prog, err := ft.Catalog().Program("sor")
	if err != nil {
		t.Fatal(err)
	}
	net := qos.NewNetwork(10e6)
	off, err := net.Negotiate(prog, 32)
	if err != nil {
		t.Fatal(err)
	}
	if off.P != 2 && off.P != 4 {
		t.Errorf("negotiated P=%d is not a measured point", off.P)
	}
}

func TestFitUnknownProgram(t *testing.T) {
	ft, _ := newFitter(t)
	if _, _, err := ft.Fit(context.Background(), core.RunConfig{Program: "nosuch"}, Options{}); err == nil {
		t.Fatal("fit of an unknown program succeeded")
	}
}
