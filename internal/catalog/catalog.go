// Package catalog is the content-addressed, crash-safe store of fitted
// spectral traffic models — the artifact that makes the paper's §7.2–7.3
// payoff operational. A program is simulated (or measured) once, its
// spiky bandwidth spectrum is truncated to a handful of Fourier
// components, and the resulting Entry — model, fit metadata, and
// predicted-vs-measured error bounds — is persisted under the run's
// canonical key. From then on QoS admission answers from a microsecond
// catalog lookup instead of minutes of simulation.
//
// Entries live as .fxmodel files under one directory (by convention
// <cache>/models next to the farm's run cache), written with the same
// durability discipline as the run cache: temp file + fsync + rename +
// directory fsync, with undecodable entries quarantined to corrupt/.
// The binary codec is deterministic — no timestamps, no map iteration —
// so refitting the same RunConfig produces byte-identical files, which
// the bench harness verifies.
package catalog

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"fxnet/internal/core"
	"fxnet/internal/fx"
	"fxnet/internal/kernels"
	"fxnet/internal/model"
	"fxnet/internal/qos"
)

// Entry is one fitted spectral model plus everything needed to judge and
// use it without re-reading the run: identity (the canonical RunConfig
// key and the salient configuration fields, denormalized for listing),
// the truncated Fourier-series model, the fit parameters, and error
// bounds computed by regenerating the model's series over the measured
// window and comparing it against the run's Report.
type Entry struct {
	// Key is the content-addressed identity of the fitted run
	// (farm.Key of its RunConfig).
	Key string
	// Program, P, Seed, BitRateBps, Switched, and FaultScript denormalize
	// the salient RunConfig fields for listing and filtering. P is the
	// effective processor count (defaults resolved), BitRateBps 0 means
	// the default 10 Mb/s.
	Program     string
	P           int
	Seed        int64
	BitRateBps  float64
	Switched    bool
	FaultScript string

	// Spikes is the requested spike budget k; MinSepHz the minimum spike
	// separation used to collapse leakage lobes (0 selected 2·Δf).
	Spikes   int
	MinSepHz float64
	// Model is the fitted truncated Fourier-series bandwidth model (KB/s).
	Model model.BandwidthModel

	// SeriesDT and SeriesN describe the measured bandwidth series the
	// model was fitted to (bin width in seconds, sample count).
	SeriesDT float64
	SeriesN  int

	// Error bounds: the model's series regenerated at (SeriesN, SeriesDT)
	// against the measured series.
	//
	// MeanRelErr is |model mean − measured mean| / measured mean — the
	// mean-bandwidth relative error bound. RMSErrKBps is the per-window
	// RMS error in KB/s. NRMSE, Correlation, and EnergyFraction are the
	// fit metrics of model.Fit.
	MeasuredMeanKBps float64
	ModelMeanKBps    float64
	MeanRelErr       float64
	RMSErrKBps       float64
	NRMSE            float64
	Correlation      float64
	EnergyFraction   float64

	// FundamentalHz is the frequency of the strongest retained spike —
	// the program's burst rate, whose reciprocal is the natural burst
	// interval tbi. 0 when the fit retained no spike (DC-only traffic).
	FundamentalHz float64
	// PeakKBps is the maximum of the regenerated series — the model's
	// burst-level bandwidth, used to split tbi into local and burst time.
	PeakKBps float64
}

// ext is the catalog entry file extension.
const ext = ".fxmodel"

// Catalog is the on-disk store, fronted by an in-memory map so repeated
// lookups of the same key never touch the disk. Safe for concurrent use.
type Catalog struct {
	dir string

	mu  sync.RWMutex
	mem map[string]*Entry

	hits, misses, quarantined, storeFailures atomic.Int64
}

// Open opens (creating if needed) a catalog directory.
func Open(dir string) (*Catalog, error) {
	if dir == "" {
		return nil, errors.New("catalog: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("catalog: open: %w", err)
	}
	return &Catalog{dir: dir, mem: make(map[string]*Entry)}, nil
}

// Dir reports the catalog directory.
func (c *Catalog) Dir() string { return c.dir }

func (c *Catalog) path(key string) string {
	return filepath.Join(c.dir, key+ext)
}

// Get looks a fitted model up by run key. Entries are immutable once
// stored; callers must not modify the returned Entry.
func (c *Catalog) Get(key string) (*Entry, bool) {
	c.mu.RLock()
	e, ok := c.mem[key]
	c.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return e, true
	}
	body, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	e, err = Decode(body)
	if err != nil || e.Key != key {
		// Undecodable, or an entry filed under the wrong name: quarantine
		// the evidence and report a miss — a bad catalog costs a refit,
		// never a wrong admission.
		c.quarantine(c.path(key))
		c.misses.Add(1)
		return nil, false
	}
	c.mu.Lock()
	c.mem[key] = e
	c.mu.Unlock()
	c.hits.Add(1)
	return e, true
}

// Put stores an entry durably (temp + fsync + rename + directory fsync)
// and publishes it to the in-memory map. Refitting a key overwrites its
// entry; the codec is deterministic, so an unchanged fit rewrites
// byte-identical content.
func (c *Catalog) Put(e *Entry) error {
	if e.Key == "" {
		return errors.New("catalog: entry has no key")
	}
	if err := c.store(e); err != nil {
		c.storeFailures.Add(1)
		return err
	}
	c.mu.Lock()
	c.mem[e.Key] = e
	c.mu.Unlock()
	return nil
}

func (c *Catalog) store(e *Entry) error {
	body := Encode(e)
	tmp, err := os.CreateTemp(c.dir, "tmp-"+e.Key[:min(16, len(e.Key))]+"-*")
	if err != nil {
		return fmt.Errorf("catalog: store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		return fmt.Errorf("catalog: store: %w", err)
	}
	// Sync file bytes before the rename publishes the name — same
	// crash-safety argument as the run cache and the journal.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("catalog: store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("catalog: store: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(e.Key)); err != nil {
		return fmt.Errorf("catalog: store: %w", err)
	}
	if err := syncDir(c.dir); err != nil {
		return fmt.Errorf("catalog: store: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a rename within it is durable; platforms
// that refuse directory fsync degrade silently (journal FS policy).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

// quarantine moves an undecodable entry into corrupt/ so the evidence
// survives while the key goes back to missing.
func (c *Catalog) quarantine(path string) {
	dir := filepath.Join(c.dir, "corrupt")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	if err := os.Rename(path, filepath.Join(dir, filepath.Base(path))); err != nil {
		return
	}
	c.quarantined.Add(1)
}

// List returns every decodable entry, sorted by (Program, P, Key) so
// listings and the programs assembled from them are deterministic.
// Corrupt entries are quarantined and skipped.
func (c *Catalog) List() ([]*Entry, error) {
	des, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, fmt.Errorf("catalog: list: %w", err)
	}
	var out []*Entry
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ext) {
			continue
		}
		if e, ok := c.Get(strings.TrimSuffix(name, ext)); ok {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Program != out[j].Program {
			return out[i].Program < out[j].Program
		}
		if out[i].P != out[j].P {
			return out[i].P < out[j].P
		}
		return out[i].Key < out[j].Key
	})
	return out, nil
}

// Len counts entries on disk (decodability not checked).
func (c *Catalog) Len() int {
	des, err := os.ReadDir(c.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, de := range des {
		if !de.IsDir() && strings.HasSuffix(de.Name(), ext) {
			n++
		}
	}
	return n
}

// Counters for the service's metrics surface.
func (c *Catalog) Hits() int64          { return c.hits.Load() }
func (c *Catalog) Misses() int64        { return c.misses.Load() }
func (c *Catalog) Quarantined() int64   { return c.quarantined.Load() }
func (c *Catalog) StoreFailures() int64 { return c.storeFailures.Load() }

// PatternOf maps a catalogued program to its global communication
// pattern: the kernel registry for the five kernels, and all-to-all for
// AIRSHED, whose dominant communication is the transpose redistribution
// between the horizontal and vertical phases.
func PatternOf(program string) (fx.Pattern, bool) {
	if spec, ok := kernels.Lookup(program); ok {
		return spec.Pattern, true
	}
	if program == core.Airshed {
		return fx.AllToAll, true
	}
	return 0, false
}

// AdmissionPoint derives the §7.3 admission point (P, l, b) from a
// fitted entry. The model gives the three quantities the negotiation
// needs: the burst interval is the reciprocal of the fundamental spike
// frequency, the bytes moved per interval follow from the mean
// bandwidth, and the split of the interval into burst time and local
// computation follows from the peak-to-mean ratio of the regenerated
// series (during a burst the program drives the wire at the model's
// peak; the rest of the interval is local computation).
func (e *Entry) AdmissionPoint() (qos.Point, error) {
	pat, ok := PatternOf(e.Program)
	if !ok {
		return qos.Point{}, fmt.Errorf("catalog: no communication pattern for %q", e.Program)
	}
	if e.FundamentalHz <= 0 {
		return qos.Point{}, fmt.Errorf("catalog: %s entry %s has no spectral spike (DC-only fit)", e.Program, e.Key)
	}
	meanBps := e.MeasuredMeanKBps * 1000
	if meanBps <= 0 {
		return qos.Point{}, fmt.Errorf("catalog: %s entry %s measured zero traffic", e.Program, e.Key)
	}
	senders := qos.ConcurrentSenders(pat, e.P)
	if senders == 0 {
		return qos.Point{}, fmt.Errorf("catalog: pattern %v idle on P=%d", pat, e.P)
	}
	tbi := 1 / e.FundamentalHz
	totalBurstBytes := meanBps * tbi // bytes all senders move per interval
	burstBytes := totalBurstBytes / float64(senders)
	// Burst time at measured conditions: the interval's bytes at the
	// model's peak rate. Peak ≤ mean degenerates to an always-on program
	// with no local phase.
	burstSeconds := tbi
	if peakBps := e.PeakKBps * 1000; peakBps > meanBps {
		burstSeconds = totalBurstBytes / peakBps
	}
	return qos.Point{
		P:            e.P,
		LocalSeconds: tbi - burstSeconds,
		BurstBytes:   burstBytes,
	}, nil
}

// Program assembles a tabulated [l(), b(), c] characterization for name
// from the catalog's fitted entries: each measured P contributes one
// admission point (when several entries share a P, the one with the
// smallest mean-bandwidth error bound wins), and the program answers
// only at measured processor counts — Negotiate then picks the best
// measured P, never extrapolates.
func (c *Catalog) Program(name string) (qos.Program, error) {
	entries, err := c.List()
	if err != nil {
		return qos.Program{}, err
	}
	pat, ok := PatternOf(name)
	if !ok {
		return qos.Program{}, fmt.Errorf("catalog: no communication pattern for %q", name)
	}
	best := map[int]*Entry{}
	for _, e := range entries {
		if e.Program != name {
			continue
		}
		cur, ok := best[e.P]
		if !ok || e.MeanRelErr < cur.MeanRelErr ||
			(e.MeanRelErr == cur.MeanRelErr && e.Key < cur.Key) {
			best[e.P] = e
		}
	}
	var pts []qos.Point
	var lastErr error
	ps := make([]int, 0, len(best))
	for p := range best {
		ps = append(ps, p)
	}
	sort.Ints(ps)
	for _, p := range ps {
		pt, err := best[p].AdmissionPoint()
		if err != nil {
			lastErr = err
			continue
		}
		pts = append(pts, pt)
	}
	if len(pts) == 0 {
		if lastErr != nil {
			return qos.Program{}, fmt.Errorf("catalog: no usable entry for %q: %w", name, lastErr)
		}
		return qos.Program{}, fmt.Errorf("catalog: no fitted model for %q", name)
	}
	return qos.TabulatedProgram(name, pat, pts), nil
}

// EffectiveP resolves the processor count a configuration actually runs
// with (cfg.P, or the program's default when 0) — the P recorded in a
// catalog entry.
func EffectiveP(cfg core.RunConfig) int {
	if cfg.P != 0 {
		return cfg.P
	}
	if spec, ok := kernels.Lookup(cfg.Program); ok {
		return spec.P
	}
	return 4
}

// mean is the arithmetic mean, 0 for an empty series.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// relErr is |a−b|/|b|, with the 0/0 case defined as 0 and x/0 as +Inf.
func relErr(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(a-b) / math.Abs(b)
}
