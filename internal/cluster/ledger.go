package cluster

import (
	"sync"
	"time"
)

// Ledger is this shard's view of the cluster-wide QoS capacity ledger.
// Every shard admits programs against one shared capacity C; its own
// grants are journaled locally (crash-safe, exactly as a single node),
// and each peer's committed mean bandwidth arrives by gossip. Admission
// on any shard then sees an effective capacity of
//
//	C − Σ committed(peer)   over every other peer
//
// with its own commitments tracked by the local broker as before.
//
// Gossip is eventually consistent, so two shards racing for the last
// slice of capacity can briefly over-admit; the window is one gossip
// interval. A peer that stops answering keeps its last reported
// commitment — capacity leaks conservative (a dead peer's grants stay
// reserved until the ring is re-versioned), never over-committed.
type Ledger struct {
	mu    sync.Mutex
	peers map[string]*peerLedger
}

// peerLedger is one peer's last gossiped state.
type peerLedger struct {
	committedBps float64
	ringVersion  int
	updated      time.Time
	up           bool
}

// PeerState is a snapshot row for metrics and /healthz.
type PeerState struct {
	ID           string  `json:"id"`
	CommittedBps float64 `json:"committed_bps"`
	RingVersion  int     `json:"ring_version"`
	AgeSeconds   float64 `json:"age_s"`
	Up           bool    `json:"up"`
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{peers: make(map[string]*peerLedger)}
}

// Update records a successful gossip exchange with a peer.
func (l *Ledger) Update(peerID string, committedBps float64, ringVersion int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	p := l.peers[peerID]
	if p == nil {
		p = &peerLedger{}
		l.peers[peerID] = p
	}
	p.committedBps = committedBps
	p.ringVersion = ringVersion
	p.updated = time.Now()
	p.up = true
}

// MarkDown records a failed gossip exchange; the peer's last committed
// value is retained (conservative), only its liveness flips.
func (l *Ledger) MarkDown(peerID string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	p := l.peers[peerID]
	if p == nil {
		p = &peerLedger{}
		l.peers[peerID] = p
	}
	p.up = false
}

// RemoteCommitted sums the committed mean bandwidth every known peer
// last reported, up or not.
func (l *Ledger) RemoteCommitted() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var sum float64
	for _, p := range l.peers {
		sum += p.committedBps
	}
	return sum
}

// PeersUp counts peers whose last gossip exchange succeeded.
func (l *Ledger) PeersUp() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, p := range l.peers {
		if p.up {
			n++
		}
	}
	return n
}

// Snapshot lists every known peer's state.
func (l *Ledger) Snapshot() []PeerState {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]PeerState, 0, len(l.peers))
	for id, p := range l.peers {
		st := PeerState{
			ID:           id,
			CommittedBps: p.committedBps,
			RingVersion:  p.ringVersion,
			Up:           p.up,
		}
		if !p.updated.IsZero() {
			st.AgeSeconds = time.Since(p.updated).Seconds()
		}
		out = append(out, st)
	}
	sortPeerStates(out)
	return out
}

func sortPeerStates(ps []PeerState) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].ID < ps[j-1].ID; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}
