package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// Store is the slice of the farm cache the fetcher needs: install a
// streamed entry after verifying its embedded digest. *farm.Cache
// implements it.
type Store interface {
	InstallRaw(key string, stream bool, r io.Reader) (int64, error)
}

// Fetcher is the third tier of the run-cache lookup: when a key misses
// memory and local disk, ask the peers that may hold it for the
// content-addressed entry over GET /v1/cache/{key}. The entry is
// streamed straight into the local cache install path, which verifies
// the embedded SHA-256 before publishing and quarantines a mismatch —
// a peer can cost a fetch, never poison the cache.
//
// The farm's single-flight machinery wraps every fetch (a cache miss
// holds the key's execution slot), so one miss triggers at most one
// peer sweep no matter how many clients asked.
type Fetcher struct {
	ring  *Ring
	store Store
	http  *http.Client
	// Timeout bounds each peer attempt; zero selects 10s.
	Timeout time.Duration
	// MaxPeers bounds how many peers one miss may try; zero selects 2.
	MaxPeers int

	hits     atomic.Int64
	misses   atomic.Int64
	failures atomic.Int64
}

// NewFetcher builds a fetcher over a ring and a local store. httpc nil
// selects a dedicated client (the fetcher streams large bodies; it must
// not share fxload-style aggressive timeouts).
func NewFetcher(ring *Ring, store Store, httpc *http.Client) *Fetcher {
	if httpc == nil {
		httpc = &http.Client{}
	}
	return &Fetcher{ring: ring, store: store, http: httpc}
}

// Hits, Misses, and Failures report fetch outcomes: an installed entry,
// a sweep where no peer had it, and transport/verification errors.
func (f *Fetcher) Hits() int64     { return f.hits.Load() }
func (f *Fetcher) Misses() int64   { return f.misses.Load() }
func (f *Fetcher) Failures() int64 { return f.failures.Load() }

// candidates orders the peers worth asking for a key: the owner first
// (the shard the ring routes this key's work to), then — only when this
// shard is itself the owner, the resharding case where history lives
// under an older layout — the other peers in ID order.
func (f *Fetcher) candidates(key string) []Peer {
	owner := f.ring.Owner(key)
	if owner.ID != f.ring.SelfID() {
		return []Peer{owner}
	}
	return f.ring.Others()
}

// Fetch tries to pull the entry for key (stream selects the .fxspec
// form) from candidate peers into the local store. It reports whether
// an entry was installed; the caller re-probes the local cache.
func (f *Fetcher) Fetch(ctx context.Context, key string, stream bool) bool {
	cands := f.candidates(key)
	max := f.MaxPeers
	if max <= 0 {
		max = 2
	}
	if len(cands) > max {
		cands = cands[:max]
	}
	sawError := false
	for _, p := range cands {
		ok, err := f.fetchFrom(ctx, p, key, stream)
		if ok {
			f.hits.Add(1)
			return true
		}
		if err != nil {
			sawError = true
		}
		if ctx.Err() != nil {
			break
		}
	}
	if sawError {
		f.failures.Add(1)
	} else {
		f.misses.Add(1)
	}
	return false
}

// fetchFrom asks one peer. A 404 is a clean miss (nil error); any other
// failure — transport, status, digest mismatch on install — is an error.
func (f *Fetcher) fetchFrom(ctx context.Context, p Peer, key string, stream bool) (bool, error) {
	to := f.Timeout
	if to <= 0 {
		to = 10 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, to)
	defer cancel()
	url := p.URL + "/v1/cache/" + key
	if stream {
		url += "?kind=spec"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false, err
	}
	resp, err := f.http.Do(req)
	if err != nil {
		return false, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("cluster: peer %s: cache fetch status %d", p.ID, resp.StatusCode)
	}
	if _, err := f.store.InstallRaw(key, stream, resp.Body); err != nil {
		return false, fmt.Errorf("cluster: peer %s: %w", p.ID, err)
	}
	return true, nil
}
