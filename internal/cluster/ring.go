// Package cluster turns fxnetd into an N-peer sharded service: a
// consistent-hash ring assigns every content-addressed run key a single
// owning shard, a peer ledger sums the QoS capacity each shard has
// committed so admission respects cluster-wide capacity, and a fetcher
// moves cache entries between shards over /v1/cache/{key} — the
// peer-to-peer content distribution Dichev et al. argue is the natural
// transport for measurement artifacts.
//
// The ring is deterministic and configuration-driven: every peer is
// given the same (version, vnodes, peer list) and computes the same
// placement with no coordination protocol. Version is the agreement
// check — peers gossip it and log divergence — because a cluster whose
// members disagree about ownership still answers correctly (the farm
// key dedups work, the cache tiering moves results), it just proxies
// more than it should.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// Peer is one fxnetd shard.
type Peer struct {
	// ID names the shard; it prefixes job IDs (r-<id>-00000001) so any
	// peer can route a poll to the shard that owns the job.
	ID string `json:"id"`
	// URL is the shard's base URL, e.g. "http://10.0.0.1:8080".
	URL string `json:"url"`
}

// Config is the versioned ring layout every peer must share.
type Config struct {
	// Version identifies the layout; peers gossip it and flag mismatch.
	Version int `json:"version"`
	// VNodes is the number of virtual nodes per peer; more vnodes mean
	// smoother key distribution at the cost of a larger point table.
	// <= 0 selects DefaultVNodes.
	VNodes int `json:"vnodes,omitempty"`
	// Self names this shard; must appear in Peers.
	Self string `json:"self"`
	// Peers is the full membership, including Self.
	Peers []Peer `json:"peers"`
}

// DefaultVNodes balances placement smoothness against table size: at
// 64 vnodes/peer a 3-shard ring keeps per-shard load within a few
// percent of 1/3.
const DefaultVNodes = 64

// peerIDPattern keeps shard IDs embeddable in job IDs and metrics
// labels.
var peerIDPattern = regexp.MustCompile(`^[A-Za-z0-9_-]+$`)

// Validate checks the configuration for self-consistency.
func (c *Config) Validate() error {
	if len(c.Peers) == 0 {
		return errors.New("cluster: no peers")
	}
	seen := make(map[string]bool, len(c.Peers))
	selfFound := false
	for _, p := range c.Peers {
		if !peerIDPattern.MatchString(p.ID) {
			return fmt.Errorf("cluster: bad peer id %q (want [A-Za-z0-9_-]+)", p.ID)
		}
		if seen[p.ID] {
			return fmt.Errorf("cluster: duplicate peer id %q", p.ID)
		}
		seen[p.ID] = true
		if p.URL == "" {
			return fmt.Errorf("cluster: peer %q has no URL", p.ID)
		}
		if p.ID == c.Self {
			selfFound = true
		}
	}
	if c.Self == "" {
		return errors.New("cluster: self not set")
	}
	if !selfFound {
		return fmt.Errorf("cluster: self %q not in peer list", c.Self)
	}
	return nil
}

// ParsePeers parses the CLI peer-list form "id1=url1,id2=url2,...".
func ParsePeers(spec string) ([]Peer, error) {
	var peers []Peer
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, url, ok := strings.Cut(part, "=")
		id, url = strings.TrimSpace(id), strings.TrimSpace(url)
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("cluster: bad peer %q (want id=url)", part)
		}
		peers = append(peers, Peer{ID: id, URL: strings.TrimRight(url, "/")})
	}
	if len(peers) == 0 {
		return nil, errors.New("cluster: empty peer list")
	}
	return peers, nil
}

// point is one virtual node on the hash circle.
type point struct {
	hash uint64
	peer int // index into Ring.peers
}

// Ring is the consistent-hash placement function. Build once from a
// Config; all methods are safe for concurrent use (the ring is
// immutable after New).
type Ring struct {
	cfg    Config
	peers  []Peer
	byID   map[string]Peer
	points []point
	self   int
}

// NewRing builds the ring. Placement depends only on (peer IDs, vnodes):
// every peer with the same configuration computes the same owner for
// every key, regardless of peer-list order or which peer it is.
func NewRing(cfg Config) (*Ring, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	vn := cfg.VNodes
	if vn <= 0 {
		vn = DefaultVNodes
	}
	// Sort peers by ID so placement is independent of list order.
	peers := make([]Peer, len(cfg.Peers))
	copy(peers, cfg.Peers)
	sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })

	r := &Ring{cfg: cfg, peers: peers, byID: make(map[string]Peer, len(peers)), self: -1}
	r.points = make([]point, 0, len(peers)*vn)
	for i, p := range peers {
		r.byID[p.ID] = p
		if p.ID == cfg.Self {
			r.self = i
		}
		for v := 0; v < vn; v++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", p.ID, v)), peer: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Identical hashes (astronomically unlikely) break by peer index
		// so the tie is still deterministic everywhere.
		return r.points[i].peer < r.points[j].peer
	})
	return r, nil
}

// hash64 is the ring's hash: the first 8 bytes of SHA-256, which is
// already the currency run keys are minted in.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Version reports the ring configuration's version.
func (r *Ring) Version() int { return r.cfg.Version }

// Self reports this shard's peer entry.
func (r *Ring) Self() Peer { return r.peers[r.self] }

// SelfID reports this shard's ID.
func (r *Ring) SelfID() string { return r.cfg.Self }

// Peers lists the membership in ID order.
func (r *Ring) Peers() []Peer { return r.peers }

// Others lists every peer except self, in ID order.
func (r *Ring) Others() []Peer {
	out := make([]Peer, 0, len(r.peers)-1)
	for i, p := range r.peers {
		if i != r.self {
			out = append(out, p)
		}
	}
	return out
}

// Lookup resolves a peer ID.
func (r *Ring) Lookup(id string) (Peer, bool) {
	p, ok := r.byID[id]
	return p, ok
}

// Owner returns the shard that owns a key: the first virtual node at or
// after the key's hash, wrapping at the top of the circle.
func (r *Ring) Owner(key string) Peer {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.peers[r.points[i].peer]
}

// Owns reports whether this shard owns the key.
func (r *Ring) Owns(key string) bool { return r.Owner(key).ID == r.cfg.Self }
