package cluster

import "testing"

func TestLedgerSumsRemoteCommitted(t *testing.T) {
	l := NewLedger()
	if got := l.RemoteCommitted(); got != 0 {
		t.Fatalf("empty ledger committed = %g", got)
	}
	l.Update("s1", 1000, 1)
	l.Update("s2", 500, 1)
	if got := l.RemoteCommitted(); got != 1500 {
		t.Fatalf("committed = %g, want 1500", got)
	}
	// Updates replace, not accumulate.
	l.Update("s1", 200, 1)
	if got := l.RemoteCommitted(); got != 700 {
		t.Fatalf("committed = %g, want 700", got)
	}
	if got := l.PeersUp(); got != 2 {
		t.Fatalf("peers up = %d, want 2", got)
	}
}

func TestLedgerMarkDownRetainsCommitment(t *testing.T) {
	l := NewLedger()
	l.Update("s1", 800, 3)
	l.MarkDown("s1")
	// A dead peer's grants stay reserved: capacity must leak
	// conservative, never over-committed.
	if got := l.RemoteCommitted(); got != 800 {
		t.Fatalf("committed after MarkDown = %g, want 800", got)
	}
	if got := l.PeersUp(); got != 0 {
		t.Fatalf("peers up = %d, want 0", got)
	}
	snap := l.Snapshot()
	if len(snap) != 1 || snap[0].ID != "s1" || snap[0].Up || snap[0].CommittedBps != 800 || snap[0].RingVersion != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestLedgerMarkDownUnknownPeer(t *testing.T) {
	l := NewLedger()
	l.MarkDown("never-seen")
	if got := l.RemoteCommitted(); got != 0 {
		t.Fatalf("committed = %g", got)
	}
	if n := len(l.Snapshot()); n != 1 {
		t.Fatalf("snapshot rows = %d", n)
	}
}

func TestLedgerSnapshotSorted(t *testing.T) {
	l := NewLedger()
	for _, id := range []string{"c", "a", "b"} {
		l.Update(id, 1, 1)
	}
	snap := l.Snapshot()
	for i := 1; i < len(snap); i++ {
		if snap[i-1].ID > snap[i].ID {
			t.Fatalf("snapshot not sorted: %+v", snap)
		}
	}
}
