package cluster

import (
	"fmt"
	"testing"
)

func testPeers(n int) []Peer {
	peers := make([]Peer, n)
	for i := range peers {
		peers[i] = Peer{ID: fmt.Sprintf("s%d", i), URL: fmt.Sprintf("http://127.0.0.1:%d", 9000+i)}
	}
	return peers
}

func TestRingDeterministicAcrossPeersAndOrder(t *testing.T) {
	peers := testPeers(3)
	reversed := []Peer{peers[2], peers[1], peers[0]}

	rings := make([]*Ring, 0, 6)
	for _, self := range peers {
		for _, list := range [][]Peer{peers, reversed} {
			r, err := NewRing(Config{Version: 1, Self: self.ID, Peers: list})
			if err != nil {
				t.Fatal(err)
			}
			rings = append(rings, r)
		}
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		want := rings[0].Owner(key).ID
		for _, r := range rings[1:] {
			if got := r.Owner(key).ID; got != want {
				t.Fatalf("key %q: ring for self=%s says owner %s, first ring says %s",
					key, r.SelfID(), got, want)
			}
		}
	}
}

func TestRingBalance(t *testing.T) {
	r, err := NewRing(Config{Version: 1, Self: "s0", Peers: testPeers(3)})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i)).ID]++
	}
	for id, c := range counts {
		frac := float64(c) / n
		// 64 vnodes/peer keeps shards within a loose band of 1/3; the
		// bound here guards against a placement bug (everything on one
		// shard), not statistical perfection.
		if frac < 0.15 || frac > 0.55 {
			t.Errorf("peer %s owns %.1f%% of keys, outside [15%%, 55%%]", id, 100*frac)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d peers own keys, want 3", len(counts))
	}
}

func TestRingOwnershipStableUnderGrowth(t *testing.T) {
	// Consistent hashing's point: adding a shard moves only the keys the
	// new shard takes over; keys that stay keep their owner.
	r3, err := NewRing(Config{Version: 1, Self: "s0", Peers: testPeers(3)})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := NewRing(Config{Version: 2, Self: "s0", Peers: testPeers(4)})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10000
	moved := 0
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		before, after := r3.Owner(key).ID, r4.Owner(key).ID
		if before != after {
			moved++
			if after != "s3" {
				t.Fatalf("key %q moved %s -> %s, but only the new shard s3 may gain keys", key, before, after)
			}
		}
	}
	// Expect ~1/4 of keys to move; anything over half means rehashing.
	if frac := float64(moved) / n; frac > 0.5 {
		t.Errorf("%.1f%% of keys moved when adding one shard; want ~25%%", 100*frac)
	}
}

func TestRingValidation(t *testing.T) {
	peers := testPeers(2)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no peers", Config{Version: 1, Self: "s0"}},
		{"self missing", Config{Version: 1, Self: "zz", Peers: peers}},
		{"empty self", Config{Version: 1, Peers: peers}},
		{"dup id", Config{Version: 1, Self: "s0", Peers: []Peer{peers[0], peers[0]}}},
		{"bad id", Config{Version: 1, Self: "a b", Peers: []Peer{{ID: "a b", URL: "http://x"}}}},
		{"no url", Config{Version: 1, Self: "s0", Peers: []Peer{{ID: "s0"}}}},
	}
	for _, tc := range cases {
		if _, err := NewRing(tc.cfg); err == nil {
			t.Errorf("%s: NewRing accepted invalid config", tc.name)
		}
	}
}

func TestParsePeers(t *testing.T) {
	peers, err := ParsePeers("a=http://h1:1/, b = http://h2:2")
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0].ID != "a" || peers[0].URL != "http://h1:1" ||
		peers[1].ID != "b" || peers[1].URL != "http://h2:2" {
		t.Fatalf("unexpected parse: %+v", peers)
	}
	for _, bad := range []string{"", "a", "=http://x", "a="} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted", bad)
		}
	}
}

func TestRingLookupAndOthers(t *testing.T) {
	r, err := NewRing(Config{Version: 7, Self: "s1", Peers: testPeers(3)})
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != 7 {
		t.Fatalf("version = %d", r.Version())
	}
	if r.Self().ID != "s1" {
		t.Fatalf("self = %+v", r.Self())
	}
	if p, ok := r.Lookup("s2"); !ok || p.URL == "" {
		t.Fatalf("lookup s2 = %+v %v", p, ok)
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Fatal("lookup of unknown peer succeeded")
	}
	others := r.Others()
	if len(others) != 2 {
		t.Fatalf("others = %+v", others)
	}
	for _, p := range others {
		if p.ID == "s1" {
			t.Fatal("others includes self")
		}
	}
}
