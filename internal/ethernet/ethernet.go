// Package ethernet models the paper's measurement substrate: a single
// shared 10 Mb/s Ethernet collision domain (the multi-segment bridged LAN
// of DEC 3000/400 workstations behaves as one collision domain in the
// paper) with CSMA/CD — carrier sense, inter-frame gap arbitration,
// collision detection near simultaneous starts, and truncated binary
// exponential backoff.
//
// Frames carry both real payload bytes for delivery and the protocol
// metadata (transport protocol, ports, flags) that the capture layer
// records, mirroring what tcpdump extracts from the wire.
package ethernet

import (
	"fmt"
	"math/rand"

	"fxnet/internal/sim"
)

// Wire constants for 10BASE Ethernet. Sizes are bytes; the paper counts a
// packet's size as Ethernet header + IP + transport + data + trailer
// (58–1518 bytes), excluding the preamble, so CapturedSize does too.
const (
	HeaderBytes   = 14 // dst MAC, src MAC, ethertype
	TrailerBytes  = 4  // frame check sequence
	PreambleBytes = 8  // preamble + SFD, on the wire but not captured
	MinWireBytes  = 64 // minimum frame (padding applies below this)
	MaxWireBytes  = 1518
	// MaxNetBytes is the MTU-limited network-layer packet size.
	MaxNetBytes = MaxWireBytes - HeaderBytes - TrailerBytes // 1500
)

// Timing constants.
const (
	SlotTime        = sim.Duration(51200) // 51.2 µs
	InterFrameGap   = sim.Duration(9600)  // 9.6 µs
	JamTime         = sim.Duration(4800)  // 48 bit times
	CollisionWindow = sim.Duration(25600) // max propagation delay, ½ slot
	DefaultBitRate  = 10e6                // 10 Mb/s, 1.25 MB/s aggregate
	backoffCap      = 10                  // BEB exponent cap
)

// Broadcast is the destination address that delivers to every station.
const Broadcast = -1

// Proto identifies the transport protocol of a frame for capture.
type Proto uint8

// Transport protocols the capture layer distinguishes.
const (
	ProtoOther Proto = iota
	ProtoTCP
	ProtoUDP
)

func (p Proto) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return "other"
	}
}

// Frame flag bits, recorded in captures for analysis.
const (
	FlagAck  = 1 << iota // TCP segment carrying only an acknowledgment
	FlagSyn              // TCP connection setup
	FlagFin              // TCP teardown
	FlagData             // carries application payload
)

// Frame is one Ethernet frame. NetLen is the network-layer length (IP
// header + transport header + payload) used for sizing; Payload carries
// the actual application bytes for delivery to the destination stack.
type Frame struct {
	Src, Dst int // station indexes; Dst may be Broadcast
	Proto    Proto
	SrcPort  uint16
	DstPort  uint16
	Flags    uint8
	NetLen   int    // bytes at the network layer
	Payload  []byte // application bytes (may be shorter than NetLen)
	Opaque   any    // stack-private data carried to the receiver
}

// CapturedSize is the size tcpdump would report: header + network bytes +
// trailer, no preamble and no padding.
func (f *Frame) CapturedSize() int { return HeaderBytes + f.NetLen + TrailerBytes }

// WireBytes is the number of bytes serialized on the wire, including
// preamble and minimum-frame padding.
func (f *Frame) WireBytes() int {
	n := f.CapturedSize()
	if n < MinWireBytes {
		n = MinWireBytes
	}
	return n + PreambleBytes
}

// Capture is the record a promiscuous tap receives for every successfully
// delivered frame — the same tuple the paper's tcpdump traces provide.
type Capture struct {
	Time    sim.Time
	Size    int // CapturedSize of the frame
	Src     int
	Dst     int
	Proto   Proto
	SrcPort uint16
	DstPort uint16
	Flags   uint8
}

// Stats counts segment-level activity.
type Stats struct {
	Frames        int64 // successfully delivered frames
	Bytes         int64 // captured bytes of delivered frames
	Collisions    int64 // collision episodes
	MaxBackoffHit int64 // times a station reached the backoff exponent cap
	Corrupted     int64 // frames dropped by injected FCS corruption
	Dropped       int64 // frames discarded by fault gates (link down, partition)
	Duplicated    int64 // frames delivered twice by injected duplication
	Reordered     int64 // frames delivered late by injected reordering
}

// Segment is one shared collision domain.
type Segment struct {
	k        *sim.Kernel
	bitRate  float64
	stations []*Station
	taps     []func(Capture)
	rng      *rand.Rand

	state    segState
	txStart  sim.Time
	txFrom   *Station
	txEnd    sim.Event
	idleAt   sim.Time // instant the medium last became idle
	waiters  []*Station
	arbAt    sim.Time
	arbEvent sim.Event
	// contenders is arbitrate's scratch slice, reused across arbitration
	// rounds so contention resolution allocates nothing.
	contenders []*Station

	// Once-allocated event callbacks: scheduling a delivery, a jam end,
	// or an arbitration allocates no closure on the hot path.
	deliverFn func()
	jamEndFn  func()
	arbFn     func()

	// dropProb is the injected frame-corruption probability: a corrupted
	// frame occupies the wire but fails its FCS everywhere, so neither
	// the capture taps nor the destination see it.
	dropProb float64
	dropRng  *rand.Rand

	// Fault-injection gates (see internal/faults). linkDown marks
	// stations whose attachment is administratively severed; segmentDown
	// severs the whole medium; group partitions the stations (frames
	// cross only within a group; nil means no partition). Gated frames
	// still occupy the wire — the transmitter cannot sense a dead drop
	// cable — but are counted in Stats.Dropped instead of delivered.
	linkDown    map[int]bool
	segmentDown bool
	group       map[int]int

	// dupProb / reorderProb inject frame duplication and reordering; held
	// is a reordered frame awaiting re-delivery after the next frame.
	dupProb     float64
	reorderProb float64
	faultRng    *rand.Rand
	held        *Frame

	// Multi-segment hooks: onForward lets a learning bridge observe
	// delivered frames; tapFilter keeps transit copies out of captures.
	onForward func(tx *Station, f *Frame)
	tapFilter func(dst int) bool

	stats Stats
}

// faultRand lazily creates the dedicated fault-injection stream so that
// enabling faults never perturbs the backoff or corruption streams.
func (s *Segment) faultRand() *rand.Rand {
	if s.faultRng == nil {
		s.faultRng = s.k.Rand("ethernet.fault")
	}
	return s.faultRng
}

// SetLinkDown severs (down=true) or restores (down=false) one station's
// attachment. While down, frames the station transmits are dropped at the
// end of their wire occupancy and frames addressed to it vanish, both
// counted in Stats.Dropped.
func (s *Segment) SetLinkDown(station int, down bool) {
	if station < 0 || station >= len(s.stations) {
		panic(fmt.Sprintf("ethernet: SetLinkDown on unknown station %d", station))
	}
	if s.linkDown == nil {
		s.linkDown = make(map[int]bool)
	}
	s.linkDown[station] = down
}

// SetSegmentDown severs or restores the entire medium (a backbone cut):
// every frame completing transmission while down is dropped.
func (s *Segment) SetSegmentDown(down bool) { s.segmentDown = down }

// SetPartition splits the stations into isolated groups: a frame is
// delivered only when source and destination share a group. Stations not
// named in any group are unreachable from everyone. Heal removes the
// partition.
func (s *Segment) SetPartition(groups [][]int) {
	s.group = make(map[int]int)
	for g, members := range groups {
		for _, st := range members {
			s.group[st] = g
		}
	}
}

// Heal removes any partition installed by SetPartition.
func (s *Segment) Heal() { s.group = nil }

// SetBitRate overrides the segment's bit rate (bits per second) from now
// on — the BitRateDegrade fault. In-flight transmissions keep the rate
// they started with.
func (s *Segment) SetBitRate(bps float64) {
	if bps <= 0 {
		panic("ethernet: SetBitRate requires a positive rate")
	}
	s.bitRate = bps
}

// SetDuplicateProb makes each delivered frame arrive twice with
// probability p — the duplicate-delivery fault (a bridge forwarding loop).
func (s *Segment) SetDuplicateProb(p float64) {
	if p < 0 || p > 1 {
		panic("ethernet: duplicate probability out of range")
	}
	s.dupProb = p
	if p > 0 {
		s.faultRand()
	}
}

// SetReorderProb makes each delivered frame held back with probability p
// and re-delivered immediately after the next successful frame — the
// reordering fault (a multipath bridge race).
func (s *Segment) SetReorderProb(p float64) {
	if p < 0 || p > 1 {
		panic("ethernet: reorder probability out of range")
	}
	s.reorderProb = p
	if p > 0 {
		s.faultRand()
	}
}

// gated reports whether a fault gate discards a frame from src to dst.
func (s *Segment) gated(src, dst int) bool {
	if s.segmentDown {
		return true
	}
	if s.linkDown[src] {
		return true
	}
	if dst != Broadcast && s.linkDown[dst] {
		return true
	}
	if s.group != nil && dst != Broadcast {
		sg, ok1 := s.group[src]
		dg, ok2 := s.group[dst]
		if !ok1 || !ok2 || sg != dg {
			return true
		}
	}
	return false
}

// SetDropProb enables fault injection: each frame is independently
// corrupted with probability p ∈ [0, 1].
func (s *Segment) SetDropProb(p float64) {
	if p < 0 || p > 1 {
		panic("ethernet: drop probability out of range")
	}
	s.dropProb = p
	if s.dropRng == nil {
		s.dropRng = s.k.Rand("ethernet.drop")
	}
}

type segState int

const (
	segIdle segState = iota
	segBusy
	segJam
)

// NewSegment creates a shared segment on kernel k with the given bit rate
// (bits per second); a non-positive rate selects DefaultBitRate.
func NewSegment(k *sim.Kernel, bitRate float64) *Segment {
	if bitRate <= 0 {
		bitRate = DefaultBitRate
	}
	s := &Segment{
		k:       k,
		bitRate: bitRate,
		rng:     k.Rand("ethernet.segment"),
		idleAt:  -sim.Time(InterFrameGap), // medium usable at t=0
	}
	s.deliverFn = s.deliver
	s.jamEndFn = s.jamEnd
	s.arbFn = s.arbitrate
	return s
}

// BitRate reports the segment's raw bit rate in bits per second.
func (s *Segment) BitRate() float64 { return s.bitRate }

// Stats returns a copy of the segment counters.
func (s *Segment) Stats() Stats { return s.stats }

// Tap registers a promiscuous-mode capture callback, invoked at the end of
// every successfully delivered frame.
func (s *Segment) Tap(fn func(Capture)) { s.taps = append(s.taps, fn) }

// SetTapFilter restricts capture taps to frames whose destination
// satisfies keep (broadcast frames always pass). Multi-segment
// topologies use it so a monitor on each segment records only frames
// addressed into that segment, not transit copies flooded by bridges.
func (s *Segment) SetTapFilter(keep func(dst int) bool) { s.tapFilter = keep }

// OnForward registers a callback invoked (in event context) after every
// successful delivery with the transmitting station and the frame — the
// promiscuous hook a learning bridge uses to pick up frames that need
// relaying to other segments.
func (s *Segment) OnForward(fn func(tx *Station, f *Frame)) { s.onForward = fn }

// Attach creates a new station on the segment and returns it. The name is
// used in diagnostics only; the returned station's ID is its address.
func (s *Segment) Attach(name string) *Station {
	return s.AttachID(name, len(s.stations))
}

// AttachID creates a station with an explicit address. Multi-segment
// topologies attach each host with its global host index so frame
// addresses stay meaningful across segments; bridge stations use
// addresses far above any host. Duplicate addresses panic.
func (s *Segment) AttachID(name string, id int) *Station {
	for _, st := range s.stations {
		if st.id == id {
			panic(fmt.Sprintf("ethernet: duplicate station id %d (%q and %q)", id, st.name, name))
		}
	}
	st := &Station{seg: s, id: id, name: name, retryName: "eth.retry:" + name}
	st.contendFn = st.contend
	s.stations = append(s.stations, st)
	return st
}

// Stations returns the attached stations in attachment order.
func (s *Segment) Stations() []*Station { return s.stations }

// txDuration is the serialization time of frame f at the segment rate.
func (s *Segment) txDuration(f *Frame) sim.Duration {
	bits := float64(f.WireBytes() * 8)
	return sim.DurationOf(bits / s.bitRate)
}

// Station is one attached network adaptor with a FIFO transmit queue.
// The queue pops from a head index and rewinds to the start of its
// backing array whenever it drains, so steady-state traffic reuses one
// allocation instead of pinning consumed prefixes.
type Station struct {
	seg       *Segment
	id        int
	name      string
	retryName string // precomputed "eth.retry:"+name
	queue     []*Frame
	qhead     int
	attempts  int
	pending   bool   // a contention attempt is registered or scheduled
	waiting   bool   // registered in seg.waiters
	contendFn func() // once-allocated contention callback
	recv      func(*Frame)

	// TxFrames / TxBytes count frames this station put on the wire.
	TxFrames int64
	TxBytes  int64
}

// ID reports the station's address on the segment.
func (st *Station) ID() int { return st.id }

// Name reports the diagnostic name given at Attach.
func (st *Station) Name() string { return st.name }

// OnReceive registers the upcall invoked (in event context) for every
// frame addressed to this station or broadcast. A station has exactly one
// receiver; calling OnReceive again replaces it.
func (st *Station) OnReceive(fn func(*Frame)) { st.recv = fn }

// QueueLen reports the number of frames waiting to transmit.
func (st *Station) QueueLen() int { return len(st.queue) - st.qhead }

// head returns the frame at the front of the transmit queue.
func (st *Station) head() *Frame { return st.queue[st.qhead] }

// popHead removes the front frame; a drained queue rewinds its storage.
func (st *Station) popHead() {
	st.queue[st.qhead] = nil
	st.qhead++
	if st.qhead == len(st.queue) {
		st.queue = st.queue[:0]
		st.qhead = 0
	}
}

// Send enqueues a frame for transmission. The frame's Src is forced to
// this station. Sending to self panics: the loopback path belongs to the
// host stack, not the wire.
func (st *Station) Send(f *Frame) {
	if f.Dst == st.id {
		panic(fmt.Sprintf("ethernet: station %q sending to itself", st.name))
	}
	f.Src = st.id
	st.enqueue(f)
}

// Forward enqueues a frame preserving its original Src address — how a
// transparent bridge relays a frame on behalf of a host on another
// segment.
func (st *Station) Forward(f *Frame) { st.enqueue(f) }

func (st *Station) enqueue(f *Frame) {
	if f.NetLen > MaxNetBytes {
		panic(fmt.Sprintf("ethernet: frame NetLen %d exceeds MTU %d", f.NetLen, MaxNetBytes))
	}
	st.queue = append(st.queue, f)
	if !st.pending {
		st.pending = true
		st.contend()
	}
}

// contend attempts to acquire the medium for the head-of-queue frame.
func (st *Station) contend() {
	s := st.seg
	now := s.k.Now()
	switch s.state {
	case segIdle:
		if ready := s.idleAt.Add(InterFrameGap); now < ready {
			st.joinWaiters()
			s.scheduleArb(ready)
			return
		}
		s.startTx(st)
	case segBusy:
		if now.Sub(s.txStart) <= CollisionWindow {
			s.collide(st)
			return
		}
		st.joinWaiters()
	case segJam:
		st.joinWaiters()
		s.scheduleArb(s.idleAt.Add(InterFrameGap))
	}
}

func (st *Station) joinWaiters() {
	if st.waiting {
		return
	}
	st.waiting = true
	st.seg.waiters = append(st.seg.waiters, st)
}

// backoff schedules the station's next contention attempt after a
// truncated binary exponential backoff delay.
func (st *Station) backoff(from sim.Time) {
	s := st.seg
	st.attempts++
	exp := st.attempts
	if exp > backoffCap {
		exp = backoffCap
		s.stats.MaxBackoffHit++
	}
	slots := s.rng.Intn(1 << exp)
	at := from.Add(sim.Duration(slots) * SlotTime)
	if at < s.k.Now() {
		at = s.k.Now()
	}
	s.k.At(at, st.retryName, st.contendFn)
}

// startTx begins serializing st's head frame onto the wire.
func (s *Segment) startTx(st *Station) {
	f := st.head()
	s.state = segBusy
	s.txFrom = st
	s.txStart = s.k.Now()
	s.txEnd = s.k.After(s.txDuration(f), "eth.txend", s.deliverFn)
}

// deliver completes a successful transmission: update state, pop the
// transmitter's queue, invoke taps and the destination upcall, then
// rearbitrate. The transmitter and its head frame are read from the
// segment state, so the txEnd event needs no per-frame closure.
func (s *Segment) deliver() {
	now := s.k.Now()
	st := s.txFrom
	f := st.head()
	s.state = segIdle
	s.idleAt = now
	s.txFrom = nil
	s.txEnd = sim.Event{}

	st.popHead()
	st.attempts = 0
	st.TxFrames++
	st.TxBytes += int64(f.CapturedSize())

	delivered := true
	switch {
	case s.dropProb > 0 && s.dropRng.Float64() < s.dropProb:
		// The wire was occupied, but the frame is gone: skip taps and
		// delivery, then rearbitrate as usual.
		s.stats.Corrupted++
		delivered = false
	case s.gated(f.Src, f.Dst):
		// A fault gate (link down, segment down, partition) discards the
		// frame: the wire was occupied but nothing hears it.
		s.stats.Dropped++
		delivered = false
	case s.reorderProb > 0 && s.held == nil && s.faultRand().Float64() < s.reorderProb:
		// Hold the frame back; it is re-emitted right after the next
		// successful delivery (a multipath bridge race).
		s.stats.Reordered++
		s.held = f
		delivered = false
	}

	if delivered {
		s.emit(st, f)
		if s.dupProb > 0 && s.faultRand().Float64() < s.dupProb {
			s.stats.Duplicated++
			s.emit(st, f)
		}
		if held := s.held; held != nil {
			s.held = nil
			if !s.gated(held.Src, held.Dst) {
				// st is not the held frame's transmitter, but the hooks
				// that care (onForward/tapFilter) are never combined
				// with reorder injection — topology runs reject faults.
				s.emit(st, held)
			} else {
				s.stats.Dropped++
			}
		}
	}

	// The sender either requeues for its next frame or goes quiet.
	if st.QueueLen() > 0 {
		st.joinWaiters()
	} else {
		st.pending = false
	}
	if len(s.waiters) > 0 {
		s.scheduleArb(now.Add(InterFrameGap))
	}
}

// emit performs one delivery of a frame that survived the wire: capture
// taps, then the destination upcalls, then the bridge hook. tx is the
// station that put the frame on this wire (the original sender, or a
// bridge relaying it). A station whose link is down, or on the wrong
// side of a partition, misses broadcast deliveries.
func (s *Segment) emit(tx *Station, f *Frame) {
	s.stats.Frames++
	s.stats.Bytes += int64(f.CapturedSize())

	if s.tapFilter == nil || f.Dst == Broadcast || s.tapFilter(f.Dst) {
		cap := Capture{
			Time: s.k.Now(), Size: f.CapturedSize(),
			Src: f.Src, Dst: f.Dst, Proto: f.Proto,
			SrcPort: f.SrcPort, DstPort: f.DstPort, Flags: f.Flags,
		}
		for _, tap := range s.taps {
			tap(cap)
		}
	}
	for _, dst := range s.stations {
		if dst.id == f.Src || dst == tx {
			continue
		}
		if f.Dst == Broadcast || f.Dst == dst.id {
			if f.Dst == Broadcast && s.gated(f.Src, dst.id) {
				continue
			}
			if dst.recv != nil {
				dst.recv(f)
			}
		}
	}
	if s.onForward != nil {
		s.onForward(tx, f)
	}
}

// jamEnd returns the medium to idle after a jam and rearbitrates.
func (s *Segment) jamEnd() {
	if s.state == segJam {
		s.state = segIdle
	}
	if len(s.waiters) > 0 {
		s.scheduleArb(s.idleAt.Add(InterFrameGap))
	}
}

// collide handles a collision between the in-flight transmitter and
// latecomer st (or, via collideAll, among simultaneous contenders).
func (s *Segment) collide(st *Station) {
	s.stats.Collisions++
	s.txEnd.Cancel()
	s.txEnd = sim.Event{}
	tx := s.txFrom
	s.txFrom = nil
	now := s.k.Now()
	s.state = segJam
	jamEnd := now.Add(JamTime)
	s.idleAt = jamEnd
	s.k.At(jamEnd, "eth.jamend", s.jamEndFn)
	tx.backoff(jamEnd)
	st.backoff(jamEnd)
}

// collideAll handles n ≥ 2 stations starting in the same arbitration slot.
func (s *Segment) collideAll(contenders []*Station) {
	s.stats.Collisions++
	now := s.k.Now()
	s.state = segJam
	jamEnd := now.Add(JamTime)
	s.idleAt = jamEnd
	s.k.At(jamEnd, "eth.jamend", s.jamEndFn)
	for _, st := range contenders {
		st.backoff(jamEnd)
	}
}

// scheduleArb arranges a single arbitration event at time t (or the
// earliest already-scheduled arbitration, whichever is sooner).
func (s *Segment) scheduleArb(t sim.Time) {
	if t < s.k.Now() {
		t = s.k.Now()
	}
	if s.arbEvent.Pending() {
		if s.arbAt <= t {
			return
		}
		s.arbEvent.Cancel()
	}
	s.arbAt = t
	s.arbEvent = s.k.At(t, "eth.arb", s.arbFn)
}

// arbitrate resolves contention at an idle-medium instant: one waiter
// transmits; several collide.
func (s *Segment) arbitrate() {
	s.arbEvent = sim.Event{}
	if s.state != segIdle {
		return // busy again; deliver/jam-end will rearbitrate
	}
	if ready := s.idleAt.Add(InterFrameGap); s.k.Now() < ready {
		s.scheduleArb(ready)
		return
	}
	contenders := s.contenders[:0]
	for _, st := range s.waiters {
		st.waiting = false
		if st.QueueLen() > 0 {
			contenders = append(contenders, st)
		} else {
			st.pending = false
		}
	}
	s.waiters = s.waiters[:0]
	s.contenders = contenders
	switch len(contenders) {
	case 0:
	case 1:
		s.startTx(contenders[0])
	default:
		s.collideAll(contenders)
	}
}
