package ethernet

import (
	"testing"

	"fxnet/internal/sim"
)

// countReceivers wires a delivery counter onto every station.
func countReceivers(sts []*Station) []*int {
	counts := make([]*int, len(sts))
	for i, st := range sts {
		n := new(int)
		counts[i] = n
		st.OnReceive(func(f *Frame) { *n++ })
	}
	return counts
}

func TestLinkDownDropsThenRestores(t *testing.T) {
	k, seg, sts := newTestSegment(t, 2)
	counts := countReceivers(sts)

	sts[0].Send(dataFrame(1, 100))
	k.Run()
	if *counts[1] != 1 {
		t.Fatalf("baseline delivery = %d, want 1", *counts[1])
	}

	seg.SetLinkDown(1, true)
	sts[0].Send(dataFrame(1, 100))
	k.Run()
	if *counts[1] != 1 {
		t.Errorf("delivery to downed link = %d, want still 1", *counts[1])
	}
	if st := seg.Stats(); st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", st.Dropped)
	}

	seg.SetLinkDown(1, false)
	sts[0].Send(dataFrame(1, 100))
	k.Run()
	if *counts[1] != 2 {
		t.Errorf("delivery after restore = %d, want 2", *counts[1])
	}
}

func TestLinkDownGatesSenderToo(t *testing.T) {
	k, seg, sts := newTestSegment(t, 2)
	counts := countReceivers(sts)

	seg.SetLinkDown(0, true)
	sts[0].Send(dataFrame(1, 100))
	k.Run()
	if *counts[1] != 0 {
		t.Errorf("frame from downed station delivered %d times", *counts[1])
	}
	if st := seg.Stats(); st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", st.Dropped)
	}
}

// Satellite check: fault-gate drops are accounted separately from
// injected FCS corruption.
func TestDroppedCountedSeparatelyFromCorrupted(t *testing.T) {
	k, seg, sts := newTestSegment(t, 2)
	countReceivers(sts)

	seg.SetDropProb(1)
	sts[0].Send(dataFrame(1, 100))
	k.Run()
	if st := seg.Stats(); st.Corrupted != 1 || st.Dropped != 0 {
		t.Errorf("after corruption: Corrupted=%d Dropped=%d, want 1, 0",
			st.Corrupted, st.Dropped)
	}

	seg.SetDropProb(0)
	seg.SetSegmentDown(true)
	sts[0].Send(dataFrame(1, 100))
	k.Run()
	if st := seg.Stats(); st.Corrupted != 1 || st.Dropped != 1 {
		t.Errorf("after segment cut: Corrupted=%d Dropped=%d, want 1, 1",
			st.Corrupted, st.Dropped)
	}
}

func TestPartitionIsolatesGroupsUntilHeal(t *testing.T) {
	k, seg, sts := newTestSegment(t, 4)
	counts := countReceivers(sts)

	seg.SetPartition([][]int{{0, 1}, {2, 3}})
	sts[0].Send(dataFrame(1, 100)) // same side: delivered
	sts[0].Send(dataFrame(2, 100)) // across the cut: dropped
	k.Run()
	if *counts[1] != 1 || *counts[2] != 0 {
		t.Errorf("partitioned deliveries: to 1 = %d (want 1), to 2 = %d (want 0)",
			*counts[1], *counts[2])
	}
	if st := seg.Stats(); st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", st.Dropped)
	}

	seg.Heal()
	sts[0].Send(dataFrame(2, 100))
	k.Run()
	if *counts[2] != 1 {
		t.Errorf("delivery after heal = %d, want 1", *counts[2])
	}
}

func TestBitRateDegradeStretchesOccupancy(t *testing.T) {
	elapsed := func(rate float64) sim.Time {
		k, seg, sts := newTestSegment(t, 2)
		countReceivers(sts)
		if rate > 0 {
			seg.SetBitRate(rate)
		}
		sts[0].Send(dataFrame(1, 1500))
		return k.Run()
	}
	fast := elapsed(0)         // default 10 Mb/s
	slow := elapsed(1_000_000) // degraded to 1 Mb/s
	if slow < 9*fast || slow > 11*fast {
		t.Errorf("degraded delivery took %v vs %v at full rate, want ~10×", slow, fast)
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	k, seg, sts := newTestSegment(t, 2)
	counts := countReceivers(sts)

	seg.SetDuplicateProb(1)
	sts[0].Send(dataFrame(1, 100))
	k.Run()
	if *counts[1] != 2 {
		t.Errorf("deliveries = %d, want 2", *counts[1])
	}
	if st := seg.Stats(); st.Duplicated != 1 {
		t.Errorf("Duplicated = %d, want 1", st.Duplicated)
	}
}

func TestReorderSwapsAdjacentFrames(t *testing.T) {
	k, seg, sts := newTestSegment(t, 2)
	var order []int
	sts[1].OnReceive(func(f *Frame) { order = append(order, f.NetLen) })

	seg.SetReorderProb(1)
	sts[0].Send(dataFrame(1, 100))
	k.Run()
	if len(order) != 0 {
		t.Fatalf("held frame delivered early: %v", order)
	}
	seg.SetReorderProb(0)
	sts[0].Send(dataFrame(1, 200))
	k.Run()
	if len(order) != 2 || order[0] != 200 || order[1] != 100 {
		t.Errorf("delivery order = %v, want [200 100]", order)
	}
	if st := seg.Stats(); st.Reordered != 1 {
		t.Errorf("Reordered = %d, want 1", st.Reordered)
	}
}

// Enabling fault injection must not perturb the base RNG streams: the
// same workload with and without an (unused) fault hook armed yields the
// same event timing.
func TestFaultStreamsIsolatedFromBaseline(t *testing.T) {
	run := func(arm bool) sim.Time {
		k, seg, sts := newTestSegment(t, 3)
		countReceivers(sts)
		if arm {
			seg.SetDuplicateProb(0.5) // draws from ethernet.fault only on delivery
			seg.SetDuplicateProb(0)
		}
		for i := 0; i < 20; i++ {
			sts[0].Send(dataFrame(1, 400))
			sts[2].Send(dataFrame(1, 400))
		}
		return k.Run()
	}
	if a, b := run(false), run(true); a != b {
		t.Errorf("fault stream perturbed baseline: %v vs %v", a, b)
	}
}
