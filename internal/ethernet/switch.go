package ethernet

import (
	"fmt"

	"fxnet/internal/sim"
)

// Port is the attachment point a host stack binds to: both the shared
// segment's Station and the Switch's SwitchPort implement it, so the same
// transport stack runs over either medium.
type Port interface {
	ID() int
	Name() string
	Send(*Frame)
	OnReceive(func(*Frame))
}

// TrafficSource is any medium a promiscuous capture can tap. On the
// shared segment this is the paper's setup — every frame crosses one
// wire; on a switch it models a monitoring (SPAN) port.
type TrafficSource interface {
	Tap(fn func(Capture))
}

var (
	_ Port          = (*Station)(nil)
	_ Port          = (*SwitchPort)(nil)
	_ TrafficSource = (*Segment)(nil)
	_ TrafficSource = (*Switch)(nil)
)

// fwdEntry is one frame waiting out the store-and-forward latency.
type fwdEntry struct {
	at   sim.Time
	from *SwitchPort
	f    *Frame
}

// Switch is a store-and-forward Ethernet switch with full-duplex links:
// each port has an independent ingress (host→switch) and egress
// (switch→host) wire at the link rate, with output queuing and no
// collisions — the "next generation LAN" the paper's introduction
// anticipates. It exists for the shared-vs-switched ablation.
//
// The forwarding path allocates nothing in steady state: each port's
// ingress and egress callbacks are allocated once with precomputed
// names, queues pop from head indexes that rewind when drained, and the
// latency delay runs through a single shared FIFO (constant latency
// keeps it time-ordered) with one once-allocated timer callback.
type Switch struct {
	k       *sim.Kernel
	bitRate float64
	latency sim.Duration
	ports   []*SwitchPort
	taps    []func(Capture)

	// Store-and-forward FIFO: frames that finished ingress and are
	// waiting out the fabric latency.
	fwdQ       []fwdEntry
	fwdHead    int
	fwdPending bool
	fwdFn      func() // once-allocated latency-expiry callback

	// guaranteed marks (src, dst) connections with a QoS commitment:
	// their frames use the high-priority egress queue, modeling the
	// per-connection guarantees of the ATM-class networks the paper's
	// introduction anticipates.
	guaranteed map[[2]int]bool

	// Delivered / DeliveredBytes count egress completions.
	Delivered      int64
	DeliveredBytes int64
	// MaxQueue tracks the deepest egress queue observed.
	MaxQueue int
}

// Guarantee gives the (src, dst) connection strict egress priority over
// best-effort traffic.
func (sw *Switch) Guarantee(src, dst int) {
	if sw.guaranteed == nil {
		sw.guaranteed = make(map[[2]int]bool)
	}
	sw.guaranteed[[2]int{src, dst}] = true
}

// NewSwitch creates a switch whose links run at bitRate bits/s (0 selects
// 10 Mb/s, matching the shared segment for like-for-like comparisons)
// with the given store-and-forward latency.
func NewSwitch(k *sim.Kernel, bitRate float64, latency sim.Duration) *Switch {
	if bitRate <= 0 {
		bitRate = DefaultBitRate
	}
	if latency < 0 {
		panic("ethernet: negative switch latency")
	}
	sw := &Switch{k: k, bitRate: bitRate, latency: latency}
	sw.fwdFn = sw.releaseForward
	return sw
}

// Tap registers a monitoring callback invoked at each egress completion,
// modeling a SPAN/mirror port.
func (sw *Switch) Tap(fn func(Capture)) { sw.taps = append(sw.taps, fn) }

// Attach adds a port.
func (sw *Switch) Attach(name string) *SwitchPort {
	p := &SwitchPort{
		sw:          sw,
		id:          len(sw.ports),
		name:        name,
		ingressName: "switch.ingress:" + name,
		egressName:  "switch.egress:" + name,
	}
	p.ingressFn = p.ingressDone
	p.egressFn = p.egressDone
	sw.ports = append(sw.ports, p)
	return p
}

// Ports returns the attached ports in order.
func (sw *Switch) Ports() []*SwitchPort { return sw.ports }

func (sw *Switch) txDuration(f *Frame) sim.Duration {
	return sim.DurationOf(float64(f.WireBytes()*8) / sw.bitRate)
}

// SwitchPort is one full-duplex attachment. Its queues pop from head
// indexes and rewind to the start of their backing arrays whenever they
// drain, so steady-state traffic reuses one allocation per queue.
type SwitchPort struct {
	sw          *Switch
	id          int
	name        string
	ingressName string // precomputed "switch.ingress:"+name
	egressName  string // precomputed "switch.egress:"+name
	recv        func(*Frame)

	// Ingress (host → switch).
	inQ       []*Frame
	inHead    int
	inFlight  *Frame // frame currently serializing up the link
	ingressFn func() // once-allocated ingress-completion callback

	// Egress (switch → host): a strict-priority pair of queues.
	outHi     []*Frame
	outHiHead int
	outQ      []*Frame
	outHead   int
	outFlight *Frame // frame currently serializing down the link
	egressFn  func() // once-allocated egress-completion callback
}

// ID reports the port's address.
func (p *SwitchPort) ID() int { return p.id }

// Name reports the port name.
func (p *SwitchPort) Name() string { return p.name }

// OnReceive registers the delivery upcall.
func (p *SwitchPort) OnReceive(fn func(*Frame)) { p.recv = fn }

// QueueLen reports queued frames (ingress + egress).
func (p *SwitchPort) QueueLen() int {
	return (len(p.inQ) - p.inHead) + (len(p.outQ) - p.outHead) + (len(p.outHi) - p.outHiHead)
}

// Send transmits a frame toward the switch.
func (p *SwitchPort) Send(f *Frame) {
	if f.Dst == p.id {
		panic(fmt.Sprintf("ethernet: port %q sending to itself", p.name))
	}
	if f.NetLen > MaxNetBytes {
		panic(fmt.Sprintf("ethernet: frame NetLen %d exceeds MTU %d", f.NetLen, MaxNetBytes))
	}
	f.Src = p.id
	p.inQ = append(p.inQ, f)
	if p.inFlight == nil {
		p.pumpIngress()
	}
}

// pumpIngress serializes the next queued frame up the link.
func (p *SwitchPort) pumpIngress() {
	if p.inHead == len(p.inQ) {
		p.inQ = p.inQ[:0]
		p.inHead = 0
		return
	}
	f := p.inQ[p.inHead]
	p.inQ[p.inHead] = nil
	p.inHead++
	p.inFlight = f
	sw := p.sw
	sw.k.After(sw.txDuration(f)+InterFrameGap, p.ingressName, p.ingressFn)
}

// ingressDone fires when the in-flight frame has fully arrived at the
// switch: it enters the store-and-forward FIFO and the next queued frame
// starts up the link.
func (p *SwitchPort) ingressDone() {
	f := p.inFlight
	p.inFlight = nil
	p.sw.enqueueForward(p, f)
	p.pumpIngress()
}

// enqueueForward places a fully received frame in the latency FIFO and
// arms the release timer if it is not already running. Latency is
// constant, so arrival order is release order and one timer (for the
// head entry) suffices.
func (sw *Switch) enqueueForward(from *SwitchPort, f *Frame) {
	at := sw.k.Now().Add(sw.latency)
	sw.fwdQ = append(sw.fwdQ, fwdEntry{at: at, from: from, f: f})
	if !sw.fwdPending {
		sw.fwdPending = true
		sw.k.At(at, "switch.forward", sw.fwdFn)
	}
}

// releaseForward pops every FIFO entry whose latency has expired,
// forwards it, and re-arms the timer for the new head (if any).
func (sw *Switch) releaseForward() {
	now := sw.k.Now()
	for sw.fwdHead < len(sw.fwdQ) && sw.fwdQ[sw.fwdHead].at <= now {
		e := sw.fwdQ[sw.fwdHead]
		sw.fwdQ[sw.fwdHead] = fwdEntry{}
		sw.fwdHead++
		sw.forward(e.from, e.f)
	}
	if sw.fwdHead == len(sw.fwdQ) {
		sw.fwdQ = sw.fwdQ[:0]
		sw.fwdHead = 0
		sw.fwdPending = false
		return
	}
	sw.k.At(sw.fwdQ[sw.fwdHead].at, "switch.forward", sw.fwdFn)
}

// forward places the frame on the destination port's egress queue (all
// other ports for broadcast).
func (sw *Switch) forward(from *SwitchPort, f *Frame) {
	for _, dst := range sw.ports {
		if dst == from {
			continue
		}
		if f.Dst == Broadcast || f.Dst == dst.id {
			if sw.guaranteed[[2]int{f.Src, f.Dst}] {
				dst.outHi = append(dst.outHi, f)
			} else {
				dst.outQ = append(dst.outQ, f)
			}
			if n := (len(dst.outQ) - dst.outHead) + (len(dst.outHi) - dst.outHiHead); n > sw.MaxQueue {
				sw.MaxQueue = n
			}
			if dst.outFlight == nil {
				dst.pumpEgress()
			}
		}
	}
}

// pumpEgress serializes the next egress frame down to the host,
// guaranteed traffic first.
func (p *SwitchPort) pumpEgress() {
	var f *Frame
	switch {
	case p.outHiHead < len(p.outHi):
		f = p.outHi[p.outHiHead]
		p.outHi[p.outHiHead] = nil
		p.outHiHead++
	case p.outHead < len(p.outQ):
		f = p.outQ[p.outHead]
		p.outQ[p.outHead] = nil
		p.outHead++
	default:
		if p.outHiHead == len(p.outHi) {
			p.outHi = p.outHi[:0]
			p.outHiHead = 0
		}
		if p.outHead == len(p.outQ) {
			p.outQ = p.outQ[:0]
			p.outHead = 0
		}
		return
	}
	p.outFlight = f
	sw := p.sw
	sw.k.After(sw.txDuration(f)+InterFrameGap, p.egressName, p.egressFn)
}

// egressDone completes one delivery: stats, SPAN taps, the host upcall,
// then the next egress frame.
func (p *SwitchPort) egressDone() {
	f := p.outFlight
	p.outFlight = nil
	sw := p.sw
	sw.Delivered++
	sw.DeliveredBytes += int64(f.CapturedSize())
	cap := Capture{
		Time: sw.k.Now(), Size: f.CapturedSize(),
		Src: f.Src, Dst: f.Dst, Proto: f.Proto,
		SrcPort: f.SrcPort, DstPort: f.DstPort, Flags: f.Flags,
	}
	for _, tap := range sw.taps {
		tap(cap)
	}
	if p.recv != nil {
		p.recv(f)
	}
	p.pumpEgress()
}
