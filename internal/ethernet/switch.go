package ethernet

import (
	"fmt"

	"fxnet/internal/sim"
)

// Port is the attachment point a host stack binds to: both the shared
// segment's Station and the Switch's SwitchPort implement it, so the same
// transport stack runs over either medium.
type Port interface {
	ID() int
	Name() string
	Send(*Frame)
	OnReceive(func(*Frame))
}

// TrafficSource is any medium a promiscuous capture can tap. On the
// shared segment this is the paper's setup — every frame crosses one
// wire; on a switch it models a monitoring (SPAN) port.
type TrafficSource interface {
	Tap(fn func(Capture))
}

var (
	_ Port          = (*Station)(nil)
	_ Port          = (*SwitchPort)(nil)
	_ TrafficSource = (*Segment)(nil)
	_ TrafficSource = (*Switch)(nil)
)

// Switch is a store-and-forward Ethernet switch with full-duplex links:
// each port has an independent ingress (host→switch) and egress
// (switch→host) wire at the link rate, with output queuing and no
// collisions — the "next generation LAN" the paper's introduction
// anticipates. It exists for the shared-vs-switched ablation.
type Switch struct {
	k       *sim.Kernel
	bitRate float64
	latency sim.Duration
	ports   []*SwitchPort
	taps    []func(Capture)

	// guaranteed marks (src, dst) connections with a QoS commitment:
	// their frames use the high-priority egress queue, modeling the
	// per-connection guarantees of the ATM-class networks the paper's
	// introduction anticipates.
	guaranteed map[[2]int]bool

	// Delivered / DeliveredBytes count egress completions.
	Delivered      int64
	DeliveredBytes int64
	// MaxQueue tracks the deepest egress queue observed.
	MaxQueue int
}

// Guarantee gives the (src, dst) connection strict egress priority over
// best-effort traffic.
func (sw *Switch) Guarantee(src, dst int) {
	if sw.guaranteed == nil {
		sw.guaranteed = make(map[[2]int]bool)
	}
	sw.guaranteed[[2]int{src, dst}] = true
}

// NewSwitch creates a switch whose links run at bitRate bits/s (0 selects
// 10 Mb/s, matching the shared segment for like-for-like comparisons)
// with the given store-and-forward latency.
func NewSwitch(k *sim.Kernel, bitRate float64, latency sim.Duration) *Switch {
	if bitRate <= 0 {
		bitRate = DefaultBitRate
	}
	if latency < 0 {
		panic("ethernet: negative switch latency")
	}
	return &Switch{k: k, bitRate: bitRate, latency: latency}
}

// Tap registers a monitoring callback invoked at each egress completion,
// modeling a SPAN/mirror port.
func (sw *Switch) Tap(fn func(Capture)) { sw.taps = append(sw.taps, fn) }

// Attach adds a port.
func (sw *Switch) Attach(name string) *SwitchPort {
	p := &SwitchPort{sw: sw, id: len(sw.ports), name: name}
	sw.ports = append(sw.ports, p)
	return p
}

// Ports returns the attached ports in order.
func (sw *Switch) Ports() []*SwitchPort { return sw.ports }

func (sw *Switch) txDuration(f *Frame) sim.Duration {
	return sim.DurationOf(float64(f.WireBytes()*8) / sw.bitRate)
}

// SwitchPort is one full-duplex attachment.
type SwitchPort struct {
	sw   *Switch
	id   int
	name string
	recv func(*Frame)

	// Ingress (host → switch).
	inQ    []*Frame
	inBusy bool

	// Egress (switch → host): a strict-priority pair of queues.
	outHi   []*Frame
	outQ    []*Frame
	outBusy bool
}

// ID reports the port's address.
func (p *SwitchPort) ID() int { return p.id }

// Name reports the port name.
func (p *SwitchPort) Name() string { return p.name }

// OnReceive registers the delivery upcall.
func (p *SwitchPort) OnReceive(fn func(*Frame)) { p.recv = fn }

// QueueLen reports queued frames (ingress + egress).
func (p *SwitchPort) QueueLen() int { return len(p.inQ) + len(p.outQ) + len(p.outHi) }

// Send transmits a frame toward the switch.
func (p *SwitchPort) Send(f *Frame) {
	if f.Dst == p.id {
		panic(fmt.Sprintf("ethernet: port %q sending to itself", p.name))
	}
	if f.NetLen > MaxNetBytes {
		panic(fmt.Sprintf("ethernet: frame NetLen %d exceeds MTU %d", f.NetLen, MaxNetBytes))
	}
	f.Src = p.id
	p.inQ = append(p.inQ, f)
	if !p.inBusy {
		p.pumpIngress()
	}
}

// pumpIngress serializes the next queued frame up the link.
func (p *SwitchPort) pumpIngress() {
	if len(p.inQ) == 0 {
		p.inBusy = false
		return
	}
	p.inBusy = true
	f := p.inQ[0]
	p.inQ = p.inQ[1:]
	sw := p.sw
	sw.k.After(sw.txDuration(f)+InterFrameGap, "switch.ingress:"+p.name, func() {
		sw.k.After(sw.latency, "switch.forward", func() { sw.forward(p, f) })
		p.pumpIngress()
	})
}

// forward places the frame on the destination port's egress queue (all
// other ports for broadcast).
func (sw *Switch) forward(from *SwitchPort, f *Frame) {
	for _, dst := range sw.ports {
		if dst == from {
			continue
		}
		if f.Dst == Broadcast || f.Dst == dst.id {
			if sw.guaranteed[[2]int{f.Src, f.Dst}] {
				dst.outHi = append(dst.outHi, f)
			} else {
				dst.outQ = append(dst.outQ, f)
			}
			if n := len(dst.outQ) + len(dst.outHi); n > sw.MaxQueue {
				sw.MaxQueue = n
			}
			if !dst.outBusy {
				dst.pumpEgress()
			}
		}
	}
}

// pumpEgress serializes the next egress frame down to the host,
// guaranteed traffic first.
func (p *SwitchPort) pumpEgress() {
	var f *Frame
	switch {
	case len(p.outHi) > 0:
		f = p.outHi[0]
		p.outHi = p.outHi[1:]
	case len(p.outQ) > 0:
		f = p.outQ[0]
		p.outQ = p.outQ[1:]
	default:
		p.outBusy = false
		return
	}
	p.outBusy = true
	sw := p.sw
	sw.k.After(sw.txDuration(f)+InterFrameGap, "switch.egress:"+p.name, func() {
		sw.Delivered++
		sw.DeliveredBytes += int64(f.CapturedSize())
		cap := Capture{
			Time: sw.k.Now(), Size: f.CapturedSize(),
			Src: f.Src, Dst: f.Dst, Proto: f.Proto,
			SrcPort: f.SrcPort, DstPort: f.DstPort, Flags: f.Flags,
		}
		for _, tap := range sw.taps {
			tap(cap)
		}
		if p.recv != nil {
			p.recv(f)
		}
		p.pumpEgress()
	})
}
