package ethernet

import (
	"testing"

	"fxnet/internal/sim"
)

func newTestSwitch(t *testing.T, n int) (*sim.Kernel, *Switch, []*SwitchPort) {
	t.Helper()
	k := sim.New(1)
	sw := NewSwitch(k, 0, 10*sim.Microsecond)
	ports := make([]*SwitchPort, n)
	for i := range ports {
		ports[i] = sw.Attach(string(rune('A' + i)))
	}
	return k, sw, ports
}

func TestSwitchUnicastDelivery(t *testing.T) {
	k, _, ports := newTestSwitch(t, 3)
	var got [3]int
	for i, p := range ports {
		i := i
		p.OnReceive(func(f *Frame) { got[i]++ })
	}
	ports[0].Send(dataFrame(1, 500))
	k.Run()
	if got[0] != 0 || got[1] != 1 || got[2] != 0 {
		t.Errorf("deliveries = %v", got)
	}
}

func TestSwitchBroadcast(t *testing.T) {
	k, _, ports := newTestSwitch(t, 4)
	var got [4]int
	for i, p := range ports {
		i := i
		p.OnReceive(func(f *Frame) { got[i]++ })
	}
	ports[2].Send(&Frame{Dst: Broadcast, NetLen: 100})
	k.Run()
	for i, n := range got {
		want := 1
		if i == 2 {
			want = 0
		}
		if n != want {
			t.Errorf("port %d got %d", i, n)
		}
	}
}

func TestSwitchLatencyAndSerialization(t *testing.T) {
	k, _, ports := newTestSwitch(t, 2)
	var at sim.Time
	ports[1].OnReceive(func(f *Frame) { at = k.Now() })
	f := dataFrame(1, 1000)
	ports[0].Send(f)
	k.Run()
	// ingress serialization + IFG + latency + egress serialization + IFG.
	per := sim.DurationOf(float64(f.WireBytes()*8) / 10e6)
	want := sim.Time(0).Add(per + InterFrameGap + 10*sim.Microsecond + per + InterFrameGap)
	if at != want {
		t.Errorf("delivered at %v, want %v", at, want)
	}
}

func TestSwitchFullDuplexParallelism(t *testing.T) {
	// Two simultaneous opposite-direction transfers on a switch do not
	// contend, unlike on the shared segment: both complete in roughly the
	// one-way time.
	run := func(switched bool) sim.Time {
		k := sim.New(1)
		const frames = 50
		received := 0
		if switched {
			sw := NewSwitch(k, 0, 0)
			a, b := sw.Attach("a"), sw.Attach("b")
			a.OnReceive(func(f *Frame) { received++ })
			b.OnReceive(func(f *Frame) { received++ })
			for i := 0; i < frames; i++ {
				a.Send(dataFrame(1, 1400))
				b.Send(dataFrame(0, 1400))
			}
		} else {
			seg := NewSegment(k, 0)
			a, b := seg.Attach("a"), seg.Attach("b")
			a.OnReceive(func(f *Frame) { received++ })
			b.OnReceive(func(f *Frame) { received++ })
			for i := 0; i < frames; i++ {
				a.Send(dataFrame(1, 1400))
				b.Send(dataFrame(0, 1400))
			}
		}
		end := k.Run()
		if received != 2*frames {
			t.Fatalf("switched=%v: received %d", switched, received)
		}
		return end
	}
	shared := run(false)
	switched := run(true)
	// The shared medium serializes 100 frames; the switch pipelines the
	// two directions, finishing in a bit over half the time.
	if float64(switched) > 0.7*float64(shared) {
		t.Errorf("switch %v not ≪ shared %v", switched, shared)
	}
}

func TestSwitchOutputQueueContention(t *testing.T) {
	// Three senders to one receiver: the egress link serializes, so the
	// total time matches one link's worth of frames, and MaxQueue grows.
	k, sw, ports := newTestSwitch(t, 4)
	received := 0
	ports[3].OnReceive(func(f *Frame) { received++ })
	const per = 30
	for i := 0; i < per; i++ {
		for s := 0; s < 3; s++ {
			ports[s].Send(dataFrame(3, 1400))
		}
	}
	k.Run()
	if received != 3*per {
		t.Fatalf("received %d", received)
	}
	if sw.MaxQueue < 2 {
		t.Errorf("MaxQueue = %d, expected output queuing", sw.MaxQueue)
	}
	if sw.Delivered != 3*per {
		t.Errorf("Delivered = %d", sw.Delivered)
	}
}

func TestSwitchTap(t *testing.T) {
	k, sw, ports := newTestSwitch(t, 2)
	ports[1].OnReceive(func(f *Frame) {})
	var caps []Capture
	sw.Tap(func(c Capture) { caps = append(caps, c) })
	ports[0].Send(&Frame{Dst: 1, Proto: ProtoUDP, NetLen: 64})
	k.Run()
	if len(caps) != 1 || caps[0].Size != 82 || caps[0].Proto != ProtoUDP {
		t.Errorf("caps = %+v", caps)
	}
}

func TestSwitchSelfSendPanics(t *testing.T) {
	_, _, ports := newTestSwitch(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("no panic on self-send")
		}
	}()
	ports[0].Send(dataFrame(0, 100))
}

func TestSwitchPreservesPerSourceOrder(t *testing.T) {
	k, _, ports := newTestSwitch(t, 2)
	var sizes []int
	ports[1].OnReceive(func(f *Frame) { sizes = append(sizes, f.NetLen) })
	for i := 1; i <= 20; i++ {
		ports[0].Send(dataFrame(1, 100+i))
	}
	k.Run()
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatalf("reordering: %v", sizes)
		}
	}
}
