package ethernet

// bridgeIDBase is the station address of segment 0's bridge. Host
// addresses are bounded far below it (the trace format caps them at
// 65534), so bridge stations never collide with — or match the Dst of —
// any host frame.
const bridgeIDBase = 1 << 20

// Bridge is one port of a transparent learning switch: a station on a
// segment that observes every delivered frame, learns which segment each
// source address lives on, and relays frames addressed off-segment
// through trunk conduits to its peer bridges. Unknown and broadcast
// destinations flood to all other segments, exactly like a real
// 802.1D bridge before its filtering database converges.
//
// The bridge itself is partition-local state: the learned table is only
// read and written from its own segment's kernel, so no synchronization
// is needed. Cross-segment hand-off happens through the send conduit,
// which the topology runner implements as an engine Send honoring the
// conservative lookahead contract.
type Bridge struct {
	seg     *Segment
	station *Station
	segIdx  int
	nSeg    int
	// learned maps a source address to segment index + 1 (0 = not yet
	// learned). A dense slice sized for the topology's host count keeps
	// the forwarding decision a bounds check and an array load —
	// thousand-host fabrics hit this on every delivered frame, where
	// the old map paid a hash per lookup.
	learned []int32
	send    func(dstSeg int, f *Frame)

	// Relayed counts frames this bridge pushed into trunks (floods count
	// once per destination segment).
	Relayed int64
}

// NewBridge attaches a bridge station to seg (segment segIdx of nSeg)
// and wires it to observe delivered frames. hostCap sizes the learning
// table: host station addresses are expected in [0, hostCap). send
// conveys a frame into another segment's bridge; the topology runner
// routes it across the partition boundary with trunk latency applied.
func NewBridge(seg *Segment, segIdx, nSeg, hostCap int, send func(dstSeg int, f *Frame)) *Bridge {
	if hostCap < 1 {
		hostCap = 1
	}
	b := &Bridge{
		seg:     seg,
		segIdx:  segIdx,
		nSeg:    nSeg,
		learned: make([]int32, hostCap),
		send:    send,
	}
	b.station = seg.AttachID("bridge", bridgeIDBase+segIdx)
	seg.OnForward(b.sawFrame)
	return b
}

// learn records that addr was seen on segment seg, growing the table if
// an address beyond the declared host capacity appears.
func (b *Bridge) learn(addr, seg int) {
	if addr < 0 {
		return
	}
	if addr >= len(b.learned) {
		grown := make([]int32, addr+1)
		copy(grown, b.learned)
		b.learned = grown
	}
	b.learned[addr] = int32(seg) + 1
}

// lookup reports the segment addr was learned on.
func (b *Bridge) lookup(addr int) (seg int, known bool) {
	if addr < 0 || addr >= len(b.learned) {
		return 0, false
	}
	v := b.learned[addr]
	return int(v) - 1, v != 0
}

// sawFrame is the promiscuous observation hook: runs at the end of every
// successful delivery on the local segment.
func (b *Bridge) sawFrame(tx *Station, f *Frame) {
	if tx == b.station {
		// A frame this bridge relayed onto the local wire: the source
		// lives on another segment (already learned at trunk ingress),
		// and relaying it again would loop.
		return
	}
	b.learn(f.Src, b.segIdx)
	if f.Dst == Broadcast {
		b.flood(f)
		return
	}
	seg, known := b.lookup(f.Dst)
	switch {
	case !known:
		b.flood(f)
	case seg == b.segIdx:
		// Local traffic: already delivered, nothing to relay.
	default:
		b.send(seg, f)
		b.Relayed++
	}
}

// flood relays f to every other segment.
func (b *Bridge) flood(f *Frame) {
	for s := 0; s < b.nSeg; s++ {
		if s == b.segIdx {
			continue
		}
		b.send(s, f)
		b.Relayed++
	}
}

// DeliverFromTrunk accepts a frame arriving over a trunk from srcSeg:
// learn the source's segment, then transmit the frame locally with its
// original source address preserved.
func (b *Bridge) DeliverFromTrunk(srcSeg int, f *Frame) {
	b.learn(f.Src, srcSeg)
	b.station.Forward(f)
}
