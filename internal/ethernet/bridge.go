package ethernet

// bridgeIDBase is the station address of segment 0's bridge. Host
// addresses are bounded far below it (the trace format caps them at
// 254), so bridge stations never collide with — or match the Dst of —
// any host frame.
const bridgeIDBase = 1 << 20

// Bridge is one port of a transparent learning switch: a station on a
// segment that observes every delivered frame, learns which segment each
// source address lives on, and relays frames addressed off-segment
// through trunk conduits to its peer bridges. Unknown and broadcast
// destinations flood to all other segments, exactly like a real
// 802.1D bridge before its filtering database converges.
//
// The bridge itself is partition-local state: the learned table is only
// read and written from its own segment's kernel, so no synchronization
// is needed. Cross-segment hand-off happens through the send conduit,
// which the topology runner implements as an engine Send honoring the
// conservative lookahead contract.
type Bridge struct {
	seg     *Segment
	station *Station
	segIdx  int
	nSeg    int
	learned map[int]int // source address → segment index
	send    func(dstSeg int, f *Frame)

	// Relayed counts frames this bridge pushed into trunks (floods count
	// once per destination segment).
	Relayed int64
}

// NewBridge attaches a bridge station to seg (segment segIdx of nSeg)
// and wires it to observe delivered frames. send conveys a frame into
// another segment's bridge; the topology runner routes it across the
// partition boundary with trunk latency applied.
func NewBridge(seg *Segment, segIdx, nSeg int, send func(dstSeg int, f *Frame)) *Bridge {
	b := &Bridge{
		seg:     seg,
		segIdx:  segIdx,
		nSeg:    nSeg,
		learned: make(map[int]int),
		send:    send,
	}
	b.station = seg.AttachID("bridge", bridgeIDBase+segIdx)
	seg.OnForward(b.sawFrame)
	return b
}

// sawFrame is the promiscuous observation hook: runs at the end of every
// successful delivery on the local segment.
func (b *Bridge) sawFrame(tx *Station, f *Frame) {
	if tx == b.station {
		// A frame this bridge relayed onto the local wire: the source
		// lives on another segment (already learned at trunk ingress),
		// and relaying it again would loop.
		return
	}
	b.learned[f.Src] = b.segIdx
	if f.Dst == Broadcast {
		b.flood(f)
		return
	}
	seg, known := b.learned[f.Dst]
	switch {
	case !known:
		b.flood(f)
	case seg == b.segIdx:
		// Local traffic: already delivered, nothing to relay.
	default:
		b.send(seg, f)
		b.Relayed++
	}
}

// flood relays f to every other segment.
func (b *Bridge) flood(f *Frame) {
	for s := 0; s < b.nSeg; s++ {
		if s == b.segIdx {
			continue
		}
		b.send(s, f)
		b.Relayed++
	}
}

// DeliverFromTrunk accepts a frame arriving over a trunk from srcSeg:
// learn the source's segment, then transmit the frame locally with its
// original source address preserved.
func (b *Bridge) DeliverFromTrunk(srcSeg int, f *Frame) {
	b.learned[f.Src] = srcSeg
	b.station.Forward(f)
}
