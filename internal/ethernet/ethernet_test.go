package ethernet

import (
	"testing"

	"fxnet/internal/sim"
)

func newTestSegment(t *testing.T, n int) (*sim.Kernel, *Segment, []*Station) {
	t.Helper()
	k := sim.New(1)
	seg := NewSegment(k, 0)
	sts := make([]*Station, n)
	for i := range sts {
		sts[i] = seg.Attach(string(rune('A' + i)))
	}
	return k, seg, sts
}

func dataFrame(dst, netLen int) *Frame {
	return &Frame{Dst: dst, Proto: ProtoTCP, NetLen: netLen, Flags: FlagData}
}

func TestFrameSizes(t *testing.T) {
	// 40-byte TCP/IP header with no data: the paper's 58-byte ACK.
	ack := &Frame{NetLen: 40}
	if got := ack.CapturedSize(); got != 58 {
		t.Errorf("ACK captured size = %d, want 58", got)
	}
	// Minimum wire frame is padded to 64 plus 8 preamble bytes.
	if got := ack.WireBytes(); got != 72 {
		t.Errorf("ACK wire bytes = %d, want 72", got)
	}
	// Full MSS segment: 20 IP + 20 TCP + 1460 data.
	full := &Frame{NetLen: 1500}
	if got := full.CapturedSize(); got != 1518 {
		t.Errorf("full captured size = %d, want 1518", got)
	}
	if got := full.WireBytes(); got != 1526 {
		t.Errorf("full wire bytes = %d, want 1526", got)
	}
}

func TestSendDeliversToDestinationOnly(t *testing.T) {
	k, _, sts := newTestSegment(t, 3)
	var got [3]int
	for i, st := range sts {
		i := i
		st.OnReceive(func(f *Frame) { got[i]++ })
	}
	sts[0].Send(dataFrame(1, 100))
	k.Run()
	if got[0] != 0 || got[1] != 1 || got[2] != 0 {
		t.Errorf("deliveries = %v", got)
	}
}

func TestBroadcastDeliversToAllOthers(t *testing.T) {
	k, _, sts := newTestSegment(t, 4)
	var got [4]int
	for i, st := range sts {
		i := i
		st.OnReceive(func(f *Frame) { got[i]++ })
	}
	sts[2].Send(&Frame{Dst: Broadcast, NetLen: 50})
	k.Run()
	for i, n := range got {
		want := 1
		if i == 2 {
			want = 0
		}
		if n != want {
			t.Errorf("station %d got %d, want %d", i, n, want)
		}
	}
}

func TestSerializationTime(t *testing.T) {
	k, _, sts := newTestSegment(t, 2)
	var at sim.Time
	sts[1].OnReceive(func(f *Frame) { at = k.Now() })
	f := dataFrame(1, 1500)
	sts[0].Send(f)
	k.Run()
	// 1526 wire bytes at 10 Mb/s = 1220.8 µs.
	want := sim.DurationOf(float64(f.WireBytes()*8) / 10e6)
	if at != sim.Time(want) {
		t.Errorf("delivered at %v, want %v", at, sim.Time(want))
	}
}

func TestBackToBackFramesRespectIFG(t *testing.T) {
	k, _, sts := newTestSegment(t, 2)
	var times []sim.Time
	sts[1].OnReceive(func(f *Frame) { times = append(times, k.Now()) })
	for i := 0; i < 3; i++ {
		sts[0].Send(dataFrame(1, 1000))
	}
	k.Run()
	if len(times) != 3 {
		t.Fatalf("delivered %d frames", len(times))
	}
	per := sim.DurationOf(float64((&Frame{NetLen: 1000}).WireBytes()*8) / 10e6)
	for i := 1; i < 3; i++ {
		gap := times[i].Sub(times[i-1])
		if gap < per+InterFrameGap {
			t.Errorf("gap %d = %v, want ≥ %v", i, gap, per+InterFrameGap)
		}
		if gap > per+InterFrameGap+SlotTime {
			t.Errorf("gap %d = %v, too large", i, gap)
		}
	}
}

func TestContentionCollidesAndResolves(t *testing.T) {
	k, seg, sts := newTestSegment(t, 4)
	received := 0
	sts[3].OnReceive(func(f *Frame) { received++ })
	// Three stations become ready at the same instant → collision, then
	// backoff resolves and all frames eventually arrive.
	for i := 0; i < 3; i++ {
		st := sts[i]
		k.At(sim.Time(sim.Millisecond), "ready", func() { st.Send(dataFrame(3, 500)) })
	}
	k.Run()
	if received != 3 {
		t.Errorf("received %d frames, want 3", received)
	}
	if seg.Stats().Collisions == 0 {
		t.Error("no collisions among simultaneous senders")
	}
	if seg.Stats().Frames != 3 {
		t.Errorf("segment frames = %d", seg.Stats().Frames)
	}
}

func TestCollisionWindowLatecomer(t *testing.T) {
	k, seg, sts := newTestSegment(t, 3)
	got := 0
	sts[2].OnReceive(func(f *Frame) { got++ })
	k.At(0, "s0", func() { sts[0].Send(dataFrame(2, 1400)) })
	// Station 1 starts inside the collision window of station 0's frame.
	k.At(sim.Time(10*sim.Microsecond), "s1", func() { sts[1].Send(dataFrame(2, 1400)) })
	k.Run()
	if got != 2 {
		t.Errorf("received %d, want 2", got)
	}
	if seg.Stats().Collisions < 1 {
		t.Error("latecomer inside window did not collide")
	}
}

func TestLatecomerOutsideWindowDefers(t *testing.T) {
	k, seg, sts := newTestSegment(t, 3)
	var times []sim.Time
	sts[2].OnReceive(func(f *Frame) { times = append(times, k.Now()) })
	k.At(0, "s0", func() { sts[0].Send(dataFrame(2, 1400)) })
	// Well past the collision window but before the first frame ends.
	k.At(sim.Time(500*sim.Microsecond), "s1", func() { sts[1].Send(dataFrame(2, 1400)) })
	k.Run()
	if len(times) != 2 {
		t.Fatalf("received %d", len(times))
	}
	if seg.Stats().Collisions != 0 {
		t.Errorf("deferring sender collided %d times", seg.Stats().Collisions)
	}
}

func TestTapSeesAllTraffic(t *testing.T) {
	k, seg, sts := newTestSegment(t, 3)
	sts[1].OnReceive(func(f *Frame) {})
	sts[2].OnReceive(func(f *Frame) {})
	var caps []Capture
	seg.Tap(func(c Capture) { caps = append(caps, c) })
	sts[0].Send(&Frame{Dst: 1, Proto: ProtoTCP, SrcPort: 1234, DstPort: 80, NetLen: 140, Flags: FlagData})
	sts[0].Send(&Frame{Dst: 2, Proto: ProtoUDP, NetLen: 40})
	k.Run()
	if len(caps) != 2 {
		t.Fatalf("captured %d frames", len(caps))
	}
	c := caps[0]
	if c.Src != 0 || c.Dst != 1 || c.Proto != ProtoTCP || c.Size != 158 || c.SrcPort != 1234 {
		t.Errorf("capture = %+v", c)
	}
	if caps[1].Proto != ProtoUDP || caps[1].Size != 58 {
		t.Errorf("capture = %+v", caps[1])
	}
	if caps[1].Time <= caps[0].Time {
		t.Error("captures out of order")
	}
}

func TestThroughputNearLineRate(t *testing.T) {
	// A single saturating sender should achieve close to 10 Mb/s minus
	// framing overhead.
	k, seg, sts := newTestSegment(t, 2)
	sts[1].OnReceive(func(f *Frame) {})
	n := 500
	for i := 0; i < n; i++ {
		sts[0].Send(dataFrame(1, 1500))
	}
	end := k.Run()
	bytes := seg.Stats().Bytes
	rate := float64(bytes) / end.Seconds() // captured bytes/s
	if rate < 1.1e6 {
		t.Errorf("throughput = %.0f B/s, want ≥ 1.1 MB/s", rate)
	}
	if rate > 1.25e6 {
		t.Errorf("throughput = %.0f B/s exceeds line rate", rate)
	}
}

func TestManyContendersAllDeliver(t *testing.T) {
	// Heavy contention: 8 stations × 50 frames all ready at t=0 must all
	// eventually deliver despite collisions (no drops in this model).
	k, seg, sts := newTestSegment(t, 8)
	total := 0
	for _, st := range sts {
		st.OnReceive(func(f *Frame) { total++ })
	}
	for i, st := range sts {
		for j := 0; j < 50; j++ {
			st.Send(dataFrame((i+1)%8, 200))
		}
	}
	k.Run()
	if total != 400 {
		t.Errorf("delivered %d, want 400", total)
	}
	if seg.Stats().Collisions == 0 {
		t.Error("expected collisions under heavy contention")
	}
}

func TestDeterministicTrace(t *testing.T) {
	run := func() []sim.Time {
		k := sim.New(7)
		seg := NewSegment(k, 0)
		a := seg.Attach("a")
		b := seg.Attach("b")
		c := seg.Attach("c")
		c.OnReceive(func(f *Frame) {})
		var times []sim.Time
		seg.Tap(func(cp Capture) { times = append(times, cp.Time) })
		for i := 0; i < 20; i++ {
			a.Send(dataFrame(2, 700))
			b.Send(dataFrame(2, 300))
		}
		k.Run()
		return times
	}
	t1, t2 := run(), run()
	if len(t1) != 40 || len(t1) != len(t2) {
		t.Fatalf("lengths %d, %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func TestSendToSelfPanics(t *testing.T) {
	_, _, sts := newTestSegment(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("no panic on self-send")
		}
	}()
	sts[0].Send(dataFrame(0, 100))
}

func TestOversizeFramePanics(t *testing.T) {
	_, _, sts := newTestSegment(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("no panic on oversize frame")
		}
	}()
	sts[0].Send(dataFrame(1, MaxNetBytes+1))
}

func TestProtoString(t *testing.T) {
	if ProtoTCP.String() != "tcp" || ProtoUDP.String() != "udp" || ProtoOther.String() != "other" {
		t.Error("Proto.String wrong")
	}
}
