package ethernet

import (
	"testing"

	"fxnet/internal/sim"
)

// BenchmarkSharedSaturation measures the event cost of pushing b.N full
// frames through the CSMA/CD segment with a single sender.
func BenchmarkSharedSaturation(b *testing.B) {
	k := sim.New(1)
	seg := NewSegment(k, 0)
	a := seg.Attach("a")
	seg.Attach("b").OnReceive(func(f *Frame) {})
	for i := 0; i < b.N; i++ {
		a.Send(&Frame{Dst: 1, NetLen: 1500})
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// BenchmarkSharedContention measures four stations contending.
func BenchmarkSharedContention(b *testing.B) {
	k := sim.New(1)
	seg := NewSegment(k, 0)
	sts := make([]*Station, 4)
	for i := range sts {
		sts[i] = seg.Attach(string(rune('a' + i)))
		sts[i].OnReceive(func(f *Frame) {})
	}
	for i := 0; i < b.N; i++ {
		st := sts[i%4]
		st.Send(&Frame{Dst: (st.ID() + 1) % 4, NetLen: 700})
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// BenchmarkBridgeForwarding measures the bridge's per-frame forwarding
// decision — source learning, destination lookup, trunk hand-off — the
// path every delivered frame takes in a multi-segment fabric. It must
// not allocate: thousand-host topologies hit it millions of times.
func BenchmarkBridgeForwarding(b *testing.B) {
	k := sim.New(1)
	seg := NewSegment(k, 0)
	br := NewBridge(seg, 0, 16, 1024, func(dstSeg int, f *Frame) {})
	tx := seg.Attach("h0")
	tx.OnReceive(func(f *Frame) {})
	br.learn(512, 3)
	f := &Frame{Src: 0, Dst: 512, NetLen: 1500}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		br.sawFrame(tx, f)
	}
	if allocs := testing.AllocsPerRun(100, func() { br.sawFrame(tx, f) }); allocs > 0 {
		b.Fatalf("bridge forwarding allocates %v per frame", allocs)
	}
}

// BenchmarkSwitchForwarding measures the store-and-forward path.
func BenchmarkSwitchForwarding(b *testing.B) {
	k := sim.New(1)
	sw := NewSwitch(k, 0, 10*sim.Microsecond)
	a := sw.Attach("a")
	sw.Attach("b").OnReceive(func(f *Frame) {})
	for i := 0; i < b.N; i++ {
		a.Send(&Frame{Dst: 1, NetLen: 1500})
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}
