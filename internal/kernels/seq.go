package kernels

import (
	"encoding/binary"
	"math"

	"fxnet/internal/fx"
)

const seqTag = 300000

// seqElemBytes is the per-element message body: row (int32), column
// (int32), value (float64) — the O(1)-size messages of the paper's SEQ
// kernel, which with headers lands near the paper's ~90-byte packets.
const seqElemBytes = 16

// seqValue is the datum "read from sequential input" for element (i, j).
func seqValue(i, j, n int) float64 {
	return initValue(i, j, n) * 100
}

// SEQ models Fx's sequential-I/O broadcast pattern: an N×N matrix
// distributed by block rows is initialized element-wise from data
// produced on processor 0, which sends each element to every other
// processor; each processor keeps the elements in its own block. Data
// production is row-granular (one input record per row), which gives the
// traffic its burst-per-row periodicity.
//
// Every rank returns its owned block (rank 0's block is produced
// locally).
func SEQ(w *fx.Worker, p Params) [][]float64 {
	checkRank(w, "seq", 2)
	n := p.N
	lo, hi := fx.BlockRange(n, w.P, w.Rank)
	block := make([][]float64, hi-lo)
	for r := range block {
		block[r] = make([]float64, n)
	}

	for it := 0; it < p.Iters; it++ {
		w.Phase("produce-broadcast")
		if w.Rank == 0 {
			for i := 0; i < n; i++ {
				// Produce the row's data (sequential input is slow: the
				// calibrated rate reflects per-element I/O cost).
				w.Compute("seq.produce", float64(n))
				for j := 0; j < n; j++ {
					v := seqValue(i, j, n)
					body := make([]byte, seqElemBytes)
					binary.LittleEndian.PutUint32(body[0:], uint32(i))
					binary.LittleEndian.PutUint32(body[4:], uint32(j))
					binary.LittleEndian.PutUint64(body[8:], math.Float64bits(v))
					for dst := 1; dst < w.P; dst++ {
						w.Send(dst, seqTag, body)
					}
					if i >= lo && i < hi {
						block[i-lo][j] = v
					}
				}
			}
		} else {
			for count := 0; count < n*n; count++ {
				body := w.Recv(0, seqTag)
				i := int(binary.LittleEndian.Uint32(body[0:]))
				j := int(binary.LittleEndian.Uint32(body[4:]))
				v := math.Float64frombits(binary.LittleEndian.Uint64(body[8:]))
				if i >= lo && i < hi {
					block[i-lo][j] = v
				}
			}
		}
	}
	return block
}
