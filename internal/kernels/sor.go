package kernels

import "fxnet/internal/fx"

// sorOmega is the relaxation weight. The update is a weighted-Jacobi
// relaxation ("each element computes its next value as a function of its
// neighboring elements"): every element reads only previous-step values,
// which is what makes the block-row parallelization need exactly one
// boundary-row exchange per step — the paper's neighbor pattern.
const sorOmega = 0.9

// sorTagBase spaces per-iteration message tags.
const sorTagBase = 1000

// SOR runs the successive-overrelaxation kernel on worker w and returns
// the worker's owned rows after p.Iters steps (each row of length p.N,
// float32 as Fx REAL*4). Rows are block-distributed; the outermost ring
// of the global matrix is a fixed boundary.
func SOR(w *fx.Worker, p Params) [][]float32 {
	checkRank(w, "sor", 2)
	n := p.N
	lo, hi := fx.BlockRange(n, w.P, w.Rank)
	rows := hi - lo

	// Owned rows plus one halo row on each interior side.
	cur := make([][]float32, rows)
	next := make([][]float32, rows)
	for r := 0; r < rows; r++ {
		cur[r] = make([]float32, n)
		next[r] = make([]float32, n)
		for j := 0; j < n; j++ {
			cur[r][j] = float32(initValue(lo+r, j, n))
		}
	}
	haloUp := make([]float32, n)   // row lo-1, from rank-1
	haloDown := make([]float32, n) // row hi, from rank+1

	for it := 0; it < p.Iters; it++ {
		// Communication phase: exchange boundary rows with neighbors.
		tag := sorTagBase + it
		fromPrev, fromNext := w.NeighborExchange(tag,
			fx.EncodeFloat32s(cur[0]), fx.EncodeFloat32s(cur[rows-1]))
		if fromPrev != nil {
			copy(haloUp, fx.DecodeFloat32s(fromPrev))
		}
		if fromNext != nil {
			copy(haloDown, fx.DecodeFloat32s(fromNext))
		}

		// Local computation phase: relax interior points.
		updates := 0
		for r := 0; r < rows; r++ {
			gi := lo + r
			if gi == 0 || gi == n-1 {
				copy(next[r], cur[r]) // fixed boundary rows
				continue
			}
			up := haloUp
			if r > 0 {
				up = cur[r-1]
			}
			down := haloDown
			if r < rows-1 {
				down = cur[r+1]
			}
			row := cur[r]
			dst := next[r]
			dst[0], dst[n-1] = row[0], row[n-1]
			for j := 1; j < n-1; j++ {
				avg := 0.25 * (up[j] + down[j] + row[j-1] + row[j+1])
				dst[j] = (1-sorOmega)*row[j] + sorOmega*avg
				updates++
			}
		}
		w.Compute("sor.update", float64(updates))
		cur, next = next, cur
	}
	return cur
}

// SORSequential is the single-process reference: identical arithmetic in
// identical order, so the distributed result must match exactly.
func SORSequential(p Params) [][]float32 {
	n := p.N
	cur := make([][]float32, n)
	next := make([][]float32, n)
	for i := 0; i < n; i++ {
		cur[i] = make([]float32, n)
		next[i] = make([]float32, n)
		for j := 0; j < n; j++ {
			cur[i][j] = float32(initValue(i, j, n))
		}
	}
	for it := 0; it < p.Iters; it++ {
		for i := 0; i < n; i++ {
			if i == 0 || i == n-1 {
				copy(next[i], cur[i])
				continue
			}
			row := cur[i]
			dst := next[i]
			dst[0], dst[n-1] = row[0], row[n-1]
			for j := 1; j < n-1; j++ {
				avg := 0.25 * (cur[i-1][j] + cur[i+1][j] + row[j-1] + row[j+1])
				dst[j] = (1-sorOmega)*row[j] + sorOmega*avg
			}
		}
		cur, next = next, cur
	}
	return cur
}
