package kernels

import (
	"fmt"
	"math"
	"testing"

	"fxnet/internal/dsp"
	"fxnet/internal/ethernet"
	"fxnet/internal/fx"
	"fxnet/internal/netstack"
	"fxnet/internal/pvm"
	"fxnet/internal/sim"
)

// runTeam launches body on P workers over a simulated segment with a fast
// quiet cost model and runs to completion.
func runTeam(t *testing.T, P int, body func(w *fx.Worker)) {
	t.Helper()
	k := sim.New(1)
	seg := ethernet.NewSegment(k, 0)
	var hosts []*netstack.Host
	for i := 0; i < P; i++ {
		st := seg.Attach(fmt.Sprintf("h%d", i))
		hosts = append(hosts, netstack.NewHost(k, st, st.Name(), netstack.DefaultConfig()))
	}
	m := pvm.NewMachine(k, hosts, pvm.Config{})
	cost := fx.CostModel{DefaultRate: 1e12} // compute time negligible in tests
	team := fx.Launch(m, P, cost, "kern", body)
	k.Run()
	if !team.Done() {
		t.Fatal("team did not finish (deadlock?)")
	}
}

func TestRegistry(t *testing.T) {
	if len(All) != 5 {
		t.Fatalf("registry has %d kernels", len(All))
	}
	wantPatterns := map[string]fx.Pattern{
		"sor": fx.Neighbor, "2dfft": fx.AllToAll, "t2dfft": fx.Partition,
		"seq": fx.Broadcast, "hist": fx.Tree,
	}
	for name, pat := range wantPatterns {
		s, ok := Lookup(name)
		if !ok {
			t.Errorf("Lookup(%q) failed", name)
			continue
		}
		if s.Pattern != pat {
			t.Errorf("%s pattern = %v, want %v", name, s.Pattern, pat)
		}
		if s.P != 4 {
			t.Errorf("%s P = %d", name, s.P)
		}
		if s.Run == nil || len(s.Rates) == 0 {
			t.Errorf("%s spec incomplete", name)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup of unknown kernel succeeded")
	}
	if got := Names(); len(got) != 5 || got[0] != "sor" {
		t.Errorf("Names = %v", got)
	}
}

func TestInitValueRange(t *testing.T) {
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			v := initValue(i, j, 64)
			if v < 0 || v >= 1 {
				t.Fatalf("initValue(%d,%d) = %v out of [0,1)", i, j, v)
			}
		}
	}
}

func TestSORMatchesSequential(t *testing.T) {
	p := Params{N: 32, Iters: 10}
	want := SORSequential(p)
	const P = 4
	got := make([][][]float32, P)
	runTeam(t, P, func(w *fx.Worker) {
		got[w.Rank] = SOR(w, p)
	})
	for r := 0; r < P; r++ {
		lo, hi := fx.BlockRange(p.N, P, r)
		if len(got[r]) != hi-lo {
			t.Fatalf("rank %d returned %d rows", r, len(got[r]))
		}
		for i := lo; i < hi; i++ {
			for j := 0; j < p.N; j++ {
				if got[r][i-lo][j] != want[i][j] {
					t.Fatalf("SOR mismatch at (%d,%d): %v vs %v", i, j, got[r][i-lo][j], want[i][j])
				}
			}
		}
	}
}

func TestSORUnevenDistribution(t *testing.T) {
	p := Params{N: 30, Iters: 5} // 30 rows over 4 ranks: 8,8,7,7
	want := SORSequential(p)
	const P = 4
	got := make([][][]float32, P)
	runTeam(t, P, func(w *fx.Worker) { got[w.Rank] = SOR(w, p) })
	for r := 0; r < P; r++ {
		lo, hi := fx.BlockRange(p.N, P, r)
		for i := lo; i < hi; i++ {
			for j := 0; j < p.N; j++ {
				if got[r][i-lo][j] != want[i][j] {
					t.Fatalf("mismatch at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestSORConvergesTowardSmooth(t *testing.T) {
	// Relaxation must reduce the discrete Laplacian residual over time.
	resid := func(m [][]float32) float64 {
		n := len(m)
		var s float64
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				d := float64(m[i-1][j] + m[i+1][j] + m[i][j-1] + m[i][j+1] - 4*m[i][j])
				s += d * d
			}
		}
		return math.Sqrt(s)
	}
	before := SORSequential(Params{N: 32, Iters: 0})
	after := SORSequential(Params{N: 32, Iters: 50})
	if resid(after) >= resid(before) {
		t.Errorf("residual did not decrease: %v → %v", resid(before), resid(after))
	}
}

func TestFFT2DMatchesSequential(t *testing.T) {
	p := Params{N: 16, Iters: 2}
	want := FFT2DSequential(p)
	const P = 4
	got := make([][][]complex64, P)
	runTeam(t, P, func(w *fx.Worker) { got[w.Rank] = FFT2D(w, p) })
	for r := 0; r < P; r++ {
		clo, chi := fx.BlockRange(p.N, P, r)
		if len(got[r]) != chi-clo {
			t.Fatalf("rank %d returned %d cols", r, len(got[r]))
		}
		for c := clo; c < chi; c++ {
			for i := 0; i < p.N; i++ {
				if got[r][c-clo][i] != want[c][i] {
					t.Fatalf("2DFFT mismatch at col %d row %d: %v vs %v", c, i, got[r][c-clo][i], want[c][i])
				}
			}
		}
	}
}

func TestFFT2DSequentialAgainstDSP(t *testing.T) {
	// The complex64-rounded kernel result must agree with the full
	// double-precision 2D FFT to single precision.
	p := Params{N: 8, Iters: 1}
	cols := FFT2DSequential(p)
	n := p.N
	flat := make([]complex128, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			flat[i*n+j] = complex128(initComplex(i, j, n))
		}
	}
	want := dspFFT2D(flat, n)
	for c := 0; c < n; c++ {
		for i := 0; i < n; i++ {
			diff := complex128(cols[c][i]) - want[i*n+c]
			if mag := math.Hypot(real(diff), imag(diff)); mag > 1e-3*float64(n) {
				t.Fatalf("col %d row %d: error %g", c, i, mag)
			}
		}
	}
}

func TestT2DFFTMatchesSequential(t *testing.T) {
	p := Params{N: 16, Iters: 3}
	const P = 4
	got := make([][][]complex64, P)
	runTeam(t, P, func(w *fx.Worker) { got[w.Rank] = T2DFFT(w, p) })
	for r := 0; r < P/2; r++ {
		if got[r] != nil {
			t.Errorf("sender rank %d returned data", r)
		}
	}
	want := T2DFFTSequential(p, p.Iters-1)
	for r := P / 2; r < P; r++ {
		q := r - P/2
		clo, chi := fx.BlockRange(p.N, P/2, q)
		if len(got[r]) != chi-clo {
			t.Fatalf("receiver %d returned %d cols", r, len(got[r]))
		}
		for c := clo; c < chi; c++ {
			for i := 0; i < p.N; i++ {
				if got[r][c-clo][i] != want[c][i] {
					t.Fatalf("T2DFFT mismatch at col %d row %d", c, i)
				}
			}
		}
	}
}

func TestT2DFFTOddPPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for odd P")
		}
	}()
	w := &fx.Worker{Rank: 0, P: 3}
	T2DFFT(w, Params{N: 8, Iters: 1})
}

func TestSEQDistributesProducedData(t *testing.T) {
	p := Params{N: 16, Iters: 1}
	const P = 4
	got := make([][][]float64, P)
	runTeam(t, P, func(w *fx.Worker) { got[w.Rank] = SEQ(w, p) })
	for r := 0; r < P; r++ {
		lo, hi := fx.BlockRange(p.N, P, r)
		if len(got[r]) != hi-lo {
			t.Fatalf("rank %d block = %d rows", r, len(got[r]))
		}
		for i := lo; i < hi; i++ {
			for j := 0; j < p.N; j++ {
				if want := seqValue(i, j, p.N); got[r][i-lo][j] != want {
					t.Fatalf("SEQ mismatch at (%d,%d): %v vs %v", i, j, got[r][i-lo][j], want)
				}
			}
		}
	}
}

func TestHISTMatchesSequential(t *testing.T) {
	p := Params{N: 32, Iters: 3}
	want := HISTSequential(p)
	const P = 4
	got := make([][]int64, P)
	runTeam(t, P, func(w *fx.Worker) { got[w.Rank] = HIST(w, p) })
	var total int64
	for _, c := range want {
		total += c
	}
	if total != int64(p.N*p.N) {
		t.Fatalf("reference histogram sums to %d", total)
	}
	for r := 0; r < P; r++ {
		if len(got[r]) != HistBins {
			t.Fatalf("rank %d histogram has %d bins", r, len(got[r]))
		}
		for b := range want {
			if got[r][b] != want[b] {
				t.Fatalf("rank %d bin %d = %d, want %d", r, b, got[r][b], want[b])
			}
		}
	}
}

func TestHISTNonPowerOfTwoP(t *testing.T) {
	p := Params{N: 30, Iters: 2}
	want := HISTSequential(p)
	const P = 3
	got := make([][]int64, P)
	runTeam(t, P, func(w *fx.Worker) { got[w.Rank] = HIST(w, p) })
	for r := 0; r < P; r++ {
		for b := range want {
			if got[r][b] != want[b] {
				t.Fatalf("P=3 rank %d bin %d = %d, want %d", r, b, got[r][b], want[b])
			}
		}
	}
}

// dspFFT2D is a local helper calling the dsp reference without an import
// cycle concern (kernels already depends on dsp).
func dspFFT2D(m []complex128, n int) []complex128 {
	return fftRef(m, n)
}

// fftRef wraps dsp.FFT2D for the precision test.
func fftRef(m []complex128, n int) []complex128 {
	return dsp.FFT2D(m, n, n)
}
