package kernels

import (
	"fmt"
	"testing"

	"fxnet/internal/ethernet"
	"fxnet/internal/fx"
	"fxnet/internal/netstack"
	"fxnet/internal/pvm"
	"fxnet/internal/sim"
)

// benchKernel runs one small-scale kernel end to end (real computation,
// real messages, simulated wire) per iteration.
func benchKernel(b *testing.B, name string, p Params) {
	spec, ok := Lookup(name)
	if !ok {
		b.Fatal("unknown kernel")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := sim.New(1)
		seg := ethernet.NewSegment(k, 0)
		var hosts []*netstack.Host
		for j := 0; j < spec.P; j++ {
			st := seg.Attach(fmt.Sprintf("h%d", j))
			hosts = append(hosts, netstack.NewHost(k, st, st.Name(), netstack.DefaultConfig()))
		}
		m := pvm.NewMachine(k, hosts, pvm.Config{})
		fx.Launch(m, spec.P, fx.CostModel{DefaultRate: 1e12}, name, func(w *fx.Worker) {
			spec.Run(w, p)
		})
		k.Run()
	}
}

func BenchmarkSORSmall(b *testing.B)    { benchKernel(b, "sor", Params{N: 64, Iters: 10}) }
func BenchmarkFFT2DSmall(b *testing.B)  { benchKernel(b, "2dfft", Params{N: 64, Iters: 3}) }
func BenchmarkT2DFFTSmall(b *testing.B) { benchKernel(b, "t2dfft", Params{N: 64, Iters: 3}) }
func BenchmarkSEQSmall(b *testing.B)    { benchKernel(b, "seq", Params{N: 16, Iters: 1}) }
func BenchmarkHISTSmall(b *testing.B)   { benchKernel(b, "hist", Params{N: 64, Iters: 10}) }
