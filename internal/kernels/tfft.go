package kernels

import "fxnet/internal/fx"

const tfftTagBase = 200000

// initComplexT generates the m-th matrix of the T2DFFT pipeline's input
// stream.
func initComplexT(m, i, j, n int) complex64 {
	v := initComplex(i, j, n)
	scale := complex64(complex(1+0.01*float64(m%7), 0))
	return v * scale
}

// T2DFFT runs the pipelined, task-parallel 2D FFT: the first P/2 ranks
// perform row FFTs on a stream of matrices and ship the results to the
// second P/2 ranks, which perform the column FFTs. This is the paper's
// partition pattern.
//
// Unlike the other kernels, the message for each receiver is packed as a
// list of fragments (a few matrix rows per pack) with no intermediate
// copy loop, so PVM hands each fragment to the socket separately — the
// mechanism the paper identifies behind T2DFFT's smeared packet sizes and
// noisier spectra.
//
// Receivers return their owned columns of the final matrix; senders
// return nil.
func T2DFFT(w *fx.Worker, p Params) [][]complex64 {
	checkRank(w, "t2dfft", 2)
	if w.P%2 != 0 {
		panic("kernels: t2dfft requires even P")
	}
	n := p.N
	half := w.P / 2

	if w.Rank < half {
		// Sender: row FFTs, then partitioned sends.
		s := w.Rank
		rlo, rhi := fx.BlockRange(n, half, s)
		for m := 0; m < p.Iters; m++ {
			rows := make([][]complex64, rhi-rlo)
			for r := range rows {
				rows[r] = make([]complex64, n)
				for j := 0; j < n; j++ {
					rows[r][j] = initComplexT(m, rlo+r, j, n)
				}
			}
			for _, row := range rows {
				fftRow(row)
			}
			w.Compute("tfft.flop", float64(len(rows))*fftFlops(n))

			for q := 0; q < half; q++ {
				qlo, qhi := fx.BlockRange(n, half, q)
				recvCols := qhi - qlo
				// Fragment granularity: a few rows per pack, ~4 KB.
				rowsPerFrag := 4096 / (8 * recvCols)
				if rowsPerFrag < 1 {
					rowsPerFrag = 1
				}
				var frags [][]byte
				for r0 := 0; r0 < len(rows); r0 += rowsPerFrag {
					r1 := min(r0+rowsPerFrag, len(rows))
					block := make([]complex64, 0, (r1-r0)*recvCols)
					for r := r0; r < r1; r++ {
						block = append(block, rows[r][qlo:qhi]...)
					}
					frags = append(frags, fx.EncodeComplex64s(block))
				}
				w.SendFrags(half+q, tfftTagBase+m, frags)
			}
		}
		return nil
	}

	// Receiver: assemble columns, column FFTs.
	q := w.Rank - half
	clo, chi := fx.BlockRange(n, half, q)
	myCols := chi - clo
	var result [][]complex64
	for m := 0; m < p.Iters; m++ {
		cols := make([][]complex64, myCols)
		for c := range cols {
			cols[c] = make([]complex64, n)
		}
		w.Phase("partition-exchange")
		for s := 0; s < half; s++ {
			rlo, rhi := fx.BlockRange(n, half, s)
			block := fx.DecodeComplex64s(w.Recv(s, tfftTagBase+m))
			idx := 0
			for i := rlo; i < rhi; i++ {
				for c := 0; c < myCols; c++ {
					cols[c][i] = block[idx]
					idx++
				}
			}
		}
		for _, col := range cols {
			fftRow(col)
		}
		w.Compute("tfft.flop", float64(myCols)*fftFlops(n))
		result = cols
	}
	return result
}

// T2DFFTSequential computes the transform of the m-th pipeline matrix
// single-process with the same rounding discipline, returned as columns.
func T2DFFTSequential(p Params, m int) [][]complex64 {
	n := p.N
	rows := make([][]complex64, n)
	for i := range rows {
		rows[i] = make([]complex64, n)
		for j := 0; j < n; j++ {
			rows[i][j] = initComplexT(m, i, j, n)
		}
		fftRow(rows[i])
	}
	cols := make([][]complex64, n)
	for c := range cols {
		cols[c] = make([]complex64, n)
		for i := 0; i < n; i++ {
			cols[c][i] = rows[i][c]
		}
		fftRow(cols[c])
	}
	return cols
}
