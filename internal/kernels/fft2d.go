package kernels

import (
	"math"

	"fxnet/internal/dsp"
	"fxnet/internal/fx"
)

const fftTagBase = 100000

// fftFlops is the standard 5·N·log2(N) operation count for one length-N
// complex FFT.
func fftFlops(n int) float64 {
	return 5 * float64(n) * math.Log2(float64(n))
}

// fftRow transforms one row of complex64 data in place via the complex128
// FFT, rounding back to COMPLEX*8 as the Fx program stores it. The
// sequential references use the same helper, so results match exactly.
func fftRow(row []complex64) {
	tmp := make([]complex128, len(row))
	for i, v := range row {
		tmp[i] = complex128(v)
	}
	out := dsp.FFT(tmp)
	for i, v := range out {
		row[i] = complex64(v)
	}
}

// initComplex is the deterministic 2DFFT input.
func initComplex(i, j, n int) complex64 {
	return complex64(complex(initValue(i, j, n), initValue(j, i, n)-0.5))
}

// FFT2D runs the data-parallel two-dimensional FFT: local row FFTs, an
// all-to-all redistribution from block-rows to block-columns, then local
// column FFTs. It returns the worker's owned columns of the final
// iteration (each column of length p.N). This is the paper's all-to-all
// kernel: every rank sends an O((N/P)²)-element block to every other
// rank, every iteration.
func FFT2D(w *fx.Worker, p Params) [][]complex64 {
	checkRank(w, "2dfft", 2)
	n := p.N
	rlo, rhi := fx.BlockRange(n, w.P, w.Rank)
	clo, chi := rlo, rhi // column distribution mirrors the row distribution
	myCols := chi - clo

	var result [][]complex64
	for it := 0; it < p.Iters; it++ {
		// Fresh input each iteration (the kernel benchmark re-runs the
		// same transform; Fx's test harness does the same).
		rows := make([][]complex64, rhi-rlo)
		for r := range rows {
			rows[r] = make([]complex64, n)
			for j := 0; j < n; j++ {
				rows[r][j] = initComplex(rlo+r, j, n)
			}
		}

		// Phase 1: local FFT over each owned row.
		for _, row := range rows {
			fftRow(row)
		}
		w.Compute("fft.flop", float64(len(rows))*fftFlops(n))

		// Communication phase: all-to-all transpose. Part q carries, for
		// each owned row, the slice of columns rank q will own.
		parts := make([][]byte, w.P)
		for q := 0; q < w.P; q++ {
			qlo, qhi := fx.BlockRange(n, w.P, q)
			block := make([]complex64, 0, len(rows)*(qhi-qlo))
			for _, row := range rows {
				block = append(block, row[qlo:qhi]...)
			}
			parts[q] = fx.EncodeComplex64s(block)
		}
		got := w.AllToAll(fftTagBase+it*w.P, parts)

		// Assemble owned columns: cols[c][i] = element (row i, col clo+c).
		cols := make([][]complex64, myCols)
		for c := range cols {
			cols[c] = make([]complex64, n)
		}
		for q := 0; q < w.P; q++ {
			qlo, qhi := fx.BlockRange(n, w.P, q)
			block := fx.DecodeComplex64s(got[q])
			idx := 0
			for i := qlo; i < qhi; i++ {
				for c := 0; c < myCols; c++ {
					cols[c][i] = block[idx]
					idx++
				}
			}
		}

		// Phase 2: local FFT over each owned column.
		for _, col := range cols {
			fftRow(col)
		}
		w.Compute("fft.flop", float64(myCols)*fftFlops(n))
		result = cols
	}
	return result
}

// FFT2DSequential computes the same transform single-process, with the
// same complex64 rounding discipline, returning the full matrix as
// columns (result[c][i] = element (i, c)).
func FFT2DSequential(p Params) [][]complex64 {
	n := p.N
	rows := make([][]complex64, n)
	for i := range rows {
		rows[i] = make([]complex64, n)
		for j := 0; j < n; j++ {
			rows[i][j] = initComplex(i, j, n)
		}
	}
	for _, row := range rows {
		fftRow(row)
	}
	cols := make([][]complex64, n)
	for c := range cols {
		cols[c] = make([]complex64, n)
		for i := 0; i < n; i++ {
			cols[c][i] = rows[i][c]
		}
		fftRow(cols[c])
	}
	return cols
}
