package kernels

import "fxnet/internal/fx"

// HistBins is the histogram resolution. At 256 bins the reduced vector is
// a 2 KB message, large enough to split across a maximal TCP segment plus
// a remainder — keeping HIST's packet sizes trimodal as the paper
// reports.
const HistBins = 256

const histTagBase = 400000

// HIST computes the histogram of an N×N image distributed by block rows:
// a local histogram per processor, a log2(P)-step tree reduction onto
// processor 0 (odd multiples of 2^i send to even multiples), then a
// broadcast of the complete histogram to every processor — the paper's
// tree pattern.
//
// Every rank returns the complete histogram of the final iteration.
func HIST(w *fx.Worker, p Params) []int64 {
	checkRank(w, "hist", 2)
	n := p.N
	lo, hi := fx.BlockRange(n, w.P, w.Rank)

	// The image: REAL*4 pixels in [0, 1).
	pixels := make([][]float32, hi-lo)
	for r := range pixels {
		pixels[r] = make([]float32, n)
		for j := 0; j < n; j++ {
			pixels[r][j] = float32(initValue(lo+r, j, n))
		}
	}

	var final []int64
	for it := 0; it < p.Iters; it++ {
		// Local computation phase.
		local := make([]int64, HistBins)
		for _, row := range pixels {
			for _, v := range row {
				b := int(v * HistBins)
				if b >= HistBins {
					b = HistBins - 1
				}
				local[b]++
			}
		}
		w.Compute("hist.bin", float64((hi-lo)*n))

		// Tree reduction onto rank 0.
		reduced := w.Reduce(histTagBase+2*it, fx.EncodeInt64s(local),
			func(a, b []byte) []byte {
				av, bv := fx.DecodeInt64s(a), fx.DecodeInt64s(b)
				for i := range av {
					av[i] += bv[i]
				}
				return fx.EncodeInt64s(av)
			})

		// Broadcast the complete histogram back to everyone.
		final = fx.DecodeInt64s(w.Bcast(0, histTagBase+2*it+1, reduced))
	}
	return final
}

// HISTSequential is the single-process reference.
func HISTSequential(p Params) []int64 {
	n := p.N
	hist := make([]int64, HistBins)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := float32(initValue(i, j, n))
			b := int(v * HistBins)
			if b >= HistBins {
				b = HistBins - 1
			}
			hist[b]++
		}
	}
	return hist
}
