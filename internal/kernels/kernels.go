// Package kernels implements the five Fx test-suite kernels the paper
// measures — SOR, 2DFFT, T2DFFT, SEQ, and HIST — with real computation on
// distributed data: actual relaxation sweeps, actual FFTs, actual
// histograms. Message payloads are the real bytes of the arrays being
// exchanged, so packet sizes on the simulated wire are exact.
//
// Each kernel carries calibrated cost-model rates (operations per virtual
// second) chosen once so that the burst periods and bandwidths land in
// the regime of the paper's 1998 testbed; EXPERIMENTS.md documents the
// calibration. The computation itself is verified against sequential
// references in the package tests.
package kernels

import (
	"fmt"
	"math"

	"fxnet/internal/fx"
	"fxnet/internal/qos"
)

// Params are the common kernel parameters.
type Params struct {
	// N is the matrix dimension (kernels operate on N×N data).
	N int
	// Iters is the outer iteration count (the paper uses 100; 5 for SEQ).
	Iters int
}

// Spec describes one kernel for the experiment harness.
type Spec struct {
	Name    string
	Pattern fx.Pattern
	// P is the paper's processor count for this kernel.
	P int
	// Params are the paper-scale defaults.
	Params Params
	// Rates are the calibrated cost-model rates.
	Rates map[string]float64
	// UseFragments marks kernels that pack messages as fragment lists.
	UseFragments bool
	// Run executes the kernel body on one worker.
	Run func(w *fx.Worker, p Params)
	// RepresentativeConn designates the (src, dst) host pair the paper
	// plots for this kernel, or (-1, -1) when the pattern has no
	// representative connection (SEQ, HIST).
	RepresentativeConn [2]int
	// QoS builds the §7.3 [l(), b(), c] characterization at the given
	// problem size, from the same calibrated rates the cost model uses.
	// Degraded-team renegotiation feeds it back to qos.Network.Negotiate
	// to pick the post-fault processor count.
	QoS func(p Params) qos.Program
}

// All lists the five kernels with paper-scale defaults.
var All = []Spec{
	{
		Name:    "sor",
		Pattern: fx.Neighbor,
		P:       4,
		Params:  Params{N: 512, Iters: 100},
		Rates:   map[string]float64{"sor.update": 38500},
		Run:     func(w *fx.Worker, p Params) { SOR(w, p) },
		// The paper picks an arbitrary adjacent pair.
		RepresentativeConn: [2]int{1, 0},
		QoS: func(p Params) qos.Program {
			n := float64(p.N)
			return qos.Program{
				Name:    "sor",
				Local:   func(P int) float64 { return n * (n - 2) / float64(P) / 38500 },
				Burst:   qos.SurfaceBurst(n * 4), // one float32 halo row
				Pattern: fx.Neighbor,
			}
		},
	},
	{
		Name:               "2dfft",
		Pattern:            fx.AllToAll,
		P:                  4,
		Params:             Params{N: 512, Iters: 100},
		Rates:              map[string]float64{"fft.flop": 8.4e6},
		Run:                func(w *fx.Worker, p Params) { FFT2D(w, p) },
		RepresentativeConn: [2]int{1, 0},
		QoS: func(p Params) qos.Program {
			n := float64(p.N)
			return qos.Program{
				Name: "2dfft",
				// Two batches of n row/column FFTs per iteration.
				Local:   func(P int) float64 { return 2 * n * fftFlops(p.N) / float64(P) / 8.4e6 },
				Burst:   qos.BlockBurst(n * n * 8), // complex transpose blocks
				Pattern: fx.AllToAll,
			}
		},
	},
	{
		Name:         "t2dfft",
		Pattern:      fx.Partition,
		P:            4,
		Params:       Params{N: 512, Iters: 100},
		Rates:        map[string]float64{"tfft.flop": 2.5e6},
		UseFragments: true,
		Run:          func(w *fx.Worker, p Params) { T2DFFT(w, p) },
		// A sender-half to receiver-half pair.
		RepresentativeConn: [2]int{0, 2},
		QoS: func(p Params) qos.Program {
			n := float64(p.N)
			return qos.Program{
				Name: "t2dfft",
				// Each half pipelines one batch of n FFTs split across P/2.
				// Odd P is infeasible (the kernel needs two equal halves);
				// an infinite local time steers Negotiate to even P.
				Local: func(P int) float64 {
					if P%2 != 0 {
						return math.Inf(1)
					}
					return n * fftFlops(p.N) / float64(P/2) / 2.5e6
				},
				// Sender-half block to one receiver: (n/half)² complex64s.
				Burst: func(P int) float64 {
					half := max(P/2, 1)
					return n * n * 8 / float64(half*half)
				},
				Pattern: fx.Partition,
			}
		},
	},
	{
		Name:               "seq",
		Pattern:            fx.Broadcast,
		P:                  4,
		Params:             Params{N: 40, Iters: 5},
		Rates:              map[string]float64{"seq.produce": 160},
		Run:                func(w *fx.Worker, p Params) { SEQ(w, p) },
		RepresentativeConn: [2]int{-1, -1},
		QoS: func(p Params) qos.Program {
			n := float64(p.N)
			return qos.Program{
				Name: "seq",
				// Serial producer: one row of input per phase, P-independent.
				Local:   func(P int) float64 { return n / 160 },
				Burst:   qos.SurfaceBurst(n * seqElemBytes), // one row per peer
				Pattern: fx.Broadcast,
			}
		},
	},
	{
		Name:               "hist",
		Pattern:            fx.Tree,
		P:                  4,
		Params:             Params{N: 512, Iters: 100},
		Rates:              map[string]float64{"hist.bin": 364000},
		Run:                func(w *fx.Worker, p Params) { HIST(w, p) },
		RepresentativeConn: [2]int{-1, -1},
		QoS: func(p Params) qos.Program {
			n := float64(p.N)
			return qos.Program{
				Name:    "hist",
				Local:   func(P int) float64 { return n * n / float64(P) / 364000 },
				Burst:   qos.SurfaceBurst(256 * 8), // one bin array per hop
				Pattern: fx.Tree,
			}
		},
	},
}

// Lookup finds a kernel spec by name.
func Lookup(name string) (Spec, bool) {
	for _, s := range All {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names returns the kernel names in registry order.
func Names() []string {
	out := make([]string, len(All))
	for i, s := range All {
		out[i] = s.Name
	}
	return out
}

// initValue is the deterministic data generator shared by the kernels and
// their sequential references: a smooth, mildly oscillatory field in
// [0, 1).
func initValue(i, j, n int) float64 {
	x := float64(i) / float64(n)
	y := float64(j) / float64(n)
	v := 0.5 + 0.25*math.Sin(7*math.Pi*x)*math.Cos(5*math.Pi*y) + 0.2*x*y
	if v < 0 {
		v = 0
	}
	if v >= 1 {
		v = math.Nextafter(1, 0)
	}
	return v
}

// checkRank panics when a kernel is launched with an unusable rank/P
// combination.
func checkRank(w *fx.Worker, kernel string, minP int) {
	if w.P < minP {
		panic(fmt.Sprintf("kernels: %s requires P ≥ %d, got %d", kernel, minP, w.P))
	}
}
