package fx

import (
	"encoding/binary"
	"math"
)

// The encode helpers serialize the numeric array slices the kernels ship
// between processes. Fx programs declare REAL*4 (float32) and COMPLEX*8
// (complex64) data; AIRSHED's concentration array is REAL*8 (float64).
// Everything is little-endian.

// EncodeFloat32s packs xs into a fresh byte slice.
func EncodeFloat32s(xs []float32) []byte {
	out := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(x))
	}
	return out
}

// DecodeFloat32s unpacks a slice written by EncodeFloat32s.
func DecodeFloat32s(b []byte) []float32 {
	if len(b)%4 != 0 {
		panic("fx: DecodeFloat32s length not a multiple of 4")
	}
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// EncodeFloat64s packs xs into a fresh byte slice.
func EncodeFloat64s(xs []float64) []byte {
	out := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

// DecodeFloat64s unpacks a slice written by EncodeFloat64s.
func DecodeFloat64s(b []byte) []float64 {
	if len(b)%8 != 0 {
		panic("fx: DecodeFloat64s length not a multiple of 8")
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// EncodeComplex64s packs xs (real, imag float32 pairs).
func EncodeComplex64s(xs []complex64) []byte {
	out := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(out[8*i:], math.Float32bits(real(x)))
		binary.LittleEndian.PutUint32(out[8*i+4:], math.Float32bits(imag(x)))
	}
	return out
}

// DecodeComplex64s unpacks a slice written by EncodeComplex64s.
func DecodeComplex64s(b []byte) []complex64 {
	if len(b)%8 != 0 {
		panic("fx: DecodeComplex64s length not a multiple of 8")
	}
	out := make([]complex64, len(b)/8)
	for i := range out {
		re := math.Float32frombits(binary.LittleEndian.Uint32(b[8*i:]))
		im := math.Float32frombits(binary.LittleEndian.Uint32(b[8*i+4:]))
		out[i] = complex(re, im)
	}
	return out
}

// EncodeInt64s packs xs.
func EncodeInt64s(xs []int64) []byte {
	out := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(out[8*i:], uint64(x))
	}
	return out
}

// DecodeInt64s unpacks a slice written by EncodeInt64s.
func DecodeInt64s(b []byte) []int64 {
	if len(b)%8 != 0 {
		panic("fx: DecodeInt64s length not a multiple of 8")
	}
	out := make([]int64, len(b)/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
