package fx

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"fxnet/internal/ethernet"
	"fxnet/internal/netstack"
	"fxnet/internal/pvm"
	"fxnet/internal/sim"
)

func launchTeam(t *testing.T, seed int64, p int, cost CostModel, body func(w *Worker)) (*sim.Kernel, *Team) {
	t.Helper()
	k := sim.New(seed)
	seg := ethernet.NewSegment(k, 0)
	var hosts []*netstack.Host
	for i := 0; i < p; i++ {
		st := seg.Attach(fmt.Sprintf("h%d", i))
		hosts = append(hosts, netstack.NewHost(k, st, st.Name(), netstack.DefaultConfig()))
	}
	m := pvm.NewMachine(k, hosts, pvm.Config{})
	team := Launch(m, p, cost, "test", body)
	return k, team
}

func quietCost() CostModel {
	return CostModel{DefaultRate: 1e6, DeschedProb: 0, JitterFrac: 0}
}

func TestPatternConnections(t *testing.T) {
	cases := []struct {
		p    Pattern
		P    int
		want int
	}{
		{Neighbor, 4, 6}, {AllToAll, 4, 12}, {Partition, 4, 4},
		{Broadcast, 4, 3}, {Tree, 4, 6},
		{Neighbor, 8, 14}, {AllToAll, 8, 56}, {Partition, 8, 16},
		{AllToAll, 1, 0},
	}
	for _, c := range cases {
		if got := c.p.Connections(c.P); got != c.want {
			t.Errorf("%v.Connections(%d) = %d, want %d", c.p, c.P, got, c.want)
		}
	}
}

func TestPatternString(t *testing.T) {
	for p, want := range map[Pattern]string{
		Neighbor: "neighbor", AllToAll: "all-to-all", Partition: "partition",
		Broadcast: "broadcast", Tree: "tree",
	} {
		if p.String() != want {
			t.Errorf("String = %q, want %q", p.String(), want)
		}
	}
}

func TestBlockRange(t *testing.T) {
	// Even split.
	for r := 0; r < 4; r++ {
		lo, hi := BlockRange(512, 4, r)
		if lo != r*128 || hi != (r+1)*128 {
			t.Errorf("rank %d: [%d,%d)", r, lo, hi)
		}
	}
	// Remainder goes to the first ranks.
	sizes := []int{3, 3, 2, 2}
	covered := 0
	for r := 0; r < 4; r++ {
		lo, hi := BlockRange(10, 4, r)
		if hi-lo != sizes[r] {
			t.Errorf("rank %d owns %d items, want %d", r, hi-lo, sizes[r])
		}
		if lo != covered {
			t.Errorf("rank %d starts at %d, want %d", r, lo, covered)
		}
		covered = hi
	}
	if covered != 10 {
		t.Errorf("coverage = %d", covered)
	}
	for i := 0; i < 10; i++ {
		r := BlockOwner(10, 4, i)
		lo, hi := BlockRange(10, 4, r)
		if i < lo || i >= hi {
			t.Errorf("BlockOwner(%d) = %d out of its own range", i, r)
		}
	}
}

func TestNeighborExchange(t *testing.T) {
	const P = 4
	results := make([][2][]byte, P)
	k, _ := launchTeam(t, 1, P, quietCost(), func(w *Worker) {
		me := []byte{byte(w.Rank)}
		up, down := w.NeighborExchange(1, me, me)
		results[w.Rank] = [2][]byte{up, down}
	})
	k.Run()
	for r := 0; r < P; r++ {
		up, down := results[r][0], results[r][1]
		if r == 0 && up != nil {
			t.Error("rank 0 received from nonexistent prev")
		}
		if r > 0 && (up == nil || int(up[0]) != r-1) {
			t.Errorf("rank %d fromPrev = %v", r, up)
		}
		if r == P-1 && down != nil {
			t.Error("last rank received from nonexistent next")
		}
		if r < P-1 && (down == nil || int(down[0]) != r+1) {
			t.Errorf("rank %d fromNext = %v", r, down)
		}
	}
}

func TestAllToAll(t *testing.T) {
	const P = 4
	results := make([][][]byte, P)
	k, _ := launchTeam(t, 1, P, quietCost(), func(w *Worker) {
		parts := make([][]byte, P)
		for i := range parts {
			parts[i] = []byte{byte(w.Rank), byte(i)}
		}
		results[w.Rank] = w.AllToAll(10, parts)
	})
	k.Run()
	for r := 0; r < P; r++ {
		for i := 0; i < P; i++ {
			got := results[r][i]
			// Slot i must hold what rank i addressed to rank r.
			if len(got) != 2 || int(got[0]) != i || int(got[1]) != r {
				t.Errorf("rank %d slot %d = %v", r, i, got)
			}
		}
	}
}

func TestBcast(t *testing.T) {
	const P = 4
	results := make([][]byte, P)
	k, _ := launchTeam(t, 1, P, quietCost(), func(w *Worker) {
		var data []byte
		if w.Rank == 2 {
			data = []byte("hello")
		}
		results[w.Rank] = w.Bcast(2, 5, data)
	})
	k.Run()
	for r := 0; r < P; r++ {
		if string(results[r]) != "hello" {
			t.Errorf("rank %d got %q", r, results[r])
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, P := range []int{1, 2, 4, 8, 5} { // include non-power-of-two
		P := P
		var got []byte
		k, _ := launchTeam(t, 1, P, quietCost(), func(w *Worker) {
			data := []byte{byte(w.Rank + 1)}
			res := w.Reduce(3, data, func(a, b []byte) []byte {
				return []byte{a[0] + b[0]}
			})
			if w.Rank == 0 {
				got = res
			} else if res != nil {
				t.Errorf("P=%d rank %d returned non-nil", P, w.Rank)
			}
		})
		k.Run()
		want := byte(P * (P + 1) / 2)
		if len(got) != 1 || got[0] != want {
			t.Errorf("P=%d: reduce = %v, want %d", P, got, want)
		}
	}
}

func TestTreeBcast(t *testing.T) {
	for _, P := range []int{1, 2, 4, 8, 6} {
		P := P
		results := make([][]byte, P)
		k, _ := launchTeam(t, 1, P, quietCost(), func(w *Worker) {
			var data []byte
			if w.Rank == 0 {
				data = []byte{42}
			}
			results[w.Rank] = w.TreeBcast(4, data)
		})
		k.Run()
		for r := 0; r < P; r++ {
			if len(results[r]) != 1 || results[r][0] != 42 {
				t.Errorf("P=%d rank %d = %v", P, r, results[r])
			}
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const P = 4
	var maxBefore, minAfter sim.Time
	minAfter = sim.Time(1 << 62)
	k, _ := launchTeam(t, 1, P, quietCost(), func(w *Worker) {
		// Stagger arrival: rank r works r×10 ms.
		w.Idle(sim.Duration(w.Rank) * 10 * sim.Millisecond)
		if now := w.Now(); now > maxBefore {
			maxBefore = now
		}
		w.Barrier()
		if now := w.Now(); now < minAfter {
			minAfter = now
		}
	})
	k.Run()
	if minAfter < maxBefore {
		t.Errorf("a rank left the barrier at %v before the last arrived at %v", minAfter, maxBefore)
	}
}

func TestBarrierRepeats(t *testing.T) {
	const P = 4
	counts := make([]int, P)
	k, _ := launchTeam(t, 1, P, quietCost(), func(w *Worker) {
		for i := 0; i < 5; i++ {
			w.Barrier()
			counts[w.Rank]++
		}
	})
	k.Run()
	for r, c := range counts {
		if c != 5 {
			t.Errorf("rank %d completed %d barriers", r, c)
		}
	}
}

func TestComputeAdvancesTime(t *testing.T) {
	var elapsed sim.Time
	k, _ := launchTeam(t, 1, 1, CostModel{DefaultRate: 1e6}, func(w *Worker) {
		w.Compute("any", 2e6) // 2 s at 1e6 ops/s
		elapsed = w.Now()
	})
	k.Run()
	if elapsed < sim.Time(1900*sim.Millisecond) || elapsed > sim.Time(2200*sim.Millisecond) {
		t.Errorf("elapsed = %v, want ≈2 s", elapsed)
	}
}

func TestComputeClassRates(t *testing.T) {
	cost := CostModel{DefaultRate: 1e6}.WithRate("fast", 1e9)
	var tFast, tSlow sim.Duration
	k, _ := launchTeam(t, 1, 1, cost, func(w *Worker) {
		start := w.Now()
		w.Compute("fast", 1e6)
		tFast = w.Now().Sub(start)
		start = w.Now()
		w.Compute("slow-unknown", 1e6)
		tSlow = w.Now().Sub(start)
	})
	k.Run()
	if tFast >= tSlow {
		t.Errorf("fast class %v not faster than default %v", tFast, tSlow)
	}
}

func TestDeschedulingInjection(t *testing.T) {
	cost := CostModel{DefaultRate: 1e6, DeschedProb: 1.0, DeschedMean: 100 * sim.Millisecond}
	var w0 *Worker
	k, _ := launchTeam(t, 1, 1, cost, func(w *Worker) {
		w0 = w
		for i := 0; i < 10; i++ {
			w.Compute("x", 1000)
		}
	})
	k.Run()
	if w0.Descheds != 10 {
		t.Errorf("descheds = %d, want 10", w0.Descheds)
	}
	// 10 ms of work + ~10 × 100 ms of stalls.
	if w0.ComputeTime < 200*sim.Millisecond {
		t.Errorf("compute time = %v implausibly small", w0.ComputeTime)
	}
}

func TestComputeZeroOpsNoTime(t *testing.T) {
	var elapsed sim.Time
	k, _ := launchTeam(t, 1, 1, quietCost(), func(w *Worker) {
		w.Compute("x", 0)
		elapsed = w.Now()
	})
	k.Run()
	if elapsed != 0 {
		t.Errorf("elapsed = %v", elapsed)
	}
}

func TestLaunchTooManyWorkersPanics(t *testing.T) {
	k := sim.New(1)
	seg := ethernet.NewSegment(k, 0)
	h := netstack.NewHost(k, seg.Attach("only"), "only", netstack.DefaultConfig())
	m := pvm.NewMachine(k, []*netstack.Host{h}, pvm.Config{})
	defer func() {
		if recover() == nil {
			t.Error("no panic launching P=2 on 1 host")
		}
	}()
	Launch(m, 2, quietCost(), "x", func(w *Worker) {})
}

func TestEncodeRoundtrips(t *testing.T) {
	f32 := []float32{1.5, -2.25, 0, 3e30}
	if got := DecodeFloat32s(EncodeFloat32s(f32)); len(got) != 4 || got[1] != -2.25 || got[3] != 3e30 {
		t.Errorf("float32 roundtrip = %v", got)
	}
	f64 := []float64{1.5, -2.25, 1e300}
	if got := DecodeFloat64s(EncodeFloat64s(f64)); len(got) != 3 || got[2] != 1e300 {
		t.Errorf("float64 roundtrip = %v", got)
	}
	c64 := []complex64{complex(1, -2), complex(0.5, 3)}
	if got := DecodeComplex64s(EncodeComplex64s(c64)); len(got) != 2 || got[0] != complex(1, -2) {
		t.Errorf("complex64 roundtrip = %v", got)
	}
	i64 := []int64{-5, 0, 1 << 40}
	if got := DecodeInt64s(EncodeInt64s(i64)); len(got) != 3 || got[0] != -5 || got[2] != 1<<40 {
		t.Errorf("int64 roundtrip = %v", got)
	}
}

func TestDecodeBadLengthPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"f32": func() { DecodeFloat32s(make([]byte, 3)) },
		"f64": func() { DecodeFloat64s(make([]byte, 7)) },
		"c64": func() { DecodeComplex64s(make([]byte, 7)) },
		"i64": func() { DecodeInt64s(make([]byte, 7)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic on bad length", name)
				}
			}()
			fn()
		}()
	}
}

func TestTeamDone(t *testing.T) {
	k, team := launchTeam(t, 1, 4, quietCost(), func(w *Worker) {
		w.Barrier()
	})
	if team.Done() {
		t.Error("Done before run")
	}
	k.Run()
	if !team.Done() {
		t.Error("not Done after run")
	}
}

func TestQuickBlockRangePartition(t *testing.T) {
	// Property: BlockRange partitions [0, n) exactly — contiguous,
	// disjoint, covering, with sizes differing by at most one.
	f := func(rawN, rawP uint8) bool {
		n := int(rawN)
		P := int(rawP)%16 + 1
		covered := 0
		minSize, maxSize := 1<<30, 0
		for r := 0; r < P; r++ {
			lo, hi := BlockRange(n, P, r)
			if lo != covered || hi < lo {
				return false
			}
			covered = hi
			if sz := hi - lo; sz < minSize {
				minSize = sz
			} else if sz > maxSize {
				maxSize = sz
			}
			_ = maxSize
		}
		if covered != n {
			return false
		}
		// Sizes differ by at most 1.
		var sizes []int
		for r := 0; r < P; r++ {
			lo, hi := BlockRange(n, P, r)
			sizes = append(sizes, hi-lo)
		}
		mn, mx := sizes[0], sizes[0]
		for _, s := range sizes {
			if s < mn {
				mn = s
			}
			if s > mx {
				mx = s
			}
		}
		return mx-mn <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAllToAllDeliversEverything(t *testing.T) {
	// Property: for random part contents, AllToAll delivers rank i's
	// part for rank j to rank j, intact, for all (i, j).
	f := func(seed int64) bool {
		const P = 4
		rng := rand.New(rand.NewSource(seed))
		// Pre-generate the payload matrix parts[i][j].
		parts := make([][][]byte, P)
		for i := range parts {
			parts[i] = make([][]byte, P)
			for j := range parts[i] {
				b := make([]byte, 1+rng.Intn(300))
				rng.Read(b)
				parts[i][j] = b
			}
		}
		results := make([][][]byte, P)
		k := sim.New(seed)
		seg := ethernet.NewSegment(k, 0)
		var hosts []*netstack.Host
		for i := 0; i < P; i++ {
			st := seg.Attach(fmt.Sprintf("h%d", i))
			hosts = append(hosts, netstack.NewHost(k, st, st.Name(), netstack.DefaultConfig()))
		}
		m := pvm.NewMachine(k, hosts, pvm.Config{})
		team := Launch(m, P, CostModel{DefaultRate: 1e12}, "prop", func(w *Worker) {
			results[w.Rank] = w.AllToAll(50, parts[w.Rank])
		})
		k.Run()
		if !team.Done() {
			return false
		}
		for j := 0; j < P; j++ {
			for i := 0; i < P; i++ {
				if !bytes.Equal(results[j][i], parts[i][j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
