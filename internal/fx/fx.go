// Package fx models the Fx parallelizing compiler's run-time system: SPMD
// programs whose P processes interleave local computation phases with
// compiled global communication phases over PVM direct-route connections.
//
// The five communication patterns of the paper's figure 1 — neighbor,
// all-to-all (shift schedule), partition, broadcast, and tree — are
// provided as collective operations. Compute phases advance virtual time
// through a calibrated cost model that also injects the occasional OS
// "deschedule" stall the paper observed merging 2DFFT's bursts.
package fx

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"fxnet/internal/pvm"
	"fxnet/internal/sim"
)

// ErrTeamAborted poisons the surviving ranks of a team once one rank has
// failed: their pending sends and receives return it, so every survivor
// unwinds with its own RunError instead of blocking on a rank that will
// never speak again.
var ErrTeamAborted = errors.New("fx: team aborted")

// RunError reports one rank's failure: which program, which rank, which
// communication or compute phase it was in, and the underlying cause
// (typically pvm.ErrPeerDead or ErrTeamAborted).
type RunError struct {
	Program string
	Rank    int
	Phase   string
	Err     error
}

func (e *RunError) Error() string {
	return fmt.Sprintf("fx: %s rank %d failed in phase %q: %v", e.Program, e.Rank, e.Phase, e.Err)
}

func (e *RunError) Unwrap() error { return e.Err }

// abortPanic unwinds a failed worker's goroutine from the point of
// failure back to the Launch wrapper, which records the RunError.
type abortPanic struct{ err *RunError }

// Pattern identifies one of the paper's global communication patterns.
type Pattern int

// The figure 1 patterns.
const (
	Neighbor Pattern = iota
	AllToAll
	Partition
	Broadcast
	Tree
)

func (p Pattern) String() string {
	switch p {
	case Neighbor:
		return "neighbor"
	case AllToAll:
		return "all-to-all"
	case Partition:
		return "partition"
	case Broadcast:
		return "broadcast"
	case Tree:
		return "tree"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// Connections reports the number of simplex connections the pattern uses
// on P processors — the §7.1 comparison: neighbor uses at most 2P,
// all-to-all P(P−1), an equal two-set partition P²/4, broadcast P−1, and
// a tree P−1 up-edges plus P−1 release edges.
func (p Pattern) Connections(P int) int {
	if P < 2 {
		return 0
	}
	switch p {
	case Neighbor:
		return 2 * (P - 1) // chain: interior procs talk to both sides
	case AllToAll:
		return P * (P - 1)
	case Partition:
		return (P / 2) * (P - P/2)
	case Broadcast:
		return P - 1
	case Tree:
		return 2 * (P - 1)
	default:
		return 0
	}
}

// CostModel converts a kernel's abstract operation counts into virtual
// compute time. Rates are in operations per virtual second; the class
// names let each kernel calibrate independently (documented per kernel in
// EXPERIMENTS.md). DeschedProb injects, per compute phase, an OS
// descheduling stall with mean DeschedMean — the effect the paper blames
// for 2DFFT's occasionally merged communication bursts.
type CostModel struct {
	DefaultRate float64
	Rates       map[string]float64
	DeschedProb float64
	DeschedMean sim.Duration
	JitterFrac  float64
}

// DefaultCostModel approximates a 133 MHz Alpha 21064 running
// memory-bound dense-matrix code.
func DefaultCostModel() CostModel {
	return CostModel{
		DefaultRate: 2e6,
		DeschedProb: 0.01,
		DeschedMean: 150 * sim.Millisecond,
		JitterFrac:  0.01,
	}
}

// Rate returns the operations-per-second rate for a class.
func (c CostModel) Rate(class string) float64 {
	if r, ok := c.Rates[class]; ok && r > 0 {
		return r
	}
	if c.DefaultRate > 0 {
		return c.DefaultRate
	}
	return 2e6
}

// WithRate returns a copy of the model with one class rate overridden.
func (c CostModel) WithRate(class string, rate float64) CostModel {
	m := make(map[string]float64, len(c.Rates)+1)
	for k, v := range c.Rates {
		m[k] = v
	}
	m[class] = rate
	c.Rates = m
	return c
}

// Worker is one SPMD process: rank r of P, bound to a PVM task.
type Worker struct {
	Rank, P int
	task    *pvm.Task
	team    *Team
	cost    CostModel
	rng     *rand.Rand
	hostIdx int

	// UseFragments selects the fragment-list send path (T2DFFT) instead
	// of the copy-loop path for this worker's Send calls.
	UseFragments bool
	// CoalesceFragments forces even explicit SendFrags calls through the
	// copy-loop path — the packing ablation's control arm.
	CoalesceFragments bool

	barrierGen   int
	phase        string
	pendingStall sim.Duration

	// ComputeTime accumulates virtual time spent in compute phases.
	ComputeTime sim.Duration
	// Descheds counts injected OS stalls.
	Descheds int
}

// Team is a launched SPMD program instance.
type Team struct {
	Workers []*Worker
	Name    string
	baseTID int
	hosts   []int // rank → machine host index
	gen     int   // 0 for the original team, +1 per degrade re-form
	// done counts workers that returned successfully. Atomic because in
	// partitioned runs workers on different segment kernels increment it
	// concurrently; it is only read after the simulation completes.
	done    atomic.Int32
	aborted bool
	errs    []*RunError
	next    *Team
}

// Done reports whether every worker has returned successfully.
func (t *Team) Done() bool { return int(t.done.Load()) == len(t.Workers) }

// Failed reports whether any worker has aborted.
func (t *Team) Failed() bool { return t.aborted }

// Err returns the first rank failure, nil if none.
func (t *Team) Err() *RunError {
	if len(t.errs) == 0 {
		return nil
	}
	return t.errs[0]
}

// Errs returns every rank failure in the order they unwound.
func (t *Team) Errs() []*RunError { return t.errs }

// Finished reports whether every worker process has stopped running —
// by returning, aborting with a RunError, or being killed in a crash.
func (t *Team) Finished() bool {
	for _, w := range t.Workers {
		if w.task == nil || !w.task.Proc().Done() {
			return false
		}
	}
	return true
}

// Next returns the degraded successor team formed after a host death
// (nil if none). Final follows the chain to the team currently running.
func (t *Team) Next() *Team { return t.next }

// Final returns the last team in the degrade chain (t itself if no
// re-form has happened).
func (t *Team) Final() *Team {
	cur := t
	for cur.next != nil {
		cur = cur.next
	}
	return cur
}

// Hosts returns the machine host index each rank runs on.
func (t *Team) Hosts() []int { return append([]int(nil), t.hosts...) }

// Generation reports how many times the team has re-formed (0 = original).
func (t *Team) Generation() int { return t.gen }

// StallHost injects a compute stall of duration d into every worker of
// the team running on machine host hostIndex — the ComputeStall fault.
func (t *Team) StallHost(hostIndex int, d sim.Duration) {
	for _, w := range t.Workers {
		if w.hostIdx == hostIndex {
			w.InjectStall(d)
		}
	}
}

// fail records one rank's failure and, on the first one, poisons every
// teammate's task so the whole team unwinds instead of deadlocking.
func (t *Team) fail(re *RunError) {
	t.errs = append(t.errs, re)
	if t.aborted {
		return
	}
	t.aborted = true
	for _, w := range t.Workers {
		if w.task != nil {
			w.task.Cancel(ErrTeamAborted)
		}
	}
}

// Opts configures a team launch beyond the basic Launch parameters.
type Opts struct {
	P    int
	Cost CostModel
	Name string
	// Hosts maps rank → machine host index; nil means the identity
	// mapping 0..P−1 (the paper's one-task-per-machine layout).
	Hosts []int
	// Degrade re-forms the team on the surviving hosts when a host is
	// marked dead, instead of leaving the program aborted: the paper's
	// §7.3 QoS negotiation run in reverse.
	Degrade bool
	// Renegotiate picks the degraded team size given the number of
	// surviving hosts (e.g. qos.Network.Negotiate); nil uses every
	// survivor. Results outside [1, maxP] are clamped.
	Renegotiate func(maxP int) int
	// OnReform is called (in event context) each time a degraded team
	// launches.
	OnReform func(prev, next *Team, deadHost int)
}

// Launch starts an SPMD program with P workers on machine m, worker r on
// host r. body is the compiled program each process executes. The team's
// workers share the cost model but draw independent jitter streams.
func Launch(m *pvm.Machine, P int, cost CostModel, name string, body func(w *Worker)) *Team {
	return LaunchOpts(m, Opts{P: P, Cost: cost, Name: name}, body)
}

// LaunchOpts is Launch with full control over host placement and
// degraded re-launch behaviour.
func LaunchOpts(m *pvm.Machine, opts Opts, body func(w *Worker)) *Team {
	team := spawnTeam(m, opts, body)
	if opts.Degrade {
		current := team
		m.NotifyHostDead(func(dead int) {
			if current.Done() {
				return // program already finished; nothing to re-form
			}
			uses := false
			for _, hi := range current.hosts {
				if hi == dead {
					uses = true
					break
				}
			}
			if !uses {
				return
			}
			var survivors []int
			for _, hi := range current.hosts {
				if !m.HostDead(hi) {
					survivors = append(survivors, hi)
				}
			}
			if len(survivors) == 0 {
				return // total loss: the chain ends aborted
			}
			newP := len(survivors)
			if opts.Renegotiate != nil {
				if p := opts.Renegotiate(newP); p >= 1 && p <= newP {
					newP = p
				}
			}
			nopts := opts
			nopts.P = newP
			nopts.Hosts = survivors[:newP]
			next := spawnTeam(m, nopts, body)
			next.gen = current.gen + 1
			current.next = next
			prev := current
			current = next
			if opts.OnReform != nil {
				opts.OnReform(prev, next, dead)
			}
		})
	}
	return team
}

func spawnTeam(m *pvm.Machine, opts Opts, body func(w *Worker)) *Team {
	P, name := opts.P, opts.Name
	if P < 1 || P > len(m.Hosts()) {
		panic(fmt.Sprintf("fx: P=%d with %d hosts", P, len(m.Hosts())))
	}
	hosts := opts.Hosts
	if hosts == nil {
		hosts = make([]int, P)
		for r := range hosts {
			hosts[r] = r
		}
	}
	if len(hosts) != P {
		panic(fmt.Sprintf("fx: %d hosts for P=%d", len(hosts), P))
	}
	team := &Team{Name: name, baseTID: len(m.Tasks()), hosts: append([]int(nil), hosts...)}
	for r := 0; r < P; r++ {
		w := &Worker{Rank: r, P: P, team: team, cost: opts.Cost, hostIdx: hosts[r], phase: "startup"}
		team.Workers = append(team.Workers, w)
		rank := r
		t := m.Spawn(fmt.Sprintf("%s[%d]", name, r), hosts[r], func(task *pvm.Task) {
			defer func() {
				if r := recover(); r != nil {
					ap, ok := r.(abortPanic)
					if !ok {
						panic(r) // includes the kernel's kill signal
					}
					_ = ap // already recorded by abort
					return
				}
				team.done.Add(1)
			}()
			w.task = task
			w.rng = task.Host().Kernel().Rand(fmt.Sprintf("fx.%s.%d", name, rank))
			body(w)
		})
		w.task = t
	}
	return team
}

// abort records the worker's failure (cause err, current phase) on the
// team and unwinds its goroutine.
func (w *Worker) abort(err error) {
	re := &RunError{Program: w.team.Name, Rank: w.Rank, Phase: w.phase, Err: err}
	w.team.fail(re)
	panic(abortPanic{re})
}

// Phase names the program phase the worker is in, for failure reports.
// Collectives set it automatically; kernels may name compute phases.
func (w *Worker) Phase(name string) { w.phase = name }

// CurrentPhase reports the phase most recently set.
func (w *Worker) CurrentPhase() string { return w.phase }

// InjectStall adds an extra OS-deschedule stall of duration d to the
// worker's next compute phase — the ComputeStall fault's hook.
func (w *Worker) InjectStall(d sim.Duration) {
	if d > 0 {
		w.pendingStall += d
	}
}

// tid maps a rank in this team to its PVM TID.
func (w *Worker) tid(rank int) int { return w.team.baseTID + rank }

// Now reports current virtual time.
func (w *Worker) Now() sim.Time { return w.task.Proc().Now() }

// Task exposes the underlying PVM task (counters, etc.).
func (w *Worker) Task() *pvm.Task { return w.task }

// Compute advances virtual time by ops operations of the given cost
// class, with calibrated rate, multiplicative jitter, and the occasional
// descheduling stall.
func (w *Worker) Compute(class string, ops float64) {
	if ops <= 0 {
		return
	}
	secs := ops / w.cost.Rate(class)
	if w.cost.JitterFrac > 0 {
		secs *= math.Max(0, 1+w.cost.JitterFrac*w.rng.NormFloat64())
	}
	d := sim.DurationOf(secs)
	if w.cost.DeschedProb > 0 && w.rng.Float64() < w.cost.DeschedProb {
		d += sim.DurationOf(w.cost.DeschedMean.Seconds() * w.rng.ExpFloat64())
		w.Descheds++
	}
	if w.pendingStall > 0 {
		d += w.pendingStall
		w.pendingStall = 0
		w.Descheds++
	}
	w.ComputeTime += d
	w.task.Sleep(d)
}

// Idle advances virtual time without modeling computation (I/O waits).
func (w *Worker) Idle(d sim.Duration) { w.task.Sleep(d) }

// Send transmits body to rank dst using the worker's packing mode. A
// transport failure or dead peer aborts the worker with a RunError.
func (w *Worker) Send(dst, tag int, body []byte) {
	var err error
	if w.UseFragments {
		err = w.task.SendFragsErr(w.tid(dst), tag, [][]byte{body})
	} else {
		err = w.task.SendErr(w.tid(dst), tag, body)
	}
	if err != nil {
		w.abort(err)
	}
}

// SendFrags transmits a fragment-list message (multiple packs, no copy
// loop). Under CoalesceFragments the fragments are first copied into one
// contiguous buffer, as the copy-loop kernels do.
func (w *Worker) SendFrags(dst, tag int, frags [][]byte) {
	if w.CoalesceFragments {
		var total int
		for _, f := range frags {
			total += len(f)
		}
		buf := make([]byte, 0, total)
		for _, f := range frags {
			buf = append(buf, f...)
		}
		if err := w.task.SendErr(w.tid(dst), tag, buf); err != nil {
			w.abort(err)
		}
		return
	}
	if err := w.task.SendFragsErr(w.tid(dst), tag, frags); err != nil {
		w.abort(err)
	}
}

// Recv blocks until a message from rank src with the tag arrives. A dead
// peer or team abort unwinds the worker with a RunError.
func (w *Worker) Recv(src, tag int) []byte {
	_, _, body, err := w.task.RecvErr(w.tid(src), tag, 0)
	if err != nil {
		w.abort(err)
	}
	return body
}

// NeighborExchange performs the neighbor pattern of figure 1: every
// interior rank exchanges with both sides; rank 0 and rank P−1 exchange
// with their single neighbor. Returns the data received from rank−1 and
// rank+1 (nil at the chain ends).
func (w *Worker) NeighborExchange(tag int, toPrev, toNext []byte) (fromPrev, fromNext []byte) {
	w.phase = "neighbor-exchange"
	if w.Rank > 0 {
		w.Send(w.Rank-1, tag, toPrev)
	}
	if w.Rank < w.P-1 {
		w.Send(w.Rank+1, tag, toNext)
	}
	if w.Rank > 0 {
		fromPrev = w.Recv(w.Rank-1, tag)
	}
	if w.Rank < w.P-1 {
		fromNext = w.Recv(w.Rank+1, tag)
	}
	return fromPrev, fromNext
}

// AllToAll performs the all-to-all pattern with the shift schedule Fx
// compiles: at step s each rank sends parts[(rank+s)%P] to rank+s and
// receives from rank−s. parts[rank] is returned in place as the local
// part. The result slice r is such that r[i] is the part contributed by
// rank i.
func (w *Worker) AllToAll(tag int, parts [][]byte) [][]byte {
	if len(parts) != w.P {
		panic(fmt.Sprintf("fx: AllToAll with %d parts for P=%d", len(parts), w.P))
	}
	w.phase = "all-to-all"
	out := make([][]byte, w.P)
	out[w.Rank] = parts[w.Rank]
	for s := 1; s < w.P; s++ {
		dst := (w.Rank + s) % w.P
		src := (w.Rank - s + w.P) % w.P
		w.Send(dst, tag+s, parts[dst])
		out[src] = w.Recv(src, tag+s)
	}
	return out
}

// Bcast performs the broadcast pattern: root sends data to every other
// rank (P−1 point-to-point messages, as Fx's sequential-I/O broadcast
// does); non-roots receive and return it.
func (w *Worker) Bcast(root, tag int, data []byte) []byte {
	w.phase = "broadcast"
	if w.Rank == root {
		for r := 0; r < w.P; r++ {
			if r != root {
				w.Send(r, tag, data)
			}
		}
		return data
	}
	return w.Recv(root, tag)
}

// Reduce performs the tree (up-sweep) pattern: at step i, ranks that are
// odd multiples of 2^i send their value to the even multiple below and
// drop out; combine merges an incoming value into the local one. The
// fully reduced value lands on rank 0, which returns it; other ranks
// return nil.
func (w *Worker) Reduce(tag int, data []byte, combine func(local, incoming []byte) []byte) []byte {
	w.phase = "reduce"
	local := data
	for stride := 1; stride < w.P; stride <<= 1 {
		if w.Rank&stride != 0 {
			w.Send(w.Rank-stride, tag, local)
			return nil
		}
		if w.Rank+stride < w.P {
			local = combine(local, w.Recv(w.Rank+stride, tag))
		}
	}
	return local
}

// TreeBcast performs the tree down-sweep: rank 0's data propagates by
// doubling (the reverse of Reduce). Every rank returns the data.
func (w *Worker) TreeBcast(tag int, data []byte) []byte {
	w.phase = "tree-broadcast"
	span := 1
	for span < w.P {
		span <<= 1
	}
	local := data
	for stride := span >> 1; stride >= 1; stride >>= 1 {
		switch w.Rank % (2 * stride) {
		case 0:
			if w.Rank+stride < w.P {
				w.Send(w.Rank+stride, tag, local)
			}
		case stride:
			local = w.Recv(w.Rank-stride, tag)
		}
	}
	return local
}

// Barrier synchronizes all ranks in the team: an empty tree reduce to
// rank 0 followed by an empty broadcast release. Fx enforces this
// synchronization implicitly through its communication schedules; some
// SPMD communication systems make it an explicit barrier.
func (w *Worker) Barrier() {
	const barrierTagBase = 1 << 20
	w.phase = "barrier"
	tag := barrierTagBase + 2*w.barrierGen
	w.barrierGen++
	w.Reduce(tag, nil, func(a, b []byte) []byte { return nil })
	w.Bcast(0, tag+1, nil)
}

// BlockRange computes the block distribution of n items over P
// processors: rank r owns [lo, hi). Remainder items go to the first
// ranks, as Fx's BLOCK distribution does.
func BlockRange(n, P, rank int) (lo, hi int) {
	base := n / P
	rem := n % P
	lo = rank*base + min(rank, rem)
	hi = lo + base
	if rank < rem {
		hi++
	}
	return lo, hi
}

// BlockOwner returns the rank owning item i under BlockRange.
func BlockOwner(n, P, i int) int {
	for r := 0; r < P; r++ {
		lo, hi := BlockRange(n, P, r)
		if i >= lo && i < hi {
			return r
		}
	}
	panic("fx: BlockOwner out of range")
}
