package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// openCollect opens path and returns the journal plus the replayed
// records.
func openCollect(t *testing.T, path string, opts Options) (*Journal, []Record, ReplayStats) {
	t.Helper()
	var recs []Record
	j, st, err := Open(path, opts, func(r Record) error {
		body := append([]byte(nil), r.Body...)
		recs = append(recs, Record{Op: r.Op, Body: body})
		return nil
	})
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	return j, recs, st
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, recs, st := openCollect(t, path, Options{})
	if len(recs) != 0 || st.Records != 0 || st.TruncatedBytes != 0 {
		t.Fatalf("fresh journal replayed %d records, stats %+v", len(recs), st)
	}
	want := []Record{
		{OpSubmitted, []byte(`{"id":"r-1"}`)},
		{OpGrant, []byte(`{"id":7}`)},
		{OpTerminal, []byte(`{"id":"r-1","state":"done"}`)},
		{OpRelease, nil},
	}
	for _, r := range want {
		if err := j.Append(r.Op, r.Body); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	j2, got, st := openCollect(t, path, Options{})
	defer j2.Close()
	if st.Records != len(want) || st.TruncatedBytes != 0 {
		t.Fatalf("replay stats %+v, want %d clean records", st, len(want))
	}
	for i, r := range want {
		if got[i].Op != r.Op || !bytes.Equal(got[i].Body, r.Body) {
			t.Errorf("record %d = {%v %q}, want {%v %q}", i, got[i].Op, got[i].Body, r.Op, r.Body)
		}
	}

	// The reopened journal appends cleanly after the replayed tail.
	if err := j2.Append(OpSubmitted, []byte("later")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, got, _ := openCollect(t, path, Options{})
	j3.Close()
	if len(got) != len(want)+1 || string(got[len(got)-1].Body) != "later" {
		t.Fatalf("after reopen-append: %d records", len(got))
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _, _ := openCollect(t, path, Options{})
	for i := 0; i < 3; i++ {
		if err := j.Append(OpSubmitted, []byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Append(OpTerminal, []byte("the-torn-one")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Tear the final record: chop a few bytes off the file, as a crash
	// mid-write (or mid-flush) would.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	j2, recs, st := openCollect(t, path, Options{})
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3 (torn tail dropped)", len(recs))
	}
	if st.TruncatedBytes == 0 || st.TruncateReason == "" {
		t.Fatalf("truncation not reported: %+v", st)
	}
	// The log must be appendable and clean after recovery.
	if err := j2.Append(OpSubmitted, []byte("after-recovery")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, recs, st := openCollect(t, path, Options{})
	j3.Close()
	if len(recs) != 4 || st.TruncatedBytes != 0 {
		t.Fatalf("after recovery+append: %d records, stats %+v", len(recs), st)
	}
	if string(recs[3].Body) != "after-recovery" {
		t.Errorf("tail record body = %q", recs[3].Body)
	}
}

func TestBitFlippedTailDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _, _ := openCollect(t, path, Options{})
	if err := j.Append(OpSubmitted, []byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(OpSubmitted, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Flip one bit inside the last record's body.
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	body[len(body)-2] ^= 0x10
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recs, st := openCollect(t, path, Options{})
	j2.Close()
	if len(recs) != 1 || string(recs[0].Body) != "good" {
		t.Fatalf("recovered %v, want only the intact record", recs)
	}
	if st.TruncateReason == "" {
		t.Fatal("checksum drop not reported")
	}
}

func TestGarbageFileRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	if err := os.WriteFile(path, []byte("this is not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, Options{}, nil); err == nil {
		t.Fatal("opened a non-journal file without error")
	}
}

func TestFullDiskAppendFailsSticky(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	// Budget: the header plus one full record, then the disk "fills" in
	// the middle of the second append.
	rec := []byte("0123456789abcdef")
	frame := int64(len(encodeFrame(OpSubmitted, rec)))
	ffs := &FaultFS{Base: OSFS{}, WriteBudget: int64(len(magic)) + frame + frame/2}
	j, _, err := Open(path, Options{FS: ffs}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(OpSubmitted, rec); err != nil {
		t.Fatalf("first append within budget: %v", err)
	}
	if err := j.Append(OpSubmitted, rec); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("append on full disk: %v, want ErrDiskFull", err)
	}
	// The journal is now sticky-broken: even a tiny append refuses.
	if err := j.Append(OpTerminal, nil); err == nil {
		t.Fatal("append after failure succeeded; tail state is unknown")
	}
	if j.Err() == nil {
		t.Fatal("Err() nil after failed append")
	}
	j.Close()

	// Recovery drops the half-written record and keeps the good one.
	j2, recs, st := openCollect(t, path, Options{})
	j2.Close()
	if len(recs) != 1 || st.TruncatedBytes == 0 {
		t.Fatalf("recovered %d records (stats %+v), want 1 + truncation", len(recs), st)
	}
}

func TestSyncFailureIsAppendFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _, err := Open(path, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	ffs := &FaultFS{Base: OSFS{}, WriteBudget: -1, SyncErr: errors.New("injected sync failure")}
	j2, _, err := Open(path, Options{FS: ffs}, nil)
	if err == nil {
		// Header already exists so Open does not sync; the append must
		// still surface the sync failure.
		err = j2.Append(OpSubmitted, []byte("x"))
		j2.Close()
	}
	if err == nil {
		t.Fatal("sync failure swallowed")
	}
}

func TestSlowDiskStillCorrect(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	ffs := &FaultFS{Base: OSFS{}, WriteBudget: -1, WriteDelay: 2 * time.Millisecond}
	j, _, err := Open(path, Options{FS: ffs}, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < 5; i++ {
		if err := j.Append(OpSubmitted, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if time.Since(start) < 10*time.Millisecond {
		t.Fatal("write delay not applied")
	}
	j.Close()
	j2, recs, st := openCollect(t, path, Options{})
	j2.Close()
	if len(recs) != 5 || st.TruncatedBytes != 0 {
		t.Fatalf("slow disk corrupted the log: %d records, %+v", len(recs), st)
	}
}

func TestConcurrentAppendsAllSurvive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, _, err := Open(path, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			errc <- j.Append(OpSubmitted, []byte(fmt.Sprintf("c-%02d", i)))
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	j2, recs, st := openCollect(t, path, Options{})
	j2.Close()
	if len(recs) != n || st.TruncatedBytes != 0 {
		t.Fatalf("%d records survived (stats %+v), want %d", len(recs), st, n)
	}
}
