// Package journal is fxnetd's durability layer: an append-only,
// checksummed, fsync'd write-ahead log of job lifecycle records and QoS
// admission grants, replayed on boot so a crashed node comes back
// without losing acknowledged work.
//
// The format is deliberately dumb. A file starts with an 8-byte magic
// and then holds framed records:
//
//	len(4, little-endian) | crc32c(4) | op(1) body(len-1)
//
// The checksum covers the payload (op + body). Recovery scans forward
// and stops at the first frame that fails to parse — a short tail (the
// process died mid-write or the disk filled), a checksum mismatch (a
// torn or bit-flipped sector), or an absurd length. Everything before
// that point is trusted; the file is truncated to it, so the bad tail
// is dropped rather than fatal and the next append extends a clean log.
//
// Appends buffer the whole frame into a single Write followed by an
// fsync, so a crash can only produce a torn tail record, never an
// interleaved or half-checksummed middle record.
package journal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Op tags a record with its lifecycle event.
type Op uint8

const (
	// OpSubmitted records a run submission acknowledged to a client.
	OpSubmitted Op = iota + 1
	// OpTerminal records a job reaching done/failed/cancelled.
	OpTerminal
	// OpGrant records a committed QoS admission.
	OpGrant
	// OpRelease records a released QoS admission.
	OpRelease
)

func (op Op) String() string {
	switch op {
	case OpSubmitted:
		return "submitted"
	case OpTerminal:
		return "terminal"
	case OpGrant:
		return "grant"
	case OpRelease:
		return "release"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Record is one journal entry: an op tag and an opaque body (the
// server's JSON payloads; the journal does not interpret them).
type Record struct {
	Op   Op
	Body []byte
}

const (
	magic = "FXWAL001"
	// maxRecord bounds a single record so a corrupt length field cannot
	// drive a giant allocation during replay.
	maxRecord = 16 << 20
	frameHead = 8 // len(4) + crc(4)
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options configures a journal.
type Options struct {
	// FS is the filesystem seam; nil selects the real filesystem.
	FS FS
	// NoSync skips the per-append fsync. Only tests and throwaway
	// deployments should set it: without the sync, acknowledged records
	// can vanish in a crash.
	NoSync bool
}

// Journal is an open write-ahead log. Append is safe for concurrent use.
type Journal struct {
	path   string
	fs     FS
	noSync bool

	mu     sync.Mutex
	f      File
	broken error // sticky failure: the log's tail state is unknown
}

// ReplayStats describes what Open found in an existing log.
type ReplayStats struct {
	// Records is the number of valid records replayed.
	Records int
	// TruncatedBytes is how many trailing bytes were dropped as torn or
	// corrupt; 0 for a clean log.
	TruncatedBytes int64
	// TruncateReason explains the drop when TruncatedBytes > 0.
	TruncateReason string
}

// Open opens (creating if absent) the journal at path, replays every
// valid record into fn, truncates any torn or corrupt tail, and leaves
// the file positioned for appends. fn may be nil to skip replay
// delivery (the records are still validated). A non-nil error from fn
// aborts the open.
func Open(path string, opts Options, fn func(Record) error) (*Journal, ReplayStats, error) {
	fs := opts.FS
	if fs == nil {
		fs = OSFS{}
	}
	var st ReplayStats
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, st, fmt.Errorf("journal: %w", err)
		}
	}
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, st, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{path: path, fs: fs, noSync: opts.NoSync, f: f}
	if err := j.replay(fn, &st); err != nil {
		f.Close()
		return nil, st, err
	}
	return j, st, nil
}

// replay validates the header and every record, delivering them to fn,
// then truncates the file to the last good offset and seeks to it.
func (j *Journal) replay(fn func(Record) error, st *ReplayStats) error {
	size, err := j.f.Seek(0, io.SeekEnd)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if size == 0 {
		// Fresh log: write the header now so a zero-record journal is
		// still recognizably ours.
		if _, err := j.f.Write([]byte(magic)); err != nil {
			return fmt.Errorf("journal: write header: %w", err)
		}
		if err := j.sync(); err != nil {
			return fmt.Errorf("journal: sync header: %w", err)
		}
		if err := j.fs.SyncDir(filepath.Dir(j.path)); err != nil {
			return fmt.Errorf("journal: sync dir: %w", err)
		}
		return nil
	}
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(j.f, head); err != nil || string(head) != magic {
		return fmt.Errorf("journal: %s is not a journal (bad magic)", j.path)
	}

	good := int64(len(magic))
	rd := newCountingReader(j.f)
	reason := ""
	for {
		rec, err := readRecord(rd)
		if err == io.EOF {
			break
		}
		if err != nil {
			reason = err.Error()
			break
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return fmt.Errorf("journal: replay: %w", err)
			}
		}
		st.Records++
		good = int64(len(magic)) + rd.n
	}
	if good < size {
		st.TruncatedBytes = size - good
		st.TruncateReason = reason
		if err := j.f.Truncate(good); err != nil {
			return fmt.Errorf("journal: truncate torn tail: %w", err)
		}
	}
	if _, err := j.f.Seek(good, io.SeekStart); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// countingReader tracks how many bytes of valid frame data have been
// consumed, so replay knows the last good offset.
type countingReader struct {
	r io.Reader
	n int64
}

func newCountingReader(r io.Reader) *countingReader { return &countingReader{r: r} }

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// readRecord parses one frame. io.EOF means a clean end; any other
// error means the tail from this frame on is untrustworthy. The
// counting reader may overshoot into the bad frame; callers use the
// offset recorded before the failed read.
func readRecord(r io.Reader) (Record, error) {
	var head [frameHead]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("torn frame header: %v", err)
	}
	n := binary.LittleEndian.Uint32(head[:4])
	sum := binary.LittleEndian.Uint32(head[4:])
	if n == 0 || n > maxRecord {
		return Record{}, fmt.Errorf("implausible record length %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Record{}, fmt.Errorf("torn record body: %v", err)
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return Record{}, errors.New("record checksum mismatch")
	}
	return Record{Op: Op(payload[0]), Body: payload[1:]}, nil
}

// Path reports the journal's file path.
func (j *Journal) Path() string { return j.path }

// Append frames, writes, and fsyncs one record. On failure the journal
// goes sticky-broken: the on-disk tail state is unknown, so until the
// process restarts (and Open re-truncates), further appends refuse
// rather than risk interleaving after a partial frame.
func (j *Journal) Append(op Op, body []byte) error {
	frame := encodeFrame(op, body)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken != nil {
		return fmt.Errorf("journal: unavailable after earlier failure: %w", j.broken)
	}
	if _, err := j.f.Write(frame); err != nil {
		j.broken = err
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := j.sync(); err != nil {
		j.broken = err
		return fmt.Errorf("journal: append sync: %w", err)
	}
	return nil
}

// encodeFrame renders one record as a single contiguous frame.
func encodeFrame(op Op, body []byte) []byte {
	var buf bytes.Buffer
	buf.Grow(frameHead + 1 + len(body))
	payload := make([]byte, 1+len(body))
	payload[0] = byte(op)
	copy(payload[1:], body)
	var head [frameHead]byte
	binary.LittleEndian.PutUint32(head[:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(head[4:], crc32.Checksum(payload, castagnoli))
	buf.Write(head[:])
	buf.Write(payload)
	return buf.Bytes()
}

func (j *Journal) sync() error {
	if j.noSync {
		return nil
	}
	return j.f.Sync()
}

// Err reports the sticky append failure, nil while the journal is
// healthy.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.broken
}

// Close releases the file handle. A closed journal refuses appends.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.broken == nil {
		j.broken = errors.New("journal closed")
	}
	return j.f.Close()
}
