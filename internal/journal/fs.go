package journal

import (
	"errors"
	"io"
	"os"
	"sync"
	"time"
)

// FS is the journal's filesystem seam. Production code uses OSFS; the
// chaos tests substitute implementations that run slow, fill up, or fail
// to sync, so crash-safety behavior under degraded disks is testable
// in-process without privileged fault injection.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// SyncDir fsyncs a directory so a freshly created or renamed file's
	// directory entry is durable.
	SyncDir(dir string) error
}

// File is the subset of *os.File the journal needs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	Sync() error
	Truncate(size int64) error
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Some platforms refuse fsync on directories; that is a degraded
	// environment, not a programming error, so tolerate it.
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return err
	}
	return nil
}

// FaultFS wraps an FS with injectable failures: a write-byte budget
// models a disk filling up mid-record, a per-write delay models a
// saturated device, and SyncErr makes every fsync fail. The zero value
// (beyond Base) injects nothing.
type FaultFS struct {
	Base FS
	// WriteBudget is the number of bytes writable before ErrDiskFull;
	// negative means unlimited.
	WriteBudget int64
	// WriteDelay stalls every write, modeling a slow disk.
	WriteDelay time.Duration
	// SyncErr, when non-nil, is returned by every Sync and SyncDir.
	SyncErr error

	mu      sync.Mutex
	written int64
}

// ErrDiskFull is the injected out-of-space error.
var ErrDiskFull = errors.New("journal: injected disk full")

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	base, err := f.Base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: base, fs: f}, nil
}

func (f *FaultFS) SyncDir(dir string) error {
	if f.SyncErr != nil {
		return f.SyncErr
	}
	return f.Base.SyncDir(dir)
}

// faultFile applies the parent FaultFS's failure policy to one file.
type faultFile struct {
	File
	fs *FaultFS
}

// Write honors the delay and byte budget. A short write past the budget
// is exactly what a full disk produces: part of the record lands, the
// rest does not, and recovery must treat the tail as torn.
func (f *faultFile) Write(p []byte) (int, error) {
	if f.fs.WriteDelay > 0 {
		time.Sleep(f.fs.WriteDelay)
	}
	f.fs.mu.Lock()
	budget := f.fs.WriteBudget
	if budget >= 0 {
		remaining := budget - f.fs.written
		if remaining <= 0 {
			f.fs.mu.Unlock()
			return 0, ErrDiskFull
		}
		if int64(len(p)) > remaining {
			f.fs.written = budget
			f.fs.mu.Unlock()
			n, err := f.File.Write(p[:remaining])
			if err != nil {
				return n, err
			}
			return n, ErrDiskFull
		}
	}
	f.fs.written += int64(len(p))
	f.fs.mu.Unlock()
	return f.File.Write(p)
}

func (f *faultFile) Sync() error {
	if f.fs.SyncErr != nil {
		return f.fs.SyncErr
	}
	return f.File.Sync()
}
