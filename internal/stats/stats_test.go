package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Min != 2 || s.Max != 9 {
		t.Errorf("summary = %+v", s)
	}
	if !approx(s.Mean, 5, 1e-12) {
		t.Errorf("mean = %v", s.Mean)
	}
	if !approx(s.SD, 2, 1e-12) {
		t.Errorf("sd = %v", s.SD)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.SD != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.Min != 3.5 || s.Max != 3.5 || s.Mean != 3.5 || s.SD != 0 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !approx(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// interpolation
	if got := Quantile([]float64{0, 10}, 0.3); !approx(got, 3, 1e-12) {
		t.Errorf("interp quantile = %v", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{-1, 0, 0.5, 1, 1.5, 2, 9.99, 10, 11}
	h := NewHistogram(xs, 0, 10, 10)
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Total() != 6 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Counts[0] != 2 { // 0, 0.5
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[1] != 2 { // 1, 1.5
		t.Errorf("bin1 = %d", h.Counts[1])
	}
	if !approx(h.BinCenter(0), 0.5, 1e-12) {
		t.Errorf("center0 = %v", h.BinCenter(0))
	}
}

func TestHistogramModesTrimodal(t *testing.T) {
	// Emulate a trimodal packet-size mix: many ACKs at 58, many full
	// segments at 1518, a cluster of remainders near 700.
	var xs []float64
	for i := 0; i < 500; i++ {
		xs = append(xs, 58)
	}
	for i := 0; i < 400; i++ {
		xs = append(xs, 1518)
	}
	for i := 0; i < 100; i++ {
		xs = append(xs, 700)
	}
	h := NewHistogram(xs, 0, 1600, 32)
	modes := h.Modes(0.02)
	if len(modes) != 3 {
		t.Fatalf("modes = %v, want 3", modes)
	}
	// Largest mode first (the 58-byte bin).
	if c := h.BinCenter(modes[0]); c > 100 {
		t.Errorf("dominant mode center = %v, want near 58", c)
	}
}

func TestHistogramModesUnimodal(t *testing.T) {
	var xs []float64
	for i := 0; i < 1000; i++ {
		xs = append(xs, 500+float64(i%10))
	}
	h := NewHistogram(xs, 0, 1600, 16)
	if modes := h.Modes(0.05); len(modes) != 1 {
		t.Errorf("modes = %v, want exactly 1", modes)
	}
}

func TestRMSEAndNRMSE(t *testing.T) {
	a := []float64{0, 1, 2, 3}
	b := []float64{0, 1, 2, 3}
	if RMSE(a, b) != 0 {
		t.Error("RMSE of identical != 0")
	}
	c := []float64{1, 2, 3, 4}
	if !approx(RMSE(a, c), 1, 1e-12) {
		t.Errorf("RMSE = %v", RMSE(a, c))
	}
	if !approx(NRMSE(a, c), 1.0/3, 1e-12) {
		t.Errorf("NRMSE = %v", NRMSE(a, c))
	}
	if NRMSE([]float64{5, 5}, []float64{1, 9}) != 0 {
		t.Error("NRMSE of constant reference != 0")
	}
}

func TestPearsonR(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	if !approx(PearsonR(a, b), 1, 1e-12) {
		t.Errorf("r = %v", PearsonR(a, b))
	}
	neg := []float64{10, 8, 6, 4, 2}
	if !approx(PearsonR(a, neg), -1, 1e-12) {
		t.Errorf("r = %v", PearsonR(a, neg))
	}
	if PearsonR(a, []float64{3, 3, 3, 3, 3}) != 0 {
		t.Error("r with constant != 0")
	}
}

func TestQuickSummaryInvariants(t *testing.T) {
	f := func(xs []float64) bool {
		for i, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				xs[i] = 0
			}
			// Keep magnitudes sane so the SD computation stays finite.
			if xs[i] > 1e12 {
				xs[i] = 1e12
			}
			if xs[i] < -1e12 {
				xs[i] = -1e12
			}
		}
		s := Summarize(xs)
		if len(xs) == 0 {
			return s.N == 0
		}
		return s.Min <= s.Mean && s.Mean <= s.Max && s.SD >= 0 && s.SD <= s.Max-s.Min+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickHistogramConservation(t *testing.T) {
	f := func(raw []uint16) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		h := NewHistogram(xs, 100, 1000, 9)
		return h.Total()+h.Under+h.Over == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHurstWhiteNoise(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	x := make([]float64, 1<<14)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	h := HurstAggVar(x, nil)
	if h < 0.4 || h > 0.6 {
		t.Errorf("white noise H = %v, want ≈0.5", h)
	}
}

func TestHurstPersistentProcess(t *testing.T) {
	// A slowly varying random walk-ish process (heavily smoothed noise)
	// is strongly persistent: H near 1.
	r := rand.New(rand.NewSource(2))
	x := make([]float64, 1<<14)
	v := 0.0
	for i := range x {
		v = 0.999*v + r.NormFloat64()
		x[i] = v
	}
	h := HurstAggVar(x, nil)
	if h < 0.8 {
		t.Errorf("persistent process H = %v, want > 0.8", h)
	}
}

func TestHurstPeriodicSeries(t *testing.T) {
	// A fast periodic series (with a whisper of noise so aggregated
	// variances stay positive) cancels under aggregation: H ≈ 0 — the
	// regime of this paper's parallel-program traffic, the opposite of
	// self-similar media traffic.
	r := rand.New(rand.NewSource(3))
	x := make([]float64, 1<<12)
	for i := range x {
		x[i] = math.Sin(2*math.Pi*float64(i)/8) + 1e-3*r.NormFloat64()
	}
	h := HurstAggVar(x, nil)
	if h > 0.2 {
		t.Errorf("periodic H = %v, want ≈0", h)
	}
}

func TestHurstDegenerateInputs(t *testing.T) {
	if h := HurstAggVar(nil, nil); h != 0.5 {
		t.Errorf("empty H = %v", h)
	}
	if h := HurstAggVar(make([]float64, 1000), nil); h != 0.5 {
		t.Errorf("constant H = %v", h)
	}
	if h := HurstAggVar([]float64{1, 2, 3}, nil); h != 0.5 {
		t.Errorf("short H = %v", h)
	}
}

func TestCoV(t *testing.T) {
	if got := CoV([]float64{10, 10, 10}); got != 0 {
		t.Errorf("constant CoV = %v", got)
	}
	if got := CoV([]float64{0, 0}); got != 0 {
		t.Errorf("zero-mean CoV = %v", got)
	}
	got := CoV([]float64{1, 3})
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CoV = %v, want 0.5", got)
	}
}
