// Package stats provides the descriptive statistics used throughout the
// traffic analysis: min/max/mean/standard deviation summaries, histograms,
// quantiles, and a simple modality detector used to verify the paper's
// "trimodal packet size distribution" observation.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the four statistics the paper tabulates for packet sizes
// and interarrival times (figures 3, 4, 8, 9).
type Summary struct {
	N    int
	Min  float64
	Max  float64
	Mean float64
	SD   float64 // population standard deviation
}

// Summarize computes a Summary of xs. An empty input yields a zero Summary
// with N == 0.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.SD = math.Sqrt(ss / float64(len(xs)))
	return s
}

// String formats the summary like a row of the paper's tables.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.1f max=%.1f avg=%.1f sd=%.1f", s.N, s.Min, s.Max, s.Mean, s.SD)
}

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return Summarize(xs).SD }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It panics on empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int // samples below Lo
	Over   int // samples at or above Hi
}

// NewHistogram builds a histogram of xs with the given number of bins over
// [lo, hi). bins must be positive and hi > lo.
func NewHistogram(xs []float64, lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		switch {
		case x < lo:
			h.Under++
		case x >= hi:
			h.Over++
		default:
			h.Counts[int((x-lo)/w)]++
		}
	}
	return h
}

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.BinWidth()
}

// Total returns the number of in-range samples.
func (h *Histogram) Total() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Modes returns the indices of local maxima whose count is at least
// minFrac of the total in-range count, in descending count order. Adjacent
// equal-count bins count as one mode (the leftmost index is reported).
// This is how we verify the trimodality the paper reports for SOR, 2DFFT
// and HIST packet sizes.
func (h *Histogram) Modes(minFrac float64) []int {
	total := h.Total()
	if total == 0 {
		return nil
	}
	min := int(minFrac * float64(total))
	var modes []int
	for i, c := range h.Counts {
		if c == 0 || c < min {
			continue
		}
		// Strictly greater than the previous differing neighbor and at
		// least as large as the next differing neighbor.
		left := i - 1
		for left >= 0 && h.Counts[left] == c {
			left--
		}
		if left >= 0 && h.Counts[left] >= c {
			continue
		}
		if left >= 0 && left != i-1 {
			continue // plateau: only leftmost bin reports the mode
		}
		right := i + 1
		for right < len(h.Counts) && h.Counts[right] == c {
			right++
		}
		if right < len(h.Counts) && h.Counts[right] > c {
			continue
		}
		modes = append(modes, i)
	}
	sort.Slice(modes, func(a, b int) bool {
		if h.Counts[modes[a]] != h.Counts[modes[b]] {
			return h.Counts[modes[a]] > h.Counts[modes[b]]
		}
		return modes[a] < modes[b]
	})
	return modes
}

// RMSE returns the root-mean-square error between a and b, which must have
// equal length.
func RMSE(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: RMSE length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	var ss float64
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(a)))
}

// NRMSE returns RMSE normalized by the range (max−min) of a, or 0 when a
// is constant.
func NRMSE(a, b []float64) float64 {
	s := Summarize(a)
	if s.Max == s.Min {
		return 0
	}
	return RMSE(a, b) / (s.Max - s.Min)
}

// PearsonR returns the Pearson correlation coefficient of a and b, or 0
// when either is constant.
func PearsonR(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("stats: PearsonR length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	ma, mb := Mean(a), Mean(b)
	var sab, saa, sbb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0
	}
	return sab / math.Sqrt(saa*sbb)
}

// HurstAggVar estimates the Hurst exponent of a stationary series by the
// aggregated-variance method: for block size m, the variance of the
// m-aggregated means of a self-similar process scales as m^(2H−2). The
// slope β of log Var against log m gives H = 1 + β/2. Short-range-
// dependent traffic yields H ≈ 0.5; the self-similar LAN/video traffic of
// the QoS literature yields H in (0.7, 0.95); strongly periodic series
// fall below 0.5. Returns 0.5 when the series is too short or constant.
func HurstAggVar(series []float64, scales []int) float64 {
	if len(scales) == 0 {
		// Default: octave scales while at least 8 blocks remain, so slow
		// periodicities (which only cancel at scales beyond their period)
		// are seen.
		for m := 1; len(series)/m >= 8; m *= 2 {
			scales = append(scales, m)
		}
	}
	var logM, logV []float64
	for _, m := range scales {
		if m < 1 || len(series)/m < 4 {
			continue
		}
		nBlocks := len(series) / m
		means := make([]float64, nBlocks)
		for b := 0; b < nBlocks; b++ {
			var s float64
			for i := b * m; i < (b+1)*m; i++ {
				s += series[i]
			}
			means[b] = s / float64(m)
		}
		v := Summarize(means).SD
		if v <= 0 {
			continue
		}
		logM = append(logM, math.Log(float64(m)))
		logV = append(logV, 2*math.Log(v))
	}
	if len(logM) < 3 {
		return 0.5
	}
	beta := slope(logM, logV)
	h := 1 + beta/2
	if h < 0 {
		h = 0
	}
	if h > 1 {
		h = 1
	}
	return h
}

// slope computes the least-squares slope of y against x.
func slope(x, y []float64) float64 {
	mx, my := Mean(x), Mean(y)
	var num, den float64
	for i := range x {
		num += (x[i] - mx) * (y[i] - my)
		den += (x[i] - mx) * (x[i] - mx)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// CoV is the coefficient of variation (SD/mean), or 0 for a zero mean.
func CoV(xs []float64) float64 {
	s := Summarize(xs)
	if s.Mean == 0 {
		return 0
	}
	return s.SD / math.Abs(s.Mean)
}
