package media

import (
	"math"
	"testing"

	"fxnet/internal/analysis"
	"fxnet/internal/sim"
	"fxnet/internal/stats"
)

func TestVBRFrameRateSpike(t *testing.T) {
	// The stream's intrinsic periodicity is the frame rate: the spectrum
	// of the binned bandwidth spikes at 30 Hz.
	tr := GenerateVBR(VBRConfig{}, 60*sim.Second, 1, 0, 1)
	if tr.Len() == 0 {
		t.Fatal("no packets")
	}
	spec := analysis.Spectrum(tr, 5*sim.Millisecond) // 100 Hz Nyquist
	peaks := spec.Peaks(5, 1)
	found := false
	for _, p := range peaks {
		if math.Abs(p.Freq-30) < 0.5 || math.Abs(p.Freq-30/12.0*12) < 0.5 {
			found = true
		}
	}
	// At least one strong spike at the frame rate or the GOP rate (2.5 Hz).
	gop := false
	for _, p := range peaks {
		if math.Abs(p.Freq-2.5) < 0.2 {
			gop = true
		}
	}
	if !found && !gop {
		t.Errorf("no frame-rate or GOP spike; peaks = %+v", peaks)
	}
}

func TestVBRVariableBurstSizes(t *testing.T) {
	// The defining property: burst (frame) sizes vary, unlike a parallel
	// program's constant phases.
	tr := GenerateVBR(VBRConfig{}, 30*sim.Second, 2, 0, 1)
	// Group packets into frames by the 33 ms cadence.
	var frames []float64
	cur := 0.0
	last := tr.Packets[0].Time
	for i, p := range tr.Packets {
		if i > 0 && p.Time.Sub(last) > 5*sim.Millisecond {
			frames = append(frames, cur)
			cur = 0
		}
		cur += float64(p.Size)
		last = p.Time
	}
	frames = append(frames, cur)
	if cov := stats.CoV(frames); cov < 0.3 {
		t.Errorf("frame-size CoV = %v, want substantial variability", cov)
	}
}

func TestVBRMeanRate(t *testing.T) {
	// 30 fps × (12 KB/12 + 3 KB×11/12) ≈ 112 KB/s.
	tr := GenerateVBR(VBRConfig{}, 120*sim.Second, 3, 0, 1)
	rate := analysis.AverageBandwidthKBps(tr)
	if rate < 70 || rate > 200 {
		t.Errorf("mean rate = %v KB/s, want ≈112", rate)
	}
}

func TestVBRDeterminism(t *testing.T) {
	a := GenerateVBR(VBRConfig{}, 10*sim.Second, 7, 0, 1)
	b := GenerateVBR(VBRConfig{}, 10*sim.Second, 7, 0, 1)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Packets {
		if a.Packets[i] != b.Packets[i] {
			t.Fatal("nondeterministic")
		}
	}
	c := GenerateVBR(VBRConfig{}, 10*sim.Second, 8, 0, 1)
	if c.Len() == a.Len() && c.TotalBytes() == a.TotalBytes() {
		t.Error("different seeds produced identical stream")
	}
}

func TestOnOffSelfSimilarity(t *testing.T) {
	// Superposed heavy-tailed on/off sources show long-range dependence:
	// H well above the 0.5 of short-range traffic.
	tr := GenerateOnOff(OnOffConfig{}, 200*sim.Second, 5)
	series, _ := analysis.BinnedBandwidth(tr, 100*sim.Millisecond)
	h := stats.HurstAggVar(series, nil)
	if h < 0.6 {
		t.Errorf("on/off H = %v, want > 0.6 (self-similar)", h)
	}
}

func TestOnOffSorted(t *testing.T) {
	tr := GenerateOnOff(OnOffConfig{Sources: 4}, 20*sim.Second, 9)
	for i := 1; i < tr.Len(); i++ {
		if tr.Packets[i].Time < tr.Packets[i-1].Time {
			t.Fatal("packets out of order")
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	c := VBRConfig{}.withDefaults()
	if c.FPS != 30 || c.GOP != 12 || c.PacketBytes != 1460 {
		t.Errorf("defaults = %+v", c)
	}
	o := OnOffConfig{}.withDefaults()
	if o.ParetoAlpha != 1.4 || o.Sources != 8 {
		t.Errorf("defaults = %+v", o)
	}
}
