// Package media generates the traffic the paper contrasts parallel
// programs against: variable-bit-rate video streams, whose "intrinsic
// periodicity [is] due to a frame rate" with *variable* burst sizes —
// the mirror image of a parallel program's known burst size and variable
// period (§8). The model is a GOP-structured VBR source in the spirit of
// Garrett & Willinger's MPEG analysis (the paper's reference [11]):
// frames arrive at a fixed rate; I-frames are large, P- and B-frames
// smaller; sizes are lognormally distributed with optional long-range
// scene modulation.
package media

import (
	"math"
	"math/rand"
	"sort"

	"fxnet/internal/ethernet"
	"fxnet/internal/sim"
	"fxnet/internal/trace"
)

// VBRConfig shapes the video source.
type VBRConfig struct {
	// FPS is the frame rate (the intrinsic periodicity). Default 30.
	FPS float64
	// GOP is the group-of-pictures length: one I-frame every GOP frames.
	// Default 12.
	GOP int
	// MeanIBytes / MeanPBytes are mean frame sizes. Defaults 12 KB / 3 KB
	// (≈ 1.1 Mb/s, a mid-90s MPEG-1 stream).
	MeanIBytes, MeanPBytes float64
	// SizeSigma is the lognormal σ of frame sizes (burst-size
	// variability, the defining property). Default 0.35.
	SizeSigma float64
	// SceneMean is the mean scene length in seconds; at each scene change
	// the size scale resamples, giving slow modulation. Default 4 s.
	SceneMean float64
	// PacketBytes is the transport segmentation (payload per packet).
	// Default 1460.
	PacketBytes int
}

func (c VBRConfig) withDefaults() VBRConfig {
	if c.FPS <= 0 {
		c.FPS = 30
	}
	if c.GOP <= 0 {
		c.GOP = 12
	}
	if c.MeanIBytes <= 0 {
		c.MeanIBytes = 12000
	}
	if c.MeanPBytes <= 0 {
		c.MeanPBytes = 3000
	}
	if c.SizeSigma <= 0 {
		c.SizeSigma = 0.35
	}
	if c.SceneMean <= 0 {
		c.SceneMean = 4
	}
	if c.PacketBytes <= 0 {
		c.PacketBytes = 1460
	}
	return c
}

// GenerateVBR synthesizes a video stream trace of the given duration
// from host src to dst, deterministically from the seed.
func GenerateVBR(cfg VBRConfig, duration sim.Duration, seed int64, src, dst int) *trace.Trace {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	tr := trace.New()
	tr.Meta["generator"] = "vbr-video"

	frameInterval := sim.DurationOf(1 / cfg.FPS)
	sceneScale := 1.0
	sceneLeft := cfg.SceneMean * rng.ExpFloat64()
	frame := 0
	for t := sim.Time(0); t < sim.Time(duration); t = t.Add(frameInterval) {
		sceneLeft -= 1 / cfg.FPS
		if sceneLeft <= 0 {
			sceneLeft = cfg.SceneMean * rng.ExpFloat64()
			sceneScale = math.Exp(0.4 * rng.NormFloat64())
		}
		mean := cfg.MeanPBytes
		if frame%cfg.GOP == 0 {
			mean = cfg.MeanIBytes
		}
		size := mean * sceneScale * math.Exp(cfg.SizeSigma*rng.NormFloat64()-cfg.SizeSigma*cfg.SizeSigma/2)
		emitFrameBytes(tr, t, int(size), cfg.PacketBytes, src, dst)
		frame++
	}
	return tr
}

// emitFrameBytes packetizes one video frame: packets back to back at wire
// pace within the frame slot.
func emitFrameBytes(tr *trace.Trace, at sim.Time, bytes, pktPayload, src, dst int) {
	perPacket := sim.DurationOf(float64((pktPayload+58+8)*8) / ethernet.DefaultBitRate)
	for off := 0; bytes > 0; off++ {
		payload := pktPayload
		if bytes < payload {
			payload = bytes
		}
		bytes -= payload
		tr.Packets = append(tr.Packets, trace.Packet{
			Time:  at.Add(sim.Duration(off) * perPacket),
			Size:  uint16(payload + 58),
			Src:   trace.MustAddr(src),
			Dst:   trace.MustAddr(dst),
			Proto: ethernet.ProtoUDP,
			Flags: ethernet.FlagData,
		})
	}
}

// OnOffConfig shapes a heavy-tailed on/off source — the superposition
// model behind self-similar LAN traffic (Leland et al.), used as the
// self-similarity control in the comparison experiments.
type OnOffConfig struct {
	// RateBps is the on-period emission rate in bytes/s. Default 500 KB/s.
	RateBps float64
	// ParetoAlpha is the tail index of the on/off period distribution
	// (1 < α < 2 gives long-range dependence). Default 1.4.
	ParetoAlpha float64
	// MeanPeriod is the mean on (and off) duration in seconds. Default 0.5.
	MeanPeriod float64
	// PacketBytes is the packet payload. Default 1460.
	PacketBytes int
	// Sources is the number of superposed independent on/off sources.
	// Default 8.
	Sources int
}

func (c OnOffConfig) withDefaults() OnOffConfig {
	if c.RateBps <= 0 {
		c.RateBps = 500_000
	}
	if c.ParetoAlpha <= 1 {
		c.ParetoAlpha = 1.4
	}
	if c.MeanPeriod <= 0 {
		c.MeanPeriod = 0.5
	}
	if c.PacketBytes <= 0 {
		c.PacketBytes = 1460
	}
	if c.Sources <= 0 {
		c.Sources = 8
	}
	return c
}

// GenerateOnOff synthesizes superposed heavy-tailed on/off traffic.
func GenerateOnOff(cfg OnOffConfig, duration sim.Duration, seed int64) *trace.Trace {
	cfg = cfg.withDefaults()
	tr := trace.New()
	tr.Meta["generator"] = "pareto-onoff"
	for s := 0; s < cfg.Sources; s++ {
		rng := rand.New(rand.NewSource(seed + int64(s)*7919))
		pareto := func() float64 {
			// Pareto with mean MeanPeriod: xm = mean·(α−1)/α.
			xm := cfg.MeanPeriod * (cfg.ParetoAlpha - 1) / cfg.ParetoAlpha
			return xm / math.Pow(rng.Float64(), 1/cfg.ParetoAlpha)
		}
		perPacket := sim.DurationOf(float64(cfg.PacketBytes) / cfg.RateBps)
		t := sim.Time(0)
		on := rng.Intn(2) == 0
		for t < sim.Time(duration) {
			period := sim.DurationOf(pareto())
			if on {
				for pt := t; pt < t.Add(period) && pt < sim.Time(duration); pt = pt.Add(perPacket) {
					tr.Packets = append(tr.Packets, trace.Packet{
						Time: pt, Size: uint16(cfg.PacketBytes + 58),
						Src: uint16(s % 4), Dst: uint16((s + 1) % 4),
						Proto: ethernet.ProtoUDP, Flags: ethernet.FlagData,
					})
				}
			}
			t = t.Add(period)
			on = !on
		}
	}
	sortByTime(tr)
	return tr
}

// sortByTime orders the merged per-source streams chronologically.
func sortByTime(tr *trace.Trace) {
	sort.Slice(tr.Packets, func(i, j int) bool {
		return tr.Packets[i].Time < tr.Packets[j].Time
	})
}
