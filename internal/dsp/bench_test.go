package dsp

import (
	"math/rand"
	"testing"
)

func benchSignal(n int) []complex128 {
	r := rand.New(rand.NewSource(1))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return x
}

func BenchmarkFFTRadix2_1024(b *testing.B) {
	x := benchSignal(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFFTRadix2_16384(b *testing.B) {
	x := benchSignal(16384)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkFFTBluestein_1000(b *testing.B) {
	x := benchSignal(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkPeriodogram_20000Samples(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	x := make([]float64, 20000)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Periodogram(x, 0.01, PeriodogramOptions{RemoveMean: true, PadPow2: true})
	}
}

// BenchmarkPeriodogramWorkspace_20000Samples is the scratch-reusing form:
// after the first iteration warms the workspace it should allocate
// nothing per spectrum.
func BenchmarkPeriodogramWorkspace_20000Samples(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	x := make([]float64, 20000)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	var ws Workspace
	ws.Periodogram(x, 0.01, PeriodogramOptions{RemoveMean: true, PadPow2: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Periodogram(x, 0.01, PeriodogramOptions{RemoveMean: true, PadPow2: true})
	}
}

func BenchmarkFFT2D_64x64(b *testing.B) {
	m := benchSignal(64 * 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		FFT2D(m, 64, 64)
	}
}
