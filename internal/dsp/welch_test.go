package dsp

import (
	"math"
	"sync/atomic"
	"testing"
)

// synthSeries builds a deterministic pseudo-random test signal with a
// buried periodicity, so spectra are non-trivial at every length.
func synthSeries(n int, seed uint64) []float64 {
	x := make([]float64, n)
	s := seed | 1
	for i := range x {
		// xorshift64 noise plus two tones.
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		noise := float64(s%1000)/1000 - 0.5
		x[i] = 10 + 3*math.Sin(2*math.Pi*float64(i)/16) +
			1.5*math.Sin(2*math.Pi*float64(i)/7.3) + noise
	}
	return x
}

// sameSpectrumBits fails unless the two spectra are bit-identical in
// every array and scalar — the determinism contract of the pool.
func sameSpectrumBits(t *testing.T, what string, got, want *Spectrum) {
	t.Helper()
	if len(got.Freq) != len(want.Freq) || len(got.Power) != len(want.Power) || len(got.Coeff) != len(want.Coeff) {
		t.Fatalf("%s: length mismatch: got (%d,%d,%d) want (%d,%d,%d)", what,
			len(got.Freq), len(got.Power), len(got.Coeff),
			len(want.Freq), len(want.Power), len(want.Coeff))
	}
	for i := range want.Power {
		if math.Float64bits(got.Power[i]) != math.Float64bits(want.Power[i]) {
			t.Fatalf("%s: Power[%d] = %v want %v", what, i, got.Power[i], want.Power[i])
		}
		if math.Float64bits(got.Freq[i]) != math.Float64bits(want.Freq[i]) {
			t.Fatalf("%s: Freq[%d] = %v want %v", what, i, got.Freq[i], want.Freq[i])
		}
		if got.Coeff[i] != want.Coeff[i] {
			t.Fatalf("%s: Coeff[%d] = %v want %v", what, i, got.Coeff[i], want.Coeff[i])
		}
	}
	if math.Float64bits(got.DF) != math.Float64bits(want.DF) ||
		math.Float64bits(got.DT) != math.Float64bits(want.DT) || got.N != want.N {
		t.Fatalf("%s: DF/DT/N: got (%v,%v,%d) want (%v,%v,%d)", what,
			got.DF, got.DT, got.N, want.DF, want.DT, want.N)
	}
}

// TestWelchSerialParallelParity: Welch on a pool must be byte-identical
// to the nil-pool (inline, index-order) run for every worker count,
// across segment geometries including odd lengths and overlaps.
func TestWelchSerialParallelParity(t *testing.T) {
	cases := []struct {
		n   int
		opt WelchOptions
	}{
		{1024, WelchOptions{SegmentLen: 256, Overlap: 128}},
		{1024, WelchOptions{SegmentLen: 256, Overlap: 128, Window: Hann, RemoveMean: true}},
		{1000, WelchOptions{SegmentLen: 128, Overlap: 64, PadPow2: true}},
		{777, WelchOptions{SegmentLen: 100, Overlap: 37, Window: Hamming}},
		{777, WelchOptions{SegmentLen: 101, Overlap: 100, RemoveMean: true, PadPow2: true}},
		{513, WelchOptions{SegmentLen: 33, Overlap: 13, Window: Hann}},
		{97, WelchOptions{SegmentLen: 97}},
		{97, WelchOptions{}}, // single whole-series segment
		{64, WelchOptions{SegmentLen: 7, Overlap: 3}},
		{3, WelchOptions{SegmentLen: 2, Overlap: 1}},
		{1, WelchOptions{SegmentLen: 5}},
	}
	for ci, c := range cases {
		x := synthSeries(c.n, uint64(ci)*2654435761+1)
		want := Welch(x, 0.01, c.opt, nil)
		for _, workers := range []int{1, 2, 4, 8} {
			got := Welch(x, 0.01, c.opt, NewPool(workers))
			sameSpectrumBits(t, "case", got, want)
		}
	}
}

// TestWelchSingleSegmentMatchesPeriodogram: with one whole-series
// segment Welch must reproduce the plain periodogram's power bits.
func TestWelchSingleSegmentMatchesPeriodogram(t *testing.T) {
	for _, opt := range []WelchOptions{
		{},
		{Window: Hann, RemoveMean: true},
		{PadPow2: true},
	} {
		x := synthSeries(300, 99)
		w := Welch(x, 0.01, opt, NewPool(4))
		p := Periodogram(x, 0.01, PeriodogramOptions{Window: opt.Window, RemoveMean: opt.RemoveMean, PadPow2: opt.PadPow2})
		if len(w.Power) != len(p.Power) {
			t.Fatalf("opt %+v: %d bins vs periodogram %d", opt, len(w.Power), len(p.Power))
		}
		for i := range p.Power {
			if math.Float64bits(w.Power[i]) != math.Float64bits(p.Power[i]) {
				t.Fatalf("opt %+v: Power[%d] = %v, periodogram %v", opt, i, w.Power[i], p.Power[i])
			}
		}
	}
}

// TestWelchEmpty covers the degenerate inputs.
func TestWelchEmpty(t *testing.T) {
	if s := Welch(nil, 0.01, WelchOptions{}, nil); len(s.Power) != 0 {
		t.Errorf("empty input: %d power bins", len(s.Power))
	}
	if s := Welch([]float64{1, 2, 3}, 0, WelchOptions{}, NewPool(2)); len(s.Power) != 0 {
		t.Errorf("dt=0: %d power bins", len(s.Power))
	}
}

// TestWelchPeaksSafe: the zero-filled Coeff must be long enough for
// Peaks to read at any bin it selects.
func TestWelchPeaksSafe(t *testing.T) {
	x := synthSeries(512, 7)
	s := Welch(x, 0.01, WelchOptions{SegmentLen: 128, Overlap: 64, RemoveMean: true}, NewPool(4))
	for _, p := range s.Peaks(5, 0) {
		if p.Coeff != 0 {
			t.Errorf("bin %d: Welch Coeff = %v, want zero-filled", p.Bin, p.Coeff)
		}
	}
}

// TestPoolMapCoverage: Map must call fn exactly once per index at every
// worker count, including the degenerate n values.
func TestPoolMapCoverage(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 2, 5, 100} {
			counts := make([]int32, n)
			p.Map(n, func(ws *Workspace, i int) {
				if ws == nil {
					t.Errorf("nil workspace at index %d", i)
				}
				atomic.AddInt32(&counts[i], 1)
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
	// Nil pool runs inline.
	var ran int
	(*Pool)(nil).Map(3, func(ws *Workspace, i int) {
		if i != ran {
			t.Fatalf("nil pool out of order: got %d want %d", i, ran)
		}
		ran++
	})
	if ran != 3 {
		t.Fatalf("nil pool ran %d of 3", ran)
	}
}

// FuzzWelch drives Welch over arbitrary (odd, tiny, misaligned)
// series/segment/overlap geometries: it must never panic, and the
// parallel result must stay bit-identical to the serial one.
func FuzzWelch(f *testing.F) {
	f.Add(100, 32, 16, 0, uint64(1))
	f.Add(777, 101, 100, 1, uint64(2))
	f.Add(33, 7, 3, 2, uint64(3))
	f.Add(1, 0, -5, 0, uint64(4))
	f.Add(513, 512, 511, 1, uint64(5))
	f.Fuzz(func(t *testing.T, n, segLen, overlap, mode int, seed uint64) {
		if n < 0 {
			n = -n
		}
		n = n%2048 + 1
		opt := WelchOptions{
			SegmentLen: segLen % 4096,
			Overlap:    overlap % 4096,
			Window:     Window(mode % 3),
			RemoveMean: mode&4 != 0,
			PadPow2:    mode&8 != 0,
		}
		x := synthSeries(n, seed)
		want := Welch(x, 0.01, opt, nil)
		got := Welch(x, 0.01, opt, NewPool(4))
		if len(got.Power) != len(want.Power) {
			t.Fatalf("parallel %d bins, serial %d", len(got.Power), len(want.Power))
		}
		for i := range want.Power {
			if math.Float64bits(got.Power[i]) != math.Float64bits(want.Power[i]) {
				t.Fatalf("Power[%d] = %v want %v", i, got.Power[i], want.Power[i])
			}
		}
		for _, v := range want.Power {
			if math.IsNaN(v) {
				t.Fatal("NaN power")
			}
		}
	})
}
