package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n²) reference transform.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			sum += x[j] * cmplx.Rect(1, angle)
		}
		out[k] = sum
	}
	return out
}

func maxErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if e := cmplx.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func randComplex(r *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.NormFloat64(), r.NormFloat64())
	}
	return x
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 16, 17, 31, 32, 33, 64, 100, 128, 255} {
		x := randComplex(r, n)
		got := FFT(x)
		want := naiveDFT(x)
		if e := maxErr(got, want); e > 1e-8*float64(n) {
			t.Errorf("n=%d: max error %g", n, e)
		}
	}
}

func TestFFTEmpty(t *testing.T) {
	if got := FFT(nil); got != nil {
		t.Errorf("FFT(nil) = %v", got)
	}
	if got := IFFT(nil); got != nil {
		t.Errorf("IFFT(nil) = %v", got)
	}
}

func TestFFTDoesNotMutateInput(t *testing.T) {
	x := []complex128{1, 2, 3, 4}
	FFT(x)
	IFFT(x)
	for i, v := range []complex128{1, 2, 3, 4} {
		if x[i] != v {
			t.Fatalf("input mutated: %v", x)
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 5, 8, 13, 64, 100, 256} {
		x := randComplex(r, n)
		back := IFFT(FFT(x))
		if e := maxErr(x, back); e > 1e-9*float64(n) {
			t.Errorf("n=%d: roundtrip error %g", n, e)
		}
	}
}

func TestFFTImpulse(t *testing.T) {
	// DFT of a unit impulse is all-ones.
	x := make([]complex128, 16)
	x[0] = 1
	for i, v := range FFT(x) {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTPureTone(t *testing.T) {
	// A pure complex exponential concentrates in a single bin.
	n, k := 64, 5
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Rect(1, 2*math.Pi*float64(k)*float64(i)/float64(n))
	}
	X := FFT(x)
	for i, v := range X {
		want := complex(0, 0)
		if i == k {
			want = complex(float64(n), 0)
		}
		if cmplx.Abs(v-want) > 1e-9 {
			t.Fatalf("bin %d = %v, want %v", i, v, want)
		}
	}
}

func TestFFTLinearity(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	x := randComplex(r, 48) // exercises Bluestein
	y := randComplex(r, 48)
	sum := make([]complex128, 48)
	for i := range sum {
		sum[i] = 2*x[i] + 3i*y[i]
	}
	X, Y, S := FFT(x), FFT(y), FFT(sum)
	for i := range S {
		want := 2*X[i] + 3i*Y[i]
		if cmplx.Abs(S[i]-want) > 1e-8 {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}

func TestParseval(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, n := range []int{32, 50} {
		x := randComplex(r, n)
		X := FFT(x)
		var et, ef float64
		for i := range x {
			et += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
			ef += real(X[i])*real(X[i]) + imag(X[i])*imag(X[i])
		}
		if math.Abs(et-ef/float64(n)) > 1e-8*et {
			t.Errorf("n=%d: Parseval violated: %g vs %g", n, et, ef/float64(n))
		}
	}
}

func TestFFTRealConjugateSymmetry(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	x := make([]float64, 64)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	X := FFTReal(x)
	for k := 1; k < 32; k++ {
		if cmplx.Abs(X[k]-cmplx.Conj(X[64-k])) > 1e-9 {
			t.Fatalf("conjugate symmetry violated at bin %d", k)
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024, 1024: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestFFT2DMatchesSeparableNaive(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	rows, cols := 8, 4
	m := randComplex(r, rows*cols)
	got := FFT2D(m, rows, cols)
	// Naive: row DFTs then column DFTs.
	want := make([]complex128, rows*cols)
	for rr := 0; rr < rows; rr++ {
		copy(want[rr*cols:(rr+1)*cols], naiveDFT(m[rr*cols:(rr+1)*cols]))
	}
	col := make([]complex128, rows)
	for c := 0; c < cols; c++ {
		for rr := 0; rr < rows; rr++ {
			col[rr] = want[rr*cols+c]
		}
		fc := naiveDFT(col)
		for rr := 0; rr < rows; rr++ {
			want[rr*cols+c] = fc[rr]
		}
	}
	if e := maxErr(got, want); e > 1e-8 {
		t.Errorf("FFT2D error %g", e)
	}
}

func TestFFT2DShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on shape mismatch")
		}
	}()
	FFT2D(make([]complex128, 7), 2, 4)
}

func TestQuickFFTRoundtrip(t *testing.T) {
	f := func(re, im []float64) bool {
		n := len(re)
		if len(im) < n {
			n = len(im)
		}
		if n == 0 {
			return true
		}
		if n > 512 {
			n = 512
		}
		x := make([]complex128, n)
		for i := 0; i < n; i++ {
			rr, ii := re[i], im[i]
			if math.IsNaN(rr) || math.IsInf(rr, 0) {
				rr = 0
			}
			if math.IsNaN(ii) || math.IsInf(ii, 0) {
				ii = 0
			}
			// clamp to keep absolute tolerance meaningful
			rr = math.Max(-1e6, math.Min(1e6, rr))
			ii = math.Max(-1e6, math.Min(1e6, ii))
			x[i] = complex(rr, ii)
		}
		back := IFFT(FFT(x))
		return maxErr(x, back) <= 1e-6*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
