package dsp

// WelchOptions configure Welch's averaged-periodogram estimate.
type WelchOptions struct {
	// SegmentLen is the samples per segment. <= 0 (or longer than the
	// input) selects a single segment spanning the whole series, making
	// Welch degenerate to the plain periodogram's power estimate.
	SegmentLen int
	// Overlap is the samples shared by successive segments (e.g.
	// SegmentLen/2 for the usual 50%). Clamped to [0, SegmentLen-1].
	Overlap int
	// Window, RemoveMean, PadPow2 apply to each segment exactly as in
	// PeriodogramOptions.
	Window     Window
	RemoveMean bool
	PadPow2    bool
}

// Welch estimates the power spectrum by averaging the periodograms of
// (possibly overlapping) segments — the variance-reduced estimate used
// for long captures, where a single periodogram is noisy. Segments are
// computed on the pool (nil runs them inline) into per-segment buffers
// and merged by summing powers in segment-index order, so the result is
// byte-identical for every worker count.
//
// The averaged estimate has no meaningful phase, so Coeff is zero-filled
// (present, for Peaks' sake, but carrying no reconstruction
// information). With a single segment, Power equals the plain
// periodogram's bit for bit.
func Welch(x []float64, dt float64, opt WelchOptions, pool *Pool) *Spectrum {
	if len(x) == 0 || dt <= 0 {
		return &Spectrum{DT: dt}
	}
	segLen := opt.SegmentLen
	if segLen <= 0 || segLen > len(x) {
		segLen = len(x)
	}
	overlap := opt.Overlap
	if overlap < 0 {
		overlap = 0
	}
	if overlap >= segLen {
		overlap = segLen - 1
	}
	step := segLen - overlap
	var starts []int
	for s := 0; s+segLen <= len(x); s += step {
		starts = append(starts, s)
	}
	if len(starts) == 0 {
		starts = []int{0}
		segLen = len(x)
	}

	popt := PeriodogramOptions{Window: opt.Window, RemoveMean: opt.RemoveMean, PadPow2: opt.PadPow2}
	m := segLen
	if opt.PadPow2 {
		m = NextPow2(segLen)
	}
	half := m/2 + 1

	// Per-segment power buffers: the workspace's spectrum is overwritten
	// by the next segment on the same worker, so each segment copies its
	// powers out before releasing the workspace.
	powers := make([][]float64, len(starts))
	pool.Map(len(starts), func(ws *Workspace, i int) {
		seg := x[starts[i] : starts[i]+segLen]
		s := ws.Periodogram(seg, dt, popt)
		p := make([]float64, half)
		copy(p, s.Power)
		powers[i] = p
	})

	out := &Spectrum{
		Freq:  make([]float64, half),
		Power: make([]float64, half),
		Coeff: make([]complex128, half),
		DF:    1 / (float64(m) * dt),
		N:     len(x),
		DT:    dt,
	}
	for k := 0; k < half; k++ {
		out.Freq[k] = float64(k) * out.DF
		var sum float64
		for _, p := range powers {
			sum += p[k]
		}
		out.Power[k] = sum / float64(len(powers))
	}
	return out
}
