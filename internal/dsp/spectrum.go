package dsp

import (
	"math"
	"math/cmplx"
	"sort"
)

// Window identifies a tapering window applied before the periodogram.
type Window int

// Supported windows.
const (
	Rectangular Window = iota
	Hann
	Hamming
)

// Apply returns x multiplied by the window, leaving x unchanged.
func (w Window) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	w.applyTo(out)
	return out
}

// applyTo multiplies x by the window in place.
func (w Window) applyTo(x []float64) {
	if len(x) < 2 {
		// A one-sample window is identically 1 for every taper; the
		// general formula would divide by len(x)-1 = 0.
		return
	}
	n := float64(len(x) - 1)
	for i, v := range x {
		var g float64
		switch w {
		case Hann:
			g = 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/n)
		case Hamming:
			g = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/n)
		default:
			g = 1
		}
		x[i] = v * g
	}
}

// Spectrum is a one-sided power spectrum of a uniformly sampled signal,
// together with the complex Fourier coefficients needed to reconstruct the
// signal (equation 2 of the paper).
type Spectrum struct {
	// Freq[i] is the frequency of bin i in Hz, from 0 (DC) upward.
	Freq []float64
	// Power[i] = |X[i]|², the paper's (N·KB/s)² units when the input is a
	// KB/s bandwidth series.
	Power []float64
	// Coeff[i] = X[i]/N, the complex Fourier-series coefficient a_i.
	Coeff []complex128
	// DF is the frequency resolution (Hz per bin).
	DF float64
	// N is the number of input samples before padding.
	N int
	// DT is the sample spacing in seconds.
	DT float64
}

// PeriodogramOptions control Periodogram.
type PeriodogramOptions struct {
	// Window tapering applied before the FFT.
	Window Window
	// RemoveMean subtracts the sample mean first, suppressing the DC spike
	// so that low-frequency structure is visible. The removed mean is
	// still reported as the DC coefficient so reconstruction works.
	RemoveMean bool
	// PadPow2 zero-pads the signal to the next power of two, which both
	// speeds the FFT and interpolates the spectrum.
	PadPow2 bool
}

// Periodogram computes the one-sided power spectrum of x sampled every dt
// seconds. This mirrors the paper's analysis: the input is the 10 ms-binned
// instantaneous average bandwidth, and the result is the periodogram whose
// spikes characterize the program's periodicity.
//
// Each call allocates a fresh Spectrum; analyses that compute spectra in
// a loop (sliding windows, farm sweeps) should reuse a Workspace instead.
func Periodogram(x []float64, dt float64, opt PeriodogramOptions) *Spectrum {
	var ws Workspace
	return ws.Periodogram(x, dt, opt)
}

// Workspace owns the scratch and output buffers of a periodogram. The
// zero value is ready to use; buffers grow to the largest size seen and
// are reused, so repeated same-size spectra allocate nothing. The
// *Spectrum returned by Workspace.Periodogram aliases the workspace and
// is overwritten by the next call.
type Workspace struct {
	work []float64 // mean-removed, windowed, zero-padded input
	xbuf []complex128
	spec Spectrum
}

// Periodogram is the scratch-reusing form of the package-level function.
func (ws *Workspace) Periodogram(x []float64, dt float64, opt PeriodogramOptions) *Spectrum {
	n := len(x)
	s := &ws.spec
	if n == 0 || dt <= 0 {
		*s = Spectrum{DT: dt}
		return s
	}
	mean := 0.0
	if opt.RemoveMean {
		for _, v := range x {
			mean += v
		}
		mean /= float64(n)
	}
	m := n
	if opt.PadPow2 {
		m = NextPow2(n)
	}
	ws.work = growF(ws.work, m)
	work := ws.work
	for i, v := range x {
		work[i] = v - mean
	}
	for i := n; i < m; i++ {
		work[i] = 0
	}
	if opt.Window != Rectangular {
		opt.Window.applyTo(work[:n])
	}
	ws.xbuf = growC(ws.xbuf, m)
	X := ws.xbuf
	FFTRealInto(X, work)
	half := m/2 + 1
	s.Freq = growF(s.Freq, half)
	s.Power = growF(s.Power, half)
	s.Coeff = growC(s.Coeff, half)
	s.DF = 1 / (float64(m) * dt)
	s.N = n
	s.DT = dt
	for i := 0; i < half; i++ {
		s.Freq[i] = float64(i) * s.DF
		s.Power[i] = real(X[i])*real(X[i]) + imag(X[i])*imag(X[i])
		s.Coeff[i] = X[i] / complex(float64(m), 0)
	}
	// Restore the removed mean as the DC coefficient.
	s.Coeff[0] += complex(mean, 0)
	s.Power[0] = cmplx.Abs(s.Coeff[0]*complex(float64(m), 0)) * cmplx.Abs(s.Coeff[0]*complex(float64(m), 0))
	return s
}

// growF returns s resized to length n, reusing its backing array when
// large enough.
func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growC is growF for complex slices.
func growC(s []complex128, n int) []complex128 {
	if cap(s) < n {
		return make([]complex128, n)
	}
	return s[:n]
}

// Peak is a spectral spike: a local maximum of the power spectrum.
type Peak struct {
	Bin   int
	Freq  float64
	Power float64
	Coeff complex128
}

// Peaks returns the k strongest local maxima above DC, strongest first.
// A bin is a local maximum if its power exceeds both neighbors'. Peaks
// closer than minSepHz to an already-selected stronger peak are skipped,
// which collapses spectral leakage side lobes into their parent spike.
func (s *Spectrum) Peaks(k int, minSepHz float64) []Peak {
	type cand struct {
		bin int
		pow float64
	}
	var cands []cand
	for i := 1; i < len(s.Power)-1; i++ {
		if s.Power[i] > s.Power[i-1] && s.Power[i] >= s.Power[i+1] {
			cands = append(cands, cand{i, s.Power[i]})
		}
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].pow != cands[b].pow {
			return cands[a].pow > cands[b].pow
		}
		return cands[a].bin < cands[b].bin
	})
	var peaks []Peak
	for _, c := range cands {
		if len(peaks) == k {
			break
		}
		tooClose := false
		for _, p := range peaks {
			if math.Abs(s.Freq[c.bin]-p.Freq) < minSepHz {
				tooClose = true
				break
			}
		}
		if tooClose {
			continue
		}
		peaks = append(peaks, Peak{Bin: c.bin, Freq: s.Freq[c.bin], Power: c.pow, Coeff: s.Coeff[c.bin]})
	}
	return peaks
}

// DominantFreq returns the frequency of the strongest non-DC spike, or 0
// if the spectrum has no interior local maximum.
func (s *Spectrum) DominantFreq() float64 {
	p := s.Peaks(1, 0)
	if len(p) == 0 {
		return 0
	}
	return p[0].Freq
}

// TotalPower returns the sum of Power over all non-DC bins.
func (s *Spectrum) TotalPower() float64 {
	var sum float64
	for i := 1; i < len(s.Power); i++ {
		sum += s.Power[i]
	}
	return sum
}

// BandPower sums Power over bins with lo ≤ Freq < hi (excluding DC).
func (s *Spectrum) BandPower(lo, hi float64) float64 {
	var sum float64
	for i := 1; i < len(s.Power); i++ {
		if s.Freq[i] >= lo && s.Freq[i] < hi {
			sum += s.Power[i]
		}
	}
	return sum
}

// Slice returns frequencies and powers restricted to [0, maxHz], the form
// the paper plots (e.g. figure 11's 0–0.1, 0–1 and 0–20 Hz views).
func (s *Spectrum) Slice(maxHz float64) (freq, power []float64) {
	for i, f := range s.Freq {
		if f > maxHz {
			break
		}
		freq = append(freq, f)
		power = append(power, s.Power[i])
	}
	return freq, power
}
