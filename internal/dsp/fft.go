// Package dsp implements the signal-processing machinery the paper's
// analysis relies on: a fast Fourier transform (radix-2 with a Bluestein
// fallback for arbitrary lengths), window functions, the periodogram power
// spectrum of the windowed instantaneous bandwidth, and spectral peak
// ("spike") extraction used to build the analytic traffic models of §7.2.
package dsp

import (
	"math"
	"math/bits"
	"math/cmplx"
	"sync"
)

// fftPlan caches the size-dependent precomputation of the radix-2
// transform: the bit-reversal permutation and the forward twiddle factors
// of every stage, packed stage after stage (half(2) + half(4) + … +
// half(n) = n−1 entries). Plans are immutable once built and shared by
// every goroutine transforming that size, so the farm's parallel workers
// pay the trigonometry once per size per process.
type fftPlan struct {
	n    int
	perm []int32      // perm[i] = bit-reverse of i
	tw   []complex128 // exp(−2πi·j/size), packed per stage
}

var planCache sync.Map // int -> *fftPlan

func planFor(n int) *fftPlan {
	if v, ok := planCache.Load(n); ok {
		return v.(*fftPlan)
	}
	p := &fftPlan{n: n, perm: make([]int32, n), tw: make([]complex128, n-1)}
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		p.perm[i] = int32(bits.Reverse64(uint64(i)) >> shift)
	}
	off := 0
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		for j := 0; j < half; j++ {
			p.tw[off+j] = cmplx.Rect(1, -2*math.Pi*float64(j)/float64(size))
		}
		off += half
	}
	v, _ := planCache.LoadOrStore(n, p)
	return v.(*fftPlan)
}

// FFT returns the discrete Fourier transform of x:
//
//	X[k] = Σ_n x[n]·exp(−2πi·kn/N)
//
// The input is not modified. Any length is accepted: powers of two use the
// iterative radix-2 algorithm, other lengths use Bluestein's algorithm.
// An empty input returns an empty slice.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := append([]complex128(nil), x...)
	if n&(n-1) == 0 {
		fftRadix2(out, false)
		return out
	}
	return bluestein(out, false)
}

// IFFT returns the inverse DFT of X, normalized by 1/N, so that
// IFFT(FFT(x)) == x up to rounding.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := append([]complex128(nil), x...)
	if n&(n-1) == 0 {
		fftRadix2(out, true)
	} else {
		out = bluestein(out, true)
	}
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// fftRadix2 computes an in-place unnormalized DFT (or conjugate DFT when
// inverse is true) of a power-of-two length slice, using the cached plan
// for its size. Inverse twiddles are the conjugates of the cached forward
// table.
func fftRadix2(a []complex128, inverse bool) {
	n := len(a)
	if n == 1 {
		return
	}
	p := planFor(n)
	for i, ji := range p.perm {
		if j := int(ji); j > i {
			a[i], a[j] = a[j], a[i]
		}
	}
	off := 0
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		tw := p.tw[off : off+half]
		off += half
		for start := 0; start < n; start += size {
			for j := 0; j < half; j++ {
				w := tw[j]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				u := a[start+j]
				v := a[start+j+half] * w
				a[start+j] = u + v
				a[start+j+half] = u - v
			}
		}
	}
}

// bluesteinPlan caches the length-dependent precomputation of the
// chirp-z transform: the chirp sequence and the forward FFT of the
// (fixed) b sequence, per direction.
type bluesteinPlan struct {
	m     int
	chirp []complex128
	bHat  []complex128 // FFT of b, computed once
}

var bluesteinCache sync.Map // [n, inverse] -> *bluesteinPlan

func bluesteinPlanFor(n int, inverse bool) *bluesteinPlan {
	key := [2]int{n, 0}
	if inverse {
		key[1] = 1
	}
	if v, ok := bluesteinCache.Load(key); ok {
		return v.(*bluesteinPlan)
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// chirp[k] = exp(sign·πi·k²/n); k² mod 2n avoids precision loss.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplx.Rect(1, sign*math.Pi*float64(kk)/float64(n))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	fftRadix2(b, false)
	p := &bluesteinPlan{m: m, chirp: chirp, bHat: b}
	v, _ := bluesteinCache.LoadOrStore(key, p)
	return v.(*bluesteinPlan)
}

// bluestein computes a DFT of arbitrary length via the chirp-z transform,
// using two power-of-two FFTs per call (the third, of the fixed b
// sequence, comes from the per-length plan cache).
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	p := bluesteinPlanFor(n, inverse)
	a := make([]complex128, p.m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * p.chirp[k]
	}
	fftRadix2(a, false)
	for i := range a {
		a[i] *= p.bHat[i]
	}
	fftRadix2(a, true)
	out := make([]complex128, n)
	scale := complex(1/float64(p.m), 0)
	for k := 0; k < n; k++ {
		out[k] = a[k] * scale * p.chirp[k]
	}
	return out
}

// FFTReal transforms a real-valued signal, returning the full complex
// spectrum of the same length. Power-of-two lengths use the packed
// algorithm: the N reals are packed into an N/2-point complex signal,
// transformed, and unpacked with one twiddle pass — half the butterflies
// of the generic path (see DESIGN.md §8 for the derivation).
func FFTReal(x []float64) []complex128 {
	out := make([]complex128, len(x))
	FFTRealInto(out, x)
	return out
}

// FFTRealInto is FFTReal writing the length-len(x) spectrum into out
// (which must have the same length), allocating only the packed
// half-length scratch for power-of-two inputs.
func FFTRealInto(out []complex128, x []float64) {
	n := len(x)
	if len(out) != n {
		panic("dsp: FFTRealInto length mismatch")
	}
	if n == 0 {
		return
	}
	if n&(n-1) != 0 || n < 4 {
		// Odd or tiny lengths: no packed split; use the generic path.
		for i, v := range x {
			out[i] = complex(v, 0)
		}
		if n&(n-1) == 0 {
			fftRadix2(out, false)
			return
		}
		copy(out, bluestein(out, false))
		return
	}
	h := n / 2
	// Pack x into an h-point complex signal z[k] = x[2k] + i·x[2k+1] and
	// transform it once.
	z := out[:h] // reuse the front half of out as the packed scratch
	for k := 0; k < h; k++ {
		z[k] = complex(x[2*k], x[2*k+1])
	}
	fftRadix2(z, false)
	// Unpack: with E and O the DFTs of the even and odd subsequences,
	//   E[k] = (Z[k] + conj(Z[h−k]))/2
	//   O[k] = −i·(Z[k] − conj(Z[h−k]))/2
	//   X[k] = E[k] + w^k·O[k],  X[k+h] = E[k] − w^k·O[k],  w = e^(−2πi/n)
	// and, by conjugate symmetry, E[h−k] = conj(E[k]), O[h−k] = conj(O[k]).
	// Each {k, h−k} pair is unpacked together so the transform runs in
	// place over out (the pair's reads happen before its writes, and no
	// other pair touches those slots).
	z0 := z[0]
	tw := planFor(n).tw[h-1:] // last stage of the size-n plan: w^0..w^(h−1)
	for k := 1; k <= h/2; k++ {
		zk, zc := z[k], cmplx.Conj(z[h-k])
		e := (zk + zc) * 0.5
		o := (zk - zc) * complex(0, -0.5)
		t := tw[k] * o
		out[k] = e + t
		out[k+h] = e - t
		if k < h-k {
			ec, oc := cmplx.Conj(e), cmplx.Conj(o)
			tc := tw[h-k] * oc
			out[h-k] = ec + tc
			out[h-k+h] = ec - tc
		}
	}
	re, im := real(z0), imag(z0)
	out[0] = complex(re+im, 0)
	out[h] = complex(re-im, 0)
}

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// FFT2D transforms a dense rows×cols matrix stored row-major: first a DFT
// of each row, then of each column. Used as the sequential reference for
// the 2DFFT and T2DFFT kernels. Power-of-two dimensions transform in
// place in the output with one column scratch; other lengths fall back to
// the allocating Bluestein path.
func FFT2D(m []complex128, rows, cols int) []complex128 {
	if len(m) != rows*cols {
		panic("dsp: FFT2D shape mismatch")
	}
	out := make([]complex128, len(m))
	copy(out, m)
	pow2 := func(n int) bool { return n > 0 && n&(n-1) == 0 }
	for r := 0; r < rows; r++ {
		row := out[r*cols : (r+1)*cols]
		if pow2(cols) {
			fftRadix2(row, false)
		} else {
			copy(row, bluestein(row, false))
		}
	}
	col := make([]complex128, rows)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			col[r] = out[r*cols+c]
		}
		if pow2(rows) {
			fftRadix2(col, false)
		} else {
			copy(col, bluestein(col, false))
		}
		for r := 0; r < rows; r++ {
			out[r*cols+c] = col[r]
		}
	}
	return out
}
