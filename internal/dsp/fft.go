// Package dsp implements the signal-processing machinery the paper's
// analysis relies on: a fast Fourier transform (radix-2 with a Bluestein
// fallback for arbitrary lengths), window functions, the periodogram power
// spectrum of the windowed instantaneous bandwidth, and spectral peak
// ("spike") extraction used to build the analytic traffic models of §7.2.
package dsp

import (
	"math"
	"math/bits"
	"math/cmplx"
)

// FFT returns the discrete Fourier transform of x:
//
//	X[k] = Σ_n x[n]·exp(−2πi·kn/N)
//
// The input is not modified. Any length is accepted: powers of two use the
// iterative radix-2 algorithm, other lengths use Bluestein's algorithm.
// An empty input returns an empty slice.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := append([]complex128(nil), x...)
	if n&(n-1) == 0 {
		fftRadix2(out, false)
		return out
	}
	return bluestein(out, false)
}

// IFFT returns the inverse DFT of X, normalized by 1/N, so that
// IFFT(FFT(x)) == x up to rounding.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	out := append([]complex128(nil), x...)
	if n&(n-1) == 0 {
		fftRadix2(out, true)
	} else {
		out = bluestein(out, true)
	}
	inv := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= inv
	}
	return out
}

// fftRadix2 computes an in-place unnormalized DFT (or conjugate DFT when
// inverse is true) of a power-of-two length slice.
func fftRadix2(a []complex128, inverse bool) {
	n := len(a)
	if n == 1 {
		return
	}
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			a[i], a[j] = a[j], a[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		wstep := cmplx.Rect(1, step)
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for j := 0; j < half; j++ {
				u := a[start+j]
				v := a[start+j+half] * w
				a[start+j] = u + v
				a[start+j+half] = u - v
				w *= wstep
			}
		}
	}
}

// bluestein computes a DFT of arbitrary length via the chirp-z transform,
// using three power-of-two FFTs.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// chirp[k] = exp(sign·πi·k²/n)
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k² mod 2n avoids precision loss for large k.
		kk := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplx.Rect(1, sign*math.Pi*float64(kk)/float64(n))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	fftRadix2(a, false)
	fftRadix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	fftRadix2(a, true)
	out := make([]complex128, n)
	scale := complex(1/float64(m), 0)
	for k := 0; k < n; k++ {
		out[k] = a[k] * scale * chirp[k]
	}
	return out
}

// FFTReal transforms a real-valued signal, returning the full complex
// spectrum of the same length.
func FFTReal(x []float64) []complex128 {
	cx := make([]complex128, len(x))
	for i, v := range x {
		cx[i] = complex(v, 0)
	}
	return FFT(cx)
}

// NextPow2 returns the smallest power of two ≥ n (and ≥ 1).
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// FFT2D transforms a dense rows×cols matrix stored row-major: first a DFT
// of each row, then of each column. Used as the sequential reference for
// the 2DFFT and T2DFFT kernels.
func FFT2D(m []complex128, rows, cols int) []complex128 {
	if len(m) != rows*cols {
		panic("dsp: FFT2D shape mismatch")
	}
	out := make([]complex128, len(m))
	for r := 0; r < rows; r++ {
		copy(out[r*cols:(r+1)*cols], FFT(m[r*cols:(r+1)*cols]))
	}
	col := make([]complex128, rows)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			col[r] = out[r*cols+c]
		}
		fc := FFT(col)
		for r := 0; r < rows; r++ {
			out[r*cols+c] = fc[r]
		}
	}
	return out
}
