package dsp

import (
	"math"
	"testing"
)

// sine builds n samples of amp·sin(2πf·t)+offset at spacing dt.
func sine(n int, dt, f, amp, offset float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = offset + amp*math.Sin(2*math.Pi*f*float64(i)*dt)
	}
	return x
}

func TestPeriodogramFindsTone(t *testing.T) {
	// 5 Hz tone sampled at 100 Hz (10 ms bins, like the paper).
	dt := 0.01
	x := sine(4096, dt, 5, 1, 0)
	s := Periodogram(x, dt, PeriodogramOptions{})
	got := s.DominantFreq()
	if math.Abs(got-5) > 2*s.DF {
		t.Errorf("dominant = %v Hz, want 5 (df=%v)", got, s.DF)
	}
}

func TestPeriodogramRemoveMeanKeepsDCCoeff(t *testing.T) {
	dt := 0.01
	x := sine(2048, dt, 2, 1, 10)
	s := Periodogram(x, dt, PeriodogramOptions{RemoveMean: true})
	if math.Abs(real(s.Coeff[0])-10) > 0.01 {
		t.Errorf("DC coeff = %v, want ≈10", s.Coeff[0])
	}
	if got := s.DominantFreq(); math.Abs(got-2) > 2*s.DF {
		t.Errorf("dominant = %v, want 2", got)
	}
}

func TestPeriodogramPadPow2(t *testing.T) {
	dt := 0.01
	x := sine(1000, dt, 5, 1, 0)
	s := Periodogram(x, dt, PeriodogramOptions{PadPow2: true})
	if len(s.Power) != 1024/2+1 {
		t.Errorf("bins = %d, want 513", len(s.Power))
	}
	if math.Abs(s.DominantFreq()-5) > 3*s.DF {
		t.Errorf("dominant = %v", s.DominantFreq())
	}
}

func TestPeriodogramEmpty(t *testing.T) {
	s := Periodogram(nil, 0.01, PeriodogramOptions{})
	if len(s.Power) != 0 || s.DominantFreq() != 0 {
		t.Errorf("empty spectrum = %+v", s)
	}
}

func TestPeaksOrderingAndSeparation(t *testing.T) {
	dt := 0.01
	n := 8192
	x := make([]float64, n)
	for i := range x {
		ts := float64(i) * dt
		x[i] = 3*math.Sin(2*math.Pi*5*ts) + 1*math.Sin(2*math.Pi*12*ts) + 0.5*math.Sin(2*math.Pi*20*ts)
	}
	s := Periodogram(x, dt, PeriodogramOptions{})
	peaks := s.Peaks(3, 1.0)
	if len(peaks) != 3 {
		t.Fatalf("got %d peaks", len(peaks))
	}
	wants := []float64{5, 12, 20}
	for i, w := range wants {
		if math.Abs(peaks[i].Freq-w) > 3*s.DF {
			t.Errorf("peak %d at %v Hz, want %v", i, peaks[i].Freq, w)
		}
	}
	if !(peaks[0].Power > peaks[1].Power && peaks[1].Power > peaks[2].Power) {
		t.Error("peaks not in descending power order")
	}
}

func TestPeaksMinSeparationCollapsesLeakage(t *testing.T) {
	// A tone that falls between bins leaks into neighbors; with a minimum
	// separation those side bins must not appear as separate peaks.
	dt := 0.01
	x := sine(1000, dt, 5.03, 1, 0) // non-integer number of cycles
	s := Periodogram(x, dt, PeriodogramOptions{PadPow2: true})
	peaks := s.Peaks(5, 2.0)
	for i := 1; i < len(peaks); i++ {
		if math.Abs(peaks[i].Freq-peaks[0].Freq) < 2.0 {
			t.Errorf("leakage peak at %v too close to %v", peaks[i].Freq, peaks[0].Freq)
		}
	}
}

func TestHarmonicSeries(t *testing.T) {
	// A periodic pulse train has spikes at the fundamental and harmonics —
	// the structure the paper reports for SEQ and HIST.
	dt := 0.01
	n := 4096
	x := make([]float64, n)
	period := 25 // 4 Hz at 10 ms bins
	for i := range x {
		if i%period == 0 {
			x[i] = 100
		}
	}
	s := Periodogram(x, dt, PeriodogramOptions{RemoveMean: true})
	peaks := s.Peaks(4, 1.0)
	if len(peaks) < 3 {
		t.Fatalf("too few peaks: %d", len(peaks))
	}
	// Every strong peak should sit near a multiple of 4 Hz.
	for _, p := range peaks {
		mult := math.Round(p.Freq / 4)
		if mult < 1 || math.Abs(p.Freq-4*mult) > 3*s.DF {
			t.Errorf("peak at %v Hz not a 4 Hz harmonic", p.Freq)
		}
	}
}

func TestBandAndTotalPower(t *testing.T) {
	dt := 0.01
	x := sine(4096, dt, 5, 1, 0)
	s := Periodogram(x, dt, PeriodogramOptions{})
	tot := s.TotalPower()
	band := s.BandPower(4, 6)
	if band <= 0 || tot <= 0 {
		t.Fatal("nonpositive power")
	}
	if band/tot < 0.95 {
		t.Errorf("band fraction = %v, want ≥0.95", band/tot)
	}
	if out := s.BandPower(20, 30); out/tot > 0.01 {
		t.Errorf("out-of-band fraction = %v", out/tot)
	}
}

func TestSlice(t *testing.T) {
	dt := 0.01
	x := sine(1024, dt, 5, 1, 0)
	s := Periodogram(x, dt, PeriodogramOptions{})
	freq, power := s.Slice(10)
	if len(freq) != len(power) || len(freq) == 0 {
		t.Fatal("bad slice")
	}
	if freq[len(freq)-1] > 10 {
		t.Errorf("slice exceeds 10 Hz: %v", freq[len(freq)-1])
	}
	// 10 Hz of a 50 Hz-wide spectrum ≈ one fifth of the bins.
	if got, want := len(freq), len(s.Freq)/5; got < want-2 || got > want+2 {
		t.Errorf("slice bins = %d, want ≈%d", got, want)
	}
}

func TestWindows(t *testing.T) {
	x := []float64{1, 1, 1, 1, 1}
	hann := Hann.Apply(x)
	if hann[0] > 1e-12 || hann[4] > 1e-12 {
		t.Errorf("Hann endpoints = %v, %v", hann[0], hann[4])
	}
	if math.Abs(hann[2]-1) > 1e-12 {
		t.Errorf("Hann midpoint = %v", hann[2])
	}
	ham := Hamming.Apply(x)
	if math.Abs(ham[0]-0.08) > 1e-12 {
		t.Errorf("Hamming endpoint = %v", ham[0])
	}
	rect := Rectangular.Apply(x)
	for i := range rect {
		if rect[i] != 1 {
			t.Errorf("Rectangular changed sample %d", i)
		}
	}
}

func TestHannReducesLeakage(t *testing.T) {
	dt := 0.01
	x := sine(1000, dt, 5.037, 1, 0)
	rect := Periodogram(x, dt, PeriodogramOptions{})
	hann := Periodogram(x, dt, PeriodogramOptions{Window: Hann})
	// Compare energy far from the tone relative to the peak.
	ratio := func(s *Spectrum) float64 {
		peak := s.Peaks(1, 0)[0]
		return s.BandPower(15, 40) / peak.Power
	}
	if ratio(hann) >= ratio(rect) {
		t.Errorf("Hann did not reduce leakage: %g vs %g", ratio(hann), ratio(rect))
	}
}
