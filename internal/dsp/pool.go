package dsp

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded worker pool for spectral work. Each worker checks a
// Workspace out of an internal free list for the duration of a Map call,
// so repeated parallel spectra reuse scratch instead of allocating —
// the parallel analogue of holding one Workspace in a serial loop.
//
// Determinism contract: Map hands out work by index and callers write
// results into index-addressed slots, so the output of any Map-based
// computation is byte-identical for every worker count, including the
// nil pool (which runs inline, in index order).
type Pool struct {
	workers int
	ws      sync.Pool
}

// NewPool returns a pool bounded at workers goroutines; workers <= 0
// selects GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the pool bound; a nil pool reports 1 (inline).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Map invokes fn(ws, i) for every i in [0, n). The Workspace is private
// to the invocation for its duration and is recycled afterwards; fn must
// not retain it or any buffer it returned. A nil or single-worker pool
// runs inline in index order; otherwise the indices are distributed over
// the workers by an atomic counter, and Map returns when all n calls
// have finished.
func (p *Pool) Map(n int, fn func(ws *Workspace, i int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.workers <= 1 || n == 1 {
		ws := p.getWS()
		for i := 0; i < n; i++ {
			fn(ws, i)
		}
		p.putWS(ws)
		return
	}
	workers := min(p.workers, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			ws := p.getWS()
			defer p.putWS(ws)
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(ws, i)
			}
		}()
	}
	wg.Wait()
}

func (p *Pool) getWS() *Workspace {
	if p == nil {
		return &Workspace{}
	}
	if ws, ok := p.ws.Get().(*Workspace); ok {
		return ws
	}
	return &Workspace{}
}

func (p *Pool) putWS(ws *Workspace) {
	if p != nil {
		p.ws.Put(ws)
	}
}
