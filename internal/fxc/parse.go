package fxc

import (
	"fmt"
	"strconv"
	"strings"
)

// The text front-end accepts a miniature HPF-like dialect, one statement
// per line:
//
//	array  a(512,512) real*8 block(rows)
//	array  c(512,512) real*8 block(cols)
//	array  in(64,64)  real*8 serial
//	assign c(i,j) = a(i,j)
//	assign a(i,j) = a(i-1,j)
//	assign a(i,j) = in(i,j)
//	reduce a 2048
//
// Comments start with '!' (Fortran style) or '#'. Subscripts are the
// affine forms i, j, i±c, j±c, or a constant.

// Program is a parsed mini-HPF program: declarations plus statements.
type Program struct {
	Arrays map[string]*Array
	// Stmts holds Assign and Reduce values in source order.
	Stmts []any
	// Texts holds the source line of each statement, for reporting.
	Texts []string
}

// ParseProgram parses the mini-HPF dialect.
func ParseProgram(src string) (*Program, error) {
	p := &Program{Arrays: make(map[string]*Array)}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, "!#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		var err error
		switch fields[0] {
		case "array":
			err = p.parseArray(fields[1:])
		case "assign":
			err = p.parseAssign(strings.TrimSpace(strings.TrimPrefix(line, "assign")), line)
		case "reduce":
			err = p.parseReduce(fields[1:], line)
		default:
			err = fmt.Errorf("unknown keyword %q", fields[0])
		}
		if err != nil {
			return nil, fmt.Errorf("fxc: line %d: %w", lineNo+1, err)
		}
	}
	return p, nil
}

// parseArray handles: name(rows,cols) type dist
func (p *Program) parseArray(fields []string) error {
	if len(fields) != 3 {
		return fmt.Errorf("array wants 'name(r,c) type dist', got %v", fields)
	}
	name, rows, cols, err := parseShape(fields[0])
	if err != nil {
		return err
	}
	if _, dup := p.Arrays[name]; dup {
		return fmt.Errorf("array %q redeclared", name)
	}
	elem, err := parseType(fields[1])
	if err != nil {
		return err
	}
	dist, err := parseDist(fields[2])
	if err != nil {
		return err
	}
	p.Arrays[name] = &Array{Name: name, Rows: rows, Cols: cols, Dist: dist, ElemBytes: elem}
	return nil
}

func parseShape(tok string) (name string, rows, cols int, err error) {
	open := strings.IndexByte(tok, '(')
	if open <= 0 || !strings.HasSuffix(tok, ")") {
		return "", 0, 0, fmt.Errorf("bad shape %q", tok)
	}
	name = tok[:open]
	dims := strings.Split(tok[open+1:len(tok)-1], ",")
	if len(dims) != 2 {
		return "", 0, 0, fmt.Errorf("array %q must be two-dimensional", name)
	}
	rows, err = strconv.Atoi(strings.TrimSpace(dims[0]))
	if err != nil {
		return "", 0, 0, fmt.Errorf("bad rows in %q", tok)
	}
	cols, err = strconv.Atoi(strings.TrimSpace(dims[1]))
	if err != nil {
		return "", 0, 0, fmt.Errorf("bad cols in %q", tok)
	}
	return name, rows, cols, nil
}

func parseType(tok string) (int, error) {
	switch strings.ToLower(tok) {
	case "real*4", "integer*4":
		return 4, nil
	case "real*8", "complex*8", "integer*8":
		return 8, nil
	case "complex*16":
		return 16, nil
	default:
		return 0, fmt.Errorf("unknown type %q", tok)
	}
}

func parseDist(tok string) (Dist, error) {
	switch strings.ToLower(tok) {
	case "block(rows)":
		return DistRows, nil
	case "block(cols)":
		return DistCols, nil
	case "serial":
		return DistSerial, nil
	default:
		return 0, fmt.Errorf("unknown distribution %q (want block(rows), block(cols), serial)", tok)
	}
}

// parseAssign handles: lhs(i,j) = rhs(rsub,csub)
func (p *Program) parseAssign(rest, full string) error {
	lhsTok, rhsTok, ok := strings.Cut(rest, "=")
	if !ok {
		return fmt.Errorf("assign needs '='")
	}
	lhsName, li, lj, err := parseRef(strings.TrimSpace(lhsTok))
	if err != nil {
		return err
	}
	if li != (Affine{CI: 1}) || lj != (Affine{CJ: 1}) {
		return fmt.Errorf("left-hand side must be name(i,j)")
	}
	rhsName, ri, rj, err := parseRef(strings.TrimSpace(rhsTok))
	if err != nil {
		return err
	}
	lhs, ok := p.Arrays[lhsName]
	if !ok {
		return fmt.Errorf("undeclared array %q", lhsName)
	}
	rhs, ok := p.Arrays[rhsName]
	if !ok {
		return fmt.Errorf("undeclared array %q", rhsName)
	}
	p.Stmts = append(p.Stmts, Assign{LHS: lhs, RHS: rhs, RowSub: ri, ColSub: rj})
	p.Texts = append(p.Texts, full)
	return nil
}

// parseRef handles name(sub,sub).
func parseRef(tok string) (name string, row, col Affine, err error) {
	open := strings.IndexByte(tok, '(')
	if open <= 0 || !strings.HasSuffix(tok, ")") {
		return "", Affine{}, Affine{}, fmt.Errorf("bad reference %q", tok)
	}
	name = tok[:open]
	subs := strings.Split(tok[open+1:len(tok)-1], ",")
	if len(subs) != 2 {
		return "", Affine{}, Affine{}, fmt.Errorf("reference %q needs two subscripts", tok)
	}
	row, err = parseAffine(strings.TrimSpace(subs[0]))
	if err != nil {
		return "", Affine{}, Affine{}, err
	}
	col, err = parseAffine(strings.TrimSpace(subs[1]))
	return name, row, col, err
}

// parseAffine handles i, j, i±c, j±c, and plain constants.
func parseAffine(tok string) (Affine, error) {
	if tok == "" {
		return Affine{}, fmt.Errorf("empty subscript")
	}
	var a Affine
	rest := tok
	switch {
	case strings.HasPrefix(rest, "i"):
		a.CI = 1
		rest = rest[1:]
	case strings.HasPrefix(rest, "j"):
		a.CJ = 1
		rest = rest[1:]
	}
	if rest == "" {
		return a, nil
	}
	if a.CI == 0 && a.CJ == 0 {
		c, err := strconv.Atoi(rest)
		if err != nil {
			return Affine{}, fmt.Errorf("bad subscript %q", tok)
		}
		a.C0 = c
		return a, nil
	}
	c, err := strconv.Atoi(rest)
	if err != nil || (rest[0] != '+' && rest[0] != '-') {
		return Affine{}, fmt.Errorf("bad subscript offset %q", tok)
	}
	a.C0 = c
	return a, nil
}

// parseReduce handles: reduce name bytes
func (p *Program) parseReduce(fields []string, full string) error {
	if len(fields) != 2 {
		return fmt.Errorf("reduce wants 'name bytes'")
	}
	arr, ok := p.Arrays[fields[0]]
	if !ok {
		return fmt.Errorf("undeclared array %q", fields[0])
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n <= 0 {
		return fmt.Errorf("bad reduction size %q", fields[1])
	}
	p.Stmts = append(p.Stmts, Reduce{Src: arr, ResultBytes: n})
	p.Texts = append(p.Texts, full)
	return nil
}

// CompileAll compiles every statement for P processors, in order.
func (p *Program) CompileAll(P int) []*Schedule {
	out := make([]*Schedule, len(p.Stmts))
	for i, st := range p.Stmts {
		switch s := st.(type) {
		case Assign:
			out[i] = CompileAssign(s, P)
		case Reduce:
			out[i] = CompileReduce(s, P)
		default:
			panic(fmt.Sprintf("fxc: unknown statement %T", st))
		}
	}
	return out
}
