package fxc

import (
	"strings"
	"testing"

	"fxnet/internal/fx"
)

const sampleProgram = `
! the 2DFFT's communication, in the mini dialect
array a(64,64) complex*8 block(rows)
array c(64,64) complex*8 block(cols)
array in(64,64) real*8 serial
array h(64,64) real*4 block(rows)

assign c(i,j) = a(i,j)      ! redistribution
assign h(i,j) = h(i-1,j)    ! halo shift
assign h(i,j) = in(i,j)     ! sequential input
reduce h 2048               ! histogram-style reduction
`

func TestParseProgram(t *testing.T) {
	p, err := ParseProgram(sampleProgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Arrays) != 4 {
		t.Fatalf("arrays = %d", len(p.Arrays))
	}
	a := p.Arrays["a"]
	if a.Rows != 64 || a.Cols != 64 || a.Dist != DistRows || a.ElemBytes != 8 {
		t.Errorf("a = %+v", a)
	}
	if p.Arrays["c"].Dist != DistCols {
		t.Error("c distribution wrong")
	}
	if p.Arrays["in"].Dist != DistSerial {
		t.Error("in distribution wrong")
	}
	if p.Arrays["h"].ElemBytes != 4 {
		t.Error("real*4 size wrong")
	}
	if len(p.Stmts) != 4 || len(p.Texts) != 4 {
		t.Fatalf("stmts = %d", len(p.Stmts))
	}
}

func TestParsedProgramCompiles(t *testing.T) {
	p, err := ParseProgram(sampleProgram)
	if err != nil {
		t.Fatal(err)
	}
	scheds := p.CompileAll(4)
	wantPatterns := []fx.Pattern{fx.AllToAll, fx.Neighbor, fx.Broadcast, fx.Tree}
	for i, sched := range scheds {
		pat, comm := sched.Classify()
		if !comm {
			t.Fatalf("stmt %d: no communication", i)
		}
		if pat != wantPatterns[i] {
			t.Errorf("stmt %d (%s): pattern %v, want %v", i, p.Texts[i], pat, wantPatterns[i])
		}
	}
	// Reduction carries 3 × 2048 bytes on P=4.
	if got := scheds[3].TotalBytes(); got != 3*2048 {
		t.Errorf("reduce bytes = %d", got)
	}
}

func TestParseSubscripts(t *testing.T) {
	cases := map[string]Affine{
		"i":   {CI: 1},
		"j":   {CJ: 1},
		"i-1": {CI: 1, C0: -1},
		"j+3": {CJ: 1, C0: 3},
		"0":   {},
		"7":   {C0: 7},
	}
	for in, want := range cases {
		got, err := parseAffine(in)
		if err != nil {
			t.Errorf("%q: %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("%q = %+v, want %+v", in, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"unknown keyword":  "frobnicate a b",
		"bad shape":        "array a(64) real*4 block(rows)",
		"bad type":         "array a(4,4) real*3 block(rows)",
		"bad dist":         "array a(4,4) real*4 cyclic",
		"redeclared":       "array a(4,4) real*4 serial\narray a(4,4) real*4 serial",
		"undeclared lhs":   "assign b(i,j) = b(i,j)",
		"undeclared rhs":   "array a(4,4) real*4 serial\nassign a(i,j) = b(i,j)",
		"no equals":        "array a(4,4) real*4 serial\nassign a(i,j) a(i,j)",
		"lhs not identity": "array a(4,4) real*4 serial\nassign a(j,i) = a(i,j)",
		"bad subscript":    "array a(4,4) real*4 serial\nassign a(i,j) = a(i*2,j)",
		"bad reduce size":  "array a(4,4) real*4 serial\nreduce a zero",
		"reduce undecl":    "reduce q 10",
	}
	for name, src := range cases {
		if _, err := ParseProgram(src); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

func TestParseCommentsAndBlank(t *testing.T) {
	p, err := ParseProgram("\n! nothing\n# also nothing\n\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Stmts) != 0 || len(p.Arrays) != 0 {
		t.Errorf("program = %+v", p)
	}
}

func TestParseErrorsIncludeLineNumbers(t *testing.T) {
	_, err := ParseProgram("array a(4,4) real*4 serial\nbogus")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v", err)
	}
}
