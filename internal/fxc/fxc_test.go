package fxc

import (
	"fmt"
	"testing"

	"fxnet/internal/ethernet"
	"fxnet/internal/fx"
	"fxnet/internal/netstack"
	"fxnet/internal/pvm"
	"fxnet/internal/sim"
	"fxnet/internal/trace"
)

func rowsArr(name string, n int) *Array {
	return &Array{Name: name, Rows: n, Cols: n, Dist: DistRows, ElemBytes: 4}
}

func TestOwner(t *testing.T) {
	a := rowsArr("a", 16)
	if a.Owner(4, 0, 15) != 0 || a.Owner(4, 4, 0) != 1 || a.Owner(4, 15, 7) != 3 {
		t.Error("row-block owner wrong")
	}
	c := &Array{Name: "c", Rows: 16, Cols: 16, Dist: DistCols, ElemBytes: 4}
	if c.Owner(4, 15, 0) != 0 || c.Owner(4, 0, 12) != 3 {
		t.Error("col-block owner wrong")
	}
	s := &Array{Name: "s", Rows: 4, Cols: 4, Dist: DistSerial, ElemBytes: 4}
	if s.Owner(4, 3, 3) != 0 {
		t.Error("serial owner wrong")
	}
}

func TestAffine(t *testing.T) {
	if I.At(5, 9) != 5 || J.At(5, 9) != 9 {
		t.Error("identity subscripts wrong")
	}
	if I.Shifted(-1).At(5, 9) != 4 {
		t.Error("shift wrong")
	}
	tr := Affine{CI: 0, CJ: 1} // j as row index
	if tr.At(5, 9) != 9 {
		t.Error("transpose subscript wrong")
	}
}

func TestCompileIdentityNoComm(t *testing.T) {
	a, b := rowsArr("a", 16), rowsArr("b", 16)
	s := CompileAssign(Assign{LHS: b, RHS: a, RowSub: I, ColSub: J}, 4)
	if len(s.Transfers) != 0 {
		t.Fatalf("identity produced transfers: %v", s.Transfers)
	}
	if s.LocalElems != 16*16 {
		t.Errorf("local elems = %d", s.LocalElems)
	}
	if _, comm := s.Classify(); comm {
		t.Error("identity classified as communicating")
	}
}

func TestCompileHaloShiftIsNeighbor(t *testing.T) {
	// B[i,j] = A[i-1,j]: every rank's first owned row comes from the rank
	// below — SOR's boundary exchange, one direction.
	a, b := rowsArr("a", 16), rowsArr("b", 16)
	s := CompileAssign(Assign{LHS: b, RHS: a, RowSub: I.Shifted(-1), ColSub: J}, 4)
	pat, comm := s.Classify()
	if !comm || pat != fx.Neighbor {
		t.Fatalf("shift pattern = %v (comm=%v)", pat, comm)
	}
	// Ranks 1..3 each fetch one 16-element row from below.
	if len(s.Transfers) != 3 {
		t.Fatalf("transfers = %v", s.Transfers)
	}
	for _, tr := range s.Transfers {
		if tr.Dst != tr.Src+1 || tr.Count != 16 {
			t.Errorf("transfer = %+v", tr)
		}
	}
	// Boundary: row −1 does not exist, so rank 0 receives nothing.
	if s.LocalElems != 16*16-16-3*16 {
		t.Errorf("local elems = %d", s.LocalElems)
	}
}

func TestCompileTransposeIsAllToAll(t *testing.T) {
	a, b := rowsArr("a", 16), rowsArr("b", 16)
	s := CompileAssign(Assign{LHS: b, RHS: a, RowSub: Affine{CJ: 1}, ColSub: Affine{CI: 1}}, 4)
	pat, comm := s.Classify()
	if !comm || pat != fx.AllToAll {
		t.Fatalf("transpose pattern = %v", pat)
	}
	if s.Connections() != 12 {
		t.Errorf("connections = %d, want 12", s.Connections())
	}
	// Every off-diagonal block is (16/4)² elements.
	for _, tr := range s.Transfers {
		if tr.Count != 16 {
			t.Errorf("transfer %+v, want 16 elements", tr)
		}
	}
	// This is the paper's O((N/P)²) message: at N=512 it is 128²·8 bytes.
	big := CompileAssign(Assign{
		LHS:    &Array{Name: "B", Rows: 512, Cols: 512, Dist: DistRows, ElemBytes: 8},
		RHS:    &Array{Name: "A", Rows: 512, Cols: 512, Dist: DistRows, ElemBytes: 8},
		RowSub: Affine{CJ: 1}, ColSub: Affine{CI: 1},
	}, 4)
	if got := big.MaxMessageBytes(); got != 128*128*8 {
		t.Errorf("2DFFT transpose message = %d, want 131072", got)
	}
}

func TestCompileRedistributionIsAllToAll(t *testing.T) {
	a := rowsArr("a", 16)
	b := &Array{Name: "b", Rows: 16, Cols: 16, Dist: DistCols, ElemBytes: 4}
	s := CompileAssign(Assign{LHS: b, RHS: a, RowSub: I, ColSub: J}, 4)
	if pat, _ := s.Classify(); pat != fx.AllToAll {
		t.Fatalf("redistribution pattern = %v", pat)
	}
}

func TestCompileSerialReadIsBroadcast(t *testing.T) {
	// SEQ: a distributed array initialized from a serial one.
	ser := &Array{Name: "in", Rows: 16, Cols: 16, Dist: DistSerial, ElemBytes: 8}
	b := rowsArr("b", 16)
	b.ElemBytes = 8
	s := CompileAssign(Assign{LHS: b, RHS: ser, RowSub: I, ColSub: J}, 4)
	pat, comm := s.Classify()
	if !comm || pat != fx.Broadcast {
		t.Fatalf("serial read pattern = %v", pat)
	}
	if s.Connections() != 3 {
		t.Errorf("connections = %d", s.Connections())
	}
}

func TestCompileHalfShiftIsPartition(t *testing.T) {
	// The second half of the rows reads from the first half: a partition.
	a, b := rowsArr("a", 16), rowsArr("b", 16)
	s := CompileAssign(Assign{LHS: b, RHS: a, RowSub: I.Shifted(-8), ColSub: J}, 4)
	pat, comm := s.Classify()
	if !comm || pat != fx.Partition {
		t.Fatalf("half-shift pattern = %v", pat)
	}
}

func TestCompileReduceIsTree(t *testing.T) {
	a := rowsArr("a", 16)
	s := CompileReduce(Reduce{Src: a, ResultBytes: 2048}, 4)
	pat, comm := s.Classify()
	if !comm || pat != fx.Tree {
		t.Fatalf("reduce pattern = %v", pat)
	}
	// Binomial tree at P=4: 1→0, 3→2, 2→0, each 2048 bytes.
	if len(s.Transfers) != 3 || s.TotalBytes() != 3*2048 {
		t.Errorf("transfers = %v", s.Transfers)
	}
}

func TestScheduleAccessors(t *testing.T) {
	a, b := rowsArr("a", 16), rowsArr("b", 16)
	s := CompileAssign(Assign{LHS: b, RHS: a, RowSub: Affine{CJ: 1}, ColSub: Affine{CI: 1}}, 4)
	if got := len(s.SendsOf(2)); got != 3 {
		t.Errorf("rank 2 sends = %d", got)
	}
	if got := len(s.RecvsOf(2)); got != 3 {
		t.Errorf("rank 2 recvs = %d", got)
	}
	if s.TotalBytes() != 12*16*4 {
		t.Errorf("total bytes = %d", s.TotalBytes())
	}
}

func TestCompileBoundaryClipsOutOfRange(t *testing.T) {
	a, b := rowsArr("a", 8), rowsArr("b", 8)
	// Shift by more than the array: everything out of range.
	s := CompileAssign(Assign{LHS: b, RHS: a, RowSub: I.Shifted(-100), ColSub: J}, 4)
	if len(s.Transfers) != 0 || s.LocalElems != 0 {
		t.Errorf("out-of-range shift: %+v", s)
	}
}

func TestExecuteScheduleOnSimulator(t *testing.T) {
	// Compile a transpose and run its communication on the live testbed:
	// the wire must show exactly the all-to-all pairs with the compiled
	// message sizes.
	a, b := rowsArr("a", 64), rowsArr("b", 64)
	sched := CompileAssign(Assign{LHS: b, RHS: a, RowSub: Affine{CJ: 1}, ColSub: Affine{CI: 1}}, 4)

	k := sim.New(1)
	seg := ethernet.NewSegment(k, 0)
	var hosts []*netstack.Host
	for i := 0; i < 4; i++ {
		st := seg.Attach(fmt.Sprintf("h%d", i))
		hosts = append(hosts, netstack.NewHost(k, st, st.Name(), netstack.DefaultConfig()))
	}
	col := trace.Capture(seg)
	m := pvm.NewMachine(k, hosts, pvm.Config{})
	team := fx.Launch(m, 4, fx.CostModel{DefaultRate: 1e12}, "fxc", func(w *fx.Worker) {
		Execute(w, sched, 7000)
	})
	k.Run()
	if !team.Done() {
		t.Fatal("schedule execution deadlocked")
	}

	pairs := map[[2]int]int{}
	for _, p := range col.Trace().Packets {
		if p.Proto == ethernet.ProtoTCP && p.Flags&ethernet.FlagData != 0 {
			pairs[[2]int{int(p.Src), int(p.Dst)}] += int(p.Size)
		}
	}
	if len(pairs) != 12 {
		t.Fatalf("wire pairs = %d, want 12", len(pairs))
	}
	// Each message: 16×16 elements × 4 B = 1024 B payload, one frame.
	for pair, bytes := range pairs {
		if bytes < 1024 || bytes > 1200 {
			t.Errorf("pair %v carried %d bytes", pair, bytes)
		}
	}
}

func TestExecuteWrongPPanics(t *testing.T) {
	a, b := rowsArr("a", 8), rowsArr("b", 8)
	sched := CompileAssign(Assign{LHS: b, RHS: a, RowSub: I.Shifted(-1), ColSub: J}, 4)
	defer func() {
		if recover() == nil {
			t.Error("no panic on P mismatch")
		}
	}()
	Execute(&fx.Worker{Rank: 0, P: 2}, sched, 1)
}

func TestDistString(t *testing.T) {
	if DistRows.String() != "block-rows" || DistCols.String() != "block-cols" || DistSerial.String() != "serial" {
		t.Error("Dist.String wrong")
	}
}

func TestBadDeclarationsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty shape": func() {
			CompileAssign(Assign{LHS: &Array{Name: "x", ElemBytes: 4}, RHS: rowsArr("a", 4), RowSub: I, ColSub: J}, 2)
		},
		"no elem size": func() {
			CompileAssign(Assign{LHS: rowsArr("a", 4), RHS: &Array{Name: "y", Rows: 4, Cols: 4}, RowSub: I, ColSub: J}, 2)
		},
		"bad P": func() {
			CompileAssign(Assign{LHS: rowsArr("a", 4), RHS: rowsArr("b", 4), RowSub: I, ColSub: J}, 0)
		},
		"bad reduce": func() {
			CompileReduce(Reduce{Src: rowsArr("a", 4)}, 2)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
