// Package fxc implements the communication-generation core of the Fx
// parallelizing compiler: given HPF-style distributed array declarations
// and parallel array assignment statements, it computes, at compile time,
// the exact send/receive sets of every processor and classifies the
// resulting global pattern — the machinery of the paper's reference [19]
// (Stichnoth, O'Halloron, Gross: "Generating communication for array
// statements") that makes the paper's burst sizes "known a priori ... at
// compile-time" (§7.3).
//
// The dialect is deliberately the fragment Fx handles for dense-matrix
// codes: two-dimensional arrays with BLOCK distribution over one
// dimension (or serial ownership on processor 0), and assignments whose
// subscripts are affine maps of the iteration space. That is exactly
// enough to express the kernels' communication: halo shifts (neighbor),
// transposes and redistributions (all-to-all), serial-to-distributed
// reads (broadcast), and reductions (tree).
package fxc

import (
	"fmt"
	"sort"

	"fxnet/internal/fx"
)

// Dist describes how an array's rows/columns map to processors.
type Dist int

// Distributions.
const (
	// DistRows blocks dimension 0 (rows) over the processors.
	DistRows Dist = iota
	// DistCols blocks dimension 1 (columns) over the processors.
	DistCols
	// DistSerial places the whole array on processor 0 (Fx's sequential
	// arrays, the source of SEQ's broadcast traffic).
	DistSerial
)

func (d Dist) String() string {
	switch d {
	case DistRows:
		return "block-rows"
	case DistCols:
		return "block-cols"
	case DistSerial:
		return "serial"
	default:
		return fmt.Sprintf("dist(%d)", int(d))
	}
}

// Array is a distributed two-dimensional array declaration.
type Array struct {
	Name       string
	Rows, Cols int
	Dist       Dist
	// ElemBytes is the element size (4 for REAL*4, 8 for COMPLEX*8...).
	ElemBytes int
}

// Owner returns the rank owning element (i, j) on P processors.
func (a *Array) Owner(P, i, j int) int {
	switch a.Dist {
	case DistRows:
		return fx.BlockOwner(a.Rows, P, i)
	case DistCols:
		return fx.BlockOwner(a.Cols, P, j)
	default:
		return 0
	}
}

// check panics on malformed declarations.
func (a *Array) check() {
	if a.Rows <= 0 || a.Cols <= 0 {
		panic(fmt.Sprintf("fxc: array %s has empty shape", a.Name))
	}
	if a.ElemBytes <= 0 {
		panic(fmt.Sprintf("fxc: array %s has no element size", a.Name))
	}
}

// Affine is a subscript expression c0 + ci·i + cj·j over the iteration
// space (i, j).
type Affine struct {
	C0, CI, CJ int
}

// At evaluates the subscript for iteration point (i, j).
func (a Affine) At(i, j int) int { return a.C0 + a.CI*i + a.CJ*j }

// Common subscripts.
var (
	// I is the identity row subscript.
	I = Affine{CI: 1}
	// J is the identity column subscript.
	J = Affine{CJ: 1}
)

// Shifted returns the subscript plus a constant offset.
func (a Affine) Shifted(c int) Affine { a.C0 += c; return a }

// Assign is a parallel array assignment LHS[i,j] = f(RHS[RowSub, ColSub])
// iterated over the LHS index space (owner-computes rule).
type Assign struct {
	LHS    *Array
	RHS    *Array
	RowSub Affine
	ColSub Affine
}

// Reduce is a global reduction of a distributed array to processor 0
// (Fx compiles these to the tree pattern).
type Reduce struct {
	Src *Array
	// ResultBytes is the size of the reduced value each tree edge
	// carries.
	ResultBytes int
}

// Transfer is one compile-time-known message: Count elements from Src to
// Dst ranks.
type Transfer struct {
	Src, Dst int
	Count    int
}

// Bytes is the message payload size.
func (t Transfer) Bytes(elemBytes int) int { return t.Count * elemBytes }

// Schedule is the compiled communication of one statement.
type Schedule struct {
	P         int
	ElemBytes int
	Transfers []Transfer // sorted by (Src, Dst), only Count > 0
	// LocalElems counts owner-computes elements needing no communication.
	LocalElems int
}

// CompileAssign computes the schedule of an array assignment on P
// processors: for every LHS element its rank owns, the rank fetching the
// RHS element from its owner. Out-of-range RHS accesses (a shifted halo
// at the boundary) are skipped, matching Fx's boundary semantics.
func CompileAssign(st Assign, P int) *Schedule {
	st.LHS.check()
	st.RHS.check()
	if P < 1 {
		panic("fxc: P < 1")
	}
	counts := make(map[[2]int]int)
	local := 0
	for i := 0; i < st.LHS.Rows; i++ {
		for j := 0; j < st.LHS.Cols; j++ {
			si, sj := st.RowSub.At(i, j), st.ColSub.At(i, j)
			if si < 0 || si >= st.RHS.Rows || sj < 0 || sj >= st.RHS.Cols {
				continue // boundary: no source element
			}
			dst := st.LHS.Owner(P, i, j)
			src := st.RHS.Owner(P, si, sj)
			if src == dst {
				local++
				continue
			}
			counts[[2]int{src, dst}]++
		}
	}
	return newSchedule(P, st.RHS.ElemBytes, counts, local)
}

// CompileReduce computes the binomial-tree schedule of a reduction.
func CompileReduce(st Reduce, P int) *Schedule {
	st.Src.check()
	if st.ResultBytes <= 0 {
		panic("fxc: reduction result size must be positive")
	}
	counts := make(map[[2]int]int)
	for stride := 1; stride < P; stride <<= 1 {
		for r := 0; r < P; r++ {
			if r&stride != 0 && r-stride >= 0 {
				// Odd multiples of the stride send and drop out.
				if r%(2*stride) == stride {
					counts[[2]int{r, r - stride}] += st.ResultBytes
				}
			}
		}
	}
	return newSchedule(P, 1, counts, 0)
}

func newSchedule(P, elemBytes int, counts map[[2]int]int, local int) *Schedule {
	s := &Schedule{P: P, ElemBytes: elemBytes, LocalElems: local}
	for pair, n := range counts {
		s.Transfers = append(s.Transfers, Transfer{Src: pair[0], Dst: pair[1], Count: n})
	}
	sort.Slice(s.Transfers, func(a, b int) bool {
		if s.Transfers[a].Src != s.Transfers[b].Src {
			return s.Transfers[a].Src < s.Transfers[b].Src
		}
		return s.Transfers[a].Dst < s.Transfers[b].Dst
	})
	return s
}

// TotalBytes sums the payload of all messages.
func (s *Schedule) TotalBytes() int {
	n := 0
	for _, t := range s.Transfers {
		n += t.Bytes(s.ElemBytes)
	}
	return n
}

// Connections reports the number of distinct (src, dst) pairs.
func (s *Schedule) Connections() int { return len(s.Transfers) }

// MaxMessageBytes reports the largest single message.
func (s *Schedule) MaxMessageBytes() int {
	m := 0
	for _, t := range s.Transfers {
		if b := t.Bytes(s.ElemBytes); b > m {
			m = b
		}
	}
	return m
}

// SendsOf returns rank r's outgoing transfers in destination order.
func (s *Schedule) SendsOf(r int) []Transfer {
	var out []Transfer
	for _, t := range s.Transfers {
		if t.Src == r {
			out = append(out, t)
		}
	}
	return out
}

// RecvsOf returns rank r's incoming transfers in source order.
func (s *Schedule) RecvsOf(r int) []Transfer {
	var out []Transfer
	for _, t := range s.Transfers {
		if t.Dst == r {
			out = append(out, t)
		}
	}
	return out
}

// Classify maps the transfer set onto the paper's figure 1 patterns. The
// boolean is false when the statement needs no communication at all.
func (s *Schedule) Classify() (fx.Pattern, bool) {
	if len(s.Transfers) == 0 {
		return 0, false
	}
	srcs := map[int]bool{}
	dsts := map[int]bool{}
	neighborOnly := true
	for _, t := range s.Transfers {
		srcs[t.Src] = true
		dsts[t.Dst] = true
		if d := t.Src - t.Dst; d != 1 && d != -1 {
			neighborOnly = false
		}
	}
	switch {
	case len(srcs) == 1 && srcs[0] && !dsts[0]:
		return fx.Broadcast, true
	case neighborOnly:
		return fx.Neighbor, true
	case len(s.Transfers) == s.P*(s.P-1):
		return fx.AllToAll, true
	case disjoint(srcs, dsts):
		return fx.Partition, true
	case s.isTree():
		return fx.Tree, true
	default:
		return fx.AllToAll, true // general many-to-many: closest figure-1 class
	}
}

// isTree recognizes the binomial up-sweep transfer set.
func (s *Schedule) isTree() bool {
	want := map[[2]int]bool{}
	for stride := 1; stride < s.P; stride <<= 1 {
		for r := 0; r < s.P; r++ {
			if r%(2*stride) == stride {
				want[[2]int{r, r - stride}] = true
			}
		}
	}
	if len(want) != len(s.Transfers) {
		return false
	}
	for _, t := range s.Transfers {
		if !want[[2]int{t.Src, t.Dst}] {
			return false
		}
	}
	return true
}

func disjoint(a, b map[int]bool) bool {
	for k := range a {
		if b[k] {
			return false
		}
	}
	return true
}

// Execute runs the schedule's communication on a live worker: rank w.Rank
// sends each of its outgoing messages (payload bytes of the right size)
// and receives each incoming one, in a deterministic shifted order that
// avoids receiver hotspots — exactly what Fx's generated code does. tag
// namespaces the statement instance.
func Execute(w *fx.Worker, s *Schedule, tag int) {
	if w.P != s.P {
		panic(fmt.Sprintf("fxc: schedule compiled for P=%d executed on P=%d", s.P, w.P))
	}
	sends := s.SendsOf(w.Rank)
	// Shift order: start with the destination just above our rank.
	sort.Slice(sends, func(a, b int) bool {
		da := (sends[a].Dst - w.Rank + s.P) % s.P
		db := (sends[b].Dst - w.Rank + s.P) % s.P
		return da < db
	})
	for _, t := range sends {
		w.Send(t.Dst, tag, make([]byte, t.Bytes(s.ElemBytes)))
	}
	for _, t := range s.RecvsOf(w.Rank) {
		body := w.Recv(t.Src, tag)
		if len(body) != t.Bytes(s.ElemBytes) {
			panic(fmt.Sprintf("fxc: rank %d expected %d bytes from %d, got %d",
				w.Rank, t.Bytes(s.ElemBytes), t.Src, len(body)))
		}
	}
}
