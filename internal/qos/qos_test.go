package qos

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fxnet/internal/fx"
)

// fftLike is a 2DFFT-style program: parallel compute, all-to-all bursts
// shrinking with P².
func fftLike() Program {
	return Program{
		Name:    "fft",
		Local:   AmdahlLocal(2e7, 1e7, 0),
		Burst:   BlockBurst(2e6),
		Pattern: fx.AllToAll,
	}
}

func TestConcurrentSenders(t *testing.T) {
	cases := []struct {
		c    fx.Pattern
		P    int
		want int
	}{
		{fx.Neighbor, 4, 4}, {fx.AllToAll, 4, 4}, {fx.Partition, 4, 2},
		{fx.Broadcast, 4, 1}, {fx.Tree, 4, 2}, {fx.AllToAll, 1, 0},
	}
	for _, c := range cases {
		if got := ConcurrentSenders(c.c, c.P); got != c.want {
			t.Errorf("ConcurrentSenders(%v, %d) = %d, want %d", c.c, c.P, got, c.want)
		}
	}
}

func TestBurstInterval(t *testing.T) {
	p := fftLike()
	// P=4: local = 2e7/4/1e7 = 0.5 s; burst = 2e6/16 = 125000 B.
	got := BurstInterval(p, 4, 125000)
	if math.Abs(got-1.5) > 1e-9 {
		t.Errorf("tbi = %v, want 1.5", got)
	}
	if !math.IsInf(BurstInterval(p, 4, 0), 1) {
		t.Error("zero bandwidth must give infinite tbi")
	}
}

func TestEvaluateCapacitySplit(t *testing.T) {
	n := NewNetwork(1.25e6)
	off, err := n.Evaluate(fftLike(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// All-to-all on 4 procs: 4 concurrent senders → B = capacity/4.
	if math.Abs(off.BurstBandwidth-1.25e6/4) > 1 {
		t.Errorf("B = %v", off.BurstBandwidth)
	}
	if off.MeanBandwidth > n.CapacityBps+1 {
		t.Errorf("mean demand %v exceeds capacity", off.MeanBandwidth)
	}
	if off.BurstInterval <= off.BurstSeconds {
		t.Error("tbi must exceed the pure burst time")
	}
}

func TestNegotiatePicksBestP(t *testing.T) {
	n := NewNetwork(1.25e6)
	prog := fftLike()
	off, err := n.Negotiate(prog, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive check: no other P beats the offer.
	for P := 2; P <= 16; P++ {
		alt, err := n.Evaluate(prog, P)
		if err != nil {
			continue
		}
		if alt.BurstInterval < off.BurstInterval-1e-12 {
			t.Errorf("P=%d gives tbi %v < offered %v (P=%d)", P, alt.BurstInterval, off.BurstInterval, off.P)
		}
	}
	// For this program more processors help compute but split capacity:
	// the optimum must be interior or at the boundary, and tbi finite.
	if off.BurstInterval <= 0 || math.IsInf(off.BurstInterval, 0) {
		t.Errorf("tbi = %v", off.BurstInterval)
	}
}

func TestNegotiationTension(t *testing.T) {
	// A communication-heavy neighbor program with constant per-connection
	// bursts: more processors shrink compute but also shrink B, so the
	// optimal P is finite — the §7.3 tension.
	prog := Program{
		Name:    "halo",
		Local:   AmdahlLocal(1e8, 1e7, 0),
		Burst:   SurfaceBurst(500_000),
		Pattern: fx.Neighbor,
	}
	n := NewNetwork(1.25e6)
	off, err := n.Negotiate(prog, 64)
	if err != nil {
		t.Fatal(err)
	}
	if off.P == 64 {
		t.Errorf("optimum hit the boundary (P=%d); tension not modeled", off.P)
	}
	// And a compute-only variant should push to the maximum.
	prog.Burst = SurfaceBurst(1)
	off2, err := n.Negotiate(prog, 64)
	if err != nil {
		t.Fatal(err)
	}
	if off2.P != 64 {
		t.Errorf("compute-bound program got P=%d, want 64", off2.P)
	}
}

func TestSerialFractionLimitsP(t *testing.T) {
	// With a large serial fraction, adding processors buys little compute
	// but still splits the burst bandwidth — the optimum drops.
	mk := func(serial float64) int {
		prog := Program{
			Name:    "s",
			Local:   AmdahlLocal(1e8, 1e7, serial),
			Burst:   SurfaceBurst(200_000),
			Pattern: fx.Neighbor,
		}
		off, err := NewNetwork(1.25e6).Negotiate(prog, 64)
		if err != nil {
			t.Fatal(err)
		}
		return off.P
	}
	if pLow, pHigh := mk(0.0), mk(0.9); pHigh > pLow {
		t.Errorf("serial fraction raised optimal P: %d → %d", pLow, pHigh)
	}
}

func TestAdmitReducesCapacity(t *testing.T) {
	n := NewNetwork(1.25e6)
	before := n.Available()
	off, err := n.Admit(fftLike(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if n.Available() >= before {
		t.Error("Admit did not reduce available capacity")
	}
	if got := before - n.Available(); math.Abs(got-off.MeanBandwidth) > 1e-6 {
		t.Errorf("capacity reduced by %v, offer mean %v", got, off.MeanBandwidth)
	}
	if len(n.Offers()) != 1 {
		t.Errorf("offers = %d", len(n.Offers()))
	}
}

func TestSecondProgramSeesLessBandwidth(t *testing.T) {
	n := NewNetwork(1.25e6)
	first, err := n.Admit(fftLike(), 8)
	if err != nil {
		t.Fatal(err)
	}
	second := fftLike()
	second.Name = "fft2"
	off2, err := n.Admit(second, 8)
	if err != nil {
		t.Fatal(err)
	}
	if off2.BurstInterval <= first.BurstInterval {
		t.Errorf("second program's tbi %v not worse than first's %v", off2.BurstInterval, first.BurstInterval)
	}
}

func TestRelease(t *testing.T) {
	n := NewNetwork(1.25e6)
	if _, err := n.Admit(fftLike(), 8); err != nil {
		t.Fatal(err)
	}
	if !n.Release("fft") {
		t.Fatal("Release failed")
	}
	if n.Release("fft") {
		t.Error("double release succeeded")
	}
	if math.Abs(n.Available()-1.25e6) > 1e-6 {
		t.Errorf("capacity not restored: %v", n.Available())
	}
}

func TestSaturatedNetworkRejects(t *testing.T) {
	n := NewNetwork(100) // 100 B/s: the fft's demand dwarfs this
	heavy := Program{
		Name:    "heavy",
		Local:   func(P int) float64 { return 0.0001 },
		Burst:   SurfaceBurst(1e9),
		Pattern: fx.AllToAll,
	}
	if _, err := n.Admit(heavy, 8); err != nil {
		t.Fatal(err) // first admission always sees free capacity
	}
	if _, err := n.Admit(heavy, 8); err == nil {
		t.Error("saturated network accepted another program")
	}
}

func TestNegotiateErrors(t *testing.T) {
	n := NewNetwork(1.25e6)
	if _, err := n.Evaluate(fftLike(), 1); err == nil {
		t.Error("P=1 accepted")
	}
	if _, err := n.Negotiate(fftLike(), 1); err == nil {
		t.Error("maxP=1 negotiation succeeded")
	}
}

func TestQuickBurstIntervalMonotoneInB(t *testing.T) {
	// Property: more committed bandwidth never lengthens the burst
	// interval.
	prog := fftLike()
	f := func(rawP uint8, rawB uint32) bool {
		P := int(rawP)%30 + 2
		b1 := float64(rawB%1_000_000) + 1
		b2 := b1 * 2
		return BurstInterval(prog, P, b2) <= BurstInterval(prog, P, b1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickNegotiateIsOptimal(t *testing.T) {
	// Property: for random program shapes, Negotiate's offer is never
	// beaten by any explicit Evaluate in range.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		prog := Program{
			Name:    "rand",
			Local:   AmdahlLocal(1e6+rng.Float64()*1e9, 1e7, rng.Float64()*0.5),
			Burst:   SurfaceBurst(1 + rng.Float64()*1e6),
			Pattern: fx.Pattern(rng.Intn(5)),
		}
		n := NewNetwork(1.25e6)
		off, err := n.Negotiate(prog, 24)
		if err != nil {
			return false
		}
		for P := 2; P <= 24; P++ {
			alt, err := n.Evaluate(prog, P)
			if err != nil {
				continue
			}
			if alt.BurstInterval < off.BurstInterval-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickAdmitNeverOversubscribes(t *testing.T) {
	// Property: however many programs are admitted, the committed mean
	// bandwidth never exceeds capacity.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := NewNetwork(1.25e6)
		for i := 0; i < 10; i++ {
			prog := Program{
				Name:    fmt.Sprintf("p%d", i),
				Local:   AmdahlLocal(1e6+rng.Float64()*1e8, 1e7, 0),
				Burst:   SurfaceBurst(1 + rng.Float64()*5e5),
				Pattern: fx.Pattern(rng.Intn(5)),
			}
			_, _ = n.Admit(prog, 16)
			if n.Available() < -1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestReleaseByID: two admissions of the same program name are distinct
// commitments; releasing by ID frees exactly the identified one, and a
// fully drained network recovers its exact original capacity.
func TestReleaseByID(t *testing.T) {
	n := NewNetwork(1.25e6)
	prog := Program{
		Name:    "sor",
		Local:   AmdahlLocal(1e8, 1e7, 0),
		Burst:   SurfaceBurst(2048),
		Pattern: fx.Neighbor,
	}
	a, err := n.Admit(prog, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Admit(prog, 16)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID == 0 || b.ID == 0 || a.ID == b.ID {
		t.Fatalf("admission IDs not distinct and nonzero: %d, %d", a.ID, b.ID)
	}
	if !n.ReleaseID(a.ID) {
		t.Fatal("ReleaseID(a) failed")
	}
	if n.ReleaseID(a.ID) {
		t.Fatal("double release of the same ID succeeded")
	}
	if got := len(n.Offers()); got != 1 {
		t.Fatalf("%d offers outstanding, want 1", got)
	}
	if n.Offers()[0].ID != b.ID {
		t.Fatal("released the wrong commitment")
	}
	if !n.ReleaseID(b.ID) {
		t.Fatal("ReleaseID(b) failed")
	}
	if n.Available() != n.CapacityBps {
		t.Fatalf("drained network offers %g, want full capacity %g", n.Available(), n.CapacityBps)
	}
	if n.ReleaseID(999) {
		t.Fatal("releasing an unknown ID succeeded")
	}
}

// TestReleaseCrossPath: an offer released by name must not be releasable
// again by ID (and vice versa) — both paths walk one shared ledger.
func TestReleaseCrossPath(t *testing.T) {
	n := NewNetwork(1.25e6)
	prog := Program{
		Name:    "sor",
		Local:   AmdahlLocal(1e8, 1e7, 0),
		Burst:   SurfaceBurst(2048),
		Pattern: fx.Neighbor,
	}
	off, err := n.Admit(prog, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !n.Release("sor") {
		t.Fatal("Release by name failed")
	}
	if n.ReleaseID(off.ID) {
		t.Fatal("ReleaseID succeeded on an offer already released by name")
	}

	off2, err := n.Admit(prog, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !n.ReleaseID(off2.ID) {
		t.Fatal("ReleaseID failed")
	}
	if n.Release("sor") {
		t.Fatal("Release by name succeeded on an offer already released by ID")
	}
	if n.Available() != n.CapacityBps {
		t.Fatalf("drained network offers %g, want %g", n.Available(), n.CapacityBps)
	}
}

// TestTabulatedProgram: a catalog-style tabulated characterization
// answers only at measured P; Evaluate rejects the gaps and Negotiate
// picks the best measured point.
func TestTabulatedProgram(t *testing.T) {
	prog := TabulatedProgram("sor", fx.Neighbor, []Point{
		{P: 4, LocalSeconds: 0.5, BurstBytes: 4096},
		{P: 8, LocalSeconds: 0.2, BurstBytes: 4096},
	})
	n := NewNetwork(1.25e6)

	if _, err := n.Evaluate(prog, 6); err == nil {
		t.Fatal("Evaluate priced an unmeasured P")
	}
	off4, err := n.Evaluate(prog, 4)
	if err != nil {
		t.Fatal(err)
	}
	off8, err := n.Evaluate(prog, 8)
	if err != nil {
		t.Fatal(err)
	}

	best, err := n.Negotiate(prog, 32)
	if err != nil {
		t.Fatal(err)
	}
	want := off4
	if off8.BurstInterval < off4.BurstInterval {
		want = off8
	}
	if best.P != want.P {
		t.Fatalf("negotiated P=%d, want measured optimum P=%d", best.P, want.P)
	}

	// No points at all → negotiation fails rather than inventing data.
	empty := TabulatedProgram("idle", fx.Neighbor, nil)
	if _, err := n.Negotiate(empty, 32); err == nil {
		t.Fatal("negotiated a program with no measured points")
	}
}
