// Package qos implements the paper's §7.3 negotiation model. A SPMD
// program characterizes its traffic as [l(), b(), c]: l maps the
// processor count P to the local computation time per phase, b maps P to
// the burst size per connection, and c is the communication pattern.
// Unlike a media stream — known period, variable burst — the parallel
// program has a known burst size but a period that depends on P and on
// the bandwidth B the network commits:
//
//	tbi(P) = l(P) + b(P)/B(P)
//
// The network, knowing its capacity and other commitments, is allowed to
// return the P that minimizes the burst interval — co-optimizing program
// and network.
package qos

import (
	"fmt"
	"math"

	"fxnet/internal/fx"
)

// Program is the [l(), b(), c] characterization.
type Program struct {
	Name string
	// Local is l: processor count → local computation seconds per phase.
	Local func(P int) float64
	// Burst is b: processor count → burst bytes per connection.
	Burst func(P int) float64
	// Pattern is c.
	Pattern fx.Pattern
}

// ConcurrentSenders reports how many connections of pattern c are active
// simultaneously during a burst on P processors, which is what divides
// the shared-medium capacity: on a compiled shift schedule every
// processor drives one connection at a time for neighbor and all-to-all;
// only the sending half drives partition; a broadcast root serializes its
// sends; a tree halves the senders each step (we charge the first,
// widest, step).
func ConcurrentSenders(c fx.Pattern, P int) int {
	if P < 2 {
		return 0
	}
	switch c {
	case fx.Neighbor, fx.AllToAll:
		return P
	case fx.Partition:
		return P / 2
	case fx.Broadcast:
		return 1
	case fx.Tree:
		return P / 2
	default:
		return P
	}
}

// Offer is the network's answer to a negotiation.
type Offer struct {
	Program string
	// ID identifies an admitted commitment for release; 0 on offers that
	// were evaluated but never admitted.
	ID int
	// P is the processor count the network tells the program to use.
	P int
	// BurstBandwidth is the per-connection bandwidth B committed during
	// bursts, bytes/s.
	BurstBandwidth float64
	// BurstInterval is the resulting tbi in seconds.
	BurstInterval float64
	// BurstSeconds is b(P)/B, the communication part of the interval.
	BurstSeconds float64
	// MeanBandwidth is the program's average aggregate demand,
	// connections × b(P) / tbi, bytes/s.
	MeanBandwidth float64
}

// Network is the entity granting QoS commitments on a shared medium.
type Network struct {
	// CapacityBps is the usable capacity in bytes per second.
	CapacityBps float64
	// committedMean is the aggregate mean bandwidth already promised.
	committedMean float64
	offers        []Offer
	nextID        int
}

// NewNetwork returns a network with the given capacity in bytes/s.
func NewNetwork(capacityBps float64) *Network {
	return &Network{CapacityBps: capacityBps}
}

// Available reports the mean bandwidth not yet committed.
func (n *Network) Available() float64 {
	return math.Max(0, n.CapacityBps-n.committedMean)
}

// Committed reports the aggregate mean bandwidth already promised.
func (n *Network) Committed() float64 { return n.committedMean }

// Offers lists accepted commitments.
func (n *Network) Offers() []Offer { return n.offers }

// BurstInterval evaluates tbi for a program on P processors when each
// active connection is granted burst bandwidth B bytes/s.
func BurstInterval(prog Program, P int, B float64) float64 {
	if B <= 0 {
		return math.Inf(1)
	}
	return prog.Local(P) + prog.Burst(P)/B
}

// Evaluate computes the offer the network would make for a fixed P: the
// burst bandwidth is the network's free capacity split across the
// pattern's concurrently active connections. A program whose
// characterization is not finite at P — a tabulated program queried at
// an unmeasured processor count — is rejected rather than priced from
// garbage.
func (n *Network) Evaluate(prog Program, P int) (Offer, error) {
	if P < 2 {
		return Offer{}, fmt.Errorf("qos: need P ≥ 2, got %d", P)
	}
	if l, b := prog.Local(P), prog.Burst(P); !finite(l) || !finite(b) {
		return Offer{}, fmt.Errorf("qos: %s has no characterization at P=%d", prog.Name, P)
	}
	senders := ConcurrentSenders(prog.Pattern, P)
	if senders == 0 {
		return Offer{}, fmt.Errorf("qos: pattern %v idle on P=%d", prog.Pattern, P)
	}
	free := n.Available()
	if free <= 1e-9*n.CapacityBps {
		return Offer{}, fmt.Errorf("qos: no capacity available")
	}
	B := free / float64(senders)
	tbi := BurstInterval(prog, P, B)
	// Mean demand over one burst interval: the concurrently active
	// connections each move b(P) bytes per tbi (the paper's per-step
	// shift-pattern model), so mean ≤ senders·B = free capacity always.
	mean := float64(senders) * prog.Burst(P) / tbi
	return Offer{
		Program:        prog.Name,
		P:              P,
		BurstBandwidth: B,
		BurstInterval:  tbi,
		BurstSeconds:   prog.Burst(P) / B,
		MeanBandwidth:  mean,
	}, nil
}

// Negotiate searches P ∈ [2, maxP] for the processor count minimizing the
// burst interval and returns that offer without committing it. This is
// the paper's proposal: the program hands over [l(), b(), c]; the network
// hands back P.
func (n *Network) Negotiate(prog Program, maxP int) (Offer, error) {
	var best Offer
	found := false
	for P := 2; P <= maxP; P++ {
		off, err := n.Evaluate(prog, P)
		if err != nil {
			continue
		}
		if !found || off.BurstInterval < best.BurstInterval {
			best = off
			found = true
		}
	}
	if !found {
		return Offer{}, fmt.Errorf("qos: no feasible P ≤ %d for %s", maxP, prog.Name)
	}
	return best, nil
}

// Admit negotiates and commits the offer, reducing the capacity seen by
// later programs by the program's mean bandwidth demand.
func (n *Network) Admit(prog Program, maxP int) (Offer, error) {
	off, err := n.Negotiate(prog, maxP)
	if err != nil {
		return Offer{}, err
	}
	n.nextID++
	off.ID = n.nextID
	n.committedMean += off.MeanBandwidth
	n.offers = append(n.offers, off)
	return off, nil
}

// Restore re-installs a previously admitted offer under its original
// admission ID — the crash-recovery path, where a journal replay
// rebuilds the ledger. It refuses IDs that are unset or already
// present, and advances the ID sequence past the restored one so new
// admissions never collide with recovered ones.
func (n *Network) Restore(off Offer) bool {
	if off.ID <= 0 {
		return false
	}
	for _, o := range n.offers {
		if o.ID == off.ID {
			return false
		}
	}
	n.offers = append(n.offers, off)
	n.committedMean += off.MeanBandwidth
	if off.ID > n.nextID {
		n.nextID = off.ID
	}
	return true
}

// Release returns a previously admitted program's bandwidth to the pool.
func (n *Network) Release(name string) bool {
	return n.releaseWhere(func(off Offer) bool { return off.Program == name })
}

// ReleaseID releases the commitment with the given admission ID — the
// unambiguous form when several admitted programs share a name (a
// long-running broker admitting the same kernel for many clients).
func (n *Network) ReleaseID(id int) bool {
	return n.releaseWhere(func(off Offer) bool { return off.ID == id })
}

// releaseWhere releases the first offer matching the predicate; false
// when nothing matches (including an offer already released through the
// other lookup path).
func (n *Network) releaseWhere(match func(Offer) bool) bool {
	for i, off := range n.offers {
		if match(off) {
			return n.release(i)
		}
	}
	return false
}

func (n *Network) release(i int) bool {
	n.committedMean -= n.offers[i].MeanBandwidth
	n.offers = append(n.offers[:i], n.offers[i+1:]...)
	if len(n.offers) == 0 {
		// Empty network: clamp away accumulated float error so a fully
		// drained broker offers exactly its original capacity again.
		n.committedMean = 0
	}
	return true
}

// AmdahlLocal builds an l() for a program with W total operations per
// phase at the given per-processor rate and a serial fraction: the
// classic shape that makes the processor-count tension of §7.3 concrete.
func AmdahlLocal(totalOps, opsPerSec, serialFrac float64) func(P int) float64 {
	return func(P int) float64 {
		if P < 1 {
			P = 1
		}
		par := totalOps * (1 - serialFrac) / float64(P)
		ser := totalOps * serialFrac
		return (par + ser) / opsPerSec
	}
}

// SurfaceBurst builds a b() for halo-exchange style programs whose burst
// shrinks with P (n bytes per row, rows split P ways is constant n — the
// neighbor case), while BlockBurst models transpose-style programs whose
// per-connection burst shrinks as P²:
func SurfaceBurst(bytes float64) func(P int) float64 {
	return func(P int) float64 { return bytes }
}

// BlockBurst models all-to-all redistribution of totalBytes of data: each
// of the P(P−1) connections carries totalBytes/P² per burst.
func BlockBurst(totalBytes float64) func(P int) float64 {
	return func(P int) float64 {
		if P < 1 {
			P = 1
		}
		return totalBytes / float64(P*P)
	}
}

// Point is one measured admission point of a tabulated characterization:
// the local computation seconds and per-connection burst bytes observed
// (or fitted) at one processor count.
type Point struct {
	P            int
	LocalSeconds float64
	BurstBytes   float64
}

// TabulatedProgram builds a [l(), b(), c] characterization from measured
// points — the catalog-backed path, where l and b come from fitted
// spectral models rather than analytic laws. The program answers only at
// measured processor counts: elsewhere l and b are +Inf, which Evaluate
// rejects and Negotiate skips, so the network picks the best measured P
// and never extrapolates beyond the data.
func TabulatedProgram(name string, pattern fx.Pattern, pts []Point) Program {
	m := make(map[int]Point, len(pts))
	for _, pt := range pts {
		m[pt.P] = pt
	}
	return Program{
		Name:    name,
		Pattern: pattern,
		Local: func(P int) float64 {
			if pt, ok := m[P]; ok {
				return pt.LocalSeconds
			}
			return math.Inf(1)
		},
		Burst: func(P int) float64 {
			if pt, ok := m[P]; ok {
				return pt.BurstBytes
			}
			return math.Inf(1)
		},
	}
}

// finite reports whether v is a usable characterization value.
func finite(v float64) bool { return !math.IsInf(v, 0) && !math.IsNaN(v) }
