package netstack

import (
	"bytes"
	"testing"

	"fxnet/internal/ethernet"
	"fxnet/internal/sim"
)

// lossRig builds two hosts on a segment with injected frame corruption.
func lossRig(t *testing.T, seed int64, dropProb float64) (*sim.Kernel, *ethernet.Segment, *Host, *Host) {
	t.Helper()
	k := sim.New(seed)
	seg := ethernet.NewSegment(k, 0)
	a := NewHost(k, seg.Attach("a"), "a", DefaultConfig())
	b := NewHost(k, seg.Attach("b"), "b", DefaultConfig())
	seg.SetDropProb(dropProb)
	return k, seg, a, b
}

func TestLossyTransferStillDelivers(t *testing.T) {
	for _, drop := range []float64{0.01, 0.05, 0.20} {
		drop := drop
		k, seg, a, b := lossRig(t, 7, drop)
		msg := make([]byte, 400_000)
		for i := range msg {
			msg[i] = byte(i * 7)
		}
		var got []byte
		l := b.Listen(80)
		var conn *Conn
		k.Go("server", func(p *sim.Proc) {
			c := l.Accept(p)
			got = c.Read(p, len(msg))
		})
		k.Go("client", func(p *sim.Proc) {
			conn = a.Connect(p, 1, 80)
			conn.Write(p, msg)
		})
		k.RunUntil(sim.Time(10 * sim.Minute))
		if !bytes.Equal(got, msg) {
			t.Fatalf("drop=%v: payload corrupted or incomplete (%d/%d bytes)", drop, len(got), len(msg))
		}
		if seg.Stats().Corrupted == 0 {
			t.Fatalf("drop=%v: no frames were corrupted", drop)
		}
		if conn.Retransmits == 0 {
			t.Fatalf("drop=%v: recovery happened without retransmissions?", drop)
		}
	}
}

func TestLossySynRetransmission(t *testing.T) {
	// Heavy loss: the handshake itself must survive via SYN timers.
	k, _, a, b := lossRig(t, 3, 0.5)
	l := b.Listen(80)
	established := false
	k.Go("server", func(p *sim.Proc) {
		c := l.Accept(p)
		c.Read(p, 10)
		established = true
	})
	k.Go("client", func(p *sim.Proc) {
		c := a.Connect(p, 1, 80)
		c.Write(p, make([]byte, 10))
	})
	k.RunUntil(sim.Time(5 * sim.Minute))
	if !established {
		t.Fatal("handshake + 10-byte transfer did not survive 50% loss")
	}
}

func TestFastRetransmit(t *testing.T) {
	// Deterministic loss: every frame in a short mid-transfer window is
	// corrupted, forcing recovery through retransmission.
	k := sim.New(5)
	seg := ethernet.NewSegment(k, 0)
	a := NewHost(k, seg.Attach("a"), "a", DefaultConfig())
	b := NewHost(k, seg.Attach("b"), "b", DefaultConfig())
	k.At(sim.Time(40*sim.Millisecond), "arm", func() { seg.SetDropProb(1) })
	k.At(sim.Time(45*sim.Millisecond), "disarm", func() { seg.SetDropProb(0) })

	var clientConn *Conn
	l := b.Listen(80)
	done := false
	k.Go("server", func(p *sim.Proc) {
		c := l.Accept(p)
		c.Read(p, 200_000)
		done = true
	})
	k.Go("client", func(p *sim.Proc) {
		clientConn = a.Connect(p, 1, 80)
		clientConn.Write(p, make([]byte, 200_000))
	})
	k.RunUntil(sim.Time(sim.Minute))
	if !done {
		t.Fatal("transfer did not complete after loss window")
	}
	if clientConn.Retransmits == 0 {
		t.Fatal("no retransmissions despite forced loss window")
	}
}

func TestDuplicateSegmentsCounted(t *testing.T) {
	// With loss, the receiver sees retransmitted data it may already
	// have (when the ACK, not the data, was lost); it must count and
	// discard them without corrupting the stream.
	k, _, a, b := lossRig(t, 11, 0.15)
	msg := make([]byte, 80_000)
	for i := range msg {
		msg[i] = byte(i)
	}
	var serverConn *Conn
	var got []byte
	l := b.Listen(80)
	k.Go("server", func(p *sim.Proc) {
		serverConn = l.Accept(p)
		got = serverConn.Read(p, len(msg))
	})
	k.Go("client", func(p *sim.Proc) {
		c := a.Connect(p, 1, 80)
		c.Write(p, msg)
	})
	k.RunUntil(sim.Time(10 * sim.Minute))
	if !bytes.Equal(got, msg) {
		t.Fatal("stream corrupted under loss")
	}
}

func TestLossDeterminism(t *testing.T) {
	run := func() (sim.Time, int64) {
		k, seg, a, b := lossRig(t, 21, 0.1)
		l := b.Listen(80)
		k.Go("server", func(p *sim.Proc) { l.Accept(p).Read(p, 50_000) })
		k.Go("client", func(p *sim.Proc) {
			c := a.Connect(p, 1, 80)
			c.Write(p, make([]byte, 50_000))
		})
		end := k.RunUntil(sim.Time(10 * sim.Minute))
		return end, seg.Stats().Corrupted
	}
	t1, c1 := run()
	t2, c2 := run()
	if t1 != t2 || c1 != c2 {
		t.Fatalf("lossy run nondeterministic: (%v,%d) vs (%v,%d)", t1, c1, t2, c2)
	}
}

func TestDropProbValidation(t *testing.T) {
	k := sim.New(1)
	seg := ethernet.NewSegment(k, 0)
	defer func() {
		if recover() == nil {
			t.Error("no panic for invalid drop probability")
		}
	}()
	seg.SetDropProb(1.5)
}

func TestNagleWithLoss(t *testing.T) {
	// Nagle coalescing and retransmission compose: a lossy link with
	// small writes still delivers the exact stream.
	k := sim.New(31)
	seg := ethernet.NewSegment(k, 0)
	cfg := DefaultConfig()
	cfg.Nagle = true
	a := NewHost(k, seg.Attach("a"), "a", cfg)
	b := NewHost(k, seg.Attach("b"), "b", cfg)
	seg.SetDropProb(0.1)
	l := b.Listen(80)
	var got []byte
	k.Go("server", func(p *sim.Proc) {
		c := l.Accept(p)
		got = c.Read(p, 5000)
	})
	k.Go("client", func(p *sim.Proc) {
		c := a.Connect(p, 1, 80)
		for i := 0; i < 50; i++ {
			c.Write(p, bytes.Repeat([]byte{byte(i)}, 100))
		}
	})
	k.RunUntil(sim.Time(5 * sim.Minute))
	if len(got) != 5000 {
		t.Fatalf("received %d bytes", len(got))
	}
	for i := 0; i < 50; i++ {
		if got[i*100] != byte(i) {
			t.Fatalf("stream corrupted at write %d", i)
		}
	}
}

func TestBidirectionalUnderLoss(t *testing.T) {
	// Both directions retransmit independently over the same wire.
	k, _, a, b := lossRig(t, 41, 0.08)
	l := b.Listen(80)
	var fromClient, fromServer []byte
	k.Go("server", func(p *sim.Proc) {
		c := l.Accept(p)
		fromClient = c.Read(p, 30_000)
		c.Write(p, bytes.Repeat([]byte{0xBB}, 30_000))
	})
	k.Go("client", func(p *sim.Proc) {
		c := a.Connect(p, 1, 80)
		c.Write(p, bytes.Repeat([]byte{0xAA}, 30_000))
		fromServer = c.Read(p, 30_000)
	})
	k.RunUntil(sim.Time(10 * sim.Minute))
	if len(fromClient) != 30_000 || fromClient[100] != 0xAA {
		t.Fatal("client→server stream broken")
	}
	if len(fromServer) != 30_000 || fromServer[100] != 0xBB {
		t.Fatal("server→client stream broken")
	}
}
