package netstack

import (
	"bytes"
	"testing"

	"fxnet/internal/ethernet"
	"fxnet/internal/sim"
)

type rig struct {
	k     *sim.Kernel
	seg   *ethernet.Segment
	hosts []*Host
	caps  []ethernet.Capture
}

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	r := &rig{k: sim.New(1)}
	r.seg = ethernet.NewSegment(r.k, 0)
	for i := 0; i < n; i++ {
		st := r.seg.Attach(string(rune('a' + i)))
		r.hosts = append(r.hosts, NewHost(r.k, st, st.Name(), DefaultConfig()))
	}
	r.seg.Tap(func(c ethernet.Capture) { r.caps = append(r.caps, c) })
	return r
}

func TestUDPDelivery(t *testing.T) {
	r := newRig(t, 2)
	var got []byte
	var gotSrc int
	var gotPort uint16
	r.hosts[1].BindUDP(500, func(src int, srcPort uint16, payload []byte) {
		gotSrc, gotPort, got = src, srcPort, payload
	})
	r.hosts[0].SendUDP(1, 600, 500, []byte("hello"))
	r.k.Run()
	if string(got) != "hello" || gotSrc != 0 || gotPort != 600 {
		t.Errorf("got %q from %d:%d", got, gotSrc, gotPort)
	}
	if len(r.caps) != 1 || r.caps[0].Proto != ethernet.ProtoUDP {
		t.Fatalf("caps = %+v", r.caps)
	}
	// 20 IP + 8 UDP + 5 data + 18 Ethernet = 51 → below the 58 min? No:
	// captured = 14 + 33 + 4 = 51.
	if r.caps[0].Size != 51 {
		t.Errorf("UDP capture size = %d", r.caps[0].Size)
	}
}

func TestUDPUnboundPortDropped(t *testing.T) {
	r := newRig(t, 2)
	r.hosts[0].SendUDP(1, 600, 999, []byte("x"))
	r.k.Run() // must not panic
}

func TestTCPConnectAccept(t *testing.T) {
	r := newRig(t, 2)
	l := r.hosts[1].Listen(80)
	var serverConn, clientConn *Conn
	r.k.Go("server", func(p *sim.Proc) { serverConn = l.Accept(p) })
	r.k.Go("client", func(p *sim.Proc) { clientConn = r.hosts[0].Connect(p, 1, 80) })
	r.k.Run()
	if serverConn == nil || clientConn == nil {
		t.Fatal("handshake did not complete")
	}
	if h, p := clientConn.RemoteAddr(); h != 1 || p != 80 {
		t.Errorf("client remote = %d:%d", h, p)
	}
	// Handshake = SYN, SYN-ACK, ACK: three 58-byte frames.
	if len(r.caps) != 3 {
		t.Fatalf("handshake frames = %d", len(r.caps))
	}
	for _, c := range r.caps {
		if c.Size != 58 {
			t.Errorf("handshake frame size = %d, want 58", c.Size)
		}
	}
}

func TestTCPDataTransfer(t *testing.T) {
	r := newRig(t, 2)
	l := r.hosts[1].Listen(80)
	msg := make([]byte, 10000)
	for i := range msg {
		msg[i] = byte(i)
	}
	var got []byte
	r.k.Go("server", func(p *sim.Proc) {
		c := l.Accept(p)
		got = c.Read(p, len(msg))
	})
	r.k.Go("client", func(p *sim.Proc) {
		c := r.hosts[0].Connect(p, 1, 80)
		c.Write(p, msg)
	})
	r.k.Run()
	if !bytes.Equal(got, msg) {
		t.Fatal("payload corrupted in transit")
	}
}

func TestTCPSegmentation(t *testing.T) {
	// 10000 bytes = 6 full MSS segments + one 1240-byte remainder: the
	// trimodal size mix (1518-byte frames, one 1298-byte frame, 58-byte
	// ACKs) the paper describes.
	r := newRig(t, 2)
	l := r.hosts[1].Listen(80)
	r.k.Go("server", func(p *sim.Proc) {
		c := l.Accept(p)
		c.Read(p, 10000)
	})
	r.k.Go("client", func(p *sim.Proc) {
		c := r.hosts[0].Connect(p, 1, 80)
		c.Write(p, make([]byte, 10000))
	})
	r.k.Run()
	var full, rem, acks int
	for _, c := range r.caps {
		switch {
		case c.Size == 1518:
			full++
		case c.Size == 58:
			acks++
		case c.Size == 10000-6*MSS+58:
			rem++
		}
	}
	if full != 6 || rem != 1 {
		t.Errorf("full=%d rem=%d", full, rem)
	}
	if acks < 3 { // handshake ACK + ≥ 3 data ACKs (every 2nd of 7 segments)
		t.Errorf("acks = %d", acks)
	}
}

func TestTCPWriteBoundariesPreserved(t *testing.T) {
	// Two 100-byte writes must produce two 100-byte segments, never one
	// 200-byte segment — this is the PVM fragment behaviour.
	r := newRig(t, 2)
	l := r.hosts[1].Listen(80)
	r.k.Go("server", func(p *sim.Proc) {
		c := l.Accept(p)
		c.Read(p, 200)
	})
	r.k.Go("client", func(p *sim.Proc) {
		c := r.hosts[0].Connect(p, 1, 80)
		c.Write(p, make([]byte, 100))
		c.Write(p, make([]byte, 100))
	})
	r.k.Run()
	var seg140 int
	for _, c := range r.caps {
		if c.Size == 14+40+100+4 {
			seg140++
		}
		if c.Size == 14+40+200+4 {
			t.Error("writes were coalesced into one segment")
		}
	}
	if seg140 != 2 {
		t.Errorf("got %d 100-byte segments, want 2", seg140)
	}
}

func TestTCPWindowLimitsInflight(t *testing.T) {
	// With a 16 KB window, a 64 KB write cannot all be on the wire before
	// the first ACK returns: admitted bytes minus acked bytes stays ≤ the
	// window at every point.
	r := newRig(t, 2)
	l := r.hosts[1].Listen(80)
	var c0 *Conn
	r.k.Go("server", func(p *sim.Proc) {
		c := l.Accept(p)
		c.Read(p, 65536)
	})
	r.k.Go("client", func(p *sim.Proc) {
		c0 = r.hosts[0].Connect(p, 1, 80)
		c0.Write(p, make([]byte, 65536))
	})
	limit := int64(DefaultConfig().SendWindow)
	exceeded := false
	check := func() {
		if c0 != nil && c0.sndQueued-c0.sndUna > limit {
			exceeded = true
		}
	}
	for i := 0; i < 2000; i++ {
		r.k.After(sim.Duration(i)*sim.Millisecond, "check", check)
	}
	r.k.Run()
	if exceeded {
		t.Error("inflight exceeded send window")
	}
}

func TestTCPBidirectional(t *testing.T) {
	r := newRig(t, 2)
	l := r.hosts[1].Listen(80)
	var echo []byte
	r.k.Go("server", func(p *sim.Proc) {
		c := l.Accept(p)
		data := c.Read(p, 5000)
		c.Write(p, data)
	})
	r.k.Go("client", func(p *sim.Proc) {
		c := r.hosts[0].Connect(p, 1, 80)
		msg := bytes.Repeat([]byte("ab"), 2500)
		c.Write(p, msg)
		echo = c.Read(p, 5000)
	})
	r.k.Run()
	if len(echo) != 5000 || echo[0] != 'a' || echo[4999] != 'b' {
		t.Errorf("echo len=%d", len(echo))
	}
}

func TestTCPMultipleConnectionsDemux(t *testing.T) {
	r := newRig(t, 3)
	l := r.hosts[2].Listen(80)
	got := map[int][]byte{}
	r.k.Go("server", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			c := l.Accept(p)
			host, _ := c.RemoteAddr()
			got[host] = c.Read(p, 4)
		}
	})
	r.k.Go("c0", func(p *sim.Proc) {
		c := r.hosts[0].Connect(p, 2, 80)
		c.Write(p, []byte("aaaa"))
	})
	r.k.Go("c1", func(p *sim.Proc) {
		p.Sleep(sim.Millisecond)
		c := r.hosts[1].Connect(p, 2, 80)
		c.Write(p, []byte("bbbb"))
	})
	r.k.Run()
	if string(got[0]) != "aaaa" || string(got[1]) != "bbbb" {
		t.Errorf("got = %v", got)
	}
}

func TestDelayedAckTimer(t *testing.T) {
	// A single small segment must be acknowledged within the delayed-ACK
	// timeout even though the every-2nd threshold is never reached.
	r := newRig(t, 2)
	l := r.hosts[1].Listen(80)
	r.k.Go("server", func(p *sim.Proc) {
		c := l.Accept(p)
		c.Read(p, 10)
	})
	var conn *Conn
	r.k.Go("client", func(p *sim.Proc) {
		conn = r.hosts[0].Connect(p, 1, 80)
		conn.Write(p, make([]byte, 10))
	})
	r.k.Run()
	if conn.sndUna != 10 {
		t.Errorf("sndUna = %d, want 10 (delayed ACK missing)", conn.sndUna)
	}
	end := r.caps[len(r.caps)-1].Time
	if end > sim.Time(300*sim.Millisecond) {
		t.Errorf("final ACK at %v, want ≤ ~200ms", end)
	}
}

func TestTCPClose(t *testing.T) {
	r := newRig(t, 2)
	l := r.hosts[1].Listen(80)
	var peerSawFin bool
	r.k.Go("server", func(p *sim.Proc) {
		c := l.Accept(p)
		c.Read(p, 3)
		for !c.PeerClosed() {
			p.Sleep(sim.Millisecond)
		}
		peerSawFin = true
	})
	r.k.Go("client", func(p *sim.Proc) {
		c := r.hosts[0].Connect(p, 1, 80)
		c.Write(p, []byte("bye"))
		c.Close()
	})
	r.k.RunUntil(sim.Time(5 * sim.Second))
	if !peerSawFin {
		t.Error("peer never observed FIN")
	}
}

func TestConnectLoopbackPanics(t *testing.T) {
	r := newRig(t, 2)
	r.k.Go("client", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("no panic on loopback connect")
			}
		}()
		r.hosts[0].Connect(p, 0, 80)
	})
	r.k.Run()
}

func TestListenDuplicatePanics(t *testing.T) {
	r := newRig(t, 1)
	r.hosts[0].Listen(80)
	defer func() {
		if recover() == nil {
			t.Error("no panic on duplicate listen")
		}
	}()
	r.hosts[0].Listen(80)
}

func TestOversizeUDPPanics(t *testing.T) {
	r := newRig(t, 2)
	defer func() {
		if recover() == nil {
			t.Error("no panic on oversize UDP")
		}
	}()
	r.hosts[0].SendUDP(1, 1, 1, make([]byte, MaxUDPPayload+1))
}

func TestLargeTransferDeterministic(t *testing.T) {
	run := func() (sim.Time, int) {
		k := sim.New(3)
		seg := ethernet.NewSegment(k, 0)
		h0 := NewHost(k, seg.Attach("a"), "a", DefaultConfig())
		h1 := NewHost(k, seg.Attach("b"), "b", DefaultConfig())
		frames := 0
		seg.Tap(func(ethernet.Capture) { frames++ })
		l := h1.Listen(80)
		k.Go("server", func(p *sim.Proc) { l.Accept(p).Read(p, 200000) })
		k.Go("client", func(p *sim.Proc) {
			c := h0.Connect(p, 1, 80)
			c.Write(p, make([]byte, 200000))
		})
		return k.Run(), frames
	}
	t1, f1 := run()
	t2, f2 := run()
	if t1 != t2 || f1 != f2 {
		t.Errorf("nondeterministic: (%v,%d) vs (%v,%d)", t1, f1, t2, f2)
	}
	// 200 KB at ~1.1 MB/s effective plus ACK overhead: between 0.17 s and 0.5 s.
	if t1 < sim.Time(170*sim.Millisecond) || t1 > sim.Time(500*sim.Millisecond) {
		t.Errorf("transfer time = %v", t1)
	}
}
