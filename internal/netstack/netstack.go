// Package netstack models the per-host transport stack of the paper's
// OSF/1 workstations: IP encapsulation over Ethernet, UDP datagrams (used
// by the PVM daemons), and a TCP implementation with MSS segmentation, a
// fixed sliding window, cumulative and delayed acknowledgments, and
// connection setup/teardown. The collision-free MAC delivers frames
// reliably and in order per sender, so no retransmission machinery is
// needed; what matters for the traffic study is segmentation — which
// produces the paper's trimodal packet sizes — and the ACK stream.
package netstack

import (
	"errors"
	"fmt"
	"sort"

	"fxnet/internal/ethernet"
	"fxnet/internal/sim"
)

// Connection failure modes surfaced to the socket API instead of retrying
// forever — the robustness contract the fault model relies on.
var (
	// ErrTimedOut is returned when a connection gives up after
	// MaxRetransmits consecutive retransmission timeouts (data or SYN),
	// or when ConnectTimeout elapses before the handshake completes.
	ErrTimedOut = errors.New("netstack: connection timed out")
	// ErrReset is returned on a connection aborted by Reset or by a host
	// crash.
	ErrReset = errors.New("netstack: connection reset")
	// ErrClosed is returned when the peer closed the connection before
	// the requested bytes arrived.
	ErrClosed = errors.New("netstack: connection closed by peer")
)

// Header sizes in bytes.
const (
	IPHeaderBytes  = 20
	TCPHeaderBytes = 20
	UDPHeaderBytes = 8
	// MSS is the maximum TCP segment payload on Ethernet.
	MSS = ethernet.MaxNetBytes - IPHeaderBytes - TCPHeaderBytes // 1460
	// MaxUDPPayload keeps daemon datagrams within one frame.
	MaxUDPPayload = ethernet.MaxNetBytes - IPHeaderBytes - UDPHeaderBytes
)

// Config holds the tunable transport parameters.
type Config struct {
	// SendWindow is the TCP send window in bytes (the socket buffer the
	// sender may have un-acknowledged on the wire).
	SendWindow int
	// AckEvery is the delayed-ACK segment threshold: an ACK is emitted
	// immediately after this many unacknowledged data segments.
	AckEvery int
	// DelayedAckTimeout bounds how long a single segment can wait for its
	// acknowledgment.
	DelayedAckTimeout sim.Duration
	// RTO is the initial retransmission timeout; it backs off
	// exponentially up to MaxRTO on repeated losses of the same segment.
	RTO    sim.Duration
	MaxRTO sim.Duration
	// Nagle enables sender-side small-segment coalescing. PVM sets
	// TCP_NODELAY, so the measured configuration leaves this false; the
	// packing ablation turns it on to show how it would erase the
	// fragment signature.
	Nagle bool
	// MaxRetransmits bounds consecutive retransmission timeouts (data or
	// SYN) on one connection: when exceeded the connection fails with
	// ErrTimedOut instead of backing off forever. Zero keeps the
	// measured-era behaviour of retrying indefinitely.
	MaxRetransmits int
	// ConnectTimeout bounds the three-way handshake: Connect fails with
	// ErrTimedOut when it elapses. Zero waits forever.
	ConnectTimeout sim.Duration
}

// DefaultConfig mirrors mid-1990s BSD-derived stacks: 16 KB socket
// buffers, ack-every-other-segment, 200 ms delayed-ACK timer.
func DefaultConfig() Config {
	return Config{
		SendWindow:        16 * 1024,
		AckEvery:          2,
		DelayedAckTimeout: 200 * sim.Millisecond,
		RTO:               1 * sim.Second,
		MaxRTO:            8 * sim.Second,
	}
}

// UDPHandler receives a datagram delivered to a bound UDP port.
type UDPHandler func(srcHost int, srcPort uint16, payload []byte)

// Host is one machine's network stack bound to an Ethernet attachment —
// a shared-segment station or a switch port.
type Host struct {
	k    *sim.Kernel
	st   ethernet.Port
	name string
	cfg  Config

	udp       map[uint16]UDPHandler
	listeners map[uint16]*Listener
	conns     map[connKey]*Conn
	nextPort  uint16
	down      bool
}

type connKey struct {
	remoteHost            int
	localPort, remotePort uint16
}

// NewHost attaches a stack to port st. The host's address is the port
// ID.
func NewHost(k *sim.Kernel, st ethernet.Port, name string, cfg Config) *Host {
	if cfg.SendWindow <= 0 {
		cfg = DefaultConfig()
	}
	h := &Host{
		k: k, st: st, name: name, cfg: cfg,
		udp:       make(map[uint16]UDPHandler),
		listeners: make(map[uint16]*Listener),
		conns:     make(map[connKey]*Conn),
		nextPort:  1024,
	}
	st.OnReceive(h.receive)
	return h
}

// Addr reports the host's address (its station ID).
func (h *Host) Addr() int { return h.st.ID() }

// Name reports the host name.
func (h *Host) Name() string { return h.name }

// Kernel returns the simulation kernel.
func (h *Host) Kernel() *sim.Kernel { return h.k }

// Down reports whether the host stack is crashed.
func (h *Host) Down() bool { return h.down }

// Crash models a host failure at the transport layer: every open
// connection is aborted with ErrReset (waking its blocked readers and
// writers), listeners and port bindings are discarded, and the stack stops
// sending and receiving until Restart. The MAC-level silence of a crashed
// host is modeled separately by the fault layer's link gate.
func (h *Host) Crash() {
	h.down = true
	// Abort in a fixed key order: fail() wakes blocked procs, and the
	// wake sequence must not depend on map iteration for the simulation
	// to stay byte-deterministic.
	keys := make([]connKey, 0, len(h.conns))
	for key := range h.conns {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.remoteHost != b.remoteHost {
			return a.remoteHost < b.remoteHost
		}
		if a.localPort != b.localPort {
			return a.localPort < b.localPort
		}
		return a.remotePort < b.remotePort
	})
	for _, key := range keys {
		h.conns[key].fail(ErrReset)
		delete(h.conns, key)
	}
	for port := range h.listeners {
		delete(h.listeners, port)
	}
	for port := range h.udp {
		delete(h.udp, port)
	}
}

// Restart brings a crashed stack back up with no connections and no
// bindings — the state a rebooted machine presents.
func (h *Host) Restart() { h.down = false }

func (h *Host) ephemeralPort() uint16 {
	p := h.nextPort
	h.nextPort++
	if h.nextPort == 0 {
		h.nextPort = 1024
	}
	return p
}

// BindUDP registers a datagram handler on a port, replacing any previous
// binding.
func (h *Host) BindUDP(port uint16, fn UDPHandler) { h.udp[port] = fn }

// SendUDP transmits one datagram. Oversize payloads panic: the daemons
// this models never fragment.
func (h *Host) SendUDP(dstHost int, srcPort, dstPort uint16, payload []byte) {
	if len(payload) > MaxUDPPayload {
		panic(fmt.Sprintf("netstack: UDP payload %d exceeds %d", len(payload), MaxUDPPayload))
	}
	if h.down {
		return // a crashed host sends nothing
	}
	h.st.Send(&ethernet.Frame{
		Dst:     dstHost,
		Proto:   ethernet.ProtoUDP,
		SrcPort: srcPort,
		DstPort: dstPort,
		Flags:   ethernet.FlagData,
		NetLen:  IPHeaderBytes + UDPHeaderBytes + len(payload),
		Payload: payload,
	})
}

// tcpInfo is the stack-private TCP header carried in Frame.Opaque.
type tcpInfo struct {
	seq, ack int64
	syn, fin bool
	dataLen  int
}

// receive dispatches an inbound frame to UDP or TCP handling.
func (h *Host) receive(f *ethernet.Frame) {
	if h.down {
		return // a crashed host hears nothing
	}
	switch f.Proto {
	case ethernet.ProtoUDP:
		if fn, ok := h.udp[f.DstPort]; ok {
			fn(f.Src, f.SrcPort, f.Payload)
		}
	case ethernet.ProtoTCP:
		h.receiveTCP(f)
	}
}

func (h *Host) receiveTCP(f *ethernet.Frame) {
	info, _ := f.Opaque.(*tcpInfo)
	if info == nil {
		return
	}
	key := connKey{remoteHost: f.Src, localPort: f.DstPort, remotePort: f.SrcPort}
	if c, ok := h.conns[key]; ok {
		c.handle(f, info)
		return
	}
	if info.syn && !info.fin {
		if l, ok := h.listeners[f.DstPort]; ok {
			l.handleSyn(f, info)
		}
	}
}

// Listener accepts inbound TCP connections on a port.
type Listener struct {
	h       *Host
	port    uint16
	backlog sim.Chan[*Conn]
}

// Listen binds a TCP listener to a port. Binding a port twice panics.
func (h *Host) Listen(port uint16) *Listener {
	if _, dup := h.listeners[port]; dup {
		panic(fmt.Sprintf("netstack: port %d already listening on %s", port, h.name))
	}
	l := &Listener{h: h, port: port}
	h.listeners[port] = l
	return l
}

// Accept blocks until a connection completes its handshake.
func (l *Listener) Accept(p *sim.Proc) *Conn {
	return l.backlog.Get(p)
}

func (l *Listener) handleSyn(f *ethernet.Frame, info *tcpInfo) {
	h := l.h
	key := connKey{remoteHost: f.Src, localPort: l.port, remotePort: f.SrcPort}
	if _, dup := h.conns[key]; dup {
		return // duplicate SYN
	}
	c := newConn(h, f.Src, l.port, f.SrcPort)
	c.state = stateSynRcvd
	h.conns[key] = c
	// SYN-ACK.
	c.sendControl(ethernet.FlagSyn|ethernet.FlagAck, &tcpInfo{syn: true, ack: 1})
	// The connection is usable once the final ACK of the handshake (or
	// first data) arrives; deliver it to Accept then.
	c.onEstablished = func() { l.backlog.Put(c) }
}

// Conn states.
type connState int

const (
	stateSynSent connState = iota
	stateSynRcvd
	stateEstablished
	stateClosed
)

// Conn is one TCP connection endpoint.
type Conn struct {
	h                     *Host
	remoteHost            int
	localPort, remotePort uint16
	state                 connState
	onEstablished         func()
	established           sim.Gate

	// Send side. sndQ and unacked are head-indexed queues: popping
	// advances a cursor instead of re-slicing, and the slice rewinds to
	// its start when drained, so a long-lived connection reuses one
	// backing array. Retired sendSeg structs go to segFree for reuse.
	sndNext   int64 // next byte sequence to assign
	sndQueued int64 // bytes handed to the station
	sndUna    int64 // lowest unacknowledged byte
	sndQ      []*sendSeg
	sndQHead  int
	buffered  int // bytes in sndQ (the socket send buffer)
	writers   sim.Gate
	finSent   bool
	segFree   []*sendSeg

	// Reliability: segments on the wire but unacknowledged, oldest
	// first, plus the retransmission timer state. The RTO and delayed-ACK
	// timers are lazy: re-arming only moves the logical deadline
	// (rtoDeadline / delAckAt; zero = disarmed), and the one physical
	// kernel event re-schedules itself when it fires early. Acknowledging
	// a segment therefore never pushes a fresh heap event, where the
	// eager version scheduled (and lazily cancelled) one per ACK.
	unacked     []*sendSeg
	unaHead     int
	rtoTimer    sim.Event
	rtoDeadline sim.Time
	rtoBackoff  int
	dupAcks     int
	fastAt      int64 // sndUna at the last fast retransmit (one per window)
	synTimer    sim.Event

	// Timer callbacks, bound once at construction: re-arming a timer
	// must not allocate a fresh method value per segment.
	onRTOFn    func()
	onDelAckFn func()
	synRetryFn func()

	// Receive side.
	rcvNext     int64 // next expected byte
	rcvBuf      []byte
	readers     sim.Gate
	unackedSegs int
	delAck      sim.Event
	delAckAt    sim.Time
	peerClosed  bool

	// err records why the connection failed (ErrTimedOut, ErrReset);
	// nil while healthy.
	err        error
	synRetries int

	// Counters for tests and diagnostics.
	SegsOut, AcksOut, SegsIn int64
	Retransmits              int64
	DupSegsIn                int64
}

type sendSeg struct {
	data []byte
	seq  int64
	fin  bool
}

// newSeg takes a segment from the connection's free list (or allocates).
func (c *Conn) newSeg() *sendSeg {
	if n := len(c.segFree); n > 0 {
		s := c.segFree[n-1]
		c.segFree[n-1] = nil
		c.segFree = c.segFree[:n-1]
		return s
	}
	return &sendSeg{}
}

// freeSeg retires a segment for reuse. The data slice is released (frames
// already on the wire hold their own copy of the slice header).
func (c *Conn) freeSeg(s *sendSeg) {
	s.data = nil
	s.fin = false
	c.segFree = append(c.segFree, s)
}

// qLen reports queued-but-unsent segments; inFlight reports sent-but-
// unacknowledged ones.
func (c *Conn) qLen() int     { return len(c.sndQ) - c.sndQHead }
func (c *Conn) inFlight() int { return len(c.unacked) - c.unaHead }

// popSndQ removes the head of the send queue, rewinding the backing
// array once drained.
func (c *Conn) popSndQ() *sendSeg {
	s := c.sndQ[c.sndQHead]
	c.sndQ[c.sndQHead] = nil
	c.sndQHead++
	if c.sndQHead == len(c.sndQ) {
		c.sndQ = c.sndQ[:0]
		c.sndQHead = 0
	}
	return s
}

func newConn(h *Host, remote int, localPort, remotePort uint16) *Conn {
	c := &Conn{h: h, remoteHost: remote, localPort: localPort, remotePort: remotePort}
	c.onRTOFn = c.onRTO
	c.onDelAckFn = c.onDelAck
	c.synRetryFn = c.synRetry
	return c
}

// Connect opens a TCP connection to dstHost:dstPort, blocking p until the
// three-way handshake completes. It panics on failure; use ConnectErr for
// the error-returning form a robust runtime needs.
func (h *Host) Connect(p *sim.Proc, dstHost int, dstPort uint16) *Conn {
	c, err := h.ConnectErr(p, dstHost, dstPort)
	if err != nil {
		panic(fmt.Sprintf("netstack: connect %s -> host %d:%d: %v", h.name, dstHost, dstPort, err))
	}
	return c
}

// ConnectErr opens a TCP connection to dstHost:dstPort, blocking p until
// the three-way handshake completes or fails. With cfg.ConnectTimeout (or
// cfg.MaxRetransmits on the SYN) configured, an unreachable peer yields
// ErrTimedOut instead of blocking the simulation forever.
func (h *Host) ConnectErr(p *sim.Proc, dstHost int, dstPort uint16) (*Conn, error) {
	if dstHost == h.Addr() {
		panic("netstack: TCP loopback not modeled; use host-local IPC")
	}
	c := newConn(h, dstHost, h.ephemeralPort(), dstPort)
	c.state = stateSynSent
	key := connKey{dstHost, c.localPort, c.remotePort}
	h.conns[key] = c
	c.sendSyn()
	var deadline sim.Event
	if h.cfg.ConnectTimeout > 0 {
		deadline = h.k.After(h.cfg.ConnectTimeout, "tcp.conntimeout", func() {
			if c.state != stateEstablished {
				c.fail(ErrTimedOut)
			}
		})
	}
	for c.state != stateEstablished {
		if c.err != nil {
			delete(h.conns, key)
			return nil, c.err
		}
		c.established.Wait(p)
	}
	deadline.Cancel()
	return c, nil
}

// sendSyn emits the SYN and arms its retransmission timer, so a lost SYN
// or SYN-ACK cannot deadlock connection setup. With MaxRetransmits
// configured, a persistently unanswered SYN fails the connection.
func (c *Conn) sendSyn() {
	c.sendControl(ethernet.FlagSyn, &tcpInfo{syn: true})
	c.synTimer = c.h.k.After(c.h.cfg.RTO, "tcp.synrto", c.synRetryFn)
}

func (c *Conn) synRetry() {
	if c.state != stateSynSent {
		return
	}
	c.synRetries++
	if max := c.h.cfg.MaxRetransmits; max > 0 && c.synRetries > max {
		c.fail(ErrTimedOut)
		return
	}
	c.Retransmits++
	c.sendSyn()
}

// Err reports why the connection failed, or nil while it is healthy.
func (c *Conn) Err() error { return c.err }

// Reset aborts the connection immediately without emitting anything on
// the wire: pending data is discarded, timers are cancelled, and every
// blocked reader, writer, and connector is woken with the given cause.
func (c *Conn) Reset() { c.fail(ErrReset) }

// fail marks the connection dead with cause err (first cause wins),
// cancels all timers, discards queued data, and wakes every waiter so no
// process stays blocked on a dead connection.
func (c *Conn) fail(err error) {
	if c.err != nil {
		return
	}
	c.err = err
	c.state = stateClosed
	c.rtoTimer.Cancel()
	c.synTimer.Cancel()
	c.delAck.Cancel()
	c.rtoTimer, c.synTimer, c.delAck = sim.Event{}, sim.Event{}, sim.Event{}
	c.rtoDeadline, c.delAckAt = 0, 0
	c.unacked, c.unaHead = nil, 0
	c.sndQ, c.sndQHead = nil, 0
	c.segFree = nil
	c.buffered = 0
	c.established.Broadcast()
	c.readers.Broadcast()
	c.writers.Broadcast()
}

// LocalPort reports the connection's local port.
func (c *Conn) LocalPort() uint16 { return c.localPort }

// RemoteAddr reports the peer host address and port.
func (c *Conn) RemoteAddr() (int, uint16) { return c.remoteHost, c.remotePort }

// sendControl emits a zero-data control segment (SYN/ACK/FIN variants).
func (c *Conn) sendControl(flags uint8, info *tcpInfo) {
	c.h.st.Send(&ethernet.Frame{
		Dst:     c.remoteHost,
		Proto:   ethernet.ProtoTCP,
		SrcPort: c.localPort,
		DstPort: c.remotePort,
		Flags:   flags,
		NetLen:  IPHeaderBytes + TCPHeaderBytes,
		Opaque:  info,
	})
	if flags&ethernet.FlagAck != 0 && flags&ethernet.FlagSyn == 0 {
		c.AcksOut++
	}
}

// Write queues data on the connection as one application-layer fragment:
// it is cut into MSS-sized segments, and the final short segment is never
// coalesced with a later Write unless Nagle is enabled (each PVM fragment
// is a separate socket write, which is what gives T2DFFT its distinctive
// packet sizes). Write blocks p while the socket send buffer (buffered +
// in flight ≥ SendWindow) is full, returning once every byte is buffered
// — the semantics of a blocking socket write.
func (c *Conn) Write(p *sim.Proc, data []byte) {
	if err := c.WriteErr(p, data); err != nil {
		panic(fmt.Sprintf("netstack: Write on failed connection: %v", err))
	}
}

// WriteErr is Write returning an error instead of panicking when the
// connection has failed (ErrTimedOut, ErrReset) — possibly mid-write, in
// which case a prefix of data may already be on the wire.
func (c *Conn) WriteErr(p *sim.Proc, data []byte) error {
	if c.err != nil {
		return c.err
	}
	if c.state == stateClosed {
		panic("netstack: Write on closed connection")
	}
	for off := 0; off < len(data); off += MSS {
		end := off + MSS
		if end > len(data) {
			end = len(data)
		}
		chunk := data[off:end]
		for c.buffered+int(c.sndQueued-c.sndUna)+len(chunk) > c.h.cfg.SendWindow {
			if c.err != nil {
				return c.err
			}
			c.writers.Wait(p)
		}
		if c.err != nil {
			return c.err
		}
		seg := c.newSeg()
		seg.data = chunk
		seg.seq = c.sndNext
		c.sndNext += int64(len(seg.data))
		c.buffered += len(seg.data)
		c.sndQ = append(c.sndQ, seg)
		c.pump()
	}
	return nil
}

// pump admits queued segments while the send window has room, applying
// Nagle coalescing when configured.
func (c *Conn) pump() {
	for c.qLen() > 0 {
		seg := c.sndQ[c.sndQHead]
		if c.h.cfg.Nagle && !seg.fin && len(seg.data) < MSS {
			seg = c.nagleCoalesce()
			if seg == nil {
				return // hold the small segment until outstanding data is acked
			}
			c.transmit(seg)
			continue
		}
		if !seg.fin && c.sndQueued+int64(len(seg.data))-c.sndUna > int64(c.h.cfg.SendWindow) {
			return
		}
		c.popSndQ()
		if seg.fin {
			c.sendControl(ethernet.FlagFin, &tcpInfo{fin: true, seq: seg.seq})
			c.freeSeg(seg)
			continue
		}
		c.transmit(seg)
	}
}

// transmit admits one segment: accounting, wire, and retransmit queue.
func (c *Conn) transmit(seg *sendSeg) {
	c.sndQueued += int64(len(seg.data))
	c.buffered -= len(seg.data)
	c.SegsOut++
	c.unacked = append(c.unacked, seg)
	c.sendData(seg)
	c.armRTO(false)
}

// nagleCoalesce merges consecutive queued small segments into one up to
// MSS. It returns nil when the (still sub-MSS) merged segment must wait
// for outstanding data to drain, per Nagle's rule.
func (c *Conn) nagleCoalesce() *sendSeg {
	q := c.sndQ[c.sndQHead:]
	total := 0
	n := 0
	for n < len(q) && !q[n].fin && total+len(q[n].data) <= MSS {
		total += len(q[n].data)
		n++
	}
	if n == 0 {
		n, total = 1, len(q[0].data) // single oversize-window case
	}
	if total < MSS && c.inFlight() > 0 {
		return nil
	}
	if c.sndQueued+int64(total)-c.sndUna > int64(c.h.cfg.SendWindow) {
		return nil
	}
	// Byte-granular fill: top up from the next segment so coalesced
	// segments are exactly MSS when the buffer has the bytes.
	take := 0
	if total < MSS && n < len(q) && !q[n].fin {
		take = MSS - total
		if take > len(q[n].data) {
			take = len(q[n].data)
		}
		total += take
	}
	if n == 1 && take == 0 {
		return c.popSndQ()
	}
	merged := c.newSeg()
	merged.seq = q[0].seq
	merged.data = make([]byte, 0, total)
	for i := 0; i < n; i++ {
		merged.data = append(merged.data, q[i].data...)
	}
	if take > 0 {
		next := q[n]
		merged.data = append(merged.data, next.data[:take]...)
		next.data = next.data[take:]
		next.seq += int64(take)
	}
	for i := 0; i < n; i++ {
		c.freeSeg(c.popSndQ())
	}
	return merged
}

// sendData puts one data segment on the wire.
func (c *Conn) sendData(seg *sendSeg) {
	c.h.st.Send(&ethernet.Frame{
		Dst:     c.remoteHost,
		Proto:   ethernet.ProtoTCP,
		SrcPort: c.localPort,
		DstPort: c.remotePort,
		Flags:   ethernet.FlagData,
		NetLen:  IPHeaderBytes + TCPHeaderBytes + len(seg.data),
		Payload: seg.data,
		Opaque:  &tcpInfo{seq: seg.seq, dataLen: len(seg.data)},
	})
}

// armRTO (re)arms the retransmission timer by moving its logical
// deadline; the physical kernel event is only scheduled when none is
// outstanding. With reset, the exponential backoff returns to the base
// timeout (called on forward progress).
func (c *Conn) armRTO(reset bool) {
	if reset {
		c.rtoBackoff = 0
	}
	if c.inFlight() == 0 {
		// Fully acknowledged: disarm physically too, so an idle
		// connection leaves nothing in the event queue. This happens once
		// per write burst, not once per ACK, so the cancel churn the lazy
		// deadline avoids does not come back.
		c.rtoDeadline = 0
		c.rtoTimer.Cancel()
		c.rtoTimer = sim.Event{}
		return
	}
	rto := c.h.cfg.RTO << c.rtoBackoff
	if max := c.h.cfg.MaxRTO; max > 0 && rto > max {
		rto = max
	}
	c.rtoDeadline = c.h.k.Now().Add(rto)
	if !c.rtoTimer.Pending() {
		c.rtoTimer = c.h.k.At(c.rtoDeadline, "tcp.rto", c.onRTOFn)
	}
}

// onRTO fires the physical timer. A deadline that moved forward since the
// event was scheduled re-arms instead of timing out; a genuine expiry goes
// back N — the receiver keeps no out-of-order buffer, so every
// unacknowledged segment is resent in order, then the timer backs off.
// With MaxRetransmits configured, a segment that keeps timing out fails
// the connection with ErrTimedOut instead of backing off forever.
func (c *Conn) onRTO() {
	c.rtoTimer = sim.Event{}
	if c.inFlight() == 0 || c.rtoDeadline == 0 {
		return
	}
	if now := c.h.k.Now(); now < c.rtoDeadline {
		c.rtoTimer = c.h.k.At(c.rtoDeadline, "tcp.rto", c.onRTOFn)
		return
	}
	c.rtoBackoff++
	if max := c.h.cfg.MaxRetransmits; max > 0 && c.rtoBackoff > max {
		c.fail(ErrTimedOut)
		return
	}
	c.goBackN()
}

// fastRetransmit triggers the same go-back-N resend after triple
// duplicate ACKs, without growing the backoff.
func (c *Conn) fastRetransmit() {
	if c.inFlight() == 0 {
		return
	}
	c.goBackN()
}

func (c *Conn) goBackN() {
	for _, seg := range c.unacked[c.unaHead:] {
		c.Retransmits++
		c.sendData(seg)
	}
	c.armRTO(false)
}

// handle processes an inbound segment for an existing connection.
func (c *Conn) handle(f *ethernet.Frame, info *tcpInfo) {
	switch {
	case info.syn && f.Flags&ethernet.FlagAck != 0: // SYN-ACK at client
		if c.state == stateSynSent {
			c.synTimer.Cancel()
			c.synTimer = sim.Event{}
			c.state = stateEstablished
			// ack=0 in the data sequence space: the handshake must not
			// disturb byte-count window accounting.
			c.sendControl(ethernet.FlagAck, &tcpInfo{ack: 0})
			c.established.Broadcast()
		}
		return
	case info.syn: // retransmitted SYN at server: the SYN-ACK was lost
		if c.state == stateSynRcvd {
			c.sendControl(ethernet.FlagSyn|ethernet.FlagAck, &tcpInfo{syn: true, ack: 1})
		}
		return
	case info.fin:
		c.peerClosed = true
		c.sendControl(ethernet.FlagAck, &tcpInfo{ack: c.rcvNext})
		c.readers.Broadcast()
		return
	}
	if c.state == stateSynRcvd {
		c.state = stateEstablished
		if c.onEstablished != nil {
			c.onEstablished()
			c.onEstablished = nil
		}
		c.established.Broadcast()
	}
	if info.dataLen > 0 {
		switch {
		case info.seq == c.rcvNext:
			c.SegsIn++
			c.rcvNext += int64(info.dataLen)
			c.rcvBuf = append(c.rcvBuf, f.Payload...)
			c.readers.Broadcast()
			c.unackedSegs++
			if c.unackedSegs >= c.h.cfg.AckEvery {
				c.sendAckNow()
			} else if c.delAckAt == 0 {
				c.delAckAt = c.h.k.Now().Add(c.h.cfg.DelayedAckTimeout)
				if !c.delAck.Pending() {
					c.delAck = c.h.k.At(c.delAckAt, "tcp.delack", c.onDelAckFn)
				}
			}
		default:
			// Duplicate (retransmission after a lost ACK) or a
			// hole after a lost segment (go-back-N: no out-of-order
			// buffering). Either way, re-announce the cumulative ACK
			// immediately so the sender converges.
			c.DupSegsIn++
			c.unackedSegs = 0
			c.delAckAt = 0
			c.sendControl(ethernet.FlagAck, &tcpInfo{ack: c.rcvNext})
		}
	}
	if f.Flags&ethernet.FlagAck != 0 {
		switch {
		case info.ack > c.sndUna:
			c.sndUna = info.ack
			c.dupAcks = 0
			for c.inFlight() > 0 {
				seg := c.unacked[c.unaHead]
				if seg.seq+int64(len(seg.data)) > info.ack {
					break
				}
				c.unacked[c.unaHead] = nil
				c.unaHead++
				c.freeSeg(seg)
			}
			if c.unaHead == len(c.unacked) {
				c.unacked = c.unacked[:0]
				c.unaHead = 0
			}
			c.armRTO(true)
			c.pump()
			c.writers.Broadcast()
		case info.ack == c.sndUna && info.dataLen == 0 && c.inFlight() > 0 && !info.syn && !info.fin:
			// One fast retransmit per loss window: a go-back-N resend
			// itself provokes duplicate ACKs, which must not re-trigger.
			c.dupAcks++
			if c.dupAcks >= 3 && c.fastAt != c.sndUna+1 {
				c.fastAt = c.sndUna + 1
				c.fastRetransmit()
			}
		}
	}
}

// onDelAck fires the physical delayed-ACK timer: disarmed (delAckAt zero,
// the ACK already went out) it dies quietly; a deadline still in the
// future re-arms; a genuine expiry emits the ACK.
func (c *Conn) onDelAck() {
	c.delAck = sim.Event{}
	if c.delAckAt == 0 {
		return
	}
	if now := c.h.k.Now(); now < c.delAckAt {
		c.delAck = c.h.k.At(c.delAckAt, "tcp.delack", c.onDelAckFn)
		return
	}
	c.sendAckNow()
}

func (c *Conn) sendAckNow() {
	if c.unackedSegs == 0 {
		return
	}
	c.unackedSegs = 0
	c.delAckAt = 0
	c.sendControl(ethernet.FlagAck, &tcpInfo{ack: c.rcvNext})
}

// Buffered reports the bytes available to Read without blocking.
func (c *Conn) Buffered() int { return len(c.rcvBuf) }

// Read blocks p until n bytes are available, then returns them. If the
// peer closes before n bytes arrive, Read panics — the message protocols
// built on top never truncate.
func (c *Conn) Read(p *sim.Proc, n int) []byte {
	out, err := c.ReadErr(p, n)
	if err != nil {
		panic(fmt.Sprintf("netstack: Read on %s: %v (%d/%d bytes buffered)", c.h.name, err, len(c.rcvBuf), n))
	}
	return out
}

// ReadErr is Read returning an error instead of panicking: ErrClosed when
// the peer's FIN arrives before n bytes do, or the connection's failure
// cause (ErrTimedOut, ErrReset) when it dies while blocked. Buffered data
// already received stays readable after a failure.
func (c *Conn) ReadErr(p *sim.Proc, n int) ([]byte, error) {
	for len(c.rcvBuf) < n {
		if c.err != nil {
			return nil, c.err
		}
		if c.peerClosed {
			return nil, ErrClosed
		}
		c.readers.Wait(p)
	}
	out := c.rcvBuf[:n:n]
	c.rcvBuf = c.rcvBuf[n:]
	return out, nil
}

// Close sends a FIN after all queued data. It does not block.
func (c *Conn) Close() {
	if c.finSent || c.state == stateClosed {
		return
	}
	c.finSent = true
	fin := c.newSeg()
	fin.fin = true
	fin.seq = c.sndNext
	c.sndQ = append(c.sndQ, fin)
	c.pump()
}

// PeerClosed reports whether a FIN has arrived from the peer.
func (c *Conn) PeerClosed() bool { return c.peerClosed }
