package netstack

import (
	"bytes"
	"testing"

	"fxnet/internal/ethernet"
	"fxnet/internal/sim"
)

func nagleRig(t *testing.T) (*sim.Kernel, *Host, *Host, *[]ethernet.Capture) {
	t.Helper()
	k := sim.New(1)
	seg := ethernet.NewSegment(k, 0)
	cfg := DefaultConfig()
	cfg.Nagle = true
	a := NewHost(k, seg.Attach("a"), "a", cfg)
	b := NewHost(k, seg.Attach("b"), "b", cfg)
	caps := &[]ethernet.Capture{}
	seg.Tap(func(c ethernet.Capture) { *caps = append(*caps, c) })
	return k, a, b, caps
}

func TestNagleCoalescesSmallWrites(t *testing.T) {
	k, a, b, caps := nagleRig(t)
	l := b.Listen(80)
	const writes = 100
	const each = 100
	var got []byte
	k.Go("server", func(p *sim.Proc) {
		c := l.Accept(p)
		got = c.Read(p, writes*each)
	})
	k.Go("client", func(p *sim.Proc) {
		c := a.Connect(p, 1, 80)
		for i := 0; i < writes; i++ {
			c.Write(p, bytes.Repeat([]byte{byte(i)}, each))
		}
	})
	k.RunUntil(sim.Time(sim.Minute))
	if len(got) != writes*each {
		t.Fatalf("received %d bytes", len(got))
	}
	for i := 0; i < writes; i++ {
		if got[i*each] != byte(i) {
			t.Fatalf("stream corrupted at write %d", i)
		}
	}
	// Without Nagle this produces 100 small data frames; with Nagle the
	// stream coalesces to ~7 MSS-sized segments plus a tail.
	var dataFrames, fullFrames int
	for _, c := range *caps {
		if c.Proto == ethernet.ProtoTCP && c.Flags&ethernet.FlagData != 0 {
			dataFrames++
			if c.Size == 1518 {
				fullFrames++
			}
		}
	}
	if dataFrames > 20 {
		t.Errorf("%d data frames; Nagle should coalesce to ~8", dataFrames)
	}
	if fullFrames < 5 {
		t.Errorf("only %d maximal frames", fullFrames)
	}
}

func TestNagleSingleSmallWriteNotStuck(t *testing.T) {
	// A lone sub-MSS write with nothing outstanding must go immediately;
	// a second must wait for the first's ACK but still complete.
	k, a, b, caps := nagleRig(t)
	l := b.Listen(80)
	var got []byte
	k.Go("server", func(p *sim.Proc) {
		c := l.Accept(p)
		got = c.Read(p, 20)
	})
	k.Go("client", func(p *sim.Proc) {
		c := a.Connect(p, 1, 80)
		c.Write(p, make([]byte, 10))
		p.Sleep(sim.Millisecond) // ensure the first is on the wire alone
		c.Write(p, make([]byte, 10))
	})
	k.RunUntil(sim.Time(sim.Minute))
	if len(got) != 20 {
		t.Fatalf("received %d bytes", len(got))
	}
	// The second write must have waited for the delayed ACK (~200 ms).
	var dataTimes []sim.Time
	for _, c := range *caps {
		if c.Proto == ethernet.ProtoTCP && c.Flags&ethernet.FlagData != 0 {
			dataTimes = append(dataTimes, c.Time)
		}
	}
	if len(dataTimes) != 2 {
		t.Fatalf("%d data frames, want 2", len(dataTimes))
	}
	if gap := dataTimes[1].Sub(dataTimes[0]); gap < 150*sim.Millisecond {
		t.Errorf("second segment after %v; Nagle should hold it for the ACK", gap)
	}
}

func TestNagleLargeWritesUnaffected(t *testing.T) {
	// MSS-multiple writes flow exactly as without Nagle.
	k, a, b, caps := nagleRig(t)
	l := b.Listen(80)
	k.Go("server", func(p *sim.Proc) {
		c := l.Accept(p)
		c.Read(p, 10*MSS)
	})
	k.Go("client", func(p *sim.Proc) {
		c := a.Connect(p, 1, 80)
		c.Write(p, make([]byte, 10*MSS))
	})
	k.RunUntil(sim.Time(sim.Minute))
	full := 0
	for _, c := range *caps {
		if c.Size == 1518 {
			full++
		}
	}
	if full != 10 {
		t.Errorf("full frames = %d, want 10", full)
	}
}
