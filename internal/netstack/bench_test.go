package netstack

import (
	"testing"

	"fxnet/internal/ethernet"
	"fxnet/internal/sim"
)

// BenchmarkTCPTransfer measures the full simulation cost of moving 1 MB
// through the stack over the shared segment (segmentation, ACK clocking,
// CSMA/CD events).
func BenchmarkTCPTransfer(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := sim.New(1)
		seg := ethernet.NewSegment(k, 0)
		h0 := NewHost(k, seg.Attach("a"), "a", DefaultConfig())
		h1 := NewHost(k, seg.Attach("b"), "b", DefaultConfig())
		l := h1.Listen(80)
		k.Go("server", func(p *sim.Proc) { l.Accept(p).Read(p, 1<<20) })
		k.Go("client", func(p *sim.Proc) {
			c := h0.Connect(p, 1, 80)
			c.Write(p, make([]byte, 1<<20))
		})
		k.Run()
	}
	b.SetBytes(1 << 20)
}

// BenchmarkUDPDatagrams measures the fire-and-forget path.
func BenchmarkUDPDatagrams(b *testing.B) {
	k := sim.New(1)
	seg := ethernet.NewSegment(k, 0)
	h0 := NewHost(k, seg.Attach("a"), "a", DefaultConfig())
	h1 := NewHost(k, seg.Attach("b"), "b", DefaultConfig())
	h1.BindUDP(9, func(int, uint16, []byte) {})
	payload := make([]byte, 64)
	for i := 0; i < b.N; i++ {
		h0.SendUDP(1, 9, 9, payload)
	}
	b.ResetTimer()
	k.Run()
}
