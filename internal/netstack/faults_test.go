package netstack

import (
	"errors"
	"testing"

	"fxnet/internal/ethernet"
	"fxnet/internal/sim"
)

// newFaultRig builds a two-host rig with an explicit transport config,
// for the bounded-retry tests.
func newFaultRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	r := &rig{k: sim.New(1)}
	r.seg = ethernet.NewSegment(r.k, 0)
	for i := 0; i < 2; i++ {
		st := r.seg.Attach(string(rune('a' + i)))
		r.hosts = append(r.hosts, NewHost(r.k, st, st.Name(), cfg))
	}
	return r
}

func TestConnectTimeoutAgainstDeadHost(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ConnectTimeout = 5 * sim.Second
	r := newFaultRig(t, cfg)
	r.seg.SetLinkDown(1, true) // SYNs vanish on the wire

	var err error
	var at sim.Time
	r.k.Go("client", func(p *sim.Proc) {
		_, err = r.hosts[0].ConnectErr(p, 1, 80)
		at = p.Now()
	})
	r.k.Run()
	if !errors.Is(err, ErrTimedOut) {
		t.Fatalf("ConnectErr = %v, want ErrTimedOut", err)
	}
	if at != sim.Time(5*sim.Second) {
		t.Errorf("connect failed at %v, want exactly the 5s deadline", at)
	}
}

func TestMaxRetransmitsBoundsSynRetries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxRetransmits = 3
	r := newFaultRig(t, cfg)
	r.seg.SetLinkDown(1, true)

	var err error
	r.k.Go("client", func(p *sim.Proc) {
		_, err = r.hosts[0].ConnectErr(p, 1, 80)
	})
	elapsed := r.k.Run()
	if !errors.Is(err, ErrTimedOut) {
		t.Fatalf("ConnectErr = %v, want ErrTimedOut", err)
	}
	// RTO 1s doubling: retries at ~1, 2, 4 s; the 4th timeout fails the
	// connection. Without the bound the run would never terminate.
	if elapsed > sim.Time(20*sim.Second) {
		t.Errorf("gave up at %v, expected within ~15s", elapsed)
	}
}

func TestMaxRetransmitsFailsEstablishedConn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxRetransmits = 3
	r := newFaultRig(t, cfg)

	l := r.hosts[1].Listen(80)
	var cliErr error
	r.k.Go("server", func(p *sim.Proc) {
		c := l.Accept(p)
		// Blocks forever on bytes that never arrive; the kernel still
		// drains because the writer's bounded retries terminate.
		_, _ = c.ReadErr(p, 4000)
	})
	r.k.Go("client", func(p *sim.Proc) {
		c := r.hosts[0].Connect(p, 1, 80)
		p.Sleep(100 * sim.Millisecond)
		r.seg.SetLinkDown(1, true) // blackhole mid-connection
		// Larger than the send window, so the writer blocks on ACKs
		// that never come and observes the retransmit bound.
		cliErr = c.WriteErr(p, make([]byte, 64*1024))
	})
	r.k.Run()
	if !errors.Is(cliErr, ErrTimedOut) {
		t.Errorf("writer error = %v, want ErrTimedOut", cliErr)
	}
}

func TestCrashResetsConnections(t *testing.T) {
	r := newFaultRig(t, DefaultConfig())
	l := r.hosts[1].Listen(80)
	var cliErr error
	r.k.Go("server", func(p *sim.Proc) {
		c := l.Accept(p)
		_, _ = c.ReadErr(p, 10)
	})
	r.k.Go("client", func(p *sim.Proc) {
		c := r.hosts[0].Connect(p, 1, 80)
		p.Sleep(time500ms)
		r.hosts[0].Crash()
		_, cliErr = c.ReadErr(p, 10)
	})
	r.k.Run()
	if !errors.Is(cliErr, ErrReset) {
		t.Errorf("read on crashed host = %v, want ErrReset", cliErr)
	}
	if !r.hosts[0].Down() {
		t.Errorf("host not marked down after Crash")
	}
}

const time500ms = 500 * sim.Millisecond
