// Package profiling wires the standard pprof and runtime/trace
// collectors into the command-line tools, so the hot-path work of the
// simulator can be measured on exactly the workloads the paper runs
// (DESIGN.md §8 has the quickstart).
package profiling

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the destinations of the three collectors; empty means off.
type Flags struct {
	CPUProfile string
	MemProfile string
	Trace      string
}

// Register declares the standard -cpuprofile/-memprofile/-trace flags on
// the default flag set and returns the struct they populate.
func Register() *Flags {
	f := &Flags{}
	flag.StringVar(&f.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	flag.StringVar(&f.MemProfile, "memprofile", "", "write a pprof heap profile to this file on exit")
	flag.StringVar(&f.Trace, "trace", "", "write a runtime execution trace to this file")
	return f
}

// Start begins the requested collectors and returns a stop function to
// defer: it ends the CPU profile and execution trace and snapshots the
// heap profile (after a GC, so live objects dominate).
func (f *Flags) Start() (stop func() error, err error) {
	var stops []func() error
	if f.CPUProfile != "" {
		cf, err := os.Create(f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			cf.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		stops = append(stops, func() error {
			pprof.StopCPUProfile()
			return cf.Close()
		})
	}
	if f.Trace != "" {
		tf, err := os.Create(f.Trace)
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		if err := trace.Start(tf); err != nil {
			tf.Close()
			return nil, fmt.Errorf("trace: %w", err)
		}
		stops = append(stops, func() error {
			trace.Stop()
			return tf.Close()
		})
	}
	if f.MemProfile != "" {
		path := f.MemProfile
		stops = append(stops, func() error {
			mf, err := os.Create(path)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(mf); err != nil {
				mf.Close()
				return fmt.Errorf("memprofile: %w", err)
			}
			return mf.Close()
		})
	}
	return func() error {
		var first error
		for _, s := range stops {
			if err := s(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}
