// Package analysis computes the paper's trace characterizations: packet
// size and interarrival statistics (figures 3, 4, 8, 9), average
// bandwidth (figure 5), the 10 ms-windowed instantaneous average
// bandwidth (figures 6 and 10), and its periodogram power spectrum
// (figures 7 and 11).
package analysis

import (
	"fxnet/internal/dsp"
	"fxnet/internal/sim"
	"fxnet/internal/stats"
	"fxnet/internal/trace"
)

// PaperWindow is the paper's 10 ms averaging interval.
const PaperWindow = 10 * sim.Millisecond

// Sample is one point of an instantaneous-bandwidth series.
type Sample struct {
	T    sim.Time // window end
	KBps float64
}

// SizeStats summarizes packet sizes in bytes.
func SizeStats(t *trace.Trace) stats.Summary {
	return stats.Summarize(t.Sizes())
}

// InterarrivalStats summarizes packet interarrival times in milliseconds.
func InterarrivalStats(t *trace.Trace) stats.Summary {
	return stats.Summarize(t.Interarrivals())
}

// AverageBandwidthKBps is total captured bytes over the trace duration,
// in KB/s (the paper's figure 5 quantity). Traces with fewer than two
// packets report 0.
func AverageBandwidthKBps(t *trace.Trace) float64 {
	d := t.Duration().Seconds()
	if d <= 0 {
		return 0
	}
	return float64(t.TotalBytes()) / d / 1000
}

// SlidingBandwidth computes the instantaneous average bandwidth with a
// sliding window that moves a single packet at a time, as the paper's
// figure 6 plots: sample i is the number of bytes in (tᵢ−window, tᵢ]
// divided by the window.
func SlidingBandwidth(t *trace.Trace, window sim.Duration) []Sample {
	if len(t.Packets) == 0 || window <= 0 {
		return nil
	}
	out := make([]Sample, len(t.Packets))
	var sum int64
	lo := 0
	for i, p := range t.Packets {
		sum += int64(p.Size)
		for t.Packets[lo].Time <= p.Time.Add(-window) {
			sum -= int64(t.Packets[lo].Size)
			lo++
		}
		out[i] = Sample{T: p.Time, KBps: float64(sum) / window.Seconds() / 1000}
	}
	return out
}

// BinnedBandwidth computes the bandwidth along static intervals of the
// given width — the evenly spaced series the paper feeds to the power
// spectrum ("a close approximation to the sliding window bandwidth").
// The series starts at the first packet's time, and dt is the bin width
// in seconds.
func BinnedBandwidth(t *trace.Trace, bin sim.Duration) (series []float64, dt float64) {
	if len(t.Packets) == 0 || bin <= 0 {
		return nil, bin.Seconds()
	}
	t0 := t.Packets[0].Time
	last := t.Packets[len(t.Packets)-1].Time
	n := int(last.Sub(t0)/bin) + 1
	series = make([]float64, n)
	for _, p := range t.Packets {
		idx := int(p.Time.Sub(t0) / bin)
		series[idx] += float64(p.Size)
	}
	scale := 1 / bin.Seconds() / 1000
	for i := range series {
		series[i] *= scale
	}
	return series, bin.Seconds()
}

// Spectrum computes the periodogram of the binned instantaneous
// bandwidth — the paper's figures 7 and 11. The mean is removed (and
// retained as the DC coefficient) so the periodic structure dominates,
// and the series is zero-padded to a power of two.
func Spectrum(t *trace.Trace, bin sim.Duration) *dsp.Spectrum {
	series, dt := BinnedBandwidth(t, bin)
	return dsp.Periodogram(series, dt, dsp.PeriodogramOptions{
		RemoveMean: true,
		PadPow2:    true,
	})
}

// SpectrumOfSeries computes the same periodogram from an existing
// bandwidth series.
func SpectrumOfSeries(series []float64, dt float64) *dsp.Spectrum {
	return dsp.Periodogram(series, dt, dsp.PeriodogramOptions{
		RemoveMean: true,
		PadPow2:    true,
	})
}

// SpectrumInto is SpectrumOfSeries computing into a reusable dsp
// workspace: analyses that take spectra in a loop (sliding windows,
// parameter sweeps) reuse one Workspace and allocate nothing per
// iteration. The returned spectrum aliases ws and is overwritten by the
// next call.
func SpectrumInto(ws *dsp.Workspace, series []float64, dt float64) *dsp.Spectrum {
	return ws.Periodogram(series, dt, dsp.PeriodogramOptions{
		RemoveMean: true,
		PadPow2:    true,
	})
}

// Window is one segment of a fault-bracketed trace with its spectrum —
// the unit of the pre/during/post comparison.
type Window struct {
	Label    string
	Trace    *trace.Trace
	Spectrum *dsp.Spectrum
}

// PreDuringPost splits the trace around the absolute virtual-time fault
// window [start, end) and computes each segment's bandwidth spectrum with
// the given bin: the paper's §6.1 before/after methodology, applied to a
// scripted fault instead of a serendipitous OS stall. Windows with no
// packets carry an empty spectrum.
func PreDuringPost(t *trace.Trace, start, end sim.Time, bin sim.Duration) (pre, during, post Window) {
	cut := func(label string, lo, hi sim.Time) Window {
		tr := t.Filter(func(p trace.Packet) bool { return p.Time >= lo && p.Time < hi })
		return Window{Label: label, Trace: tr, Spectrum: Spectrum(tr, bin)}
	}
	const horizon = sim.Time(1) << 62
	return cut("pre", 0, start), cut("during", start, end), cut("post", end, horizon)
}

// FaultWindow reports the span of the trace's fault marks — the earliest
// and latest annotated instants — and ok=false when the trace carries no
// marks.
func FaultWindow(t *trace.Trace) (start, end sim.Time, ok bool) {
	if len(t.Marks) == 0 {
		return 0, 0, false
	}
	start, end = t.Marks[0].Time, t.Marks[0].Time
	for _, m := range t.Marks[1:] {
		if m.Time < start {
			start = m.Time
		}
		if m.Time > end {
			end = m.Time
		}
	}
	return start, end, true
}

// SizeHistogram bins packet sizes over the valid Ethernet range.
func SizeHistogram(t *trace.Trace, bins int) *stats.Histogram {
	return stats.NewHistogram(t.Sizes(), 0, 1600, bins)
}

// ModeCount reports the number of packet-size modes holding at least
// minFrac of the packets — 3 for the paper's "trimodal" kernels.
func ModeCount(t *trace.Trace, minFrac float64) int {
	return len(SizeHistogram(t, 32).Modes(minFrac))
}

// BurstStats summarizes the burst structure of a trace: contiguous runs
// of packets separated by gaps of at least gap.
type BurstStats struct {
	Count         int
	MeanBytes     float64
	SDBytes       float64
	MeanPeriodSec float64 // spacing between burst starts
	MeanLengthSec float64
}

// Bursts segments the trace into bursts separated by idle gaps ≥ gap and
// summarizes them. The paper's "constant burst sizes" claim corresponds
// to SDBytes ≪ MeanBytes.
func Bursts(t *trace.Trace, gap sim.Duration) BurstStats {
	if len(t.Packets) == 0 {
		return BurstStats{}
	}
	var sizes []float64
	var starts []sim.Time
	var lengths []float64
	curBytes := int64(t.Packets[0].Size)
	curStart := t.Packets[0].Time
	lastT := t.Packets[0].Time
	flush := func(end sim.Time) {
		sizes = append(sizes, float64(curBytes))
		starts = append(starts, curStart)
		lengths = append(lengths, end.Sub(curStart).Seconds())
	}
	for _, p := range t.Packets[1:] {
		if p.Time.Sub(lastT) >= gap {
			flush(lastT)
			curBytes = 0
			curStart = p.Time
		}
		curBytes += int64(p.Size)
		lastT = p.Time
	}
	flush(lastT)

	bs := BurstStats{Count: len(sizes)}
	s := stats.Summarize(sizes)
	bs.MeanBytes, bs.SDBytes = s.Mean, s.SD
	bs.MeanLengthSec = stats.Mean(lengths)
	if len(starts) > 1 {
		var gaps []float64
		for i := 1; i < len(starts); i++ {
			gaps = append(gaps, starts[i].Sub(starts[i-1]).Seconds())
		}
		bs.MeanPeriodSec = stats.Mean(gaps)
	}
	return bs
}

// PhaseCoincidence quantifies the paper's "correlated traffic along many
// connections" at the granularity it is claimed: communication phases.
// The aggregate trace is segmented into bursts separated by idle gaps ≥
// gap; for each burst, the fraction of the given connections that carry
// at least one packet is computed, and the mean fraction over bursts is
// returned. Synchronized collective patterns score near 1.
func PhaseCoincidence(t *trace.Trace, pairs [][2]int, gap sim.Duration) float64 {
	if len(t.Packets) == 0 || len(pairs) == 0 {
		return 0
	}
	pairIdx := make(map[[2]int]int, len(pairs))
	for i, p := range pairs {
		pairIdx[p] = i
	}
	seen := make([]bool, len(pairs))
	var fracs []float64
	flush := func() {
		n := 0
		for i := range seen {
			if seen[i] {
				n++
				seen[i] = false
			}
		}
		fracs = append(fracs, float64(n)/float64(len(pairs)))
	}
	last := t.Packets[0].Time
	for i, p := range t.Packets {
		if i > 0 && p.Time.Sub(last) >= gap {
			flush()
		}
		if idx, ok := pairIdx[[2]int{int(p.Src), int(p.Dst)}]; ok {
			seen[idx] = true
		}
		last = p.Time
	}
	flush()
	// Drop the first and last partial phases when there are enough.
	if len(fracs) > 2 {
		fracs = fracs[1 : len(fracs)-1]
	}
	return stats.Mean(fracs)
}

// ConnectionCorrelation computes the mean pairwise Pearson correlation of
// the binned bandwidth series of the given connections — the paper's
// "correlated traffic along many connections" claim quantified. Both
// series are truncated to the shorter length; pairs with fewer than two
// overlapping bins are skipped.
func ConnectionCorrelation(t *trace.Trace, pairs [][2]int, bin sim.Duration) float64 {
	return connectionCorrelation(t, pairs, bin, nil)
}

// connectionCorrelation builds the per-pair series on the pool (each
// pair's bins are an independent scan of the read-only trace) and then
// folds the pairwise correlations serially in (i, j) order, so the
// result is bit-identical for any pool size.
func connectionCorrelation(t *trace.Trace, pairs [][2]int, bin sim.Duration, pool *dsp.Pool) float64 {
	if len(t.Packets) == 0 {
		return 0
	}
	t0 := t.Packets[0].Time
	end := t.Packets[len(t.Packets)-1].Time
	n := int(end.Sub(t0)/bin) + 1
	series := make([][]float64, len(pairs))
	pool.Map(len(pairs), func(_ *dsp.Workspace, i int) {
		pr := pairs[i]
		s := make([]float64, n)
		for _, p := range t.Packets {
			if int(p.Src) == pr[0] && int(p.Dst) == pr[1] {
				s[int(p.Time.Sub(t0)/bin)] += float64(p.Size)
			}
		}
		series[i] = s
	})
	var sum float64
	var count int
	for i := 0; i < len(series); i++ {
		for j := i + 1; j < len(series); j++ {
			sum += stats.PearsonR(series[i], series[j])
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}
