package analysis

import (
	"fxnet/internal/dsp"
	"fxnet/internal/ethernet"
	"fxnet/internal/sim"
	"fxnet/internal/stats"
	"fxnet/internal/trace"
)

// Report is the per-program characterization of the paper's figures 3–7
// (and 8–11 for AIRSHED).
type Report struct {
	Program string

	// Figure 3 / 8: packet sizes (bytes).
	AggSize  stats.Summary
	ConnSize stats.Summary // zero Summary when no representative connection

	// Figure 4 / 9: interarrival times (ms).
	AggInterarrival  stats.Summary
	ConnInterarrival stats.Summary

	// Figure 5 / §6.2: average bandwidth (KB/s).
	AggKBps  float64
	ConnKBps float64

	// Figure 6 / 10: instantaneous bandwidth (10 ms bins).
	AggSeries  []float64
	ConnSeries []float64
	SeriesDT   float64

	// Figure 7 / 11: power spectra.
	AggSpectrum  *dsp.Spectrum
	ConnSpectrum *dsp.Spectrum

	// Packet-size modality (trimodal for SOR/2DFFT/HIST).
	SizeModes int

	// Mean pairwise correlation of per-connection bandwidth (burst-level
	// bins).
	Correlation float64

	// Coincidence is the mean fraction of data-bearing connections active
	// in each communication phase — the paper's "correlated traffic along
	// many connections" at phase granularity.
	Coincidence float64
}

// CorrelationBin is the window used for the connection-correlation
// statistic: at the 10 ms scale the shared medium serializes connections
// (mutual exclusion looks like anti-correlation); the paper's in-phase
// claim is about communication phases, so correlate at 250 ms.
const CorrelationBin = 250 * sim.Millisecond

// CoincidenceGap is the idle gap that separates communication phases for
// the phase-coincidence statistic.
const CoincidenceGap = 100 * sim.Millisecond

// CharacterizeTrace computes the full report for a materialized trace.
// repConn is the program's representative connection, or (-1, -1).
func CharacterizeTrace(tr *trace.Trace, program string, repConn [2]int) *Report {
	return CharacterizeTracePool(tr, program, repConn, nil)
}

// CharacterizeTracePool is CharacterizeTrace with the report's
// independent sections fanned out over a worker pool. Every section is
// the same pure function the serial path runs and each writes its own
// report field, so the result is byte-identical for any pool size
// (including nil, which runs the sections inline in index order).
func CharacterizeTracePool(tr *trace.Trace, program string, repConn [2]int, pool *dsp.Pool) *Report {
	rep := &Report{Program: program}

	// Correlation pairs: the data-bearing host-to-host connections
	// (broadcast pseudo-destination excluded). Computed up front so the
	// per-pair work can join the fan-out.
	var pairs [][2]int
	for _, pr := range tr.Pairs() {
		if pr[1] != int(trace.Broadcast) {
			pairs = append(pairs, pr)
		}
	}

	sections := []func(){
		func() {
			rep.AggSize = SizeStats(tr)
			rep.AggInterarrival = InterarrivalStats(tr)
			rep.AggKBps = AverageBandwidthKBps(tr)
			rep.SizeModes = ModeCount(tr, 0.005)
		},
		func() {
			rep.AggSeries, rep.SeriesDT = BinnedBandwidth(tr, PaperWindow)
			rep.AggSpectrum = SpectrumOfSeries(rep.AggSeries, rep.SeriesDT)
		},
		func() {
			if repConn[0] < 0 {
				return
			}
			conn := tr.Connection(repConn[0], repConn[1])
			rep.ConnSize = SizeStats(conn)
			rep.ConnInterarrival = InterarrivalStats(conn)
			rep.ConnKBps = AverageBandwidthKBps(conn)
			rep.ConnSeries, _ = BinnedBandwidth(conn, PaperWindow)
			rep.ConnSpectrum = SpectrumOfSeries(rep.ConnSeries, PaperWindow.Seconds())
		},
		func() {
			if len(pairs) > 1 {
				rep.Correlation = connectionCorrelation(tr, pairs, CorrelationBin, pool)
			}
		},
		func() {
			// Phase coincidence over TCP-data connections only (daemon
			// keepalives would dilute it).
			data := tr.Filter(func(p trace.Packet) bool {
				return p.Proto == ethernet.ProtoTCP && p.Flags&ethernet.FlagData != 0
			})
			var dataPairs [][2]int
			for _, pr := range data.Pairs() {
				dataPairs = append(dataPairs, pr)
			}
			if len(dataPairs) > 1 {
				rep.Coincidence = PhaseCoincidence(data, dataPairs, CoincidenceGap)
			}
		},
	}
	pool.Map(len(sections), func(_ *dsp.Workspace, i int) { sections[i]() })
	return rep
}
