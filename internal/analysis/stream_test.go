package analysis

import (
	"math"
	"testing"

	"fxnet/internal/sim"
	"fxnet/internal/trace"
)

// feed folds a materialized trace through a characterizer/accumulator
// chunk by chunk, the way a collector would deliver it.
func feed(s trace.Sink, tr *trace.Trace, chunkLen int) {
	for lo := 0; lo < len(tr.Packets); lo += chunkLen {
		hi := min(lo+chunkLen, len(tr.Packets))
		ch := trace.NewChunk(hi - lo)
		for _, p := range tr.Packets[lo:hi] {
			ch.Time = append(ch.Time, p.Time)
			ch.Size = append(ch.Size, p.Size)
			ch.Src = append(ch.Src, p.Src)
			ch.Dst = append(ch.Dst, p.Dst)
			ch.Proto = append(ch.Proto, p.Proto)
			ch.Flags = append(ch.Flags, p.Flags)
			ch.SrcPort = append(ch.SrcPort, p.SrcPort)
			ch.DstPort = append(ch.DstPort, p.DstPort)
		}
		s.Fold(ch)
	}
}

// TestAccumulatorMatchesBinnedBandwidth: the streaming series must be
// bit-identical to the post-hoc windowing, across chunk boundaries.
func TestAccumulatorMatchesBinnedBandwidth(t *testing.T) {
	tr := burstyTrace(100, 200, 20, 1000, 500)
	want, wantDT := BinnedBandwidth(tr, PaperWindow)
	for _, chunkLen := range []int{1, 7, 1000, len(tr.Packets)} {
		acc := NewAccumulator(PaperWindow)
		feed(acc, tr, chunkLen)
		got, dt := acc.Series()
		if dt != wantDT {
			t.Fatalf("chunk %d: dt %v want %v", chunkLen, dt, wantDT)
		}
		if len(got) != len(want) {
			t.Fatalf("chunk %d: %d bins, want %d", chunkLen, len(got), len(want))
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("chunk %d: bin %d = %v, want %v", chunkLen, i, got[i], want[i])
			}
		}
		if acc.N() != int64(len(tr.Packets)) {
			t.Fatalf("chunk %d: folded %d packets, want %d", chunkLen, acc.N(), len(tr.Packets))
		}
	}
}

// TestAccumulatorEmpty: no packets → nil series with the bin width as
// dt, matching BinnedBandwidth on an empty trace.
func TestAccumulatorEmpty(t *testing.T) {
	acc := NewAccumulator(PaperWindow)
	series, dt := acc.Series()
	if series != nil || dt != PaperWindow.Seconds() {
		t.Fatalf("empty accumulator: series=%v dt=%v", series, dt)
	}
}

// TestStreamCharacterizerMatchesTrace: the full streaming report against
// the trace-derived one on a synthetic multi-connection trace (the
// end-to-end simulator parity lives in internal/core).
func TestStreamCharacterizerMatchesTrace(t *testing.T) {
	tr := trace.New()
	// Two data connections bursting in phase plus reverse ACK traffic,
	// periodic at 150 ms over 30 s.
	for start := sim.Time(0); start < sim.TimeOf(30); start = start.Add(150 * sim.Millisecond) {
		for i := 0; i < 10; i++ {
			at := start.Add(sim.Duration(i) * 400 * sim.Microsecond)
			tr.Packets = append(tr.Packets,
				trace.Packet{Time: at, Size: 1000, Src: 1, Dst: 0, Proto: 1, Flags: 1 | 2},
				trace.Packet{Time: at.Add(90 * sim.Microsecond), Size: 1200, Src: 2, Dst: 0, Proto: 1, Flags: 1 | 2},
				trace.Packet{Time: at.Add(150 * sim.Microsecond), Size: 64, Src: 0, Dst: 1, Proto: 1, Flags: 2},
			)
		}
	}
	repConn := [2]int{1, 0}
	want := CharacterizeTrace(tr, "synthetic", repConn)

	sc := NewStreamCharacterizer("synthetic", repConn)
	feed(sc, tr, 97)
	got := sc.Report()

	if got.Program != want.Program {
		t.Errorf("program %q want %q", got.Program, want.Program)
	}
	for i := range want.AggSeries {
		if math.Float64bits(got.AggSeries[i]) != math.Float64bits(want.AggSeries[i]) {
			t.Fatalf("AggSeries[%d] = %v want %v", i, got.AggSeries[i], want.AggSeries[i])
		}
	}
	for i := range want.ConnSeries {
		if math.Float64bits(got.ConnSeries[i]) != math.Float64bits(want.ConnSeries[i]) {
			t.Fatalf("ConnSeries[%d] = %v want %v", i, got.ConnSeries[i], want.ConnSeries[i])
		}
	}
	for _, f := range []struct {
		what      string
		got, want float64
	}{
		{"AggKBps", got.AggKBps, want.AggKBps},
		{"ConnKBps", got.ConnKBps, want.ConnKBps},
		{"Correlation", got.Correlation, want.Correlation},
		{"Coincidence", got.Coincidence, want.Coincidence},
		{"SeriesDT", got.SeriesDT, want.SeriesDT},
		{"AggMean", got.AggSize.Mean, want.AggSize.Mean},
		{"ConnMean", got.ConnSize.Mean, want.ConnSize.Mean},
		{"AggInterMean", got.AggInterarrival.Mean, want.AggInterarrival.Mean},
	} {
		if math.Float64bits(f.got) != math.Float64bits(f.want) {
			t.Errorf("%s = %v want %v", f.what, f.got, f.want)
		}
	}
	if got.SizeModes != want.SizeModes {
		t.Errorf("SizeModes = %d want %d", got.SizeModes, want.SizeModes)
	}
	if got.AggSize.N != want.AggSize.N || got.ConnSize.N != want.ConnSize.N {
		t.Errorf("counts: agg %d/%d conn %d/%d", got.AggSize.N, want.AggSize.N, got.ConnSize.N, want.ConnSize.N)
	}
	for i := range want.AggSpectrum.Power {
		if math.Float64bits(got.AggSpectrum.Power[i]) != math.Float64bits(want.AggSpectrum.Power[i]) {
			t.Fatalf("AggSpectrum.Power[%d] differs", i)
		}
	}
}

// BenchmarkAccumulatorAdd measures the per-packet hot path with the bin
// array warm: it must not allocate.
func BenchmarkAccumulatorAdd(b *testing.B) {
	acc := NewAccumulator(PaperWindow)
	// Warm the bin array over the full span the loop will touch.
	span := sim.TimeOf(100)
	acc.Add(0, 1)
	acc.Add(span, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := sim.Time(int64(i%1000) * int64(span) / 1000)
		acc.Add(t, uint16(64+i%1400))
	}
}

// BenchmarkStreamCharacterizerFold measures the full streaming fold over
// the standard bursty trace, chunked as a collector would deliver it.
func BenchmarkStreamCharacterizerFold(b *testing.B) {
	tr := burstyTrace(100, 200, 20, 1000, 500)
	chunks := make([]*trace.Chunk, 0)
	const chunkLen = 16384
	for lo := 0; lo < len(tr.Packets); lo += chunkLen {
		hi := min(lo+chunkLen, len(tr.Packets))
		ch := trace.NewChunk(hi - lo)
		for _, p := range tr.Packets[lo:hi] {
			ch.Time = append(ch.Time, p.Time)
			ch.Size = append(ch.Size, p.Size)
			ch.Src = append(ch.Src, p.Src)
			ch.Dst = append(ch.Dst, p.Dst)
			ch.Proto = append(ch.Proto, p.Proto)
			ch.Flags = append(ch.Flags, p.Flags)
			ch.SrcPort = append(ch.SrcPort, p.SrcPort)
			ch.DstPort = append(ch.DstPort, p.DstPort)
		}
		chunks = append(chunks, ch)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := NewStreamCharacterizer("bench", [2]int{0, 1})
		for _, ch := range chunks {
			sc.Fold(ch)
		}
	}
}
