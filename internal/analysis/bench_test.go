package analysis

import "testing"

// The benchmarks reuse burstyTrace from analysis_test.go: ~10k packets of
// periodic bursts over 100 s.

func BenchmarkBinnedBandwidth(b *testing.B) {
	tr := burstyTrace(100, 200, 20, 1000, 500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BinnedBandwidth(tr, PaperWindow)
	}
}

func BenchmarkSlidingBandwidth(b *testing.B) {
	tr := burstyTrace(100, 200, 20, 1000, 500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SlidingBandwidth(tr, PaperWindow)
	}
}

func BenchmarkSpectrum(b *testing.B) {
	tr := burstyTrace(100, 200, 20, 1000, 500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Spectrum(tr, PaperWindow)
	}
}

func BenchmarkBursts(b *testing.B) {
	tr := burstyTrace(100, 200, 20, 1000, 500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Bursts(tr, 50_000_000)
	}
}
