package analysis

import (
	"math"
	"testing"

	"fxnet/internal/ethernet"
	"fxnet/internal/sim"
	"fxnet/internal/trace"
)

// burstyTrace builds a synthetic trace with periodic bursts: every
// periodMs, a burst of count packets of size bytes spaced spacingUs
// apart, across hosts 0→1.
func burstyTrace(durationSec float64, periodMs int, count, bytes, spacingUs int) *trace.Trace {
	t := trace.New()
	period := sim.Duration(periodMs) * sim.Millisecond
	for start := sim.Time(0); start < sim.TimeOf(durationSec); start = start.Add(period) {
		for i := 0; i < count; i++ {
			t.Packets = append(t.Packets, trace.Packet{
				Time: start.Add(sim.Duration(i*spacingUs) * sim.Microsecond),
				Size: uint16(bytes), Src: 0, Dst: 1,
				Proto: ethernet.ProtoTCP, Flags: ethernet.FlagData,
			})
		}
	}
	return t
}

func TestSizeAndInterarrivalStats(t *testing.T) {
	tr := burstyTrace(1, 100, 5, 1000, 500)
	ss := SizeStats(tr)
	if ss.Min != 1000 || ss.Max != 1000 || ss.SD != 0 {
		t.Errorf("size stats = %+v", ss)
	}
	is := InterarrivalStats(tr)
	if is.Min != 0.5 { // 500 µs
		t.Errorf("min interarrival = %v", is.Min)
	}
	if is.Max < 97 || is.Max > 99 { // gap between bursts
		t.Errorf("max interarrival = %v", is.Max)
	}
	// Bursty: max ≫ avg, the paper's signature.
	if is.Max/is.Mean < 5 {
		t.Errorf("max/avg = %v, expected bursty ratio", is.Max/is.Mean)
	}
}

func TestAverageBandwidth(t *testing.T) {
	// 10 bursts/s × 5 pkts × 1000 B = ~50 KB/s.
	tr := burstyTrace(10, 100, 5, 1000, 500)
	got := AverageBandwidthKBps(tr)
	if got < 45 || got > 56 {
		t.Errorf("avg bandwidth = %v KB/s, want ≈50", got)
	}
	if AverageBandwidthKBps(trace.New()) != 0 {
		t.Error("empty trace bandwidth != 0")
	}
}

func TestSlidingBandwidthWindow(t *testing.T) {
	tr := burstyTrace(1, 200, 4, 1250, 100)
	sb := SlidingBandwidth(tr, PaperWindow)
	if len(sb) != tr.Len() {
		t.Fatalf("len = %d", len(sb))
	}
	// At the last packet of a burst, the window holds the whole burst:
	// 5000 B / 10 ms = 500 KB/s.
	peak := 0.0
	for _, s := range sb {
		if s.KBps > peak {
			peak = s.KBps
		}
	}
	if math.Abs(peak-500) > 1 {
		t.Errorf("peak = %v KB/s, want 500", peak)
	}
	if SlidingBandwidth(trace.New(), PaperWindow) != nil {
		t.Error("sliding bandwidth of empty trace")
	}
}

func TestSlidingWindowExpiry(t *testing.T) {
	// Two packets 20 ms apart: the second window must not include the first.
	tr := trace.New()
	tr.Packets = []trace.Packet{
		{Time: 0, Size: 1000},
		{Time: sim.Time(20 * sim.Millisecond), Size: 500},
	}
	sb := SlidingBandwidth(tr, PaperWindow)
	if sb[1].KBps != 50 { // 500 B / 10 ms
		t.Errorf("second sample = %v, want 50", sb[1].KBps)
	}
}

func TestBinnedBandwidthConservesBytes(t *testing.T) {
	tr := burstyTrace(2, 70, 3, 800, 300)
	series, dt := BinnedBandwidth(tr, PaperWindow)
	if dt != 0.01 {
		t.Errorf("dt = %v", dt)
	}
	var sum float64
	for _, v := range series {
		sum += v * dt * 1000 // back to bytes
	}
	if math.Abs(sum-float64(tr.TotalBytes())) > 1 {
		t.Errorf("binned total %v != trace total %d", sum, tr.TotalBytes())
	}
}

func TestSpectrumFindsBurstPeriod(t *testing.T) {
	// 5 Hz bursts, each ~30 ms wide so the spectral envelope decays and
	// the fundamental dominates (a 1-bin impulse train has flat
	// harmonics).
	tr := burstyTrace(40, 200, 10, 1250, 3000)
	s := Spectrum(tr, PaperWindow)
	got := s.DominantFreq()
	if math.Abs(got-5) > 3*s.DF {
		t.Errorf("dominant = %v Hz, want 5", got)
	}
}

func TestSpectrumHarmonics(t *testing.T) {
	tr := burstyTrace(40, 250, 4, 1500, 100) // 4 Hz
	s := Spectrum(tr, PaperWindow)
	peaks := s.Peaks(4, 1.5)
	if len(peaks) < 2 {
		t.Fatalf("peaks = %v", peaks)
	}
	for _, p := range peaks {
		mult := math.Round(p.Freq / 4)
		if mult < 1 || math.Abs(p.Freq-4*mult) > 3*s.DF {
			t.Errorf("peak %v Hz is not a 4 Hz harmonic", p.Freq)
		}
	}
}

func TestModeCountTrimodal(t *testing.T) {
	tr := trace.New()
	add := func(n int, size uint16) {
		for i := 0; i < n; i++ {
			tr.Packets = append(tr.Packets, trace.Packet{
				Time: sim.Time(len(tr.Packets)) * sim.Time(sim.Millisecond), Size: size,
			})
		}
	}
	add(400, 58)
	add(300, 1518)
	add(100, 700)
	if got := ModeCount(tr, 0.02); got != 3 {
		t.Errorf("ModeCount = %d, want 3", got)
	}
}

func TestBursts(t *testing.T) {
	tr := burstyTrace(5, 500, 4, 1000, 200)
	bs := Bursts(tr, 50*sim.Millisecond)
	if bs.Count != 10 {
		t.Errorf("bursts = %d, want 10", bs.Count)
	}
	if math.Abs(bs.MeanBytes-4000) > 1 {
		t.Errorf("mean burst bytes = %v", bs.MeanBytes)
	}
	if bs.SDBytes > 1 {
		t.Errorf("burst size SD = %v, want 0 (constant bursts)", bs.SDBytes)
	}
	if math.Abs(bs.MeanPeriodSec-0.5) > 0.01 {
		t.Errorf("burst period = %v, want 0.5", bs.MeanPeriodSec)
	}
	if Bursts(trace.New(), sim.Second).Count != 0 {
		t.Error("bursts of empty trace")
	}
}

func TestConnectionCorrelation(t *testing.T) {
	// Two connections bursting in phase → high correlation; out of phase
	// → low.
	mk := func(offsetMs int) *trace.Trace {
		tr := trace.New()
		for b := 0; b < 50; b++ {
			base := sim.Time(sim.Duration(b*200) * sim.Millisecond)
			for i := 0; i < 3; i++ {
				tr.Packets = append(tr.Packets,
					trace.Packet{Time: base.Add(sim.Duration(i) * sim.Millisecond), Size: 1000, Src: 0, Dst: 1},
					trace.Packet{Time: base.Add(sim.Duration(offsetMs+i) * sim.Millisecond), Size: 1000, Src: 2, Dst: 3},
				)
			}
		}
		return tr
	}
	pairs := [][2]int{{0, 1}, {2, 3}}
	inPhase := ConnectionCorrelation(mk(0), pairs, PaperWindow)
	outPhase := ConnectionCorrelation(mk(100), pairs, PaperWindow)
	if inPhase < 0.9 {
		t.Errorf("in-phase correlation = %v", inPhase)
	}
	if outPhase > 0.1 {
		t.Errorf("out-of-phase correlation = %v", outPhase)
	}
}

func TestPhaseCoincidence(t *testing.T) {
	// Three connections; in each burst all three fire → coincidence 1.
	tr := trace.New()
	conns := [][2]int{{0, 1}, {1, 2}, {2, 0}}
	for b := 0; b < 10; b++ {
		base := sim.Time(sim.Duration(b) * sim.Second)
		for i, c := range conns {
			tr.Packets = append(tr.Packets, trace.Packet{
				Time: base.Add(sim.Duration(i) * sim.Millisecond),
				Size: 1000, Src: uint16(c[0]), Dst: uint16(c[1]),
			})
		}
	}
	if got := PhaseCoincidence(tr, conns, 100*sim.Millisecond); got != 1 {
		t.Errorf("full coincidence = %v", got)
	}
	// Alternating bursts: only one connection per burst → 1/3.
	tr2 := trace.New()
	for b := 0; b < 12; b++ {
		c := conns[b%3]
		tr2.Packets = append(tr2.Packets, trace.Packet{
			Time: sim.Time(sim.Duration(b) * sim.Second),
			Size: 1000, Src: uint16(c[0]), Dst: uint16(c[1]),
		})
	}
	got := PhaseCoincidence(tr2, conns, 100*sim.Millisecond)
	if got < 0.3 || got > 0.4 {
		t.Errorf("alternating coincidence = %v, want 1/3", got)
	}
	if PhaseCoincidence(trace.New(), conns, sim.Second) != 0 {
		t.Error("empty trace coincidence != 0")
	}
	if PhaseCoincidence(tr, nil, sim.Second) != 0 {
		t.Error("no-pairs coincidence != 0")
	}
}
