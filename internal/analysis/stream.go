// Streaming characterization: the single-pass form of CharacterizeTrace.
// A StreamCharacterizer is attached to a trace.Collector as a Sink and
// folds every captured packet into windowed aggregates during the
// simulation, so an analysis-only run never materializes the packet
// trace. Memory is O(windows + connections), not O(packets).
//
// Exactness contract: the bandwidth series (agg and connection), their
// spectra, average bandwidths, correlation, coincidence, size modality,
// and the Min/Max/Mean/N of every summary are bit-identical to the
// trace-derived report — the streaming fold performs the same float64
// operations in the same order. Only the SD fields differ: the two-pass
// variance of stats.Summarize needs the full sample, so the stream uses
// the moment form (E[x²] − E[x]²), which agrees to ~1e-9 relative but
// not to the last bit.
package analysis

import (
	"math"

	"fxnet/internal/ethernet"
	"fxnet/internal/sim"
	"fxnet/internal/stats"
	"fxnet/internal/trace"
)

// running accumulates streaming moments for a stats.Summary.
type running struct {
	n          int
	min, max   float64
	sum, sumsq float64
}

func (r *running) add(x float64) {
	if r.n == 0 || x < r.min {
		r.min = x
	}
	if r.n == 0 || x > r.max {
		r.max = x
	}
	r.n++
	r.sum += x
	r.sumsq += x * x
}

func (r *running) summary() stats.Summary {
	if r.n == 0 {
		return stats.Summary{}
	}
	mean := r.sum / float64(r.n)
	varc := r.sumsq/float64(r.n) - mean*mean
	if varc < 0 {
		varc = 0 // rounding can drive a near-constant sample negative
	}
	return stats.Summary{N: r.n, Min: r.min, Max: r.max, Mean: mean, SD: math.Sqrt(varc)}
}

// histCounts is a streaming stats.Histogram over the Ethernet size range.
type histCounts struct {
	counts []int
	under  int
	over   int
}

const histLo, histHi, histBins = 0, 1600, 32

func (h *histCounts) add(x float64) {
	if h.counts == nil {
		h.counts = make([]int, histBins)
	}
	w := float64(histHi-histLo) / float64(histBins)
	switch {
	case x < histLo:
		h.under++
	case x >= histHi:
		h.over++
	default:
		h.counts[int((x-histLo)/w)]++
	}
}

func (h *histCounts) histogram() *stats.Histogram {
	c := h.counts
	if c == nil {
		c = make([]int, histBins)
	}
	return &stats.Histogram{Lo: histLo, Hi: histHi, Counts: c, Under: h.under, Over: h.over}
}

// pairKey identifies a (src, dst) connection compactly.
type pairKey struct{ src, dst uint16 }

// corrTracker streams the per-connection bandwidth series that feed the
// connection-correlation statistic. All series share the aggregate
// trace's first-packet origin, exactly like ConnectionCorrelation.
type corrTracker struct {
	bin    sim.Duration
	series map[pairKey][]float64
}

func (c *corrTracker) add(t0, t sim.Time, src, dst uint16, size uint16) {
	if c.series == nil {
		c.series = make(map[pairKey][]float64)
	}
	k := pairKey{src, dst}
	s := c.series[k]
	idx := int(t.Sub(t0) / c.bin)
	for len(s) <= idx {
		s = append(s, 0)
	}
	s[idx] += float64(size)
	c.series[k] = s
}

// correlation finalizes the statistic: pairs sorted as trace.Pairs()
// sorts them, each series zero-padded to the aggregate bin count, and
// the pairwise Pearson correlations folded in (i, j) order — the same
// values in the same order as the trace-derived computation.
func (c *corrTracker) correlation(t0, last sim.Time) (float64, int) {
	if len(c.series) < 2 {
		return 0, len(c.series)
	}
	keys := make([]pairKey, 0, len(c.series))
	for k := range c.series {
		keys = append(keys, k)
	}
	sortPairKeys(keys)
	n := int(last.Sub(t0)/c.bin) + 1
	series := make([][]float64, len(keys))
	for i, k := range keys {
		s := c.series[k]
		for len(s) < n {
			s = append(s, 0)
		}
		series[i] = s[:n]
	}
	var sum float64
	var count int
	for i := 0; i < len(series); i++ {
		for j := i + 1; j < len(series); j++ {
			sum += stats.PearsonR(series[i], series[j])
			count++
		}
	}
	return sum / float64(count), len(keys)
}

func sortPairKeys(keys []pairKey) {
	// Insertion sort: the pair universe is O(P²), tiny.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0; j-- {
			a, b := keys[j-1], keys[j]
			if a.src < b.src || (a.src == b.src && a.dst <= b.dst) {
				break
			}
			keys[j-1], keys[j] = b, a
		}
	}
}

// coinTracker streams the phase-coincidence statistic: bursts of
// TCP-data packets separated by idle gaps, scored by the fraction of
// data connections active in each burst.
type coinTracker struct {
	gap     sim.Duration
	started bool
	last    sim.Time
	cur     map[pairKey]struct{}
	all     map[pairKey]struct{}
	counts  []int
}

func (c *coinTracker) add(t sim.Time, src, dst uint16) {
	if c.cur == nil {
		c.cur = make(map[pairKey]struct{})
		c.all = make(map[pairKey]struct{})
	}
	if c.started && t.Sub(c.last) >= c.gap {
		c.counts = append(c.counts, len(c.cur))
		clear(c.cur)
	}
	k := pairKey{src, dst}
	c.cur[k] = struct{}{}
	c.all[k] = struct{}{}
	c.last = t
	c.started = true
}

func (c *coinTracker) coincidence() float64 {
	if !c.started || len(c.all) < 2 {
		return 0
	}
	counts := append(c.counts, len(c.cur))
	fracs := make([]float64, len(counts))
	for i, n := range counts {
		fracs[i] = float64(n) / float64(len(c.all))
	}
	if len(fracs) > 2 {
		fracs = fracs[1 : len(fracs)-1]
	}
	return stats.Mean(fracs)
}

// StreamCharacterizer folds captured packets into the full Report in a
// single pass. Attach it to a Collector with AddSink, run the
// simulation, Flush the collector, then call Report.
type StreamCharacterizer struct {
	program string
	repConn [2]int

	n          int64
	totalBytes int64
	first      sim.Time
	last       sim.Time

	aggSize  running
	aggInter running
	aggAcc   *Accumulator

	connN     int64
	connBytes int64
	connFirst sim.Time
	connLast  sim.Time
	connSize  running
	connInter running
	connAcc   *Accumulator

	hist histCounts
	corr corrTracker
	coin coinTracker
}

// NewStreamCharacterizer builds a characterizer for one run. repConn is
// the program's representative connection, or (-1, -1) to skip the
// per-connection figures.
func NewStreamCharacterizer(program string, repConn [2]int) *StreamCharacterizer {
	return &StreamCharacterizer{
		program: program,
		repConn: repConn,
		aggAcc:  NewAccumulator(PaperWindow),
		connAcc: NewAccumulator(PaperWindow),
		corr:    corrTracker{bin: CorrelationBin},
		coin:    coinTracker{gap: CoincidenceGap},
	}
}

// Fold implements trace.Sink.
func (sc *StreamCharacterizer) Fold(ch *trace.Chunk) {
	for i, t := range ch.Time {
		sc.addPacket(t, ch.Size[i], ch.Src[i], ch.Dst[i], ch.Proto[i], ch.Flags[i])
	}
}

// addPacket is the per-packet fold. Packets must arrive in capture
// (time) order, as the collector delivers them.
func (sc *StreamCharacterizer) addPacket(t sim.Time, size uint16, src, dst uint16, proto ethernet.Proto, flags uint8) {
	v := float64(size)
	if sc.n == 0 {
		sc.first = t
	} else {
		sc.aggInter.add(t.Sub(sc.last).Milliseconds())
	}
	sc.n++
	sc.totalBytes += int64(size)
	sc.aggSize.add(v)
	sc.aggAcc.Add(t, size)
	sc.hist.add(v)

	if int(src) == sc.repConn[0] && int(dst) == sc.repConn[1] {
		if sc.connN == 0 {
			sc.connFirst = t
		} else {
			sc.connInter.add(t.Sub(sc.connLast).Milliseconds())
		}
		sc.connN++
		sc.connBytes += int64(size)
		sc.connSize.add(v)
		sc.connAcc.Add(t, size)
		sc.connLast = t
	}

	if dst != trace.Broadcast {
		sc.corr.add(sc.first, t, src, dst, size)
	}
	if proto == ethernet.ProtoTCP && flags&ethernet.FlagData != 0 {
		sc.coin.add(t, src, dst)
	}
	sc.last = t
}

// Observe folds one packet — the offline path, where a trace.Reader
// decodes packets from a file one at a time. Packets must arrive in
// capture (time) order.
func (sc *StreamCharacterizer) Observe(p trace.Packet) {
	sc.addPacket(p.Time, p.Size, p.Src, p.Dst, p.Proto, p.Flags)
}

// N reports the number of packets folded.
func (sc *StreamCharacterizer) N() int64 { return sc.n }

// TotalBytes reports the bytes folded.
func (sc *StreamCharacterizer) TotalBytes() int64 { return sc.totalBytes }

// kbps converts a byte total over a first..last span into the paper's
// KB/s figure, mirroring AverageBandwidthKBps (0 when the span carries
// fewer than two packets).
func kbps(bytes int64, n int64, first, last sim.Time) float64 {
	if n < 2 {
		return 0
	}
	d := last.Sub(first).Seconds()
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d / 1000
}

// Report finalizes the characterization. Call it once, after the
// collector has been flushed.
func (sc *StreamCharacterizer) Report() *Report {
	rep := &Report{
		Program:         sc.program,
		AggSize:         sc.aggSize.summary(),
		AggInterarrival: sc.aggInter.summary(),
		AggKBps:         kbps(sc.totalBytes, sc.n, sc.first, sc.last),
		SizeModes:       len(sc.hist.histogram().Modes(0.005)),
	}
	rep.AggSeries, rep.SeriesDT = sc.aggAcc.Series()

	rep.AggSpectrum = SpectrumOfSeries(rep.AggSeries, rep.SeriesDT)

	if sc.repConn[0] >= 0 {
		rep.ConnSize = sc.connSize.summary()
		rep.ConnInterarrival = sc.connInter.summary()
		rep.ConnKBps = kbps(sc.connBytes, sc.connN, sc.connFirst, sc.connLast)
		rep.ConnSeries, _ = sc.connAcc.Series()
		rep.ConnSpectrum = SpectrumOfSeries(rep.ConnSeries, PaperWindow.Seconds())
	}

	if corr, pairs := sc.corr.correlation(sc.first, sc.last); pairs > 1 {
		rep.Correlation = corr
	}
	rep.Coincidence = sc.coin.coincidence()
	return rep
}
