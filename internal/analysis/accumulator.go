package analysis

import (
	"fxnet/internal/sim"
	"fxnet/internal/trace"
)

// Accumulator folds packets into the fixed-bin bandwidth series as they
// are captured — the streaming form of BinnedBandwidth. It holds one
// float64 per elapsed window, so an analysis-only run costs O(windows)
// memory however many packets flow. Feeding the same packets in the same
// order as a materialized trace yields a Series bit-identical to
// BinnedBandwidth on that trace: the per-bin additions happen in capture
// order and the final scaling uses the same expression.
//
// The zero value is not ready; use NewAccumulator. Accumulator is a
// trace.Sink, so it can be attached directly to a Collector.
type Accumulator struct {
	bin     sim.Duration
	t0      sim.Time
	last    sim.Time
	sums    []float64 // raw per-bin byte sums, unscaled
	n       int64     // packets folded
	started bool
}

// NewAccumulator returns an accumulator with the given window width
// (PaperWindow for the paper's 10 ms series).
func NewAccumulator(bin sim.Duration) *Accumulator {
	return &Accumulator{bin: bin}
}

// Add folds one packet. This is the per-packet hot path: one division,
// one float add, and — amortized over a run — zero allocations (the bin
// array grows by appends that only occasionally move it).
func (a *Accumulator) Add(t sim.Time, size uint16) {
	if !a.started {
		a.started = true
		a.t0 = t
	}
	idx := int(t.Sub(a.t0) / a.bin)
	for len(a.sums) <= idx {
		a.sums = append(a.sums, 0)
	}
	a.sums[idx] += float64(size)
	a.last = t
	a.n++
}

// Fold implements trace.Sink.
func (a *Accumulator) Fold(ch *trace.Chunk) {
	for i, t := range ch.Time {
		a.Add(t, ch.Size[i])
	}
}

// N reports the number of packets folded so far.
func (a *Accumulator) N() int64 { return a.n }

// Series returns the bandwidth series in KB/s and the bin width in
// seconds, exactly as BinnedBandwidth would compute them from the full
// trace. The returned slice is freshly allocated; the accumulator can
// keep folding afterwards.
func (a *Accumulator) Series() (series []float64, dt float64) {
	if a.n == 0 || a.bin <= 0 {
		return nil, a.bin.Seconds()
	}
	n := int(a.last.Sub(a.t0)/a.bin) + 1
	series = make([]float64, n)
	copy(series, a.sums[:n])
	scale := 1 / a.bin.Seconds() / 1000
	for i := range series {
		series[i] *= scale
	}
	return series, a.bin.Seconds()
}
