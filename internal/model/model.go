// Package model implements the paper's §7.2 analytic traffic models: the
// power spectrum of a program's instantaneous average bandwidth is sparse
// and spiky, so truncating the implied Fourier series to its strongest
// spikes yields a small closed-form model x(t) = a₀ + Σₖ 2·Re(aₖ·e^{j2πfₖt})
// that approximates — and, as spikes are added, converges to — the
// measured bandwidth signal. The package also generates synthetic packet
// traces from a model, closing the loop: model → traffic.
package model

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"fxnet/internal/dsp"
	"fxnet/internal/ethernet"
	"fxnet/internal/sim"
	"fxnet/internal/stats"
	"fxnet/internal/trace"
)

// Component is one retained spectral spike: a complex Fourier-series
// coefficient at a positive frequency (its conjugate at −f is implicit,
// the signal being real).
type Component struct {
	Freq  float64
	Coeff complex128
}

// BandwidthModel is a truncated Fourier-series bandwidth model in KB/s.
type BandwidthModel struct {
	// DC is the mean bandwidth a₀.
	DC float64
	// Components are the retained spikes, strongest first.
	Components []Component
}

// FromSpectrum builds a model from the k strongest spikes of s (with the
// given minimum spike separation, which collapses leakage side lobes).
// Zero-padding in the periodogram attenuates coefficients by N/M; the
// model compensates so amplitudes refer to the original signal.
func FromSpectrum(s *dsp.Spectrum, k int, minSepHz float64) *BandwidthModel {
	if len(s.Coeff) == 0 {
		return &BandwidthModel{}
	}
	m := &BandwidthModel{DC: real(s.Coeff[0])}
	padded := (len(s.Power) - 1) * 2
	scale := complex(1, 0)
	if s.N > 0 && padded > s.N {
		scale = complex(float64(padded)/float64(s.N), 0)
	}
	for _, p := range s.Peaks(k, minSepHz) {
		m.Components = append(m.Components, Component{Freq: p.Freq, Coeff: p.Coeff * scale})
	}
	sort.Slice(m.Components, func(i, j int) bool {
		return cmplx.Abs(m.Components[i].Coeff) > cmplx.Abs(m.Components[j].Coeff)
	})
	return m
}

// Eval reconstructs the modeled bandwidth at time t seconds (equation 2
// of the paper, truncated to the retained spikes).
func (m *BandwidthModel) Eval(t float64) float64 {
	v := m.DC
	for _, c := range m.Components {
		v += 2 * real(c.Coeff*cmplx.Rect(1, 2*math.Pi*c.Freq*t))
	}
	return v
}

// Series evaluates the model at n uniform samples spaced dt seconds.
// Uniform spacing lets each component advance by a constant phasor
// rotation per sample instead of a sin/cos pair per (component, sample);
// the phasor is re-anchored to an exact evaluation every 512 samples, so
// the recurrence agrees with Eval to rounding error.
func (m *BandwidthModel) Series(n int, dt float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = m.DC
	}
	for _, c := range m.Components {
		w := 2 * math.Pi * c.Freq
		step := cmplx.Rect(1, w*dt)
		var z complex128
		for i := range out {
			if i&511 == 0 {
				z = c.Coeff * cmplx.Rect(1, w*float64(i)*dt)
			}
			out[i] += 2 * real(z)
			z *= step
		}
	}
	return out
}

// String summarizes the model.
func (m *BandwidthModel) String() string {
	s := fmt.Sprintf("dc=%.1fKB/s", m.DC)
	for _, c := range m.Components {
		s += fmt.Sprintf(" +%.1f@%.3gHz", 2*cmplx.Abs(c.Coeff), c.Freq)
	}
	return s
}

// FitMetrics quantify how well a model matches the measured series.
type FitMetrics struct {
	// NRMSE is the range-normalized RMS error of the reconstruction.
	NRMSE float64
	// Correlation is the Pearson correlation of model and measurement.
	Correlation float64
	// EnergyFraction is the share of non-DC spectral power the retained
	// spikes capture.
	EnergyFraction float64
}

// Fit builds a k-spike model from a measured bandwidth series and reports
// the fit quality against that same series.
func Fit(series []float64, dt float64, k int, minSepHz float64) (*BandwidthModel, FitMetrics) {
	spec := dsp.Periodogram(series, dt, dsp.PeriodogramOptions{RemoveMean: true, PadPow2: true})
	m := FromSpectrum(spec, k, minSepHz)
	recon := m.Series(len(series), dt)
	var peakPower float64
	for _, c := range m.Components {
		// Undo the pad compensation to compare against spectrum power.
		padded := (len(spec.Power) - 1) * 2
		scale := 1.0
		if spec.N > 0 && padded > spec.N {
			scale = float64(spec.N) / float64(padded)
		}
		a := cmplx.Abs(c.Coeff) * scale * float64(padded)
		peakPower += a * a
	}
	tot := spec.TotalPower()
	met := FitMetrics{
		NRMSE:       stats.NRMSE(series, recon),
		Correlation: stats.PearsonR(series, recon),
	}
	if tot > 0 {
		met.EnergyFraction = math.Min(1, peakPower/tot)
	}
	return m, met
}

// GenerateTrace synthesizes a packet trace whose binned bandwidth
// approximates the model: for each bin of width bin, the modeled byte
// budget is emitted as pktSize-byte packets spaced evenly through the
// bin (fractional bytes carry over). Negative model excursions emit
// nothing. The packets flow src→dst as TCP data; it returns an error if
// either endpoint is outside the trace address space.
func (m *BandwidthModel) GenerateTrace(duration sim.Duration, bin sim.Duration, pktSize int, src, dst int) (*trace.Trace, error) {
	if pktSize <= 0 {
		panic("model: nonpositive packet size")
	}
	srcAddr, err := trace.Addr(src)
	if err != nil {
		return nil, err
	}
	dstAddr, err := trace.Addr(dst)
	if err != nil {
		return nil, err
	}
	tr := trace.New()
	tr.Meta["generator"] = "spectral-model"
	nBins := int(duration / bin)
	carry := 0.0
	for b := 0; b < nBins; b++ {
		t0 := sim.Time(b) * sim.Time(bin)
		kbps := m.Eval(t0.Seconds())
		if kbps < 0 {
			kbps = 0
		}
		bytes := kbps*1000*bin.Seconds() + carry
		n := int(bytes / float64(pktSize))
		carry = bytes - float64(n*pktSize)
		for i := 0; i < n; i++ {
			off := sim.Duration(float64(bin) * (float64(i) + 0.5) / float64(n))
			tr.Packets = append(tr.Packets, trace.Packet{
				Time: t0.Add(off), Size: uint16(pktSize),
				Src: srcAddr, Dst: dstAddr,
				Proto: ethernet.ProtoTCP, Flags: ethernet.FlagData,
			})
		}
	}
	return tr, nil
}
