package model

import (
	"math"
	"testing"

	"fxnet/internal/analysis"
	"fxnet/internal/sim"
	"fxnet/internal/stats"
)

// Tone frequencies chosen to sit exactly on FFT bins of a 4096-sample,
// 10 ms series (bin width 1/40.96 Hz), so the spike coefficients carry
// the full tone energy with no leakage.
const (
	toneA = 82.0 / 40.96  // ≈ 2.002 Hz
	toneB = 287.0 / 40.96 // ≈ 7.007 Hz
)

// twoTone builds a bandwidth-like series: DC + two cosines.
func twoTone(n int, dt float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		t := float64(i) * dt
		out[i] = 100 + 40*math.Cos(2*math.Pi*toneA*t) + 10*math.Cos(2*math.Pi*toneB*t+0.5)
	}
	return out
}

func TestFitRecoversDCAndTones(t *testing.T) {
	dt := 0.01
	series := twoTone(4096, dt)
	m, met := Fit(series, dt, 2, 1.0)
	if math.Abs(m.DC-100) > 0.5 {
		t.Errorf("DC = %v, want ≈100", m.DC)
	}
	if len(m.Components) != 2 {
		t.Fatalf("components = %d", len(m.Components))
	}
	if math.Abs(m.Components[0].Freq-toneA) > 0.05 {
		t.Errorf("strongest component at %v Hz, want %v", m.Components[0].Freq, toneA)
	}
	if math.Abs(m.Components[1].Freq-toneB) > 0.05 {
		t.Errorf("second component at %v Hz, want %v", m.Components[1].Freq, toneB)
	}
	// Amplitude: 2|a| ≈ 40 for the 2 Hz tone.
	amp := 2 * cmplxAbs(m.Components[0].Coeff)
	if math.Abs(amp-40) > 2 {
		t.Errorf("amplitude = %v, want ≈40", amp)
	}
	if met.NRMSE > 0.05 {
		t.Errorf("NRMSE = %v", met.NRMSE)
	}
	if met.Correlation < 0.99 {
		t.Errorf("correlation = %v", met.Correlation)
	}
	if met.EnergyFraction < 0.9 {
		t.Errorf("energy fraction = %v", met.EnergyFraction)
	}
}

func cmplxAbs(c complex128) float64 { return math.Hypot(real(c), imag(c)) }

func TestConvergenceWithMoreSpikes(t *testing.T) {
	// The paper's claim: as the number of retained spikes grows, the
	// reconstruction converges to the signal. Use a square-ish periodic
	// burst signal with many harmonics.
	dt := 0.01
	n := 4096
	series := make([]float64, n)
	for i := range series {
		if (i/25)%4 == 0 { // 1 Hz period, 25% duty cycle
			series[i] = 400
		}
	}
	var errs []float64
	for _, k := range []int{1, 3, 8, 20} {
		_, met := Fit(series, dt, k, 0.3)
		errs = append(errs, met.NRMSE)
	}
	for i := 1; i < len(errs); i++ {
		if errs[i] > errs[i-1]+1e-9 {
			t.Fatalf("NRMSE not monotone: %v", errs)
		}
	}
	if errs[len(errs)-1] >= errs[0] {
		t.Errorf("no convergence: %v", errs)
	}
}

func TestEvalAndSeriesAgree(t *testing.T) {
	m := &BandwidthModel{DC: 5, Components: []Component{{Freq: 1, Coeff: complex(2, 1)}}}
	const n, dt = 4000, 0.1 // spans several phasor re-anchor intervals
	s := m.Series(n, dt)
	for i, v := range s {
		// Series advances a phasor recurrence; it must agree with the
		// direct evaluation to rounding error over the whole span.
		if got := m.Eval(float64(i) * dt); math.Abs(got-v) > 1e-9 {
			t.Fatalf("Series[%d] = %v, Eval = %v", i, v, got)
		}
	}
}

func TestModelString(t *testing.T) {
	m := &BandwidthModel{DC: 42, Components: []Component{{Freq: 5, Coeff: complex(3, 4)}}}
	s := m.String()
	if s == "" || len(s) < 10 {
		t.Errorf("String = %q", s)
	}
}

func TestGenerateTraceMatchesModel(t *testing.T) {
	dt := 0.01
	series := twoTone(2048, dt)
	m, _ := Fit(series, dt, 2, 1.0)
	tr, err := m.GenerateTrace(20*sim.Second, analysis.PaperWindow, 1000, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() == 0 {
		t.Fatal("no packets generated")
	}
	// The synthetic trace's average bandwidth should match the model DC.
	avg := analysis.AverageBandwidthKBps(tr)
	if math.Abs(avg-m.DC) > 0.1*m.DC {
		t.Errorf("synthetic avg = %v, model DC = %v", avg, m.DC)
	}
	// And its spectrum should spike at the model's dominant frequency.
	spec := analysis.Spectrum(tr, analysis.PaperWindow)
	got := spec.DominantFreq()
	if math.Abs(got-toneA) > 0.1 {
		t.Errorf("synthetic dominant = %v Hz, want %v", got, toneA)
	}
}

func TestGenerateTraceClampsNegative(t *testing.T) {
	// A model that swings negative must still produce a valid trace.
	m := &BandwidthModel{DC: 10, Components: []Component{{Freq: 1, Coeff: complex(20, 0)}}}
	tr, err := m.GenerateTrace(5*sim.Second, analysis.PaperWindow, 500, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr.Packets {
		if p.Size != 500 {
			t.Fatalf("packet size %d", p.Size)
		}
	}
	// Bytes must be ≈ integral of max(0, model), which exceeds DC×T here.
	if float64(tr.TotalBytes()) < 10*1000*5 {
		t.Errorf("total bytes = %d below DC budget", tr.TotalBytes())
	}
}

func TestGenerateTraceBadPacketSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for pktSize=0")
		}
	}()
	(&BandwidthModel{DC: 1}).GenerateTrace(sim.Second, analysis.PaperWindow, 0, 0, 1)
}

func TestGenerateTraceRejectsBadAddress(t *testing.T) {
	m := &BandwidthModel{DC: 1}
	if _, err := m.GenerateTrace(sim.Second, analysis.PaperWindow, 1000, 0, 70000); err == nil {
		t.Error("no error for out-of-range destination")
	}
	if _, err := m.GenerateTrace(sim.Second, analysis.PaperWindow, 1000, -1, 1); err == nil {
		t.Error("no error for negative source")
	}
}

func TestFromSpectrumEmpty(t *testing.T) {
	m, met := Fit(nil, 0.01, 3, 1)
	if len(m.Components) != 0 {
		t.Errorf("components from empty series: %v", m.Components)
	}
	if met.NRMSE != 0 || met.EnergyFraction != 0 {
		t.Errorf("metrics = %+v", met)
	}
}

func TestRoundTripThroughAnalysisSpectrum(t *testing.T) {
	// Model built from a synthetic trace's spectrum reproduces the trace's
	// periodicity — the full §7.2 loop.
	orig := &BandwidthModel{DC: 200, Components: []Component{{Freq: 4, Coeff: complex(60, 0)}}}
	tr, err := orig.GenerateTrace(30*sim.Second, analysis.PaperWindow, 1400, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	series, dt := analysis.BinnedBandwidth(tr, analysis.PaperWindow)
	m2, met := Fit(series, dt, 1, 1)
	if math.Abs(m2.DC-200) > 20 {
		t.Errorf("recovered DC = %v", m2.DC)
	}
	if len(m2.Components) == 0 || math.Abs(m2.Components[0].Freq-4) > 0.2 {
		t.Errorf("recovered components = %v", m2.Components)
	}
	if met.Correlation < 0.75 {
		t.Errorf("correlation = %v", met.Correlation)
	}
	_ = stats.Mean(series)
}

func TestFitZeroSpikeBudget(t *testing.T) {
	// k = 0 keeps only the DC term; the model is the series mean.
	series := twoTone(4096, 0.01)
	m, met := Fit(series, 0.01, 0, 1)
	if len(m.Components) != 0 {
		t.Fatalf("zero budget retained %d components", len(m.Components))
	}
	if math.Abs(m.DC-stats.Mean(series)) > 1e-6 {
		t.Errorf("DC = %v, want series mean %v", m.DC, stats.Mean(series))
	}
	if met.EnergyFraction != 0 {
		t.Errorf("energy fraction = %v, want 0", met.EnergyFraction)
	}
	for i, v := range m.Series(8, 0.01) {
		if v != m.DC {
			t.Fatalf("DC-only series varies at %d: %v", i, v)
		}
	}
}

func TestFitConstantSeries(t *testing.T) {
	// A constant series has an empty (mean-removed) spectrum: no spikes
	// to retain no matter the budget.
	series := make([]float64, 512)
	for i := range series {
		series[i] = 321.5
	}
	m, _ := Fit(series, 0.01, 8, 0)
	if len(m.Components) != 0 {
		t.Fatalf("constant series produced components: %v", m.Components)
	}
	if math.Abs(m.DC-321.5) > 1e-9 {
		t.Errorf("DC = %v, want 321.5", m.DC)
	}
}

func TestMinSepCollapsesLeakageLobes(t *testing.T) {
	// An off-bin tone in a zero-padded periodogram leaks into sinc side
	// lobes, which appear as local maxima a fraction of a hertz from the
	// true spike. 600 samples pad to 1024, so the lobe structure is
	// well sampled; the tone at 3.37 Hz sits between bins.
	n, dt := 600, 0.01
	series := make([]float64, n)
	for i := range series {
		tt := float64(i) * dt
		series[i] = 100 + 40*math.Cos(2*math.Pi*3.37*tt)
	}

	// Without separation the budget is wasted on the tone's own lobes.
	loose, _ := Fit(series, dt, 4, 0)
	nearTone := 0
	for _, c := range loose.Components {
		if math.Abs(c.Freq-3.37) < 0.5 {
			nearTone++
		}
	}
	if nearTone < 2 {
		t.Fatalf("expected leakage lobes near the tone without minSep, got %d spikes", nearTone)
	}

	// minSep = 0.6 Hz collapses them: retained spikes are pairwise
	// separated and exactly one sits near the tone, still the strongest.
	tight, _ := Fit(series, dt, 4, 0.6)
	nearTone = 0
	for i, a := range tight.Components {
		if math.Abs(a.Freq-3.37) < 0.5 {
			nearTone++
		}
		for _, b := range tight.Components[i+1:] {
			if math.Abs(a.Freq-b.Freq) < 0.6 {
				t.Fatalf("spikes %v and %v closer than minSep", a.Freq, b.Freq)
			}
		}
	}
	if nearTone != 1 {
		t.Fatalf("want exactly 1 spike near the tone with minSep, got %d", nearTone)
	}
	if math.Abs(tight.Components[0].Freq-3.37) > 0.1 {
		t.Errorf("strongest spike at %v Hz, want ≈3.37", tight.Components[0].Freq)
	}
}
