package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Errorf("matrix = %+v", m)
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone aliases original")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	y := m.MulVec([]float64{1, 1})
	if y[0] != 3 || y[1] != 7 {
		t.Errorf("y = %v", y)
	}
}

func randDominant(r *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			if i != j {
				v := r.NormFloat64()
				m.Set(i, j, v)
				sum += math.Abs(v)
			}
		}
		m.Set(i, i, sum+1+r.Float64())
	}
	return m
}

func TestLUSolve(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 5, 10, 40} {
		a := randDominant(r, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = r.NormFloat64()
		}
		b := a.MulVec(want)
		f, err := Factor(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		got := f.Solve(b)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("n=%d: x[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestLUNeedsPivoting(t *testing.T) {
	// Zero on the leading diagonal requires a row swap.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	x := f.Solve([]float64{3, 7})
	if math.Abs(x[0]-7) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v", x)
	}
	if math.Abs(f.Det()-(-1)) > 1e-12 {
		t.Errorf("det = %v, want -1", f.Det())
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := Factor(a); err == nil {
		t.Error("no error for singular matrix")
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := Factor(NewMatrix(2, 3)); err == nil {
		t.Error("no error for non-square matrix")
	}
}

func TestFactorLeavesInputUnchanged(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := randDominant(r, 4)
	before := append([]float64(nil), a.Data...)
	if _, err := Factor(a); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if a.Data[i] != before[i] {
			t.Fatal("Factor mutated its input")
		}
	}
}

func TestDet(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	f, _ := Factor(a)
	if math.Abs(f.Det()-5) > 1e-12 {
		t.Errorf("det = %v, want 5", f.Det())
	}
}

func randBanded(r *rand.Rand, n, band int) *Banded {
	b := NewBanded(n, band)
	for i := 0; i < n; i++ {
		var sum float64
		for j := max(0, i-band); j <= min(n-1, i+band); j++ {
			if i == j {
				continue
			}
			v := r.NormFloat64()
			b.Set(i, j, v)
			sum += math.Abs(v)
		}
		b.Set(i, i, sum+1+r.Float64())
	}
	return b
}

func TestBandedAccessors(t *testing.T) {
	b := NewBanded(5, 1)
	b.Set(2, 3, 7)
	b.Add(2, 3, 1)
	if b.At(2, 3) != 8 {
		t.Errorf("At = %v", b.At(2, 3))
	}
	if b.At(0, 4) != 0 {
		t.Error("out-of-band At != 0")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("no panic setting out-of-band element")
			}
		}()
		b.Set(0, 4, 1)
	}()
}

func TestBandedMulVecMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	b := randBanded(r, 12, 3)
	x := make([]float64, 12)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	got := b.MulVec(x)
	want := b.Dense().MulVec(x)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestBandedLUSolveMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, tc := range []struct{ n, band int }{{1, 0}, {5, 1}, {20, 3}, {64, 8}} {
		b := randBanded(r, tc.n, tc.band)
		rhs := make([]float64, tc.n)
		for i := range rhs {
			rhs[i] = r.NormFloat64()
		}
		f, err := FactorBanded(b)
		if err != nil {
			t.Fatal(err)
		}
		got, flops := f.Solve(rhs)
		if tc.n > 1 && flops <= 0 {
			t.Error("no flops reported")
		}
		df, err := Factor(b.Dense())
		if err != nil {
			t.Fatal(err)
		}
		want := df.Solve(rhs)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("n=%d band=%d: x[%d]=%v want %v", tc.n, tc.band, i, got[i], want[i])
			}
		}
	}
}

func TestBandedFlopCounts(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	b := randBanded(r, 100, 4)
	f, err := FactorBanded(b)
	if err != nil {
		t.Fatal(err)
	}
	// Factorization is O(n·band²): must be far below dense O(n³)/3.
	if f.FactorFlops <= 0 || f.FactorFlops > 100*9*9*3 {
		t.Errorf("FactorFlops = %v", f.FactorFlops)
	}
	_, sf := f.Solve(make([]float64, 100))
	if sf <= 0 || sf > 100*(4*4+4+2)*2 {
		t.Errorf("solve flops = %v", sf)
	}
}

func TestVectorOps(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-12 {
		t.Error("Norm2 wrong")
	}
	y := []float64{1, 1}
	AXPY(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("AXPY = %v", y)
	}
}

func TestQuickLUResidual(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(20)
		a := randDominant(rr, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rr.NormFloat64()
		}
		lu, err := Factor(a)
		if err != nil {
			return false
		}
		x := lu.Solve(b)
		res := a.MulVec(x)
		for i := range res {
			if math.Abs(res[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30, Rand: r}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
