// Package linalg provides the small dense and banded linear algebra the
// AIRSHED substrate needs: matrices, LU factorization with partial
// pivoting, triangular solves, and a banded (skyline-free) variant used
// for the per-layer finite-element stiffness systems that AIRSHED factors
// once per simulated hour and backsolves l×s times per transport phase.
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimensions")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec returns m·x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec shape %dx%d · %d", m.Rows, m.Cols, len(x)))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// LU is a dense LU factorization PA = LU with partial pivoting.
type LU struct {
	lu   *Matrix
	perm []int
	sign int
}

// Factor computes the LU factorization of square matrix a, leaving a
// unchanged. It returns an error if the matrix is singular to working
// precision.
func Factor(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Factor of non-square %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	f := &LU{lu: a.Clone(), perm: make([]int, n), sign: 1}
	for i := range f.perm {
		f.perm[i] = i
	}
	lu := f.lu
	for col := 0; col < n; col++ {
		// Partial pivot.
		p, max := col, math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(lu.At(r, col)); v > max {
				p, max = r, v
			}
		}
		if max == 0 {
			return nil, fmt.Errorf("linalg: singular matrix at column %d", col)
		}
		if p != col {
			for j := 0; j < n; j++ {
				lu.Data[p*n+j], lu.Data[col*n+j] = lu.Data[col*n+j], lu.Data[p*n+j]
			}
			f.perm[p], f.perm[col] = f.perm[col], f.perm[p]
			f.sign = -f.sign
		}
		piv := lu.At(col, col)
		for r := col + 1; r < n; r++ {
			m := lu.At(r, col) / piv
			lu.Set(r, col, m)
			if m == 0 {
				continue
			}
			for j := col + 1; j < n; j++ {
				lu.Data[r*n+j] -= m * lu.Data[col*n+j]
			}
		}
	}
	return f, nil
}

// Solve performs the forward and back substitution (the paper's AIRSHED
// "backsolve") for right-hand side b, returning x with A·x = b.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n {
		panic("linalg: Solve dimension mismatch")
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.perm[i]]
	}
	// Forward: L has unit diagonal.
	for i := 1; i < n; i++ {
		var s float64
		row := f.lu.Data[i*n : i*n+i]
		for j, v := range row {
			s += v * x[j]
		}
		x[i] -= s
	}
	// Back.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += f.lu.Data[i*n+j] * x[j]
		}
		x[i] = (x[i] - s) / f.lu.Data[i*n+i]
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	n := f.lu.Rows
	for i := 0; i < n; i++ {
		d *= f.lu.Data[i*n+i]
	}
	return d
}

// Banded is a symmetric-bandwidth banded matrix: element (i, j) is stored
// only when |i−j| ≤ Band. Rows are stored as 2·Band+1 diagonals. This is
// the natural shape of a 1D finite-element stiffness matrix and keeps the
// AIRSHED preprocessing O(n·band²) instead of O(n³).
type Banded struct {
	N, Band int
	Data    []float64 // row i, offset d∈[−Band,Band] at Data[i*(2B+1)+d+B]
}

// NewBanded allocates a zero n×n banded matrix with the given half
// bandwidth.
func NewBanded(n, band int) *Banded {
	if band < 0 || band >= n && n > 0 {
		panic("linalg: invalid bandwidth")
	}
	return &Banded{N: n, Band: band, Data: make([]float64, n*(2*band+1))}
}

func (b *Banded) idx(i, j int) (int, bool) {
	d := j - i
	if d < -b.Band || d > b.Band {
		return 0, false
	}
	return i*(2*b.Band+1) + d + b.Band, true
}

// At returns element (i, j); out-of-band elements are zero.
func (b *Banded) At(i, j int) float64 {
	if k, ok := b.idx(i, j); ok {
		return b.Data[k]
	}
	return 0
}

// Set assigns element (i, j); assigning outside the band panics.
func (b *Banded) Set(i, j int, v float64) {
	k, ok := b.idx(i, j)
	if !ok {
		panic(fmt.Sprintf("linalg: (%d,%d) outside band %d", i, j, b.Band))
	}
	b.Data[k] = v
}

// Add accumulates v into element (i, j).
func (b *Banded) Add(i, j int, v float64) {
	k, ok := b.idx(i, j)
	if !ok {
		panic(fmt.Sprintf("linalg: (%d,%d) outside band %d", i, j, b.Band))
	}
	b.Data[k] += v
}

// Dense expands the banded matrix to dense form (for tests).
func (b *Banded) Dense() *Matrix {
	m := NewMatrix(b.N, b.N)
	for i := 0; i < b.N; i++ {
		for j := max(0, i-b.Band); j <= min(b.N-1, i+b.Band); j++ {
			m.Set(i, j, b.At(i, j))
		}
	}
	return m
}

// MulVec returns b·x.
func (b *Banded) MulVec(x []float64) []float64 {
	if len(x) != b.N {
		panic("linalg: banded MulVec dimension mismatch")
	}
	y := make([]float64, b.N)
	for i := 0; i < b.N; i++ {
		lo, hi := max(0, i-b.Band), min(b.N-1, i+b.Band)
		var s float64
		for j := lo; j <= hi; j++ {
			s += b.At(i, j) * x[j]
		}
		y[i] = s
	}
	return y
}

// BandedLU is an LU factorization of a banded matrix without pivoting
// (valid for the diagonally dominant stiffness systems AIRSHED builds).
type BandedLU struct {
	N, Band int
	lu      *Banded
	// FactorFlops is the floating-point operation count of the
	// factorization, used by the compute-time cost model.
	FactorFlops float64
}

// FactorBanded factors a diagonally dominant banded matrix, leaving it
// unchanged. It returns an error on a zero pivot.
func FactorBanded(a *Banded) (*BandedLU, error) {
	lu := NewBanded(a.N, a.Band)
	copy(lu.Data, a.Data)
	f := &BandedLU{N: a.N, Band: a.Band, lu: lu}
	for col := 0; col < a.N; col++ {
		piv := lu.At(col, col)
		if piv == 0 {
			return nil, fmt.Errorf("linalg: zero pivot at %d", col)
		}
		for r := col + 1; r <= min(a.N-1, col+a.Band); r++ {
			m := lu.At(r, col) / piv
			lu.Set(r, col, m)
			f.FactorFlops++
			if m == 0 {
				continue
			}
			for j := col + 1; j <= min(a.N-1, col+a.Band); j++ {
				lu.Add(r, j, -m*lu.At(col, j))
				f.FactorFlops += 2
			}
		}
	}
	return f, nil
}

// Solve backsolves for one right-hand side. It also reports the flop
// count of the solve for the cost model.
func (f *BandedLU) Solve(b []float64) (x []float64, flops float64) {
	if len(b) != f.N {
		panic("linalg: banded Solve dimension mismatch")
	}
	x = append([]float64(nil), b...)
	for i := 1; i < f.N; i++ {
		lo := max(0, i-f.Band)
		var s float64
		for j := lo; j < i; j++ {
			s += f.lu.At(i, j) * x[j]
			flops += 2
		}
		x[i] -= s
	}
	for i := f.N - 1; i >= 0; i-- {
		hi := min(f.N-1, i+f.Band)
		var s float64
		for j := i + 1; j <= hi; j++ {
			s += f.lu.At(i, j) * x[j]
			flops += 2
		}
		x[i] = (x[i] - s) / f.lu.At(i, i)
		flops += 2
	}
	return x, flops
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// AXPY computes y ← a·x + y in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i := range x {
		y[i] += a * x[i]
	}
}
