package linalg

import (
	"math/rand"
	"testing"
)

func BenchmarkDenseLU_64(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	a := randDominant(r, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Factor(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBandedFactor_1024x8(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	m := randBanded(r, 1024, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := FactorBanded(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBandedSolve_1024x8(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	m := randBanded(r, 1024, 8)
	f, err := FactorBanded(m)
	if err != nil {
		b.Fatal(err)
	}
	rhs := make([]float64, 1024)
	for i := range rhs {
		rhs[i] = r.NormFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Solve(rhs)
	}
}
