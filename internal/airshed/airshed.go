// Package airshed implements the Fx skeleton of the multiscale AIRSHED
// air-quality model the paper measures: s chemical species over p grid
// points in l atmospheric layers, simulated for h hours of k steps each.
//
// Each hour begins with a preprocessing phase that assembles and factors
// a per-layer finite-element stiffness matrix (banded, so the factor is
// O(p·band²) as a 1D FEM discretization gives). Each step then performs a
// horizontal transport phase (l×s banded backsolves on the by-layer
// distribution), an all-to-all transpose to the by-grid-point
// distribution, a chemistry/vertical-transport phase (a predictor–
// corrector ODE integration per grid point), a reverse transpose, and a
// second horizontal transport phase. The transposes are the program's
// only communication: each processor sends an O(p·s·l/P²)-element block
// to every other processor, twice per step — the traffic of figures 8–11.
package airshed

import (
	"fmt"
	"math"

	"fxnet/internal/fx"
	"fxnet/internal/linalg"
)

// Params dimension the simulation.
type Params struct {
	Layers  int // l: atmospheric layers
	Species int // s: chemical species
	Grid    int // p: grid points per layer
	Steps   int // k: simulation steps per hour
	Hours   int // h: simulated hours
	Band    int // stiffness half-bandwidth of the 1D FEM discretization
}

// PaperParams returns the paper's configuration: s=35, p=1024, l=4, k=5,
// h=100.
func PaperParams() Params {
	return Params{Layers: 4, Species: 35, Grid: 1024, Steps: 5, Hours: 100, Band: 8}
}

// Rates are the calibrated cost-model rates (operations per virtual
// second) that place the three phases at the paper's time scales:
// preprocessing ≈ 31 s (hour period ≈ 66 s), chemistry ≈ 5 s, horizontal
// transport ≈ 200 ms. See EXPERIMENTS.md.
var Rates = map[string]float64{
	"airshed.factor": 14500,
	"airshed.solve":  6.0e6,
	"airshed.chem":   172000,
}

const tagBase = 500000

// chemistry integration parameters.
const (
	chemSubsteps = 4
	chemDT       = float32(0.01)
)

// initConc is the deterministic initial concentration ("input from
// disk") for layer li, species si, grid point g.
func initConc(li, si, g int, p Params) float32 {
	x := float64(g) / float64(p.Grid)
	return float32(1 + 0.5*math.Sin(2*math.Pi*x*float64(si+1)/8)*math.Cos(float64(li+1)))
}

// stiffness assembles the banded per-layer, per-hour FEM stiffness
// matrix. It is strictly diagonally dominant, so the pivot-free banded
// factorization is stable. The returned op count feeds the cost model.
func stiffness(layer, hour int, p Params) (*linalg.Banded, float64) {
	b := linalg.NewBanded(p.Grid, p.Band)
	wind := 0.4 + 0.2*math.Sin(float64(hour)/7+float64(layer))
	ops := 0.0
	for i := 0; i < p.Grid; i++ {
		var off float64
		for d := 1; d <= p.Band; d++ {
			c := wind / float64(d*d) / 2.5
			if i-d >= 0 {
				b.Set(i, i-d, -c)
				off += c
				ops += 3
			}
			if i+d < p.Grid {
				b.Set(i, i+d, -c)
				off += c
				ops += 3
			}
		}
		b.Set(i, i, 1+off*1.1)
		ops += 2
	}
	return b, ops
}

// chemPoint integrates one grid point's l×s species column with Heun's
// predictor–corrector: decay per species plus vertical diffusion between
// layers. y is indexed [layer][species] and updated in place. Returns the
// op count.
func chemPoint(y [][]float32, p Params) float64 {
	l, s := p.Layers, p.Species
	f := make([][]float32, l)
	pred := make([][]float32, l)
	for li := 0; li < l; li++ {
		f[li] = make([]float32, s)
		pred[li] = make([]float32, s)
	}
	deriv := func(state [][]float32, out [][]float32) {
		for li := 0; li < l; li++ {
			for si := 0; si < s; si++ {
				decay := float32(0.05 + 0.01*float32(si%7))
				v := -decay * state[li][si]
				if li > 0 {
					v += 0.1 * (state[li-1][si] - state[li][si])
				}
				if li < l-1 {
					v += 0.1 * (state[li+1][si] - state[li][si])
				}
				out[li][si] = v
			}
		}
	}
	for step := 0; step < chemSubsteps; step++ {
		deriv(y, f)
		for li := 0; li < l; li++ {
			for si := 0; si < s; si++ {
				pred[li][si] = y[li][si] + chemDT*f[li][si]
			}
		}
		deriv(pred, pred) // reuse pred as the corrector derivative
		for li := 0; li < l; li++ {
			for si := 0; si < s; si++ {
				y[li][si] += chemDT * 0.5 * (f[li][si] + pred[li][si])
			}
		}
	}
	return float64(chemSubsteps * l * s * 12)
}

// transport runs one horizontal transport phase on the by-layer block:
// for every owned layer and species, a banded backsolve updates the
// concentration row. Returns the flop count.
func transport(block [][][]float32, lus []*linalg.BandedLU, p Params) float64 {
	var ops float64
	rhs := make([]float64, p.Grid)
	for li := range block {
		lu := lus[li]
		for si := 0; si < p.Species; si++ {
			row := block[li][si]
			for g := range rhs {
				rhs[g] = float64(row[g])
			}
			x, flops := lu.Solve(rhs)
			ops += flops
			for g := range row {
				row[g] = float32(x[g])
			}
		}
	}
	return ops
}

// Run executes the AIRSHED skeleton on worker w and returns the worker's
// owned layers after the final hour, indexed [ownedLayer][species][grid].
func Run(w *fx.Worker, p Params) [][][]float32 {
	llo, lhi := fx.BlockRange(p.Layers, w.P, w.Rank)
	glo, ghi := fx.BlockRange(p.Grid, w.P, w.Rank)
	myPoints := ghi - glo

	// By-layer block: block[li][si][g].
	block := make([][][]float32, lhi-llo)
	for li := range block {
		block[li] = make([][]float32, p.Species)
		for si := 0; si < p.Species; si++ {
			block[li][si] = make([]float32, p.Grid)
			for g := 0; g < p.Grid; g++ {
				block[li][si][g] = initConc(llo+li, si, g, p)
			}
		}
	}
	// By-grid block for the chemistry phase: points[g][li][si].
	points := make([][][]float32, myPoints)
	for g := range points {
		points[g] = make([][]float32, p.Layers)
		for li := range points[g] {
			points[g][li] = make([]float32, p.Species)
		}
	}

	tag := tagBase
	for hour := 0; hour < p.Hours; hour++ {
		// Preprocessing: assemble and factor stiffness per owned layer.
		lus := make([]*linalg.BandedLU, lhi-llo)
		var preOps float64
		for li := range lus {
			a, aOps := stiffness(llo+li, hour, p)
			lu, err := linalg.FactorBanded(a)
			if err != nil {
				panic(fmt.Sprintf("airshed: %v", err))
			}
			lus[li] = lu
			preOps += aOps + lu.FactorFlops
		}
		w.Compute("airshed.factor", preOps)

		for step := 0; step < p.Steps; step++ {
			// Horizontal transport (by-layer, local).
			w.Compute("airshed.solve", transport(block, lus, p))

			// Transpose to by-grid distribution.
			transposeForward(w, block, points, tag, p)
			tag += w.P

			// Chemistry / vertical transport (by-grid, local).
			var chemOps float64
			for g := range points {
				chemOps += chemPoint(points[g], p)
			}
			w.Compute("airshed.chem", chemOps)

			// Reverse transpose back to by-layer.
			transposeReverse(w, block, points, tag, p)
			tag += w.P

			// Second horizontal transport.
			w.Compute("airshed.solve", transport(block, lus, p))
		}
	}
	return block
}

// Sequential runs the same simulation single-process with identical
// float32 arithmetic order, returning [layer][species][grid].
func Sequential(p Params) [][][]float32 {
	block := make([][][]float32, p.Layers)
	for li := range block {
		block[li] = make([][]float32, p.Species)
		for si := 0; si < p.Species; si++ {
			block[li][si] = make([]float32, p.Grid)
			for g := 0; g < p.Grid; g++ {
				block[li][si][g] = initConc(li, si, g, p)
			}
		}
	}
	points := make([][][]float32, p.Grid)
	for g := range points {
		points[g] = make([][]float32, p.Layers)
		for li := range points[g] {
			points[g][li] = make([]float32, p.Species)
		}
	}
	for hour := 0; hour < p.Hours; hour++ {
		lus := make([]*linalg.BandedLU, p.Layers)
		for li := range lus {
			a, _ := stiffness(li, hour, p)
			lu, err := linalg.FactorBanded(a)
			if err != nil {
				panic(err)
			}
			lus[li] = lu
		}
		for step := 0; step < p.Steps; step++ {
			transport(block, lus, p)
			for g := 0; g < p.Grid; g++ {
				for li := 0; li < p.Layers; li++ {
					for si := 0; si < p.Species; si++ {
						points[g][li][si] = block[li][si][g]
					}
				}
			}
			for g := range points {
				chemPoint(points[g], p)
			}
			for g := 0; g < p.Grid; g++ {
				for li := 0; li < p.Layers; li++ {
					for si := 0; si < p.Species; si++ {
						block[li][si][g] = points[g][li][si]
					}
				}
			}
			transport(block, lus, p)
		}
	}
	return block
}
