package airshed

import "fxnet/internal/fx"

// transposeForward redistributes the concentration array from by-layer
// blocks to by-grid-point blocks with one all-to-all: each rank sends, to
// every rank q, its owned layers × all species × q's grid slice — the
// O(p·s·l/P²)-element message of the paper's §3.2. Elements are ordered
// (layer, species, grid) within each part.
func transposeForward(w *fx.Worker, block, points [][][]float32, tag int, p Params) {
	parts := make([][]byte, w.P)
	for q := 0; q < w.P; q++ {
		qglo, qghi := fx.BlockRange(p.Grid, w.P, q)
		buf := make([]float32, 0, len(block)*p.Species*(qghi-qglo))
		for li := range block {
			for si := 0; si < p.Species; si++ {
				buf = append(buf, block[li][si][qglo:qghi]...)
			}
		}
		parts[q] = fx.EncodeFloat32s(buf)
	}
	got := w.AllToAll(tag, parts)
	for q := 0; q < w.P; q++ {
		qllo, qlhi := fx.BlockRange(p.Layers, w.P, q)
		vals := fx.DecodeFloat32s(got[q])
		idx := 0
		for li := qllo; li < qlhi; li++ {
			for si := 0; si < p.Species; si++ {
				for g := range points {
					points[g][li][si] = vals[idx]
					idx++
				}
			}
		}
	}
}

// transposeReverse is the inverse redistribution: each rank sends, to
// every layer owner q, the slice of its grid points for q's layers,
// ordered (layer, species, grid).
func transposeReverse(w *fx.Worker, block, points [][][]float32, tag int, p Params) {
	parts := make([][]byte, w.P)
	for q := 0; q < w.P; q++ {
		qllo, qlhi := fx.BlockRange(p.Layers, w.P, q)
		buf := make([]float32, 0, (qlhi-qllo)*p.Species*len(points))
		for li := qllo; li < qlhi; li++ {
			for si := 0; si < p.Species; si++ {
				for g := range points {
					buf = append(buf, points[g][li][si])
				}
			}
		}
		parts[q] = fx.EncodeFloat32s(buf)
	}
	got := w.AllToAll(tag, parts)
	for q := 0; q < w.P; q++ {
		qglo, qghi := fx.BlockRange(p.Grid, w.P, q)
		vals := fx.DecodeFloat32s(got[q])
		idx := 0
		for li := range block {
			for si := 0; si < p.Species; si++ {
				for g := qglo; g < qghi; g++ {
					block[li][si][g] = vals[idx]
					idx++
				}
			}
		}
	}
}
